//! Interchange formats on generated designs: Verilog export and the
//! merged-design roundtrip of §5.1.

use foldic::prelude::*;
use foldic_netlist::write_verilog;
use foldic_route::{parse_merged, write_merged};

#[test]
fn generated_block_exports_clean_verilog() {
    let (design, tech) = T2Config::tiny().generate();
    let block = design.block(design.find_block("ccu").unwrap());
    let v = write_verilog(&block.netlist, &tech);
    assert!(v.starts_with("module ccu ("));
    // every instance appears exactly once
    for (_, inst) in block.netlist.insts() {
        let name = block.netlist.name_of(inst.name);
        assert_eq!(v.matches(&format!(" {name} (")).count(), 1, "{name}");
    }
    assert!(v.lines().count() > block.netlist.num_insts());
    assert!(v.trim_end().ends_with("endmodule"));
}

#[test]
fn folded_block_merged_design_roundtrips() {
    let (mut design, tech) = T2Config::tiny().generate();
    let id = design.find_block("l2t0").unwrap();
    let folded = fold_block(
        design.block_mut(id),
        &tech,
        &FoldConfig {
            bonding: BondingStyle::FaceToFace,
            placer: foldic_place::PlacerConfig::fast(),
            ..FoldConfig::default()
        },
    )
    .unwrap();
    let block = design.block(id);
    let text = write_merged(&block.netlist, &tech, block.outline, "l2t0_fold");
    let merged = parse_merged(&text).expect("roundtrip");
    assert_eq!(merged.components.len(), block.netlist.num_insts());
    // the merged design's 3D net count tracks the via count (vias exist
    // only for routable 3D nets with >= 2 instance pins)
    assert!(merged.nets_3d.len() >= folded.vias.len() / 2);
    // both die suffixes present
    assert!(merged
        .components
        .iter()
        .any(|c| c.master.ends_with("_die_top")));
    assert!(merged
        .components
        .iter()
        .any(|c| c.master.ends_with("_die_bot")));
    // Verilog export still works on the folded netlist
    let v = write_verilog(&block.netlist, &tech);
    assert!(v.contains("endmodule"));
}
