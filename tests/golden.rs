//! Golden regression tests: the experiment reports on the `tiny` design,
//! pinned byte-for-byte under `tests/golden/`.
//!
//! Floats are normalized to 3 decimal places on both sides of the diff so
//! the comparison is robust to formatting-width noise while still
//! catching any real numeric drift.
//!
//! After an *intended* change to the flow or the models, regenerate the
//! references with:
//!
//! ```text
//! BLESS=1 cargo test --test golden
//! ```
//!
//! and review the diff like any other code change.

use foldic_bench::{experiments, Ctx};
use foldic_t2::T2Config;
use std::path::PathBuf;
use std::sync::{Mutex, OnceLock};

/// One shared context so the full-chip cache is reused across tests
/// (tests in one binary run concurrently on the same process).
fn ctx() -> &'static Mutex<Ctx> {
    static CTX: OnceLock<Mutex<Ctx>> = OnceLock::new();
    CTX.get_or_init(|| {
        Mutex::new(Ctx::with_threads(
            T2Config::tiny(),
            foldic_exec::resolve_threads(None),
        ))
    })
}

fn golden_path(name: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests/golden")
        .join(format!("{name}.txt"))
}

/// Rewrites every decimal literal as `{:.3}`; integers and text pass
/// through untouched. A trailing `.` (sentence period) stays text.
fn normalize(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    let mut it = s.char_indices().peekable();
    while let Some(&(start, c)) = it.peek() {
        if !c.is_ascii_digit() {
            out.push(c);
            it.next();
            continue;
        }
        let mut end = start;
        let mut has_dot = false;
        while let Some(&(j, d)) = it.peek() {
            if d.is_ascii_digit() || (d == '.' && !has_dot) {
                has_dot |= d == '.';
                end = j + d.len_utf8();
                it.next();
            } else {
                break;
            }
        }
        let mut tok = &s[start..end];
        let mut trailing_dot = false;
        if tok.ends_with('.') {
            tok = &tok[..tok.len() - 1];
            trailing_dot = true;
            has_dot = false;
        }
        if has_dot {
            let v: f64 = tok.parse().expect("scanned decimal parses");
            out.push_str(&format!("{v:.3}"));
        } else {
            out.push_str(tok);
        }
        if trailing_dot {
            out.push('.');
        }
    }
    out
}

fn check(name: &str, actual: &str) {
    let norm = normalize(actual);
    let path = golden_path(name);
    if std::env::var_os("BLESS").is_some() {
        std::fs::create_dir_all(path.parent().unwrap()).expect("golden dir");
        std::fs::write(&path, &norm).expect("write golden reference");
        return;
    }
    let expected = std::fs::read_to_string(&path).unwrap_or_else(|_| {
        panic!(
            "missing golden reference {}; generate it with `BLESS=1 cargo test --test golden`",
            path.display()
        )
    });
    assert_eq!(
        norm, expected,
        "report `{name}` drifted from tests/golden/{name}.txt; if the change \
         is intended, regenerate with `BLESS=1 cargo test --test golden` and \
         review the diff"
    );
}

#[test]
fn golden_table1() {
    let c = ctx().lock().unwrap();
    check("table1", &experiments::table1(&c.tech));
}

#[test]
fn golden_table2() {
    let mut c = ctx().lock().unwrap();
    check("table2", &experiments::table2(&mut c));
}

#[test]
fn golden_table3() {
    let mut c = ctx().lock().unwrap();
    check("table3", &experiments::table3(&mut c));
}

#[test]
fn golden_table4() {
    let mut c = ctx().lock().unwrap();
    check("table4", &experiments::table4(&mut c));
}

#[test]
fn golden_table5() {
    let mut c = ctx().lock().unwrap();
    check("table5", &experiments::table5(&mut c));
}

#[test]
fn golden_fig2() {
    let mut c = ctx().lock().unwrap();
    check("fig2", &experiments::fig2(&mut c));
}

#[test]
fn normalize_rewrites_decimals_only() {
    assert_eq!(
        normalize("wl 12.3456 m, 42 cells, x8, end."),
        "wl 12.346 m, 42 cells, x8, end."
    );
    assert_eq!(normalize("-0.5% (paper +1.25%)"), "-0.500% (paper +1.250%)");
}
