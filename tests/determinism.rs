//! Every stage of the reproduction must be bit-for-bit deterministic for
//! a fixed seed — otherwise EXPERIMENTS.md would not be reproducible.

use foldic::prelude::*;
use foldic_partition::{bipartition, PartitionConfig};
use foldic_place::{place_block, PlacerConfig};
use foldic_route::BlockWiring;

#[test]
fn generator_is_deterministic_end_to_end() {
    let (a, _) = T2Config::tiny().generate();
    let (b, _) = T2Config::tiny().generate();
    assert_eq!(a.total_insts(), b.total_insts());
    assert_eq!(a.total_nets(), b.total_nets());
    for (ba, bb) in a.blocks().zip(b.blocks()) {
        assert_eq!(ba.1.name, bb.1.name);
        assert_eq!(ba.1.outline, bb.1.outline);
        for ((_, ia), (_, ib)) in ba.1.netlist.insts().zip(bb.1.netlist.insts()) {
            assert_eq!(ia.pos, ib.pos, "{}", ba.1.netlist.name_of(ia.name));
            assert_eq!(ia.master, ib.master);
        }
    }
}

#[test]
fn different_seeds_differ() {
    let (a, _) = T2Config::tiny().generate();
    let mut cfg = T2Config::tiny();
    cfg.seed ^= 0xABCD;
    let (b, _) = cfg.generate();
    // same structure scale, different wiring choices
    assert_eq!(a.num_blocks(), b.num_blocks());
    let pos = |d: &Design| {
        let blk = d.block(d.find_block("mcu0").unwrap());
        blk.netlist.insts().map(|(_, i)| i.pos).collect::<Vec<_>>()
    };
    assert_ne!(pos(&a), pos(&b));
}

#[test]
fn placement_is_deterministic() {
    let (d, tech) = T2Config::tiny().generate();
    let id = d.find_block("ccu").unwrap();
    let outline = d.block(id).outline;
    let run = || {
        let mut nl = d.block(id).netlist.clone();
        place_block(&mut nl, &tech, outline, &PlacerConfig::fast()).unwrap();
        nl.insts().map(|(_, i)| i.pos).collect::<Vec<_>>()
    };
    assert_eq!(run(), run());
}

#[test]
fn partition_is_deterministic() {
    let (d, tech) = T2Config::tiny().generate();
    let nl = &d.block(d.find_block("l2t0").unwrap()).netlist;
    let a = bipartition(nl, &tech, &PartitionConfig::default());
    let b = bipartition(nl, &tech, &PartitionConfig::default());
    assert_eq!(a.cut, b.cut);
    assert_eq!(a.tier_of, b.tier_of);
}

#[test]
fn fold_flow_is_deterministic() {
    let (d, tech) = T2Config::tiny().generate();
    let run = || {
        let mut dd = d.clone();
        let id = dd.find_block("l2t0").unwrap();
        let f = fold_block(
            dd.block_mut(id),
            &tech,
            &FoldConfig {
                bonding: BondingStyle::FaceToFace,
                placer: PlacerConfig::fast(),
                ..FoldConfig::default()
            },
        )
        .unwrap();
        (
            f.cut,
            f.metrics.num_3d_connections,
            f.metrics.wirelength_um.to_bits(),
            f.metrics.power.total_uw().to_bits(),
        )
    };
    assert_eq!(run(), run());
}

#[test]
fn wiring_analysis_is_pure() {
    let (d, tech) = T2Config::tiny().generate();
    let nl = &d.block(d.find_block("ncu").unwrap()).netlist;
    let a = BlockWiring::analyze(nl, &tech, 1.1, None).unwrap();
    let b = BlockWiring::analyze(nl, &tech, 1.1, None).unwrap();
    assert_eq!(a.total_um.to_bits(), b.total_um.to_bits());
    assert_eq!(a.long_wires, b.long_wires);
}

/// The tentpole guarantee of the execution engine: a full experiment
/// report is byte-identical whether the per-block loops and sweeps run
/// serially or on a 4-worker pool — and two serial runs are identical to
/// each other (no map-iteration-order or scheduling leakage anywhere).
#[test]
fn table2_report_is_identical_serial_and_parallel() {
    let run = |threads: usize| {
        let mut ctx = foldic_bench::Ctx::with_threads(T2Config::tiny(), threads);
        foldic_bench::experiments::table2(&mut ctx)
    };
    let serial = run(1);
    let parallel = run(4);
    assert_eq!(
        serial, parallel,
        "threads=4 must reproduce the serial report byte-for-byte"
    );
    let serial_again = run(1);
    assert_eq!(
        serial, serial_again,
        "two serial runs must be byte-identical"
    );
}

/// Same guarantee one level down: a single full-chip run with a parallel
/// per-block fan-out reproduces the serial result exactly.
#[test]
fn fullchip_is_identical_for_any_thread_count() {
    let (design, tech) = T2Config::tiny().generate();
    let run = |threads: usize| {
        let mut d = design.clone();
        let cfg = FullChipConfig {
            threads,
            ..FullChipConfig::fast()
        };
        let r = run_fullchip(&mut d, &tech, DesignStyle::FoldedF2f, &cfg).unwrap();
        (
            r.chip.power.total_uw().to_bits(),
            r.chip.wirelength_um.to_bits(),
            r.chip.num_cells,
            r.chip_vias,
            r.intra_block_vias,
            r.per_block
                .iter()
                .map(|(n, _, m)| (n.clone(), m.power.total_uw().to_bits()))
                .collect::<Vec<_>>(),
        )
    };
    let serial = run(1);
    assert_eq!(serial, run(4), "threads=4");
    assert_eq!(serial, run(7), "threads=7");
}
