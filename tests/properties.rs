//! Property-based tests on the core data structures and algorithmic
//! invariants.
//!
//! Offline-first: instead of `proptest` (a registry dependency), each
//! property runs over a seeded stream of random cases from the
//! workspace's own deterministic RNG. Failures print the case seed so a
//! run can be reproduced exactly.

use foldic_geom::{BinGrid, DensityMap, Point, Rect, Tier};
use foldic_netlist::{InstMaster, Netlist, PinRef};
use foldic_partition::{bipartition, PartitionConfig};
use foldic_place::legalize_tier;
use foldic_route::SteinerTree;
use foldic_tech::{CellKind, Drive, Technology, VthClass};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

const CASES: u64 = 64;

fn rng_for(test: &str, case: u64) -> StdRng {
    StdRng::seed_from_u64(rand::derive_seed(&[
        "suite-properties",
        test,
        &case.to_string(),
    ]))
}

fn rand_point(rng: &mut StdRng, max: f64) -> Point {
    Point::new(rng.gen_range(0.0..max), rng.gen_range(0.0..max))
}

/// Rect intersection is commutative and contained in both operands.
#[test]
fn rect_intersection_properties() {
    for case in 0..CASES {
        let mut rng = rng_for("rect-intersection", case);
        let rect = |rng: &mut StdRng| {
            let x = rng.gen_range(0.0..100.0);
            let y = rng.gen_range(0.0..100.0);
            let w = rng.gen_range(1.0..50.0);
            let h = rng.gen_range(1.0..50.0);
            Rect::new(x, y, x + w, y + h)
        };
        let ra = rect(&mut rng);
        let rb = rect(&mut rng);
        let ab = ra.intersection(rb);
        let ba = rb.intersection(ra);
        assert_eq!(ab, ba, "case {case}");
        if let Some(i) = ab {
            assert!(ra.contains_rect(i), "case {case}");
            assert!(rb.contains_rect(i), "case {case}");
            assert!(i.area() <= ra.area().min(rb.area()) + 1e-9, "case {case}");
        }
        // union always covers both
        let u = ra.union(rb);
        assert!(u.contains_rect(ra), "case {case}");
        assert!(u.contains_rect(rb), "case {case}");
    }
}

/// The Steiner tree is connected: every sink has a finite path to the
/// driver no shorter than its Manhattan distance, and the tree length is
/// at least the farthest pin's distance while never exceeding the star
/// topology's total.
#[test]
fn steiner_tree_bounds() {
    for case in 0..CASES {
        let mut rng = rng_for("steiner", case);
        let driver = rand_point(&mut rng, 1000.0);
        let n = rng.gen_range(1..12usize);
        let sinks: Vec<Point> = (0..n).map(|_| rand_point(&mut rng, 1000.0)).collect();
        let tree = SteinerTree::build(driver, &sinks);
        let mut star = 0.0f64;
        for (i, s) in sinks.iter().enumerate() {
            let d = driver.manhattan(*s);
            let path = tree.sink_path_length(i);
            assert!(path.is_finite(), "case {case}");
            assert!(
                path >= d - 1e-6,
                "case {case}: tree path {path} < direct {d}"
            );
            star += d;
        }
        assert!(tree.mst_length() <= star + 1e-6, "case {case}");
        let farthest = sinks
            .iter()
            .map(|s| driver.manhattan(*s))
            .fold(0.0, f64::max);
        assert!(tree.mst_length() >= farthest - 1e-6, "case {case}");
    }
}

/// Density map conservation: distributed demand never exceeds what was
/// added, and equals it when no holes exist.
#[test]
fn density_demand_is_conserved() {
    for case in 0..CASES {
        let mut rng = rng_for("density", case);
        let grid = BinGrid::new(Rect::new(0.0, 0.0, 100.0, 100.0), 10, 10);
        let mut dm = DensityMap::new(grid, 0.9);
        let mut added = 0.0;
        for _ in 0..rng.gen_range(1..20usize) {
            let x = rng.gen_range(0.0..90.0);
            let y = rng.gen_range(0.0..90.0);
            let w = rng.gen_range(1.0..10.0);
            let h = rng.gen_range(1.0..10.0);
            let r = Rect::new(x, y, x + w, y + h);
            dm.add_demand(r, r.area());
            added += r.area();
        }
        assert!(
            (dm.total_demand() - added).abs() < 1e-6 * added.max(1.0),
            "case {case}"
        );
    }
}

/// FM partitioning on random netlists: the reported cut matches a
/// recount and balance respects the (loose) tolerance.
#[test]
fn fm_cut_matches_recount() {
    for case in 0..CASES {
        let mut rng = rng_for("fm-recount", case);
        let tech = Technology::cmos28();
        let master = InstMaster::Cell(tech.cells.id_of(CellKind::Nand2, Drive::X1, VthClass::Rvt));
        let mut nl = Netlist::new("rand");
        let ids: Vec<_> = (0..40)
            .map(|i| nl.add_inst(format!("c{i}"), master))
            .collect();
        let num_edges = rng.gen_range(10..120usize);
        for k in 0..num_edges {
            let a = rng.gen_range(0..40usize);
            let b = rng.gen_range(0..40usize);
            if a == b {
                continue;
            }
            let n = nl.add_net(format!("n{k}"));
            nl.connect_driver(n, PinRef::output(ids[a]));
            nl.connect_sink(n, PinRef::input(ids[b], 0));
        }
        let seed = rng.gen_range(0..50u64);
        let cfg = PartitionConfig {
            seed,
            ..Default::default()
        };
        let part = bipartition(&nl, &tech, &cfg);
        assert_eq!(part.cut, part.cut_size(&nl), "case {case}");
        assert!(part.balance(&nl, &tech) <= 0.25, "case {case}");
    }
}

/// Legalization produces overlap-free, in-outline placements for any
/// random overfilled-but-feasible start.
#[test]
fn legalizer_is_overlap_free() {
    for case in 0..CASES {
        let mut rng = rng_for("legalize", case);
        let tech = Technology::cmos28();
        let master = InstMaster::Cell(tech.cells.id_of(CellKind::Inv, Drive::X2, VthClass::Rvt));
        let outline = Rect::new(0.0, 0.0, 80.0, 24.0);
        let mut nl = Netlist::new("legal");
        for i in 0..rng.gen_range(5..60usize) {
            let p = rand_point(&mut rng, 80.0);
            let id = nl.add_inst(format!("c{i}"), master);
            nl.inst_mut(id).pos = Point::new(p.x, p.y.min(23.0));
        }
        legalize_tier(&mut nl, &tech, outline, &[], None);
        let rects: Vec<Rect> = nl.insts().map(|(_, i)| i.rect(&tech)).collect();
        for (i, a) in rects.iter().enumerate() {
            assert!(outline.inflated(1e-6).contains_rect(*a), "case {case}");
            for b in &rects[i + 1..] {
                let overlap = a.intersection(*b).map(|x| x.area()).unwrap_or(0.0);
                assert!(overlap < 1e-9, "case {case}: overlap {overlap}");
            }
        }
    }
}

/// Tier involution and pin-tier consistency on random tier flips.
#[test]
fn net_3d_detection_matches_tiers() {
    for case in 0..CASES {
        let mut rng = rng_for("tiers", case);
        let tech = Technology::cmos28();
        let master = InstMaster::Cell(tech.cells.id_of(CellKind::Buf, Drive::X1, VthClass::Rvt));
        let mut nl = Netlist::new("tiers");
        let ids: Vec<_> = (0..8)
            .map(|i| nl.add_inst(format!("c{i}"), master))
            .collect();
        let flips: Vec<bool> = (0..8).map(|_| rng.gen::<bool>()).collect();
        for (i, f) in flips.iter().enumerate() {
            if *f {
                nl.inst_mut(ids[i]).tier = Tier::Top;
            }
        }
        let n = nl.add_net("n");
        nl.connect_driver(n, PinRef::output(ids[0]));
        for &s in &ids[1..] {
            nl.connect_sink(n, PinRef::input(s, 0));
        }
        let mixed = flips.iter().any(|&f| f != flips[0]);
        assert_eq!(nl.net_is_3d(n), mixed, "case {case}");
    }
}
