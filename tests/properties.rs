//! Property-based tests (proptest) on the core data structures and
//! algorithmic invariants.

use foldic_geom::{BinGrid, DensityMap, Point, Rect, Tier};
use foldic_netlist::{InstMaster, Netlist, PinRef};
use foldic_partition::{bipartition, PartitionConfig};
use foldic_place::legalize_tier;
use foldic_route::SteinerTree;
use foldic_tech::{CellKind, Drive, Technology, VthClass};
use proptest::prelude::*;

fn point_strategy(max: f64) -> impl Strategy<Value = Point> {
    (0.0..max, 0.0..max).prop_map(|(x, y)| Point::new(x, y))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Rect intersection is commutative and contained in both operands.
    #[test]
    fn rect_intersection_properties(
        a in (0.0..100.0f64, 0.0..100.0f64, 1.0..50.0f64, 1.0..50.0f64),
        b in (0.0..100.0f64, 0.0..100.0f64, 1.0..50.0f64, 1.0..50.0f64),
    ) {
        let ra = Rect::new(a.0, a.1, a.0 + a.2, a.1 + a.3);
        let rb = Rect::new(b.0, b.1, b.0 + b.2, b.1 + b.3);
        let ab = ra.intersection(rb);
        let ba = rb.intersection(ra);
        prop_assert_eq!(ab, ba);
        if let Some(i) = ab {
            prop_assert!(ra.contains_rect(i));
            prop_assert!(rb.contains_rect(i));
            prop_assert!(i.area() <= ra.area().min(rb.area()) + 1e-9);
        }
        // union always covers both
        let u = ra.union(rb);
        prop_assert!(u.contains_rect(ra));
        prop_assert!(u.contains_rect(rb));
    }

    /// The Steiner tree is connected: every sink has a finite path to the
    /// driver no shorter than its Manhattan distance, and the tree length
    /// is at least the farthest pin's distance while never exceeding the
    /// star topology's total.
    #[test]
    fn steiner_tree_bounds(
        driver in point_strategy(1000.0),
        sinks in prop::collection::vec(point_strategy(1000.0), 1..12),
    ) {
        let tree = SteinerTree::build(driver, &sinks);
        let mut star = 0.0f64;
        for (i, s) in sinks.iter().enumerate() {
            let d = driver.manhattan(*s);
            let path = tree.sink_path_length(i);
            prop_assert!(path.is_finite());
            prop_assert!(path >= d - 1e-6, "tree path {path} < direct {d}");
            star += d;
        }
        prop_assert!(tree.mst_length() <= star + 1e-6);
        let farthest = sinks.iter().map(|s| driver.manhattan(*s)).fold(0.0, f64::max);
        prop_assert!(tree.mst_length() >= farthest - 1e-6);
    }

    /// Density map conservation: distributed demand never exceeds what was
    /// added, and equals it when no holes exist.
    #[test]
    fn density_demand_is_conserved(
        rects in prop::collection::vec(
            (0.0..90.0f64, 0.0..90.0f64, 1.0..10.0f64, 1.0..10.0f64),
            1..20
        ),
    ) {
        let grid = BinGrid::new(Rect::new(0.0, 0.0, 100.0, 100.0), 10, 10);
        let mut dm = DensityMap::new(grid, 0.9);
        let mut added = 0.0;
        for (x, y, w, h) in rects {
            let r = Rect::new(x, y, x + w, y + h);
            dm.add_demand(r, r.area());
            added += r.area();
        }
        prop_assert!((dm.total_demand() - added).abs() < 1e-6 * added.max(1.0));
    }

    /// FM partitioning on random netlists: the reported cut matches a
    /// recount and balance respects the (loose) tolerance.
    #[test]
    fn fm_cut_matches_recount(
        edges in prop::collection::vec((0usize..40, 0usize..40), 10..120),
        seed in 0u64..50,
    ) {
        let tech = Technology::cmos28();
        let master = InstMaster::Cell(
            tech.cells.id_of(CellKind::Nand2, Drive::X1, VthClass::Rvt),
        );
        let mut nl = Netlist::new("rand");
        let ids: Vec<_> = (0..40).map(|i| nl.add_inst(format!("c{i}"), master)).collect();
        for (k, (a, b)) in edges.iter().enumerate() {
            if a == b {
                continue;
            }
            let n = nl.add_net(format!("n{k}"));
            nl.connect_driver(n, PinRef::output(ids[*a]));
            nl.connect_sink(n, PinRef::input(ids[*b], 0));
        }
        let cfg = PartitionConfig { seed, ..Default::default() };
        let part = bipartition(&nl, &tech, &cfg);
        prop_assert_eq!(part.cut, part.cut_size(&nl));
        prop_assert!(part.balance(&nl, &tech) <= 0.25);
    }

    /// Legalization produces overlap-free, in-outline placements for any
    /// random overfilled-but-feasible start.
    #[test]
    fn legalizer_is_overlap_free(
        starts in prop::collection::vec(point_strategy(80.0), 5..60),
    ) {
        let tech = Technology::cmos28();
        let master = InstMaster::Cell(
            tech.cells.id_of(CellKind::Inv, Drive::X2, VthClass::Rvt),
        );
        let outline = Rect::new(0.0, 0.0, 80.0, 24.0);
        let mut nl = Netlist::new("legal");
        for (i, p) in starts.iter().enumerate() {
            let id = nl.add_inst(format!("c{i}"), master);
            nl.inst_mut(id).pos = Point::new(p.x, p.y.min(23.0));
        }
        legalize_tier(&mut nl, &tech, outline, &[], None);
        let rects: Vec<Rect> = nl.insts().map(|(_, i)| i.rect(&tech)).collect();
        for (i, a) in rects.iter().enumerate() {
            prop_assert!(outline.inflated(1e-6).contains_rect(*a));
            for b in &rects[i + 1..] {
                let overlap = a
                    .intersection(*b)
                    .map(|x| x.area())
                    .unwrap_or(0.0);
                prop_assert!(overlap < 1e-9, "overlap {overlap}");
            }
        }
    }

    /// Tier involution and pin-tier consistency on random tier flips.
    #[test]
    fn net_3d_detection_matches_tiers(flips in prop::collection::vec(any::<bool>(), 8)) {
        let tech = Technology::cmos28();
        let master = InstMaster::Cell(
            tech.cells.id_of(CellKind::Buf, Drive::X1, VthClass::Rvt),
        );
        let mut nl = Netlist::new("tiers");
        let ids: Vec<_> = (0..8).map(|i| nl.add_inst(format!("c{i}"), master)).collect();
        for (i, f) in flips.iter().enumerate() {
            if *f {
                nl.inst_mut(ids[i]).tier = Tier::Top;
            }
        }
        let n = nl.add_net("n");
        nl.connect_driver(n, PinRef::output(ids[0]));
        for &s in &ids[1..] {
            nl.connect_sink(n, PinRef::input(s, 0));
        }
        let mixed = flips.iter().any(|&f| f != flips[0]);
        prop_assert_eq!(nl.net_is_3d(n), mixed);
    }
}
