//! Heavier regression checks of the headline reproduction numbers at
//! `small` scale. Ignored by default (≈1–2 min in release); run with
//!
//! ```text
//! cargo test --release -- --ignored
//! ```

use foldic::prelude::*;
use foldic_timing::TimingBudgets;

fn pct(base: f64, new: f64) -> f64 {
    (new - base) / base * 100.0
}

/// Fig. 2's headline: the CCX fold saves ≈30 % power with a handful of
/// TSVs (paper −32.8 % with 4).
#[test]
#[ignore = "heavy: small-scale regression"]
fn ccx_fold_saves_about_thirty_percent() {
    let (design, tech) = T2Config::small().generate();
    let id = design.find_block("ccx").unwrap();
    let mut d2 = design.clone();
    let baseline = {
        let b = d2.block_mut(id);
        let budgets = TimingBudgets::relaxed(&b.netlist, &tech);
        run_block_flow(b, &tech, &budgets, &FlowConfig::default())
            .unwrap()
            .metrics
    };
    let mut d3 = design.clone();
    let folded = fold_block(
        d3.block_mut(id),
        &tech,
        &FoldConfig {
            strategy: FoldStrategy::NaturalGroups(vec!["pcx".into()]),
            aspect: FoldAspect::Square,
            bonding: BondingStyle::FaceToBack,
            ..FoldConfig::default()
        },
    )
    .unwrap();
    let delta = pct(baseline.power.total_uw(), folded.metrics.power.total_uw());
    assert!(
        (-45.0..=-15.0).contains(&delta),
        "CCX fold power delta {delta:.1}% out of the paper band"
    );
    assert!(folded.cut <= 12, "cut {}", folded.cut);
}

/// Table 2's headline: both stacking styles beat 2D on total power, by
/// single-digit percent, and land within a few percent of each other.
#[test]
#[ignore = "heavy: small-scale regression"]
fn stacking_saves_single_digit_percent() {
    let (design, tech) = T2Config::small().generate();
    let cfg = FullChipConfig::default();
    let mut d = design.clone();
    let r2 = run_fullchip(&mut d, &tech, DesignStyle::Flat2d, &cfg).unwrap();
    let mut deltas = Vec::new();
    for style in [DesignStyle::CoreCache, DesignStyle::CoreCore] {
        let mut d3 = design.clone();
        let r3 = run_fullchip(&mut d3, &tech, style, &cfg).unwrap();
        let delta = pct(r2.chip.power.total_uw(), r3.chip.power.total_uw());
        assert!(
            (-15.0..0.0).contains(&delta),
            "{}: {delta:.1}%",
            style.label()
        );
        deltas.push(delta);
    }
    assert!(
        (deltas[0] - deltas[1]).abs() < 6.0,
        "the two stacking styles must be close: {deltas:?}"
    );
}

/// Table 5's headline: the folded F2F chip beats the unfolded 3D chip by
/// a clear margin, and 2D by the most.
#[test]
#[ignore = "heavy: small-scale regression"]
fn folding_is_the_bigger_lever() {
    let (design, tech) = T2Config::small().generate();
    let cfg = FullChipConfig {
        dual_vth: true,
        ..FullChipConfig::default()
    };
    let run = |style| {
        let mut d = design.clone();
        run_fullchip(&mut d, &tech, style, &cfg)
            .unwrap()
            .chip
            .power
            .total_uw()
    };
    let p2d = run(DesignStyle::Flat2d);
    let p3d = run(DesignStyle::CoreCache);
    let pfold = run(DesignStyle::FoldedF2f);
    assert!(p3d < p2d);
    assert!(pfold < p3d, "folding {pfold} must beat stacking {p3d}");
    let total = pct(p2d, pfold);
    assert!(
        (-30.0..=-10.0).contains(&total),
        "folded-F2F total delta {total:.1}% out of the paper band (paper -20.3%)"
    );
}
