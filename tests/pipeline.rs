//! Cross-crate integration: the full block pipeline from generation to
//! power sign-off, exercised crate by crate.

use foldic::prelude::*;
use foldic_netlist::NetlistStats;
use foldic_partition::{bipartition, PartitionConfig};
use foldic_place::{place_block, PlacerConfig};
use foldic_power::{analyze_block, PowerConfig};
use foldic_route::BlockWiring;
use foldic_timing::{analyze, StaConfig, TimingBudgets};

fn design() -> (Design, Technology) {
    T2Config::tiny().generate()
}

#[test]
fn generation_to_power_pipeline_is_consistent() {
    let (mut d, tech) = design();
    let id = d.find_block("l2t0").unwrap();
    let outline = d.block(id).outline;
    let block = d.block_mut(id);

    // netlist sanity
    block.netlist.check().expect("generated netlist is sound");
    let stats = NetlistStats::collect(&block.netlist, &tech);
    assert!(stats.num_cells > 0 && stats.num_macros > 0);

    // placement keeps everything inside the outline
    place_block(&mut block.netlist, &tech, outline, &PlacerConfig::fast()).unwrap();
    for (_, inst) in block.netlist.insts() {
        assert!(
            outline.inflated(1.0).contains(inst.pos),
            "{}",
            block.netlist.name_of(inst.name)
        );
    }

    // wiring, timing, power
    let wiring = BlockWiring::analyze(&block.netlist, &tech, 1.1, None).unwrap();
    assert!(wiring.total_um > 0.0);
    assert_eq!(wiring.num_3d, 0, "unfolded block has no 3D nets");

    let budgets = TimingBudgets::relaxed(&block.netlist, &tech);
    let sta = analyze(
        &block.netlist,
        &tech,
        &wiring,
        &budgets,
        &StaConfig::default(),
    )
    .unwrap();
    assert!(sta.endpoints > 0);
    assert!(sta.max_arrival_ps > 0.0 && sta.max_arrival_ps < 100_000.0);

    let power = analyze_block(
        &block.netlist,
        &tech,
        &wiring,
        &PowerConfig::for_block(block),
    )
    .unwrap();
    assert!(power.total_uw() > 0.0);
    assert!(power.net_fraction() > 0.05 && power.net_fraction() < 0.95);
}

#[test]
fn block_flow_monotonicity_under_budget_pressure() {
    // Tighter I/O budgets must never *reduce* the resources the optimizer
    // spends: cells (buffers+upsizing) should not shrink.
    let (d, tech) = design();
    let id = d.find_block("mcu0").unwrap();

    let run = |input_frac: f64| {
        let mut dd = d.clone();
        let block = dd.block_mut(id);
        let mut budgets = TimingBudgets::relaxed(&block.netlist, &tech);
        for a in &mut budgets.input_arrival_ps {
            *a *= input_frac / 0.25;
        }
        foldic::flow::run_block_flow(block, &tech, &budgets, &FlowConfig::fast())
            .unwrap()
            .metrics
    };
    let relaxed = run(0.25);
    let tight = run(0.60);
    assert!(
        tight.num_cells + 5 >= relaxed.num_cells,
        "tight {} vs relaxed {}",
        tight.num_cells,
        relaxed.num_cells
    );
}

#[test]
fn partition_then_flow_preserves_netlist_invariants() {
    let (mut d, tech) = design();
    let id = d.find_block("rtx").unwrap();
    let block = d.block_mut(id);
    let part = bipartition(&block.netlist, &tech, &PartitionConfig::default());
    assert!(part.balance(&block.netlist, &tech) <= 0.25);
    let folded = fold_block(
        block,
        &tech,
        &FoldConfig {
            bonding: BondingStyle::FaceToFace,
            placer: PlacerConfig::fast(),
            ..FoldConfig::default()
        },
    )
    .unwrap();
    block.netlist.check().expect("folded netlist is sound");
    assert!(folded.metrics.num_3d_connections > 0);
    // every via serves a real tier-crossing net
    for via in folded.vias.iter() {
        assert!(block.netlist.net_is_3d(via.net), "via on 2D net");
    }
}

#[test]
fn full_chip_metrics_roll_up_from_blocks() {
    let (mut d, tech) = design();
    let r = run_fullchip(&mut d, &tech, DesignStyle::Flat2d, &FullChipConfig::fast()).unwrap();
    let sum_cells: usize = r.per_block.iter().map(|(_, _, m)| m.num_cells).sum();
    // chip adds only inter-block repeaters on top of the blocks
    assert!(r.chip.num_cells >= sum_cells);
    let sum_power: f64 = r.per_block.iter().map(|(_, _, m)| m.power.total_uw()).sum();
    assert!(r.chip.power.total_uw() >= sum_power);
    assert!(
        r.chip.power.total_uw() < sum_power * 2.0,
        "chip adders dominate"
    );
    // die holds every block
    for (_, b) in d.blocks() {
        assert!(r.die.inflated(1.0).contains_rect(b.chip_rect()));
    }
}
