//! The paper's directional claims, asserted end-to-end on the reduced
//! design. These are the invariants EXPERIMENTS.md verifies at full size;
//! here they gate every `cargo test` run at `tiny`/`small` scale.

use foldic::prelude::*;
use foldic_timing::TimingBudgets;

fn block_2d(design: &Design, tech: &Technology, name: &str) -> DesignMetrics {
    let mut d = design.clone();
    let id = d.find_block(name).unwrap();
    let b = d.block_mut(id);
    let budgets = TimingBudgets::relaxed(&b.netlist, tech);
    run_block_flow(b, tech, &budgets, &FlowConfig::default())
        .unwrap()
        .metrics
}

fn fold(design: &Design, tech: &Technology, name: &str, cfg: FoldConfig) -> (DesignMetrics, usize) {
    let mut d = design.clone();
    let id = d.find_block(name).unwrap();
    let f = fold_block(d.block_mut(id), tech, &cfg).unwrap();
    (f.metrics, f.cut)
}

/// §4.3 / Fig. 2: the crossbar's natural fold saves big power with a
/// handful of TSVs and roughly halves the footprint.
#[test]
fn ccx_natural_fold_saves_power_with_few_tsvs() {
    let (design, tech) = T2Config::small().generate();
    let b2 = block_2d(&design, &tech, "ccx");
    let (m, cut) = fold(
        &design,
        &tech,
        "ccx",
        FoldConfig {
            strategy: FoldStrategy::NaturalGroups(vec!["pcx".into()]),
            aspect: FoldAspect::Square,
            bonding: BondingStyle::FaceToBack,
            ..FoldConfig::default()
        },
    );
    assert!(
        cut <= 10,
        "natural split must cut almost nothing, got {cut}"
    );
    assert!(
        m.power.total_uw() < 0.85 * b2.power.total_uw(),
        "CCX fold power {:.1} vs 2D {:.1}",
        m.power.total_uw(),
        b2.power.total_uw()
    );
    let fp = m.footprint_um2 / b2.footprint_um2;
    assert!(fp > 0.3 && fp < 0.6, "footprint ratio {fp}");
    assert!(m.wirelength_um < b2.wirelength_um);
}

/// §5.2 / Fig. 7: face-to-face beats face-to-back for the same partition,
/// and the gap grows with the number of 3D connections.
#[test]
fn f2f_beats_f2b_and_gap_grows_with_vias() {
    let (design, tech) = T2Config::small().generate();
    let mut gaps = Vec::new();
    for q in [1.0, 0.0] {
        let (f2b, _) = fold(
            &design,
            &tech,
            "l2t0",
            FoldConfig {
                strategy: FoldStrategy::Quality(q),
                bonding: BondingStyle::FaceToBack,
                ..FoldConfig::default()
            },
        );
        let (f2f, _) = fold(
            &design,
            &tech,
            "l2t0",
            FoldConfig {
                strategy: FoldStrategy::Quality(q),
                bonding: BondingStyle::FaceToFace,
                ..FoldConfig::default()
            },
        );
        // with very few vias the two styles are within noise at reduced
        // scale; with many vias F2F must win outright
        let tol = if q == 1.0 { 1.02 } else { 1.0 };
        assert!(
            f2f.power.total_uw() < tol * f2b.power.total_uw(),
            "q={q}: F2F {} must beat F2B {}",
            f2f.power.total_uw(),
            f2b.power.total_uw()
        );
        assert!(f2f.footprint_um2 <= f2b.footprint_um2 * 1.01, "q={q}");
        gaps.push(f2f.power.total_uw() / f2b.power.total_uw());
    }
    assert!(
        gaps[1] < gaps[0],
        "more vias must widen the F2F advantage: {gaps:?}"
    );
}

/// §4.4 / Table 4: the memory-dominated data bank halves its footprint
/// but saves only a modest amount of power (macros cannot be folded).
#[test]
fn l2d_fold_halves_footprint_modest_power() {
    let (design, tech) = T2Config::small().generate();
    let b2 = block_2d(&design, &tech, "l2d0");
    let (m, _) = fold(
        &design,
        &tech,
        "l2d0",
        FoldConfig {
            strategy: FoldStrategy::MacroRows,
            aspect: FoldAspect::KeepWidth,
            bonding: BondingStyle::FaceToBack,
            ..FoldConfig::default()
        },
    );
    let fp = m.footprint_um2 / b2.footprint_um2;
    assert!(fp > 0.40 && fp < 0.62, "footprint ratio {fp}");
    let p = m.power.total_uw() / b2.power.total_uw();
    // modest: clearly less saving than the CCX's ~30 %
    assert!(p > 0.75 && p < 1.10, "power ratio {p}");
}

/// §4.1 / Table 3: the census selects the paper's five fold candidates.
#[test]
fn census_selects_the_papers_fold_candidates() {
    let (mut design, tech) = T2Config::tiny().generate();
    let r = run_fullchip(
        &mut design,
        &tech,
        DesignStyle::Flat2d,
        &FullChipConfig::fast(),
    )
    .unwrap();
    let rows = fold_candidates(&r.per_block);
    let selected: Vec<&str> = rows
        .iter()
        .filter(|r| r.selected)
        .map(|r| r.kind.label())
        .collect();
    for must in ["SPC", "CCX", "RTX", "L2T", "L2D"] {
        assert!(selected.contains(&must), "{must} missing from {selected:?}");
    }
    // small control blocks must not be selected
    for never in ["CCU", "NCU"] {
        assert!(!selected.contains(&never), "{never} wrongly selected");
    }
}

/// §3.2 / Table 2: stacking shortens inter-block wiring and shrinks the
/// die; total power must not increase.
#[test]
fn stacking_reduces_interblock_wiring_and_power() {
    let (design, tech) = T2Config::tiny().generate();
    let cfg = FullChipConfig::fast();
    let mut d2 = design.clone();
    let r2 = run_fullchip(&mut d2, &tech, DesignStyle::Flat2d, &cfg).unwrap();
    let mut d3 = design.clone();
    let r3 = run_fullchip(&mut d3, &tech, DesignStyle::CoreCache, &cfg).unwrap();
    assert!(r3.interblock_wl_um < r2.interblock_wl_um);
    assert!(r3.chip.footprint_um2 < r2.chip.footprint_um2);
    assert!(r3.chip.power.total_uw() <= r2.chip.power.total_uw() * 1.01);
    assert!(r3.chip_vias > 0);
}

/// §6.2 / Table 5: dual-Vth lifts the HVT share high and cuts leakage.
#[test]
fn dual_vth_swaps_most_cells_and_cuts_leakage() {
    let (design, tech) = T2Config::tiny().generate();
    let name = "mcu0";
    let rvt = block_2d(&design, &tech, name);
    let mut d = design.clone();
    let id = d.find_block(name).unwrap();
    let dvt = {
        let b = d.block_mut(id);
        let budgets = TimingBudgets::relaxed(&b.netlist, &tech);
        let cfg = FlowConfig {
            dual_vth: true,
            ..Default::default()
        };
        run_block_flow(b, &tech, &budgets, &cfg).unwrap().metrics
    };
    assert!(dvt.hvt_fraction() > 0.5, "HVT share {}", dvt.hvt_fraction());
    assert!(dvt.power.leakage_uw < 0.8 * rvt.power.leakage_uw);
    assert!(dvt.power.total_uw() < rvt.power.total_uw());
}
