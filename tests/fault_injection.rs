//! Fault-tolerance integration tests: deterministic injection through the
//! full-chip flow, per-block isolation with retry/degradation, thread
//! invariance of faulted runs, and checkpoint/resume equivalence.
//!
//! The fault plan and the fault log are process-global, so every test
//! serializes on one mutex, installs its plan inside the critical
//! section, and clears both before leaving it.

use foldic::prelude::*;
use foldic::{
    clear_fault_plan, install_fault_plan, take_fault_log, CheckpointStore, Disposition, FaultPlan,
    FlowStage, RetryPolicy,
};
use std::sync::{Arc, Mutex, MutexGuard};

static GATE: Mutex<()> = Mutex::new(());

/// Enters the critical section with clean global fault state.
fn exclusive() -> MutexGuard<'static, ()> {
    let guard = GATE.lock().unwrap_or_else(|e| e.into_inner());
    clear_fault_plan();
    let _ = take_fault_log();
    guard
}

fn run(
    style: DesignStyle,
    threads: usize,
    checkpoint: Option<Arc<CheckpointStore>>,
) -> FullChipResult {
    let (mut design, tech) = T2Config::tiny().generate();
    let cfg = FullChipConfig {
        threads,
        checkpoint,
        ..FullChipConfig::default()
    };
    run_fullchip(&mut design, &tech, style, &cfg).unwrap()
}

/// Full result equality, floats compared bit-exactly.
fn assert_same(a: &FullChipResult, b: &FullChipResult) {
    assert_eq!(a.per_block, b.per_block);
    assert_eq!(a.chip, b.chip);
    assert_eq!(a.faults, b.faults);
    assert_eq!(a.chip_vias, b.chip_vias);
    assert_eq!(a.intra_block_vias, b.intra_block_vias);
    assert_eq!(a.interblock_wl_um.to_bits(), b.interblock_wl_um.to_bits());
    assert_eq!(a.route_overflow, b.route_overflow);
}

#[test]
fn injected_route_failure_degrades_only_that_block() {
    let _g = exclusive();
    install_fault_plan(FaultPlan::parse("route:ccx:error").unwrap());
    let result = run(DesignStyle::Flat2d, 1, None);
    clear_fault_plan();

    assert_eq!(result.faults.len(), 1, "exactly one faulted block");
    let f = &result.faults[0];
    assert_eq!(f.scope, "2d");
    assert_eq!(f.block, "ccx");
    assert_eq!(f.stage, FlowStage::Route);
    assert_eq!(f.attempts, RetryPolicy::default().max_attempts);
    assert_eq!(f.disposition, Disposition::Degraded);
    for (name, _, m) in &result.per_block {
        assert_eq!(m.degraded, name == "ccx", "only ccx may degrade");
    }
    // the degraded analytical estimate still rolls up into chip totals
    assert!(result.chip.power.total_w() > 0.0);
    assert!(result.chip.footprint_um2 > 0.0);
    // provenance also landed in the global log, in the same shape
    assert_eq!(take_fault_log(), result.faults);
}

#[test]
fn injected_panic_recovers_on_the_first_retry() {
    let _g = exclusive();
    // `:1` fires on attempt 0 only: the panic unwinds through the
    // isolation boundary, the retry runs clean and recovers the block
    install_fault_plan(FaultPlan::parse("place:ccx:panic:1").unwrap());
    let result = run(DesignStyle::Flat2d, 1, None);
    clear_fault_plan();
    let _ = take_fault_log();

    assert_eq!(result.faults.len(), 1);
    let f = &result.faults[0];
    assert_eq!(f.block, "ccx");
    assert_eq!(f.stage, FlowStage::Place);
    assert_eq!(f.attempts, 2, "first run + one retry");
    assert_eq!(f.disposition, Disposition::Recovered);
    assert!(
        result.per_block.iter().all(|(_, _, m)| !m.degraded),
        "a recovered block carries real flow results"
    );
}

#[test]
fn faulted_runs_are_thread_invariant() {
    let _g = exclusive();
    // one permanent panic (degrades) plus one transient error (recovers)
    let plan = FaultPlan::parse("route:ccx:panic,sta:mcu0:error:1").unwrap();
    install_fault_plan(plan.clone());
    let serial = run(DesignStyle::CoreCache, 1, None);
    let _ = take_fault_log();
    install_fault_plan(plan);
    let parallel = run(DesignStyle::CoreCache, 4, None);
    clear_fault_plan();
    let _ = take_fault_log();

    assert_eq!(serial.faults.len(), 2);
    assert_same(&serial, &parallel);
}

#[test]
fn checkpoint_resume_replays_blocks_byte_identically() {
    let _g = exclusive();
    let store = Arc::new(CheckpointStore::in_memory());
    let first = run(DesignStyle::CoreCache, 1, Some(store.clone()));
    assert_eq!(store.len(), first.per_block.len(), "every block stored");
    assert_eq!(store.hits(), 0, "a cold store replays nothing");

    // resume with a different thread count: every block replays
    let resumed = run(DesignStyle::CoreCache, 4, Some(store.clone()));
    assert_eq!(store.hits() as usize, first.per_block.len());
    assert_same(&first, &resumed);
}

#[test]
fn torn_checkpoint_tail_is_recomputed_on_resume() {
    let _g = exclusive();
    let path =
        std::env::temp_dir().join(format!("foldic-fault-itest-{}.jsonl", std::process::id()));
    let _ = std::fs::remove_file(&path);
    let first = {
        let store = Arc::new(CheckpointStore::open(&path).unwrap());
        run(DesignStyle::Flat2d, 2, Some(store))
    };

    // simulate a kill mid-append: chop into the last entry
    let bytes = std::fs::read(&path).unwrap();
    std::fs::write(&path, &bytes[..bytes.len() - 40]).unwrap();

    let store = Arc::new(CheckpointStore::open(&path).unwrap());
    let loaded = store.len();
    assert!(
        loaded < first.per_block.len(),
        "the torn entry must be dropped"
    );
    let resumed = run(DesignStyle::Flat2d, 1, Some(store.clone()));
    assert_eq!(store.hits() as usize, loaded, "intact entries replay");
    assert_same(&first, &resumed);
    let _ = std::fs::remove_file(&path);
}
