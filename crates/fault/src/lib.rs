#![warn(missing_docs)]
#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]
//! Fault tolerance for the foldic flow.
//!
//! The paper's study is a long multi-stage pipeline (floorplan →
//! partition → 3D place → route → STA → power) over dozens of blocks and
//! many fold/bonding configurations. A full-chip sweep must survive a
//! per-block failure and finish with partial results and provenance
//! instead of aborting wholesale. This crate supplies the four pieces the
//! rest of the workspace builds that on:
//!
//! * a typed error hierarchy — [`FlowError`] carries the failing
//!   [`FlowStage`], the block, a [`FaultCause`] and recoverability, so the
//!   per-block flow path can return `Result` instead of panicking;
//! * deterministic fault injection — a [`FaultPlan`] names
//!   `stage × block` sites (explicitly or seeded) where a panic, error or
//!   slowdown is injected, letting tests prove isolation, retry
//!   determinism and resume correctness without real failures;
//! * retry/degradation provenance — [`FaultRecord`]s describe what
//!   happened at each faulted site (attempts, final disposition) and land
//!   in run manifests via a process-global [`take_fault_log`];
//! * checkpoint/resume — [`CheckpointStore`] persists completed per-block
//!   results as append-only JSONL so an interrupted full-chip run can be
//!   resumed byte-identically;
//! * worker supervision — [`PoisonLedger`] quarantines spec digests whose
//!   runs keep panicking and [`CircuitBreaker`] sheds load while the
//!   worker pool is unhealthy, both as pure clock-explicit state machines
//!   the serve scheduler drives under its own lock.
//!
//! Everything here is deterministic: injection decisions are pure
//! functions of `(site, attempt)`, and log/checkpoint contents are sorted
//! before they reach any comparison.

pub mod checkpoint;
pub mod deadline;
pub mod inject;
pub mod resource;
pub mod retry;
pub mod supervise;

pub use checkpoint::{CheckpointError, CheckpointStore};
pub use deadline::{
    clear_deadline, deadline_active, install_deadline, BudgetSplit, CancelToken, Deadline,
    DeadlinePolicy, Watchdog,
};
pub use inject::{
    clear_fault_plan, fault_point, install_fault_plan, FaultKind, FaultPlan, PlanError,
};
pub use resource::{
    clear_resource, format_bytes, install_resource, job_scope, parse_bytes, parse_stage_mem,
    resource_active, take_peaks, MemGuard, ResourcePolicy, TrackingAlloc,
};
pub use retry::{isolate, log_fault, take_fault_log, Disposition, FaultRecord, RetryPolicy};
pub use supervise::{
    Admission, BreakerConfig, BreakerState, CircuitBreaker, PoisonLedger, DEFAULT_POISON_THRESHOLD,
};

use std::fmt;

/// A stage of the per-block physical design flow, used to attribute
/// errors and address fault-injection sites.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum FlowStage {
    /// Input validation at flow entry.
    Validate,
    /// Die partitioning (folding only).
    Partition,
    /// Mixed-size (3D) placement.
    Place,
    /// Timing/power optimization.
    Opt,
    /// Wiring analysis / 3D-via placement.
    Route,
    /// Static timing analysis.
    Sta,
    /// Power sign-off.
    Power,
    /// Chip-level floorplanning.
    Floorplan,
    /// Unattributed (e.g. a panic caught at the job boundary).
    Job,
}

impl FlowStage {
    /// All stages, in flow order.
    pub const ALL: [FlowStage; 9] = [
        FlowStage::Validate,
        FlowStage::Partition,
        FlowStage::Place,
        FlowStage::Opt,
        FlowStage::Route,
        FlowStage::Sta,
        FlowStage::Power,
        FlowStage::Floorplan,
        FlowStage::Job,
    ];

    /// Stable lower-case name (used in fault specs and manifests).
    pub fn as_str(self) -> &'static str {
        match self {
            FlowStage::Validate => "validate",
            FlowStage::Partition => "partition",
            FlowStage::Place => "place",
            FlowStage::Opt => "opt",
            FlowStage::Route => "route",
            FlowStage::Sta => "sta",
            FlowStage::Power => "power",
            FlowStage::Floorplan => "floorplan",
            FlowStage::Job => "job",
        }
    }
}

impl fmt::Display for FlowStage {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

impl std::str::FromStr for FlowStage {
    type Err = String;
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        FlowStage::ALL
            .into_iter()
            .find(|st| st.as_str() == s)
            .ok_or_else(|| format!("unknown flow stage `{s}`"))
    }
}

/// Why a flow stage failed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FaultCause {
    /// The input violated a checked invariant. Retrying the same input
    /// cannot help; the block degrades immediately.
    Invalid(String),
    /// A failure injected by the fault harness.
    Injected(String),
    /// A panic caught at an isolation boundary (payload stringified).
    Panic(String),
    /// A stage reported an internal failure (numerical breakdown,
    /// resource exhaustion, …) that a perturbed retry may avoid.
    Stage(String),
    /// The stage overran its wall-clock budget (or the run was
    /// cancelled) and was cooperatively stopped at a poll point. A retry
    /// gets a larger share of the remaining budget, so this is
    /// recoverable.
    TimedOut(String),
    /// The stage overran its memory budget and was cooperatively
    /// stopped at a poll point. A retry gets a larger budget, so this
    /// is recoverable.
    MemExceeded(String),
}

impl FaultCause {
    /// The human-readable message inside the cause.
    pub fn message(&self) -> &str {
        match self {
            FaultCause::Invalid(m)
            | FaultCause::Injected(m)
            | FaultCause::Panic(m)
            | FaultCause::Stage(m)
            | FaultCause::TimedOut(m)
            | FaultCause::MemExceeded(m) => m,
        }
    }

    /// Stable lower-case label.
    pub fn label(&self) -> &'static str {
        match self {
            FaultCause::Invalid(_) => "invalid",
            FaultCause::Injected(_) => "injected",
            FaultCause::Panic(_) => "panic",
            FaultCause::Stage(_) => "stage",
            FaultCause::TimedOut(_) => "timed_out",
            FaultCause::MemExceeded(_) => "mem_exceeded",
        }
    }
}

/// A typed failure of the per-block flow: which stage failed, on which
/// block, why, and whether a retry can plausibly succeed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FlowError {
    /// Stage that failed.
    pub stage: FlowStage,
    /// Block being processed, when known.
    pub block: Option<String>,
    /// Failure cause.
    pub cause: FaultCause,
}

impl FlowError {
    /// A stage-internal failure (recoverable by retry).
    pub fn stage(stage: FlowStage, msg: impl Into<String>) -> Self {
        Self {
            stage,
            block: None,
            cause: FaultCause::Stage(msg.into()),
        }
    }

    /// An invalid-input failure (not recoverable by retry).
    pub fn invalid(stage: FlowStage, msg: impl Into<String>) -> Self {
        Self {
            stage,
            block: None,
            cause: FaultCause::Invalid(msg.into()),
        }
    }

    /// An injected failure from the fault harness.
    pub fn injected(stage: FlowStage, msg: impl Into<String>) -> Self {
        Self {
            stage,
            block: None,
            cause: FaultCause::Injected(msg.into()),
        }
    }

    /// A caught panic payload.
    pub fn panic(msg: impl Into<String>) -> Self {
        Self {
            stage: FlowStage::Job,
            block: None,
            cause: FaultCause::Panic(msg.into()),
        }
    }

    /// A wall-clock timeout (recoverable — retries get a larger budget).
    pub fn timed_out(stage: FlowStage, msg: impl Into<String>) -> Self {
        Self {
            stage,
            block: None,
            cause: FaultCause::TimedOut(msg.into()),
        }
    }

    /// A memory-budget breach (recoverable — retries get a larger
    /// budget).
    pub fn mem_exceeded(stage: FlowStage, msg: impl Into<String>) -> Self {
        Self {
            stage,
            block: None,
            cause: FaultCause::MemExceeded(msg.into()),
        }
    }

    /// `true` when the failure was a wall-clock timeout.
    pub fn is_timeout(&self) -> bool {
        matches!(self.cause, FaultCause::TimedOut(_))
    }

    /// `true` when the failure was a memory-budget breach.
    pub fn is_mem_exceeded(&self) -> bool {
        matches!(self.cause, FaultCause::MemExceeded(_))
    }

    /// Attributes the error to a block (keeps an existing attribution).
    pub fn with_block(mut self, block: &str) -> Self {
        if self.block.is_none() {
            self.block = Some(block.to_owned());
        }
        self
    }

    /// `true` when a perturbed/relaxed retry may succeed. Invalid input
    /// fails identically on every attempt, so it degrades immediately.
    pub fn recoverable(&self) -> bool {
        !matches!(self.cause, FaultCause::Invalid(_))
    }
}

impl fmt::Display for FlowError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match &self.block {
            Some(b) => write!(
                f,
                "{} failed at {} ({}): {}",
                b,
                self.stage,
                self.cause.label(),
                self.cause.message()
            ),
            None => write!(
                f,
                "{} failed ({}): {}",
                self.stage,
                self.cause.label(),
                self.cause.message()
            ),
        }
    }
}

impl std::error::Error for FlowError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stage_names_roundtrip() {
        for stage in FlowStage::ALL {
            assert_eq!(stage.as_str().parse::<FlowStage>().unwrap(), stage);
        }
        assert!("bogus".parse::<FlowStage>().is_err());
    }

    #[test]
    fn recoverability_follows_cause() {
        assert!(FlowError::stage(FlowStage::Place, "diverged").recoverable());
        assert!(FlowError::injected(FlowStage::Route, "x").recoverable());
        assert!(FlowError::panic("boom").recoverable());
        let timeout = FlowError::timed_out(FlowStage::Route, "budget spent");
        assert!(timeout.recoverable() && timeout.is_timeout());
        assert_eq!(timeout.cause.label(), "timed_out");
        let mem = FlowError::mem_exceeded(FlowStage::Place, "budget spent");
        assert!(mem.recoverable() && mem.is_mem_exceeded() && !mem.is_timeout());
        assert_eq!(mem.cause.label(), "mem_exceeded");
        assert!(!FlowError::invalid(FlowStage::Validate, "bad outline").recoverable());
    }

    #[test]
    fn display_mentions_stage_block_and_cause() {
        let e = FlowError::stage(FlowStage::Sta, "no paths").with_block("spc0");
        let s = e.to_string();
        assert!(
            s.contains("spc0") && s.contains("sta") && s.contains("no paths"),
            "{s}"
        );
        // with_block keeps the first attribution
        let e2 = e.clone().with_block("other");
        assert_eq!(e2.block.as_deref(), Some("spc0"));
    }
}
