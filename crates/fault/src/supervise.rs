//! Worker supervision primitives: a poison-job ledger and a circuit
//! breaker.
//!
//! Both types are **pure state machines** — no clocks, no threads, no
//! locks. Time enters only through explicit [`Instant`] parameters, which
//! is what makes every transition unit-testable without sleeping, and the
//! caller (the serve scheduler) holds them under its own state lock so no
//! internal synchronization is needed.
//!
//! * [`PoisonLedger`] — counts worker panics per spec digest. A job
//!   whose runs panic [`PoisonLedger::threshold`] times is *poisoned*:
//!   it is failed at dispatch instead of handed to a worker again, so a
//!   deterministic panic cannot crash-loop the pool (and, with a durable
//!   journal, cannot crash-loop the daemon across restarts).
//! * [`CircuitBreaker`] — sheds load while the worker pool is unhealthy.
//!   Consecutive panics trip it open; after a cooldown it admits exactly
//!   one probe (half-open) and either closes on success or re-opens on
//!   failure.

use std::collections::BTreeMap;
use std::time::{Duration, Instant};

/// Counts worker panics per spec digest and quarantines repeat offenders.
///
/// Strikes are recorded only for **panics** (a worker crash), never for
/// ordinary job failures (`Err` from the runner) — a job that cleanly
/// reports "unknown experiment" is the client's problem, not a threat to
/// the pool.
#[derive(Debug, Clone)]
pub struct PoisonLedger {
    threshold: u32,
    strikes: BTreeMap<String, u32>,
    poisoned: u64,
}

impl Default for PoisonLedger {
    fn default() -> Self {
        Self::new(DEFAULT_POISON_THRESHOLD)
    }
}

/// Panics per spec digest before the ledger quarantines it.
pub const DEFAULT_POISON_THRESHOLD: u32 = 2;

impl PoisonLedger {
    /// A ledger that poisons a digest after `threshold` panics
    /// (`threshold` is clamped to at least 1).
    pub fn new(threshold: u32) -> Self {
        Self {
            threshold: threshold.max(1),
            strikes: BTreeMap::new(),
            poisoned: 0,
        }
    }

    /// Panics per digest before quarantine.
    pub fn threshold(&self) -> u32 {
        self.threshold
    }

    /// Records a panic against `digest`. Returns `true` when this strike
    /// crosses the threshold — i.e. the digest just became poisoned.
    pub fn strike(&mut self, digest: &str) -> bool {
        let count = self.strikes.entry(digest.to_owned()).or_insert(0);
        *count += 1;
        if *count == self.threshold {
            self.poisoned += 1;
            true
        } else {
            false
        }
    }

    /// `true` when `digest` has struck out and must not be dispatched.
    pub fn is_poisoned(&self, digest: &str) -> bool {
        self.strikes
            .get(digest)
            .is_some_and(|&count| count >= self.threshold)
    }

    /// Strikes recorded against `digest` so far.
    pub fn strikes(&self, digest: &str) -> u32 {
        self.strikes.get(digest).copied().unwrap_or(0)
    }

    /// Number of digests that have ever crossed the threshold.
    pub fn poisoned_count(&self) -> u64 {
        self.poisoned
    }
}

/// Where a [`CircuitBreaker`] currently stands.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BreakerState {
    /// Healthy: all submissions admitted.
    Closed,
    /// Tripped: submissions shed until the cooldown elapses.
    Open,
    /// Cooling down: exactly one probe admitted; its outcome decides.
    HalfOpen,
}

impl BreakerState {
    /// Stable lower-case label (`closed` / `open` / `half_open`).
    pub fn as_str(self) -> &'static str {
        match self {
            BreakerState::Closed => "closed",
            BreakerState::Open => "open",
            BreakerState::HalfOpen => "half_open",
        }
    }
}

/// What [`CircuitBreaker::try_admit`] decided for one submission.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Admission {
    /// Closed breaker: run normally.
    Allowed,
    /// Half-open breaker: run, and report the outcome — it decides
    /// whether the breaker closes or re-opens.
    Probe,
    /// Open breaker: shed with `Retry-After: retry_after_secs`.
    Shed {
        /// Whole seconds until the cooldown elapses (at least 1).
        retry_after_secs: u32,
    },
}

/// Tuning for a [`CircuitBreaker`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BreakerConfig {
    /// Consecutive worker failures that trip the breaker open.
    pub failure_threshold: u32,
    /// How long the breaker stays open before admitting a probe.
    pub cooldown: Duration,
}

impl Default for BreakerConfig {
    fn default() -> Self {
        Self {
            failure_threshold: 3,
            cooldown: Duration::from_secs(5),
        }
    }
}

/// A consecutive-failure circuit breaker with half-open probing.
///
/// The caller reports worker outcomes via [`CircuitBreaker::record_success`]
/// / [`CircuitBreaker::record_failure`] and asks [`CircuitBreaker::try_admit`]
/// before accepting work. All time is explicit: the same sequence of calls
/// with the same instants always produces the same transitions.
#[derive(Debug, Clone)]
pub struct CircuitBreaker {
    cfg: BreakerConfig,
    state: BreakerState,
    consecutive_failures: u32,
    opened_at: Option<Instant>,
    probe_in_flight: bool,
    transitions: u64,
}

impl CircuitBreaker {
    /// A closed breaker with the given tuning (`failure_threshold` is
    /// clamped to at least 1).
    pub fn new(cfg: BreakerConfig) -> Self {
        Self {
            cfg: BreakerConfig {
                failure_threshold: cfg.failure_threshold.max(1),
                ..cfg
            },
            state: BreakerState::Closed,
            consecutive_failures: 0,
            opened_at: None,
            probe_in_flight: false,
            transitions: 0,
        }
    }

    /// Current state.
    pub fn state(&self) -> BreakerState {
        self.state
    }

    /// Total state transitions so far (closed→open, open→half-open,
    /// half-open→closed, half-open→open each count once).
    pub fn transitions(&self) -> u64 {
        self.transitions
    }

    /// Decides one submission at time `now`.
    pub fn try_admit(&mut self, now: Instant) -> Admission {
        match self.state {
            BreakerState::Closed => Admission::Allowed,
            BreakerState::Open => {
                let since = self.opened_at.unwrap_or(now);
                let elapsed = now.saturating_duration_since(since);
                if elapsed >= self.cfg.cooldown {
                    self.state = BreakerState::HalfOpen;
                    self.transitions += 1;
                    self.probe_in_flight = true;
                    Admission::Probe
                } else {
                    let left = self.cfg.cooldown - elapsed;
                    Admission::Shed {
                        retry_after_secs: (left.as_secs_f64().ceil() as u32).max(1),
                    }
                }
            }
            BreakerState::HalfOpen => {
                if self.probe_in_flight {
                    // One probe at a time: everyone else waits a beat.
                    Admission::Shed {
                        retry_after_secs: 1,
                    }
                } else {
                    self.probe_in_flight = true;
                    Admission::Probe
                }
            }
        }
    }

    /// Reports a healthy worker outcome. A half-open probe success closes
    /// the breaker; in any state the consecutive-failure count resets.
    pub fn record_success(&mut self) {
        self.consecutive_failures = 0;
        if self.state == BreakerState::HalfOpen {
            self.state = BreakerState::Closed;
            self.transitions += 1;
        }
        self.probe_in_flight = false;
        self.opened_at = None;
    }

    /// Clears an in-flight probe without an outcome — the probed job was
    /// cancelled before reaching a worker. The breaker stays half-open
    /// and the next admission probes again, so a cancelled probe cannot
    /// wedge it into shedding forever.
    pub fn abort_probe(&mut self) {
        self.probe_in_flight = false;
    }

    /// Reports a worker failure (panic) at time `now`. Crossing the
    /// threshold — or failing a half-open probe — opens the breaker.
    pub fn record_failure(&mut self, now: Instant) {
        self.consecutive_failures = self.consecutive_failures.saturating_add(1);
        match self.state {
            BreakerState::Closed => {
                if self.consecutive_failures >= self.cfg.failure_threshold {
                    self.state = BreakerState::Open;
                    self.transitions += 1;
                    self.opened_at = Some(now);
                }
            }
            BreakerState::HalfOpen => {
                self.state = BreakerState::Open;
                self.transitions += 1;
                self.opened_at = Some(now);
                self.probe_in_flight = false;
            }
            BreakerState::Open => {
                // Late failure reports while open just refresh the clock.
                self.opened_at = Some(now);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ledger_poisons_at_threshold_and_counts_once() {
        let mut ledger = PoisonLedger::new(2);
        assert!(!ledger.is_poisoned("fnv64:aa"));
        assert!(!ledger.strike("fnv64:aa"), "first strike is a warning");
        assert!(!ledger.is_poisoned("fnv64:aa"));
        assert!(ledger.strike("fnv64:aa"), "second strike poisons");
        assert!(ledger.is_poisoned("fnv64:aa"));
        // further strikes don't re-count the digest
        assert!(!ledger.strike("fnv64:aa"));
        assert_eq!(ledger.poisoned_count(), 1);
        assert_eq!(ledger.strikes("fnv64:aa"), 3);
        // other digests are independent
        assert!(!ledger.is_poisoned("fnv64:bb"));
        assert_eq!(ledger.strikes("fnv64:bb"), 0);
    }

    #[test]
    fn ledger_threshold_is_clamped_to_one() {
        let mut ledger = PoisonLedger::new(0);
        assert!(ledger.strike("d"), "threshold 0 behaves like 1");
        assert!(ledger.is_poisoned("d"));
    }

    #[test]
    fn breaker_trips_after_consecutive_failures_only() {
        let t0 = Instant::now();
        let mut breaker = CircuitBreaker::new(BreakerConfig {
            failure_threshold: 3,
            cooldown: Duration::from_secs(10),
        });
        breaker.record_failure(t0);
        breaker.record_failure(t0);
        // a success in between resets the streak
        breaker.record_success();
        breaker.record_failure(t0);
        breaker.record_failure(t0);
        assert_eq!(breaker.state(), BreakerState::Closed);
        assert_eq!(breaker.try_admit(t0), Admission::Allowed);
        breaker.record_failure(t0);
        assert_eq!(breaker.state(), BreakerState::Open);
    }

    #[test]
    fn open_breaker_sheds_with_remaining_cooldown() {
        let t0 = Instant::now();
        let mut breaker = CircuitBreaker::new(BreakerConfig {
            failure_threshold: 1,
            cooldown: Duration::from_secs(10),
        });
        breaker.record_failure(t0);
        match breaker.try_admit(t0 + Duration::from_secs(4)) {
            Admission::Shed { retry_after_secs } => assert_eq!(retry_after_secs, 6),
            other => panic!("expected Shed, got {other:?}"),
        }
        // still open: no transition happened
        assert_eq!(breaker.state(), BreakerState::Open);
    }

    #[test]
    fn half_open_probe_success_closes_and_failure_reopens() {
        let t0 = Instant::now();
        let cooldown = Duration::from_secs(5);
        let mut breaker = CircuitBreaker::new(BreakerConfig {
            failure_threshold: 1,
            cooldown,
        });
        breaker.record_failure(t0);
        // cooldown elapsed → exactly one probe, others shed
        assert_eq!(breaker.try_admit(t0 + cooldown), Admission::Probe);
        assert_eq!(breaker.state(), BreakerState::HalfOpen);
        assert!(matches!(
            breaker.try_admit(t0 + cooldown),
            Admission::Shed { .. }
        ));
        // probe fails → re-open, clock restarts from the failure
        let t1 = t0 + cooldown + Duration::from_secs(1);
        breaker.record_failure(t1);
        assert_eq!(breaker.state(), BreakerState::Open);
        assert!(matches!(breaker.try_admit(t1), Admission::Shed { .. }));
        // second cooldown → probe again, this time it succeeds
        assert_eq!(breaker.try_admit(t1 + cooldown), Admission::Probe);
        breaker.record_success();
        assert_eq!(breaker.state(), BreakerState::Closed);
        assert_eq!(breaker.try_admit(t1 + cooldown), Admission::Allowed);
        // closed→open, open→half-open, half-open→open, open→half-open,
        // half-open→closed
        assert_eq!(breaker.transitions(), 5);
    }
}
