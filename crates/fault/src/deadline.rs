//! Cooperative deadlines, cancellation, and the run watchdog.
//!
//! The flow's iterative kernels (floorplan SA, analytical placement,
//! routing, optimization rounds) have input-dependent runtime; a run that
//! hangs or silently blows its time budget invalidates a PPA comparison
//! just as surely as a crash. This module bounds wall-clock time the same
//! way `inject`/`retry` bound crashes — cooperatively and
//! deterministically:
//!
//! * a [`CancelToken`] is a shared atomic flag: cancellation is always
//!   *requested*, never preemptive, so a kernel is only interrupted at
//!   the coarse-grained poll points it opts into (per temperature step,
//!   per net, per solver iteration — never per move);
//! * a [`Deadline`] is a monotonic-clock budget; stage budgets derive
//!   from the run's remaining budget via a configurable [`BudgetSplit`]
//!   unless an explicit per-stage override is installed;
//! * a [`Watchdog`] thread trips the run token when the overall deadline
//!   expires (and records a timed-out [`FaultRecord`]), so even a kernel
//!   between poll points is cancelled at its next checkpoint;
//! * a timed-out stage surfaces as a recoverable
//!   [`FaultCause::TimedOut`] [`FlowError`], so the existing retry →
//!   degrade machinery applies unchanged. A retry gets a *larger* share
//!   of the remaining budget (the base stage budget scaled by the
//!   attempt number, clamped to what is left overall), not a fresh one.
//!
//! Determinism: results are only ever gated on the degrade path — a
//! cancelled stage discards its partial work entirely (the full-chip
//! loop restores the pristine block before degrading), so reports stay
//! byte-identical across thread counts whenever the same set of blocks
//! times out. Everything is pay-for-use: with no policy installed,
//! [`poll`] is a single relaxed atomic load.

use crate::retry::{Disposition, FaultRecord};
use crate::{FaultCause, FlowError, FlowStage};
use std::cell::RefCell;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Condvar, Mutex, OnceLock, RwLock};
use std::time::{Duration, Instant};

/// A shared cancellation flag. Clones observe the same flag; checking it
/// is one relaxed atomic load, cheap enough for per-iteration polls.
#[derive(Debug, Clone, Default)]
pub struct CancelToken {
    flag: Arc<AtomicBool>,
}

impl CancelToken {
    /// A fresh, un-cancelled token.
    pub fn new() -> Self {
        Self::default()
    }

    /// Requests cancellation. Idempotent; never blocks.
    pub fn cancel(&self) {
        self.flag.store(true, Ordering::Relaxed);
    }

    /// `true` once [`CancelToken::cancel`] has been called on any clone.
    pub fn is_cancelled(&self) -> bool {
        self.flag.load(Ordering::Relaxed)
    }

    /// The raw flag, for handing to `foldic-exec`'s `run_cancellable`
    /// (which takes a plain `&AtomicBool` to avoid a dependency cycle).
    pub fn flag(&self) -> &AtomicBool {
        &self.flag
    }
}

/// A monotonic-clock wall-time budget, anchored when constructed.
#[derive(Debug, Clone, Copy)]
pub struct Deadline {
    start: Instant,
    budget: Duration,
}

impl Deadline {
    /// A deadline starting now with the given budget.
    pub fn new(budget: Duration) -> Self {
        Self {
            start: Instant::now(),
            budget,
        }
    }

    /// The instant the budget runs out.
    pub fn expires_at(&self) -> Instant {
        self.start + self.budget
    }

    /// Budget left, saturating at zero.
    pub fn remaining(&self) -> Duration {
        self.expires_at().saturating_duration_since(Instant::now())
    }

    /// `true` once the budget is spent.
    pub fn expired(&self) -> bool {
        self.remaining().is_zero()
    }

    /// A child deadline starting now with the given fraction of the
    /// *remaining* budget (so children derived late get less, never
    /// more, than what is left).
    pub fn child(&self, fraction: f64) -> Deadline {
        Deadline::new(self.remaining().mul_f64(fraction.clamp(0.0, 1.0)))
    }
}

/// Default share of the run's *remaining* budget a single stage entry
/// may spend, per [`FlowStage`]. These are heuristics reflecting where
/// the flow's wall time actually goes (placement and optimization
/// dominate); explicit `--stage-timeout` overrides always win.
#[derive(Debug, Clone, Copy)]
pub struct BudgetSplit {
    fractions: [f64; FlowStage::ALL.len()],
}

impl Default for BudgetSplit {
    fn default() -> Self {
        let mut fractions = [0.0; FlowStage::ALL.len()];
        for (slot, stage) in fractions.iter_mut().zip(FlowStage::ALL) {
            *slot = match stage {
                FlowStage::Validate => 0.02,
                FlowStage::Partition => 0.10,
                FlowStage::Place => 0.35,
                FlowStage::Opt => 0.25,
                FlowStage::Route => 0.15,
                FlowStage::Sta => 0.10,
                FlowStage::Power => 0.05,
                FlowStage::Floorplan => 0.25,
                FlowStage::Job => 1.0,
            };
        }
        Self { fractions }
    }
}

impl BudgetSplit {
    /// The share for one stage (in `0.0..=1.0`).
    pub fn fraction(&self, stage: FlowStage) -> f64 {
        let idx = FlowStage::ALL.iter().position(|s| *s == stage);
        idx.map_or(1.0, |i| self.fractions[i])
    }
}

/// What to enforce: an optional overall run budget, optional explicit
/// per-stage budgets, and the split used to derive stage budgets from
/// the overall one when no override is given.
#[derive(Debug, Clone, Default)]
pub struct DeadlinePolicy {
    /// Overall wall-clock budget for the whole run, if any.
    pub overall: Option<Duration>,
    /// Explicit per-stage budgets (`--stage-timeout STAGE=SECS`).
    pub stage_budgets: Vec<(FlowStage, Duration)>,
    /// Split used to derive stage budgets from `overall`.
    pub split: Option<BudgetSplit>,
}

impl DeadlinePolicy {
    /// `true` when the policy enforces nothing (nothing to install).
    pub fn is_empty(&self) -> bool {
        self.overall.is_none() && self.stage_budgets.is_empty()
    }
}

/// Installed (process-global) deadline state.
struct Active {
    overall: Option<Deadline>,
    token: CancelToken,
    stage_budgets: Vec<(FlowStage, Duration)>,
    split: BudgetSplit,
}

static ACTIVE: RwLock<Option<Arc<Active>>> = RwLock::new(None);
/// `true` while a deadline policy is installed.
static ENABLED: AtomicBool = AtomicBool::new(false);
/// Fast-path switch: lets [`poll`] bail with one atomic load when
/// neither the deadline nor the resource layer is installed (the
/// pay-for-use contract for hot loops).
static POLL_ARMED: AtomicBool = AtomicBool::new(false);

/// Recomputes the shared poll switch after either layer's
/// install/clear.
pub(crate) fn rearm_poll() {
    POLL_ARMED.store(
        ENABLED.load(Ordering::Relaxed) || crate::resource::resource_active(),
        Ordering::Relaxed,
    );
}

fn active() -> Option<Arc<Active>> {
    ACTIVE
        .read()
        .unwrap_or_else(|e| e.into_inner())
        .as_ref()
        .map(Arc::clone)
}

/// Installs a deadline policy for the process, anchoring the overall
/// budget now. Returns the run's [`CancelToken`] (for the watchdog and
/// for `foldic-exec` fan-outs). Replaces any previous policy.
pub fn install_deadline(policy: &DeadlinePolicy) -> CancelToken {
    let token = CancelToken::new();
    let state = Active {
        overall: policy.overall.map(Deadline::new),
        token: token.clone(),
        stage_budgets: policy.stage_budgets.clone(),
        split: policy.split.unwrap_or_default(),
    };
    *ACTIVE.write().unwrap_or_else(|e| e.into_inner()) = Some(Arc::new(state));
    ENABLED.store(true, Ordering::Relaxed);
    rearm_poll();
    token
}

/// Removes the installed policy; subsequent polls are no-ops.
pub fn clear_deadline() {
    *ACTIVE.write().unwrap_or_else(|e| e.into_inner()) = None;
    ENABLED.store(false, Ordering::Relaxed);
    rearm_poll();
}

/// `true` while a policy is installed.
pub fn deadline_active() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

fn never_token() -> &'static CancelToken {
    static NEVER: OnceLock<CancelToken> = OnceLock::new();
    NEVER.get_or_init(CancelToken::new)
}

/// The run's cancel token — the installed one, or a shared token that is
/// never cancelled, so fan-out call sites need no branching.
pub fn run_token() -> CancelToken {
    active().map_or_else(|| never_token().clone(), |a| a.token.clone())
}

/// `true` when the installed policy carries an *explicit* budget for
/// `stage`. Chip-level serial stages only opt into a wall-clock scope on
/// an explicit `--stage-timeout` (a derived share would turn the one
/// non-retryable stage into a timing-dependent chip failure).
pub fn has_stage_override(stage: FlowStage) -> bool {
    active().is_some_and(|a| a.stage_budgets.iter().any(|(s, _)| *s == stage))
}

/// One entry on the calling thread's stage-scope stack.
struct Scope {
    stage: FlowStage,
    block: String,
    /// `None` means no wall-clock bound for this stage (token-only).
    expires_at: Option<Instant>,
}

thread_local! {
    static SCOPES: RefCell<Vec<Scope>> = const { RefCell::new(Vec::new()) };
}

/// Pops its scope(s) when dropped; returned by [`stage_scope`].
#[derive(Debug)]
#[must_use = "dropping the guard immediately ends the stage scope"]
pub struct StageGuard {
    pushed: bool,
    mem_pushed: bool,
}

impl Drop for StageGuard {
    fn drop(&mut self) {
        if self.mem_pushed {
            crate::resource::pop_stage();
        }
        if self.pushed {
            SCOPES.with(|s| {
                s.borrow_mut().pop();
            });
        }
    }
}

fn timed_out(stage: FlowStage, block: &str, msg: impl Into<String>) -> FlowError {
    FlowError {
        stage,
        block: Some(block.to_owned()),
        cause: FaultCause::TimedOut(msg.into()),
    }
}

/// Enters a wall-clock scope for one stage of one block's flow, on the
/// calling thread. Inside the scope, [`poll`] (and [`poll_unwind`])
/// check the stage's budget and the run token at the kernel's
/// coarse-grained checkpoints.
///
/// The effective budget is the explicit per-stage override when one is
/// installed, otherwise the [`BudgetSplit`] share of the run's remaining
/// budget; either way it is scaled by `attempt + 1` — a retry gets a
/// larger share of what is left, not a fresh budget — and clamped to the
/// overall remaining budget. With no policy installed this is free and
/// always succeeds.
///
/// # Errors
///
/// Returns a [`FaultCause::TimedOut`] error (recoverable, so the normal
/// retry → degrade path applies) when the run is already cancelled, the
/// overall deadline has already expired at stage entry, or the stage's
/// budget works out to zero.
pub fn stage_scope(stage: FlowStage, block: &str, attempt: u32) -> Result<StageGuard, FlowError> {
    let pushed = match active() {
        None => false,
        Some(active) => {
            if active.token.is_cancelled() {
                return Err(timed_out(stage, block, "run cancelled before stage entry"));
            }
            let overall_end = active.overall.map(|d| d.expires_at());
            let now = Instant::now();
            if overall_end.is_some_and(|end| end <= now) {
                return Err(timed_out(
                    stage,
                    block,
                    "run deadline expired before stage entry",
                ));
            }
            let scale = attempt.saturating_add(1);
            let base = active
                .stage_budgets
                .iter()
                .find(|(s, _)| *s == stage)
                .map(|(_, d)| *d)
                .or_else(|| {
                    active
                        .overall
                        .map(|d| d.remaining().mul_f64(active.split.fraction(stage)))
                });
            let expires_at = match base {
                Some(budget) => {
                    let scaled = budget.saturating_mul(scale);
                    if scaled.is_zero() {
                        return Err(timed_out(stage, block, "stage budget is zero"));
                    }
                    let end = now + scaled;
                    Some(overall_end.map_or(end, |o| end.min(o)))
                }
                None => overall_end,
            };
            SCOPES.with(|s| {
                s.borrow_mut().push(Scope {
                    stage,
                    block: block.to_owned(),
                    expires_at,
                })
            });
            true
        }
    };
    // The memory layer scopes the same stage entries: pushed only after
    // the deadline checks pass, so an entry error leaks no scope.
    let mem_pushed = crate::resource::push_stage(stage, block, attempt);
    Ok(StageGuard { pushed, mem_pushed })
}

/// The cooperative checkpoint kernels call at coarse-grained intervals
/// (per temperature step, per net, per solver iteration). Outside any
/// stage scope — or with no policy installed — this is a no-op costing
/// one relaxed atomic load.
///
/// # Errors
///
/// Returns a [`FaultCause::TimedOut`] error attributed to the innermost
/// scope's stage and block when the run token is cancelled or the
/// stage's budget is spent, or a
/// [`FaultCause::MemExceeded`](crate::FaultCause::MemExceeded) error
/// when a scope on this thread breached its memory budget.
pub fn poll() -> Result<(), FlowError> {
    if !POLL_ARMED.load(Ordering::Relaxed) {
        return Ok(());
    }
    SCOPES.with(|s| {
        let scopes = s.borrow();
        let Some(top) = scopes.last() else {
            return Ok(());
        };
        if let Some(active) = active() {
            if active.token.is_cancelled() {
                return Err(timed_out(top.stage, &top.block, "run cancelled"));
            }
        }
        if top.expires_at.is_some_and(|end| end <= Instant::now()) {
            return Err(timed_out(top.stage, &top.block, "stage budget exhausted"));
        }
        Ok(())
    })?;
    crate::resource::check()
}

/// [`poll`] for infallible kernels (floorplan SA, CTS): a trip unwinds
/// with a typed [`FlowError`] payload to the nearest
/// [`isolate`](crate::isolate) boundary — the same mechanism injected
/// panics use — instead of rippling `Result` through signatures that
/// cannot fail any other way.
///
/// # Panics
///
/// Panics (with a `FlowError` payload) exactly when [`poll`] would
/// return an error.
pub fn poll_unwind() {
    if let Err(e) = poll() {
        std::panic::panic_any(e);
    }
}

/// How an injected `slow` fault stalls. Under an active *bounded* stage
/// scope it models a hung kernel: it sleeps in coarse slices until the
/// deadline layer cancels it, so the stall deterministically becomes a
/// `TimedOut` failure regardless of the budget's value. Without a
/// bounded scope it is the legacy fixed short stall.
///
/// # Errors
///
/// Returns the [`poll`] error that ended the stall.
pub(crate) fn injected_slow_stall() -> Result<(), FlowError> {
    let bounded = ENABLED.load(Ordering::Relaxed)
        && SCOPES.with(|s| s.borrow().last().is_some_and(|sc| sc.expires_at.is_some()));
    if !bounded {
        std::thread::sleep(Duration::from_millis(25));
        return Ok(());
    }
    loop {
        poll()?;
        std::thread::sleep(Duration::from_millis(5));
    }
}

/// Sleeps for `backoff`, waking early if the token is cancelled.
/// Returns `false` when the wait was cut short by cancellation — the
/// caller should stop retrying and degrade.
pub fn backoff_wait(backoff: Duration, token: &CancelToken) -> bool {
    let deadline = Instant::now() + backoff;
    loop {
        if token.is_cancelled() {
            return false;
        }
        let left = deadline.saturating_duration_since(Instant::now());
        if left.is_zero() {
            return true;
        }
        std::thread::sleep(left.min(Duration::from_millis(5)));
    }
}

struct WatchShared {
    disarmed: Mutex<bool>,
    wake: Condvar,
    tripped: AtomicBool,
}

/// A thread that trips a [`CancelToken`] when a [`Deadline`] expires.
///
/// The thread parks on a condvar so a clean run end wakes and joins it
/// immediately — [`Watchdog::disarm`] returns as soon as the thread has
/// exited, regardless of how much budget was left; no thread leaks past
/// it. On a trip it cancels the token and (when a scope label was given)
/// records a timed-out [`FaultRecord`] in the process fault log.
pub struct Watchdog {
    shared: Arc<WatchShared>,
    handle: Option<std::thread::JoinHandle<()>>,
}

impl Watchdog {
    /// Spawns the watchdog for `deadline`, tripping `token` on expiry.
    /// `scope` labels the fault record logged on a trip (`None` logs
    /// nothing — unit tests and embedded uses).
    pub fn spawn(deadline: Deadline, token: CancelToken, scope: Option<&str>) -> Self {
        let shared = Arc::new(WatchShared {
            disarmed: Mutex::new(false),
            wake: Condvar::new(),
            tripped: AtomicBool::new(false),
        });
        let thread_shared = Arc::clone(&shared);
        let scope = scope.map(str::to_owned);
        let handle = std::thread::Builder::new()
            .name("foldic-watchdog".to_owned())
            .spawn(move || {
                let mut disarmed = thread_shared
                    .disarmed
                    .lock()
                    .unwrap_or_else(|e| e.into_inner());
                loop {
                    if *disarmed {
                        return;
                    }
                    let left = deadline.remaining();
                    if left.is_zero() {
                        break;
                    }
                    disarmed = thread_shared
                        .wake
                        .wait_timeout(disarmed, left)
                        .unwrap_or_else(|e| e.into_inner())
                        .0;
                }
                drop(disarmed);
                thread_shared.tripped.store(true, Ordering::Relaxed);
                token.cancel();
                if let Some(scope) = scope {
                    crate::retry::log_fault(FaultRecord {
                        scope,
                        block: "*".to_owned(),
                        stage: FlowStage::Job,
                        attempts: 0,
                        disposition: Disposition::Degraded,
                        timed_out: true,
                        mem_exceeded: false,
                    });
                }
            });
        Self {
            shared,
            // A failed spawn leaves a watchdog that never trips; the
            // deadline is then only enforced at stage entries. That is a
            // graceful degradation, not a correctness problem.
            handle: handle.ok(),
        }
    }

    /// `true` once the deadline expired and the token was tripped.
    pub fn tripped(&self) -> bool {
        self.shared.tripped.load(Ordering::Relaxed)
    }

    fn shut_down(&mut self) {
        *self
            .shared
            .disarmed
            .lock()
            .unwrap_or_else(|e| e.into_inner()) = true;
        self.shared.wake.notify_all();
        if let Some(handle) = self.handle.take() {
            let _ = handle.join();
        }
    }

    /// Stops the watchdog and joins its thread (returns only after the
    /// thread has exited). Returns whether the deadline tripped first.
    pub fn disarm(mut self) -> bool {
        self.shut_down();
        self.tripped()
    }
}

impl Drop for Watchdog {
    fn drop(&mut self) {
        self.shut_down();
    }
}

/// Tests anywhere in this crate that install a process-global policy
/// (deadline or resource) serialize on this.
#[cfg(test)]
pub(crate) fn test_lock() -> std::sync::MutexGuard<'static, ()> {
    static GLOBAL: Mutex<()> = Mutex::new(());
    GLOBAL.lock().unwrap_or_else(|e| e.into_inner())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::take_fault_log;

    fn lock() -> std::sync::MutexGuard<'static, ()> {
        test_lock()
    }

    #[test]
    fn token_is_shared_across_clones() {
        let a = CancelToken::new();
        let b = a.clone();
        assert!(!a.is_cancelled() && !b.is_cancelled());
        b.cancel();
        assert!(a.is_cancelled() && a.flag().load(Ordering::Relaxed));
    }

    #[test]
    fn deadline_remaining_shrinks_and_child_never_exceeds_parent() {
        let d = Deadline::new(Duration::from_secs(60));
        assert!(!d.expired());
        assert!(d.remaining() <= Duration::from_secs(60));
        let child = d.child(0.5);
        assert!(child.remaining() <= Duration::from_secs(30));
        assert!(Deadline::new(Duration::ZERO).expired());
    }

    #[test]
    fn poll_is_a_no_op_without_policy_or_scope() {
        let _g = lock();
        clear_deadline();
        assert!(poll().is_ok());
        assert!(!deadline_active());
        let guard = stage_scope(FlowStage::Place, "b", 0).unwrap();
        assert!(poll().is_ok());
        drop(guard);
    }

    #[test]
    fn stage_scope_errs_when_deadline_already_expired_at_entry() {
        let _g = lock();
        install_deadline(&DeadlinePolicy {
            overall: Some(Duration::ZERO),
            ..DeadlinePolicy::default()
        });
        let err = stage_scope(FlowStage::Route, "ccx", 0).unwrap_err();
        assert!(matches!(err.cause, FaultCause::TimedOut(_)), "{err}");
        assert_eq!(err.stage, FlowStage::Route);
        assert_eq!(err.block.as_deref(), Some("ccx"));
        assert!(err.recoverable(), "timeouts must take the retry path");
        clear_deadline();
    }

    #[test]
    fn zero_budget_stage_times_out_at_entry() {
        let _g = lock();
        install_deadline(&DeadlinePolicy {
            stage_budgets: vec![(FlowStage::Sta, Duration::ZERO)],
            ..DeadlinePolicy::default()
        });
        let err = stage_scope(FlowStage::Sta, "dec", 2).unwrap_err();
        assert!(matches!(err.cause, FaultCause::TimedOut(_)), "{err}");
        // a stage with no budget of its own is unscoped but still fine
        let guard = stage_scope(FlowStage::Place, "dec", 0).unwrap();
        assert!(poll().is_ok());
        drop(guard);
        clear_deadline();
    }

    #[test]
    fn cancelled_token_fails_scope_entry_and_poll() {
        let _g = lock();
        let token = install_deadline(&DeadlinePolicy {
            stage_budgets: vec![(FlowStage::Opt, Duration::from_secs(3600))],
            ..DeadlinePolicy::default()
        });
        let guard = stage_scope(FlowStage::Opt, "fpu", 0).unwrap();
        assert!(poll().is_ok());
        token.cancel();
        let err = poll().unwrap_err();
        assert!(matches!(err.cause, FaultCause::TimedOut(_)), "{err}");
        drop(guard);
        assert!(stage_scope(FlowStage::Opt, "fpu", 1).is_err());
        clear_deadline();
    }

    #[test]
    fn retry_scales_the_stage_budget_but_not_past_the_overall() {
        let _g = lock();
        install_deadline(&DeadlinePolicy {
            overall: Some(Duration::from_secs(3600)),
            stage_budgets: vec![(FlowStage::Route, Duration::from_millis(40))],
            ..DeadlinePolicy::default()
        });
        // attempt 2 gets 3 × 40 ms: a 50 ms wait outlives attempt 0's
        // budget but not attempt 2's.
        let g0 = stage_scope(FlowStage::Route, "b", 0).unwrap();
        std::thread::sleep(Duration::from_millis(50));
        assert!(poll().is_err(), "base budget spent");
        drop(g0);
        let g2 = stage_scope(FlowStage::Route, "b", 2).unwrap();
        std::thread::sleep(Duration::from_millis(50));
        assert!(poll().is_ok(), "retry budget is scaled up");
        drop(g2);
        clear_deadline();
    }

    #[test]
    fn poll_unwind_carries_a_typed_payload() {
        let _g = lock();
        install_deadline(&DeadlinePolicy {
            stage_budgets: vec![(FlowStage::Place, Duration::from_millis(1))],
            ..DeadlinePolicy::default()
        });
        let caught = crate::isolate(|| {
            let _scope = stage_scope(FlowStage::Place, "mcu", 0)?;
            std::thread::sleep(Duration::from_millis(5));
            poll_unwind();
            Ok(())
        });
        let err = caught.unwrap_err();
        assert_eq!(err.stage, FlowStage::Place);
        assert!(matches!(err.cause, FaultCause::TimedOut(_)));
        clear_deadline();
    }

    #[test]
    fn injected_slow_stall_times_out_under_a_bounded_scope() {
        let _g = lock();
        // no scope: the legacy fixed stall succeeds
        clear_deadline();
        assert!(injected_slow_stall().is_ok());
        // bounded scope: the stall models a hang and is cancelled
        install_deadline(&DeadlinePolicy {
            stage_budgets: vec![(FlowStage::Route, Duration::from_millis(30))],
            ..DeadlinePolicy::default()
        });
        let scope = stage_scope(FlowStage::Route, "ccx", 0).unwrap();
        let t0 = Instant::now();
        let err = injected_slow_stall().unwrap_err();
        assert!(matches!(err.cause, FaultCause::TimedOut(_)), "{err}");
        assert_eq!(err.block.as_deref(), Some("ccx"));
        assert!(t0.elapsed() < Duration::from_secs(5));
        drop(scope);
        clear_deadline();
    }

    #[test]
    fn backoff_wait_is_cut_short_by_cancellation() {
        let token = CancelToken::new();
        let cancel = token.clone();
        let t0 = Instant::now();
        let waiter = std::thread::spawn(move || backoff_wait(Duration::from_secs(30), &cancel));
        std::thread::sleep(Duration::from_millis(20));
        token.cancel();
        assert!(!waiter.join().unwrap(), "cancelled wait reports false");
        assert!(
            t0.elapsed() < Duration::from_secs(5),
            "cancellation must not wait out the full backoff"
        );
        // and an uncancelled wait completes
        assert!(backoff_wait(Duration::from_millis(1), &CancelToken::new()));
    }

    #[test]
    fn watchdog_trips_token_and_logs_on_expiry() {
        let token = CancelToken::new();
        let dog = Watchdog::spawn(
            Deadline::new(Duration::from_millis(10)),
            token.clone(),
            Some("wd-test"),
        );
        let t0 = Instant::now();
        while !token.is_cancelled() && t0.elapsed() < Duration::from_secs(5) {
            std::thread::sleep(Duration::from_millis(2));
        }
        assert!(token.is_cancelled(), "watchdog trips the token");
        assert!(dog.disarm(), "disarm reports the trip");
        // the trip logged a timed-out record (other tests share the log)
        let mine: Vec<FaultRecord> = take_fault_log()
            .into_iter()
            .filter(|r| r.scope == "wd-test")
            .collect();
        assert_eq!(mine.len(), 1);
        assert!(mine[0].timed_out);
        assert_eq!(mine[0].stage, FlowStage::Job);
    }

    #[test]
    fn clean_shutdown_joins_without_waiting_out_the_deadline() {
        let token = CancelToken::new();
        let dog = Watchdog::spawn(
            Deadline::new(Duration::from_secs(3600)),
            token.clone(),
            None,
        );
        let t0 = Instant::now();
        assert!(!dog.disarm(), "clean end: no trip");
        assert!(
            t0.elapsed() < Duration::from_secs(5),
            "disarm joins promptly, not after the 1 h deadline"
        );
        assert!(!token.is_cancelled());
        // drop-path shutdown also joins promptly
        let t0 = Instant::now();
        drop(Watchdog::spawn(
            Deadline::new(Duration::from_secs(3600)),
            CancelToken::new(),
            None,
        ));
        assert!(t0.elapsed() < Duration::from_secs(5));
    }
}
