//! Cooperative memory budgets: the resource twin of [`deadline`].
//!
//! Large designs hit the memory wall before the wall-clock one: a single
//! oversized placement can OOM-kill the process and void every
//! durability guarantee the serve layer makes. This module bounds *net
//! allocation* the same way `deadline` bounds wall time — cooperatively,
//! deterministically, and pay-for-use:
//!
//! * a [`TrackingAlloc`] global allocator keeps a per-thread net
//!   allocation counter. With no [`ResourcePolicy`] installed the
//!   counter is off and every allocation pays exactly one relaxed
//!   atomic load — the same disabled-cost contract as
//!   [`deadline::poll`](crate::deadline::poll);
//! * a [`ResourcePolicy`] carries an overall per-block-job budget
//!   (`--mem-budget BYTES`) and explicit per-stage budgets
//!   (`--stage-mem STAGE=BYTES,…`). Budgets are checked at the existing
//!   cooperative poll points — no new instrumentation in kernels;
//! * a breach surfaces as a recoverable
//!   [`FaultCause::MemExceeded`](crate::FaultCause::MemExceeded)
//!   [`FlowError`], so the existing retry → degrade machinery applies
//!   unchanged. A retry gets a *larger* budget (the base budget scaled
//!   by the attempt number), mirroring how deadline retries get a
//!   larger share of the remaining time;
//! * while a policy is installed, every popped scope folds its peak
//!   into a per-stage registry drained by [`take_peaks`] — the
//!   manifest's `resources` section.
//!
//! # Accounting model and determinism boundary
//!
//! The counter is *per-thread net bytes*: allocations add, deallocations
//! subtract, on the thread performing them. A scope measures the delta
//! against the counter at scope entry, so a block-job's measurement is
//! the net memory *that block's own flow* holds on its worker thread —
//! not process RSS, not allocator slack, not other threads' work. That
//! is what makes breach decisions independent of the thread count: the
//! same block does the same allocations from the same baseline whether
//! the pool has 1 or 8 workers, so the same set of blocks degrades and
//! reports stay byte-identical. The cost of that property is that
//! cross-thread frees (memory allocated on one thread, dropped on
//! another) skew the two counters in opposite directions, and peaks are
//! sampled at poll granularity, so budgets need margin and peak metrics
//! are compared with a relative tolerance, never byte-exactly.

use crate::{FaultCause, FlowError, FlowStage};
use std::alloc::{GlobalAlloc, Layout, System};
use std::cell::{Cell, RefCell};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex, RwLock};

/// A [`GlobalAlloc`] wrapper over the system allocator that maintains a
/// per-thread net-allocation counter while a [`ResourcePolicy`] is
/// installed. Declared as the workspace's `#[global_allocator]` by this
/// crate; when no policy is installed each allocation pays one relaxed
/// atomic load and nothing else.
pub struct TrackingAlloc;

#[global_allocator]
static GLOBAL_ALLOC: TrackingAlloc = TrackingAlloc;

thread_local! {
    /// Net bytes allocated minus freed on this thread while tracking was
    /// enabled. `Cell<i64>` with const init: no lazy allocation, no drop
    /// registration, safe to touch from inside the allocator.
    static NET: Cell<i64> = const { Cell::new(0) };
}

#[inline]
fn count(delta: i64) {
    if !MEM_ENABLED.load(Ordering::Relaxed) {
        return;
    }
    // try_with: the allocator runs during TLS teardown too.
    let _ = NET.try_with(|n| n.set(n.get().wrapping_add(delta)));
}

// SAFETY: defers every allocation decision to `System`; the bookkeeping
// around it touches only a const-initialized thread-local Cell and never
// allocates, so it cannot recurse or change allocation behavior.
unsafe impl GlobalAlloc for TrackingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        let ptr = System.alloc(layout);
        if !ptr.is_null() {
            count(layout.size() as i64);
        }
        ptr
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        let ptr = System.alloc_zeroed(layout);
        if !ptr.is_null() {
            count(layout.size() as i64);
        }
        ptr
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout);
        count(-(layout.size() as i64));
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        let new_ptr = System.realloc(ptr, layout, new_size);
        if !new_ptr.is_null() {
            count(new_size as i64 - layout.size() as i64);
        }
        new_ptr
    }
}

/// What to enforce: an optional overall per-block-job budget and
/// optional explicit per-stage budgets, in bytes.
#[derive(Debug, Clone, Default)]
pub struct ResourcePolicy {
    /// Net-allocation budget for one block's whole flow
    /// (`--mem-budget BYTES`), if any.
    pub overall: Option<u64>,
    /// Explicit per-stage budgets (`--stage-mem STAGE=BYTES`).
    pub stage_budgets: Vec<(FlowStage, u64)>,
}

impl ResourcePolicy {
    /// `true` when the policy enforces nothing (nothing to install).
    pub fn is_empty(&self) -> bool {
        self.overall.is_none() && self.stage_budgets.is_empty()
    }

    /// Canonical `STAGE=BYTES,...` spec of the stage budgets (decimal
    /// bytes, input order), for manifest config entries.
    pub fn stage_spec(&self) -> String {
        let entries: Vec<String> = self
            .stage_budgets
            .iter()
            .map(|(stage, bytes)| format!("{stage}={bytes}"))
            .collect();
        entries.join(",")
    }
}

static MEM_ACTIVE: RwLock<Option<Arc<ResourcePolicy>>> = RwLock::new(None);
/// Fast-path switch for the allocator and [`check`]: one relaxed load
/// when no policy is installed.
static MEM_ENABLED: AtomicBool = AtomicBool::new(false);

fn mem_active() -> Option<Arc<ResourcePolicy>> {
    MEM_ACTIVE
        .read()
        .unwrap_or_else(|e| e.into_inner())
        .as_ref()
        .map(Arc::clone)
}

/// Installs a resource policy for the process, enabling allocation
/// tracking and resetting the per-stage peak registry. Replaces any
/// previous policy. Installing an empty policy still enables tracking
/// (peaks are then observational only).
pub fn install_resource(policy: &ResourcePolicy) {
    {
        let mut peaks = PEAKS.lock().unwrap_or_else(|e| e.into_inner());
        *peaks = [0; FlowStage::ALL.len()];
    }
    *MEM_ACTIVE.write().unwrap_or_else(|e| e.into_inner()) = Some(Arc::new(policy.clone()));
    MEM_ENABLED.store(true, Ordering::Relaxed);
    crate::deadline::rearm_poll();
}

/// Removes the installed policy; allocation tracking stops and
/// subsequent polls skip the memory check. The peak registry is left in
/// place for [`take_peaks`].
pub fn clear_resource() {
    *MEM_ACTIVE.write().unwrap_or_else(|e| e.into_inner()) = None;
    MEM_ENABLED.store(false, Ordering::Relaxed);
    crate::deadline::rearm_poll();
}

/// `true` while a resource policy is installed.
pub fn resource_active() -> bool {
    MEM_ENABLED.load(Ordering::Relaxed)
}

/// One entry on the calling thread's memory-scope stack.
struct MemScope {
    stage: FlowStage,
    block: String,
    /// `None` means observational only (peak tracking, no budget).
    budget: Option<u64>,
    /// Thread net counter at scope entry.
    start: i64,
    /// Largest delta observed at a poll point (or at pop).
    peak: i64,
}

thread_local! {
    static MEM_SCOPES: RefCell<Vec<MemScope>> = const { RefCell::new(Vec::new()) };
}

fn thread_net() -> i64 {
    NET.try_with(Cell::get).unwrap_or(0)
}

fn stage_index(stage: FlowStage) -> usize {
    FlowStage::ALL
        .iter()
        .position(|s| *s == stage)
        .unwrap_or(FlowStage::ALL.len() - 1)
}

/// Per-stage peak net bytes, max-merged as scopes pop. Guards nothing
/// hot: touched once per scope exit and by [`take_peaks`].
static PEAKS: Mutex<[i64; FlowStage::ALL.len()]> = Mutex::new([0; FlowStage::ALL.len()]);

fn push_scope(stage: FlowStage, block: &str, budget: Option<u64>) {
    let start = thread_net();
    MEM_SCOPES.with(|s| {
        s.borrow_mut().push(MemScope {
            stage,
            block: block.to_owned(),
            budget,
            start,
            peak: 0,
        })
    });
}

fn pop_scope() {
    let net = thread_net();
    let Some(mut scope) = MEM_SCOPES.with(|s| s.borrow_mut().pop()) else {
        return;
    };
    scope.peak = scope.peak.max(net - scope.start);
    let mut peaks = PEAKS.lock().unwrap_or_else(|e| e.into_inner());
    let slot = &mut peaks[stage_index(scope.stage)];
    *slot = (*slot).max(scope.peak);
}

/// Enters a stage memory scope on the calling thread when a policy is
/// installed; returns whether a scope was pushed (the caller's guard
/// must pop it). The budget is the explicit per-stage override scaled
/// by `attempt + 1` — a retry gets a larger budget, mirroring deadline
/// retries — or observational when the stage has no override. Called by
/// [`stage_scope`](crate::deadline::stage_scope); never fails.
pub(crate) fn push_stage(stage: FlowStage, block: &str, attempt: u32) -> bool {
    let Some(policy) = mem_active() else {
        return false;
    };
    let budget = policy
        .stage_budgets
        .iter()
        .find(|(s, _)| *s == stage)
        .map(|(_, bytes)| bytes.saturating_mul(u64::from(attempt) + 1));
    push_scope(stage, block, budget);
    true
}

/// Pops the scope pushed by [`push_stage`] (deadline guard drop path).
pub(crate) fn pop_stage() {
    pop_scope();
}

/// Pops its scope when dropped; returned by [`job_scope`].
#[derive(Debug)]
#[must_use = "dropping the guard immediately ends the memory scope"]
pub struct MemGuard {
    pushed: bool,
}

impl Drop for MemGuard {
    fn drop(&mut self) {
        if self.pushed {
            pop_scope();
        }
    }
}

/// Enters the whole-block-job memory scope on the calling thread: the
/// overall `--mem-budget` (scaled by `attempt + 1`) applies to the net
/// allocation of everything the block's flow does, across all stages.
/// With no policy installed this is free and pushes nothing.
pub fn job_scope(block: &str, attempt: u32) -> MemGuard {
    let Some(policy) = mem_active() else {
        return MemGuard { pushed: false };
    };
    let budget = policy
        .overall
        .map(|bytes| bytes.saturating_mul(u64::from(attempt) + 1));
    push_scope(FlowStage::Job, block, budget);
    MemGuard { pushed: true }
}

/// The memory half of [`poll`](crate::deadline::poll): updates every
/// scope's peak on this thread and reports the first breached budget,
/// attributed to the innermost scope's stage and block (the stage that
/// was running when the budget ran out, which is what the retry →
/// degrade provenance wants).
pub(crate) fn check() -> Result<(), FlowError> {
    if !MEM_ENABLED.load(Ordering::Relaxed) {
        return Ok(());
    }
    let net = thread_net();
    MEM_SCOPES.with(|s| {
        let mut scopes = s.borrow_mut();
        let mut breach: Option<(FlowStage, u64, i64)> = None;
        for scope in scopes.iter_mut() {
            let delta = net - scope.start;
            scope.peak = scope.peak.max(delta);
            if breach.is_none() {
                if let Some(budget) = scope.budget {
                    if delta > 0 && delta as u64 > budget {
                        breach = Some((scope.stage, budget, delta));
                    }
                }
            }
        }
        let (Some((scoped, budget, delta)), Some(top)) = (breach, scopes.last()) else {
            return Ok(());
        };
        Err(FlowError {
            stage: top.stage,
            block: Some(top.block.clone()),
            cause: FaultCause::MemExceeded(format!(
                "{scoped} memory budget exhausted: {delta} net bytes > {budget} budget"
            )),
        })
    })
}

/// Drains the per-stage peak registry (resetting it to zero), returning
/// `(stage, peak_bytes)` for every stage that recorded a positive peak,
/// in flow order. This is the manifest's `resources` section.
pub fn take_peaks() -> Vec<(FlowStage, u64)> {
    let mut peaks = PEAKS.lock().unwrap_or_else(|e| e.into_inner());
    let taken = std::mem::replace(&mut *peaks, [0; FlowStage::ALL.len()]);
    drop(peaks);
    FlowStage::ALL
        .into_iter()
        .zip(taken)
        .filter(|(_, peak)| *peak > 0)
        .map(|(stage, peak)| (stage, peak as u64))
        .collect()
}

/// Parses a byte count with an optional binary suffix: `123` (bytes),
/// `16k` (KiB), `64M` (MiB), `2G` (GiB); suffixes are case-insensitive.
///
/// # Errors
///
/// Returns a message for an empty spec, a non-digit mantissa, a zero
/// budget (use no flag instead), or a value that overflows `u64`.
pub fn parse_bytes(text: &str) -> Result<u64, String> {
    let trimmed = text.trim();
    if trimmed.is_empty() {
        return Err("memory size is empty".to_owned());
    }
    let (digits, multiplier) = match trimmed.as_bytes().last() {
        Some(b'k' | b'K') => (&trimmed[..trimmed.len() - 1], 1u64 << 10),
        Some(b'm' | b'M') => (&trimmed[..trimmed.len() - 1], 1u64 << 20),
        Some(b'g' | b'G') => (&trimmed[..trimmed.len() - 1], 1u64 << 30),
        _ => (trimmed, 1u64),
    };
    if digits.is_empty() || !digits.bytes().all(|b| b.is_ascii_digit()) {
        return Err(format!(
            "memory size `{text}` is not WHOLE_BYTES with an optional k/M/G suffix"
        ));
    }
    let value: u64 = digits
        .parse()
        .map_err(|_| format!("memory size `{text}` overflows"))?;
    let bytes = value
        .checked_mul(multiplier)
        .ok_or_else(|| format!("memory size `{text}` overflows"))?;
    if bytes == 0 {
        return Err(format!("memory size `{text}` must be positive"));
    }
    Ok(bytes)
}

/// Formats a byte count in the smallest form [`parse_bytes`] reads back
/// to the same value: the largest binary suffix that divides it exactly,
/// else plain bytes.
pub fn format_bytes(bytes: u64) -> String {
    for (shift, suffix) in [(30u32, "G"), (20, "M"), (10, "k")] {
        let unit = 1u64 << shift;
        if bytes >= unit && bytes.is_multiple_of(unit) {
            return format!("{}{suffix}", bytes / unit);
        }
    }
    bytes.to_string()
}

/// Parses a `--stage-mem` spec (`STAGE=BYTES,...`, byte counts as in
/// [`parse_bytes`]) into per-stage budgets.
///
/// # Errors
///
/// Returns a message on an unknown stage, a malformed byte count, a
/// duplicate stage, or a spec with no entries.
pub fn parse_stage_mem(spec: &str) -> Result<Vec<(FlowStage, u64)>, String> {
    let mut budgets: Vec<(FlowStage, u64)> = Vec::new();
    for entry in spec.split(',') {
        let entry = entry.trim();
        if entry.is_empty() {
            continue;
        }
        let Some((stage, bytes)) = entry.split_once('=') else {
            return Err(format!("stage-mem entry `{entry}` is not STAGE=BYTES"));
        };
        let stage: FlowStage = stage.trim().parse()?;
        let bytes = parse_bytes(bytes).map_err(|e| format!("stage-mem entry `{entry}`: {e}"))?;
        if budgets.iter().any(|(s, _)| *s == stage) {
            return Err(format!("stage-mem spec repeats stage `{stage}`"));
        }
        budgets.push((stage, bytes));
    }
    if budgets.is_empty() {
        return Err("stage-mem spec is empty".to_owned());
    }
    Ok(budgets)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::deadline::{poll, stage_scope, test_lock};

    #[test]
    fn parse_bytes_reads_suffixes_and_rejects_junk() {
        assert_eq!(parse_bytes("123"), Ok(123));
        assert_eq!(parse_bytes("16k"), Ok(16 << 10));
        assert_eq!(parse_bytes("64M"), Ok(64 << 20));
        assert_eq!(parse_bytes("2G"), Ok(2 << 30));
        assert_eq!(parse_bytes(" 8K "), Ok(8 << 10));
        for junk in [
            "",
            " ",
            "M",
            "-1",
            "1.5M",
            "64 M",
            "0",
            "0k",
            "1T",
            "abc",
            "0x10",
            "18446744073709551616",
            "99999999999999999999G",
        ] {
            assert!(parse_bytes(junk).is_err(), "`{junk}` must be rejected");
        }
    }

    #[test]
    fn format_bytes_roundtrips_through_parse() {
        for bytes in [1, 123, 1 << 10, 3 << 20, (1 << 20) + 1, 7 << 30, u64::MAX] {
            let text = format_bytes(bytes);
            assert_eq!(parse_bytes(&text), Ok(bytes), "{bytes} -> {text}");
        }
        assert_eq!(format_bytes(64 << 20), "64M");
        assert_eq!(format_bytes(1000), "1000");
    }

    #[test]
    fn parse_stage_mem_reads_specs_and_rejects_duplicates() {
        let budgets = parse_stage_mem("place=64M, route=16k").unwrap();
        assert_eq!(
            budgets,
            vec![(FlowStage::Place, 64 << 20), (FlowStage::Route, 16 << 10)]
        );
        assert!(parse_stage_mem("").is_err());
        assert!(parse_stage_mem(",").is_err());
        assert!(parse_stage_mem("place").is_err());
        assert!(parse_stage_mem("warp=1M").is_err());
        assert!(parse_stage_mem("place=1M,place=2M").is_err());
        assert!(parse_stage_mem("place=zero").is_err());
    }

    #[test]
    fn policy_emptiness_and_stage_spec() {
        assert!(ResourcePolicy::default().is_empty());
        let policy = ResourcePolicy {
            overall: None,
            stage_budgets: vec![(FlowStage::Place, 64 << 20)],
        };
        assert!(!policy.is_empty());
        assert_eq!(policy.stage_spec(), format!("place={}", 64 << 20));
    }

    #[test]
    fn no_policy_means_free_scopes_and_clean_polls() {
        let _g = test_lock();
        clear_resource();
        assert!(!resource_active());
        let guard = job_scope("b", 0);
        assert!(poll().is_ok());
        drop(guard);
    }

    #[test]
    fn job_budget_breach_surfaces_as_recoverable_mem_exceeded() {
        let _g = test_lock();
        install_resource(&ResourcePolicy {
            overall: Some(64 << 10),
            stage_budgets: Vec::new(),
        });
        let guard = job_scope("spc0", 0);
        let hog: Vec<u8> = vec![0; 4 << 20];
        let err = poll().unwrap_err();
        assert!(matches!(err.cause, FaultCause::MemExceeded(_)), "{err}");
        assert_eq!(err.block.as_deref(), Some("spc0"));
        assert_eq!(err.stage, FlowStage::Job);
        assert!(err.recoverable(), "mem breaches must take the retry path");
        drop(hog);
        drop(guard);
        clear_resource();
        assert!(poll().is_ok());
    }

    #[test]
    fn retry_scales_the_budget_up() {
        let _g = test_lock();
        install_resource(&ResourcePolicy {
            overall: Some(64 << 10),
            stage_budgets: Vec::new(),
        });
        // attempt 255 gets 256 x 64 KiB = 16 MiB: a 4 MiB allocation
        // breaches attempt 0's budget but not attempt 255's.
        let guard = job_scope("spc0", 255);
        let hog: Vec<u8> = vec![0; 4 << 20];
        assert!(poll().is_ok(), "retry budget is scaled up");
        drop(hog);
        drop(guard);
        clear_resource();
    }

    #[test]
    fn stage_budget_breach_is_attributed_to_the_stage() {
        let _g = test_lock();
        install_resource(&ResourcePolicy {
            overall: None,
            stage_budgets: vec![(FlowStage::Place, 64 << 10)],
        });
        let outer = job_scope("dec", 0);
        let scope = stage_scope(FlowStage::Place, "dec", 0).unwrap();
        let hog: Vec<u8> = vec![0; 4 << 20];
        let err = poll().unwrap_err();
        assert!(matches!(err.cause, FaultCause::MemExceeded(_)), "{err}");
        assert_eq!(err.stage, FlowStage::Place);
        drop(hog);
        // an unbudgeted stage under the same policy is observational
        drop(scope);
        let scope = stage_scope(FlowStage::Route, "dec", 0).unwrap();
        let hog: Vec<u8> = vec![0; 4 << 20];
        assert!(poll().is_ok());
        drop(hog);
        drop(scope);
        drop(outer);
        clear_resource();
    }

    #[test]
    fn peaks_record_per_stage_and_drain_once() {
        let _g = test_lock();
        install_resource(&ResourcePolicy::default());
        let _ = take_peaks();
        {
            let _job = job_scope("fpu", 0);
            let scope = stage_scope(FlowStage::Sta, "fpu", 0).unwrap();
            let hog: Vec<u8> = vec![0; 2 << 20];
            poll().unwrap();
            drop(hog);
            drop(scope);
        }
        clear_resource();
        let peaks = take_peaks();
        let sta = peaks.iter().find(|(s, _)| *s == FlowStage::Sta);
        assert!(
            sta.is_some_and(|(_, peak)| *peak >= (2 << 20)),
            "sta peak must cover the allocation: {peaks:?}"
        );
        let job = peaks.iter().find(|(s, _)| *s == FlowStage::Job);
        assert!(job.is_some_and(|(_, peak)| *peak >= (2 << 20)), "{peaks:?}");
        assert!(take_peaks().is_empty(), "take_peaks drains");
    }
}
