//! Deterministic fault injection.
//!
//! A [`FaultPlan`] names `stage × block` sites where the flow should
//! fail. The decision whether a site fires is a *pure function* of
//! `(stage, block, attempt)` — no global counters, no clocks — so an
//! injected run is byte-identical across thread counts and across
//! repeated executions, which is what lets integration tests assert on
//! exact retry/degradation behavior.
//!
//! Plans come from an explicit spec string (`repro --faults
//! "route:dec:panic"`) or from a seed ([`FaultPlan::seeded`]) for
//! randomized-but-reproducible harness sweeps. The active plan is
//! process-global ([`install_fault_plan`]); flows consult it through
//! [`fault_point`] at every stage boundary.

use crate::{FaultCause, FlowError, FlowStage};
use std::fmt;
use std::str::FromStr;
use std::sync::RwLock;

/// Why a fault spec was rejected. Typed (rather than a bare message) so
/// callers can distinguish operator typos from structural problems and
/// tests can assert on the exact rejection path.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PlanError {
    /// An entry does not have 2–4 `:`-separated parts.
    Malformed(String),
    /// The stage name is not one of [`FlowStage::ALL`].
    UnknownStage {
        /// The offending entry.
        entry: String,
        /// The unrecognized stage name.
        stage: String,
    },
    /// An entry names an empty block pattern.
    EmptyBlock(String),
    /// The kind is not `panic`, `error`, or `slow`.
    UnknownKind {
        /// The offending entry.
        entry: String,
        /// The unrecognized kind name.
        kind: String,
    },
    /// The attempts bound is not a non-negative integer.
    BadAttempts(String),
    /// Two entries target the same `(stage, block)` site; the second
    /// would be dead (first match fires) and is almost certainly a typo.
    Duplicate(String),
    /// The spec contains no entries at all.
    Empty,
}

impl fmt::Display for PlanError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PlanError::Malformed(entry) => {
                write!(
                    f,
                    "malformed fault `{entry}` (want stage:block[:kind[:attempts]])"
                )
            }
            PlanError::UnknownStage { entry, stage } => {
                write!(f, "fault `{entry}`: unknown flow stage `{stage}`")
            }
            PlanError::EmptyBlock(entry) => {
                write!(f, "fault `{entry}` has an empty block pattern")
            }
            PlanError::UnknownKind { entry, kind } => {
                write!(
                    f,
                    "fault `{entry}`: unknown fault kind `{kind}` (panic|error|slow)"
                )
            }
            PlanError::BadAttempts(entry) => {
                write!(
                    f,
                    "fault `{entry}`: attempts must be a non-negative integer"
                )
            }
            PlanError::Duplicate(entry) => {
                write!(
                    f,
                    "fault `{entry}` duplicates an earlier entry for the same stage and block"
                )
            }
            PlanError::Empty => f.write_str("empty fault spec"),
        }
    }
}

impl std::error::Error for PlanError {}

/// What an injected fault does when it fires.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultKind {
    /// Panic with a [`FlowError`] payload (exercises unwind isolation).
    Panic,
    /// Return `Err(FlowError)` from the stage (exercises typed errors).
    Error,
    /// Stall the stage. Without an active stage deadline this is a brief
    /// fixed sleep that then succeeds (exercises scheduling independence
    /// — a slow block must not change any result). Under an active stage
    /// budget it models a *hung* kernel: the stall lasts until the
    /// deadline layer cancels it, deterministically producing a
    /// `TimedOut` failure — the e2e fixture for deadline testing.
    Slow,
}

impl FaultKind {
    fn as_str(self) -> &'static str {
        match self {
            FaultKind::Panic => "panic",
            FaultKind::Error => "error",
            FaultKind::Slow => "slow",
        }
    }
}

impl FromStr for FaultKind {
    type Err = String;
    fn from_str(s: &str) -> Result<Self, String> {
        match s {
            "panic" => Ok(FaultKind::Panic),
            "error" => Ok(FaultKind::Error),
            "slow" => Ok(FaultKind::Slow),
            other => Err(format!("unknown fault kind `{other}` (panic|error|slow)")),
        }
    }
}

/// One injection site.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct InjectedFault {
    /// Stage the fault fires in.
    pub stage: FlowStage,
    /// Block name pattern: exact name, `prefix*`, or `*` for all blocks.
    pub block: String,
    /// What happens when it fires.
    pub kind: FaultKind,
    /// Fire only on the first `n` attempts (`None` = every attempt).
    /// `Some(1)` makes the first attempt fail and the first retry
    /// recover; `None` exhausts every retry and degrades the block.
    pub attempts: Option<u32>,
}

impl InjectedFault {
    fn matches(&self, stage: FlowStage, block: &str, attempt: u32) -> bool {
        if self.stage != stage {
            return false;
        }
        if let Some(n) = self.attempts {
            if attempt >= n {
                return false;
            }
        }
        match self.block.as_str() {
            "*" => true,
            p if p.ends_with('*') => block.starts_with(&p[..p.len() - 1]),
            p => p == block,
        }
    }
}

/// A deterministic set of injection sites.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct FaultPlan {
    /// Sites, checked in order; the first match fires.
    pub faults: Vec<InjectedFault>,
}

impl FaultPlan {
    /// Parses a comma-separated spec: `stage:block[:kind[:attempts]]`.
    ///
    /// * `route:dec:panic` — panic in `dec`'s route stage on every
    ///   attempt (the block degrades after the retry budget).
    /// * `place:mcu0:error:1` — error on attempt 0 only (the first
    ///   retry recovers).
    /// * `sta:*:slow` — slow down every block's STA.
    ///
    /// # Errors
    ///
    /// Returns a typed [`PlanError`] describing the first rejected
    /// entry: malformed shape, unknown stage or kind, empty block,
    /// non-integer attempts, or a duplicate `(stage, block)` site.
    pub fn parse(spec: &str) -> Result<Self, PlanError> {
        let mut faults: Vec<InjectedFault> = Vec::new();
        for entry in spec.split(',').filter(|e| !e.trim().is_empty()) {
            let entry = entry.trim();
            let parts: Vec<&str> = entry.split(':').collect();
            if parts.len() < 2 || parts.len() > 4 {
                return Err(PlanError::Malformed(entry.to_owned()));
            }
            let stage = FlowStage::from_str(parts[0]).map_err(|_| PlanError::UnknownStage {
                entry: entry.to_owned(),
                stage: parts[0].to_owned(),
            })?;
            let block = parts[1];
            if block.is_empty() {
                return Err(PlanError::EmptyBlock(entry.to_owned()));
            }
            let kind = match parts.get(2) {
                Some(k) => FaultKind::from_str(k).map_err(|_| PlanError::UnknownKind {
                    entry: entry.to_owned(),
                    kind: (*k).to_owned(),
                })?,
                None => FaultKind::Error,
            };
            let attempts = match parts.get(3) {
                Some(n) => Some(
                    n.parse::<u32>()
                        .map_err(|_| PlanError::BadAttempts(entry.to_owned()))?,
                ),
                None => None,
            };
            if faults.iter().any(|f| f.stage == stage && f.block == block) {
                return Err(PlanError::Duplicate(entry.to_owned()));
            }
            faults.push(InjectedFault {
                stage,
                block: block.to_owned(),
                kind,
                attempts,
            });
        }
        if faults.is_empty() {
            return Err(PlanError::Empty);
        }
        Ok(Self { faults })
    }

    /// A single-site plan.
    pub fn single(stage: FlowStage, block: &str, kind: FaultKind, attempts: Option<u32>) -> Self {
        Self {
            faults: vec![InjectedFault {
                stage,
                block: block.to_owned(),
                kind,
                attempts,
            }],
        }
    }

    /// A seeded plan for harness sweeps: picks `count` deterministic
    /// `(stage, block)` sites out of the cross product via a splitmix64
    /// stream. The same `(seed, stages, blocks)` always yields the same
    /// plan.
    pub fn seeded(
        seed: u64,
        count: usize,
        stages: &[FlowStage],
        blocks: &[&str],
        kind: FaultKind,
    ) -> Self {
        let mut state = seed ^ 0x9E37_79B9_7F4A_7C15;
        let mut next = move || {
            state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        };
        let mut faults = Vec::with_capacity(count);
        if stages.is_empty() || blocks.is_empty() {
            return Self { faults };
        }
        for _ in 0..count {
            let s = stages[(next() % stages.len() as u64) as usize];
            let b = blocks[(next() % blocks.len() as u64) as usize];
            faults.push(InjectedFault {
                stage: s,
                block: b.to_owned(),
                kind,
                attempts: None,
            });
        }
        Self { faults }
    }

    /// The fault that fires at `(stage, block, attempt)`, if any. Pure:
    /// same arguments, same answer, on every thread.
    pub fn should_fire(&self, stage: FlowStage, block: &str, attempt: u32) -> Option<FaultKind> {
        self.faults
            .iter()
            .find(|f| f.matches(stage, block, attempt))
            .map(|f| f.kind)
    }

    /// Canonical spec text (parseable by [`FaultPlan::parse`]).
    pub fn to_spec(&self) -> String {
        self.faults
            .iter()
            .map(|f| {
                let mut s = format!("{}:{}:{}", f.stage, f.block, f.kind.as_str());
                if let Some(n) = f.attempts {
                    s.push(':');
                    s.push_str(&n.to_string());
                }
                s
            })
            .collect::<Vec<_>>()
            .join(",")
    }
}

static PLAN: RwLock<Option<FaultPlan>> = RwLock::new(None);

/// Silences the panic hook for panics carrying a typed [`FlowError`]
/// payload: injected panics unwind through [`crate::isolate`] by design,
/// so the default hook's backtrace is pure noise (once per attempt).
/// Every other panic still reaches the previously installed hook.
fn silence_injected_panics() {
    static ONCE: std::sync::Once = std::sync::Once::new();
    ONCE.call_once(|| {
        let previous = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            if info.payload().downcast_ref::<FlowError>().is_none() {
                previous(info);
            }
        }));
    });
}

/// Installs `plan` as the process-global fault plan.
pub fn install_fault_plan(plan: FaultPlan) {
    silence_injected_panics();
    *PLAN.write().unwrap_or_else(|e| e.into_inner()) = Some(plan);
}

/// Removes the active fault plan.
pub fn clear_fault_plan() {
    *PLAN.write().unwrap_or_else(|e| e.into_inner()) = None;
}

/// `true` when a fault plan is installed.
pub fn fault_plan_active() -> bool {
    PLAN.read().unwrap_or_else(|e| e.into_inner()).is_some()
}

/// The stage-boundary hook: consults the active plan and, when a site
/// fires, panics, returns an error, or sleeps according to the injected
/// kind. A no-op (one relaxed read) when no plan is installed.
///
/// # Errors
///
/// Returns `Err(FlowError)` with [`FaultCause::Injected`] when an
/// `error`-kind fault fires at this site, or with
/// [`FaultCause::TimedOut`] when a `slow`-kind fault stalls past an
/// active stage deadline.
///
/// # Panics
///
/// Panics with a [`FlowError`] payload when a `panic`-kind fault fires —
/// by design; the payload is recovered intact by [`crate::isolate`].
pub fn fault_point(stage: FlowStage, block: &str, attempt: u32) -> Result<(), FlowError> {
    let guard = PLAN.read().unwrap_or_else(|e| e.into_inner());
    let Some(plan) = guard.as_ref() else {
        return Ok(());
    };
    match plan.should_fire(stage, block, attempt) {
        None => Ok(()),
        Some(FaultKind::Slow) => {
            drop(guard);
            crate::deadline::injected_slow_stall()
        }
        Some(FaultKind::Error) => Err(FlowError {
            stage,
            block: Some(block.to_owned()),
            cause: FaultCause::Injected(format!("injected error (attempt {attempt})")),
        }),
        Some(FaultKind::Panic) => {
            drop(guard);
            std::panic::panic_any(FlowError {
                stage,
                block: Some(block.to_owned()),
                cause: FaultCause::Injected(format!("injected panic (attempt {attempt})")),
            });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_roundtrips_and_validates() {
        let plan = FaultPlan::parse("route:dec:panic,place:mcu0:error:1,sta:*:slow").unwrap();
        assert_eq!(plan.faults.len(), 3);
        assert_eq!(FaultPlan::parse(&plan.to_spec()).unwrap(), plan);
        // default kind is error
        let d = FaultPlan::parse("opt:ccu").unwrap();
        assert_eq!(d.faults[0].kind, FaultKind::Error);
        assert!(FaultPlan::parse("bogus:x").is_err());
        assert!(FaultPlan::parse("route:").is_err());
        assert!(FaultPlan::parse("").is_err());
        assert!(FaultPlan::parse("route:x:panic:abc").is_err());
    }

    #[test]
    fn parse_errors_are_typed_per_rejection_path() {
        use PlanError::*;
        assert_eq!(
            FaultPlan::parse("route").unwrap_err(),
            Malformed("route".to_owned())
        );
        assert_eq!(
            FaultPlan::parse("a:b:c:d:e").unwrap_err(),
            Malformed("a:b:c:d:e".to_owned())
        );
        assert_eq!(
            FaultPlan::parse("warp:dec").unwrap_err(),
            UnknownStage {
                entry: "warp:dec".to_owned(),
                stage: "warp".to_owned()
            }
        );
        assert_eq!(
            FaultPlan::parse("route:").unwrap_err(),
            EmptyBlock("route:".to_owned())
        );
        assert_eq!(
            FaultPlan::parse("route:dec:hang").unwrap_err(),
            UnknownKind {
                entry: "route:dec:hang".to_owned(),
                kind: "hang".to_owned()
            }
        );
        for bad in [
            "route:dec:panic:-1",
            "route:dec:panic:1.5",
            "route:dec:panic:x",
        ] {
            assert_eq!(
                FaultPlan::parse(bad).unwrap_err(),
                BadAttempts(bad.to_owned()),
                "{bad}"
            );
        }
        assert_eq!(
            FaultPlan::parse("route:dec:panic,route:dec:error").unwrap_err(),
            Duplicate("route:dec:error".to_owned())
        );
        // same block at a different stage is not a duplicate
        assert!(FaultPlan::parse("route:dec:panic,sta:dec:error").is_ok());
        assert_eq!(FaultPlan::parse(" , ,").unwrap_err(), Empty);
        // every variant renders a human-readable message
        for spec in [
            "route",
            "warp:dec",
            "route:",
            "route:dec:hang",
            "route:d:p:9.1",
            "",
        ] {
            assert!(!FaultPlan::parse(spec).unwrap_err().to_string().is_empty());
        }
    }

    #[test]
    fn firing_is_pure_and_attempt_bounded() {
        let plan = FaultPlan::parse("place:mcu0:error:2,route:l2*:panic").unwrap();
        for _ in 0..3 {
            assert_eq!(
                plan.should_fire(FlowStage::Place, "mcu0", 0),
                Some(FaultKind::Error)
            );
            assert_eq!(
                plan.should_fire(FlowStage::Place, "mcu0", 1),
                Some(FaultKind::Error)
            );
            assert_eq!(plan.should_fire(FlowStage::Place, "mcu0", 2), None);
            assert_eq!(plan.should_fire(FlowStage::Place, "mcu1", 0), None);
            assert_eq!(
                plan.should_fire(FlowStage::Route, "l2d0", 7),
                Some(FaultKind::Panic)
            );
            assert_eq!(plan.should_fire(FlowStage::Sta, "mcu0", 0), None);
        }
    }

    #[test]
    fn seeded_plans_are_reproducible() {
        let stages = [FlowStage::Place, FlowStage::Route, FlowStage::Sta];
        let blocks = ["a", "b", "c", "d"];
        let p1 = FaultPlan::seeded(42, 5, &stages, &blocks, FaultKind::Error);
        let p2 = FaultPlan::seeded(42, 5, &stages, &blocks, FaultKind::Error);
        assert_eq!(p1, p2);
        assert_eq!(p1.faults.len(), 5);
        let p3 = FaultPlan::seeded(43, 5, &stages, &blocks, FaultKind::Error);
        assert_ne!(p1, p3, "different seeds pick different sites");
    }
}
