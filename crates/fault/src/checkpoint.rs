//! Checkpoint/resume for long full-chip runs.
//!
//! A [`CheckpointStore`] persists completed per-block results as
//! append-only JSONL: one header line naming the schema, then one
//! compact-JSON line per entry (`{"key":…,"value":…}`). Appending after
//! every completed block means an interrupted run loses at most the
//! blocks that were in flight; a resumed run replays the finished ones
//! from the store and recomputes only the rest. Values round-trip
//! bit-exactly (the JSON writer uses shortest round-trip float
//! formatting), which is what makes resumed output byte-identical to an
//! uninterrupted run.
//!
//! Loading is tolerant of a torn tail: a process killed mid-append
//! leaves a truncated final line, which is skipped (with everything
//! after it) rather than rejected — those blocks are simply recomputed.

use foldic_obs::json::Json;
use std::collections::BTreeMap;
use std::fs::{File, OpenOptions};
use std::io::{Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

/// Schema tag written as the first line of every checkpoint file.
pub const CHECKPOINT_SCHEMA: &str = "foldic-checkpoint/1";

/// Why a checkpoint file was rejected at load time. Torn tails and
/// mid-file corruption are *not* errors (the intact prefix loads and the
/// rest recomputes); these are the cases where silently proceeding would
/// corrupt a resumed run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CheckpointError {
    /// The file could not be read, created, trimmed, or appended to.
    Io {
        /// The checkpoint path.
        path: PathBuf,
        /// The underlying I/O error, stringified.
        message: String,
    },
    /// The first line is not parseable JSON.
    BadHeader(String),
    /// The header names a different schema (a store written by an
    /// incompatible version must not be replayed).
    SchemaMismatch {
        /// The schema this build writes and accepts.
        want: &'static str,
        /// The schema found in the file, when any.
        got: Option<String>,
    },
    /// The same key appears twice with *different* values — two runs
    /// with different configurations shared the file; replaying either
    /// value silently would corrupt the resume. (Identical duplicates
    /// are fine: re-running a block legitimately re-appends its entry.)
    ConflictingDuplicate(String),
}

impl std::fmt::Display for CheckpointError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CheckpointError::Io { path, message } => {
                write!(f, "checkpoint {}: {message}", path.display())
            }
            CheckpointError::BadHeader(msg) => write!(f, "bad checkpoint header: {msg}"),
            CheckpointError::SchemaMismatch { want, got } => {
                write!(f, "checkpoint schema mismatch: want {want}, got {got:?}")
            }
            CheckpointError::ConflictingDuplicate(key) => write!(
                f,
                "checkpoint key `{key}` appears twice with different values; \
                 refusing to replay an ambiguous store"
            ),
        }
    }
}

impl std::error::Error for CheckpointError {}

/// An append-only key→JSON store backed by a JSONL file (or memory).
///
/// Keys are free-form strings; the flow uses `style_key/block` so one
/// store covers every run scope of a full-chip experiment. Duplicate
/// keys are last-wins, so re-running a block simply supersedes its
/// earlier entry.
pub struct CheckpointStore {
    entries: Mutex<BTreeMap<String, Json>>,
    sink: Mutex<Option<File>>,
    path: Option<PathBuf>,
    hits: AtomicU64,
}

impl std::fmt::Debug for CheckpointStore {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("CheckpointStore")
            .field("path", &self.path)
            .field("len", &self.len())
            .field("hits", &self.hits())
            .finish()
    }
}

impl CheckpointStore {
    /// Opens (or creates) a checkpoint file, loading any entries already
    /// in it. A truncated final line — the signature of a killed run —
    /// is tolerated: reading stops there, the torn entry is dropped, and
    /// the file is trimmed back to its last intact line so later appends
    /// start on a clean boundary.
    ///
    /// # Errors
    ///
    /// Returns a typed [`CheckpointError`] when the file cannot be
    /// created/read, carries a different schema tag, or holds the same
    /// key twice with conflicting values.
    pub fn open(path: &Path) -> Result<Self, CheckpointError> {
        let io = |message: String| CheckpointError::Io {
            path: path.to_owned(),
            message,
        };
        let mut entries: BTreeMap<String, Json> = BTreeMap::new();
        // byte length of the valid prefix (complete, parseable lines)
        let mut valid_end = 0u64;
        if path.exists() {
            let text =
                std::fs::read_to_string(path).map_err(|e| io(format!("cannot read: {e}")))?;
            let mut header_seen = false;
            for line in text.split_inclusive('\n') {
                if !line.ends_with('\n') {
                    break; // torn tail from a killed append
                }
                let trimmed = line.trim();
                if !header_seen && !trimmed.is_empty() {
                    let header = Json::parse(trimmed)
                        .map_err(|e| CheckpointError::BadHeader(e.to_string()))?;
                    match header.get("schema").and_then(Json::as_str) {
                        Some(CHECKPOINT_SCHEMA) => {}
                        other => {
                            return Err(CheckpointError::SchemaMismatch {
                                want: CHECKPOINT_SCHEMA,
                                got: other.map(str::to_owned),
                            })
                        }
                    }
                    header_seen = true;
                } else if !trimmed.is_empty() {
                    // An unparseable mid-file line means corruption; keep
                    // the intact prefix and recompute the rest.
                    let Ok(entry) = Json::parse(trimmed) else {
                        break;
                    };
                    let (Some(key), Some(value)) =
                        (entry.get("key").and_then(Json::as_str), entry.get("value"))
                    else {
                        break;
                    };
                    if entries.get(key).is_some_and(|prev| prev != value) {
                        return Err(CheckpointError::ConflictingDuplicate(key.to_owned()));
                    }
                    entries.insert(key.to_owned(), value.clone());
                }
                valid_end += line.len() as u64;
            }
        }
        let mut sink = OpenOptions::new()
            .create(true)
            .truncate(false)
            .write(true)
            .open(path)
            .map_err(|e| io(format!("cannot open: {e}")))?;
        sink.set_len(valid_end)
            .map_err(|e| io(format!("cannot trim: {e}")))?;
        sink.seek(SeekFrom::End(0))
            .map_err(|e| io(format!("cannot seek: {e}")))?;
        if valid_end == 0 {
            let header =
                Json::obj([("schema".to_owned(), Json::Str(CHECKPOINT_SCHEMA.to_owned()))]);
            writeln!(sink, "{}", header.to_compact())
                .map_err(|e| io(format!("cannot write header: {e}")))?;
        }
        Ok(Self {
            entries: Mutex::new(entries),
            sink: Mutex::new(Some(sink)),
            path: Some(path.to_owned()),
            hits: AtomicU64::new(0),
        })
    }

    /// A store with no backing file (used by tests and `--resume`-less
    /// runs that still want the replay API).
    pub fn in_memory() -> Self {
        Self {
            entries: Mutex::new(BTreeMap::new()),
            sink: Mutex::new(None),
            path: None,
            hits: AtomicU64::new(0),
        }
    }

    /// The backing file, when there is one.
    pub fn path(&self) -> Option<&Path> {
        self.path.as_deref()
    }

    /// Looks up a completed entry; counts a resume hit when found.
    pub fn get(&self, key: &str) -> Option<Json> {
        let found = self
            .entries
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .get(key)
            .cloned();
        if found.is_some() {
            self.hits.fetch_add(1, Ordering::Relaxed);
        }
        found
    }

    /// Records a completed entry and appends it to the backing file
    /// (flushed immediately, so a kill right after loses nothing).
    pub fn put(&self, key: &str, value: Json) {
        let line = Json::obj([
            ("key".to_owned(), Json::Str(key.to_owned())),
            ("value".to_owned(), value.clone()),
        ])
        .to_compact();
        self.entries
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .insert(key.to_owned(), value);
        let mut sink = self.sink.lock().unwrap_or_else(|e| e.into_inner());
        if let Some(file) = sink.as_mut() {
            // Checkpointing is best-effort: an unwritable disk degrades
            // resume, it must not fail the run.
            let _ = writeln!(file, "{line}");
            let _ = file.flush();
        }
    }

    /// Number of stored entries.
    pub fn len(&self) -> usize {
        self.entries.lock().unwrap_or_else(|e| e.into_inner()).len()
    }

    /// `true` when the store holds no entries.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Number of [`CheckpointStore::get`] calls that found an entry —
    /// i.e. blocks skipped on resume.
    pub fn hits(&self) -> u64 {
        self.hits.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join("foldic-fault-tests");
        std::fs::create_dir_all(&dir).unwrap();
        dir.join(format!("{name}-{}.jsonl", std::process::id()))
    }

    #[test]
    fn persists_and_reloads_bit_exact() {
        let path = tmp("roundtrip");
        let _ = std::fs::remove_file(&path);
        let value = Json::obj([
            ("wl".to_owned(), Json::Num(1_234.567_890_123_4)),
            ("pi".to_owned(), Json::Num(std::f64::consts::PI)),
        ]);
        {
            let store = CheckpointStore::open(&path).unwrap();
            store.put("flat2d/dec", value.clone());
            store.put("flat2d/dec", value.clone()); // last-wins duplicate
            store.put("folded/ccu", Json::Num(-1e-17));
        }
        let store = CheckpointStore::open(&path).unwrap();
        assert_eq!(store.len(), 2);
        assert_eq!(store.get("flat2d/dec"), Some(value));
        assert_eq!(store.get("folded/ccu"), Some(Json::Num(-1e-17)));
        assert_eq!(store.get("missing"), None);
        assert_eq!(store.hits(), 2);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn tolerates_torn_tail() {
        let path = tmp("torn");
        let _ = std::fs::remove_file(&path);
        {
            let store = CheckpointStore::open(&path).unwrap();
            store.put("a", Json::Num(1.0));
            store.put("b", Json::Num(2.0));
        }
        // simulate a kill mid-append: chop the last 7 bytes
        let text = std::fs::read_to_string(&path).unwrap();
        std::fs::write(&path, &text[..text.len() - 7]).unwrap();
        let store = CheckpointStore::open(&path).unwrap();
        assert_eq!(store.len(), 1, "torn entry dropped, intact entry kept");
        assert_eq!(store.get("a"), Some(Json::Num(1.0)));
        // the store stays appendable after a torn load
        store.put("c", Json::Num(3.0));
        let again = CheckpointStore::open(&path).unwrap();
        assert_eq!(again.get("c"), Some(Json::Num(3.0)));
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn rejects_wrong_schema() {
        let path = tmp("schema");
        std::fs::write(&path, "{\"schema\":\"other/9\"}\n").unwrap();
        assert_eq!(
            CheckpointStore::open(&path).unwrap_err(),
            CheckpointError::SchemaMismatch {
                want: CHECKPOINT_SCHEMA,
                got: Some("other/9".to_owned())
            }
        );
        std::fs::write(&path, "{\"version\":1}\n").unwrap();
        assert_eq!(
            CheckpointStore::open(&path).unwrap_err(),
            CheckpointError::SchemaMismatch {
                want: CHECKPOINT_SCHEMA,
                got: None
            }
        );
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn rejects_unparseable_header() {
        let path = tmp("badheader");
        std::fs::write(&path, "not json at all\n").unwrap();
        assert!(matches!(
            CheckpointStore::open(&path).unwrap_err(),
            CheckpointError::BadHeader(_)
        ));
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn rejects_conflicting_duplicate_but_keeps_identical_rewrites() {
        let path = tmp("dup");
        let _ = std::fs::remove_file(&path);
        let header = format!("{{\"schema\":\"{CHECKPOINT_SCHEMA}\"}}\n");
        // identical re-append (a legitimately re-run block): loads fine
        std::fs::write(
            &path,
            format!("{header}{{\"key\":\"a\",\"value\":1}}\n{{\"key\":\"a\",\"value\":1}}\n"),
        )
        .unwrap();
        assert_eq!(CheckpointStore::open(&path).unwrap().len(), 1);
        // same key, different value: two incompatible runs shared the
        // file — refuse to replay either
        std::fs::write(
            &path,
            format!("{header}{{\"key\":\"a\",\"value\":1}}\n{{\"key\":\"a\",\"value\":2}}\n"),
        )
        .unwrap();
        assert_eq!(
            CheckpointStore::open(&path).unwrap_err(),
            CheckpointError::ConflictingDuplicate("a".to_owned())
        );
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn io_errors_are_typed() {
        let dir = std::env::temp_dir().join("foldic-fault-tests");
        std::fs::create_dir_all(&dir).unwrap();
        // opening a directory as a checkpoint file fails with Io
        assert!(matches!(
            CheckpointStore::open(&dir).unwrap_err(),
            CheckpointError::Io { .. }
        ));
    }

    #[test]
    fn in_memory_store_needs_no_disk() {
        let store = CheckpointStore::in_memory();
        assert!(store.is_empty());
        store.put("k", Json::Bool(true));
        assert_eq!(store.get("k"), Some(Json::Bool(true)));
        assert_eq!(store.path(), None);
    }
}
