//! Retry policy, panic isolation, and fault provenance records.

use crate::{FlowError, FlowStage};
use foldic_obs::json::Json;
use std::fmt;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::Mutex;
use std::time::Duration;

/// How often a failing block is retried before it degrades.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Total attempts including the first (so `3` = one run + two
    /// retries). Retries perturb the heuristic seeds and progressively
    /// relax the stage configuration; `1` disables retrying.
    pub max_attempts: u32,
    /// Wait between attempts. The wait is cancellable: when the run's
    /// deadline token trips mid-backoff the block stops retrying and
    /// degrades instead of sleeping past the budget. Zero (the default)
    /// retries immediately.
    pub backoff: Duration,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        Self {
            max_attempts: 3,
            backoff: Duration::ZERO,
        }
    }
}

impl RetryPolicy {
    /// A policy with `n` total attempts (clamped to ≥ 1).
    pub fn attempts(n: u32) -> Self {
        Self {
            max_attempts: n.max(1),
            ..Self::default()
        }
    }

    /// The same policy with a backoff between attempts.
    pub fn with_backoff(mut self, backoff: Duration) -> Self {
        self.backoff = backoff;
        self
    }
}

/// Final outcome of a faulted block.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Disposition {
    /// A retry succeeded; the block's results are real flow results.
    Recovered,
    /// Every attempt failed; the block carries analytical estimates.
    Degraded,
}

impl Disposition {
    /// Stable lower-case label.
    pub fn as_str(self) -> &'static str {
        match self {
            Disposition::Recovered => "recovered",
            Disposition::Degraded => "degraded",
        }
    }
}

impl fmt::Display for Disposition {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// Provenance of one faulted block: where it failed, how often it was
/// tried, and how it ended up. These records land in the run manifest's
/// `faults` section and in the report footers of the result tables.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub struct FaultRecord {
    /// Run scope the fault occurred in (e.g. `"core_cache"` or
    /// `"folded_f2b.dvt"`).
    pub scope: String,
    /// Block name.
    pub block: String,
    /// Stage of the *last* failure.
    pub stage: FlowStage,
    /// Attempts consumed (including the first run).
    pub attempts: u32,
    /// Final outcome.
    pub disposition: Disposition,
    /// `true` when the last failure was a wall-clock timeout
    /// ([`FaultCause::TimedOut`](crate::FaultCause::TimedOut)); such
    /// records land in the manifest's `timeouts` section instead of
    /// `faults`.
    pub timed_out: bool,
    /// `true` when the last failure was a memory-budget breach
    /// ([`FaultCause::MemExceeded`](crate::FaultCause::MemExceeded));
    /// such records land in the manifest's `mem_exceeded` section
    /// instead of `faults`.
    pub mem_exceeded: bool,
}

impl fmt::Display for FaultRecord {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}/{}: {} {} after {} attempt{}{}{}",
            self.scope,
            self.block,
            self.stage,
            self.disposition,
            self.attempts,
            if self.attempts == 1 { "" } else { "s" },
            if self.timed_out { " (timed out)" } else { "" },
            if self.mem_exceeded {
                " (mem exceeded)"
            } else {
                ""
            }
        )
    }
}

impl FaultRecord {
    /// JSON form for manifests and checkpoints. The `timed_out` and
    /// `mem_exceeded` keys are only written when set, so records from
    /// runs without deadlines or memory budgets serialize
    /// byte-identically to the earlier formats.
    pub fn to_json(&self) -> Json {
        let mut fields = vec![
            ("scope".to_owned(), Json::Str(self.scope.clone())),
            ("block".to_owned(), Json::Str(self.block.clone())),
            (
                "stage".to_owned(),
                Json::Str(self.stage.as_str().to_owned()),
            ),
            ("attempts".to_owned(), Json::Num(self.attempts as f64)),
            (
                "disposition".to_owned(),
                Json::Str(self.disposition.as_str().to_owned()),
            ),
        ];
        if self.timed_out {
            fields.push(("timed_out".to_owned(), Json::Bool(true)));
        }
        if self.mem_exceeded {
            fields.push(("mem_exceeded".to_owned(), Json::Bool(true)));
        }
        Json::obj(fields)
    }

    /// The manifest-side mirror of this record (plain strings, so
    /// `foldic-obs` needs no knowledge of the flow's enums).
    pub fn to_manifest_entry(&self) -> foldic_obs::manifest::FaultEntry {
        foldic_obs::manifest::FaultEntry {
            scope: self.scope.clone(),
            block: self.block.clone(),
            stage: self.stage.as_str().to_owned(),
            attempts: u64::from(self.attempts),
            disposition: self.disposition.as_str().to_owned(),
        }
    }

    /// Parses the JSON form.
    ///
    /// # Errors
    ///
    /// Returns a message when a field is missing or malformed —
    /// including a non-numeric, negative, fractional, or out-of-range
    /// `attempts` count, which older versions silently truncated.
    pub fn from_json(json: &Json) -> Result<Self, String> {
        let text = |key: &str| -> Result<String, String> {
            json.get(key)
                .and_then(Json::as_str)
                .map(str::to_owned)
                .ok_or_else(|| format!("fault record missing `{key}`"))
        };
        let stage: FlowStage = text("stage")?.parse()?;
        let disposition = match text("disposition")?.as_str() {
            "recovered" => Disposition::Recovered,
            "degraded" => Disposition::Degraded,
            other => return Err(format!("unknown disposition `{other}`")),
        };
        let attempts = match json.get("attempts") {
            None => 1,
            Some(v) => {
                let n = v
                    .as_f64()
                    .ok_or_else(|| "fault record `attempts` is not a number".to_owned())?;
                if !n.is_finite() || n < 0.0 || n.fract() != 0.0 || n > f64::from(u32::MAX) {
                    return Err(format!("fault record `attempts` out of range: {n}"));
                }
                n as u32
            }
        };
        let flag = |key: &str| -> Result<bool, String> {
            match json.get(key) {
                None => Ok(false),
                Some(Json::Bool(b)) => Ok(*b),
                Some(_) => Err(format!("fault record `{key}` is not a bool")),
            }
        };
        Ok(Self {
            scope: text("scope")?,
            block: text("block")?,
            stage,
            attempts,
            disposition,
            timed_out: flag("timed_out")?,
            mem_exceeded: flag("mem_exceeded")?,
        })
    }
}

/// Runs `f` behind an unwind boundary, translating panics into
/// [`FlowError`]s. Injected panics carry a `FlowError` payload and come
/// back intact (stage and block preserved); organic panics are
/// stringified and attributed to [`FlowStage::Job`].
///
/// # Errors
///
/// Propagates `f`'s own error, or the translated panic.
pub fn isolate<R>(f: impl FnOnce() -> Result<R, FlowError>) -> Result<R, FlowError> {
    match catch_unwind(AssertUnwindSafe(f)) {
        Ok(result) => result,
        Err(payload) => Err(match payload.downcast::<FlowError>() {
            Ok(e) => *e,
            Err(payload) => {
                let msg = payload
                    .downcast_ref::<&str>()
                    .map(|s| (*s).to_owned())
                    .or_else(|| payload.downcast_ref::<String>().cloned())
                    .unwrap_or_else(|| "non-string panic payload".to_owned());
                FlowError::panic(msg)
            }
        }),
    }
}

static LOG: Mutex<Vec<FaultRecord>> = Mutex::new(Vec::new());

/// Appends a record to the process-global fault log.
pub fn log_fault(record: FaultRecord) {
    LOG.lock().unwrap_or_else(|e| e.into_inner()).push(record);
}

/// Drains the fault log, sorted into a stable order (scope, block,
/// stage) so manifests are byte-identical across thread counts.
pub fn take_fault_log() -> Vec<FaultRecord> {
    let mut records = std::mem::take(&mut *LOG.lock().unwrap_or_else(|e| e.into_inner()));
    records.sort();
    records
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::FaultCause;

    #[test]
    fn isolate_passes_results_and_translates_panics() {
        assert_eq!(isolate(|| Ok(7)), Ok(7));
        let e = isolate::<()>(|| panic!("organic {}", "boom")).unwrap_err();
        assert_eq!(e.stage, FlowStage::Job);
        assert_eq!(e.cause, FaultCause::Panic("organic boom".to_owned()));
        // injected panics keep their typed payload
        let injected = FlowError::injected(FlowStage::Route, "x").with_block("dec");
        let back = isolate::<()>(|| std::panic::panic_any(injected.clone())).unwrap_err();
        assert_eq!(back, injected);
    }

    #[test]
    fn records_roundtrip_and_sort_stably() {
        let r = FaultRecord {
            scope: "core_cache".into(),
            block: "dec".into(),
            stage: FlowStage::Route,
            attempts: 3,
            disposition: Disposition::Degraded,
            timed_out: false,
            mem_exceeded: false,
        };
        let back = FaultRecord::from_json(&r.to_json()).unwrap();
        assert_eq!(back, r);
        assert!(r.to_string().contains("degraded after 3 attempts"));

        log_fault(FaultRecord {
            scope: "z".into(),
            ..r.clone()
        });
        log_fault(r.clone());
        let drained = take_fault_log();
        // other tests may have logged concurrently; ours are ordered
        let mine: Vec<&FaultRecord> = drained
            .iter()
            .filter(|x| x.block == "dec" && (x.scope == "core_cache" || x.scope == "z"))
            .collect();
        assert_eq!(mine.len(), 2);
        assert!(mine[0].scope <= mine[1].scope);
        assert!(take_fault_log()
            .iter()
            .all(|x| !(x.block == "dec" && x.scope == "core_cache")));
    }

    #[test]
    fn retry_policy_clamps() {
        assert_eq!(RetryPolicy::attempts(0).max_attempts, 1);
        assert_eq!(RetryPolicy::default().max_attempts, 3);
        assert_eq!(RetryPolicy::default().backoff, Duration::ZERO);
        let with = RetryPolicy::attempts(2).with_backoff(Duration::from_millis(10));
        assert_eq!(with.backoff, Duration::from_millis(10));
    }

    #[test]
    fn timed_out_records_mark_display_and_json_but_stay_backward_compatible() {
        let mut r = FaultRecord {
            scope: "2d".into(),
            block: "ccx".into(),
            stage: FlowStage::Route,
            attempts: 2,
            disposition: Disposition::Degraded,
            timed_out: true,
            mem_exceeded: false,
        };
        assert!(r.to_string().ends_with("after 2 attempts (timed out)"));
        let back = FaultRecord::from_json(&r.to_json()).unwrap();
        assert!(back.timed_out);
        // a plain record's JSON has no timed_out key at all, so old
        // checkpoints and manifests are byte-identical
        r.timed_out = false;
        assert!(!r.to_json().to_compact().contains("timed_out"));
        assert!(!r.to_string().contains("timed out"));
    }

    #[test]
    fn mem_exceeded_records_mark_display_and_json_but_stay_backward_compatible() {
        let mut r = FaultRecord {
            scope: "2d".into(),
            block: "spc0".into(),
            stage: FlowStage::Place,
            attempts: 3,
            disposition: Disposition::Degraded,
            timed_out: false,
            mem_exceeded: true,
        };
        assert!(r.to_string().ends_with("after 3 attempts (mem exceeded)"));
        let back = FaultRecord::from_json(&r.to_json()).unwrap();
        assert!(back.mem_exceeded && !back.timed_out);
        // a plain record's JSON has no mem_exceeded key at all, so old
        // checkpoints and manifests are byte-identical
        r.mem_exceeded = false;
        assert!(!r.to_json().to_compact().contains("mem_exceeded"));
        assert!(!r.to_string().contains("mem exceeded"));
        let mut json = r.to_json();
        if let Some(obj) = json.as_obj_mut() {
            obj.insert("mem_exceeded".to_owned(), Json::Num(1.0));
        }
        assert!(FaultRecord::from_json(&json).is_err());
    }

    #[test]
    fn from_json_rejects_malformed_attempts_and_flags() {
        let base = FaultRecord {
            scope: "s".into(),
            block: "b".into(),
            stage: FlowStage::Sta,
            attempts: 1,
            disposition: Disposition::Recovered,
            timed_out: false,
            mem_exceeded: false,
        };
        let with = |key: &str, value: Json| {
            let mut json = base.to_json();
            if let Some(obj) = json.as_obj_mut() {
                obj.insert(key.to_owned(), value);
            }
            json
        };
        for bad in [
            Json::Num(-1.0),
            Json::Num(1.5),
            Json::Num(f64::NAN),
            Json::Num(f64::INFINITY),
            Json::Num(5e12),
            Json::Str("three".into()),
        ] {
            let json = with("attempts", bad.clone());
            assert!(
                FaultRecord::from_json(&json).is_err(),
                "attempts {bad:?} must be rejected"
            );
        }
        assert!(FaultRecord::from_json(&with("timed_out", Json::Num(1.0))).is_err());
        // a missing attempts key still defaults to 1 (legacy records)
        let mut json = base.to_json();
        if let Some(obj) = json.as_obj_mut() {
            obj.remove("attempts");
        }
        assert_eq!(FaultRecord::from_json(&json).unwrap().attempts, 1);
    }
}
