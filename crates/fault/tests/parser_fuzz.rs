//! Adversarial property tests for the fault-layer parsers: the
//! `--faults` spec grammar, the fault-record JSON schema, and the
//! checkpoint store's file loader. All three ingest operator-typed or
//! on-disk input, so the property under test is the same everywhere:
//! arbitrary input yields `Ok` or a typed `Err`, never a panic.
//!
//! Seeding matches `crates/obs/tests/json_fuzz.rs`: `FOLDIC_FUZZ_SEED`
//! (decimal u64) when set, a fixed default otherwise.

use std::collections::BTreeMap;
use std::path::PathBuf;

use foldic_fault::{CheckpointStore, FaultPlan, FaultRecord, FlowStage};
use foldic_obs::json::Json;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

const ITERS: usize = 10_000;

fn fuzz_seed() -> u64 {
    std::env::var("FOLDIC_FUZZ_SEED")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(0xDAC1_4F00D)
}

const KINDS: &[&str] = &["panic", "error", "slow"];

/// Spec soup biased toward the grammar's own tokens, so inputs routinely
/// get past the stage name and into the kind/attempts tail.
fn random_spec(rng: &mut StdRng) -> String {
    let mut spec = String::new();
    for i in 0..rng.gen_range(0..6usize) {
        if i > 0 {
            spec.push(',');
        }
        for _ in 0..rng.gen_range(0..5usize) {
            if rng.gen_bool(0.6) {
                let word = match rng.gen_range(0..4u32) {
                    0 => FlowStage::ALL[rng.gen_range(0..FlowStage::ALL.len())].as_str(),
                    1 => KINDS[rng.gen_range(0..KINDS.len())],
                    2 => "*",
                    _ => "ccx",
                };
                spec.push_str(word);
            } else {
                const BYTES: &[u8] = br#":,* -18xq\t"#;
                spec.push(BYTES[rng.gen_range(0..BYTES.len())] as char);
            }
            if rng.gen_bool(0.5) {
                spec.push(':');
            }
        }
    }
    spec
}

#[test]
fn fault_plan_parse_never_panics() {
    let mut rng = StdRng::seed_from_u64(fuzz_seed());
    for i in 0..ITERS {
        let spec = random_spec(&mut rng);
        let result = std::panic::catch_unwind(|| FaultPlan::parse(&spec).is_ok());
        assert!(
            result.is_ok(),
            "FaultPlan::parse panicked on iteration {i} (seed {}): {spec:?}",
            fuzz_seed()
        );
    }
}

#[test]
fn fault_plan_spec_round_trips() {
    // A canonical spec (what `to_spec` prints: `stage:block:kind[:n]`
    // with unique `(stage, block)` sites) must survive parse → to_spec
    // byte-identically — that string lands in run manifests.
    let mut rng = StdRng::seed_from_u64(fuzz_seed() ^ 0x706C_616E);
    const BLOCKS: &[&str] = &["ccx", "spc*", "*", "mcu0", "l2b", "dec"];
    for i in 0..ITERS {
        let mut sites = Vec::new();
        let mut seen = Vec::new();
        for _ in 0..rng.gen_range(1..5usize) {
            let stage = FlowStage::ALL[rng.gen_range(0..FlowStage::ALL.len())];
            let block = BLOCKS[rng.gen_range(0..BLOCKS.len())];
            if seen.contains(&(stage, block)) {
                continue; // duplicate sites are a parse error by design
            }
            seen.push((stage, block));
            let mut entry = format!("{stage}:{block}:{}", KINDS[rng.gen_range(0..KINDS.len())]);
            if rng.gen() {
                entry.push_str(&format!(":{}", rng.gen_range(0..9u32)));
            }
            sites.push(entry);
        }
        let spec = sites.join(",");
        let plan = FaultPlan::parse(&spec)
            .unwrap_or_else(|e| panic!("canonical spec rejected on iteration {i}: {e}\n{spec}"));
        assert_eq!(plan.to_spec(), spec, "iteration {i} (seed {})", fuzz_seed());
    }
}

/// Random JSON in the neighborhood of the fault-record schema: right
/// keys with wrong types, missing keys, junk keys, wrong enum strings.
fn random_record_json(rng: &mut StdRng) -> Json {
    let mut map = BTreeMap::new();
    for key in [
        "scope",
        "block",
        "stage",
        "attempts",
        "disposition",
        "timed_out",
        "mem_exceeded",
    ] {
        if rng.gen_bool(0.8) {
            let value = match rng.gen_range(0..5u32) {
                0 => Json::Str(
                    ["route", "degraded", "ccx", "recovered", "bogus", ""]
                        [rng.gen_range(0..6usize)]
                    .to_owned(),
                ),
                1 => Json::Num(match rng.gen_range(0..5u32) {
                    0 => f64::from(rng.gen_range(-3..10i32)),
                    1 => 2.5,
                    2 => f64::NAN,
                    3 => f64::INFINITY,
                    _ => 1e300,
                }),
                2 => Json::Bool(rng.gen()),
                3 => Json::Null,
                _ => Json::Arr(vec![Json::Num(1.0)]),
            };
            map.insert(key.to_owned(), value);
        }
    }
    Json::Obj(map)
}

#[test]
fn fault_record_from_json_never_panics_and_round_trips() {
    let mut rng = StdRng::seed_from_u64(fuzz_seed() ^ 0x7265_636F);
    for i in 0..ITERS {
        // schema-shaped junk: typed error or a valid record, no unwind
        let junk = random_record_json(&mut rng);
        let result = std::panic::catch_unwind(|| FaultRecord::from_json(&junk).is_ok());
        assert!(
            result.is_ok(),
            "from_json panicked on iteration {i} (seed {}): {}",
            fuzz_seed(),
            junk.to_compact()
        );
        // a real record must survive to_json → from_json exactly
        let record = FaultRecord {
            scope: ["2d", "core_cache", "folded_f2b.dvt"][rng.gen_range(0..3usize)].to_owned(),
            block: "ccx".to_owned(),
            stage: FlowStage::ALL[rng.gen_range(0..FlowStage::ALL.len())],
            attempts: rng.gen_range(0..5u32),
            disposition: if rng.gen() {
                foldic_fault::Disposition::Recovered
            } else {
                foldic_fault::Disposition::Degraded
            },
            timed_out: rng.gen(),
            mem_exceeded: rng.gen(),
        };
        assert_eq!(
            FaultRecord::from_json(&record.to_json()),
            Ok(record),
            "iteration {i} (seed {})",
            fuzz_seed()
        );
    }
}

fn scratch_file(tag: &str) -> PathBuf {
    std::env::temp_dir().join(format!(
        "foldic-parser-fuzz-{}-{tag}.jsonl",
        std::process::id()
    ))
}

#[test]
fn checkpoint_open_never_panics_on_corrupt_files() {
    // Fewer iterations than the pure parsers: every round touches disk.
    // Each input is a corrupted derivative of a real store file, which
    // exercises the header check, torn-tail trim and duplicate scan far
    // more often than raw noise would.
    let mut rng = StdRng::seed_from_u64(fuzz_seed() ^ 0x636B_7074);
    let path = scratch_file("corrupt");
    let valid = {
        let _ = std::fs::remove_file(&path);
        let store = CheckpointStore::open(&path).expect("fresh store opens");
        store.put("2d/ccx", Json::Num(1.0));
        store.put("core_cache/ccx", Json::Str("ok".to_owned()));
        drop(store);
        std::fs::read(&path).expect("store file readable")
    };
    for i in 0..1_000 {
        let mut bytes = valid.clone();
        match rng.gen_range(0..4u32) {
            // truncate anywhere, including mid-line (a killed append)
            0 => bytes.truncate(rng.gen_range(0..bytes.len() + 1)),
            // flip a byte
            1 => {
                let pos = rng.gen_range(0..bytes.len());
                bytes[pos] = (rng.gen::<u64>() & 0xff) as u8;
            }
            // splice in a junk line
            2 => {
                let pos = rng.gen_range(0..bytes.len());
                let mut junk = random_spec(&mut rng).into_bytes();
                junk.push(b'\n');
                bytes.splice(pos..pos, junk);
            }
            // pure noise
            _ => {
                bytes = (0..rng.gen_range(0..128usize))
                    .map(|_| (rng.gen::<u64>() & 0xff) as u8)
                    .collect();
            }
        }
        std::fs::write(&path, &bytes).expect("write corrupt candidate");
        let result = std::panic::catch_unwind(|| CheckpointStore::open(&path).is_ok());
        assert!(
            result.is_ok(),
            "CheckpointStore::open panicked on iteration {i} (seed {}): {} bytes",
            fuzz_seed(),
            bytes.len()
        );
        // `open` may have trimmed the file; restore a pristine copy of
        // the valid image for the next round's corruption.
        std::fs::write(&path, &valid).expect("restore valid image");
    }
    let _ = std::fs::remove_file(&path);
}

#[test]
fn checkpoint_survives_torn_tail_and_replays_intact_prefix() {
    let path = scratch_file("torn");
    let _ = std::fs::remove_file(&path);
    {
        let store = CheckpointStore::open(&path).expect("fresh store opens");
        store.put("2d/ccx", Json::Num(42.0));
        store.put("2d/dec", Json::Num(7.0));
    }
    // chop the last line mid-entry, as a kill during append would
    let bytes = std::fs::read(&path).expect("readable");
    std::fs::write(&path, &bytes[..bytes.len() - 5]).expect("tear tail");
    let store = CheckpointStore::open(&path).expect("torn store still opens");
    assert_eq!(store.get("2d/ccx"), Some(Json::Num(42.0)));
    assert_eq!(store.get("2d/dec"), None, "torn entry must be dropped");
    let _ = std::fs::remove_file(&path);
}
