//! Adversarial property tests for the resource-governance parsers:
//! `parse_bytes` (`--mem-budget`), `parse_stage_mem` (`--stage-mem`),
//! and the `format_bytes` round trip that puts budgets into manifest
//! config entries. Both parsers ingest operator-typed input, so the
//! property under test matches `parser_fuzz.rs`: arbitrary input yields
//! `Ok` or a typed `Err`, never a panic — and every canonical form
//! survives parse → format → parse byte-identically.
//!
//! Seeding matches `crates/obs/tests/json_fuzz.rs`: `FOLDIC_FUZZ_SEED`
//! (decimal u64) when set, a fixed default otherwise.

use foldic_fault::{format_bytes, parse_bytes, parse_stage_mem, FlowStage};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

const ITERS: usize = 10_000;

fn fuzz_seed() -> u64 {
    std::env::var("FOLDIC_FUZZ_SEED")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(0xDAC1_4F00D)
}

/// Byte-spec soup biased toward the grammar's own tokens (digits and
/// suffixes), so inputs routinely reach the multiplier and overflow
/// paths instead of dying at the first character.
fn random_bytes_spec(rng: &mut StdRng) -> String {
    let mut spec = String::new();
    for _ in 0..rng.gen_range(0..24usize) {
        if rng.gen_bool(0.7) {
            spec.push((b'0' + (rng.gen::<u64>() % 10) as u8) as char);
        } else {
            const BYTES: &[u8] = b"kKmMgG bB.-+_,=\t\x7f";
            spec.push(BYTES[rng.gen_range(0..BYTES.len())] as char);
        }
    }
    spec
}

/// Stage-mem soup: real stage names and `=`/`,` structure often enough
/// to get past the split and into the per-entry byte parser.
fn random_stage_mem_spec(rng: &mut StdRng) -> String {
    let mut spec = String::new();
    for i in 0..rng.gen_range(0..5usize) {
        if i > 0 {
            spec.push(',');
        }
        if rng.gen_bool(0.7) {
            spec.push_str(FlowStage::ALL[rng.gen_range(0..FlowStage::ALL.len())].as_str());
        } else {
            spec.push_str(["plaice", "", "*", "route "][rng.gen_range(0..4usize)]);
        }
        if rng.gen_bool(0.8) {
            spec.push('=');
        }
        spec.push_str(&random_bytes_spec(rng));
    }
    spec
}

#[test]
fn parse_bytes_never_panics() {
    let mut rng = StdRng::seed_from_u64(fuzz_seed());
    for i in 0..ITERS {
        let spec = random_bytes_spec(&mut rng);
        let result = std::panic::catch_unwind(|| parse_bytes(&spec).is_ok());
        assert!(
            result.is_ok(),
            "parse_bytes panicked on iteration {i} (seed {}): {spec:?}",
            fuzz_seed()
        );
    }
}

#[test]
fn parse_bytes_format_bytes_round_trips() {
    // `format_bytes` prints the smallest spelling `parse_bytes` reads
    // back to the same value, and that string lands in boot banners and
    // manifest config entries — both directions must be exact.
    let mut rng = StdRng::seed_from_u64(fuzz_seed() ^ 0x6279_7465);
    for i in 0..ITERS {
        // bias toward suffix-divisible values so every branch of
        // `format_bytes` runs, but keep raw odd byte counts in the mix
        let bytes = match rng.gen_range(0..4u32) {
            0 => rng.gen_range(1..1u64 << 34) & !((1 << 10) - 1),
            1 => rng.gen_range(1..1u64 << 14) << 20,
            2 => rng.gen_range(1..1u64 << 8) << 30,
            _ => rng.gen_range(1..1u64 << 40),
        }
        .max(1);
        let printed = format_bytes(bytes);
        assert_eq!(
            parse_bytes(&printed),
            Ok(bytes),
            "iteration {i} (seed {}): {bytes} printed as {printed:?}",
            fuzz_seed()
        );
        // canonical decimal always parses to itself too (manifest
        // `mem_budget` entries are plain decimal bytes)
        assert_eq!(parse_bytes(&bytes.to_string()), Ok(bytes));
    }
}

#[test]
fn parse_stage_mem_never_panics_and_accepts_its_own_canonical_form() {
    let mut rng = StdRng::seed_from_u64(fuzz_seed() ^ 0x7374_6167);
    for i in 0..ITERS {
        let spec = random_stage_mem_spec(&mut rng);
        let result = std::panic::catch_unwind(|| parse_stage_mem(&spec).is_ok());
        assert!(
            result.is_ok(),
            "parse_stage_mem panicked on iteration {i} (seed {}): {spec:?}",
            fuzz_seed()
        );

        // canonical round trip: distinct stages with positive budgets
        // re-parse to the same list via the policy's `STAGE=BYTES` form
        let mut budgets: Vec<(FlowStage, u64)> = Vec::new();
        for _ in 0..rng.gen_range(1..4usize) {
            let stage = FlowStage::ALL[rng.gen_range(0..FlowStage::ALL.len())];
            if budgets.iter().any(|(s, _)| *s == stage) {
                continue; // duplicate stages are a parse error by design
            }
            budgets.push((stage, rng.gen_range(1..1u64 << 40)));
        }
        let canonical = budgets
            .iter()
            .map(|(stage, bytes)| format!("{stage}={bytes}"))
            .collect::<Vec<_>>()
            .join(",");
        assert_eq!(
            parse_stage_mem(&canonical),
            Ok(budgets),
            "iteration {i} (seed {}): {canonical}",
            fuzz_seed()
        );
    }
}

#[test]
fn parse_bytes_rejections_are_typed_and_name_the_input() {
    // The CLI prints the parser's message verbatim under a usage error,
    // so a rejected spec must be identifiable from the message alone.
    for bad in ["", "  ", "k", "12q", "0", "0k", "99999999999999999999G"] {
        let err = parse_bytes(bad).unwrap_err();
        assert!(
            !err.is_empty(),
            "rejection for {bad:?} must carry a message"
        );
    }
    assert!(
        parse_stage_mem("").is_err(),
        "empty stage-mem spec rejected"
    );
    assert!(
        parse_stage_mem("place=1M,place=2M")
            .unwrap_err()
            .contains("repeats"),
        "duplicate stages rejected with a naming message"
    );
}
