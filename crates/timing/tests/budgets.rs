//! Timing budgets and multi-domain behaviour.

use foldic_route::BlockWiring;
use foldic_t2::T2Config;
use foldic_timing::{analyze, StaConfig, TimingBudgets};

fn setup(name: &str) -> (foldic_netlist::Netlist, foldic_tech::Technology) {
    let (design, tech) = T2Config::tiny().generate();
    (
        design
            .block(design.find_block(name).unwrap())
            .netlist
            .clone(),
        tech,
    )
}

#[test]
fn tighter_input_budgets_monotonically_worsen_slack() {
    let (nl, tech) = setup("mcu0");
    let wiring = BlockWiring::analyze(&nl, &tech, 1.1, None).unwrap();
    let mut prev_tns = -1.0;
    for frac in [0.25, 0.5, 0.7, 0.9] {
        let mut budgets = TimingBudgets::relaxed(&nl, &tech);
        for a in &mut budgets.input_arrival_ps {
            *a = *a / 0.25 * frac;
        }
        let rep = analyze(&nl, &tech, &wiring, &budgets, &StaConfig::default()).unwrap();
        assert!(
            rep.tns_ps >= prev_tns,
            "frac {frac}: tns {} must not improve under pressure (prev {prev_tns})",
            rep.tns_ps
        );
        prev_tns = rep.tns_ps;
    }
}

#[test]
fn tighter_output_budgets_create_endpoint_violations() {
    let (nl, tech) = setup("mcu0");
    let wiring = BlockWiring::analyze(&nl, &tech, 1.1, None).unwrap();
    let relaxed = TimingBudgets::relaxed(&nl, &tech);
    let base = analyze(&nl, &tech, &wiring, &relaxed, &StaConfig::default()).unwrap();
    let mut tight = relaxed.clone();
    for r in &mut tight.output_required_ps {
        *r *= 0.05;
    }
    let rep = analyze(&nl, &tech, &wiring, &tight, &StaConfig::default()).unwrap();
    assert!(rep.violations > base.violations);
    assert!(rep.wns_ps > base.wns_ps);
}

#[test]
fn io_domain_blocks_get_longer_periods() {
    // RTX runs on the 250 MHz I/O clock: its relaxed output budgets must
    // be twice the CPU-domain ones.
    let (rtx, tech) = setup("rtx");
    let (mcu, _) = setup("mcu0");
    let brt = TimingBudgets::relaxed(&rtx, &tech);
    let bmc = TimingBudgets::relaxed(&mcu, &tech);
    let max_rtx = brt
        .output_required_ps
        .iter()
        .cloned()
        .fold(0.0f64, f64::max);
    let max_mcu = bmc
        .output_required_ps
        .iter()
        .cloned()
        .fold(0.0f64, f64::max);
    assert!(max_rtx >= 1.9 * max_mcu, "rtx {max_rtx} vs mcu {max_mcu}");
}

#[test]
fn wire_detour_slows_arrivals() {
    let (nl, tech) = setup("l2t0");
    let budgets = TimingBudgets::relaxed(&nl, &tech);
    let short = BlockWiring::analyze(&nl, &tech, 1.0, None).unwrap();
    let long = BlockWiring::analyze(&nl, &tech, 1.5, None).unwrap();
    let a = analyze(&nl, &tech, &short, &budgets, &StaConfig::default()).unwrap();
    let b = analyze(&nl, &tech, &long, &budgets, &StaConfig::default()).unwrap();
    assert!(b.max_arrival_ps > a.max_arrival_ps);
}

#[test]
fn fewer_layers_mean_slower_wires() {
    let (nl, tech) = setup("l2t0");
    let budgets = TimingBudgets::relaxed(&nl, &tech);
    let wiring = BlockWiring::analyze(&nl, &tech, 1.1, None).unwrap();
    let m7 = analyze(
        &nl,
        &tech,
        &wiring,
        &budgets,
        &StaConfig {
            max_layer: 7,
            via_kind: None,
        },
    )
    .unwrap();
    let m9 = analyze(
        &nl,
        &tech,
        &wiring,
        &budgets,
        &StaConfig {
            max_layer: 9,
            via_kind: None,
        },
    )
    .unwrap();
    assert!(m9.max_arrival_ps < m7.max_arrival_ps);
}

#[test]
fn slack_is_consistent_with_violation_count() {
    let (nl, tech) = setup("rtx");
    let wiring = BlockWiring::analyze(&nl, &tech, 1.1, None).unwrap();
    let mut budgets = TimingBudgets::relaxed(&nl, &tech);
    for r in &mut budgets.output_required_ps {
        *r *= 0.3;
    }
    let rep = analyze(&nl, &tech, &wiring, &budgets, &StaConfig::default()).unwrap();
    if rep.violations == 0 {
        assert_eq!(rep.wns_ps, 0.0);
        assert_eq!(rep.tns_ps, 0.0);
    } else {
        assert!(rep.wns_ps > 0.0);
        assert!(rep.tns_ps >= rep.wns_ps);
    }
}
