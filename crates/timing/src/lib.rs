#![warn(missing_docs)]
#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]
//! Multi-clock static timing analysis with Elmore wire delay.
//!
//! A graph STA over one block's netlist, mirroring what the paper's flow
//! obtains from PrimeTime (§2.2): forward arrival propagation from clocked
//! sources and input ports, backward required-time propagation from
//! endpoints, per-endpoint slack, and the aggregate WNS/TNS the
//! optimization passes (buffering, sizing, Vth assignment) consume.
//!
//! * **Sources** — flip-flop and macro outputs (clock-to-out delay), and
//!   input ports with externally supplied arrival budgets (the chip-level
//!   timing constraints extracted for each block's I/O pins).
//! * **Endpoints** — flip-flop data pins, macro input pins (setup against
//!   the capturing clock), and output ports with required-time budgets.
//! * **Delay model** — library cell delay `intrinsic + R_out·C_load` plus
//!   Elmore wire delay along the Steiner path to each sink; tier-crossing
//!   nets add the TSV / F2F-via RC of the bonding style.
//! * **Combinational cycles** — synthetic netlists may contain loops; the
//!   levelization breaks them by processing strongly-cyclic remainders
//!   with their partially-known arrivals (a standard loop-breaking
//!   approximation).
//!
//! # Examples
//!
//! ```
//! use foldic_t2::T2Config;
//! use foldic_route::BlockWiring;
//! use foldic_timing::{analyze, StaConfig, TimingBudgets};
//!
//! let (design, tech) = T2Config::tiny().generate();
//! let block = design.block(design.find_block("ccu").unwrap());
//! let wiring = BlockWiring::analyze(&block.netlist, &tech, 1.1, None).unwrap();
//! let budgets = TimingBudgets::relaxed(&block.netlist, &tech);
//! let report = analyze(&block.netlist, &tech, &wiring, &budgets, &StaConfig::default()).unwrap();
//! assert!(report.max_arrival_ps > 0.0);
//! ```

use foldic_fault::{FlowError, FlowStage};
use foldic_netlist::{InstMaster, Netlist, PinRef};
use foldic_route::{BlockWiring, ViaPlacement};
use foldic_tech::units::RC_TO_PS;
use foldic_tech::{CellKind, Technology, Via3dKind};

/// Setup margin at capturing endpoints in ps.
pub const SETUP_PS: f64 = 30.0;

/// STA knobs.
#[derive(Debug, Clone)]
pub struct StaConfig {
    /// Highest metal layer available inside the block (sets effective
    /// wire R/C; see the routing policy of §2.2/§6.1).
    pub max_layer: usize,
    /// 3D-via kind on tier-crossing nets, if the block is folded.
    pub via_kind: Option<Via3dKind>,
}

impl Default for StaConfig {
    fn default() -> Self {
        Self {
            max_layer: 7,
            via_kind: None,
        }
    }
}

/// Per-port timing budgets (the "new timing constraints for each block's
/// I/O pins" of §2.2).
#[derive(Debug, Clone)]
pub struct TimingBudgets {
    /// Arrival time at each input port in ps (indexed by `PortId`).
    pub input_arrival_ps: Vec<f64>,
    /// Required time at each output port in ps (indexed by `PortId`).
    pub output_required_ps: Vec<f64>,
}

impl TimingBudgets {
    /// Uniform default budgets: inputs arrive at 25 % of their domain
    /// period, outputs must be ready by 75 %.
    pub fn relaxed(netlist: &Netlist, tech: &Technology) -> Self {
        let mut input = vec![0.0; netlist.num_ports()];
        let mut output = vec![f64::INFINITY; netlist.num_ports()];
        for (pid, port) in netlist.ports() {
            let period = port.domain.period_ps(tech);
            input[pid.index()] = 0.25 * period;
            output[pid.index()] = 0.75 * period;
        }
        Self {
            input_arrival_ps: input,
            output_required_ps: output,
        }
    }
}

/// Result of one STA run.
#[derive(Debug, Clone)]
pub struct TimingReport {
    /// Arrival time at every instance output in ps.
    pub arrival_ps: Vec<f64>,
    /// Slack at every instance output in ps (`+∞` where unconstrained).
    pub slack_ps: Vec<f64>,
    /// Worst negative slack (0 when timing is met).
    pub wns_ps: f64,
    /// Total negative slack over all endpoints.
    pub tns_ps: f64,
    /// Number of violated endpoints.
    pub violations: usize,
    /// Number of timing endpoints.
    pub endpoints: usize,
    /// Largest arrival seen (the critical path length).
    pub max_arrival_ps: f64,
}

impl TimingReport {
    /// `true` when every endpoint meets timing.
    pub fn met(&self) -> bool {
        self.violations == 0
    }
}

/// Effective wire resistance/capacitance per µm under the layer budget.
fn wire_rc(tech: &Technology, max_layer: usize) -> (f64, f64) {
    (
        tech.metal.effective_r_per_um(max_layer),
        tech.metal.effective_c_per_um(max_layer),
    )
}

fn via_rc(tech: &Technology, kind: Via3dKind) -> (f64, f64) {
    match kind {
        Via3dKind::Tsv => (tech.tsv.resistance_ohm(), tech.tsv.capacitance_ff()),
        Via3dKind::F2fVia => (tech.f2f_via.resistance_ohm(), tech.f2f_via.capacitance_ff()),
    }
}

/// Input pin capacitance of a sink pin in fF.
fn sink_cap(netlist: &Netlist, tech: &Technology, pin: PinRef) -> f64 {
    match pin {
        PinRef::InstIn(i, _) => match netlist.inst(i).master {
            InstMaster::Cell(m) => tech.cells.master(m).input_cap_ff,
            InstMaster::Macro(k) => tech.macros.get(k).pin_cap_ff,
        },
        PinRef::Port(_) => 2.0, // boundary load (next block's input)
        PinRef::InstOut(_) => 0.0,
    }
}

/// Runs STA and returns the report. `wiring` must come from the same
/// placement state (it supplies routed per-sink path lengths); pass the
/// via placement through `wiring` for folded blocks and set
/// `cfg.via_kind` so tier-crossing nets get their via RC.
///
/// # Errors
///
/// Returns a [`FlowError`] at [`FlowStage::Sta`] when delay propagation
/// produces a non-finite worst slack (broken RC inputs upstream).
pub fn analyze(
    netlist: &Netlist,
    tech: &Technology,
    wiring: &BlockWiring,
    budgets: &TimingBudgets,
    cfg: &StaConfig,
) -> Result<TimingReport, FlowError> {
    foldic_exec::profile::add_iters(netlist.num_nets() as u64);
    foldic_obs::metrics::add("sta.runs", 1);
    let n_insts = netlist.num_insts();
    let (r_um, c_um) = wire_rc(tech, cfg.max_layer);

    // ---- per-net load and edge delays --------------------------------------
    // node = instance output; edges net-driver -> each sink
    #[derive(Clone, Copy)]
    struct Edge {
        from: u32,
        to: u32,
        delay: f64,
    }
    // endpoint records: (arrival source node, delay, required, domain)
    struct Endpoint {
        from: u32,
        delay: f64,
        required: f64,
    }
    const PORT_BASE: u32 = u32::MAX / 2;

    let mut edges: Vec<Edge> = Vec::new();
    let mut endpoints: Vec<Endpoint> = Vec::new();
    let mut source_arrival: Vec<Option<f64>> = vec![None; n_insts];

    for (nid, net) in netlist.nets() {
        if net.is_clock {
            continue; // ideal clocks: skew-free
        }
        let Some(driver) = net.driver else { continue };
        let rec = wiring.net(nid);
        // total load on the driver
        let wire_cap = rec.length_um * c_um;
        let via = cfg.via_kind.filter(|_| rec.is_3d).map(|k| via_rc(tech, k));
        let pins_cap: f64 = net.sinks().map(|s| sink_cap(netlist, tech, s)).sum();
        let load = wire_cap + pins_cap + via.map(|(_, c)| c).unwrap_or(0.0);

        // driver delay and source node
        let (from, drive_delay) = match driver {
            PinRef::InstOut(i) => {
                let d = match netlist.inst(i).master {
                    InstMaster::Cell(m) => {
                        let master = tech.cells.master(m);
                        if master.kind == CellKind::Dff {
                            // clocked source: clk->q absorbs the load delay
                            source_arrival[i.index()] = Some(master.delay_ps(load));
                        }
                        master.delay_ps(load)
                    }
                    InstMaster::Macro(k) => {
                        let m = tech.macros.get(k);
                        let d = m.access_delay_ps + m.output_res_ohm * load * RC_TO_PS;
                        source_arrival[i.index()] = Some(d);
                        d
                    }
                };
                (i.0, d)
            }
            PinRef::Port(p) => {
                // input port: arrival budget + a boundary driver delay
                (PORT_BASE + p.0, 500.0 * load * RC_TO_PS)
            }
            PinRef::InstIn(..) => continue, // malformed; skip
        };

        for (k, s) in net.sinks().enumerate() {
            let path = rec.sink_paths.get(k).copied().unwrap_or(0.0);
            let scap = sink_cap(netlist, tech, s);
            // Elmore along the path: distributed wire + sink pin, plus the
            // via resistance midway for 3D nets.
            let mut wire_delay =
                (0.5 * r_um * path * (c_um * path) + r_um * path * scap) * RC_TO_PS;
            if let Some((rv, cv)) = via {
                wire_delay += rv * (scap + 0.5 * c_um * path + 0.5 * cv) * RC_TO_PS;
            }
            let delay = drive_delay + wire_delay;
            match s {
                PinRef::InstIn(i, pin) => {
                    let inst = netlist.inst(i);
                    match inst.master {
                        InstMaster::Cell(m) if tech.cells.master(m).kind == CellKind::Dff => {
                            if pin == 0 {
                                // data endpoint
                                endpoints.push(Endpoint {
                                    from,
                                    delay,
                                    required: net.domain.period_ps(tech) - SETUP_PS,
                                });
                            }
                        }
                        InstMaster::Cell(_) => {
                            edges.push(Edge {
                                from,
                                to: i.0,
                                delay,
                            });
                        }
                        InstMaster::Macro(_) => {
                            endpoints.push(Endpoint {
                                from,
                                delay,
                                required: net.domain.period_ps(tech) - SETUP_PS,
                            });
                        }
                    }
                }
                PinRef::Port(p) => {
                    endpoints.push(Endpoint {
                        from,
                        delay,
                        required: budgets.output_required_ps[p.index()],
                    });
                }
                PinRef::InstOut(_) => {}
            }
        }
    }

    // ---- forward propagation (Kahn with loop-breaking) ---------------------
    let mut arrival = vec![0.0f64; n_insts];
    for (i, a) in source_arrival.iter().enumerate() {
        if let Some(a) = a {
            arrival[i] = *a;
        }
    }
    let port_arrival = |p: u32| budgets.input_arrival_ps[(p - PORT_BASE) as usize];

    // adjacency + in-degrees over combinational inst->inst edges
    let mut adj: Vec<Vec<u32>> = vec![Vec::new(); n_insts];
    let mut indeg = vec![0u32; n_insts];
    for (ei, e) in edges.iter().enumerate() {
        if e.from < PORT_BASE && source_arrival[e.from as usize].is_none() {
            adj[e.from as usize].push(ei as u32);
            indeg[e.to as usize] += 1;
        } else {
            // source-driven edge: apply immediately
            let base = if e.from >= PORT_BASE {
                port_arrival(e.from)
            } else {
                arrival[e.from as usize]
            };
            let a = base + e.delay;
            if a > arrival[e.to as usize] {
                arrival[e.to as usize] = a;
            }
            indeg[e.to as usize] += 1;
            adj_push_resolved(&mut indeg, e.to);
        }
    }
    // NOTE: adj holds edge indices only for comb-driven edges; the
    // in-degree of each node counts *all* incoming edges, and
    // source-driven ones were resolved above.
    let mut queue: Vec<u32> = (0..n_insts as u32)
        .filter(|&i| indeg[i as usize] == 0)
        .collect();
    let mut head = 0;
    let mut processed = vec![false; n_insts];
    while head < queue.len() {
        let u = queue[head] as usize;
        head += 1;
        if processed[u] {
            continue;
        }
        processed[u] = true;
        for &ei in &adj[u] {
            let e = edges[ei as usize];
            let a = arrival[u] + e.delay;
            let v = e.to as usize;
            if a > arrival[v] {
                arrival[v] = a;
            }
            indeg[v] = indeg[v].saturating_sub(1);
            if indeg[v] == 0 {
                queue.push(e.to);
            }
        }
    }
    // loop remainder: process unvisited nodes once in id order
    for u in 0..n_insts {
        if !processed[u] {
            for &ei in &adj[u] {
                let e = edges[ei as usize];
                let a = arrival[u] + e.delay;
                if a > arrival[e.to as usize] {
                    arrival[e.to as usize] = a;
                }
            }
        }
    }

    // ---- backward required propagation --------------------------------------
    let mut required = vec![f64::INFINITY; n_insts];
    let mut wns: f64 = 0.0;
    let mut tns = 0.0;
    let mut violations = 0;
    let mut max_arrival: f64 = 0.0;
    for ep in &endpoints {
        let a = if ep.from >= PORT_BASE {
            port_arrival(ep.from)
        } else {
            arrival[ep.from as usize]
        } + ep.delay;
        max_arrival = max_arrival.max(a);
        let slack = ep.required - a;
        if slack < 0.0 {
            violations += 1;
            tns += -slack;
            wns = wns.max(-slack);
        }
        if ep.from < PORT_BASE {
            let r = ep.required - ep.delay;
            if r < required[ep.from as usize] {
                required[ep.from as usize] = r;
            }
        }
    }
    // propagate required backward through comb edges, in reverse topo order
    for &u in queue.iter().rev() {
        let u = u as usize;
        for &ei in &adj[u] {
            let e = edges[ei as usize];
            let r = required[e.to as usize] - e.delay;
            if r < required[u] {
                required[u] = r;
            }
        }
    }
    let slack: Vec<f64> = (0..n_insts).map(|i| required[i] - arrival[i]).collect();

    if !wns.is_finite() {
        return Err(FlowError::stage(
            FlowStage::Sta,
            "timing analysis produced a non-finite worst slack",
        ));
    }
    foldic_obs::metrics::observe("sta.wns_ps", wns);
    Ok(TimingReport {
        arrival_ps: arrival,
        slack_ps: slack,
        wns_ps: wns,
        tns_ps: tns,
        violations,
        endpoints: endpoints.len(),
        max_arrival_ps: max_arrival,
    })
}

/// Helper kept for readability of the source-edge resolution above: a
/// source-driven edge contributes to in-degree and is immediately
/// satisfied, so the count drops right back.
fn adj_push_resolved(indeg: &mut [u32], to: u32) {
    indeg[to as usize] -= 1;
}

/// Convenience: analyze a folded block with its via placement.
///
/// # Errors
///
/// Propagates wiring-analysis and STA failures (see [`analyze`]).
pub fn analyze_folded(
    netlist: &Netlist,
    tech: &Technology,
    vias: &ViaPlacement,
    budgets: &TimingBudgets,
    max_layer: usize,
) -> Result<TimingReport, FlowError> {
    let wiring = BlockWiring::analyze(
        netlist,
        tech,
        foldic_route::wiring::DEFAULT_DETOUR,
        Some(vias),
    )?;
    analyze(
        netlist,
        tech,
        &wiring,
        budgets,
        &StaConfig {
            max_layer,
            via_kind: Some(vias.kind()),
        },
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use foldic_geom::Point;
    use foldic_netlist::{ClockDomain as CD, InstId, InstMaster, PortDir};
    use foldic_tech::{CellLibrary, Drive, VthClass};

    fn tech() -> Technology {
        Technology::cmos28()
    }

    /// port -> inv -> inv -> flop chain with controllable spacing.
    fn chain(spacing: f64) -> (Netlist, Technology) {
        let t = tech();
        let lib = CellLibrary::cmos28();
        let inv = InstMaster::Cell(lib.id_of(CellKind::Inv, Drive::X2, VthClass::Rvt));
        let dff = InstMaster::Cell(lib.id_of(CellKind::Dff, Drive::X1, VthClass::Rvt));
        let mut nl = Netlist::new("chain");
        let pin = nl.add_port("in", PortDir::Input, CD::Cpu);
        nl.port_mut(pin).pos = Point::new(0.0, 0.0);
        let a = nl.add_inst("a", inv);
        let b = nl.add_inst("b", inv);
        let f = nl.add_inst("f", dff);
        nl.inst_mut(a).pos = Point::new(spacing, 0.0);
        nl.inst_mut(b).pos = Point::new(2.0 * spacing, 0.0);
        nl.inst_mut(f).pos = Point::new(3.0 * spacing, 0.0);
        let n0 = nl.add_net("n0");
        nl.connect_driver(n0, PinRef::port(pin));
        nl.connect_sink(n0, PinRef::input(a, 0));
        let n1 = nl.add_net("n1");
        nl.connect_driver(n1, PinRef::output(a));
        nl.connect_sink(n1, PinRef::input(b, 0));
        let n2 = nl.add_net("n2");
        nl.connect_driver(n2, PinRef::output(b));
        nl.connect_sink(n2, PinRef::input(f, 0));
        (nl, t)
    }

    fn run(nl: &Netlist, t: &Technology) -> TimingReport {
        let wiring = BlockWiring::analyze(nl, t, 1.0, None).unwrap();
        let budgets = TimingBudgets::relaxed(nl, t);
        analyze(nl, t, &wiring, &budgets, &StaConfig::default()).unwrap()
    }

    #[test]
    fn short_chain_meets_timing() {
        let (nl, t) = chain(20.0);
        let rep = run(&nl, &t);
        assert!(rep.met(), "wns {}", rep.wns_ps);
        assert_eq!(rep.endpoints, 1);
        assert!(rep.max_arrival_ps > 0.0);
    }

    #[test]
    fn longer_wires_mean_later_arrivals() {
        let (nl_short, t) = chain(20.0);
        let (nl_long, _) = chain(2000.0);
        let short = run(&nl_short, &t);
        let long = run(&nl_long, &t);
        assert!(long.max_arrival_ps > short.max_arrival_ps + 100.0);
    }

    #[test]
    fn absurdly_long_wires_violate() {
        let (nl, t) = chain(12_000.0);
        let rep = run(&nl, &t);
        assert!(!rep.met());
        assert!(rep.wns_ps > 0.0);
        assert!(rep.tns_ps >= rep.wns_ps);
    }

    #[test]
    fn slack_decreases_along_the_path() {
        let (nl, t) = chain(1000.0);
        let rep = run(&nl, &t);
        // slacks of a and b are equal along a single path (same endpoint)
        let sa = rep.slack_ps[0];
        let sb = rep.slack_ps[1];
        assert!((sa - sb).abs() < 1.0, "{sa} vs {sb}");
    }

    #[test]
    fn combinational_loops_do_not_hang() {
        let t = tech();
        let lib = CellLibrary::cmos28();
        let inv = InstMaster::Cell(lib.id_of(CellKind::Inv, Drive::X1, VthClass::Rvt));
        let mut nl = Netlist::new("loop");
        let a = nl.add_inst("a", inv);
        let b = nl.add_inst("b", inv);
        let n0 = nl.add_net("n0");
        nl.connect_driver(n0, PinRef::output(a));
        nl.connect_sink(n0, PinRef::input(b, 0));
        let n1 = nl.add_net("n1");
        nl.connect_driver(n1, PinRef::output(b));
        nl.connect_sink(n1, PinRef::input(a, 0));
        let rep = run(&nl, &t);
        assert_eq!(rep.endpoints, 0);
        let _ = rep;
    }

    #[test]
    fn tsv_slows_3d_nets_more_than_f2f() {
        let (mut nl, t) = chain(500.0);
        nl.inst_mut(InstId(1)).tier = foldic_geom::Tier::Top;
        nl.inst_mut(InstId(2)).tier = foldic_geom::Tier::Top;
        let wiring = BlockWiring::analyze(&nl, &t, 1.0, None).unwrap();
        let budgets = TimingBudgets::relaxed(&nl, &t);
        let tsv = analyze(
            &nl,
            &t,
            &wiring,
            &budgets,
            &StaConfig {
                max_layer: 7,
                via_kind: Some(Via3dKind::Tsv),
            },
        )
        .unwrap();
        let f2f = analyze(
            &nl,
            &t,
            &wiring,
            &budgets,
            &StaConfig {
                max_layer: 9,
                via_kind: Some(Via3dKind::F2fVia),
            },
        )
        .unwrap();
        assert!(tsv.max_arrival_ps > f2f.max_arrival_ps);
    }
}
