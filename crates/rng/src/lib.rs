#![warn(missing_docs)]
//! Self-contained deterministic PRNG with a `rand`-compatible facade.
//!
//! The workspace is offline-first: it must build with `cargo build
//! --offline` on a machine whose cargo registry cache is empty, so it
//! cannot depend on the `rand` crate. This crate implements the small
//! slice of the `rand` 0.8 API the workspace uses — [`rngs::StdRng`],
//! [`Rng::gen`], [`Rng::gen_range`], [`SeedableRng::seed_from_u64`] and
//! [`seq::SliceRandom::shuffle`] — on top of xoshiro256++, seeded through
//! SplitMix64. The workspace manifest aliases it as `rand`, so consumer
//! code is written exactly as it would be against the real crate.
//!
//! Two properties matter more than statistical perfection here:
//!
//! 1. **Determinism** — the same seed yields the same stream on every
//!    platform, build and thread. The whole reproduction relies on it.
//! 2. **Stream independence** — [`derive_seed`] turns a stable textual
//!    key (e.g. `("fig7", "l2t0", "q=0.25")`) into a seed, so every
//!    parallel job owns an RNG stream that does not depend on scheduling
//!    or on how many other jobs ran before it.

use std::ops::Range;

/// Splits a `u64` seed into well-distributed state words (SplitMix64).
#[inline]
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Derives a deterministic seed from a stable textual key.
///
/// FNV-1a over every part, finalized through SplitMix64. Used to give
/// each parallel job `(experiment, block, config)` its own RNG stream
/// that is independent of scheduling order.
pub fn derive_seed(parts: &[&str]) -> u64 {
    let mut h: u64 = 0xCBF2_9CE4_8422_2325;
    for part in parts {
        for b in part.as_bytes() {
            h ^= u64::from(*b);
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        // separator so ["ab","c"] != ["a","bc"]
        h ^= 0x1F;
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    let mut s = h;
    splitmix64(&mut s)
}

/// Types that can be sampled uniformly from a half-open range.
pub trait SampleRange: Copy + PartialOrd {
    /// Samples uniformly from `[low, high)`.
    fn sample(rng: &mut rngs::StdRng, low: Self, high: Self) -> Self;
}

macro_rules! impl_sample_int {
    ($($t:ty),*) => {$(
        impl SampleRange for $t {
            #[inline]
            fn sample(rng: &mut rngs::StdRng, low: Self, high: Self) -> Self {
                assert!(low < high, "gen_range: empty range");
                // Lemire-style unbiased bounded sampling on u64.
                let span = (high as i128 - low as i128) as u64;
                let mut x = rng.next_u64();
                let mut m = (x as u128) * (span as u128);
                let mut lo = m as u64;
                if lo < span {
                    let t = span.wrapping_neg() % span;
                    while lo < t {
                        x = rng.next_u64();
                        m = (x as u128) * (span as u128);
                        lo = m as u64;
                    }
                }
                let off = (m >> 64) as u64;
                ((low as i128) + off as i128) as $t
            }
        }
    )*};
}
impl_sample_int!(usize, u64, u32, u16, i64, i32);

impl SampleRange for f64 {
    #[inline]
    fn sample(rng: &mut rngs::StdRng, low: Self, high: Self) -> Self {
        assert!(low < high, "gen_range: empty range");
        low + (high - low) * rng.next_f64()
    }
}

/// Types producible by [`Rng::gen`].
pub trait Standard: Sized {
    /// Samples one value.
    fn sample(rng: &mut rngs::StdRng) -> Self;
}

impl Standard for f64 {
    #[inline]
    fn sample(rng: &mut rngs::StdRng) -> Self {
        rng.next_f64()
    }
}

impl Standard for u64 {
    #[inline]
    fn sample(rng: &mut rngs::StdRng) -> Self {
        rng.next_u64()
    }
}

impl Standard for bool {
    #[inline]
    fn sample(rng: &mut rngs::StdRng) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// The sampling half of the `rand` facade.
pub trait Rng {
    /// Uniform sample from a standard distribution (`f64` in `[0,1)`,
    /// full-range `u64`, fair `bool`).
    fn gen<T: Standard>(&mut self) -> T;
    /// Uniform sample from `[range.start, range.end)`.
    fn gen_range<T: SampleRange>(&mut self, range: Range<T>) -> T;
    /// `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool;
}

/// The seeding half of the `rand` facade.
pub trait SeedableRng: Sized {
    /// Builds a generator whose stream is fully determined by `seed`.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Concrete generators.
pub mod rngs {
    use super::{splitmix64, Rng, SampleRange, SeedableRng, Standard};

    /// Deterministic xoshiro256++ generator (the facade's `StdRng`).
    ///
    /// Not the same stream as `rand::rngs::StdRng` (ChaCha12) — absolute
    /// values of seeded experiments differ from runs against the real
    /// `rand`, but every stream is fixed for a given seed forever.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl StdRng {
        /// Raw 64-bit output.
        #[inline]
        pub fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }

        /// Uniform `f64` in `[0, 1)` (53 mantissa bits).
        #[inline]
        pub fn next_f64(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
        }
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            // the pre-mix constant selects the family of streams; pinned
            // by `stream_is_pinned`, so changing it reseeds every
            // experiment in the workspace
            let mut sm = seed ^ 0x5DEECE66D;
            let mut s = [0u64; 4];
            for w in &mut s {
                *w = splitmix64(&mut sm);
            }
            // xoshiro must not start from the all-zero state
            if s == [0; 4] {
                s = [0x9E37_79B9_7F4A_7C15, 1, 2, 3];
            }
            Self { s }
        }
    }

    impl Rng for StdRng {
        #[inline]
        fn gen<T: Standard>(&mut self) -> T {
            T::sample(self)
        }

        #[inline]
        fn gen_range<T: SampleRange>(&mut self, range: std::ops::Range<T>) -> T {
            T::sample(self, range.start, range.end)
        }

        #[inline]
        fn gen_bool(&mut self, p: f64) -> bool {
            self.next_f64() < p
        }
    }
}

/// Slice shuffling (the `rand::seq` facade).
pub mod seq {
    use super::{rngs::StdRng, Rng};

    /// Random slice operations.
    pub trait SliceRandom {
        /// Element type.
        type Item;
        /// Fisher–Yates shuffle in place.
        fn shuffle(&mut self, rng: &mut StdRng);
        /// Uniformly chosen element, `None` on an empty slice.
        fn choose<'a>(&'a self, rng: &mut StdRng) -> Option<&'a Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle(&mut self, rng: &mut StdRng) {
            for i in (1..self.len()).rev() {
                let j = rng.gen_range(0..i + 1);
                self.swap(i, j);
            }
        }

        fn choose<'a>(&'a self, rng: &mut StdRng) -> Option<&'a T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[rng.gen_range(0..self.len())])
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{derive_seed, Rng, SeedableRng};

    #[test]
    fn same_seed_same_stream() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..1000 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        let va: Vec<u64> = (0..16).map(|_| a.next_u64()).collect();
        let vb: Vec<u64> = (0..16).map(|_| b.next_u64()).collect();
        assert_ne!(va, vb);
    }

    #[test]
    fn stream_is_pinned() {
        // Regression-pin the stream: if this changes, every golden file
        // and seeded experiment changes with it.
        let mut r = StdRng::seed_from_u64(0xDAC14);
        assert_eq!(r.next_u64(), 6_311_482_999_606_219_395);
        assert_eq!(r.next_u64(), 12_514_618_863_086_773_596);
    }

    #[test]
    fn gen_range_int_in_bounds_and_covers() {
        let mut r = StdRng::seed_from_u64(7);
        let mut seen = [false; 10];
        for _ in 0..1000 {
            let v = r.gen_range(0..10usize);
            seen[v] = true;
        }
        assert!(seen.iter().all(|&s| s), "all buckets hit: {seen:?}");
        for _ in 0..1000 {
            let v = r.gen_range(-5..5i32);
            assert!((-5..5).contains(&v));
        }
    }

    #[test]
    fn gen_range_float_in_bounds() {
        let mut r = StdRng::seed_from_u64(9);
        for _ in 0..1000 {
            let v = r.gen_range(-0.1..0.1f64);
            assert!((-0.1..0.1).contains(&v));
        }
        let mean: f64 = (0..10_000).map(|_| r.gen::<f64>()).sum::<f64>() / 10_000.0;
        assert!((mean - 0.5).abs() < 0.02, "uniform mean {mean}");
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut r = StdRng::seed_from_u64(3);
        let mut v: Vec<usize> = (0..100).collect();
        v.shuffle(&mut r);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
        assert_ne!(v, sorted, "shuffle should move something");
    }

    #[test]
    fn derive_seed_is_stable_and_separates() {
        assert_eq!(derive_seed(&["a", "b"]), derive_seed(&["a", "b"]));
        assert_ne!(derive_seed(&["a", "b"]), derive_seed(&["ab"]));
        assert_ne!(
            derive_seed(&["fig7", "l2t0"]),
            derive_seed(&["fig7", "l2d0"])
        );
    }
}
