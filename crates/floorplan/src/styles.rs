//! Constructive user-defined floorplans for the three Fig. 8 styles.

use crate::FloorplanStyle;
use foldic_geom::{Point, Rect, Tier};
use foldic_netlist::{BlockId, Design};

/// Spacing between adjacent blocks in µm (routing channels).
const GAP: f64 = 20.0;
/// Margin between the block array and the die edge in µm.
const MARGIN: f64 = 40.0;

/// One tier's arrangement: rows of block names, bottom-up.
type Rows = Vec<Vec<&'static str>>;

fn rows_2d() -> Rows {
    vec![
        vec!["mac", "rdp", "tds", "rtx", "peu", "dmu"],
        vec!["spc4", "spc5", "spc6", "spc7"],
        vec![
            "l2t4", "l2b4", "l2t5", "l2b5", "l2t6", "l2b6", "l2t7", "l2b7",
        ],
        vec!["l2d4", "l2d5", "mcu2", "mcu3", "l2d6", "l2d7"],
        vec!["ncu", "ccu", "ccx", "siu"],
        vec!["l2d0", "l2d1", "mcu0", "mcu1", "l2d2", "l2d3"],
        vec![
            "l2t0", "l2b0", "l2t1", "l2b1", "l2t2", "l2b2", "l2t3", "l2b3",
        ],
        vec!["spc0", "spc1", "spc2", "spc3"],
    ]
}

fn rows_core_cache() -> (Rows, Rows) {
    let bottom = vec![
        vec!["mac", "rdp", "tds", "rtx", "peu", "dmu"],
        vec![
            "l2t4", "l2b4", "l2t5", "l2b5", "l2t6", "l2b6", "l2t7", "l2b7",
        ],
        vec!["l2d4", "l2d5", "mcu2", "mcu3", "l2d6", "l2d7"],
        vec!["ncu", "ccu", "ccx", "siu"],
        vec!["l2d0", "l2d1", "mcu0", "mcu1", "l2d2", "l2d3"],
        vec![
            "l2t0", "l2b0", "l2t1", "l2b1", "l2t2", "l2b2", "l2t3", "l2b3",
        ],
    ];
    let top = vec![
        vec!["spc4", "spc5", "spc6", "spc7"],
        vec!["spc0", "spc1", "spc2", "spc3"],
    ];
    (bottom, top)
}

fn rows_core_core() -> (Rows, Rows) {
    // Four cores plus a cache slice per die. The tag and data halves of
    // each slice sit on *opposite* dies (tags over data), which is what
    // drives the style's much higher TSV count in Fig. 8 (7,606 vs 3,263).
    let bottom = vec![
        vec!["mac", "rdp", "tds", "rtx"],
        vec![
            "l2t0", "l2b0", "l2t1", "l2b1", "l2t2", "l2b2", "l2t3", "l2b3",
        ],
        vec!["l2d4", "l2d5", "mcu2", "mcu3", "l2d6", "l2d7"],
        vec!["ncu", "ccu", "ccx", "siu"],
        vec!["spc0", "spc1", "spc2", "spc3"],
    ];
    let top = vec![
        vec!["peu", "dmu"],
        vec![
            "l2t4", "l2b4", "l2t5", "l2b5", "l2t6", "l2b6", "l2t7", "l2b7",
        ],
        vec!["l2d0", "l2d1", "mcu0", "mcu1", "l2d2", "l2d3"],
        vec!["spc4", "spc5", "spc6", "spc7"],
    ];
    (bottom, top)
}

/// Packs `rows` of blocks bottom-up, centring each row, and returns the
/// bounding array size `(width, height)` before margins. Positions are
/// written relative to `(0, 0)`; the caller recentres afterwards.
fn pack_rows(design: &mut Design, rows: &Rows, tier: Tier) -> (f64, f64) {
    // resolve ids and row dims first
    let resolved: Vec<Vec<BlockId>> = rows
        .iter()
        .map(|row| {
            row.iter()
                .map(|name| {
                    design
                        .find_block(name)
                        .unwrap_or_else(|| panic!("floorplan references unknown block {name}"))
                })
                .collect()
        })
        .collect();
    let width: f64 = resolved
        .iter()
        .map(|row_ids| {
            row_ids
                .iter()
                .map(|&id| design.block(id).outline.width())
                .sum::<f64>()
                + GAP * (row_ids.len().saturating_sub(1)) as f64
        })
        .fold(0.0, f64::max);
    // place rows bottom-up, centring each row
    let mut y_cursor = 0.0;
    for row_ids in &resolved {
        let row_w: f64 = row_ids
            .iter()
            .map(|&id| design.block(id).outline.width())
            .sum::<f64>()
            + GAP * (row_ids.len().saturating_sub(1)) as f64;
        let row_h = row_ids
            .iter()
            .map(|&id| design.block(id).outline.height())
            .fold(0.0f64, f64::max);
        let mut x = (width - row_w) / 2.0;
        for &id in row_ids {
            let b = design.block_mut(id);
            let h = b.outline.height();
            b.pos = Point::new(x, y_cursor + (row_h - h) / 2.0);
            b.tier = tier;
            x += b.outline.width() + GAP;
        }
        y_cursor += row_h + GAP;
    }
    (width, y_cursor - GAP)
}

/// Translates every block of `tier` so the array is centred inside `die`.
fn recentre(design: &mut Design, tier: Tier, array_w: f64, array_h: f64, die: Rect) {
    let dx = die.llx + (die.width() - array_w) / 2.0;
    let dy = die.lly + (die.height() - array_h) / 2.0;
    for (_, b) in design.blocks_mut() {
        if b.tier == tier {
            b.pos += Point::new(dx, dy);
        }
    }
}

/// Places all blocks per the style's recipe and returns the die outline.
pub fn place_blocks(design: &mut Design, style: FloorplanStyle) -> Rect {
    match style {
        FloorplanStyle::Flat2d => {
            let rows = rows_2d();
            assert_coverage(design, std::iter::once(&rows));
            let (w, h) = pack_rows(design, &rows, Tier::Bottom);
            let die = Rect::new(0.0, 0.0, w + 2.0 * MARGIN, h + 2.0 * MARGIN);
            recentre(design, Tier::Bottom, w, h, die);
            die
        }
        FloorplanStyle::CoreCache | FloorplanStyle::CoreCore => {
            let (bottom, top) = if style == FloorplanStyle::CoreCache {
                rows_core_cache()
            } else {
                rows_core_core()
            };
            assert_coverage(design, [&bottom, &top].into_iter());
            let (wb, hb) = pack_rows(design, &bottom, Tier::Bottom);
            let (wt, ht) = pack_rows(design, &top, Tier::Top);
            let die = Rect::new(
                0.0,
                0.0,
                wb.max(wt) + 2.0 * MARGIN,
                hb.max(ht) + 2.0 * MARGIN,
            );
            recentre(design, Tier::Bottom, wb, hb, die);
            recentre(design, Tier::Top, wt, ht, die);
            die
        }
    }
}

/// Every block must appear exactly once across the recipe.
fn assert_coverage<'a>(design: &Design, recipes: impl Iterator<Item = &'a Rows>) {
    let mut seen = std::collections::HashSet::new();
    for rows in recipes {
        for row in rows {
            for name in row {
                assert!(seen.insert(*name), "block {name} placed twice");
            }
        }
    }
    for (_, b) in design.blocks() {
        assert!(
            seen.contains(b.name.as_str()),
            "block {} missing from the floorplan recipe",
            b.name
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn recipes_cover_each_block_once() {
        let all: Vec<&str> = rows_2d().into_iter().flatten().collect();
        assert_eq!(all.len(), 46);
        let unique: std::collections::HashSet<_> = all.iter().collect();
        assert_eq!(unique.len(), all.len());
    }

    #[test]
    fn stacked_recipes_match_flat_inventory() {
        let flat: std::collections::HashSet<&str> = rows_2d().into_iter().flatten().collect();
        for (bottom, top) in [rows_core_cache(), rows_core_core()] {
            let stacked: std::collections::HashSet<&str> = bottom
                .into_iter()
                .flatten()
                .chain(top.into_iter().flatten())
                .collect();
            assert_eq!(flat, stacked);
        }
    }
}
