//! Sequence-pair simulated-annealing floorplanner.
//!
//! The general-purpose engine behind the study's block arrangements (the
//! paper's reference \[5\] modified for user-defined floorplans). A
//! floorplan is encoded as a *sequence pair* `(Γ⁺, Γ⁻)`: block `a` is left
//! of `b` iff `a` precedes `b` in both sequences, and above `b` iff it
//! precedes in `Γ⁺` but follows in `Γ⁻`. Packing evaluates the two
//! implied constraint graphs by longest path.

use foldic_geom::{Point, Rect};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A block to floorplan: width, height in µm.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FpBlock {
    /// Width in µm.
    pub w: f64,
    /// Height in µm.
    pub h: f64,
}

/// The sequence-pair encoding.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SeqPair {
    /// Γ⁺: first sequence of block indices.
    pub pos: Vec<usize>,
    /// Γ⁻: second sequence of block indices.
    pub neg: Vec<usize>,
}

impl SeqPair {
    /// Identity encoding (blocks in a diagonal row).
    pub fn identity(n: usize) -> Self {
        Self {
            pos: (0..n).collect(),
            neg: (0..n).collect(),
        }
    }

    /// Packs the blocks: returns lower-left positions and the bounding
    /// `(width, height)`.
    pub fn pack(&self, blocks: &[FpBlock]) -> (Vec<Point>, f64, f64) {
        let n = blocks.len();
        debug_assert_eq!(self.pos.len(), n);
        // rank of each block in each sequence
        let mut rank_pos = vec![0usize; n];
        let mut rank_neg = vec![0usize; n];
        for (i, &b) in self.pos.iter().enumerate() {
            rank_pos[b] = i;
        }
        for (i, &b) in self.neg.iter().enumerate() {
            rank_neg[b] = i;
        }
        // x: longest path over "left-of" (precedes in both sequences).
        // Process in Γ⁻ order with a Fenwick-style scan over Γ⁺ ranks; for
        // the modest n here an O(n²) scan is fine and simpler.
        let mut x = vec![0.0f64; n];
        let mut y = vec![0.0f64; n];
        for i in 0..n {
            for j in 0..n {
                if i == j {
                    continue;
                }
                // j left of i
                if rank_pos[j] < rank_pos[i] && rank_neg[j] < rank_neg[i] {
                    x[i] = x[i].max(x[j] + blocks[j].w);
                }
                // j below i: j after in pos, before in neg
                if rank_pos[j] > rank_pos[i] && rank_neg[j] < rank_neg[i] {
                    y[i] = y[i].max(y[j] + blocks[j].h);
                }
            }
        }
        // longest-path needs topological order; iterate to fixpoint (≤ n
        // rounds, usually 2–3)
        loop {
            let mut changed = false;
            for i in 0..n {
                for j in 0..n {
                    if i == j {
                        continue;
                    }
                    if rank_pos[j] < rank_pos[i] && rank_neg[j] < rank_neg[i] {
                        let nx = x[j] + blocks[j].w;
                        if nx > x[i] {
                            x[i] = nx;
                            changed = true;
                        }
                    }
                    if rank_pos[j] > rank_pos[i] && rank_neg[j] < rank_neg[i] {
                        let ny = y[j] + blocks[j].h;
                        if ny > y[i] {
                            y[i] = ny;
                            changed = true;
                        }
                    }
                }
            }
            if !changed {
                break;
            }
        }
        let mut w = 0.0f64;
        let mut h = 0.0f64;
        for i in 0..n {
            w = w.max(x[i] + blocks[i].w);
            h = h.max(y[i] + blocks[i].h);
        }
        ((0..n).map(|i| Point::new(x[i], y[i])).collect(), w, h)
    }
}

/// Annealing parameters.
#[derive(Debug, Clone)]
pub struct SaConfig {
    /// Moves per temperature step.
    pub moves_per_temp: usize,
    /// Number of temperature steps.
    pub steps: usize,
    /// Initial acceptance temperature (in cost units).
    pub t0: f64,
    /// Geometric cooling factor.
    pub cooling: f64,
    /// RNG seed.
    pub seed: u64,
    /// Weight of the wirelength term against the area term.
    pub wl_weight: f64,
}

impl Default for SaConfig {
    fn default() -> Self {
        Self {
            moves_per_temp: 60,
            steps: 120,
            t0: 0.3,
            cooling: 0.95,
            seed: 7,
            wl_weight: 0.3,
        }
    }
}

/// Net list for the floorplanner: each net connects a set of blocks with a
/// weight (bus width).
pub type FpNets = Vec<(Vec<usize>, f64)>;

/// Anneals a floorplan minimizing `area + wl_weight · HPWL`, optionally
/// inside a fixed outline (packing beyond it is penalized).
///
/// Returns the block positions and the achieved bounding box.
pub fn anneal_floorplan(
    blocks: &[FpBlock],
    nets: &FpNets,
    outline: Option<(f64, f64)>,
    cfg: &SaConfig,
) -> (Vec<Point>, Rect) {
    let n = blocks.len();
    if n == 0 {
        return (Vec::new(), Rect::new(0.0, 0.0, 0.0, 0.0));
    }
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let mut sp = SeqPair::identity(n);
    let cost = |sp: &SeqPair| -> (f64, Vec<Point>, f64, f64) {
        let (pos, w, h) = sp.pack(blocks);
        let mut c = w * h;
        if let Some((ow, oh)) = outline {
            // quadratic penalty outside the fixed outline
            let ex = (w - ow).max(0.0);
            let ey = (h - oh).max(0.0);
            c += 4.0 * (ex * ex + ey * ey) + 4.0 * (ex * oh + ey * ow);
        }
        if cfg.wl_weight > 0.0 && !nets.is_empty() {
            let mut wl = 0.0;
            for (members, weight) in nets {
                let mut bb = Rect::empty();
                for &m in members {
                    bb.expand_to(Point::new(
                        pos[m].x + blocks[m].w / 2.0,
                        pos[m].y + blocks[m].h / 2.0,
                    ));
                }
                wl += bb.half_perimeter() * weight;
            }
            c += cfg.wl_weight * wl * (w * h).sqrt() / 1000.0;
        }
        (c, pos, w, h)
    };
    let (mut best_cost, mut best_pos, mut bw, mut bh) = cost(&sp);
    let mut cur_cost = best_cost;
    let mut best_sp = sp.clone();
    let mut t = cfg.t0 * best_cost;
    let _span = foldic_obs::span!("floorplan_sa", blocks = n, steps = cfg.steps);
    for step in 0..cfg.steps {
        // cooperative deadline checkpoint, once per temperature step —
        // never per move; SA is infallible, so a trip unwinds to the
        // caller's isolate boundary
        foldic_fault::deadline::poll_unwind();
        // Sampled observability: accumulate locally and flush once per
        // temperature step — never a hook per move.
        let mut accepts = 0u64;
        for _ in 0..cfg.moves_per_temp {
            let mut cand = sp.clone();
            let a = rng.gen_range(0..n);
            let b = rng.gen_range(0..n);
            match rng.gen_range(0..3) {
                0 => cand.pos.swap(a, b),
                1 => cand.neg.swap(a, b),
                _ => {
                    cand.pos.swap(a, b);
                    cand.neg.swap(a, b);
                }
            }
            let (c, pos, w, h) = cost(&cand);
            let accept = c < cur_cost || {
                let d = (c - cur_cost) / t.max(1e-9);
                rng.gen::<f64>() < (-d).exp()
            };
            if accept {
                accepts += 1;
                sp = cand;
                cur_cost = c;
                if c < best_cost {
                    best_cost = c;
                    best_sp = sp.clone();
                    best_pos = pos;
                    bw = w;
                    bh = h;
                }
            }
        }
        let ratio = accepts as f64 / cfg.moves_per_temp.max(1) as f64;
        if foldic_obs::metrics::is_enabled() {
            foldic_obs::metrics::add("floorplan.sa.steps", 1);
            foldic_obs::metrics::add("floorplan.sa.moves", cfg.moves_per_temp as u64);
            foldic_obs::metrics::add("floorplan.sa.accepts", accepts);
            foldic_obs::metrics::observe("floorplan.sa.acceptance", ratio);
        }
        if foldic_obs::trace::is_enabled() && step % 16 == 0 {
            foldic_obs::trace::instant(
                "sa_temp",
                vec![
                    ("step", step.into()),
                    ("t", t.into()),
                    ("acceptance", ratio.into()),
                ],
            );
        }
        t *= cfg.cooling;
    }
    let _ = best_sp;
    (best_pos, Rect::new(0.0, 0.0, bw, bh))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn squares(n: usize, s: f64) -> Vec<FpBlock> {
        (0..n).map(|_| FpBlock { w: s, h: s }).collect()
    }

    #[test]
    fn identity_packs_diagonally() {
        let blocks = squares(3, 10.0);
        let sp = SeqPair::identity(3);
        let (pos, w, h) = sp.pack(&blocks);
        // identity: each block left of the next → a single row
        assert_eq!(w, 30.0);
        assert_eq!(h, 10.0);
        assert_eq!(pos[2], Point::new(20.0, 0.0));
    }

    #[test]
    fn reversed_neg_stacks_vertically() {
        let blocks = squares(3, 10.0);
        let sp = SeqPair {
            pos: vec![0, 1, 2],
            neg: vec![2, 1, 0],
        };
        let (_, w, h) = sp.pack(&blocks);
        assert_eq!(w, 10.0);
        assert_eq!(h, 30.0);
    }

    #[test]
    fn packing_never_overlaps() {
        let blocks: Vec<FpBlock> = (0..12)
            .map(|i| FpBlock {
                w: 5.0 + (i % 4) as f64 * 7.0,
                h: 4.0 + (i % 3) as f64 * 9.0,
            })
            .collect();
        let (pos, _) = anneal_floorplan(&blocks, &Vec::new(), None, &SaConfig::default());
        for i in 0..blocks.len() {
            let a = Rect::with_size(pos[i], blocks[i].w, blocks[i].h);
            for j in (i + 1)..blocks.len() {
                let b = Rect::with_size(pos[j], blocks[j].w, blocks[j].h);
                assert!(
                    !a.inflated(-1e-9).overlaps(b.inflated(-1e-9)),
                    "{i} overlaps {j}"
                );
            }
        }
    }

    #[test]
    fn annealing_respects_fixed_outline() {
        // 16 equal squares in a 45×45 outline: the identity 160×10 strip
        // violates badly; SA must fold it into a near-square arrangement.
        let blocks = squares(16, 10.0);
        let (_, bb) = anneal_floorplan(
            &blocks,
            &Vec::new(),
            Some((45.0, 45.0)),
            &SaConfig::default(),
        );
        assert!(
            bb.width() <= 52.0 && bb.height() <= 52.0,
            "SA left {bb} outside the outline"
        );
    }

    #[test]
    fn sa_reports_sampled_counters_when_metrics_enabled() {
        let blocks = squares(6, 10.0);
        let cfg = SaConfig {
            steps: 10,
            moves_per_temp: 8,
            ..Default::default()
        };
        foldic_obs::metrics::set_enabled(true);
        let _ = anneal_floorplan(&blocks, &Vec::new(), None, &cfg);
        let snap = foldic_obs::metrics::take();
        foldic_obs::metrics::set_enabled(false);
        // other tests in this binary may anneal concurrently, so assert
        // lower bounds, not equality
        assert!(snap.counter("floorplan.sa.steps") >= 10);
        assert!(snap.counter("floorplan.sa.moves") >= 80);
        assert!(snap.counter("floorplan.sa.accepts") <= snap.counter("floorplan.sa.moves"));
        let acc = snap
            .histogram("floorplan.sa.acceptance")
            .expect("histogram");
        assert!(acc.count >= 10);
        assert!(acc.max <= 1.0 && acc.min >= 0.0);
    }

    #[test]
    fn wirelength_pulls_connected_blocks_together() {
        // blocks 0 and 7 heavily connected: they should end up adjacent
        let blocks = squares(8, 10.0);
        let nets: FpNets = vec![(vec![0, 7], 50.0)];
        let cfg = SaConfig {
            wl_weight: 2.0,
            ..Default::default()
        };
        let (pos, _) = anneal_floorplan(&blocks, &nets, None, &cfg);
        let d = pos[0].manhattan(pos[7]);
        assert!(d <= 22.0, "connected blocks {d} µm apart");
    }
}
