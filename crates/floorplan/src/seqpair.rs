//! Sequence-pair simulated-annealing floorplanner.
//!
//! The general-purpose engine behind the study's block arrangements (the
//! paper's reference \[5\] modified for user-defined floorplans). A
//! floorplan is encoded as a *sequence pair* `(Γ⁺, Γ⁻)`: block `a` is left
//! of `b` iff `a` precedes `b` in both sequences, and above `b` iff it
//! precedes in `Γ⁺` but follows in `Γ⁻`. Packing evaluates the two
//! implied constraint graphs by longest path, using the FAST-SP
//! longest-common-subsequence formulation ([`Packer`]) — O(n log n) per
//! evaluation with zero allocations in the annealer's inner loop.

use foldic_geom::{Point, Rect};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A block to floorplan: width, height in µm.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FpBlock {
    /// Width in µm.
    pub w: f64,
    /// Height in µm.
    pub h: f64,
}

/// The sequence-pair encoding.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SeqPair {
    /// Γ⁺: first sequence of block indices.
    pub pos: Vec<usize>,
    /// Γ⁻: second sequence of block indices.
    pub neg: Vec<usize>,
}

impl SeqPair {
    /// Identity encoding (blocks in a diagonal row).
    pub fn identity(n: usize) -> Self {
        Self {
            pos: (0..n).collect(),
            neg: (0..n).collect(),
        }
    }

    /// Packs the blocks: returns lower-left positions and the bounding
    /// `(width, height)`.
    ///
    /// Convenience wrapper allocating a fresh [`Packer`]; evaluation
    /// loops should hold one `Packer` and call [`Packer::pack`] so the
    /// scratch buffers are reused across evaluations.
    pub fn pack(&self, blocks: &[FpBlock]) -> (Vec<Point>, f64, f64) {
        let mut packer = Packer::new();
        let (w, h) = packer.pack(self, blocks);
        (packer.positions().collect(), w, h)
    }

    /// The original O(n²)+fixpoint evaluation, kept verbatim as the
    /// oracle the property tests compare [`Packer::pack`] against bit
    /// for bit.
    #[cfg(test)]
    fn pack_naive(&self, blocks: &[FpBlock]) -> (Vec<Point>, f64, f64) {
        let n = blocks.len();
        debug_assert_eq!(self.pos.len(), n);
        // rank of each block in each sequence
        let mut rank_pos = vec![0usize; n];
        let mut rank_neg = vec![0usize; n];
        for (i, &b) in self.pos.iter().enumerate() {
            rank_pos[b] = i;
        }
        for (i, &b) in self.neg.iter().enumerate() {
            rank_neg[b] = i;
        }
        let mut x = vec![0.0f64; n];
        let mut y = vec![0.0f64; n];
        for i in 0..n {
            for j in 0..n {
                if i == j {
                    continue;
                }
                // j left of i
                if rank_pos[j] < rank_pos[i] && rank_neg[j] < rank_neg[i] {
                    x[i] = x[i].max(x[j] + blocks[j].w);
                }
                // j below i: j after in pos, before in neg
                if rank_pos[j] > rank_pos[i] && rank_neg[j] < rank_neg[i] {
                    y[i] = y[i].max(y[j] + blocks[j].h);
                }
            }
        }
        // longest-path needs topological order; iterate to fixpoint
        loop {
            let mut changed = false;
            for i in 0..n {
                for j in 0..n {
                    if i == j {
                        continue;
                    }
                    if rank_pos[j] < rank_pos[i] && rank_neg[j] < rank_neg[i] {
                        let nx = x[j] + blocks[j].w;
                        if nx > x[i] {
                            x[i] = nx;
                            changed = true;
                        }
                    }
                    if rank_pos[j] > rank_pos[i] && rank_neg[j] < rank_neg[i] {
                        let ny = y[j] + blocks[j].h;
                        if ny > y[i] {
                            y[i] = ny;
                            changed = true;
                        }
                    }
                }
            }
            if !changed {
                break;
            }
        }
        let mut w = 0.0f64;
        let mut h = 0.0f64;
        for i in 0..n {
            w = w.max(x[i] + blocks[i].w);
            h = h.max(y[i] + blocks[i].h);
        }
        ((0..n).map(|i| Point::new(x[i], y[i])).collect(), w, h)
    }
}

/// A Fenwick (binary-indexed) tree over sequence ranks supporting point
/// *raise* and prefix *maximum*, the data structure behind the FAST-SP
/// evaluation. Slots rest at `0.0`, the same baseline the longest-path
/// recurrence starts coordinates from, so an empty prefix query returns
/// exactly the oracle's initial value.
#[derive(Debug, Clone, Default)]
struct PrefixMax {
    /// 1-based implicit tree; `tree[0]` is unused padding.
    tree: Vec<f64>,
}

impl PrefixMax {
    /// Resets to `n` zeroed slots.
    fn reset(&mut self, n: usize) {
        self.tree.clear();
        self.tree.resize(n + 1, 0.0);
    }

    /// Raises slot `i` (0-based) to at least `v`.
    fn raise(&mut self, i: usize, v: f64) {
        let mut i = i + 1;
        while i < self.tree.len() {
            self.tree[i] = self.tree[i].max(v);
            i += i & i.wrapping_neg();
        }
    }

    /// Maximum over the first `i` slots (0-based exclusive prefix),
    /// merged with the `0.0` baseline.
    fn prefix_max(&self, mut i: usize) -> f64 {
        let mut m = 0.0f64;
        while i > 0 {
            m = m.max(self.tree[i]);
            i &= i - 1; // drop the lowest set bit
        }
        m
    }
}

/// Allocation-free sequence-pair evaluator (FAST-SP).
///
/// Processing blocks in Γ⁻ order visits both constraint graphs in
/// topological order (every left-of or below predecessor comes earlier in
/// Γ⁻), so each longest-path coordinate is final when computed — no
/// fixpoint loop. The predecessor maxima are prefix-maximum queries over
/// Γ⁺ ranks (reversed ranks for the vertical graph), answered by two
/// Fenwick trees in O(log n): O(n log n) per evaluation overall.
///
/// The result is **bit-identical** to the naive O(n²) longest-path
/// relaxation: both compute `max(0, max_j (x_j + w_j))` over the same
/// predecessor set, every term is the same single f64 addition, and
/// `f64::max` over a fixed multiset is order-independent (no NaNs for
/// finite dims; `-0.0 < +0.0` is defined). The retired implementation
/// survives as a `#[cfg(test)]` oracle that the 10k-case property test
/// compares against bit for bit.
#[derive(Debug, Clone, Default)]
pub struct Packer {
    x: Vec<f64>,
    y: Vec<f64>,
    rank_pos: Vec<u32>,
    fx: PrefixMax,
    fy: PrefixMax,
}

impl Packer {
    /// An empty packer; buffers grow on first use and are reused after.
    pub fn new() -> Self {
        Self::default()
    }

    /// Packs `sp` over `blocks`: fills [`Packer::x`]/[`Packer::y`] with
    /// lower-left coordinates and returns the bounding `(width, height)`.
    pub fn pack(&mut self, sp: &SeqPair, blocks: &[FpBlock]) -> (f64, f64) {
        let n = blocks.len();
        debug_assert_eq!(sp.pos.len(), n);
        debug_assert_eq!(sp.neg.len(), n);
        self.x.clear();
        self.x.resize(n, 0.0);
        self.y.clear();
        self.y.resize(n, 0.0);
        self.rank_pos.clear();
        self.rank_pos.resize(n, 0);
        for (i, &b) in sp.pos.iter().enumerate() {
            self.rank_pos[b] = i as u32;
        }
        self.fx.reset(n);
        self.fy.reset(n);
        for &b in &sp.neg {
            let p = self.rank_pos[b] as usize;
            // left-of predecessors: Γ⁺ rank < p among already-processed
            // (= smaller Γ⁻ rank) blocks
            let xb = self.fx.prefix_max(p);
            // below predecessors: Γ⁺ rank > p, i.e. reversed rank < n-1-p
            let yb = self.fy.prefix_max(n - 1 - p);
            self.x[b] = xb;
            self.y[b] = yb;
            self.fx.raise(p, xb + blocks[b].w);
            self.fy.raise(n - 1 - p, yb + blocks[b].h);
        }
        let mut w = 0.0f64;
        let mut h = 0.0f64;
        for (b, (&x, &y)) in blocks.iter().zip(self.x.iter().zip(&self.y)) {
            w = w.max(x + b.w);
            h = h.max(y + b.h);
        }
        (w, h)
    }

    /// Lower-left x coordinates of the last [`Packer::pack`].
    pub fn x(&self) -> &[f64] {
        &self.x
    }

    /// Lower-left y coordinates of the last [`Packer::pack`].
    pub fn y(&self) -> &[f64] {
        &self.y
    }

    /// Lower-left positions of the last [`Packer::pack`].
    pub fn positions(&self) -> impl Iterator<Item = Point> + '_ {
        self.x.iter().zip(&self.y).map(|(&x, &y)| Point::new(x, y))
    }
}

/// Annealing parameters.
#[derive(Debug, Clone)]
pub struct SaConfig {
    /// Moves per temperature step.
    pub moves_per_temp: usize,
    /// Number of temperature steps.
    pub steps: usize,
    /// Initial acceptance temperature (in cost units).
    pub t0: f64,
    /// Geometric cooling factor.
    pub cooling: f64,
    /// RNG seed.
    pub seed: u64,
    /// Weight of the wirelength term against the area term.
    pub wl_weight: f64,
}

impl Default for SaConfig {
    fn default() -> Self {
        Self {
            moves_per_temp: 60,
            steps: 120,
            t0: 0.3,
            cooling: 0.95,
            seed: 7,
            wl_weight: 0.3,
        }
    }
}

/// Net list for the floorplanner: each net connects a set of blocks with a
/// weight (bus width).
pub type FpNets = Vec<(Vec<usize>, f64)>;

/// Incremental cost evaluator for the annealer: owns the [`Packer`]
/// scratch plus a per-net HPWL term cache, so a move evaluation allocates
/// nothing and recomputes only the net terms whose blocks actually moved
/// in the repack.
///
/// The cached terms keep the cost bit-identical to a from-scratch
/// evaluation: a cached term was produced by the very same expression
/// from bit-equal positions, and the total is re-summed over all nets in
/// net order every evaluation, so the accumulation order never changes.
struct SaEval<'a> {
    blocks: &'a [FpBlock],
    nets: &'a FpNets,
    outline: Option<(f64, f64)>,
    wl_weight: f64,
    packer: Packer,
    /// Bounding box of the last evaluation.
    w: f64,
    /// Bounding box of the last evaluation.
    h: f64,
    /// `true` when the wirelength term participates in the cost.
    wl_enabled: bool,
    /// block → incident net ids
    nets_of: Vec<Vec<u32>>,
    /// accepted per-net HPWL terms
    terms: Vec<f64>,
    /// accepted position bits (NaN bits before the first evaluation, so
    /// everything starts dirty)
    last_x: Vec<u64>,
    last_y: Vec<u64>,
    /// candidate terms recomputed by the last evaluation
    dirty_terms: Vec<(u32, f64)>,
    dirty: Vec<bool>,
    touched: Vec<u32>,
    /// packs since the last metrics flush
    packs: u64,
}

impl<'a> SaEval<'a> {
    fn new(
        blocks: &'a [FpBlock],
        nets: &'a FpNets,
        outline: Option<(f64, f64)>,
        wl_weight: f64,
    ) -> Self {
        let n = blocks.len();
        let wl_enabled = wl_weight > 0.0 && !nets.is_empty();
        let mut nets_of = Vec::new();
        if wl_enabled {
            nets_of = vec![Vec::new(); n];
            for (k, (members, _)) in nets.iter().enumerate() {
                for &m in members {
                    nets_of[m].push(k as u32);
                }
            }
        }
        Self {
            blocks,
            nets,
            outline,
            wl_weight,
            packer: Packer::new(),
            w: 0.0,
            h: 0.0,
            wl_enabled,
            nets_of,
            terms: vec![0.0; if wl_enabled { nets.len() } else { 0 }],
            last_x: vec![f64::NAN.to_bits(); if wl_enabled { n } else { 0 }],
            last_y: vec![f64::NAN.to_bits(); if wl_enabled { n } else { 0 }],
            dirty_terms: Vec::new(),
            dirty: vec![false; if wl_enabled { nets.len() } else { 0 }],
            touched: Vec::new(),
            packs: 0,
        }
    }

    /// Packs `sp` and returns its cost; positions stay in `self.packer`.
    fn eval(&mut self, sp: &SeqPair) -> f64 {
        let (w, h) = self.packer.pack(sp, self.blocks);
        self.packs += 1;
        self.w = w;
        self.h = h;
        let mut c = w * h;
        if let Some((ow, oh)) = self.outline {
            // quadratic penalty outside the fixed outline
            let ex = (w - ow).max(0.0);
            let ey = (h - oh).max(0.0);
            c += 4.0 * (ex * ex + ey * ey) + 4.0 * (ex * oh + ey * ow);
        }
        if self.wl_enabled {
            // mark nets of moved blocks dirty (bit compare: a bit-equal
            // position yields a bit-equal term, so staleness is exact)
            self.dirty_terms.clear();
            let (xs, ys) = (self.packer.x(), self.packer.y());
            for i in 0..self.blocks.len() {
                if xs[i].to_bits() != self.last_x[i] || ys[i].to_bits() != self.last_y[i] {
                    for &k in &self.nets_of[i] {
                        if !self.dirty[k as usize] {
                            self.dirty[k as usize] = true;
                            self.touched.push(k);
                        }
                    }
                }
            }
            // re-sum in net order (identical accumulation order every
            // evaluation), recomputing only the dirty terms
            let mut wl = 0.0;
            for (k, (members, weight)) in self.nets.iter().enumerate() {
                let term = if self.dirty[k] {
                    let mut bb = Rect::empty();
                    for &m in members {
                        bb.expand_to(Point::new(
                            xs[m] + self.blocks[m].w / 2.0,
                            ys[m] + self.blocks[m].h / 2.0,
                        ));
                    }
                    let term = bb.half_perimeter() * weight;
                    self.dirty_terms.push((k as u32, term));
                    term
                } else {
                    self.terms[k]
                };
                wl += term;
            }
            for &k in &self.touched {
                self.dirty[k as usize] = false;
            }
            self.touched.clear();
            c += self.wl_weight * wl * (w * h).sqrt() / 1000.0;
        }
        c
    }

    /// Accepts the last evaluation: the candidate terms and positions
    /// become the cache baseline.
    fn commit(&mut self) {
        if !self.wl_enabled {
            return;
        }
        for &(k, t) in &self.dirty_terms {
            self.terms[k as usize] = t;
        }
        self.dirty_terms.clear();
        let (xs, ys) = (self.packer.x(), self.packer.y());
        for i in 0..self.last_x.len() {
            self.last_x[i] = xs[i].to_bits();
            self.last_y[i] = ys[i].to_bits();
        }
    }

    /// Drains the packs-since-last-flush counter.
    fn take_packs(&mut self) -> u64 {
        std::mem::take(&mut self.packs)
    }
}

/// Applies (or, being an involution, undoes) one SA move to `sp`.
fn apply_move(sp: &mut SeqPair, kind: i32, a: usize, b: usize) {
    match kind {
        0 => sp.pos.swap(a, b),
        1 => sp.neg.swap(a, b),
        _ => {
            sp.pos.swap(a, b);
            sp.neg.swap(a, b);
        }
    }
}

/// Anneals a floorplan minimizing `area + wl_weight · HPWL`, optionally
/// inside a fixed outline (packing beyond it is penalized).
///
/// Returns the block positions and the achieved bounding box.
pub fn anneal_floorplan(
    blocks: &[FpBlock],
    nets: &FpNets,
    outline: Option<(f64, f64)>,
    cfg: &SaConfig,
) -> (Vec<Point>, Rect) {
    let n = blocks.len();
    if n == 0 {
        return (Vec::new(), Rect::new(0.0, 0.0, 0.0, 0.0));
    }
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let mut sp = SeqPair::identity(n);
    let mut eval = SaEval::new(blocks, nets, outline, cfg.wl_weight);
    let mut cur_cost = eval.eval(&sp);
    eval.commit();
    let mut best_cost = cur_cost;
    let mut best_x: Vec<f64> = eval.packer.x().to_vec();
    let mut best_y: Vec<f64> = eval.packer.y().to_vec();
    let (mut bw, mut bh) = (eval.w, eval.h);
    let mut t = cfg.t0 * best_cost;
    let _span = foldic_obs::span!("floorplan_sa", blocks = n, steps = cfg.steps);
    for step in 0..cfg.steps {
        // cooperative deadline checkpoint, once per temperature step —
        // never per move; SA is infallible, so a trip unwinds to the
        // caller's isolate boundary
        foldic_fault::deadline::poll_unwind();
        // Sampled observability: accumulate locally and flush once per
        // temperature step — never a hook per move.
        let mut accepts = 0u64;
        for _ in 0..cfg.moves_per_temp {
            let a = rng.gen_range(0..n);
            let b = rng.gen_range(0..n);
            let kind: i32 = rng.gen_range(0..3);
            // apply in place — no candidate clone; a rejected move is
            // undone by re-applying the same swaps
            apply_move(&mut sp, kind, a, b);
            let c = eval.eval(&sp);
            let accept = c < cur_cost || {
                let d = (c - cur_cost) / t.max(1e-9);
                rng.gen::<f64>() < (-d).exp()
            };
            if accept {
                accepts += 1;
                cur_cost = c;
                eval.commit();
                if c < best_cost {
                    best_cost = c;
                    best_x.copy_from_slice(eval.packer.x());
                    best_y.copy_from_slice(eval.packer.y());
                    bw = eval.w;
                    bh = eval.h;
                }
            } else {
                apply_move(&mut sp, kind, a, b);
            }
        }
        let ratio = accepts as f64 / cfg.moves_per_temp.max(1) as f64;
        if foldic_obs::metrics::is_enabled() {
            foldic_obs::metrics::add("floorplan.sa.steps", 1);
            foldic_obs::metrics::add("floorplan.sa.moves", cfg.moves_per_temp as u64);
            foldic_obs::metrics::add("floorplan.sa.accepts", accepts);
            foldic_obs::metrics::add("floorplan.sa.packs", eval.take_packs());
            foldic_obs::metrics::observe("floorplan.sa.acceptance", ratio);
        }
        if foldic_obs::trace::is_enabled() && step % 16 == 0 {
            foldic_obs::trace::instant(
                "sa_temp",
                vec![
                    ("step", step.into()),
                    ("t", t.into()),
                    ("acceptance", ratio.into()),
                ],
            );
        }
        t *= cfg.cooling;
    }
    // the best positions were captured directly on every improvement, so
    // the best sequence pair itself never needs to be kept or repacked
    (
        best_x
            .iter()
            .zip(&best_y)
            .map(|(&x, &y)| Point::new(x, y))
            .collect(),
        Rect::new(0.0, 0.0, bw, bh),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    fn squares(n: usize, s: f64) -> Vec<FpBlock> {
        (0..n).map(|_| FpBlock { w: s, h: s }).collect()
    }

    #[test]
    fn identity_packs_diagonally() {
        let blocks = squares(3, 10.0);
        let sp = SeqPair::identity(3);
        let (pos, w, h) = sp.pack(&blocks);
        // identity: each block left of the next → a single row
        assert_eq!(w, 30.0);
        assert_eq!(h, 10.0);
        assert_eq!(pos[2], Point::new(20.0, 0.0));
    }

    #[test]
    fn reversed_neg_stacks_vertically() {
        let blocks = squares(3, 10.0);
        let sp = SeqPair {
            pos: vec![0, 1, 2],
            neg: vec![2, 1, 0],
        };
        let (_, w, h) = sp.pack(&blocks);
        assert_eq!(w, 10.0);
        assert_eq!(h, 30.0);
    }

    #[test]
    fn packing_never_overlaps() {
        let blocks: Vec<FpBlock> = (0..12)
            .map(|i| FpBlock {
                w: 5.0 + (i % 4) as f64 * 7.0,
                h: 4.0 + (i % 3) as f64 * 9.0,
            })
            .collect();
        let (pos, _) = anneal_floorplan(&blocks, &Vec::new(), None, &SaConfig::default());
        for i in 0..blocks.len() {
            let a = Rect::with_size(pos[i], blocks[i].w, blocks[i].h);
            for j in (i + 1)..blocks.len() {
                let b = Rect::with_size(pos[j], blocks[j].w, blocks[j].h);
                assert!(
                    !a.inflated(-1e-9).overlaps(b.inflated(-1e-9)),
                    "{i} overlaps {j}"
                );
            }
        }
    }

    #[test]
    fn annealing_respects_fixed_outline() {
        // 16 equal squares in a 45×45 outline: the identity 160×10 strip
        // violates badly; SA must fold it into a near-square arrangement.
        let blocks = squares(16, 10.0);
        let (_, bb) = anneal_floorplan(
            &blocks,
            &Vec::new(),
            Some((45.0, 45.0)),
            &SaConfig::default(),
        );
        assert!(
            bb.width() <= 52.0 && bb.height() <= 52.0,
            "SA left {bb} outside the outline"
        );
    }

    #[test]
    fn sa_reports_sampled_counters_when_metrics_enabled() {
        let blocks = squares(6, 10.0);
        let cfg = SaConfig {
            steps: 10,
            moves_per_temp: 8,
            ..Default::default()
        };
        foldic_obs::metrics::set_enabled(true);
        let _ = anneal_floorplan(&blocks, &Vec::new(), None, &cfg);
        let snap = foldic_obs::metrics::take();
        foldic_obs::metrics::set_enabled(false);
        // other tests in this binary may anneal concurrently, so assert
        // lower bounds, not equality
        assert!(snap.counter("floorplan.sa.steps") >= 10);
        assert!(snap.counter("floorplan.sa.moves") >= 80);
        assert!(snap.counter("floorplan.sa.accepts") <= snap.counter("floorplan.sa.moves"));
        // every move packs once, plus the pre-loop evaluation
        assert!(snap.counter("floorplan.sa.packs") > 80);
        let acc = snap
            .histogram("floorplan.sa.acceptance")
            .expect("histogram");
        assert!(acc.count >= 10);
        assert!(acc.max <= 1.0 && acc.min >= 0.0);
    }

    #[test]
    fn wirelength_pulls_connected_blocks_together() {
        // blocks 0 and 7 heavily connected: they should end up adjacent
        let blocks = squares(8, 10.0);
        let nets: FpNets = vec![(vec![0, 7], 50.0)];
        let cfg = SaConfig {
            wl_weight: 2.0,
            ..Default::default()
        };
        let (pos, _) = anneal_floorplan(&blocks, &nets, None, &cfg);
        let d = pos[0].manhattan(pos[7]);
        assert!(d <= 22.0, "connected blocks {d} µm apart");
    }

    // ---- fast-pack vs naive-oracle property tests -----------------------

    fn fuzz_seed() -> u64 {
        std::env::var("FOLDIC_FUZZ_SEED")
            .ok()
            .and_then(|s| s.parse().ok())
            .unwrap_or(0xDAC1_4F00D)
    }

    fn random_seq_pair(rng: &mut StdRng, n: usize) -> SeqPair {
        let mut sp = SeqPair::identity(n);
        for i in (1..n).rev() {
            sp.pos.swap(i, rng.gen_range(0..i + 1));
            sp.neg.swap(i, rng.gen_range(0..i + 1));
        }
        sp
    }

    /// 10k random cases: the FAST-SP evaluation must match the retired
    /// O(n²)+fixpoint oracle bit for bit — positions, width and height.
    /// Covers n = 0, n = 1 and duplicate dims; seeded via
    /// `FOLDIC_FUZZ_SEED` like the parser fuzz suites.
    #[test]
    fn fast_pack_matches_naive_oracle_bitwise() {
        const ITERS: usize = 10_000;
        let mut rng = StdRng::seed_from_u64(fuzz_seed());
        let mut packer = Packer::new();
        for iter in 0..ITERS {
            // bias toward the degenerate sizes, include the paper's n=46
            let n = match iter % 16 {
                0 => 0,
                1 => 1,
                2 => 2,
                3 => 46,
                _ => rng.gen_range(3..24usize),
            };
            let blocks: Vec<FpBlock> = (0..n)
                .map(|_| {
                    if rng.gen_bool(0.3) {
                        // duplicate dims: snap to a coarse grid so exact
                        // f64 ties are common
                        FpBlock {
                            w: rng.gen_range(1..4u32) as f64 * 5.0,
                            h: rng.gen_range(1..4u32) as f64 * 5.0,
                        }
                    } else {
                        FpBlock {
                            w: rng.gen::<f64>() * 40.0 + 0.5,
                            h: rng.gen::<f64>() * 40.0 + 0.5,
                        }
                    }
                })
                .collect();
            let sp = random_seq_pair(&mut rng, n);
            let (naive_pos, nw, nh) = sp.pack_naive(&blocks);
            // exercise scratch reuse across iterations (the annealer's
            // usage pattern), not a fresh packer per case
            let (fw, fh) = packer.pack(&sp, &blocks);
            assert_eq!(nw.to_bits(), fw.to_bits(), "width differs at iter {iter}");
            assert_eq!(nh.to_bits(), fh.to_bits(), "height differs at iter {iter}");
            for (i, np) in naive_pos.iter().enumerate() {
                assert_eq!(
                    (np.x.to_bits(), np.y.to_bits()),
                    (packer.x()[i].to_bits(), packer.y()[i].to_bits()),
                    "block {i} differs at iter {iter} (n={n})"
                );
            }
        }
    }

    /// `SeqPair::pack` (fresh packer) and a reused packer agree even when
    /// the problem size shrinks between calls — the scratch resize path.
    #[test]
    fn packer_scratch_survives_size_changes() {
        let mut packer = Packer::new();
        let mut rng = StdRng::seed_from_u64(fuzz_seed() ^ 0x5e9);
        for n in [12usize, 5, 0, 17, 1, 12] {
            let blocks: Vec<FpBlock> = (0..n)
                .map(|i| FpBlock {
                    w: 3.0 + (i % 5) as f64,
                    h: 2.0 + (i % 3) as f64,
                })
                .collect();
            let sp = random_seq_pair(&mut rng, n);
            let (pos, w, h) = sp.pack(&blocks);
            let (rw, rh) = packer.pack(&sp, &blocks);
            assert_eq!((w.to_bits(), h.to_bits()), (rw.to_bits(), rh.to_bits()));
            assert_eq!(pos, packer.positions().collect::<Vec<_>>());
        }
    }
}
