#![warn(missing_docs)]
//! Chip-level floorplanning for the 2-tier 3D study.
//!
//! Two engines, matching how the paper builds its chips (§3.1):
//!
//! * [`seqpair`] — a fixed-outline simulated-annealing floorplanner on the
//!   sequence-pair representation (the general engine of the paper's
//!   reference \[5\]);
//! * `styles` — *user-defined* constructive floorplans for the T2: the
//!   paper modifies the floorplanner of \[5\] "to handle user-defined
//!   floorplans" because the T2's eight cores and L2 banks "need to be
//!   arranged in a specific order and a regular fashion". The three
//!   published arrangements are reproduced: the 2D chip (Fig. 8a),
//!   core/cache stacking (all SPCs on one die, Fig. 8b) and core/core
//!   stacking (four cores per die, Fig. 8c).
//!
//! After block placement, [`plan_chip_tsvs`] places one TSV per cross-die
//! chip net in the whitespace between blocks ("TSV arrays are treated as
//! additional blocks … all TSVs can be placed outside blocks only").
//!
//! # Examples
//!
//! ```
//! use foldic_floorplan::{floorplan_t2, FloorplanStyle};
//! use foldic_t2::T2Config;
//!
//! let (mut design, tech) = T2Config::tiny().generate();
//! let plan = floorplan_t2(&mut design, FloorplanStyle::CoreCache, &tech);
//! assert!(plan.die.area() > 0.0);
//! ```

pub mod seqpair;
mod styles;

pub use seqpair::{anneal_floorplan, SaConfig, SeqPair};

use foldic_geom::{Point, Rect, Tier};
use foldic_netlist::Design;
use foldic_tech::Technology;

/// The chip-level arrangement styles of Fig. 8.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FloorplanStyle {
    /// Single-die 2D chip following the original T2 floorplan.
    Flat2d,
    /// Two-tier: all eight cores on the top die, all cache and control on
    /// the bottom die.
    CoreCache,
    /// Two-tier: four cores plus their cache slice on each die.
    CoreCore,
}

impl FloorplanStyle {
    /// `true` for the two-tier styles.
    pub fn is_3d(self) -> bool {
        !matches!(self, FloorplanStyle::Flat2d)
    }
}

/// Result of chip-level floorplanning.
#[derive(Debug, Clone)]
pub struct ChipPlan {
    /// Die outline (both dies share it in a 3D stack).
    pub die: Rect,
    /// Arrangement style.
    pub style: FloorplanStyle,
    /// Chip-level TSV positions (one per cross-die chip net), empty for
    /// 2D chips. Parallel to the order of cross-die nets in
    /// `design.chip_nets()`.
    pub tsvs: Vec<Point>,
}

impl ChipPlan {
    /// Die footprint in mm².
    pub fn footprint_mm2(&self) -> f64 {
        self.die.area() * 1e-6
    }
}

/// Floorplans the T2 design in the requested style: assigns every block's
/// chip position and tier, then plans chip-level TSVs for 3D styles.
pub fn floorplan_t2(design: &mut Design, style: FloorplanStyle, tech: &Technology) -> ChipPlan {
    let die = styles::place_blocks(design, style);
    let tsvs = if style.is_3d() {
        plan_chip_tsvs(design, die, tech)
    } else {
        Vec::new()
    };
    ChipPlan { die, style, tsvs }
}

/// Places one TSV per cross-die chip net in legal whitespace.
///
/// The ideal spot is the midpoint between the two ports; sites are on the
/// TSV pitch grid, must lie inside the die and outside every block rect on
/// either tier, and cannot be shared. Returns the chosen positions in
/// cross-die-net order.
pub fn plan_chip_tsvs(design: &Design, die: Rect, tech: &Technology) -> Vec<Point> {
    let pitch = tech.tsv.pitch_um;
    let blocks: Vec<Rect> = design.blocks().map(|(_, b)| b.chip_rect()).collect();
    let cols = (die.width() / pitch).floor() as i64;
    let rows = (die.height() / pitch).floor() as i64;
    let site = |c: i64, r: i64| {
        Point::new(
            die.llx + (c as f64 + 0.5) * pitch,
            die.lly + (r as f64 + 0.5) * pitch,
        )
    };
    let legal = |c: i64, r: i64| {
        if c < 0 || r < 0 || c >= cols || r >= rows {
            return false;
        }
        let p = site(c, r);
        !blocks.iter().any(|b| b.contains(p))
    };
    let mut occupied = std::collections::HashSet::new();
    let mut tsvs = Vec::new();
    for net in design.chip_nets() {
        let mut cross = false;
        let mut mid = Point::ORIGIN;
        let mut n = 0.0;
        let mut tier0 = None;
        for &(bid, pid) in &net.endpoints {
            let block = design.block(bid);
            let port = block.netlist.port(pid);
            mid += block.to_chip(port.pos);
            n += 1.0;
            // folded blocks expose their ports on the tier the fold put
            // them on; unfolded blocks expose everything on their die
            let tier = if block.folded { port.tier } else { block.tier };
            match tier0 {
                None => tier0 = Some(tier),
                Some(t) if t != tier => cross = true,
                _ => {}
            }
        }
        if !cross {
            continue;
        }
        let mid = mid * (1.0 / n);
        let c0 = ((mid.x - die.llx) / pitch).floor() as i64;
        let r0 = ((mid.y - die.lly) / pitch).floor() as i64;
        'search: for ring in 0..cols.max(rows).max(1) {
            for dc in -ring..=ring {
                for dr in -ring..=ring {
                    if dc.abs() != ring && dr.abs() != ring {
                        continue;
                    }
                    let (c, r) = (c0 + dc, r0 + dr);
                    if legal(c, r) && occupied.insert((c, r)) {
                        tsvs.push(site(c, r));
                        break 'search;
                    }
                }
            }
        }
    }
    tsvs
}

/// Total inter-block wirelength in µm: for every chip net, the Manhattan
/// distance between its ports (routing through the TSV for cross-die
/// nets), times the bus width.
pub fn interblock_wirelength_um(design: &Design, plan: &ChipPlan) -> f64 {
    let mut tsv_iter = plan.tsvs.iter();
    let mut total = 0.0;
    for net in design.chip_nets() {
        let pts: Vec<(Point, Tier)> = net
            .endpoints
            .iter()
            .map(|&(bid, pid)| {
                let b = design.block(bid);
                let port = b.netlist.port(pid);
                let tier = if b.folded { port.tier } else { b.tier };
                (b.to_chip(port.pos), tier)
            })
            .collect();
        let cross = pts.windows(2).any(|w| w[0].1 != w[1].1);
        let len = if cross {
            let via = tsv_iter.next().copied().unwrap_or_else(|| {
                // TSV planning ran out of sites; fall back to the midpoint
                pts.iter().fold(Point::ORIGIN, |a, &(p, _)| a + p) * (1.0 / pts.len() as f64)
            });
            pts.iter().map(|&(p, _)| p.manhattan(via)).sum::<f64>()
        } else {
            pts.windows(2)
                .map(|w| w[0].0.manhattan(w[1].0))
                .sum::<f64>()
        };
        total += len * net.bits as f64;
    }
    total
}

#[cfg(test)]
mod tests {
    use super::*;
    use foldic_t2::T2Config;

    fn planned(style: FloorplanStyle) -> (Design, Technology, ChipPlan) {
        let (mut design, tech) = T2Config::tiny().generate();
        let plan = floorplan_t2(&mut design, style, &tech);
        (design, tech, plan)
    }

    #[test]
    fn blocks_do_not_overlap_within_a_tier() {
        for style in [
            FloorplanStyle::Flat2d,
            FloorplanStyle::CoreCache,
            FloorplanStyle::CoreCore,
        ] {
            let (design, _, plan) = planned(style);
            let blocks: Vec<_> = design.blocks().collect();
            for (i, (_, a)) in blocks.iter().enumerate() {
                assert!(
                    plan.die.inflated(1.0).contains_rect(a.chip_rect()),
                    "{style:?}: {} at {} escapes die {}",
                    a.name,
                    a.chip_rect(),
                    plan.die
                );
                for (_, b) in &blocks[i + 1..] {
                    if a.tier == b.tier {
                        assert!(
                            !a.chip_rect()
                                .inflated(-0.5)
                                .overlaps(b.chip_rect().inflated(-0.5)),
                            "{style:?}: {} overlaps {}",
                            a.name,
                            b.name
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn stacking_halves_the_footprint() {
        let (_, _, flat) = planned(FloorplanStyle::Flat2d);
        let (_, _, cc) = planned(FloorplanStyle::CoreCache);
        let ratio = cc.footprint_mm2() / flat.footprint_mm2();
        // The paper reports −46 % at full scale. The tiny test design is
        // macro-dominated (SRAM arrays do not shrink with the logic), so
        // only the direction and a loose band are asserted here; the
        // full-scale value is checked by the Table 2 reproduction.
        assert!(ratio > 0.35 && ratio < 0.90, "ratio {ratio}");
    }

    #[test]
    fn core_cache_puts_all_cores_on_top() {
        let (design, _, _) = planned(FloorplanStyle::CoreCache);
        for (_, b) in design.blocks() {
            if b.kind == foldic_netlist::BlockKind::Spc {
                assert_eq!(b.tier, Tier::Top, "{}", b.name);
            } else {
                assert_eq!(b.tier, Tier::Bottom, "{}", b.name);
            }
        }
    }

    #[test]
    fn core_core_balances_cores() {
        let (design, _, _) = planned(FloorplanStyle::CoreCore);
        let spc_top = design
            .blocks()
            .filter(|(_, b)| b.kind == foldic_netlist::BlockKind::Spc && b.tier == Tier::Top)
            .count();
        assert_eq!(spc_top, 4);
    }

    #[test]
    fn tsvs_live_in_whitespace() {
        let (design, _, plan) = planned(FloorplanStyle::CoreCache);
        assert!(!plan.tsvs.is_empty());
        for &p in &plan.tsvs {
            for (_, b) in design.blocks() {
                assert!(!b.chip_rect().contains(p), "TSV at {p} inside {}", b.name);
            }
            assert!(plan.die.contains(p));
        }
        // distinct sites
        let mut seen = std::collections::HashSet::new();
        for &p in &plan.tsvs {
            assert!(seen.insert((p.x.to_bits(), p.y.to_bits())));
        }
    }

    #[test]
    fn core_core_needs_more_tsvs_than_core_cache() {
        // Fig. 8: 7,606 vs 3,263 TSVs — core/core cuts the SPC↔CCX and
        // intra-cache buses across the dies.
        let (_, _, cc) = planned(FloorplanStyle::CoreCache);
        let (_, _, cores) = planned(FloorplanStyle::CoreCore);
        assert!(
            cores.tsvs.len() > cc.tsvs.len(),
            "core/core {} vs core/cache {}",
            cores.tsvs.len(),
            cc.tsvs.len()
        );
    }

    #[test]
    fn stacking_shortens_interblock_wirelength() {
        let (d2, _, p2) = planned(FloorplanStyle::Flat2d);
        let (d3, _, p3) = planned(FloorplanStyle::CoreCache);
        let wl2 = interblock_wirelength_um(&d2, &p2);
        let wl3 = interblock_wirelength_um(&d3, &p3);
        assert!(wl3 < wl2, "3D inter-block WL {wl3} must beat 2D {wl2}");
    }
}
