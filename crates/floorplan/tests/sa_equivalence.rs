//! SA rewrite equivalence gate.
//!
//! The incremental annealer (in-place moves, reused `Packer` scratch,
//! cached HPWL terms) must reproduce the pre-rewrite clone-per-move
//! annealer **byte for byte**. These fixtures were captured from the
//! retired implementation at the default seed before the rewrite landed;
//! any drift in the RNG draw order, packing arithmetic, or cost
//! accumulation order flips at least one bit here.

use foldic_floorplan::seqpair::{anneal_floorplan, FpBlock, FpNets, SaConfig};

fn blocks12() -> Vec<FpBlock> {
    (0..12)
        .map(|i| FpBlock {
            w: 5.0 + (i % 4) as f64 * 7.0,
            h: 4.0 + (i % 3) as f64 * 9.0,
        })
        .collect()
}

fn assert_bits(
    label: &str,
    got: (&[foldic_geom::Point], foldic_geom::Rect),
    want_pos: &[(u64, u64)],
    want_bb: (u64, u64),
) {
    let (pos, bb) = got;
    assert_eq!(
        (bb.width().to_bits(), bb.height().to_bits()),
        want_bb,
        "{label}: bounding box drifted"
    );
    assert_eq!(pos.len(), want_pos.len(), "{label}: position count");
    for (i, (p, &(wx, wy))) in pos.iter().zip(want_pos).enumerate() {
        assert_eq!(
            (p.x.to_bits(), p.y.to_bits()),
            (wx, wy),
            "{label}: block {i} position drifted"
        );
    }
}

/// Area-only annealing at the default seed (config A of the captured
/// fixtures).
#[test]
fn default_seed_area_only_is_byte_identical_to_pre_rewrite() {
    let blocks = blocks12();
    let (pos, bb) = anneal_floorplan(&blocks, &Vec::new(), None, &SaConfig::default());
    let want: [(u64, u64); 12] = [
        (0x4043000000000000, 0x4041800000000000),
        (0x0000000000000000, 0x403a000000000000),
        (0x0000000000000000, 0x0000000000000000),
        (0x4028000000000000, 0x4036000000000000),
        (0x4043000000000000, 0x4036000000000000),
        (0x4046800000000000, 0x0000000000000000),
        (0x4045800000000000, 0x4041800000000000),
        (0x4028000000000000, 0x403a000000000000),
        (0x404c800000000000, 0x0000000000000000),
        (0x0000000000000000, 0x4036000000000000),
        (0x4045800000000000, 0x4036000000000000),
        (0x4033000000000000, 0x0000000000000000),
    ];
    assert_bits(
        "area-only",
        (&pos, bb),
        &want,
        (0x404f000000000000, 0x4043800000000000),
    );
}

/// Wirelength + outline annealing (config B): exercises the HPWL term
/// cache and the outline penalty on the same RNG stream.
#[test]
fn default_seed_with_nets_and_outline_is_byte_identical_to_pre_rewrite() {
    let blocks = blocks12();
    let nets: FpNets = vec![(vec![0, 7], 50.0), (vec![1, 2, 3], 8.0)];
    let cfg = SaConfig {
        wl_weight: 2.0,
        ..Default::default()
    };
    let (pos, bb) = anneal_floorplan(&blocks, &nets, Some((60.0, 60.0)), &cfg);
    let want: [(u64, u64); 12] = [
        (0x4045800000000000, 0x403a000000000000),
        (0x4046800000000000, 0x4041800000000000),
        (0x4028000000000000, 0x0000000000000000),
        (0x0000000000000000, 0x4036000000000000),
        (0x403a000000000000, 0x4036000000000000),
        (0x0000000000000000, 0x0000000000000000),
        (0x403a000000000000, 0x4041800000000000),
        (0x403f000000000000, 0x0000000000000000),
        (0x4049000000000000, 0x402a000000000000),
        (0x403f000000000000, 0x403a000000000000),
        (0x403f000000000000, 0x402a000000000000),
        (0x0000000000000000, 0x403a000000000000),
    ];
    assert_bits(
        "nets+outline",
        (&pos, bb),
        &want,
        (0x404c800000000000, 0x4048000000000000),
    );
}

/// Two runs at the same seed are bitwise identical (the annealer holds no
/// hidden state across calls).
#[test]
fn same_seed_runs_are_bitwise_identical() {
    let blocks = blocks12();
    let nets: FpNets = vec![(vec![0, 5, 9], 12.0)];
    let cfg = SaConfig {
        steps: 40,
        ..Default::default()
    };
    let (p1, b1) = anneal_floorplan(&blocks, &nets, Some((70.0, 70.0)), &cfg);
    let (p2, b2) = anneal_floorplan(&blocks, &nets, Some((70.0, 70.0)), &cfg);
    assert_eq!(p1, p2);
    assert_eq!(b1, b2);
}
