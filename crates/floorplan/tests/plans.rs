//! Floorplan-level invariants across all styles.

use foldic_floorplan::{
    anneal_floorplan, floorplan_t2, interblock_wirelength_um, plan_chip_tsvs, FloorplanStyle,
    SaConfig,
};
use foldic_geom::Tier;
use foldic_t2::T2Config;

#[test]
fn chip_tsv_count_equals_cross_die_nets() {
    let (mut design, tech) = T2Config::tiny().generate();
    let plan = floorplan_t2(&mut design, FloorplanStyle::CoreCache, &tech);
    let mut crossing = 0;
    for net in design.chip_nets() {
        let tiers: std::collections::HashSet<Tier> = net
            .endpoints
            .iter()
            .map(|&(bid, _)| design.block(bid).tier)
            .collect();
        if tiers.len() > 1 {
            crossing += 1;
        }
    }
    assert_eq!(plan.tsvs.len(), crossing);
}

#[test]
fn replanning_tsvs_is_deterministic() {
    let (mut design, tech) = T2Config::tiny().generate();
    let plan = floorplan_t2(&mut design, FloorplanStyle::CoreCore, &tech);
    let again = plan_chip_tsvs(&design, plan.die, &tech);
    assert_eq!(plan.tsvs, again);
}

#[test]
fn interblock_wl_is_positive_and_scales_with_style() {
    let (design, tech) = T2Config::tiny().generate();
    let mut lens = Vec::new();
    for style in [
        FloorplanStyle::Flat2d,
        FloorplanStyle::CoreCache,
        FloorplanStyle::CoreCore,
    ] {
        let mut d = design.clone();
        let plan = floorplan_t2(&mut d, style, &tech);
        let wl = interblock_wirelength_um(&d, &plan);
        assert!(wl > 0.0);
        lens.push(wl);
    }
    // both 3D styles beat 2D
    assert!(lens[1] < lens[0]);
    assert!(lens[2] < lens[0]);
}

#[test]
fn sa_floorplanner_handles_mixed_sizes() {
    use foldic_floorplan::seqpair::FpBlock;
    // one giant block plus many small ones: no overlap, sane bounding box
    let mut blocks = vec![FpBlock { w: 50.0, h: 50.0 }];
    for i in 0..15 {
        blocks.push(FpBlock {
            w: 8.0 + (i % 4) as f64,
            h: 6.0 + (i % 3) as f64,
        });
    }
    let (pos, bb) = anneal_floorplan(&blocks, &Vec::new(), None, &SaConfig::default());
    let area_sum: f64 = blocks.iter().map(|b| b.w * b.h).sum();
    assert!(bb.area() >= area_sum);
    assert!(
        bb.area() < 2.5 * area_sum,
        "bb {} vs blocks {area_sum}",
        bb.area()
    );
    for (i, p) in pos.iter().enumerate() {
        let a = foldic_geom::Rect::with_size(*p, blocks[i].w, blocks[i].h);
        for (j, q) in pos.iter().enumerate().skip(i + 1) {
            let b = foldic_geom::Rect::with_size(*q, blocks[j].w, blocks[j].h);
            assert!(!a.inflated(-1e-9).overlaps(b), "{i} overlaps {j}");
        }
    }
}

#[test]
fn folded_blocks_expose_ports_on_both_tiers_to_the_planner() {
    // fold one block, then floorplan: cross-die chip nets must appear even
    // in the single-arrangement (Flat2d-recipe) plan
    let (mut design, tech) = T2Config::tiny().generate();
    let id = design.find_block("ccx").unwrap();
    let _ = foldic::fold_block(
        design.block_mut(id),
        &tech,
        &foldic::FoldConfig {
            strategy: foldic::FoldStrategy::NaturalGroups(vec!["pcx".into()]),
            bonding: foldic_tech::BondingStyle::FaceToFace,
            placer: foldic_place::PlacerConfig::fast(),
            ..foldic::FoldConfig::default()
        },
    );
    let plan = floorplan_t2(&mut design, FloorplanStyle::Flat2d, &tech);
    let tsvs = plan_chip_tsvs(&design, plan.die, &tech);
    assert!(
        !tsvs.is_empty(),
        "folded CCX ports on the top die must require chip-level 3D connections"
    );
}
