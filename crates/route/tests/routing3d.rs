//! Route-level integration: wiring analysis, via placement and the
//! global router on generated blocks.

use foldic_geom::Tier;
use foldic_partition::{apply_partition, bipartition, PartitionConfig};
use foldic_route::{place_vias, BlockWiring, GlobalRouter};
use foldic_t2::T2Config;
use foldic_tech::BondingStyle;

#[test]
fn via_detours_never_shorten_nets() {
    let (design, tech) = T2Config::tiny().generate();
    let mut nl = design
        .block(design.find_block("l2t0").unwrap())
        .netlist
        .clone();
    let part = bipartition(&nl, &tech, &PartitionConfig::default());
    apply_partition(&mut nl, &part);
    let outline = design.block(design.find_block("l2t0").unwrap()).outline;
    let ideal = BlockWiring::analyze(&nl, &tech, 1.0, None).unwrap();
    let vias = place_vias(&nl, &tech, outline, BondingStyle::FaceToFace).unwrap();
    let routed = BlockWiring::analyze(&nl, &tech, 1.0, Some(&vias)).unwrap();
    // Per net, the via route cannot be dramatically shorter than the
    // coplanar estimate (both are Steiner *approximations*: a split pair
    // of exact small trees may beat the 0.85-ratio MST estimate by a
    // bounded margin, but never by more).
    for (a, b) in ideal.nets.iter().zip(&routed.nets) {
        if b.is_3d && vias.via_of(b.net).is_some() {
            assert!(
                b.length_um >= 0.75 * a.length_um - 1e-6,
                "net {:?}: via route {} way below ideal {}",
                b.net,
                b.length_um,
                a.length_um
            );
        }
    }
    // in aggregate the via detours dominate the estimator noise
    assert!(routed.total_um >= 0.95 * ideal.total_um);
}

#[test]
fn sink_paths_cover_every_sink() {
    let (design, tech) = T2Config::tiny().generate();
    let nl = &design.block(design.find_block("rtx").unwrap()).netlist;
    let wiring = BlockWiring::analyze(nl, &tech, 1.1, None).unwrap();
    for (nid, net) in nl.nets() {
        let rec = wiring.net(nid);
        assert_eq!(
            rec.sink_paths.len(),
            net.fanout(),
            "{}",
            nl.name_of(net.name)
        );
        for &p in &rec.sink_paths {
            assert!(p.is_finite() && p >= 0.0);
            assert!(
                p <= rec.length_um * 1.5 + 1.0,
                "path {p} vs net {}",
                rec.length_um
            );
        }
    }
}

#[test]
fn tsv_assignment_monotone_in_congestion() {
    // folding more cells into crossing nets forces TSVs further from
    // their ideals (the site grid fills up)
    let (design, tech) = T2Config::tiny().generate();
    let base = design.block(design.find_block("l2t0").unwrap());
    let outline = base.outline;
    let displacement = |quality: f64| {
        let mut nl = base.netlist.clone();
        let part = foldic_partition::partition_with_quality(
            &nl,
            &tech,
            &PartitionConfig::default(),
            quality,
        );
        apply_partition(&mut nl, &part);
        let vias = place_vias(&nl, &tech, outline, BondingStyle::FaceToBack).unwrap();
        (vias.len(), vias.mean_displacement_um())
    };
    let (n_few, d_few) = displacement(1.0);
    let (n_many, d_many) = displacement(0.0);
    assert!(n_many > n_few);
    assert!(
        d_many > d_few,
        "more TSVs must displace further: {d_few} -> {d_many}"
    );
}

#[test]
fn global_router_conserves_connection_count() {
    let mut r = GlobalRouter::new(foldic_geom::Rect::new(0.0, 0.0, 2000.0, 2000.0), 100.0, 1.0);
    for i in 0..64u64 {
        let a = foldic_geom::Point::new((i * 131 % 2000) as f64, (i * 17 % 2000) as f64);
        let b = foldic_geom::Point::new((i * 89 % 2000) as f64, (i * 241 % 2000) as f64);
        r.route(a, b, 2.0);
    }
    let s = r.stats();
    assert_eq!(s.connections, 64);
    assert!(s.routed_um >= s.ideal_um);
    assert!(s.detour() >= 1.0);
}

#[test]
fn folded_block_keeps_clock_vias() {
    // clock trunks cross the dies too: the via placer must serve clock
    // nets (clock TSVs exist in real stacks)
    let (design, tech) = T2Config::tiny().generate();
    let mut nl = design
        .block(design.find_block("mcu0").unwrap())
        .netlist
        .clone();
    // move all flops' leaf buffers to the top die to force a 3D trunk
    let ids: Vec<_> = nl.inst_ids().collect();
    for id in ids {
        if nl.name_of(nl.inst(id).name).to_string().contains("cklf") {
            nl.inst_mut(id).tier = Tier::Top;
        }
    }
    let outline = design.block(design.find_block("mcu0").unwrap()).outline;
    let vias = place_vias(&nl, &tech, outline, BondingStyle::FaceToBack).unwrap();
    let clock_vias = vias.iter().filter(|v| nl.net(v.net).is_clock).count();
    assert!(clock_vias > 0, "clock distribution must cross the stack");
}
