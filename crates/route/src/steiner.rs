//! Rectilinear net topology: Prim spanning tree with per-sink path
//! lengths and a Steiner-ratio correction.

use foldic_geom::Point;

/// Empirical ratio between a rectilinear Steiner tree and the rectilinear
/// MST for random point sets; the router applies it to MST lengths.
pub const STEINER_RATIO: f64 = 0.85;

/// A routing topology for one net: a spanning tree over the driver and
/// sink positions in the Manhattan metric.
#[derive(Debug, Clone)]
pub struct SteinerTree {
    /// Pin positions; index 0 is the driver.
    points: Vec<Point>,
    /// Parent index per point (parent of the driver is itself).
    parent: Vec<usize>,
    /// Tree distance from the driver to each point.
    path_len: Vec<f64>,
    /// Total edge length (MST, before the Steiner correction).
    mst_len: f64,
}

impl SteinerTree {
    /// Builds the topology for a driver and its sinks (Prim's algorithm,
    /// O(p²) — net degrees are small).
    pub fn build(driver: Point, sinks: &[Point]) -> Self {
        let mut points = Vec::with_capacity(sinks.len() + 1);
        points.push(driver);
        points.extend_from_slice(sinks);
        let n = points.len();
        let mut parent = vec![0usize; n];
        let mut in_tree = vec![false; n];
        let mut best_d = vec![f64::INFINITY; n];
        let mut best_p = vec![0usize; n];
        in_tree[0] = true;
        for i in 1..n {
            best_d[i] = points[0].manhattan(points[i]);
        }
        let mut mst_len = 0.0;
        for _ in 1..n {
            // pick the nearest out-of-tree point
            let mut v = usize::MAX;
            let mut d = f64::INFINITY;
            for i in 1..n {
                if !in_tree[i] && best_d[i] < d {
                    d = best_d[i];
                    v = i;
                }
            }
            if v == usize::MAX {
                break;
            }
            in_tree[v] = true;
            parent[v] = best_p[v];
            mst_len += d;
            for i in 1..n {
                if !in_tree[i] {
                    let nd = points[v].manhattan(points[i]);
                    if nd < best_d[i] {
                        best_d[i] = nd;
                        best_p[i] = v;
                    }
                }
            }
        }
        // driver-to-pin path lengths down the tree
        let mut path_len = vec![0.0; n];
        // points are connected in insertion order of Prim, but parents may
        // be any in-tree vertex; resolve by repeated relaxation (n is tiny)
        let mut resolved = vec![false; n];
        resolved[0] = true;
        let mut remaining = n - 1;
        while remaining > 0 {
            let mut progressed = false;
            for i in 1..n {
                if !resolved[i] && resolved[parent[i]] {
                    path_len[i] = path_len[parent[i]] + points[parent[i]].manhattan(points[i]);
                    resolved[i] = true;
                    remaining -= 1;
                    progressed = true;
                }
            }
            if !progressed {
                break; // disconnected (cannot happen for finite points)
            }
        }
        Self {
            points,
            parent,
            path_len,
            mst_len,
        }
    }

    /// Steiner-corrected total wirelength of the net in µm.
    pub fn total_length(&self) -> f64 {
        if self.points.len() <= 3 {
            // MST is optimal (equals RSMT) for 2 pins; near-optimal for 3
            self.mst_len
        } else {
            self.mst_len * STEINER_RATIO
        }
    }

    /// Raw spanning-tree length in µm.
    pub fn mst_length(&self) -> f64 {
        self.mst_len
    }

    /// Tree distance from the driver to sink `i` (0-based over the sink
    /// slice passed to [`SteinerTree::build`]).
    pub fn sink_path_length(&self, i: usize) -> f64 {
        self.path_len[i + 1]
    }

    /// Number of pins (driver + sinks).
    pub fn num_pins(&self) -> usize {
        self.points.len()
    }

    /// Tree edges as `(child, parent)` point pairs (for plotting / the
    /// global router).
    pub fn edges(&self) -> impl Iterator<Item = (Point, Point)> + '_ {
        (1..self.points.len()).map(|i| (self.points[i], self.points[self.parent[i]]))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn two_pin_net_is_manhattan() {
        let t = SteinerTree::build(Point::new(0.0, 0.0), &[Point::new(3.0, 4.0)]);
        assert_eq!(t.total_length(), 7.0);
        assert_eq!(t.sink_path_length(0), 7.0);
    }

    #[test]
    fn chain_paths_accumulate() {
        let sinks = [
            Point::new(10.0, 0.0),
            Point::new(20.0, 0.0),
            Point::new(30.0, 0.0),
        ];
        let t = SteinerTree::build(Point::new(0.0, 0.0), &sinks);
        assert_eq!(t.mst_length(), 30.0);
        assert_eq!(t.sink_path_length(2), 30.0);
        assert_eq!(t.sink_path_length(0), 10.0);
    }

    #[test]
    fn steiner_ratio_applies_to_big_nets() {
        let sinks: Vec<Point> = (0..8)
            .map(|i| Point::new((i % 3) as f64 * 10.0, (i / 3) as f64 * 10.0))
            .collect();
        let t = SteinerTree::build(Point::new(15.0, 15.0), &sinks);
        assert!((t.total_length() - t.mst_length() * STEINER_RATIO).abs() < 1e-9);
        assert!(t.total_length() < t.mst_length());
    }

    #[test]
    fn star_prefers_hub_edges() {
        // sinks around a central driver must connect directly (no chain)
        let sinks = [
            Point::new(10.0, 0.0),
            Point::new(-10.0, 0.0),
            Point::new(0.0, 10.0),
            Point::new(0.0, -10.0),
        ];
        let t = SteinerTree::build(Point::ORIGIN, &sinks);
        assert_eq!(t.mst_length(), 40.0);
        for i in 0..4 {
            assert_eq!(t.sink_path_length(i), 10.0);
        }
    }

    #[test]
    fn degenerate_single_pin() {
        let t = SteinerTree::build(Point::ORIGIN, &[]);
        assert_eq!(t.total_length(), 0.0);
        assert_eq!(t.num_pins(), 1);
    }
}
