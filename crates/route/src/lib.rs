#![warn(missing_docs)]
#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]
//! Wirelength estimation, global routing and 3D-via placement.
//!
//! Four services the flow needs after placement:
//!
//! * [`steiner`] — rectilinear spanning/Steiner topology per net, total
//!   and per-sink lengths (feeding Elmore delay and wire capacitance);
//! * [`wiring`] — per-block wiring reports: routed wirelength with detour,
//!   the >100×-cell-height *long wire* census of Table 3, and net length
//!   lookup tables for the timing and power engines;
//! * [`grid`] — a congestion-aware global router on a g-cell grid whose
//!   capacity follows the routing-layer policy (§2.2/§6.1), used to
//!   quantify detour when folded F2F blocks block over-the-block routing;
//! * [`via`] — the paper's §5.1 contribution: choosing TSV / F2F-via
//!   locations for the 3D nets of a folded block. F2F vias may sit
//!   anywhere, including over macros; TSVs must claim legal silicon sites
//!   on a pitch grid outside macros, which displaces them from the optimum
//!   and degrades wirelength (the Fig. 6 effect).
//!
//! # Examples
//!
//! ```
//! use foldic_geom::Point;
//! use foldic_route::steiner::SteinerTree;
//!
//! let tree = SteinerTree::build(
//!     Point::new(0.0, 0.0),
//!     &[Point::new(10.0, 0.0), Point::new(10.0, 5.0)],
//! );
//! assert_eq!(tree.total_length(), 15.0);
//! ```

pub mod grid;
pub mod merged;
pub mod steiner;
pub mod via;
pub mod wiring;

pub use grid::{GlobalRouter, RouteStats};
pub use merged::{parse_merged, write_merged, MergedDesign};
pub use steiner::SteinerTree;
pub use via::{place_vias, Via3d, ViaPlacement};
pub use wiring::{BlockWiring, NetLength};
