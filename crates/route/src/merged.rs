//! The "2D-like 3D design file" exchange of §5.1 (Fig. 4).
//!
//! To find F2F via locations with a commercial 2D router, the paper
//! merges both dies of a folded block into one routing instance: cell and
//! layer names get `_die_top` / `_die_bot` suffixes, only the 3D nets are
//! listed for routing, and the 2D nets are tied off to ground so they
//! cannot influence the 3D routes. This module writes and parses that
//! merged design as a DEF-flavoured text format, so the folded state can
//! be exported to (and re-imported from) external tools.
//!
//! Distances are in DEF-style database units of 1 nm.
//!
//! # Examples
//!
//! ```
//! use foldic_route::merged::{parse_merged, write_merged};
//! use foldic_t2::T2Config;
//!
//! let (design, tech) = T2Config::tiny().generate();
//! let block = design.block(design.find_block("ccu").unwrap());
//! let text = write_merged(&block.netlist, &tech, block.outline, "ccu_merged");
//! let parsed = parse_merged(&text).unwrap();
//! assert_eq!(parsed.name, "ccu_merged");
//! assert_eq!(parsed.components.len(), block.netlist.num_insts());
//! ```

use foldic_geom::{Point, Rect, Tier};
use foldic_netlist::{InstMaster, Netlist, PinRef};
use foldic_tech::Technology;
use std::fmt;
use std::fmt::Write as _;

/// Database units per µm (DEF convention: 1000 = nm grid).
pub const DBU_PER_UM: f64 = 1000.0;

/// One placed component of the merged design.
#[derive(Debug, Clone, PartialEq)]
pub struct MergedComponent {
    /// Instance name.
    pub name: String,
    /// Master name with the die suffix, e.g. `NAND2X2_RVT_die_top`.
    pub master: String,
    /// Placement in µm.
    pub pos: Point,
}

impl MergedComponent {
    /// Which die the suffix encodes.
    pub fn tier(&self) -> Option<Tier> {
        if self.master.ends_with("_die_top") {
            Some(Tier::Top)
        } else if self.master.ends_with("_die_bot") {
            Some(Tier::Bottom)
        } else {
            None
        }
    }
}

/// One routable 3D net of the merged design.
#[derive(Debug, Clone, PartialEq)]
pub struct MergedNet {
    /// Net name.
    pub name: String,
    /// `(component, pin)` endpoints; the first is the driver.
    pub pins: Vec<(String, String)>,
}

/// A parsed merged design.
#[derive(Debug, Clone, PartialEq)]
pub struct MergedDesign {
    /// Design name.
    pub name: String,
    /// Die area in µm.
    pub die: Rect,
    /// All components of both dies.
    pub components: Vec<MergedComponent>,
    /// The 3D nets to route.
    pub nets_3d: Vec<MergedNet>,
    /// Number of 2D nets tied off to ground.
    pub tied_off: usize,
}

/// Writes the merged 2D-like design of a folded block.
pub fn write_merged(netlist: &Netlist, tech: &Technology, outline: Rect, name: &str) -> String {
    let mut out = String::new();
    let dbu = |v: f64| (v * DBU_PER_UM).round() as i64;
    let _ = writeln!(out, "MERGEDDESIGN {name} ;");
    let _ = writeln!(out, "UNITS DISTANCE MICRONS {} ;", DBU_PER_UM as i64);
    let _ = writeln!(
        out,
        "DIEAREA ( {} {} ) ( {} {} ) ;",
        dbu(outline.llx),
        dbu(outline.lly),
        dbu(outline.urx),
        dbu(outline.ury)
    );

    let suffix = |t: Tier| match t {
        Tier::Bottom => "_die_bot",
        Tier::Top => "_die_top",
    };
    let _ = writeln!(out, "COMPONENTS {} ;", netlist.num_insts());
    for (_, inst) in netlist.insts() {
        let base = match inst.master {
            InstMaster::Cell(m) => tech.cells.master(m).name.clone(),
            InstMaster::Macro(k) => k.to_string(),
        };
        let _ = writeln!(
            out,
            "  - {} {}{} + PLACED ( {} {} ) ;",
            netlist.name_of(inst.name),
            base,
            suffix(inst.tier),
            dbu(inst.pos.x),
            dbu(inst.pos.y)
        );
    }
    let _ = writeln!(out, "END COMPONENTS");

    let pin_name = |p: PinRef| -> Option<(String, String)> {
        match p {
            PinRef::InstOut(i) => Some((
                netlist.name_of(netlist.inst(i).name).to_string(),
                "out".to_owned(),
            )),
            PinRef::InstIn(i, k) => Some((
                netlist.name_of(netlist.inst(i).name).to_string(),
                format!("in{k}"),
            )),
            PinRef::Port(_) => None,
        }
    };
    let mut nets_3d = Vec::new();
    let mut tied = 0usize;
    for (nid, net) in netlist.nets() {
        if netlist.net_is_3d(nid) {
            let pins: Vec<(String, String)> = net.pins().filter_map(pin_name).collect();
            if pins.len() >= 2 {
                nets_3d.push((netlist.name_of(net.name).to_string(), pins));
                continue;
            }
        }
        tied += 1;
    }
    let _ = writeln!(out, "NETS3D {} ;", nets_3d.len());
    for (nname, pins) in &nets_3d {
        let mut line = format!("  - {nname}");
        for (c, p) in pins {
            let _ = write!(line, " ( {c} {p} )");
        }
        let _ = writeln!(out, "{line} ;");
    }
    let _ = writeln!(out, "END NETS3D");
    // the 2D nets are tied to ground so the external router ignores them
    let _ = writeln!(out, "TIEDOFF {tied} ;");
    let _ = writeln!(out, "END DESIGN");
    out
}

/// A parse failure with the offending line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseMergedError {
    /// 1-based line number.
    pub line: usize,
    /// What went wrong.
    pub message: String,
}

impl fmt::Display for ParseMergedError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for ParseMergedError {}

/// Parses a merged design written by [`write_merged`].
///
/// # Errors
///
/// Returns [`ParseMergedError`] on malformed headers, component or net
/// records.
pub fn parse_merged(text: &str) -> Result<MergedDesign, ParseMergedError> {
    let err = |line: usize, message: &str| ParseMergedError {
        line,
        message: message.to_owned(),
    };
    let mut name = None;
    let mut die = None;
    let mut components = Vec::new();
    let mut nets_3d = Vec::new();
    let mut tied_off = 0;
    #[derive(PartialEq)]
    enum Section {
        Head,
        Components,
        Nets,
    }
    let mut section = Section::Head;
    for (k, raw) in text.lines().enumerate() {
        let line_no = k + 1;
        let line = raw.trim();
        if line.is_empty() {
            continue;
        }
        let toks: Vec<&str> = line.split_whitespace().collect();
        match section {
            Section::Head | Section::Nets | Section::Components if toks[0] == "MERGEDDESIGN" => {
                name = Some(
                    toks.get(1)
                        .ok_or_else(|| err(line_no, "missing design name"))?
                        .to_string(),
                );
            }
            _ if toks[0] == "DIEAREA" => {
                // DIEAREA ( x0 y0 ) ( x1 y1 ) ;
                let nums: Vec<f64> = toks
                    .iter()
                    .filter_map(|t| t.parse::<i64>().ok())
                    .map(|v| v as f64 / DBU_PER_UM)
                    .collect();
                if nums.len() != 4 {
                    return Err(err(line_no, "DIEAREA needs four coordinates"));
                }
                die = Some(Rect::new(nums[0], nums[1], nums[2], nums[3]));
            }
            _ if toks[0] == "COMPONENTS" => section = Section::Components,
            _ if toks[0] == "NETS3D" => section = Section::Nets,
            _ if toks[0] == "TIEDOFF" => {
                tied_off = toks
                    .get(1)
                    .and_then(|t| t.parse().ok())
                    .ok_or_else(|| err(line_no, "TIEDOFF needs a count"))?;
            }
            _ if toks[0] == "END" || toks[0] == "UNITS" => {}
            Section::Components if toks[0] == "-" => {
                // - name master + PLACED ( x y ) ;
                if toks.len() < 9 {
                    return Err(err(line_no, "short component record"));
                }
                let x: i64 = toks[6]
                    .parse()
                    .map_err(|_| err(line_no, "bad x coordinate"))?;
                let y: i64 = toks[7]
                    .parse()
                    .map_err(|_| err(line_no, "bad y coordinate"))?;
                components.push(MergedComponent {
                    name: toks[1].to_owned(),
                    master: toks[2].to_owned(),
                    pos: Point::new(x as f64 / DBU_PER_UM, y as f64 / DBU_PER_UM),
                });
            }
            Section::Nets if toks[0] == "-" => {
                // - name ( comp pin ) ( comp pin ) ... ;
                let mut pins = Vec::new();
                let mut i = 2;
                while i + 3 < toks.len() {
                    if toks[i] == "(" && toks[i + 3] == ")" {
                        pins.push((toks[i + 1].to_owned(), toks[i + 2].to_owned()));
                        i += 4;
                    } else {
                        break;
                    }
                }
                if pins.len() < 2 {
                    return Err(err(line_no, "net with fewer than two pins"));
                }
                nets_3d.push(MergedNet {
                    name: toks[1].to_owned(),
                    pins,
                });
            }
            _ => return Err(err(line_no, "unrecognized record")),
        }
    }
    Ok(MergedDesign {
        name: name.ok_or_else(|| err(0, "missing MERGEDDESIGN header"))?,
        die: die.ok_or_else(|| err(0, "missing DIEAREA"))?,
        components,
        nets_3d,
        tied_off,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use foldic_netlist::InstId;
    use foldic_tech::{CellKind, Drive, VthClass};

    fn folded_netlist() -> (Netlist, Technology) {
        let tech = Technology::cmos28();
        let m = InstMaster::Cell(tech.cells.id_of(CellKind::Inv, Drive::X2, VthClass::Rvt));
        let mut nl = Netlist::new("t");
        let a = nl.add_inst("a", m);
        let b = nl.add_inst("b", m);
        let c = nl.add_inst("c", m);
        nl.inst_mut(a).pos = Point::new(10.0, 20.0);
        nl.inst_mut(b).pos = Point::new(30.0, 40.0);
        nl.inst_mut(b).tier = Tier::Top;
        nl.inst_mut(c).pos = Point::new(50.0, 60.0);
        // a -> b crosses tiers (3D); a -> c stays 2D
        let n3d = nl.add_net("x3d");
        nl.connect_driver(n3d, PinRef::output(a));
        nl.connect_sink(n3d, PinRef::input(b, 0));
        let n2d = nl.add_net("flat");
        nl.connect_driver(n2d, PinRef::output(c));
        nl.connect_sink(n2d, PinRef::input(a, 0));
        (nl, tech)
    }

    #[test]
    fn roundtrip_preserves_structure() {
        let (nl, tech) = folded_netlist();
        let outline = Rect::new(0.0, 0.0, 100.0, 100.0);
        let text = write_merged(&nl, &tech, outline, "demo");
        let parsed = parse_merged(&text).expect("parse");
        assert_eq!(parsed.name, "demo");
        assert_eq!(parsed.die, outline);
        assert_eq!(parsed.components.len(), 3);
        assert_eq!(parsed.nets_3d.len(), 1);
        assert_eq!(parsed.tied_off, 1);
        assert_eq!(parsed.nets_3d[0].name, "x3d");
        assert_eq!(parsed.nets_3d[0].pins.len(), 2);
    }

    #[test]
    fn masters_carry_die_suffixes() {
        let (nl, tech) = folded_netlist();
        let text = write_merged(&nl, &tech, Rect::new(0.0, 0.0, 100.0, 100.0), "demo");
        let parsed = parse_merged(&text).unwrap();
        let b = parsed.components.iter().find(|c| c.name == "b").unwrap();
        assert!(b.master.ends_with("_die_top"), "{}", b.master);
        assert_eq!(b.tier(), Some(Tier::Top));
        let a = parsed.components.iter().find(|c| c.name == "a").unwrap();
        assert_eq!(a.tier(), Some(Tier::Bottom));
    }

    #[test]
    fn positions_roundtrip_at_dbu_precision() {
        let (mut nl, tech) = folded_netlist();
        nl.inst_mut(InstId(0)).pos = Point::new(12.3456789, 98.7654321);
        let text = write_merged(&nl, &tech, Rect::new(0.0, 0.0, 100.0, 100.0), "p");
        let parsed = parse_merged(&text).unwrap();
        let a = parsed.components.iter().find(|c| c.name == "a").unwrap();
        assert!((a.pos.x - 12.346).abs() < 1e-9);
        assert!((a.pos.y - 98.765).abs() < 1e-9);
    }

    #[test]
    fn malformed_inputs_error_with_line_numbers() {
        assert!(parse_merged("").is_err());
        let bad = "MERGEDDESIGN x ;\nDIEAREA ( 0 0 ) ( 10 ) ;";
        let e = parse_merged(bad).unwrap_err();
        assert_eq!(e.line, 2);
        assert!(e.to_string().contains("DIEAREA"));
        let bad2 = "MERGEDDESIGN x ;\nDIEAREA ( 0 0 ) ( 10 10 ) ;\nGARBAGE here";
        assert!(parse_merged(bad2).is_err());
    }

    #[test]
    fn folded_t2_block_roundtrips() {
        let (design, tech) = foldic_t2::T2Config::tiny().generate();
        let block = design.block(design.find_block("l2t0").unwrap());
        let text = write_merged(&block.netlist, &tech, block.outline, "l2t0_merged");
        let parsed = parse_merged(&text).expect("parse generated block");
        assert_eq!(parsed.components.len(), block.netlist.num_insts());
        // unfolded block: no 3D nets, everything tied off
        assert_eq!(parsed.nets_3d.len(), 0);
        assert_eq!(parsed.tied_off, block.netlist.num_nets());
    }
}
