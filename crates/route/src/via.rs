//! 3D-via placement for folded blocks (paper §5.1).
//!
//! Every tier-crossing net needs exactly one 3D connection. Its ideal
//! location is the Manhattan median of the net's pins; the two bonding
//! styles differ in how freely that ideal can be realized:
//!
//! * **F2F vias** live between the two top metals: they consume no
//!   silicon, sit on a sub-µm pitch grid and may land over cells *and*
//!   macros — so nearly every via gets its ideal spot.
//! * **TSVs** punch through silicon: they occupy a pitch² keep-out that
//!   cells cannot share, are forbidden under macros, and collide with each
//!   other on their coarse pitch grid — each conflict pushes the via away
//!   from its ideal location and stretches the net (Fig. 6).

use foldic_fault::{FlowError, FlowStage};
use foldic_geom::{Point, Rect};
use foldic_netlist::{NetId, Netlist};
use foldic_tech::{BondingStyle, Technology, Via3dKind};
use std::collections::HashSet;

/// One placed 3D connection.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Via3d {
    /// The tier-crossing net this via serves.
    pub net: NetId,
    /// Via centre in block-local µm.
    pub pos: Point,
    /// TSV or F2F via.
    pub kind: Via3dKind,
    /// Manhattan displacement from the net's ideal crossing point in µm.
    pub displacement_um: f64,
}

/// The complete via assignment of a folded block.
#[derive(Debug, Clone)]
pub struct ViaPlacement {
    vias: Vec<Via3d>,
    by_net: Vec<Option<u32>>,
    kind: Via3dKind,
}

impl ViaPlacement {
    /// Builds a placement from explicit `(net, position)` pairs (mainly
    /// for tests and replaying stored results).
    pub fn from_pairs(netlist: &Netlist, pairs: Vec<(NetId, Point)>, kind: Via3dKind) -> Self {
        let mut by_net = vec![None; netlist.num_nets()];
        let vias = pairs
            .into_iter()
            .enumerate()
            .map(|(i, (net, pos))| {
                by_net[net.index()] = Some(i as u32);
                Via3d {
                    net,
                    pos,
                    kind,
                    displacement_um: 0.0,
                }
            })
            .collect();
        Self { vias, by_net, kind }
    }

    /// The via serving `net`, if that net crosses tiers.
    pub fn via_of(&self, net: NetId) -> Option<&Via3d> {
        self.by_net
            .get(net.index())
            .copied()
            .flatten()
            .map(|i| &self.vias[i as usize])
    }

    /// Number of 3D connections.
    pub fn len(&self) -> usize {
        self.vias.len()
    }

    /// `true` when the block has no 3D connections.
    pub fn is_empty(&self) -> bool {
        self.vias.is_empty()
    }

    /// Iterates over the vias.
    pub fn iter(&self) -> impl Iterator<Item = &Via3d> {
        self.vias.iter()
    }

    /// Which element realizes the connections.
    pub fn kind(&self) -> Via3dKind {
        self.kind
    }

    /// Silicon area consumed by the vias in µm² (zero for F2F bonding —
    /// its pads live in the metal stack).
    pub fn silicon_area_um2(&self, tech: &Technology) -> f64 {
        match self.kind {
            Via3dKind::Tsv => self.vias.len() as f64 * tech.tsv.keepout_area_um2(),
            Via3dKind::F2fVia => 0.0,
        }
    }

    /// Mean displacement from the ideal crossing points in µm.
    pub fn mean_displacement_um(&self) -> f64 {
        if self.vias.is_empty() {
            0.0
        } else {
            self.vias.iter().map(|v| v.displacement_um).sum::<f64>() / self.vias.len() as f64
        }
    }

    /// TSV keep-out rectangles (for re-placing cells around them);
    /// empty for F2F bonding.
    pub fn keepouts(&self, tech: &Technology) -> Vec<Rect> {
        match self.kind {
            Via3dKind::F2fVia => Vec::new(),
            Via3dKind::Tsv => {
                let p = tech.tsv.pitch_um;
                self.vias
                    .iter()
                    .map(|v| Rect::centered(v.pos, p, p))
                    .collect()
            }
        }
    }
}

/// Places one 3D via per tier-crossing net of a folded, placed block.
///
/// Nets are processed in ascending id order (deterministic). Each via
/// requests the Manhattan median of its net's pins, snapped to the
/// element's pitch grid; occupied or illegal sites trigger an outward
/// spiral search.
///
/// # Errors
///
/// Returns a [`FlowError`] at [`FlowStage::Route`] when a 3D net's pins
/// sit at non-finite coordinates (a diverged upstream placement).
pub fn place_vias(
    netlist: &Netlist,
    tech: &Technology,
    outline: Rect,
    bonding: BondingStyle,
) -> Result<ViaPlacement, FlowError> {
    let kind = match bonding {
        BondingStyle::FaceToBack => Via3dKind::Tsv,
        BondingStyle::FaceToFace => Via3dKind::F2fVia,
    };
    let pitch = match kind {
        Via3dKind::Tsv => tech.tsv.pitch_um,
        Via3dKind::F2fVia => tech.f2f_via.pitch_um,
    };
    // Macro keep-outs apply to TSVs only.
    let macro_rects: Vec<Rect> = if kind == Via3dKind::Tsv {
        netlist
            .insts()
            .filter(|(_, i)| i.master.is_macro())
            .map(|(_, i)| i.rect(tech).inflated(pitch * 0.5))
            .collect()
    } else {
        Vec::new()
    };

    let cols = (outline.width() / pitch).floor() as i64;
    let rows = (outline.height() / pitch).floor() as i64;
    let site_center = |c: i64, r: i64| {
        Point::new(
            outline.llx + (c as f64 + 0.5) * pitch,
            outline.lly + (r as f64 + 0.5) * pitch,
        )
    };
    let legal = |c: i64, r: i64| {
        if c < 0 || r < 0 || c >= cols || r >= rows {
            return false;
        }
        let p = site_center(c, r);
        !macro_rects.iter().any(|m| m.contains(p))
    };

    let mut occupied: HashSet<(i64, i64)> = HashSet::new();
    let mut vias = Vec::new();
    let mut by_net = vec![None; netlist.num_nets()];
    for (nid, net) in netlist.nets() {
        if !netlist.net_is_3d(nid) {
            continue;
        }
        // cooperative deadline checkpoint, every 64 placed vias (the ring
        // search below is the expensive part)
        if vias.len() % 64 == 0 {
            foldic_fault::deadline::poll()?;
        }
        // ideal crossing point: Manhattan median of all pins
        let mut xs: Vec<f64> = net.pins().map(|p| netlist.pin_pos(p).x).collect();
        let mut ys: Vec<f64> = net.pins().map(|p| netlist.pin_pos(p).y).collect();
        xs.sort_by(f64::total_cmp);
        ys.sort_by(f64::total_cmp);
        let median = Point::new(xs[xs.len() / 2], ys[ys.len() / 2]);
        if !(median.x.is_finite() && median.y.is_finite()) {
            return Err(FlowError::stage(
                FlowStage::Route,
                format!(
                    "3D net `{}` has pins at non-finite coordinates",
                    netlist.name_of(net.name)
                ),
            ));
        }
        let ideal = median.clamped(outline);
        let c0 = ((ideal.x - outline.llx) / pitch).floor() as i64;
        let r0 = ((ideal.y - outline.lly) / pitch).floor() as i64;
        // spiral outward for a free legal site
        let mut placed = None;
        'search: for ring in 0..cols.max(rows).max(1) {
            for dc in -ring..=ring {
                for dr in -ring..=ring {
                    if dc.abs() != ring && dr.abs() != ring {
                        continue;
                    }
                    let (c, r) = (c0 + dc, r0 + dr);
                    if legal(c, r) && !occupied.contains(&(c, r)) {
                        placed = Some((c, r));
                        break 'search;
                    }
                }
            }
        }
        let Some((c, r)) = placed else {
            // no site at all (degenerate outline): drop the via, the net
            // is measured with the ideal interconnect instead
            continue;
        };
        occupied.insert((c, r));
        let pos = site_center(c, r);
        by_net[nid.index()] = Some(vias.len() as u32);
        vias.push(Via3d {
            net: nid,
            pos,
            kind,
            displacement_um: pos.manhattan(ideal),
        });
    }
    Ok(ViaPlacement { vias, by_net, kind })
}

#[cfg(test)]
mod tests {
    use super::*;
    use foldic_geom::Tier;
    use foldic_netlist::{InstMaster, PinRef};
    use foldic_tech::{CellKind, Drive, MacroKind, VthClass};

    /// Builds a folded netlist with `n` vertical 3D nets in a row and an
    /// optional macro in the middle.
    fn folded(n: usize, with_macro: bool) -> (Netlist, Technology, Rect) {
        let tech = Technology::cmos28();
        let m = InstMaster::Cell(tech.cells.id_of(CellKind::Inv, Drive::X1, VthClass::Rvt));
        let mut nl = Netlist::new("f");
        let outline = Rect::new(0.0, 0.0, 400.0, 400.0);
        for i in 0..n {
            let a = nl.add_inst(format!("a{i}"), m);
            let b = nl.add_inst(format!("b{i}"), m);
            let x = 200.0;
            let y = 190.0 + 0.01 * i as f64;
            nl.inst_mut(a).pos = Point::new(x, y);
            {
                let mut inst = nl.inst_mut(b);
                inst.pos = Point::new(x, y);
                inst.tier = Tier::Top;
            }
            let net = nl.add_net(format!("n{i}"));
            nl.connect_driver(net, PinRef::output(a));
            nl.connect_sink(net, PinRef::input(b, 0));
        }
        if with_macro {
            let mac = nl.add_inst("mem", InstMaster::Macro(MacroKind::Sram16k));
            let mut inst = nl.inst_mut(mac);
            inst.pos = Point::new(200.0, 200.0);
            inst.fixed = true;
        }
        (nl, tech, outline)
    }

    #[test]
    fn f2f_vias_hit_their_ideal_sites() {
        let (nl, tech, outline) = folded(10, false);
        let vp = place_vias(&nl, &tech, outline, BondingStyle::FaceToFace).unwrap();
        assert_eq!(vp.len(), 10);
        // F2F pitch is sub-µm: everything lands within a pitch or two
        assert!(
            vp.mean_displacement_um() < 5.0,
            "{}",
            vp.mean_displacement_um()
        );
        assert_eq!(vp.silicon_area_um2(&tech), 0.0);
    }

    #[test]
    fn tsvs_collide_and_spread() {
        let (nl, tech, outline) = folded(10, false);
        let vp = place_vias(&nl, &tech, outline, BondingStyle::FaceToBack).unwrap();
        assert_eq!(vp.len(), 10);
        // ten TSVs wanting the same spot on a coarse pitch must spread out
        assert!(
            vp.mean_displacement_um() > tech.tsv.pitch_um,
            "{}",
            vp.mean_displacement_um()
        );
        assert!(vp.silicon_area_um2(&tech) > 0.0);
        // all distinct sites
        let mut seen = std::collections::HashSet::new();
        for v in vp.iter() {
            assert!(seen.insert((v.pos.x.to_bits(), v.pos.y.to_bits())));
        }
    }

    #[test]
    fn tsvs_avoid_macros_but_f2f_vias_do_not() {
        let (nl, tech, outline) = folded(6, true);
        let mac_rect = nl
            .insts()
            .find(|(_, i)| i.master.is_macro())
            .map(|(_, i)| i.rect(&tech))
            .unwrap();
        let tsv = place_vias(&nl, &tech, outline, BondingStyle::FaceToBack).unwrap();
        for v in tsv.iter() {
            assert!(!mac_rect.contains(v.pos), "TSV at {} over macro", v.pos);
        }
        let f2f = place_vias(&nl, &tech, outline, BondingStyle::FaceToFace).unwrap();
        // the ideal spots are inside the macro, and F2F may use them
        assert!(f2f.iter().any(|v| mac_rect.contains(v.pos)));
        // which makes the F2F assignment strictly closer to ideal
        assert!(f2f.mean_displacement_um() < tsv.mean_displacement_um());
    }

    #[test]
    fn keepouts_only_for_tsv() {
        let (nl, tech, outline) = folded(3, false);
        let tsv = place_vias(&nl, &tech, outline, BondingStyle::FaceToBack).unwrap();
        assert_eq!(tsv.keepouts(&tech).len(), 3);
        let f2f = place_vias(&nl, &tech, outline, BondingStyle::FaceToFace).unwrap();
        assert!(f2f.keepouts(&tech).is_empty());
    }
}
