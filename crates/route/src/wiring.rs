//! Per-block wiring analysis: routed lengths, per-sink paths, long-wire
//! census.

use crate::steiner::SteinerTree;
use crate::via::ViaPlacement;
use foldic_fault::{FlowError, FlowStage};
use foldic_geom::{Point, Tier};
use foldic_netlist::{NetId, Netlist};
use foldic_tech::Technology;

/// Default detour factor between Steiner length and routed length.
pub const DEFAULT_DETOUR: f64 = 1.10;

/// Routed-length record for one net.
#[derive(Debug, Clone)]
pub struct NetLength {
    /// The net.
    pub net: NetId,
    /// Routed total length in µm (detour included).
    pub length_um: f64,
    /// Driver-to-sink path length per sink, in `net.sinks` order.
    pub sink_paths: Vec<f64>,
    /// `true` when the net crosses tiers (carries a TSV / F2F via).
    pub is_3d: bool,
}

/// Wiring report of a placed block.
#[derive(Debug, Clone)]
pub struct BlockWiring {
    /// Per-net records, indexed by `NetId`.
    pub nets: Vec<NetLength>,
    /// Total routed wirelength in µm.
    pub total_um: f64,
    /// Nets longer than the technology's long-wire threshold (Table 3).
    pub long_wires: usize,
    /// Number of tier-crossing nets.
    pub num_3d: usize,
}

impl BlockWiring {
    /// Analyzes a placed netlist.
    ///
    /// `vias` supplies 3D-via locations for folded blocks; without it,
    /// tier-crossing nets are measured with an *ideal* 3D interconnect
    /// (pins treated as coplanar) — the assumption of the §5.1 flow's
    /// first pass.
    ///
    /// # Errors
    ///
    /// Returns a [`FlowError`] at [`FlowStage::Route`] when the analysis
    /// produces a non-finite total length (NaN coordinates from an
    /// upstream stage, or a non-finite `detour`).
    pub fn analyze(
        netlist: &Netlist,
        tech: &Technology,
        detour: f64,
        vias: Option<&ViaPlacement>,
    ) -> Result<Self, FlowError> {
        foldic_exec::profile::add_iters(netlist.num_nets() as u64);
        let mut nets = Vec::with_capacity(netlist.num_nets());
        let mut total = 0.0;
        let mut long_wires = 0;
        let mut num_3d = 0;
        let threshold = tech.long_wire_threshold();
        // batch the histogram: collect locally, flush under one lock
        let obs_on = foldic_obs::metrics::is_enabled();
        let mut lengths: Vec<f64> = Vec::new();
        for (nid, net) in netlist.nets() {
            // cooperative deadline checkpoint, every 256 nets
            if nid.index() % 256 == 0 {
                foldic_fault::deadline::poll()?;
            }
            let Some(driver) = net.driver else {
                nets.push(NetLength {
                    net: nid,
                    length_um: 0.0,
                    sink_paths: Vec::new(),
                    is_3d: false,
                });
                continue;
            };
            let dpos = netlist.pin_pos(driver);
            let dtier = netlist.pin_tier(driver);
            let sinks: Vec<(Point, Tier)> = net
                .sinks()
                .map(|s| (netlist.pin_pos(s), netlist.pin_tier(s)))
                .collect();
            let is_3d = sinks.iter().any(|&(_, t)| t != dtier);

            let (length, sink_paths) = match (is_3d, vias.and_then(|v| v.via_of(nid))) {
                (true, Some(via)) => route_3d(dpos, dtier, &sinks, via.pos, detour),
                _ => {
                    // coplanar (2D net, or ideal 3D interconnect)
                    let pts: Vec<Point> = sinks.iter().map(|&(p, _)| p).collect();
                    let tree = SteinerTree::build(dpos, &pts);
                    let paths = (0..pts.len())
                        .map(|i| tree.sink_path_length(i) * detour)
                        .collect();
                    (tree.total_length() * detour, paths)
                }
            };
            if is_3d {
                num_3d += 1;
            }
            if length > threshold {
                long_wires += 1;
            }
            total += length;
            if obs_on {
                lengths.push(length);
            }
            nets.push(NetLength {
                net: nid,
                length_um: length,
                sink_paths,
                is_3d,
            });
        }
        if !total.is_finite() {
            return Err(FlowError::stage(
                FlowStage::Route,
                "wiring analysis produced a non-finite total length",
            ));
        }
        if obs_on {
            foldic_obs::metrics::add("route.analyses", 1);
            foldic_obs::metrics::observe_all("route.net_length_um", &lengths);
        }
        Ok(Self {
            nets,
            total_um: total,
            long_wires,
            num_3d,
        })
    }

    /// The record of `net`.
    pub fn net(&self, net: NetId) -> &NetLength {
        &self.nets[net.index()]
    }

    /// Total routed length in metres (the unit of the paper's tables).
    pub fn total_m(&self) -> f64 {
        self.total_um * 1e-6
    }
}

/// Routes a tier-crossing net through its via: one subtree per tier with
/// the via as the crossing point.
fn route_3d(
    dpos: Point,
    dtier: Tier,
    sinks: &[(Point, Tier)],
    via: Point,
    detour: f64,
) -> (f64, Vec<f64>) {
    let near: Vec<Point> = sinks
        .iter()
        .filter(|&&(_, t)| t == dtier)
        .map(|&(p, _)| p)
        .collect();
    let far: Vec<Point> = sinks
        .iter()
        .filter(|&&(_, t)| t != dtier)
        .map(|&(p, _)| p)
        .collect();
    // near tree: driver + near sinks + the via
    let mut near_pts = near.clone();
    near_pts.push(via);
    let near_tree = SteinerTree::build(dpos, &near_pts);
    let via_path = near_tree.sink_path_length(near.len());
    // far tree: via acts as the driver
    let far_tree = SteinerTree::build(via, &far);
    let length = (near_tree.total_length() + far_tree.total_length()) * detour;
    // stitch per-sink paths back into the original sink order
    let mut near_iter = 0usize;
    let mut far_iter = 0usize;
    let mut paths = Vec::with_capacity(sinks.len());
    for &(_, t) in sinks {
        if t == dtier {
            paths.push(near_tree.sink_path_length(near_iter) * detour);
            near_iter += 1;
        } else {
            paths.push((via_path + far_tree.sink_path_length(far_iter)) * detour);
            far_iter += 1;
        }
    }
    (length, paths)
}

#[cfg(test)]
mod tests {
    use super::*;
    use foldic_netlist::{InstMaster, PinRef};
    use foldic_tech::{CellKind, Drive, VthClass};

    fn tech() -> Technology {
        Technology::cmos28()
    }

    fn two_cell_net(dist: f64) -> Netlist {
        let t = tech();
        let m = InstMaster::Cell(t.cells.id_of(CellKind::Inv, Drive::X1, VthClass::Rvt));
        let mut nl = Netlist::new("n");
        let a = nl.add_inst("a", m);
        let b = nl.add_inst("b", m);
        nl.inst_mut(b).pos = Point::new(dist, 0.0);
        let n = nl.add_net("w");
        nl.connect_driver(n, PinRef::output(a));
        nl.connect_sink(n, PinRef::input(b, 0));
        nl
    }

    #[test]
    fn detour_scales_length() {
        let nl = two_cell_net(100.0);
        let w = BlockWiring::analyze(&nl, &tech(), 1.1, None).unwrap();
        assert!((w.total_um - 110.0).abs() < 1e-9);
        assert_eq!(w.nets[0].sink_paths.len(), 1);
    }

    #[test]
    fn long_wire_census_uses_threshold() {
        let t = tech();
        let short = BlockWiring::analyze(&two_cell_net(50.0), &t, 1.0, None).unwrap();
        assert_eq!(short.long_wires, 0);
        let long = BlockWiring::analyze(&two_cell_net(150.0), &t, 1.0, None).unwrap();
        assert_eq!(long.long_wires, 1);
    }

    #[test]
    fn ideal_3d_net_is_coplanar() {
        let mut nl = two_cell_net(100.0);
        let b = foldic_netlist::InstId(1);
        nl.inst_mut(b).tier = Tier::Top;
        let w = BlockWiring::analyze(&nl, &tech(), 1.0, None).unwrap();
        assert_eq!(w.num_3d, 1);
        assert!((w.total_um - 100.0).abs() < 1e-9);
    }

    #[test]
    fn via_detour_lengthens_3d_net() {
        let mut nl = two_cell_net(100.0);
        let b = foldic_netlist::InstId(1);
        nl.inst_mut(b).tier = Tier::Top;
        // a via off the direct path adds length
        let vias = ViaPlacement::from_pairs(
            &nl,
            vec![(foldic_netlist::NetId(0), Point::new(50.0, 30.0))],
            foldic_tech::Via3dKind::F2fVia,
        );
        let w = BlockWiring::analyze(&nl, &tech(), 1.0, Some(&vias)).unwrap();
        assert!((w.total_um - 160.0).abs() < 1e-9, "{}", w.total_um);
        // sink path = driver->via + via->sink
        assert!((w.nets[0].sink_paths[0] - 160.0).abs() < 1e-9);
    }
}
