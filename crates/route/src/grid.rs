//! Congestion-aware global routing on a g-cell grid.
//!
//! Used at chip level: inter-block nets are routed over the block array,
//! where the available track supply per g-cell depends on the
//! routing-layer policy — blocks that consume M8–M9 (SPC everywhere;
//! every folded block under F2F bonding, §6.1) leave no over-the-block
//! capacity and force detours.

use foldic_geom::{BinGrid, Point, Rect};

/// Routing statistics accumulated by a [`GlobalRouter`].
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct RouteStats {
    /// Number of routed two-pin connections.
    pub connections: usize,
    /// Total routed length in µm.
    pub routed_um: f64,
    /// Total ideal (Manhattan) length in µm.
    pub ideal_um: f64,
    /// Connections that could not avoid over-capacity bins.
    pub overflowed: usize,
}

impl RouteStats {
    /// Mean detour factor (routed / ideal).
    pub fn detour(&self) -> f64 {
        if self.ideal_um > 0.0 {
            self.routed_um / self.ideal_um
        } else {
            1.0
        }
    }
}

/// A two-layer-direction g-cell congestion model.
#[derive(Debug, Clone)]
pub struct GlobalRouter {
    grid: BinGrid,
    /// horizontal track capacity per bin
    cap_h: Vec<f64>,
    /// vertical track capacity per bin
    cap_v: Vec<f64>,
    use_h: Vec<f64>,
    use_v: Vec<f64>,
    stats: RouteStats,
}

impl GlobalRouter {
    /// Creates a router over `region` with ~`gcell_um` g-cells and a track
    /// supply of `tracks_per_um` in each direction.
    pub fn new(region: Rect, gcell_um: f64, tracks_per_um: f64) -> Self {
        let grid = BinGrid::with_bin_size(region, gcell_um);
        let n = grid.bin_count();
        let cap_h = grid.bin_height() * tracks_per_um;
        let cap_v = grid.bin_width() * tracks_per_um;
        Self {
            grid,
            cap_h: vec![cap_h; n],
            cap_v: vec![cap_v; n],
            use_h: vec![0.0; n],
            use_v: vec![0.0; n],
            stats: RouteStats::default(),
        }
    }

    /// Scales the capacity of every bin overlapping `rect` by `factor`
    /// (0.0 = fully blocked). Used for routing-hungry / F2F-folded blocks.
    pub fn scale_capacity(&mut self, rect: Rect, factor: f64) {
        let ((c0, r0), (c1, r1)) = self.grid.bins_overlapping(rect);
        for r in r0..=r1 {
            for c in c0..=c1 {
                let i = self.grid.flat(c, r);
                self.cap_h[i] *= factor;
                self.cap_v[i] *= factor;
            }
        }
    }

    /// Routes a two-pin connection of width `tracks` (bus bits), choosing
    /// among L- and Z-shapes by congestion; records usage and returns the
    /// routed length in µm.
    pub fn route(&mut self, a: Point, b: Point, tracks: f64) -> f64 {
        let ideal = a.manhattan(b);
        self.stats.connections += 1;
        self.stats.ideal_um += ideal;

        // candidate bend points: the two L-shapes plus three Z midpoints
        // in each direction
        let mut candidates = vec![Point::new(b.x, a.y), Point::new(a.x, b.y)];
        for f in [0.25, 0.5, 0.75] {
            candidates.push(Point::new(a.x + (b.x - a.x) * f, a.y));
            candidates.push(Point::new(a.x, a.y + (b.y - a.y) * f));
        }
        let mut best: Option<(Point, f64, f64)> = None; // (bend, cost, worst)
        for &bend in &candidates {
            let (len, worst) = self.probe_path(a, bend, b, tracks);
            // congestion-weighted cost: length + heavy penalty per unit of
            // worst-bin over-capacity
            let cost = len * (1.0 + 2.0 * worst.max(0.0));
            if best.as_ref().is_none_or(|(_, c, _)| cost < *c) {
                best = Some((bend, cost, worst));
            }
        }
        #[allow(clippy::expect_used)] // `candidates` always holds >= 2 entries
        let (bend, _, worst) = best.expect("candidates are never empty");
        if worst > 0.0 {
            self.stats.overflowed += 1;
        }
        let len = self.commit_path(a, bend, b, tracks);
        self.stats.routed_um += len;
        len
    }

    /// Accumulated statistics.
    pub fn stats(&self) -> RouteStats {
        self.stats
    }

    /// Total positive overflow across all bins, in track-µm.
    pub fn overflow(&self) -> f64 {
        let h: f64 = self
            .use_h
            .iter()
            .zip(&self.cap_h)
            .map(|(u, c)| (u - c).max(0.0))
            .sum();
        let v: f64 = self
            .use_v
            .iter()
            .zip(&self.cap_v)
            .map(|(u, c)| (u - c).max(0.0))
            .sum();
        h + v
    }

    /// `(length, worst over-capacity ratio)` of the two-segment path
    /// `a → bend → b` without committing it.
    fn probe_path(&self, a: Point, bend: Point, b: Point, tracks: f64) -> (f64, f64) {
        let mut worst = f64::NEG_INFINITY;
        let mut len = 0.0;
        for (p, q) in [(a, bend), (bend, b)] {
            len += p.manhattan(q);
            self.walk(p, q, &mut |i, horizontal| {
                let (u, c) = if horizontal {
                    (self.use_h[i] + tracks, self.cap_h[i])
                } else {
                    (self.use_v[i] + tracks, self.cap_v[i])
                };
                let over = if c > 0.0 { u / c - 1.0 } else { 10.0 };
                if over > worst {
                    worst = over;
                }
            });
        }
        (len, worst)
    }

    fn commit_path(&mut self, a: Point, bend: Point, b: Point, tracks: f64) -> f64 {
        let mut touched: Vec<(usize, bool)> = Vec::new();
        let mut len = 0.0;
        for (p, q) in [(a, bend), (bend, b)] {
            len += p.manhattan(q);
            self.walk(p, q, &mut |i, horizontal| touched.push((i, horizontal)));
        }
        for (i, horizontal) in touched {
            if horizontal {
                self.use_h[i] += tracks;
            } else {
                self.use_v[i] += tracks;
            }
        }
        len
    }

    /// Visits the bins crossed by the axis-aligned segment `p → q`.
    /// Diagonal inputs are decomposed into an L through `(q.x, p.y)`.
    fn walk(&self, p: Point, q: Point, f: &mut dyn FnMut(usize, bool)) {
        let (c0, r0) = self.grid.bin_of(p);
        let (c1, r1) = self.grid.bin_of(q);
        if r0 == r1 {
            for c in c0.min(c1)..=c0.max(c1) {
                f(self.grid.flat(c, r0), true);
            }
        } else if c0 == c1 {
            for r in r0.min(r1)..=r0.max(r1) {
                f(self.grid.flat(c0, r), false);
            }
        } else {
            let bend = Point::new(q.x, p.y);
            self.walk(p, bend, f);
            self.walk(bend, q, f);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn router() -> GlobalRouter {
        GlobalRouter::new(Rect::new(0.0, 0.0, 1000.0, 1000.0), 50.0, 1.0)
    }

    #[test]
    fn uncongested_routes_are_ideal() {
        let mut r = router();
        let len = r.route(Point::new(100.0, 100.0), Point::new(500.0, 300.0), 1.0);
        assert_eq!(len, 600.0);
        assert_eq!(r.stats().detour(), 1.0);
        assert_eq!(r.overflow(), 0.0);
    }

    #[test]
    fn blocked_region_forces_detours_or_overflow() {
        let mut clean = router();
        let mut blocked = router();
        blocked.scale_capacity(Rect::new(300.0, 0.0, 700.0, 1000.0), 0.0);
        // many parallel wires crossing the blocked column
        for i in 0..20 {
            let y = 100.0 + 30.0 * i as f64;
            clean.route(Point::new(100.0, y), Point::new(900.0, y), 4.0);
            blocked.route(Point::new(100.0, y), Point::new(900.0, y), 4.0);
        }
        assert!(blocked.stats().overflowed > 0);
        assert!(blocked.overflow() > clean.overflow());
    }

    #[test]
    fn congestion_spreads_wires() {
        let mut r = router();
        // hammer one straight corridor; later wires must pick other bends
        let mut first = 0.0;
        let mut last = 0.0;
        for i in 0..200 {
            let len = r.route(Point::new(0.0, 500.0), Point::new(1000.0, 520.0), 1.0);
            if i == 0 {
                first = len;
            }
            last = len;
        }
        // the first wire is ideal; the capacity model keeps the router
        // from endlessly stacking all wires on the same bins
        assert_eq!(first, 1020.0);
        assert!(last >= first);
        assert!(r.stats().detour() >= 1.0);
    }

    #[test]
    fn capacity_scaling_is_local() {
        let mut r = router();
        r.scale_capacity(Rect::new(0.0, 0.0, 100.0, 100.0), 0.0);
        // a route far away is unaffected
        let len = r.route(Point::new(500.0, 500.0), Point::new(900.0, 900.0), 1.0);
        assert_eq!(len, 800.0);
        assert_eq!(r.stats().overflowed, 0);
    }
}
