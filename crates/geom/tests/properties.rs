//! Property-based tests of the geometric primitives.

use foldic_geom::{BinGrid, DensityMap, Point, Rect};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Every point maps into a bin whose rect contains it (after
    /// clamping), and flat indices are unique per (col, row).
    #[test]
    fn bin_of_is_consistent_with_bin_rect(
        x in -50.0..150.0f64,
        y in -50.0..150.0f64,
        cols in 1usize..20,
        rows in 1usize..20,
    ) {
        let grid = BinGrid::new(Rect::new(0.0, 0.0, 100.0, 100.0), cols, rows);
        let p = Point::new(x, y);
        let (c, r) = grid.bin_of(p);
        prop_assert!(c < cols && r < rows);
        let rect = grid.bin_rect(c, r);
        let clamped = p.clamped(grid.region());
        prop_assert!(rect.inflated(1e-9).contains(clamped));
        prop_assert_eq!(grid.flat(c, r), r * cols + c);
    }

    /// Bin rects tile the region exactly: areas sum to the region area.
    #[test]
    fn bins_tile_the_region(cols in 1usize..16, rows in 1usize..16) {
        let region = Rect::new(3.0, 7.0, 103.0, 57.0);
        let grid = BinGrid::new(region, cols, rows);
        let mut sum = 0.0;
        for r in 0..rows {
            for c in 0..cols {
                sum += grid.bin_rect(c, r).area();
            }
        }
        prop_assert!((sum - region.area()).abs() < 1e-6);
    }

    /// Manhattan distance satisfies the triangle inequality and symmetry.
    #[test]
    fn manhattan_is_a_metric(
        ax in -100.0..100.0f64, ay in -100.0..100.0f64,
        bx in -100.0..100.0f64, by in -100.0..100.0f64,
        cx in -100.0..100.0f64, cy in -100.0..100.0f64,
    ) {
        let a = Point::new(ax, ay);
        let b = Point::new(bx, by);
        let c = Point::new(cx, cy);
        prop_assert!((a.manhattan(b) - b.manhattan(a)).abs() < 1e-9);
        prop_assert!(a.manhattan(c) <= a.manhattan(b) + b.manhattan(c) + 1e-9);
        prop_assert!(a.manhattan(b) >= a.dist(b) - 1e-9, "L1 >= L2");
    }

    /// Punching holes never increases supply and never breaks demand
    /// accounting outside them.
    #[test]
    fn holes_only_remove_supply(
        hx in 0.0..80.0f64, hy in 0.0..80.0f64,
        hw in 5.0..20.0f64, hh in 5.0..20.0f64,
    ) {
        let grid = BinGrid::new(Rect::new(0.0, 0.0, 100.0, 100.0), 10, 10);
        let mut dm = DensityMap::new(grid, 0.8);
        let before = dm.total_supply();
        dm.punch_hole(Rect::new(hx, hy, hx + hw, hy + hh));
        prop_assert!(dm.total_supply() <= before);
        // demand added far away is fully accounted
        dm.add_demand(Rect::new(90.0, 90.0, 99.0, 99.0), 42.0);
        prop_assert!((dm.total_demand() - 42.0).abs() < 1e-9
            || (hx + hw > 90.0 && hy + hh > 90.0));
    }

    /// Rect::bounding of translated points translates the box.
    #[test]
    fn bounding_box_is_translation_equivariant(
        pts in prop::collection::vec((0.0..50.0f64, 0.0..50.0f64), 1..10),
        dx in -20.0..20.0f64,
        dy in -20.0..20.0f64,
    ) {
        let original: Vec<Point> = pts.iter().map(|&(x, y)| Point::new(x, y)).collect();
        let moved: Vec<Point> = original.iter().map(|p| *p + Point::new(dx, dy)).collect();
        let a = Rect::bounding(original);
        let b = Rect::bounding(moved);
        prop_assert!((b.llx - (a.llx + dx)).abs() < 1e-9);
        prop_assert!((b.ury - (a.ury + dy)).abs() < 1e-9);
        prop_assert!((a.half_perimeter() - b.half_perimeter()).abs() < 1e-9);
    }
}
