//! Property-based tests of the geometric primitives.
//!
//! Offline-first: instead of `proptest` (a registry dependency), each
//! property runs over a seeded stream of random cases from the
//! workspace's own deterministic RNG. Failures print the case seed so a
//! run can be reproduced exactly.

use foldic_geom::{BinGrid, DensityMap, Point, Rect};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

const CASES: u64 = 128;

fn rng_for(test: &str, case: u64) -> StdRng {
    StdRng::seed_from_u64(rand::derive_seed(&[
        "geom-properties",
        test,
        &case.to_string(),
    ]))
}

/// Every point maps into a bin whose rect contains it (after clamping),
/// and flat indices are unique per (col, row).
#[test]
fn bin_of_is_consistent_with_bin_rect() {
    for case in 0..CASES {
        let mut rng = rng_for("bin_of", case);
        let x = rng.gen_range(-50.0..150.0);
        let y = rng.gen_range(-50.0..150.0);
        let cols = rng.gen_range(1..20usize);
        let rows = rng.gen_range(1..20usize);
        let grid = BinGrid::new(Rect::new(0.0, 0.0, 100.0, 100.0), cols, rows);
        let p = Point::new(x, y);
        let (c, r) = grid.bin_of(p);
        assert!(c < cols && r < rows, "case {case}");
        let rect = grid.bin_rect(c, r);
        let clamped = p.clamped(grid.region());
        assert!(rect.inflated(1e-9).contains(clamped), "case {case}");
        assert_eq!(grid.flat(c, r), r * cols + c, "case {case}");
    }
}

/// Bin rects tile the region exactly: areas sum to the region area.
#[test]
fn bins_tile_the_region() {
    for case in 0..CASES {
        let mut rng = rng_for("tile", case);
        let cols = rng.gen_range(1..16usize);
        let rows = rng.gen_range(1..16usize);
        let region = Rect::new(3.0, 7.0, 103.0, 57.0);
        let grid = BinGrid::new(region, cols, rows);
        let mut sum = 0.0;
        for r in 0..rows {
            for c in 0..cols {
                sum += grid.bin_rect(c, r).area();
            }
        }
        assert!((sum - region.area()).abs() < 1e-6, "case {case}: {sum}");
    }
}

/// Manhattan distance satisfies the triangle inequality and symmetry.
#[test]
fn manhattan_is_a_metric() {
    for case in 0..CASES {
        let mut rng = rng_for("metric", case);
        let mut pt = || Point::new(rng.gen_range(-100.0..100.0), rng.gen_range(-100.0..100.0));
        let (a, b, c) = (pt(), pt(), pt());
        assert!(
            (a.manhattan(b) - b.manhattan(a)).abs() < 1e-9,
            "case {case}"
        );
        assert!(
            a.manhattan(c) <= a.manhattan(b) + b.manhattan(c) + 1e-9,
            "case {case}"
        );
        assert!(a.manhattan(b) >= a.dist(b) - 1e-9, "case {case}: L1 >= L2");
    }
}

/// Punching holes never increases supply and never breaks demand
/// accounting outside them.
#[test]
fn holes_only_remove_supply() {
    for case in 0..CASES {
        let mut rng = rng_for("holes", case);
        let hx = rng.gen_range(0.0..80.0);
        let hy = rng.gen_range(0.0..80.0);
        let hw = rng.gen_range(5.0..20.0);
        let hh = rng.gen_range(5.0..20.0);
        let grid = BinGrid::new(Rect::new(0.0, 0.0, 100.0, 100.0), 10, 10);
        let mut dm = DensityMap::new(grid, 0.8);
        let before = dm.total_supply();
        dm.punch_hole(Rect::new(hx, hy, hx + hw, hy + hh));
        assert!(dm.total_supply() <= before, "case {case}");
        // demand added far away is fully accounted
        dm.add_demand(Rect::new(90.0, 90.0, 99.0, 99.0), 42.0);
        assert!(
            (dm.total_demand() - 42.0).abs() < 1e-9 || (hx + hw > 90.0 && hy + hh > 90.0),
            "case {case}"
        );
    }
}

/// Rect::bounding of translated points translates the box.
#[test]
fn bounding_box_is_translation_equivariant() {
    for case in 0..CASES {
        let mut rng = rng_for("bounding", case);
        let n = rng.gen_range(1..10usize);
        let original: Vec<Point> = (0..n)
            .map(|_| Point::new(rng.gen_range(0.0..50.0), rng.gen_range(0.0..50.0)))
            .collect();
        let dx = rng.gen_range(-20.0..20.0);
        let dy = rng.gen_range(-20.0..20.0);
        let moved: Vec<Point> = original.iter().map(|p| *p + Point::new(dx, dy)).collect();
        let a = Rect::bounding(original);
        let b = Rect::bounding(moved);
        assert!((b.llx - (a.llx + dx)).abs() < 1e-9, "case {case}");
        assert!((b.ury - (a.ury + dy)).abs() < 1e-9, "case {case}");
        assert!(
            (a.half_perimeter() - b.half_perimeter()).abs() < 1e-9,
            "case {case}"
        );
    }
}
