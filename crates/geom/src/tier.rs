use std::fmt;

/// A die (tier) of a two-tier 3D stack.
///
/// The paper builds exclusively two-tier designs, so the tier is a simple
/// two-valued enum rather than an index. `Bottom` is the die whose face
/// points up in face-to-back bonding (it carries the TSV landing pads at
/// M1); `Top` is the stacked die.
///
/// # Examples
///
/// ```
/// use foldic_geom::Tier;
///
/// assert_eq!(Tier::Top.other(), Tier::Bottom);
/// assert_eq!(Tier::ALL.len(), 2);
/// ```
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Tier {
    /// The bottom die of the stack.
    #[default]
    Bottom,
    /// The top die of the stack.
    Top,
}

impl Tier {
    /// Both tiers, bottom first.
    pub const ALL: [Tier; 2] = [Tier::Bottom, Tier::Top];

    /// The opposite tier.
    #[inline]
    pub fn other(self) -> Tier {
        match self {
            Tier::Bottom => Tier::Top,
            Tier::Top => Tier::Bottom,
        }
    }

    /// Index usable for two-element arrays: bottom = 0, top = 1.
    #[inline]
    pub fn index(self) -> usize {
        match self {
            Tier::Bottom => 0,
            Tier::Top => 1,
        }
    }

    /// Inverse of [`Tier::index`].
    ///
    /// # Panics
    ///
    /// Panics if `i > 1`.
    pub fn from_index(i: usize) -> Tier {
        match i {
            0 => Tier::Bottom,
            1 => Tier::Top,
            _ => panic!("tier index {i} out of range (two-tier stack)"),
        }
    }
}

impl fmt::Display for Tier {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Tier::Bottom => write!(f, "die_bot"),
            Tier::Top => write!(f, "die_top"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn other_is_involution() {
        for t in Tier::ALL {
            assert_eq!(t.other().other(), t);
        }
    }

    #[test]
    fn index_roundtrip() {
        for t in Tier::ALL {
            assert_eq!(Tier::from_index(t.index()), t);
        }
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn bad_index_panics() {
        let _ = Tier::from_index(2);
    }

    #[test]
    fn display_names_match_paper() {
        assert_eq!(Tier::Top.to_string(), "die_top");
        assert_eq!(Tier::Bottom.to_string(), "die_bot");
    }
}
