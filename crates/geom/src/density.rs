use crate::{BinGrid, Rect};

/// The placer's supply/demand density map (Kraftwerk2-style).
///
/// Each bin carries a *supply* (placement capacity in µm²) and a *demand*
/// (area requested by the cells whose centres fall in or near the bin).
/// The mixed-size placer of the paper (§4.2) handles arbitrarily large hard
/// macros by **punching holes**: inside a hole both supply *and* demand are
/// pinned to zero, so the spreading forces neither push cells into the
/// macro nor create the halo whitespace regions that plain demand-inflation
/// produces.
///
/// # Examples
///
/// ```
/// use foldic_geom::{BinGrid, DensityMap, Rect};
///
/// let grid = BinGrid::new(Rect::new(0.0, 0.0, 100.0, 100.0), 10, 10);
/// let mut dm = DensityMap::new(grid, 0.8);
/// dm.punch_hole(Rect::new(0.0, 0.0, 30.0, 30.0));
/// dm.add_demand(Rect::new(40.0, 40.0, 60.0, 60.0), 400.0);
/// assert!(dm.overflow() >= 0.0);
/// ```
#[derive(Debug, Clone)]
pub struct DensityMap {
    grid: BinGrid,
    supply: Vec<f64>,
    demand: Vec<f64>,
    hole: Vec<bool>,
}

impl DensityMap {
    /// Creates a map over `grid` where every bin initially supplies
    /// `bin_area × target_utilization` of placement capacity.
    ///
    /// # Panics
    ///
    /// Panics if `target_utilization` is not in `(0, 1]`.
    pub fn new(grid: BinGrid, target_utilization: f64) -> Self {
        assert!(
            target_utilization > 0.0 && target_utilization <= 1.0,
            "target utilization must be in (0,1], got {target_utilization}"
        );
        let n = grid.bin_count();
        let s = grid.bin_area() * target_utilization;
        Self {
            grid,
            supply: vec![s; n],
            demand: vec![0.0; n],
            hole: vec![false; n],
        }
    }

    /// The underlying bin grid.
    pub fn grid(&self) -> &BinGrid {
        &self.grid
    }

    /// Zeroes supply and demand in every bin overlapped by `r` and marks it
    /// as a hole. This is the paper's fix for extremely large hard macros:
    /// "we set both the supply and the demand of the regions the hard
    /// macros occupy to zero".
    pub fn punch_hole(&mut self, r: Rect) {
        let ((c0, r0), (c1, r1)) = self.grid.bins_overlapping(r);
        for row in r0..=r1 {
            for col in c0..=c1 {
                // Only bins mostly covered by the macro become holes;
                // boundary bins keep their (reduced) supply.
                let bin = self.grid.bin_rect(col, row);
                let covered = r.intersection(bin).map(|i| i.area()).unwrap_or(0.0);
                let idx = self.grid.flat(col, row);
                if covered >= 0.5 * bin.area() {
                    self.hole[idx] = true;
                    self.supply[idx] = 0.0;
                    self.demand[idx] = 0.0;
                } else {
                    self.supply[idx] = (self.supply[idx] - covered).max(0.0);
                }
            }
        }
    }

    /// `true` when bin `(col, row)` is inside a punched hole.
    pub fn is_hole(&self, col: usize, row: usize) -> bool {
        self.hole[self.grid.flat(col, row)]
    }

    /// Adds `area` of demand distributed over the bins overlapped by `r`,
    /// proportionally to overlap. Demand falling on hole bins is dropped
    /// (holes are opaque to the spreading system).
    pub fn add_demand(&mut self, r: Rect, area: f64) {
        if area <= 0.0 || r.area() <= 0.0 {
            return;
        }
        let ((c0, r0), (c1, r1)) = self.grid.bins_overlapping(r);
        let total = r.area();
        for row in r0..=r1 {
            for col in c0..=c1 {
                let idx = self.grid.flat(col, row);
                if self.hole[idx] {
                    continue;
                }
                let bin = self.grid.bin_rect(col, row);
                if let Some(i) = r.intersection(bin) {
                    self.demand[idx] += area * i.area() / total;
                }
            }
        }
    }

    /// Clears all demand, keeping supply and holes.
    pub fn clear_demand(&mut self) {
        for d in &mut self.demand {
            *d = 0.0;
        }
    }

    /// Supply of bin `(col, row)` in µm².
    pub fn supply(&self, col: usize, row: usize) -> f64 {
        self.supply[self.grid.flat(col, row)]
    }

    /// Demand of bin `(col, row)` in µm².
    pub fn demand(&self, col: usize, row: usize) -> f64 {
        self.demand[self.grid.flat(col, row)]
    }

    /// Signed excess `demand − supply` of bin `(col, row)`.
    pub fn excess(&self, col: usize, row: usize) -> f64 {
        let i = self.grid.flat(col, row);
        self.demand[i] - self.supply[i]
    }

    /// Total positive overflow `Σ max(demand − supply, 0)` in µm²; the
    /// spreading loop drives this toward zero.
    pub fn overflow(&self) -> f64 {
        self.demand
            .iter()
            .zip(&self.supply)
            .map(|(d, s)| (d - s).max(0.0))
            .sum()
    }

    /// Total supply in µm².
    pub fn total_supply(&self) -> f64 {
        self.supply.iter().sum()
    }

    /// Total demand in µm².
    pub fn total_demand(&self) -> f64 {
        self.demand.iter().sum()
    }

    /// Fraction of hole bins.
    pub fn hole_fraction(&self) -> f64 {
        self.hole.iter().filter(|&&h| h).count() as f64 / self.hole.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Point;

    fn dm() -> DensityMap {
        let grid = BinGrid::new(Rect::new(0.0, 0.0, 100.0, 100.0), 10, 10);
        DensityMap::new(grid, 1.0)
    }

    #[test]
    fn fresh_map_has_no_overflow() {
        let m = dm();
        assert_eq!(m.overflow(), 0.0);
        assert_eq!(m.total_supply(), 100.0 * 100.0);
    }

    #[test]
    fn demand_distributes_by_overlap() {
        let mut m = dm();
        // 20x20 rect straddles four 10x10 bins equally.
        m.add_demand(Rect::new(5.0, 5.0, 25.0, 25.0), 400.0);
        assert!((m.total_demand() - 400.0).abs() < 1e-9);
        let (c, r) = m.grid().bin_of(Point::new(7.0, 7.0));
        assert!(m.demand(c, r) > 0.0);
    }

    #[test]
    fn hole_zeroes_supply_and_rejects_demand() {
        let mut m = dm();
        m.punch_hole(Rect::new(0.0, 0.0, 30.0, 30.0));
        assert!(m.is_hole(0, 0));
        assert_eq!(m.supply(1, 1), 0.0);
        let before = m.total_demand();
        m.add_demand(Rect::new(5.0, 5.0, 8.0, 8.0), 9.0);
        // demand fell entirely inside the hole and was dropped
        assert_eq!(m.total_demand(), before);
        // and hole bins never report overflow
        assert_eq!(m.overflow(), 0.0);
    }

    #[test]
    fn partial_hole_bins_keep_reduced_supply() {
        let mut m = dm();
        // covers 40% of bin (3,0): x in [30,34] of bin [30,40]
        m.punch_hole(Rect::new(30.0, 0.0, 34.0, 10.0));
        assert!(!m.is_hole(3, 0));
        assert!((m.supply(3, 0) - 60.0).abs() < 1e-9);
    }

    #[test]
    fn overflow_counts_only_positive_excess() {
        let mut m = dm();
        m.add_demand(Rect::new(0.0, 0.0, 10.0, 10.0), 150.0);
        assert!((m.overflow() - 50.0).abs() < 1e-9);
        assert!((m.excess(0, 0) - 50.0).abs() < 1e-9);
        assert!(m.excess(5, 5) < 0.0);
    }
}
