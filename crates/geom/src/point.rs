use std::fmt;
use std::ops::{Add, AddAssign, Mul, Sub, SubAssign};

/// A 2D point in microns.
///
/// # Examples
///
/// ```
/// use foldic_geom::Point;
///
/// let a = Point::new(1.0, 2.0);
/// let b = Point::new(4.0, 6.0);
/// assert_eq!(a.manhattan(b), 7.0);
/// assert_eq!(a.dist(b), 5.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Point {
    /// Horizontal coordinate in µm.
    pub x: f64,
    /// Vertical coordinate in µm.
    pub y: f64,
}

impl Point {
    /// Creates a point at `(x, y)`.
    pub const fn new(x: f64, y: f64) -> Self {
        Self { x, y }
    }

    /// The origin `(0, 0)`.
    pub const ORIGIN: Point = Point::new(0.0, 0.0);

    /// Manhattan (L1) distance to `other`, the metric of rectilinear wiring.
    #[inline]
    pub fn manhattan(self, other: Point) -> f64 {
        (self.x - other.x).abs() + (self.y - other.y).abs()
    }

    /// Euclidean (L2) distance to `other`.
    #[inline]
    pub fn dist(self, other: Point) -> f64 {
        ((self.x - other.x).powi(2) + (self.y - other.y).powi(2)).sqrt()
    }

    /// Midpoint of `self` and `other`.
    #[inline]
    pub fn midpoint(self, other: Point) -> Point {
        Point::new((self.x + other.x) * 0.5, (self.y + other.y) * 0.5)
    }

    /// Returns a point with each coordinate clamped into the given rectangle.
    #[inline]
    pub fn clamped(self, r: crate::Rect) -> Point {
        Point::new(
            crate::clamp(self.x, r.llx, r.urx),
            crate::clamp(self.y, r.lly, r.ury),
        )
    }

    /// `true` when both coordinates are finite.
    #[inline]
    pub fn is_finite(self) -> bool {
        self.x.is_finite() && self.y.is_finite()
    }
}

impl Add for Point {
    type Output = Point;
    fn add(self, rhs: Point) -> Point {
        Point::new(self.x + rhs.x, self.y + rhs.y)
    }
}

impl AddAssign for Point {
    fn add_assign(&mut self, rhs: Point) {
        self.x += rhs.x;
        self.y += rhs.y;
    }
}

impl Sub for Point {
    type Output = Point;
    fn sub(self, rhs: Point) -> Point {
        Point::new(self.x - rhs.x, self.y - rhs.y)
    }
}

impl SubAssign for Point {
    fn sub_assign(&mut self, rhs: Point) {
        self.x -= rhs.x;
        self.y -= rhs.y;
    }
}

impl Mul<f64> for Point {
    type Output = Point;
    fn mul(self, k: f64) -> Point {
        Point::new(self.x * k, self.y * k)
    }
}

impl fmt::Display for Point {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "({:.3}, {:.3})", self.x, self.y)
    }
}

impl From<(f64, f64)> for Point {
    fn from((x, y): (f64, f64)) -> Self {
        Point::new(x, y)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Rect;

    #[test]
    fn arithmetic() {
        let a = Point::new(1.0, 2.0);
        let b = Point::new(3.0, 5.0);
        assert_eq!(a + b, Point::new(4.0, 7.0));
        assert_eq!(b - a, Point::new(2.0, 3.0));
        assert_eq!(a * 2.0, Point::new(2.0, 4.0));
    }

    #[test]
    fn distances() {
        let a = Point::new(0.0, 0.0);
        let b = Point::new(3.0, 4.0);
        assert_eq!(a.manhattan(b), 7.0);
        assert_eq!(a.dist(b), 5.0);
        assert_eq!(a.midpoint(b), Point::new(1.5, 2.0));
    }

    #[test]
    fn clamped_into_rect() {
        let r = Rect::new(0.0, 0.0, 10.0, 10.0);
        assert_eq!(Point::new(-5.0, 12.0).clamped(r), Point::new(0.0, 10.0));
        assert_eq!(Point::new(5.0, 5.0).clamped(r), Point::new(5.0, 5.0));
    }

    #[test]
    fn display_is_nonempty() {
        assert!(!format!("{}", Point::ORIGIN).is_empty());
    }
}
