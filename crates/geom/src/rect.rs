use crate::Point;
use std::fmt;

/// An axis-aligned rectangle in microns, stored as lower-left / upper-right
/// corners. Degenerate (zero-area) rectangles are allowed; inverted
/// rectangles (`llx > urx`) are not.
///
/// # Examples
///
/// ```
/// use foldic_geom::Rect;
///
/// let a = Rect::new(0.0, 0.0, 10.0, 10.0);
/// let b = Rect::new(5.0, 5.0, 15.0, 15.0);
/// assert_eq!(a.intersection(b).unwrap().area(), 25.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Rect {
    /// Lower-left x in µm.
    pub llx: f64,
    /// Lower-left y in µm.
    pub lly: f64,
    /// Upper-right x in µm.
    pub urx: f64,
    /// Upper-right y in µm.
    pub ury: f64,
}

impl Rect {
    /// Creates a rectangle from its corner coordinates.
    ///
    /// # Panics
    ///
    /// Panics in debug builds if the rectangle is inverted.
    pub fn new(llx: f64, lly: f64, urx: f64, ury: f64) -> Self {
        debug_assert!(
            llx <= urx && lly <= ury,
            "inverted rect {llx},{lly},{urx},{ury}"
        );
        Self { llx, lly, urx, ury }
    }

    /// Creates a rectangle from a lower-left corner plus width and height.
    pub fn with_size(ll: Point, w: f64, h: f64) -> Self {
        Rect::new(ll.x, ll.y, ll.x + w, ll.y + h)
    }

    /// Creates a rectangle of size `w × h` centred on `c`.
    pub fn centered(c: Point, w: f64, h: f64) -> Self {
        Rect::new(c.x - w * 0.5, c.y - h * 0.5, c.x + w * 0.5, c.y + h * 0.5)
    }

    /// The empty rectangle used as a union identity: any union with it
    /// yields the other operand.
    pub fn empty() -> Self {
        Rect {
            llx: f64::INFINITY,
            lly: f64::INFINITY,
            urx: f64::NEG_INFINITY,
            ury: f64::NEG_INFINITY,
        }
    }

    /// `true` for the union-identity produced by [`Rect::empty`].
    pub fn is_empty(&self) -> bool {
        self.llx > self.urx || self.lly > self.ury
    }

    /// Width in µm.
    #[inline]
    pub fn width(&self) -> f64 {
        self.urx - self.llx
    }

    /// Height in µm.
    #[inline]
    pub fn height(&self) -> f64 {
        self.ury - self.lly
    }

    /// Area in µm².
    #[inline]
    pub fn area(&self) -> f64 {
        if self.is_empty() {
            0.0
        } else {
            self.width() * self.height()
        }
    }

    /// Half-perimeter (the HPWL contribution of a bounding box).
    #[inline]
    pub fn half_perimeter(&self) -> f64 {
        if self.is_empty() {
            0.0
        } else {
            self.width() + self.height()
        }
    }

    /// Centre point.
    #[inline]
    pub fn center(&self) -> Point {
        Point::new((self.llx + self.urx) * 0.5, (self.lly + self.ury) * 0.5)
    }

    /// `true` when `p` lies inside or on the boundary.
    #[inline]
    pub fn contains(&self, p: Point) -> bool {
        p.x >= self.llx && p.x <= self.urx && p.y >= self.lly && p.y <= self.ury
    }

    /// `true` when `other` lies entirely inside or on the boundary.
    pub fn contains_rect(&self, other: Rect) -> bool {
        other.llx >= self.llx
            && other.urx <= self.urx
            && other.lly >= self.lly
            && other.ury <= self.ury
    }

    /// `true` when the two rectangles share interior area (touching edges do
    /// not count as overlap).
    pub fn overlaps(&self, other: Rect) -> bool {
        self.llx < other.urx && other.llx < self.urx && self.lly < other.ury && other.lly < self.ury
    }

    /// The overlapping region, or `None` when the rectangles share no
    /// interior area.
    pub fn intersection(&self, other: Rect) -> Option<Rect> {
        if !self.overlaps(other) {
            return None;
        }
        Some(Rect::new(
            self.llx.max(other.llx),
            self.lly.max(other.lly),
            self.urx.min(other.urx),
            self.ury.min(other.ury),
        ))
    }

    /// Smallest rectangle covering both operands.
    pub fn union(&self, other: Rect) -> Rect {
        if self.is_empty() {
            return other;
        }
        if other.is_empty() {
            return *self;
        }
        Rect::new(
            self.llx.min(other.llx),
            self.lly.min(other.lly),
            self.urx.max(other.urx),
            self.ury.max(other.ury),
        )
    }

    /// Grows the rectangle by `p` and extends the bounding box to cover it.
    pub fn expand_to(&mut self, p: Point) {
        self.llx = self.llx.min(p.x);
        self.lly = self.lly.min(p.y);
        self.urx = self.urx.max(p.x);
        self.ury = self.ury.max(p.y);
    }

    /// Returns the rectangle inflated by `margin` on every side.
    ///
    /// A negative margin shrinks the rectangle; the result collapses to the
    /// centre point if the margin exceeds half the dimensions.
    pub fn inflated(&self, margin: f64) -> Rect {
        let c = self.center();
        let w = (self.width() + 2.0 * margin).max(0.0);
        let h = (self.height() + 2.0 * margin).max(0.0);
        Rect::centered(c, w, h)
    }

    /// Returns the rectangle translated by `(dx, dy)`.
    pub fn translated(&self, dx: f64, dy: f64) -> Rect {
        Rect::new(self.llx + dx, self.lly + dy, self.urx + dx, self.ury + dy)
    }

    /// Bounding box of a set of points; `Rect::empty()` when the iterator
    /// is empty.
    pub fn bounding<I: IntoIterator<Item = Point>>(points: I) -> Rect {
        let mut bb = Rect::empty();
        for p in points {
            bb.expand_to(p);
        }
        bb
    }
}

impl fmt::Display for Rect {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "[{:.2},{:.2} .. {:.2},{:.2}]",
            self.llx, self.lly, self.urx, self.ury
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn basic_metrics() {
        let r = Rect::new(1.0, 2.0, 5.0, 10.0);
        assert_eq!(r.width(), 4.0);
        assert_eq!(r.height(), 8.0);
        assert_eq!(r.area(), 32.0);
        assert_eq!(r.half_perimeter(), 12.0);
        assert_eq!(r.center(), Point::new(3.0, 6.0));
    }

    #[test]
    fn overlap_and_intersection() {
        let a = Rect::new(0.0, 0.0, 10.0, 10.0);
        let b = Rect::new(5.0, 5.0, 15.0, 15.0);
        let c = Rect::new(10.0, 0.0, 20.0, 10.0); // touches a, no interior overlap
        assert!(a.overlaps(b));
        assert!(!a.overlaps(c));
        assert_eq!(a.intersection(b).unwrap(), Rect::new(5.0, 5.0, 10.0, 10.0));
        assert!(a.intersection(c).is_none());
    }

    #[test]
    fn union_identity() {
        let a = Rect::new(0.0, 0.0, 1.0, 1.0);
        assert_eq!(Rect::empty().union(a), a);
        assert_eq!(a.union(Rect::empty()), a);
        assert_eq!(Rect::empty().area(), 0.0);
    }

    #[test]
    fn bounding_box_of_points() {
        let bb = Rect::bounding([
            Point::new(1.0, 5.0),
            Point::new(-2.0, 3.0),
            Point::new(4.0, 4.0),
        ]);
        assert_eq!(bb, Rect::new(-2.0, 3.0, 4.0, 5.0));
        assert!(Rect::bounding(std::iter::empty()).is_empty());
    }

    #[test]
    fn inflate_and_translate() {
        let r = Rect::new(0.0, 0.0, 10.0, 10.0);
        assert_eq!(r.inflated(1.0), Rect::new(-1.0, -1.0, 11.0, 11.0));
        assert_eq!(r.inflated(-6.0).area(), 0.0);
        assert_eq!(r.translated(2.0, 3.0), Rect::new(2.0, 3.0, 12.0, 13.0));
    }

    #[test]
    fn containment() {
        let a = Rect::new(0.0, 0.0, 10.0, 10.0);
        assert!(a.contains_rect(Rect::new(2.0, 2.0, 8.0, 8.0)));
        assert!(!a.contains_rect(Rect::new(2.0, 2.0, 12.0, 8.0)));
    }
}
