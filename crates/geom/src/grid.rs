use crate::{Point, Rect};

/// A uniform rectangular bin grid over a region.
///
/// Used by the placer's density map and by the global router's congestion
/// map. Bins are addressed by `(col, row)` with `(0, 0)` at the lower-left.
/// Out-of-region points are clamped into the boundary bins.
///
/// # Examples
///
/// ```
/// use foldic_geom::{BinGrid, Point, Rect};
///
/// let g = BinGrid::new(Rect::new(0.0, 0.0, 100.0, 50.0), 10, 5);
/// assert_eq!(g.bin_of(Point::new(15.0, 45.0)), (1, 4));
/// assert_eq!(g.bin_count(), 50);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct BinGrid {
    region: Rect,
    cols: usize,
    rows: usize,
    bin_w: f64,
    bin_h: f64,
}

impl BinGrid {
    /// Creates a `cols × rows` grid covering `region`.
    ///
    /// # Panics
    ///
    /// Panics if `cols` or `rows` is zero, or if the region is degenerate.
    pub fn new(region: Rect, cols: usize, rows: usize) -> Self {
        assert!(cols > 0 && rows > 0, "grid must have at least one bin");
        assert!(
            region.width() > 0.0 && region.height() > 0.0,
            "grid region must have positive area, got {region}"
        );
        Self {
            region,
            cols,
            rows,
            bin_w: region.width() / cols as f64,
            bin_h: region.height() / rows as f64,
        }
    }

    /// Creates a grid whose bins are approximately `bin_size × bin_size`.
    pub fn with_bin_size(region: Rect, bin_size: f64) -> Self {
        let cols = ((region.width() / bin_size).ceil() as usize).max(1);
        let rows = ((region.height() / bin_size).ceil() as usize).max(1);
        Self::new(region, cols, rows)
    }

    /// The covered region.
    pub fn region(&self) -> Rect {
        self.region
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Total bin count (`cols × rows`).
    pub fn bin_count(&self) -> usize {
        self.cols * self.rows
    }

    /// Bin width in µm.
    pub fn bin_width(&self) -> f64 {
        self.bin_w
    }

    /// Bin height in µm.
    pub fn bin_height(&self) -> f64 {
        self.bin_h
    }

    /// Area of one bin in µm².
    pub fn bin_area(&self) -> f64 {
        self.bin_w * self.bin_h
    }

    /// The `(col, row)` bin containing `p`, clamped into the grid.
    pub fn bin_of(&self, p: Point) -> (usize, usize) {
        let c = ((p.x - self.region.llx) / self.bin_w).floor() as isize;
        let r = ((p.y - self.region.lly) / self.bin_h).floor() as isize;
        (
            c.clamp(0, self.cols as isize - 1) as usize,
            r.clamp(0, self.rows as isize - 1) as usize,
        )
    }

    /// Flat index of bin `(col, row)`, row-major.
    ///
    /// # Panics
    ///
    /// Panics in debug builds on out-of-range bins.
    #[inline]
    pub fn flat(&self, col: usize, row: usize) -> usize {
        debug_assert!(col < self.cols && row < self.rows);
        row * self.cols + col
    }

    /// Geometric extent of bin `(col, row)`.
    pub fn bin_rect(&self, col: usize, row: usize) -> Rect {
        let llx = self.region.llx + col as f64 * self.bin_w;
        let lly = self.region.lly + row as f64 * self.bin_h;
        Rect::new(llx, lly, llx + self.bin_w, lly + self.bin_h)
    }

    /// Centre of bin `(col, row)`.
    pub fn bin_center(&self, col: usize, row: usize) -> Point {
        self.bin_rect(col, row).center()
    }

    /// Inclusive `(col, row)` ranges of bins overlapped by `r`.
    pub fn bins_overlapping(&self, r: Rect) -> ((usize, usize), (usize, usize)) {
        let (c0, r0) = self.bin_of(Point::new(r.llx, r.lly));
        // Upper coordinates are exclusive: nudge inward so a rect ending
        // exactly on a bin boundary does not claim the next bin.
        let eps_x = self.bin_w * 1e-9;
        let eps_y = self.bin_h * 1e-9;
        let (c1, r1) = self.bin_of(Point::new(r.urx - eps_x, r.ury - eps_y));
        ((c0, r0), (c1.max(c0), r1.max(r0)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn grid() -> BinGrid {
        BinGrid::new(Rect::new(0.0, 0.0, 100.0, 50.0), 10, 5)
    }

    #[test]
    fn bin_lookup_and_clamping() {
        let g = grid();
        assert_eq!(g.bin_of(Point::new(0.0, 0.0)), (0, 0));
        assert_eq!(g.bin_of(Point::new(99.9, 49.9)), (9, 4));
        // clamped outside
        assert_eq!(g.bin_of(Point::new(-5.0, 500.0)), (0, 4));
    }

    #[test]
    fn bin_geometry() {
        let g = grid();
        assert_eq!(g.bin_area(), 100.0);
        assert_eq!(g.bin_rect(0, 0), Rect::new(0.0, 0.0, 10.0, 10.0));
        assert_eq!(g.bin_center(1, 1), Point::new(15.0, 15.0));
    }

    #[test]
    fn overlap_ranges_respect_boundaries() {
        let g = grid();
        let ((c0, r0), (c1, r1)) = g.bins_overlapping(Rect::new(5.0, 5.0, 20.0, 20.0));
        assert_eq!((c0, r0), (0, 0));
        assert_eq!((c1, r1), (1, 1)); // ends exactly on bin boundary at 20.0
    }

    #[test]
    fn with_bin_size_rounds_up() {
        let g = BinGrid::with_bin_size(Rect::new(0.0, 0.0, 95.0, 42.0), 10.0);
        assert_eq!(g.cols(), 10);
        assert_eq!(g.rows(), 5);
    }

    #[test]
    #[should_panic(expected = "at least one bin")]
    fn zero_bins_panics() {
        let _ = BinGrid::new(Rect::new(0.0, 0.0, 1.0, 1.0), 0, 1);
    }
}
