#![warn(missing_docs)]
//! Geometric primitives for 3D-IC physical design.
//!
//! All coordinates are in **microns** (µm) stored as `f64`. The crate
//! provides points, axis-aligned rectangles, tier (die) identifiers for
//! 2-tier 3D stacks, uniform bin grids, and the supply/demand density map
//! used by the mixed-size placer (including the "macro hole" mechanism of
//! the paper's §4.2).
//!
//! # Examples
//!
//! ```
//! use foldic_geom::{Point, Rect};
//!
//! let r = Rect::new(0.0, 0.0, 10.0, 4.0);
//! assert_eq!(r.area(), 40.0);
//! assert!(r.contains(Point::new(5.0, 2.0)));
//! ```

mod density;
mod grid;
mod point;
mod rect;
mod tier;

pub use density::DensityMap;
pub use grid::BinGrid;
pub use point::Point;
pub use rect::Rect;
pub use tier::Tier;

/// Clamps `v` into the inclusive range `[lo, hi]`.
///
/// # Panics
///
/// Panics in debug builds if `lo > hi`.
///
/// # Examples
///
/// ```
/// assert_eq!(foldic_geom::clamp(11.0, 0.0, 10.0), 10.0);
/// ```
#[inline]
pub fn clamp(v: f64, lo: f64, hi: f64) -> f64 {
    debug_assert!(lo <= hi, "clamp: lo {lo} > hi {hi}");
    v.max(lo).min(hi)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clamp_within_bounds() {
        assert_eq!(clamp(5.0, 0.0, 10.0), 5.0);
        assert_eq!(clamp(-1.0, 0.0, 10.0), 0.0);
        assert_eq!(clamp(11.0, 0.0, 10.0), 10.0);
    }
}
