#![warn(missing_docs)]
//! Min-cut bipartitioning for block folding.
//!
//! Folding a block (paper §4) means splitting its netlist across the two
//! dies of the stack so that the halves sit on top of each other. The
//! number of 3D connections (TSVs or F2F vias) equals the **cut size** of
//! the bipartition, and die area balance decides the folded footprint —
//! exactly the objective of the Fiduccia–Mattheyses heuristic implemented
//! here.
//!
//! Three entry points cover the paper's folding scenarios:
//!
//! * [`bipartition`] — area-balanced min-cut FM with multi-start, used for
//!   generic blocks (L2T, RTX, and each folded FUB of the SPC).
//! * [`partition_by_groups`] — the *natural split* of §4.3: assign whole
//!   instance groups to dies (PCX vs CPX needs only four 3D wires).
//! * [`partition_with_quality`] — degrades a min-cut solution toward a
//!   random balanced one, generating the increasing-cut partition cases
//!   #1–#5 of Fig. 7.
//!
//! # Examples
//!
//! ```
//! use foldic_partition::{bipartition, PartitionConfig};
//! use foldic_t2::T2Config;
//!
//! let (design, tech) = T2Config::tiny().generate();
//! let block = design.block(design.find_block("l2t0").unwrap());
//! let part = bipartition(&block.netlist, &tech, &PartitionConfig::default());
//! assert!(part.balance(&block.netlist, &tech) < 0.2);
//! ```

mod fm;

pub use fm::{bipartition, bipartition_seeded, Partition, PartitionConfig};

use foldic_geom::Tier;
use foldic_netlist::{GroupId, Netlist};
use foldic_tech::Technology;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Assigns each instance a die by its group membership.
///
/// `top_groups` lists the groups placed on the top die; everything else
/// (including ungrouped instances) goes to the bottom die. This is the
/// "natural way to fold" the CCX: "placing the entire PCX block in one die
/// and the CPX in another" (§4.3).
pub fn partition_by_groups(netlist: &Netlist, top_groups: &[GroupId]) -> Partition {
    let tier_of = netlist
        .insts()
        .map(|(_, inst)| match inst.group {
            Some(g) if top_groups.contains(&g) => Tier::Top,
            _ => Tier::Bottom,
        })
        .collect();
    let mut p = Partition { tier_of, cut: 0 };
    p.cut = p.cut_size(netlist);
    p
}

/// Produces a partition of controlled quality for the Fig. 7 sweep.
///
/// `quality = 1.0` returns the plain min-cut result; lower values randomly
/// swap a growing fraction of balanced instance pairs across the dies,
/// monotonically (in expectation) increasing the number of 3D connections
/// while preserving area balance.
pub fn partition_with_quality(
    netlist: &Netlist,
    tech: &Technology,
    cfg: &PartitionConfig,
    quality: f64,
) -> Partition {
    let mut part = bipartition(netlist, tech, cfg);
    let degrade = (1.0 - quality.clamp(0.0, 1.0)) * 0.5;
    if degrade <= 0.0 {
        return part;
    }
    let mut rng = StdRng::seed_from_u64(cfg.seed ^ 0xF167);
    // collect movable ids per side
    let mut bottom = Vec::new();
    let mut top = Vec::new();
    for (id, inst) in netlist.insts() {
        if inst.fixed {
            continue;
        }
        match part.tier_of[id.index()] {
            Tier::Bottom => bottom.push(id),
            Tier::Top => top.push(id),
        }
    }
    let swaps = ((bottom.len().min(top.len()) as f64) * degrade) as usize;
    for _ in 0..swaps {
        if bottom.is_empty() || top.is_empty() {
            break;
        }
        let i = rng.gen_range(0..bottom.len());
        let j = rng.gen_range(0..top.len());
        part.tier_of[bottom[i].index()] = Tier::Top;
        part.tier_of[top[j].index()] = Tier::Bottom;
        std::mem::swap(&mut bottom[i], &mut top[j]);
    }
    part.cut = part.cut_size(netlist);
    part
}

/// Applies a partition to the netlist: sets every instance's `tier`, and
/// moves each boundary port to the tier holding the majority of its net's
/// pins (ports follow their logic).
pub fn apply_partition(netlist: &mut Netlist, part: &Partition) {
    for (idx, tier) in part.tier_of.iter().enumerate() {
        netlist.inst_mut(foldic_netlist::InstId::from(idx)).tier = *tier;
    }
    // ports follow the majority tier of the cells on their nets
    let mut port_votes: Vec<(u32, u32)> = vec![(0, 0); netlist.num_ports()];
    for (_, net) in netlist.nets() {
        let mut counts = (0u32, 0u32);
        let mut ports = Vec::new();
        for pin in net.pins() {
            match pin {
                foldic_netlist::PinRef::Port(p) => ports.push(p),
                other => {
                    if let Some(i) = other.inst() {
                        match part.tier_of[i.index()] {
                            Tier::Bottom => counts.0 += 1,
                            Tier::Top => counts.1 += 1,
                        }
                    }
                }
            }
        }
        for p in ports {
            port_votes[p.index()].0 += counts.0;
            port_votes[p.index()].1 += counts.1;
        }
    }
    for (idx, (b, t)) in port_votes.iter().enumerate() {
        let port = netlist.port_mut(foldic_netlist::PortId::from(idx));
        port.tier = if t > b { Tier::Top } else { Tier::Bottom };
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use foldic_t2::T2Config;

    fn block_netlist(name: &str) -> (Netlist, Technology) {
        let (design, tech) = T2Config::tiny().generate();
        let b = design.block(design.find_block(name).unwrap());
        (b.netlist.clone(), tech)
    }

    #[test]
    fn group_split_of_ccx_has_tiny_cut() {
        let (nl, tech) = block_netlist("ccx");
        let pcx = (0..nl.num_groups())
            .map(|i| GroupId(i as u32))
            .find(|&g| nl.group_name(g) == "pcx")
            .unwrap();
        let natural = partition_by_groups(&nl, &[pcx]);
        let fm = bipartition(&nl, &tech, &PartitionConfig::default());
        // The natural PCX/CPX split cuts only the stray test wiring — a
        // handful of 3D nets (the paper's CCX fold uses just 4 signal
        // TSVs). FM can do no better than the disconnected structure.
        assert!(natural.cut <= 8, "natural cut {} too big", natural.cut);
        assert!(
            natural.cut <= fm.cut,
            "natural {} vs fm {}",
            natural.cut,
            fm.cut
        );
    }

    #[test]
    fn quality_sweep_increases_cut() {
        let (nl, tech) = block_netlist("l2t0");
        let cfg = PartitionConfig::default();
        let cuts: Vec<usize> = [1.0, 0.75, 0.5, 0.25, 0.0]
            .iter()
            .map(|&q| partition_with_quality(&nl, &tech, &cfg, q).cut)
            .collect();
        assert!(cuts[0] <= cuts[2] && cuts[2] <= cuts[4], "{cuts:?}");
        assert!(cuts[4] > cuts[0], "{cuts:?}");
    }

    #[test]
    fn apply_partition_moves_ports_with_logic() {
        let (mut nl, tech) = block_netlist("mcu0");
        let part = bipartition(&nl, &tech, &PartitionConfig::default());
        apply_partition(&mut nl, &part);
        // inst tiers match the partition
        for (id, inst) in nl.insts() {
            assert_eq!(inst.tier, part.tier_of[id.index()]);
        }
        // every port sits on the majority tier of the cells on its nets
        for (pid, port) in nl.ports() {
            let (mut b, mut t) = (0u32, 0u32);
            for (_, net) in nl.nets() {
                let on_net = net
                    .pins()
                    .any(|p| matches!(p, foldic_netlist::PinRef::Port(q) if q == pid));
                if !on_net {
                    continue;
                }
                for pin in net.pins() {
                    if let Some(i) = pin.inst() {
                        match part.tier_of[i.index()] {
                            Tier::Bottom => b += 1,
                            Tier::Top => t += 1,
                        }
                    }
                }
            }
            let expected = if t > b { Tier::Top } else { Tier::Bottom };
            assert_eq!(port.tier, expected, "port {}", nl.name_of(port.name));
        }
    }
}
