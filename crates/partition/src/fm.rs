//! Fiduccia–Mattheyses area-balanced min-cut bipartitioning.

use foldic_geom::Tier;
use foldic_netlist::{InstId, Netlist};
use foldic_tech::Technology;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;
use std::collections::BinaryHeap;

/// Nets with more pins than this are excluded from the cut objective:
/// broadcast/control fan-outs span both dies no matter what and would only
/// drown the gain signal (clock nets are excluded unconditionally).
const MAX_NET_DEGREE: usize = 64;

/// Configuration of the FM partitioner.
#[derive(Debug, Clone)]
pub struct PartitionConfig {
    /// Allowed area imbalance as a fraction of total area (each side must
    /// hold `0.5 ± balance_tol` of the area).
    pub balance_tol: f64,
    /// Maximum number of improvement passes per start.
    pub max_passes: usize,
    /// Number of random restarts; the best result wins.
    pub starts: usize,
    /// RNG seed for the random initial solutions.
    pub seed: u64,
}

impl Default for PartitionConfig {
    fn default() -> Self {
        Self {
            balance_tol: 0.10,
            max_passes: 8,
            starts: 4,
            seed: 0xF01D,
        }
    }
}

/// A two-die assignment of every instance in a netlist.
#[derive(Debug, Clone)]
pub struct Partition {
    /// Die of each instance, indexed by `InstId`.
    pub tier_of: Vec<Tier>,
    /// Number of cut signal nets (= 3D connections the fold will need).
    pub cut: usize,
}

impl Partition {
    /// Recounts the cut: signal nets with instance pins on both dies.
    /// Clock nets and nets wider than the degree cap are excluded, matching
    /// the paper's *signal* TSV counts.
    pub fn cut_size(&self, netlist: &Netlist) -> usize {
        let mut cut = 0;
        for (_, net) in netlist.nets() {
            if net.is_clock {
                continue;
            }
            let mut bottom = false;
            let mut top = false;
            for pin in net.pins() {
                if let Some(i) = pin.inst() {
                    match self.tier_of[i.index()] {
                        Tier::Bottom => bottom = true,
                        Tier::Top => top = true,
                    }
                }
            }
            if bottom && top {
                cut += 1;
            }
        }
        cut
    }

    /// Area imbalance `|A_bottom − A_top| / (A_bottom + A_top)`.
    pub fn balance(&self, netlist: &Netlist, tech: &Technology) -> f64 {
        let (mut bottom, mut top) = (0.0, 0.0);
        for (id, inst) in netlist.insts() {
            let a = inst.area_um2(tech);
            match self.tier_of[id.index()] {
                Tier::Bottom => bottom += a,
                Tier::Top => top += a,
            }
        }
        if bottom + top == 0.0 {
            0.0
        } else {
            (bottom - top).abs() / (bottom + top)
        }
    }

    /// Placement area per tier in µm², `(bottom, top)`.
    pub fn area_per_tier(&self, netlist: &Netlist, tech: &Technology) -> (f64, f64) {
        let (mut bottom, mut top) = (0.0, 0.0);
        for (id, inst) in netlist.insts() {
            let a = inst.area_um2(tech);
            match self.tier_of[id.index()] {
                Tier::Bottom => bottom += a,
                Tier::Top => top += a,
            }
        }
        (bottom, top)
    }
}

struct Hypergraph {
    /// nets as lists of vertex (inst) indices, deduplicated
    nets: Vec<Vec<u32>>,
    /// incident net lists per vertex
    incident: Vec<Vec<u32>>,
    /// vertex areas
    area: Vec<f64>,
}

fn build_hypergraph(netlist: &Netlist, tech: &Technology) -> Hypergraph {
    let n = netlist.num_insts();
    let mut nets = Vec::new();
    let mut incident = vec![Vec::new(); n];
    for (_, net) in netlist.nets() {
        if net.is_clock {
            continue;
        }
        let mut verts: Vec<u32> = net.pins().filter_map(|p| p.inst()).map(|i| i.0).collect();
        verts.sort_unstable();
        verts.dedup();
        if verts.len() < 2 || verts.len() > MAX_NET_DEGREE {
            continue;
        }
        let nid = nets.len() as u32;
        for &v in &verts {
            incident[v as usize].push(nid);
        }
        nets.push(verts);
    }
    let area = netlist
        .insts()
        .map(|(_, inst)| inst.area_um2(tech))
        .collect();
    Hypergraph {
        nets,
        incident,
        area,
    }
}

/// Area-balanced min-cut bipartitioning with multi-start FM.
///
/// All instances (including placement-fixed macros) are movable: folding
/// re-places the block from scratch, so "fixed" only constrains placement,
/// not die assignment. Use [`crate::partition_by_groups`] or pre-seeded
/// solutions when some instances must stay on a given die.
pub fn bipartition(netlist: &Netlist, tech: &Technology, cfg: &PartitionConfig) -> Partition {
    bipartition_seeded(netlist, tech, cfg, None)
}

/// Like [`bipartition`], but starting from (and locking) the tiers given by
/// `locked` where it returns `Some`.
pub fn bipartition_seeded(
    netlist: &Netlist,
    tech: &Technology,
    cfg: &PartitionConfig,
    locked: Option<&dyn Fn(InstId) -> Option<Tier>>,
) -> Partition {
    let hg = build_hypergraph(netlist, tech);
    let n = netlist.num_insts();
    if n == 0 {
        return Partition {
            tier_of: Vec::new(),
            cut: 0,
        };
    }
    let total_area: f64 = hg.area.iter().sum();
    let lo = total_area * (0.5 - cfg.balance_tol);
    let hi = total_area * (0.5 + cfg.balance_tol);

    let locked_tier: Vec<Option<Tier>> = (0..n)
        .map(|i| locked.and_then(|f| f(InstId::from(i))))
        .collect();

    let mut best: Option<(usize, Vec<bool>)> = None;
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    for start in 0..cfg.starts.max(1) {
        let mut side = random_balanced(&hg, &locked_tier, total_area, &mut rng, start);
        let cut = fm_refine(&hg, &mut side, &locked_tier, lo, hi, cfg.max_passes);
        if best.as_ref().is_none_or(|(c, _)| cut < *c) {
            best = Some((cut, side));
        }
    }
    let (cut, side) = best.expect("at least one start");
    Partition {
        tier_of: side
            .iter()
            .map(|&s| if s { Tier::Top } else { Tier::Bottom })
            .collect(),
        cut,
    }
}

/// Random area-balanced initial assignment honouring locks.
fn random_balanced(
    hg: &Hypergraph,
    locked: &[Option<Tier>],
    total_area: f64,
    rng: &mut StdRng,
    _start: usize,
) -> Vec<bool> {
    let n = hg.area.len();
    let mut side = vec![false; n];
    let mut top_area = 0.0;
    for (i, l) in locked.iter().enumerate() {
        if let Some(t) = l {
            side[i] = *t == Tier::Top;
            if side[i] {
                top_area += hg.area[i];
            }
        }
    }
    let mut free: Vec<usize> = (0..n).filter(|&i| locked[i].is_none()).collect();
    free.shuffle(rng);
    for i in free {
        if top_area < total_area * 0.5 {
            side[i] = true;
            top_area += hg.area[i];
        } else {
            side[i] = false;
        }
    }
    side
}

/// One FM run: repeated passes until a pass yields no improvement.
/// Returns the final cut size.
fn fm_refine(
    hg: &Hypergraph,
    side: &mut [bool],
    locked: &[Option<Tier>],
    lo: f64,
    hi: f64,
    max_passes: usize,
) -> usize {
    let n = side.len();
    let mut cut = count_cut(hg, side);
    for _ in 0..max_passes {
        // per-net side counts
        let mut counts: Vec<(u32, u32)> = hg
            .nets
            .iter()
            .map(|verts| {
                let top = verts.iter().filter(|&&v| side[v as usize]).count() as u32;
                (verts.len() as u32 - top, top)
            })
            .collect();
        let mut top_area: f64 = (0..n).filter(|&i| side[i]).map(|i| hg.area[i]).sum();

        let gain_of = |v: usize, side: &[bool], counts: &[(u32, u32)]| -> i64 {
            let mut g = 0i64;
            for &nid in &hg.incident[v] {
                let (b, t) = counts[nid as usize];
                let (from, to) = if side[v] { (t, b) } else { (b, t) };
                if from == 1 {
                    g += 1; // moving v uncuts the net
                }
                if to == 0 {
                    g -= 1; // moving v cuts the net
                }
            }
            g
        };

        let mut stamp = vec![0u32; n];
        let mut heap: BinaryHeap<(i64, u32, u32)> = BinaryHeap::new();
        for (v, lock) in locked.iter().enumerate().take(n) {
            if lock.is_none() {
                heap.push((gain_of(v, side, &counts), 0, v as u32));
            }
        }
        let mut moved = vec![false; n];
        let mut order: Vec<(usize, i64)> = Vec::new();
        while let Some((g, s, v)) = heap.pop() {
            let v = v as usize;
            if moved[v] || s != stamp[v] {
                continue;
            }
            // balance feasibility
            let new_top = if side[v] {
                top_area - hg.area[v]
            } else {
                top_area + hg.area[v]
            };
            if new_top < lo || new_top > hi {
                continue; // skip this vertex for the rest of the pass
            }
            // apply move
            moved[v] = true;
            order.push((v, g));
            for &nid in &hg.incident[v] {
                let c = &mut counts[nid as usize];
                if side[v] {
                    c.1 -= 1;
                    c.0 += 1;
                } else {
                    c.0 -= 1;
                    c.1 += 1;
                }
            }
            side[v] = !side[v];
            top_area = new_top;
            // refresh gains of unmoved neighbours
            for &nid in &hg.incident[v] {
                for &u in &hg.nets[nid as usize] {
                    let u = u as usize;
                    if !moved[u] && locked[u].is_none() {
                        stamp[u] += 1;
                        heap.push((gain_of(u, side, &counts), stamp[u], u as u32));
                    }
                }
            }
        }
        // find the best prefix of the move sequence
        let mut best_gain = 0i64;
        let mut running = 0i64;
        let mut best_k = 0usize;
        for (k, &(_, g)) in order.iter().enumerate() {
            running += g;
            if running > best_gain {
                best_gain = running;
                best_k = k + 1;
            }
        }
        // undo moves beyond the best prefix
        for &(v, _) in &order[best_k..] {
            side[v] = !side[v];
        }
        if best_gain <= 0 {
            break;
        }
        cut = (cut as i64 - best_gain) as usize;
    }
    debug_assert_eq!(cut, count_cut(hg, side));
    cut
}

fn count_cut(hg: &Hypergraph, side: &[bool]) -> usize {
    hg.nets
        .iter()
        .filter(|verts| {
            let first = side[verts[0] as usize];
            verts.iter().any(|&v| side[v as usize] != first)
        })
        .count()
}

#[cfg(test)]
mod tests {
    use super::*;
    use foldic_netlist::{InstMaster, PinRef};
    use foldic_tech::{CellKind, Drive, VthClass};

    /// Two cliques of `k` cells joined by a single bridge net: FM must find
    /// the bridge.
    fn two_cliques(k: usize) -> (Netlist, Technology) {
        let tech = Technology::cmos28();
        let lib = &tech.cells;
        let master = InstMaster::Cell(lib.id_of(CellKind::Nand2, Drive::X1, VthClass::Rvt));
        let mut nl = Netlist::new("cliques");
        let ids: Vec<InstId> = (0..2 * k)
            .map(|i| nl.add_inst(format!("u{i}"), master))
            .collect();
        let wire = |a: InstId, b: InstId, name: String, nl: &mut Netlist| {
            let n = nl.add_net(name);
            nl.connect_driver(n, PinRef::output(a));
            nl.connect_sink(n, PinRef::input(b, 0));
        };
        for c in 0..2 {
            let base = c * k;
            for i in 0..k {
                for j in (i + 1)..k {
                    wire(
                        ids[base + i],
                        ids[base + j],
                        format!("c{c}_{i}_{j}"),
                        &mut nl,
                    );
                }
            }
        }
        wire(ids[0], ids[k], "bridge".into(), &mut nl);
        (nl, tech)
    }

    #[test]
    fn finds_the_bridge_cut() {
        let (nl, tech) = two_cliques(12);
        let p = bipartition(&nl, &tech, &PartitionConfig::default());
        assert_eq!(p.cut, 1, "must cut only the bridge net");
        assert!(p.balance(&nl, &tech) < 0.05);
    }

    #[test]
    fn cut_size_matches_recount() {
        let (nl, tech) = two_cliques(8);
        let p = bipartition(&nl, &tech, &PartitionConfig::default());
        assert_eq!(p.cut, p.cut_size(&nl));
    }

    #[test]
    fn seeded_locks_are_respected() {
        let (nl, tech) = two_cliques(8);
        // lock vertex 0 to Top and vertex 8 (other clique) to Bottom
        let lock = |id: InstId| -> Option<Tier> {
            match id.0 {
                0 => Some(Tier::Top),
                8 => Some(Tier::Bottom),
                _ => None,
            }
        };
        let p = bipartition_seeded(&nl, &tech, &PartitionConfig::default(), Some(&lock));
        assert_eq!(p.tier_of[0], Tier::Top);
        assert_eq!(p.tier_of[8], Tier::Bottom);
        assert_eq!(p.cut, 1);
    }

    #[test]
    fn empty_netlist_is_fine() {
        let tech = Technology::cmos28();
        let nl = Netlist::new("empty");
        let p = bipartition(&nl, &tech, &PartitionConfig::default());
        assert_eq!(p.cut, 0);
        assert!(p.tier_of.is_empty());
    }

    #[test]
    fn balance_tolerance_is_enforced() {
        let (nl, tech) = two_cliques(20);
        let cfg = PartitionConfig {
            balance_tol: 0.02,
            ..Default::default()
        };
        let p = bipartition(&nl, &tech, &cfg);
        assert!(p.balance(&nl, &tech) <= 0.05);
    }
}
