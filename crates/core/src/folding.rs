//! Block folding (§4) and its interaction with bonding styles (§5).
//!
//! Folding a block means partitioning it into two sub-blocks stacked on
//! the two dies and connecting them with intra-block TSVs (face-to-back)
//! or F2F vias (face-to-face). The flow here follows the paper:
//!
//! 1. choose a die partition — generic min-cut, the natural PCX/CPX group
//!    split for the crossbar, macro-row splitting for memory-dominated
//!    blocks, or a deliberately degraded partition for the Fig. 7 sweep;
//! 2. shrink the outline to hold the bigger die half (plus TSV keep-out
//!    area under face-to-back bonding);
//! 3. re-pack the macros of each die and run the mixed-size 3D placer
//!    with an ideal 3D interconnect;
//! 4. place the 3D vias (§5.1) — TSVs claim silicon sites outside macros,
//!    F2F vias go wherever the 3D-net routing wants them;
//! 5. for face-to-back, grow the outline by the TSV area and re-place
//!    with the keep-outs as obstacles (the Fig. 6 degradation);
//! 6. re-run the timing/power optimization and sign off.

use crate::flow::{block_max_layer, collect_metrics};
use crate::metrics::DesignMetrics;
use foldic_fault::deadline::stage_scope;
use foldic_fault::{fault_point, FlowError, FlowStage};
use foldic_geom::{Point, Rect, Tier};
use foldic_netlist::{Block, GroupId, InstId, Netlist, PinRef};
use foldic_opt::{optimize_block_with_vias, OptStats};
use foldic_partition::{
    apply_partition, bipartition, bipartition_seeded, partition_by_groups, partition_with_quality,
    Partition, PartitionConfig,
};
use foldic_place::{place_folded, Obstacle, PlacerConfig};
use foldic_power::{analyze_block, PowerConfig};
use foldic_route::{place_vias, BlockWiring, ViaPlacement};
use foldic_tech::{BondingStyle, Technology};
use foldic_timing::{analyze, StaConfig, TimingBudgets};

/// How to split the block across the dies.
#[derive(Debug, Clone)]
pub enum FoldStrategy {
    /// Area-balanced min-cut (FM).
    MinCut,
    /// Put the named instance groups on the top die (§4.3's PCX/CPX
    /// natural split).
    NaturalGroups(Vec<String>),
    /// Min-cut degraded toward random: `1.0` = pure min-cut, lower values
    /// cut more nets (the partition cases #1–#5 of Fig. 7).
    Quality(f64),
    /// Split the macro array between the dies (alternating rows), lock
    /// the macros, then min-cut the logic (§4.4's `scdata` fold).
    MacroRows,
}

/// How the folded outline is shaped.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum FoldAspect {
    /// Keep the block's original aspect ratio.
    #[default]
    Keep,
    /// Reshape to a square (the paper folds the 490×2060 µm crossbar into
    /// two 680×680 µm dies).
    Square,
    /// Keep the original width and halve the height (the natural shape
    /// for a macro-row fold: the paper's scdata keeps its 910 µm width).
    KeepWidth,
}

/// Folding configuration.
#[derive(Debug, Clone)]
pub struct FoldConfig {
    /// Partition strategy.
    pub strategy: FoldStrategy,
    /// Folded outline shaping.
    pub aspect: FoldAspect,
    /// Bonding style of the stack.
    pub bonding: BondingStyle,
    /// Placer settings.
    pub placer: PlacerConfig,
    /// Optimizer settings.
    pub opt: foldic_opt::OptConfig,
    /// Partitioner settings.
    pub partition: PartitionConfig,
    /// Placement utilization target of the folded dies.
    pub utilization: f64,
    /// Enable dual-Vth.
    pub dual_vth: bool,
    /// Routing-layer policy.
    pub policy: foldic_tech::RoutingPolicy,
    /// Which retry attempt this configuration belongs to (`0` = the
    /// first run). Addressed by the fault-injection harness and bumped
    /// by [`Self::relaxed_for_retry`].
    pub retry_attempt: u32,
}

impl Default for FoldConfig {
    fn default() -> Self {
        Self {
            strategy: FoldStrategy::MinCut,
            aspect: FoldAspect::Keep,
            bonding: BondingStyle::FaceToBack,
            placer: PlacerConfig::quality(),
            opt: foldic_opt::OptConfig::default(),
            partition: PartitionConfig::default(),
            utilization: 0.70,
            dual_vth: false,
            policy: foldic_tech::RoutingPolicy::dac14(),
            retry_attempt: 0,
        }
    }
}

impl FoldConfig {
    /// Fast settings for tests.
    pub fn fast() -> Self {
        Self {
            placer: PlacerConfig::fast(),
            ..Self::default()
        }
    }

    /// The configuration a retry runs under: attempt `0` is this config
    /// unchanged; later attempts deterministically perturb the
    /// partitioner seed (so min-cut explores different initial
    /// solutions) and relax the expensive knobs.
    pub fn relaxed_for_retry(&self, attempt: u32) -> Self {
        let mut cfg = self.clone();
        cfg.retry_attempt = attempt;
        if attempt > 0 {
            cfg.partition.seed = cfg
                .partition
                .seed
                .wrapping_add(u64::from(attempt).wrapping_mul(0x9E37_79B9_7F4A_7C15));
            let a = attempt as usize;
            cfg.placer.iterations = cfg.placer.iterations.saturating_sub(a).max(2);
            cfg.opt.rounds = cfg.opt.rounds.saturating_sub(a).max(1);
        }
        cfg
    }
}

/// Outcome of folding one block.
#[derive(Debug, Clone)]
pub struct FoldedBlock {
    /// Sign-off metrics of the folded block (footprint = one die).
    pub metrics: DesignMetrics,
    /// Final 3D-via placement.
    pub vias: ViaPlacement,
    /// Optimizer audit.
    pub opt: OptStats,
    /// Signal cut size of the partition (= 3D connections before
    /// buffering).
    pub cut: usize,
}

/// Folds a block in place with the default per-port budgets.
///
/// # Errors
///
/// See [`fold_block_with_budgets`].
pub fn fold_block(
    block: &mut Block,
    tech: &Technology,
    cfg: &FoldConfig,
) -> Result<FoldedBlock, FlowError> {
    let budgets = TimingBudgets::relaxed(&block.netlist, tech);
    fold_block_with_budgets(block, tech, &budgets, cfg)
}

/// Folds a block in place against chip-supplied port budgets.
///
/// # Errors
///
/// Returns [`FlowError`] when the block fails validation at entry (not
/// retryable) or when a fold stage fails — organically or through an
/// installed [`foldic_fault::FaultPlan`]. On error the block may be
/// partially mutated; the caller restores it before retrying.
pub fn fold_block_with_budgets(
    block: &mut Block,
    tech: &Technology,
    budgets: &TimingBudgets,
    cfg: &FoldConfig,
) -> Result<FoldedBlock, FlowError> {
    let name = block.name.clone();
    {
        let _scope = stage_scope(FlowStage::Validate, &name, cfg.retry_attempt)?;
        fault_point(FlowStage::Validate, &name, cfg.retry_attempt)?;
        block.validate(tech).map_err(|e| {
            FlowError::invalid(FlowStage::Validate, e.to_string()).with_block(&name)
        })?;
    }
    let part = {
        let _scope = stage_scope(FlowStage::Partition, &name, cfg.retry_attempt)?;
        fault_point(FlowStage::Partition, &name, cfg.retry_attempt)?;
        make_partition(&block.netlist, tech, cfg)
    };
    fold_with_partition(block, tech, budgets, cfg, part)
}

fn make_partition(netlist: &Netlist, tech: &Technology, cfg: &FoldConfig) -> Partition {
    match &cfg.strategy {
        FoldStrategy::MinCut => bipartition(netlist, tech, &cfg.partition),
        FoldStrategy::Quality(q) => partition_with_quality(netlist, tech, &cfg.partition, *q),
        FoldStrategy::NaturalGroups(names) => {
            let ids: Vec<GroupId> = (0..netlist.num_groups())
                .map(|i| GroupId(i as u32))
                .filter(|&g| names.iter().any(|n| n == netlist.group_name(g)))
                .collect();
            partition_by_groups(netlist, &ids)
        }
        FoldStrategy::MacroRows => {
            // macros sorted by y, alternating runs of rows per die
            let mut macros: Vec<(InstId, Point)> = netlist
                .insts()
                .filter(|(_, i)| i.master.is_macro())
                .map(|(id, i)| (id, i.pos))
                .collect();
            macros.sort_by(|a, b| a.1.y.total_cmp(&b.1.y).then(a.1.x.total_cmp(&b.1.x)));
            let half = macros.len() / 2;
            let locks: std::collections::HashMap<InstId, Tier> = macros
                .iter()
                .enumerate()
                .map(|(k, &(id, _))| (id, if k < half { Tier::Bottom } else { Tier::Top }))
                .collect();
            let lock_fn = |id: InstId| locks.get(&id).copied();
            bipartition_seeded(netlist, tech, &cfg.partition, Some(&lock_fn))
        }
    }
}

/// The shared fold pipeline, given a partition.
///
/// # Errors
///
/// Returns [`FlowError`] when a fold stage fails — organically or
/// through an installed [`foldic_fault::FaultPlan`].
pub fn fold_with_partition(
    block: &mut Block,
    tech: &Technology,
    budgets: &TimingBudgets,
    cfg: &FoldConfig,
    part: Partition,
) -> Result<FoldedBlock, FlowError> {
    let name = block.name.clone();
    let attempt = cfg.retry_attempt;
    let cut = part.cut;
    apply_partition(&mut block.netlist, &part);
    block.folded = true;

    // --- folded outline --------------------------------------------------
    let aspect = match cfg.aspect {
        FoldAspect::Keep => block.outline.width() / block.outline.height(),
        FoldAspect::Square => 1.0,
        FoldAspect::KeepWidth => f64::NAN, // handled below
    };
    let (a_bot, a_top) = part.area_per_tier(&block.netlist, tech);
    let per_die = a_bot.max(a_top) / cfg.utilization;
    let mut outline = if cfg.aspect == FoldAspect::KeepWidth {
        let w = block.outline.width();
        Rect::new(0.0, 0.0, w, per_die / w)
    } else {
        sized_outline(per_die, aspect)
    };

    // --- rescale the inherited geometry into the folded outline ------------
    // Each tier's content is mapped from its own pre-fold bounding region
    // onto the full folded outline: a min-cut fold (interleaved tiers)
    // rescales uniformly, while a macro-row fold (each tier owned one half
    // of the block) stretches each half over the whole new die. Ports stay
    // on the perimeter because the boundary maps onto the boundary.
    for tier in Tier::ALL {
        rescale_tier_geometry(&mut block.netlist, tier, block.outline, outline);
    }

    // --- macro re-packing and placement ----------------------------------
    {
        let _scope = stage_scope(FlowStage::Place, &name, attempt)?;
        fault_point(FlowStage::Place, &name, attempt)?;
        repack_macros(&mut block.netlist, tech, outline);
        place_folded(&mut block.netlist, tech, outline, &cfg.placer, &[])
            .map_err(|e| e.with_block(&name))?;
        // the fold scattered each clock leaf's flops across the dies:
        // re-run the leaf level of CTS per tier before committing 3D vias
        recluster_clock_leaves(&mut block.netlist);
    }
    let vias = {
        let _scope = stage_scope(FlowStage::Route, &name, attempt)?;
        fault_point(FlowStage::Route, &name, attempt)?;
        let mut vias = place_vias(&block.netlist, tech, outline, cfg.bonding)
            .map_err(|e| e.with_block(&name))?;

        // --- face-to-back: pay the TSV area and re-place ------------------
        if cfg.bonding == BondingStyle::FaceToBack && !vias.is_empty() {
            let tsv_area = vias.silicon_area_um2(tech);
            let grown = (a_bot.max(a_top) + tsv_area) / cfg.utilization;
            let prev = outline;
            outline = if cfg.aspect == FoldAspect::KeepWidth {
                let w = prev.width();
                Rect::new(0.0, 0.0, w, grown / w)
            } else {
                sized_outline(grown, aspect)
            };
            for tier in Tier::ALL {
                rescale_tier_geometry(&mut block.netlist, tier, prev, outline);
            }
            repack_macros(&mut block.netlist, tech, outline);
            // first re-place against the old via keep-outs, then refresh
            let obstacles: Vec<Obstacle> = vias
                .keepouts(tech)
                .into_iter()
                .map(|rect| Obstacle { rect, tier: None })
                .collect();
            place_folded(&mut block.netlist, tech, outline, &cfg.placer, &obstacles)
                .map_err(|e| e.with_block(&name))?;
            vias = place_vias(&block.netlist, tech, outline, cfg.bonding)
                .map_err(|e| e.with_block(&name))?;
        }
        vias
    };
    block.outline = outline;

    // --- optimization ------------------------------------------------------
    let max_layer = block_max_layer(block, cfg.bonding, &cfg.policy);
    let mut opt_cfg = cfg.opt.clone();
    opt_cfg.max_layer = max_layer;
    opt_cfg.via_kind = Some(vias.kind());
    opt_cfg.dual_vth = cfg.dual_vth;
    let opt = {
        let _scope = stage_scope(FlowStage::Opt, &name, attempt)?;
        fault_point(FlowStage::Opt, &name, attempt)?;
        optimize_block_with_vias(&mut block.netlist, tech, budgets, &opt_cfg, Some(&vias))
            .map_err(|e| e.with_block(&name))?
    };

    // --- sign-off ------------------------------------------------------------
    // buffering re-shaped the nets: refresh the via assignment
    let (vias, wiring) = {
        let _scope = stage_scope(FlowStage::Route, &name, attempt)?;
        let vias = place_vias(&block.netlist, tech, outline, cfg.bonding)
            .map_err(|e| e.with_block(&name))?;
        let wiring = BlockWiring::analyze(&block.netlist, tech, opt_cfg.detour, Some(&vias))
            .map_err(|e| e.with_block(&name))?;
        (vias, wiring)
    };
    let sta = {
        let _scope = stage_scope(FlowStage::Sta, &name, attempt)?;
        fault_point(FlowStage::Sta, &name, attempt)?;
        analyze(
            &block.netlist,
            tech,
            &wiring,
            budgets,
            &StaConfig {
                max_layer,
                via_kind: Some(vias.kind()),
            },
        )
        .map_err(|e| e.with_block(&name))?
    };
    let mut pw_cfg = PowerConfig::for_block(block);
    pw_cfg.max_layer = max_layer;
    pw_cfg.via_kind = Some(vias.kind());
    let power = {
        let _scope = stage_scope(FlowStage::Power, &name, attempt)?;
        fault_point(FlowStage::Power, &name, attempt)?;
        analyze_block(&block.netlist, tech, &wiring, &pw_cfg).map_err(|e| e.with_block(&name))?
    };
    let metrics = collect_metrics(
        &block.netlist,
        block,
        tech,
        &wiring,
        Some(&vias),
        power,
        sta.wns_ps,
    );
    Ok(FoldedBlock {
        metrics,
        vias,
        opt,
        cut,
    })
}

/// Re-runs the leaf level of clock-tree synthesis after a fold: the
/// partition scattered each leaf buffer's flops across both dies, which
/// would turn the α = 1 clock nets into sprawling 3D webs. Flop clock
/// pins are re-clustered by (tier, position) and reassigned to the
/// existing leaf buffers, whose tier and location move to their cluster.
pub fn recluster_clock_leaves(netlist: &mut Netlist) {
    // leaf clock nets: is_clock, driven by an instance, sinking into flops
    let mut leaf_nets: Vec<foldic_netlist::NetId> = Vec::new();
    let mut all_sinks: Vec<PinRef> = Vec::new();
    for (nid, net) in netlist.nets() {
        if !net.is_clock {
            continue;
        }
        if let Some(PinRef::InstOut(driver)) = net.driver {
            // a leaf net's sinks are not clock buffers themselves: detect
            // by checking whether any sink drives another clock net
            let drives_clock: std::collections::HashSet<InstId> = netlist
                .nets()
                .filter(|(_, n)| n.is_clock)
                .filter_map(|(_, n)| match n.driver {
                    Some(PinRef::InstOut(i)) => Some(i),
                    _ => None,
                })
                .collect();
            let is_leaf = net
                .sinks()
                .all(|s| s.inst().is_none_or(|i| !drives_clock.contains(&i)));
            if is_leaf && net.fanout() > 0 {
                leaf_nets.push(nid);
                all_sinks.extend(net.sinks());
            }
            let _ = driver;
        }
    }
    if leaf_nets.is_empty() {
        return;
    }
    // sort sinks by (tier, y, x) and chunk them evenly over the leaves
    all_sinks.sort_by(|&a, &b| {
        let (pa, ta) = (netlist.pin_pos(a), netlist.pin_tier(a));
        let (pb, tb) = (netlist.pin_pos(b), netlist.pin_tier(b));
        ta.cmp(&tb)
            .then(pa.y.total_cmp(&pb.y))
            .then(pa.x.total_cmp(&pb.x))
    });
    let per_leaf = all_sinks.len().div_ceil(leaf_nets.len());
    for (k, nid) in leaf_nets.iter().enumerate() {
        let chunk: Vec<PinRef> = all_sinks
            .iter()
            .copied()
            .skip(k * per_leaf)
            .take(per_leaf)
            .collect();
        // move the leaf buffer to the chunk's centroid and tier
        if let Some(PinRef::InstOut(driver)) = netlist.net(*nid).driver {
            if !chunk.is_empty() {
                let centroid = chunk
                    .iter()
                    .fold(Point::ORIGIN, |acc, &s| acc + netlist.pin_pos(s))
                    * (1.0 / chunk.len() as f64);
                let tier = netlist.pin_tier(chunk[0]);
                let mut inst = netlist.inst_mut(driver);
                inst.pos = centroid;
                inst.tier = tier;
            }
        }
        netlist.set_sinks(*nid, &chunk);
    }
}

/// Linearly maps the positions of one tier's instances and ports from the
/// tier's occupied sub-region of `fallback` onto `to`.
fn rescale_tier_geometry(netlist: &mut Netlist, tier: Tier, fallback: Rect, to: Rect) {
    // the source frame is where this tier's content actually sits
    let mut from = Rect::empty();
    for (_, inst) in netlist.insts() {
        if inst.tier == tier {
            from.expand_to(inst.pos);
        }
    }
    if from.is_empty() || from.width() < 1.0 || from.height() < 1.0 {
        from = fallback;
    }
    let sx = to.width() / from.width();
    let sy = to.height() / from.height();
    let map = |p: Point| {
        Point::new(
            to.llx + (p.x - from.llx) * sx,
            to.lly + (p.y - from.lly) * sy,
        )
        .clamped(to)
    };
    let ids: Vec<InstId> = netlist.inst_ids().collect();
    for id in ids {
        let mut inst = netlist.inst_mut(id);
        if inst.tier == tier {
            inst.pos = map(inst.pos);
        }
    }
    for idx in 0..netlist.num_ports() {
        let port = netlist.port_mut(foldic_netlist::PortId::from(idx));
        if port.tier == tier {
            port.pos = map(port.pos);
        }
    }
}

fn sized_outline(area: f64, aspect: f64) -> Rect {
    let w = (area * aspect).sqrt();
    Rect::new(0.0, 0.0, w, area / w)
}

/// Re-packs all hard macros tier by tier inside the (new) outline: a grid
/// for uniform arrays of ≥ 6 macros, edge rings otherwise. Macros stay
/// `fixed`.
pub fn repack_macros(netlist: &mut Netlist, tech: &Technology, outline: Rect) {
    for tier in Tier::ALL {
        let mut macros: Vec<(InstId, f64, f64)> = netlist
            .insts()
            .filter(|(_, i)| i.master.is_macro() && i.tier == tier)
            .map(|(id, i)| {
                let (w, h) = i.dims_um(tech);
                (id, w, h)
            })
            .collect();
        // keep the pre-fold spatial order so each macro stays near the
        // logic that talks to it (grid slots are assigned row-major)
        macros.sort_by(|a, b| {
            let pa = netlist.inst(a.0).pos;
            let pb = netlist.inst(b.0).pos;
            pa.y.total_cmp(&pb.y).then(pa.x.total_cmp(&pb.x))
        });
        if macros.is_empty() {
            continue;
        }
        let uniform = macros
            .iter()
            .all(|&(_, w, h)| (w - macros[0].1).abs() < 1e-9 && (h - macros[0].2).abs() < 1e-9);
        let positions = if uniform && macros.len() >= 6 {
            grid_positions(&macros, outline)
        } else {
            ring_positions(&macros, outline)
        };
        for (&(id, _, _), pos) in macros.iter().zip(positions) {
            netlist.inst_mut(id).pos = pos;
        }
    }
}

fn grid_positions(macros: &[(InstId, f64, f64)], outline: Rect) -> Vec<Point> {
    let (mw, mh) = (macros[0].1, macros[0].2);
    let n = macros.len();
    let bw = outline.width();
    let bh = outline.height();
    let mut cols = ((bw / (mw * 1.15)).floor() as usize).clamp(1, n);
    let mut rows = n.div_ceil(cols);
    while rows as f64 * mh * 1.1 > bh && cols < n {
        cols += 1;
        rows = n.div_ceil(cols);
    }
    let gap_x = ((bw - cols as f64 * mw) / (cols + 1) as f64).max(0.0);
    let gap_y = ((bh - rows as f64 * mh) / (rows + 1) as f64).max(0.0);
    (0..n)
        .map(|i| {
            let c = i % cols;
            let r = i / cols;
            Point::new(
                outline.llx + gap_x + c as f64 * (mw + gap_x) + mw / 2.0,
                outline.lly + gap_y + r as f64 * (mh + gap_y) + mh / 2.0,
            )
        })
        .collect()
}

fn ring_positions(macros: &[(InstId, f64, f64)], outline: Rect) -> Vec<Point> {
    let bh = outline.height();
    let bw = outline.width();
    let mut positions = Vec::with_capacity(macros.len());
    let mut x_bot = outline.llx + 4.0;
    let mut x_top = outline.llx + 4.0;
    let mut band_bot = 0.0;
    let mut band_top = 0.0;
    for (i, &(_, mw, mh)) in macros.iter().enumerate() {
        if i % 2 == 0 {
            if x_bot + mw + 4.0 > outline.llx + bw {
                x_bot = outline.llx + 4.0;
                band_bot += mh + 4.0;
            }
            positions.push(Point::new(
                x_bot + mw / 2.0,
                outline.lly + band_bot + mh / 2.0 + 2.0,
            ));
            x_bot += mw + 4.0;
        } else {
            if x_top + mw + 4.0 > outline.llx + bw {
                x_top = outline.llx + 4.0;
                band_top += mh + 4.0;
            }
            positions.push(Point::new(
                x_top + mw / 2.0,
                outline.lly + bh - band_top - mh / 2.0 - 2.0,
            ));
            x_top += mw + 4.0;
        }
    }
    positions
}

// ---------------------------------------------------------------------------
// Second-level folding of the SPARC core (§4.5)
// ---------------------------------------------------------------------------

/// The FUB arrangement of Fig. 3 for the *unfolded* FUBs: which die each
/// one lives on.
const UNFOLDED_FUB_TIERS: [(&str, Tier); 8] = [
    ("pku", Tier::Top),
    ("dec", Tier::Top),
    ("ifu_cmu", Tier::Top),
    ("ifu_ibu", Tier::Top),
    ("mmu", Tier::Bottom),
    ("gkt", Tier::Bottom),
    ("pmu", Tier::Bottom),
    ("spu", Tier::Bottom),
];

/// Second-level folding: folds the six large FUBs of an SPC *individually*
/// (each FUB's halves stack on top of each other) and assigns the eight
/// small FUBs wholesale per Fig. 3, then runs the shared fold pipeline.
///
/// # Errors
///
/// See [`fold_block_with_budgets`].
pub fn fold_spc_second_level(
    block: &mut Block,
    tech: &Technology,
    cfg: &FoldConfig,
) -> Result<FoldedBlock, FlowError> {
    let name = block.name.clone();
    {
        let _scope = stage_scope(FlowStage::Validate, &name, cfg.retry_attempt)?;
        fault_point(FlowStage::Validate, &name, cfg.retry_attempt)?;
        block.validate(tech).map_err(|e| {
            FlowError::invalid(FlowStage::Validate, e.to_string()).with_block(&name)
        })?;
    }
    let part_scope = stage_scope(FlowStage::Partition, &name, cfg.retry_attempt)?;
    fault_point(FlowStage::Partition, &name, cfg.retry_attempt)?;
    let budgets = TimingBudgets::relaxed(&block.netlist, tech);
    let nl = &block.netlist;
    let mut tier_of = vec![Tier::Bottom; nl.num_insts()];

    // group membership lookup
    let group_of_name = |name: &str| -> Option<GroupId> {
        (0..nl.num_groups())
            .map(|i| GroupId(i as u32))
            .find(|&g| nl.group_name(g) == name)
    };

    // unfolded FUBs: wholesale assignment
    for (name, tier) in UNFOLDED_FUB_TIERS {
        if let Some(g) = group_of_name(name) {
            for (id, inst) in nl.insts() {
                if inst.group == Some(g) {
                    tier_of[id.index()] = tier;
                }
            }
        }
    }

    // folded FUBs: per-FUB min-cut on the induced sub-netlist
    for &(name, _, folded) in foldic_t2::SPC_FUBS.iter() {
        if !folded {
            continue;
        }
        let Some(g) = group_of_name(name) else {
            continue;
        };
        let members: Vec<InstId> = nl
            .insts()
            .filter(|(_, i)| i.group == Some(g))
            .map(|(id, _)| id)
            .collect();
        let (sub, back) = induced_subnetlist(nl, &members);
        let part = bipartition(&sub, tech, &cfg.partition);
        for (sub_idx, &orig) in back.iter().enumerate() {
            tier_of[orig.index()] = part.tier_of[sub_idx];
        }
    }

    let mut part = Partition { tier_of, cut: 0 };
    part.cut = part.cut_size(nl);
    drop(part_scope);
    fold_with_partition(block, tech, &budgets, cfg, part)
}

/// Extracts the sub-netlist induced by `members`: their instances plus the
/// nets whose pins all lie inside the set (boundary nets are dropped — the
/// per-FUB fold only balances intra-FUB wiring). Returns the sub-netlist
/// and the original id of each sub-instance.
fn induced_subnetlist(nl: &Netlist, members: &[InstId]) -> (Netlist, Vec<InstId>) {
    let member_set: std::collections::HashSet<InstId> = members.iter().copied().collect();
    let mut sub = Netlist::new("fub");
    let mut back = Vec::with_capacity(members.len());
    let mut map: std::collections::HashMap<InstId, InstId> = Default::default();
    for &id in members {
        let inst = nl.inst(id);
        // resolve through the parent interner: symbols are per-netlist
        let new = sub.add_inst(nl.name_of(inst.name).to_string(), inst.master);
        sub.inst_mut(new).pos = inst.pos;
        map.insert(id, new);
        back.push(id);
    }
    for (_, net) in nl.nets() {
        if net.is_clock {
            continue;
        }
        let pins: Vec<PinRef> = net.pins().collect();
        let all_inside = pins
            .iter()
            .all(|p| p.inst().is_some_and(|i| member_set.contains(&i)));
        if !all_inside || pins.len() < 2 {
            continue;
        }
        let nid = sub.add_net(nl.name_of(net.name).to_string());
        let remap = |p: PinRef| match p {
            PinRef::InstOut(i) => PinRef::InstOut(map[&i]),
            PinRef::InstIn(i, k) => PinRef::InstIn(map[&i], k),
            PinRef::Port(_) => unreachable!("ports filtered above"),
        };
        if let Some(d) = net.driver {
            sub.connect_driver(nid, remap(d));
        }
        for s in net.sinks() {
            sub.connect_sink(nid, remap(s));
        }
    }
    (sub, back)
}

// ---------------------------------------------------------------------------
// Folding-candidate selection (§4.1, Table 3)
// ---------------------------------------------------------------------------

/// One row of the Table 3 census.
#[derive(Debug, Clone)]
pub struct CandidateRow {
    /// Block kind label (multi-copy blocks are averaged).
    pub kind: foldic_netlist::BlockKind,
    /// Share of the total chip power per copy (e.g. `0.058` for SPC).
    pub power_share: f64,
    /// Net power / total power of the block.
    pub net_power_frac: f64,
    /// Long wires per copy.
    pub long_wires: usize,
    /// Number of copies.
    pub copies: usize,
    /// Clock-domain remark (matches the paper's table).
    pub remark: &'static str,
    /// `true` when the §4.1 criteria select the block for folding.
    pub selected: bool,
}

/// Applies the folding criteria of §4.1 to per-block sign-off metrics:
/// power share ≥ 1 %, a healthy net-power portion, and a long-wire count
/// worth folding. Returns rows sorted by power share (largest first).
pub fn fold_candidates(
    per_block: &[(String, foldic_netlist::BlockKind, DesignMetrics)],
) -> Vec<CandidateRow> {
    // BTreeMap so equal power shares tie-break in a stable kind order —
    // HashMap iteration order would make the sorted rows run-dependent
    use std::collections::BTreeMap;
    let total: f64 = per_block.iter().map(|(_, _, m)| m.power.total_uw()).sum();
    let mut agg: BTreeMap<foldic_netlist::BlockKind, (f64, f64, usize, usize)> = BTreeMap::new();
    for (_, kind, m) in per_block {
        let e = agg.entry(*kind).or_insert((0.0, 0.0, 0, 0));
        e.0 += m.power.total_uw();
        e.1 += m.power.net_fraction();
        e.2 += m.long_wires;
        e.3 += 1;
    }
    let mut rows: Vec<CandidateRow> = agg
        .into_iter()
        .map(|(kind, (p, nf, lw, n))| {
            let share = p / total / n as f64;
            let net_frac = nf / n as f64;
            let long = lw / n;
            CandidateRow {
                kind,
                power_share: share,
                net_power_frac: net_frac,
                long_wires: long,
                copies: n,
                remark: match kind.clock() {
                    foldic_netlist::ClockDomain::Cpu => "CPU clock",
                    foldic_netlist::ClockDomain::Io => "I/O clock",
                },
                selected: false,
            }
        })
        .collect();
    rows.sort_by(|a, b| b.power_share.total_cmp(&a.power_share));
    // §4.1: ≥1 % of system power, then favour net-power-heavy blocks with
    // many long wires
    let long_median = {
        let mut v: Vec<usize> = rows.iter().map(|r| r.long_wires).collect();
        v.sort_unstable();
        v[v.len() / 2]
    };
    for r in &mut rows {
        r.selected = r.power_share >= 0.01
            && (r.net_power_frac >= 0.30 || r.long_wires > long_median)
            && r.long_wires > 0;
    }
    rows
}

#[cfg(test)]
mod tests {
    use super::*;
    use foldic_t2::T2Config;

    fn design() -> (foldic_netlist::Design, Technology) {
        T2Config::tiny().generate()
    }

    #[test]
    fn folding_ccx_naturally_uses_few_vias() {
        let (mut d, tech) = design();
        let id = d.find_block("ccx").unwrap();
        let before_fp = d.block(id).outline.area();
        let cfg = FoldConfig {
            strategy: FoldStrategy::NaturalGroups(vec!["pcx".into()]),
            bonding: BondingStyle::FaceToBack,
            ..FoldConfig::fast()
        };
        let folded = fold_block(d.block_mut(id), &tech, &cfg).unwrap();
        // tiny cut (the paper reports 4 signal TSVs)
        assert!(folded.cut <= 8, "cut {}", folded.cut);
        // footprint roughly halves (−54.6 % in the paper)
        let after_fp = d.block(id).outline.area();
        assert!(
            after_fp < 0.70 * before_fp,
            "footprint {before_fp} -> {after_fp}"
        );
        assert!(d.block(id).folded);
        d.block(id).netlist.check().expect("sound after folding");
    }

    #[test]
    fn macro_rows_strategy_balances_l2d_macros() {
        let (mut d, tech) = design();
        let id = d.find_block("l2d0").unwrap();
        let cfg = FoldConfig {
            strategy: FoldStrategy::MacroRows,
            bonding: BondingStyle::FaceToBack,
            ..FoldConfig::fast()
        };
        let _folded = fold_block(d.block_mut(id), &tech, &cfg).unwrap();
        let nl = &d.block(id).netlist;
        let (bot, top): (Vec<_>, Vec<_>) = nl
            .insts()
            .filter(|(_, i)| i.master.is_macro())
            .partition(|(_, i)| i.tier == Tier::Bottom);
        assert_eq!(bot.len(), 16);
        assert_eq!(top.len(), 16);
        // macros legal inside the folded outline
        let outline = d.block(id).outline;
        for (_, m) in nl.insts().filter(|(_, i)| i.master.is_macro()) {
            assert!(
                outline.inflated(1.0).contains_rect(m.rect(&tech)),
                "macro at {} outside {}",
                m.pos,
                outline
            );
        }
    }

    #[test]
    fn f2f_fold_beats_f2b_fold_on_footprint() {
        let (d0, tech) = design();
        let id = d0.find_block("l2t0").unwrap();
        let run = |bonding| {
            let mut d = d0.clone();
            let cfg = FoldConfig {
                strategy: FoldStrategy::MinCut,
                bonding,
                ..FoldConfig::fast()
            };
            let folded = fold_block(d.block_mut(id), &tech, &cfg).unwrap();
            (d.block(id).outline.area(), folded)
        };
        let (fp_f2b, f2b) = run(BondingStyle::FaceToBack);
        let (fp_f2f, f2f) = run(BondingStyle::FaceToFace);
        assert!(fp_f2f < fp_f2b, "F2F {fp_f2f} vs F2B {fp_f2b}");
        // same partition seed → comparable via counts
        assert!(f2b.metrics.num_3d_connections > 0);
        assert!(f2f.metrics.num_3d_connections > 0);
        // F2F vias sit nearer their ideals
        assert!(f2f.vias.mean_displacement_um() <= f2b.vias.mean_displacement_um());
    }

    #[test]
    fn quality_sweep_changes_via_count() {
        let (d0, tech) = design();
        let id = d0.find_block("l2t0").unwrap();
        let cut_at = |q: f64| {
            let mut d = d0.clone();
            let cfg = FoldConfig {
                strategy: FoldStrategy::Quality(q),
                bonding: BondingStyle::FaceToFace,
                ..FoldConfig::fast()
            };
            fold_block(d.block_mut(id), &tech, &cfg).unwrap().cut
        };
        assert!(cut_at(0.0) > cut_at(1.0));
    }

    #[test]
    fn second_level_folding_splits_big_fubs() {
        let (mut d, tech) = design();
        let id = d.find_block("spc0").unwrap();
        let cfg = FoldConfig {
            bonding: BondingStyle::FaceToFace,
            ..FoldConfig::fast()
        };
        let folded = fold_spc_second_level(d.block_mut(id), &tech, &cfg).unwrap();
        assert!(folded.metrics.num_3d_connections > 0);
        let nl = &d.block(id).netlist;
        // each folded FUB must have cells on both tiers
        for &(name, _, is_folded) in foldic_t2::SPC_FUBS.iter() {
            if !is_folded {
                continue;
            }
            let g = (0..nl.num_groups())
                .map(|i| GroupId(i as u32))
                .find(|&g| nl.group_name(g) == name)
                .unwrap();
            let tiers: std::collections::HashSet<Tier> = nl
                .insts()
                .filter(|(_, i)| i.group == Some(g) && !i.master.is_macro())
                .map(|(_, i)| i.tier)
                .collect();
            assert_eq!(tiers.len(), 2, "FUB {name} not folded");
        }
    }

    #[test]
    fn candidate_table_ranks_spc_on_top() {
        // synthetic metric set mimicking Table 3's structure
        use foldic_netlist::BlockKind::*;
        let m = |power: f64, net_frac: f64, long: usize| DesignMetrics {
            power: foldic_power::PowerReport {
                cell_uw: power * (1.0 - net_frac) * 0.7,
                net_wire_uw: power * net_frac * 0.8,
                net_pin_uw: power * net_frac * 0.2,
                leakage_uw: power * (1.0 - net_frac) * 0.3,
            },
            long_wires: long,
            ..Default::default()
        };
        let mut blocks = Vec::new();
        for i in 0..8 {
            blocks.push((format!("spc{i}"), Spc, m(58.0, 0.55, 277)));
            blocks.push((format!("l2d{i}"), L2d, m(21.0, 0.29, 65)));
        }
        blocks.push(("ccx".into(), Ccx, m(28.0, 0.58, 124)));
        blocks.push(("rtx".into(), Rtx, m(36.0, 0.44, 275)));
        blocks.push(("ncu".into(), Ncu, m(5.0, 0.2, 3)));
        let rows = fold_candidates(&blocks);
        assert_eq!(rows[0].kind, Spc);
        let spc = &rows[0];
        assert!(spc.selected);
        let ncu = rows.iter().find(|r| r.kind == Ncu).unwrap();
        assert!(!ncu.selected, "NCU is below the 1% criterion");
        let l2d = rows.iter().find(|r| r.kind == L2d).unwrap();
        assert!(
            (l2d.power_share - 0.021 / (0.021 * 8.0 + 0.058 * 8.0 + 0.028 + 0.036 + 0.005) * 1.0)
                .abs()
                < 1.0
        );
    }
}
