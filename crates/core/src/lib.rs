#![warn(missing_docs)]
#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]
//! `foldic` — block folding and bonding styles for power reduction in
//! two-tier 3D ICs.
//!
//! This crate implements the methodology of *"On Enhancing Power Benefits
//! in 3D ICs: Block Folding and Bonding Styles Perspective"* (DAC 2014) on
//! top of the `foldic-*` substrate crates:
//!
//! * [`flow`] — the RTL-to-GDSII-style block flow (§2.2): placement,
//!   wiring analysis, STA with chip-level port budgets, iterative timing
//!   and power optimization, power sign-off;
//! * [`folding`] — the paper's contribution (§4–§5): folding-candidate
//!   selection by the three criteria of §4.1, the full block-folding flow
//!   (partition → per-tier mixed-size placement → TSV / F2F-via placement
//!   → re-optimization), the second-level FUB folding of the SPARC core,
//!   and the partition-quality sweep behind Fig. 7;
//! * [`fullchip`] — assembly of the five chip styles of Fig. 8 (2D,
//!   core/cache, core/core, folded + TSV, folded + F2F) with chip-level
//!   routing, TSV planning and power roll-up (§3, §6);
//! * [`metrics`] — the `DesignMetrics` / `Comparison` records every table
//!   of the paper is printed from.
//!
//! # Quickstart
//!
//! ```no_run
//! use foldic::prelude::*;
//!
//! // a reduced synthetic OpenSPARC T2
//! let (mut design, tech) = T2Config::tiny().generate();
//!
//! // fold the crossbar the natural way (PCX on one die, CPX on the other)
//! let id = design.find_block("ccx").unwrap();
//! let cfg = FoldConfig {
//!     strategy: FoldStrategy::NaturalGroups(vec!["pcx".into()]),
//!     bonding: BondingStyle::FaceToFace,
//!     ..FoldConfig::default()
//! };
//! let folded = fold_block(design.block_mut(id), &tech, &cfg).unwrap();
//! println!("3D connections: {}", folded.metrics.num_3d_connections);
//! ```

pub mod flow;
pub mod folding;
pub mod fullchip;
pub mod metrics;
pub mod render;

pub use flow::{run_block_flow, BlockResult, FlowConfig};
pub use foldic_fault::{
    clear_deadline, clear_fault_plan, clear_resource, format_bytes, install_deadline,
    install_fault_plan, install_resource, parse_bytes, parse_stage_mem, resource_active,
    take_fault_log, take_peaks, CancelToken, CheckpointStore, Deadline, DeadlinePolicy,
    Disposition, FaultPlan, FaultRecord, FlowError, FlowStage, ResourcePolicy, RetryPolicy,
    Watchdog,
};
pub use folding::{
    fold_block, fold_candidates, fold_spc_second_level, CandidateRow, FoldAspect, FoldConfig,
    FoldStrategy, FoldedBlock,
};
pub use fullchip::{run_fullchip, DesignStyle, FullChipConfig, FullChipResult};
pub use metrics::{Comparison, DesignMetrics};
pub use render::{render_block_svg, render_chip_svg};

/// Convenience re-exports for downstream users and examples.
pub mod prelude {
    pub use crate::flow::{run_block_flow, BlockResult, FlowConfig};
    pub use crate::folding::{
        fold_block, fold_candidates, fold_spc_second_level, FoldAspect, FoldConfig, FoldStrategy,
        FoldedBlock,
    };
    pub use crate::fullchip::{run_fullchip, DesignStyle, FullChipConfig, FullChipResult};
    pub use crate::metrics::{Comparison, DesignMetrics};
    pub use foldic_floorplan::FloorplanStyle;
    pub use foldic_netlist::{Block, BlockKind, Design};
    pub use foldic_t2::T2Config;
    pub use foldic_tech::{BondingStyle, Technology};
}
