//! Full-chip assembly: the five design styles of Fig. 8.
//!
//! A full-chip run (§3 and §6):
//!
//! 1. for folded styles, fold the five selected block types (SPC via
//!    second-level FUB folding, CCX via the natural PCX/CPX split, L2D via
//!    macro-row splitting, L2T and RTX via min-cut);
//! 2. floorplan the blocks (user-defined arrangements per style) and plan
//!    chip-level TSVs for cross-die nets;
//! 3. derive per-block I/O timing budgets from the chip-level net lengths
//!    (the §2.2 constraint-extraction step);
//! 4. run the block flow on every unfolded block against those budgets;
//! 5. route the inter-block nets on the M8–M9 over-the-block resources —
//!    SPCs and F2F-folded blocks block them (§6.1) — and roll up chip
//!    power, wirelength and via counts.

use crate::flow::{block_max_layer, collect_metrics, run_block_flow, FlowConfig};
use crate::folding::{
    fold_block_with_budgets, fold_spc_second_level, FoldAspect, FoldConfig, FoldStrategy,
};
use crate::metrics::DesignMetrics;
use foldic_fault::deadline::{backoff_wait, has_stage_override, run_token, stage_scope};
use foldic_fault::{
    fault_point, isolate, job_scope, log_fault, CheckpointStore, Disposition, FaultRecord,
    FlowError, FlowStage, RetryPolicy,
};
use foldic_floorplan::{floorplan_t2, plan_chip_tsvs, ChipPlan, FloorplanStyle};
use foldic_geom::{Point, Rect, Tier};
use foldic_netlist::{Block, BlockId, BlockKind, ClockDomain, Design};
use foldic_obs::json::Json;
use foldic_opt::chip_repeater_spacing_um;
use foldic_power::PowerReport;
use foldic_route::GlobalRouter;
use foldic_tech::{BondingStyle, CellKind, Drive, RoutingPolicy, Technology, VthClass};
use foldic_timing::TimingBudgets;
use std::collections::HashMap;
use std::sync::Arc;

/// Effective chip-net delay per µm of routed length in ps (a buffered
/// top-metal wire).
const CHIP_DELAY_PS_PER_UM: f64 = 0.12;
/// Toggle activity of inter-block buses.
const CHIP_NET_ACTIVITY: f64 = 0.15;
/// Fraction of the raw M8–M9 track supply available for signal routing.
const TRACK_UTILIZATION: f64 = 0.6;

/// The five full-chip design styles of Fig. 8.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DesignStyle {
    /// 2D baseline (Fig. 8a).
    Flat2d,
    /// Core/cache stacking, F2B, no folding (Fig. 8b).
    CoreCache,
    /// Core/core stacking, F2B, no folding (Fig. 8c).
    CoreCore,
    /// Five block types folded, TSVs (Fig. 8d).
    FoldedF2b,
    /// Five block types folded, F2F vias (Fig. 8e).
    FoldedF2f,
}

impl DesignStyle {
    /// All five styles in Fig. 8 order.
    pub const ALL: [DesignStyle; 5] = [
        DesignStyle::Flat2d,
        DesignStyle::CoreCache,
        DesignStyle::CoreCore,
        DesignStyle::FoldedF2b,
        DesignStyle::FoldedF2f,
    ];

    /// `true` for two-tier styles.
    pub fn is_3d(self) -> bool {
        !matches!(self, DesignStyle::Flat2d)
    }

    /// Bonding style of the stack.
    pub fn bonding(self) -> BondingStyle {
        match self {
            DesignStyle::FoldedF2f => BondingStyle::FaceToFace,
            _ => BondingStyle::FaceToBack,
        }
    }

    /// `true` when blocks are folded.
    pub fn folded(self) -> bool {
        matches!(self, DesignStyle::FoldedF2b | DesignStyle::FoldedF2f)
    }

    /// Display label matching the paper.
    pub fn label(self) -> &'static str {
        match self {
            DesignStyle::Flat2d => "2D",
            DesignStyle::CoreCache => "3D core/cache",
            DesignStyle::CoreCore => "3D core/core",
            DesignStyle::FoldedF2b => "3D folded (F2B)",
            DesignStyle::FoldedF2f => "3D folded (F2F)",
        }
    }

    /// Short machine-readable name used in metric keys and manifests.
    pub fn slug(self) -> &'static str {
        match self {
            DesignStyle::Flat2d => "2d",
            DesignStyle::CoreCache => "core_cache",
            DesignStyle::CoreCore => "core_core",
            DesignStyle::FoldedF2b => "folded_f2b",
            DesignStyle::FoldedF2f => "folded_f2f",
        }
    }
}

/// Full-chip run configuration.
#[derive(Debug, Clone)]
pub struct FullChipConfig {
    /// Per-block flow settings.
    pub flow: FlowConfig,
    /// Fold RTX too (the paper builds both a 4-type and a 5-type variant,
    /// §6.1).
    pub fold_rtx: bool,
    /// Enable dual-Vth everywhere.
    pub dual_vth: bool,
    /// Worker threads for the per-block fan-out (1 = serial). Results are
    /// identical for any thread count: blocks are independent and each
    /// job's RNG stream is seeded from its own config.
    pub threads: usize,
    /// How often a failing block is retried (with a perturbed seed and a
    /// relaxed config) before it degrades to analytical estimates.
    pub retry: RetryPolicy,
    /// When set, finished per-block results are written here and later
    /// runs skip blocks whose key is already present (resume).
    pub checkpoint: Option<Arc<CheckpointStore>>,
}

impl FullChipConfig {
    /// Fast settings for tests.
    pub fn fast() -> Self {
        Self {
            flow: FlowConfig::fast(),
            ..Self::default()
        }
    }
}

impl Default for FullChipConfig {
    fn default() -> Self {
        Self {
            flow: FlowConfig::default(),
            fold_rtx: true,
            dual_vth: false,
            threads: 1,
            retry: RetryPolicy::default(),
            checkpoint: None,
        }
    }
}

/// Result of a full-chip run.
#[derive(Debug, Clone)]
pub struct FullChipResult {
    /// Which style was built.
    pub style: DesignStyle,
    /// Die outline.
    pub die: foldic_geom::Rect,
    /// Chip totals (footprint = one die).
    pub chip: DesignMetrics,
    /// Per-block sign-off metrics.
    pub per_block: Vec<(String, BlockKind, DesignMetrics)>,
    /// Chip-level 3D connections (between blocks).
    pub chip_vias: usize,
    /// Intra-block 3D connections (inside folded blocks).
    pub intra_block_vias: usize,
    /// Routed inter-block wirelength in µm.
    pub interblock_wl_um: f64,
    /// Inter-block routing detour factor.
    pub interblock_detour: f64,
    /// Inter-block connections that crossed over-capacity regions.
    pub route_overflow: usize,
    /// Faulted blocks of this run (sorted by block name): what failed,
    /// how many attempts were spent, and whether the block recovered or
    /// degraded to analytical estimates.
    pub faults: Vec<FaultRecord>,
}

/// Stable scope label of a `(style, dual_vth)` run, used for fault
/// records and checkpoint keys (e.g. `"core_cache"`, `"folded_f2b.dvt"`).
fn run_scope(style: DesignStyle, dual_vth: bool) -> String {
    if dual_vth {
        format!("{}.dvt", style.slug())
    } else {
        style.slug().to_owned()
    }
}

/// Runs one per-block job behind an isolation boundary: a panic or a
/// recoverable [`FlowError`] restores the block from a pristine clone and
/// retries with the attempt counter bumped (callers perturb seeds and
/// relax configs off it); when every attempt fails — or immediately on a
/// non-recoverable validation error — the block degrades to analytical
/// estimates. Fault provenance is pushed to the global fault log and
/// returned for the run's own `faults` table.
fn run_block_isolated(
    scope: &str,
    block: &mut Block,
    retry: RetryPolicy,
    attempt_fn: impl Fn(&mut Block, u32) -> Result<DesignMetrics, FlowError>,
    degrade_fn: impl FnOnce(&Block) -> DesignMetrics,
) -> (DesignMetrics, Option<FaultRecord>) {
    let pristine = block.clone();
    let token = run_token();
    let mut last_stage = FlowStage::Job;
    let mut last_timed_out = false;
    let mut last_mem_exceeded = false;
    let mut attempts = 0;
    for attempt in 0..retry.max_attempts {
        if attempt > 0 {
            *block = pristine.clone();
            // a cancelled run stops retrying and degrades right away; a
            // backoff wait is likewise cut short by cancellation
            if token.is_cancelled() || !backoff_wait(retry.backoff, &token) {
                last_timed_out = true;
                break;
            }
        }
        attempts = attempt + 1;
        // the job-wide memory scope lives inside the isolation boundary
        // so a mem-breach unwind still pops it via the guard's Drop
        let result = isolate(|| {
            let _mem = job_scope(&block.name, attempt);
            attempt_fn(block, attempt)
        });
        match result {
            Ok(metrics) => {
                if attempt == 0 {
                    return (metrics, None);
                }
                let record = FaultRecord {
                    scope: scope.to_owned(),
                    block: block.name.clone(),
                    stage: last_stage,
                    attempts,
                    disposition: Disposition::Recovered,
                    timed_out: last_timed_out,
                    mem_exceeded: last_mem_exceeded,
                };
                log_fault(record.clone());
                return (metrics, Some(record));
            }
            Err(e) => {
                last_stage = e.stage;
                last_timed_out = e.is_timeout();
                last_mem_exceeded = e.is_mem_exceeded();
                if !e.recoverable() {
                    break; // invalid input fails identically every time
                }
            }
        }
    }
    *block = pristine;
    let metrics = degrade_fn(block);
    let record = FaultRecord {
        scope: scope.to_owned(),
        block: block.name.clone(),
        stage: last_stage,
        attempts,
        disposition: Disposition::Degraded,
        timed_out: last_timed_out,
        mem_exceeded: last_mem_exceeded,
    };
    log_fault(record.clone());
    (metrics, Some(record))
}

/// Analytical stand-in metrics for a block whose flow never finished:
/// wiring and power are estimated on the pristine (unoptimized) netlist,
/// timing is not claimed (`wns_ps` = 0), and the result is marked
/// [`degraded`](DesignMetrics::degraded).
fn degraded_estimate(
    block: &Block,
    tech: &Technology,
    bonding: BondingStyle,
    policy: &RoutingPolicy,
) -> DesignMetrics {
    let max_layer = block_max_layer(block, bonding, policy);
    let wiring = foldic_route::BlockWiring::analyze(
        &block.netlist,
        tech,
        foldic_route::wiring::DEFAULT_DETOUR,
        None,
    );
    let mut metrics = match wiring {
        Ok(wiring) => {
            let mut pw_cfg = foldic_power::PowerConfig::for_block(block);
            pw_cfg.max_layer = max_layer;
            let power = foldic_power::analyze_block(&block.netlist, tech, &wiring, &pw_cfg)
                .unwrap_or_default();
            collect_metrics(&block.netlist, block, tech, &wiring, None, power, 0.0)
        }
        // even the estimate failed: report the outline and nothing else
        Err(_) => DesignMetrics {
            footprint_um2: block.outline.area(),
            ..Default::default()
        },
    };
    metrics.degraded = true;
    metrics
}

/// Serializes a finished block into a checkpoint value: its metrics plus
/// the geometry downstream stages read back (outline, folded flag, port
/// positions and tiers) and the block's fault record, if any. Netlist
/// internals are *not* captured — resumed blocks skip their flow, so
/// nothing downstream re-reads instance placement.
fn snapshot_block(block: &Block, metrics: &DesignMetrics, fault: &Option<FaultRecord>) -> Json {
    let mut pairs = vec![
        ("metrics".to_owned(), metrics.to_json()),
        (
            "outline".to_owned(),
            Json::Arr(vec![
                Json::Num(block.outline.llx),
                Json::Num(block.outline.lly),
                Json::Num(block.outline.urx),
                Json::Num(block.outline.ury),
            ]),
        ),
        (
            "folded".to_owned(),
            Json::Num(if block.folded { 1.0 } else { 0.0 }),
        ),
        (
            "ports".to_owned(),
            Json::Arr(
                block
                    .netlist
                    .ports()
                    .map(|(_, p)| {
                        Json::Arr(vec![
                            Json::Num(p.pos.x),
                            Json::Num(p.pos.y),
                            Json::Num(if p.tier == Tier::Top { 1.0 } else { 0.0 }),
                        ])
                    })
                    .collect(),
            ),
        ),
    ];
    if let Some(record) = fault {
        pairs.push(("fault".to_owned(), record.to_json()));
    }
    Json::obj(pairs)
}

/// Applies a checkpoint value written by [`snapshot_block`]. Everything
/// is parsed and sanity-checked *before* the block is touched, so a
/// stale or malformed entry leaves the block pristine and the caller
/// re-runs the flow instead.
fn restore_block(block: &mut Block, value: &Json) -> Option<(DesignMetrics, Option<FaultRecord>)> {
    let metrics = DesignMetrics::from_json(value.get("metrics")?).ok()?;
    let outline = value.get("outline")?.as_arr()?;
    let [llx, lly, urx, ury] = [
        outline.first()?.as_f64()?,
        outline.get(1)?.as_f64()?,
        outline.get(2)?.as_f64()?,
        outline.get(3)?.as_f64()?,
    ];
    if !(llx.is_finite() && lly.is_finite() && llx <= urx && lly <= ury) {
        return None;
    }
    let folded = value.get("folded")?.as_f64()? != 0.0;
    let port_entries = value.get("ports")?.as_arr()?;
    if port_entries.len() != block.netlist.num_ports() {
        return None; // written against a different netlist
    }
    let mut ports = Vec::with_capacity(port_entries.len());
    for entry in port_entries {
        let a = entry.as_arr()?;
        let (x, y) = (a.first()?.as_f64()?, a.get(1)?.as_f64()?);
        if !(x.is_finite() && y.is_finite()) {
            return None;
        }
        let tier = if a.get(2)?.as_f64()? != 0.0 {
            Tier::Top
        } else {
            Tier::Bottom
        };
        ports.push((Point::new(x, y), tier));
    }
    let fault = match value.get("fault") {
        Some(json) => Some(FaultRecord::from_json(json).ok()?),
        None => None,
    };
    block.outline = Rect::new(llx, lly, urx, ury);
    block.folded = folded;
    for (idx, (pos, tier)) in ports.into_iter().enumerate() {
        let port = block.netlist.port_mut(foldic_netlist::PortId::from(idx));
        port.pos = pos;
        port.tier = tier;
    }
    Some((metrics, fault))
}

/// Runs one full-chip style end to end. The design is consumed/mutated:
/// pass a fresh clone per style.
///
/// Per-block failures (organic or injected) never abort the run: each
/// block is retried under [`FullChipConfig::retry`] and degrades to
/// analytical estimates on exhaustion, with provenance in
/// [`FullChipResult::faults`].
///
/// # Errors
///
/// Returns [`FlowError`] only for chip-level failures (currently just an
/// injected floorplan fault).
pub fn run_fullchip(
    design: &mut Design,
    tech: &Technology,
    style: DesignStyle,
    cfg: &FullChipConfig,
) -> Result<FullChipResult, FlowError> {
    let _span = foldic_obs::span!("fullchip", style = style.slug(), dual_vth = cfg.dual_vth,);
    let bonding = style.bonding();
    let scope = run_scope(style, cfg.dual_vth);
    let mut faults: Vec<FaultRecord> = Vec::new();
    // the run's cancel token (never cancelled when no deadline policy is
    // installed): fan-outs stop handing out jobs once it trips, and each
    // skipped block degrades to analytical estimates
    let token = run_token();
    let degrade_skipped = |(id, block): (BlockId, &mut Block), faults: &mut Vec<FaultRecord>| {
        let metrics = degraded_estimate(block, tech, bonding, &cfg.flow.policy);
        let record = FaultRecord {
            scope: scope.clone(),
            block: block.name.clone(),
            stage: FlowStage::Job,
            attempts: 0,
            disposition: Disposition::Degraded,
            timed_out: true,
            mem_exceeded: false,
        };
        log_fault(record.clone());
        faults.push(record);
        (id, metrics)
    };

    // ---- 1. fold the selected blocks --------------------------------------
    let mut folded_results: HashMap<BlockId, DesignMetrics> = HashMap::new();
    let mut intra_block_vias = 0;
    if style.folded() {
        let fold_cfg = |strategy, aspect| FoldConfig {
            strategy,
            aspect,
            bonding,
            placer: cfg.flow.placer.clone(),
            opt: cfg.flow.opt.clone(),
            dual_vth: cfg.dual_vth,
            ..FoldConfig::default()
        };
        // one job per foldable block: blocks are disjoint, so handing out
        // simultaneous `&mut Block` borrows is safe and the engine fans
        // them out across workers
        let jobs: Vec<(BlockId, &mut Block)> = design
            .blocks_mut()
            .filter(|(_, b)| {
                matches!(
                    b.kind,
                    BlockKind::Spc | BlockKind::Ccx | BlockKind::L2d | BlockKind::L2t
                ) || (b.kind == BlockKind::Rtx && cfg.fold_rtx)
            })
            .collect();
        let results = foldic_exec::profile::stage("fold", || {
            foldic_exec::run_cancellable(cfg.threads, jobs, token.flag(), |_, (id, block)| {
                let key = format!("{scope}/{}", block.name);
                if let Some(store) = &cfg.checkpoint {
                    if let Some(value) = store.get(&key) {
                        if let Some((metrics, fault)) = restore_block(block, &value) {
                            if let Some(record) = &fault {
                                log_fault(record.clone());
                            }
                            return (id, metrics, fault);
                        }
                    }
                }
                let kind = block.kind;
                let (metrics, fault) = run_block_isolated(
                    &scope,
                    block,
                    cfg.retry,
                    |b, attempt| {
                        if kind == BlockKind::Spc {
                            let c = fold_cfg(FoldStrategy::MinCut, FoldAspect::Keep)
                                .relaxed_for_retry(attempt);
                            Ok(fold_spc_second_level(b, tech, &c)?.metrics)
                        } else {
                            let strategy = match kind {
                                BlockKind::Ccx => FoldStrategy::NaturalGroups(vec!["pcx".into()]),
                                BlockKind::L2d => FoldStrategy::MacroRows,
                                _ => FoldStrategy::MinCut,
                            };
                            let aspect = match kind {
                                BlockKind::Ccx => FoldAspect::Square,
                                BlockKind::L2d => FoldAspect::KeepWidth,
                                _ => FoldAspect::Keep,
                            };
                            let c = fold_cfg(strategy, aspect).relaxed_for_retry(attempt);
                            let budgets = TimingBudgets::relaxed(&b.netlist, tech);
                            Ok(fold_block_with_budgets(b, tech, &budgets, &c)?.metrics)
                        }
                    },
                    |b| degraded_estimate(b, tech, bonding, &cfg.flow.policy),
                );
                if let Some(store) = &cfg.checkpoint {
                    store.put(&key, snapshot_block(block, &metrics, &fault));
                }
                (id, metrics, fault)
            })
        });
        for outcome in results {
            let (id, m) = match outcome {
                foldic_exec::JobOutcome::Done((id, m, fault)) => {
                    faults.extend(fault);
                    (id, m)
                }
                foldic_exec::JobOutcome::Skipped(job) => degrade_skipped(job, &mut faults),
            };
            intra_block_vias += m.num_3d_connections;
            folded_results.insert(id, m);
        }
    }

    // ---- 2. floorplan -------------------------------------------------------
    // the chip floorplan is serial and non-retryable: it only opts into a
    // wall-clock scope on an explicit `--stage-timeout floorplan=…`, and a
    // trip aborts the run like any other chip-level fault
    let fp_style = match style {
        DesignStyle::Flat2d | DesignStyle::FoldedF2b | DesignStyle::FoldedF2f => {
            FloorplanStyle::Flat2d
        }
        DesignStyle::CoreCache => FloorplanStyle::CoreCache,
        DesignStyle::CoreCore => FloorplanStyle::CoreCore,
    };
    let mut plan: ChipPlan = isolate(|| {
        let _scope = if has_stage_override(FlowStage::Floorplan) {
            Some(stage_scope(FlowStage::Floorplan, "chip", 0)?)
        } else {
            None
        };
        fault_point(FlowStage::Floorplan, "chip", 0)?;
        Ok(foldic_exec::profile::stage("floorplan", || {
            floorplan_t2(design, fp_style, tech)
        }))
    })?;
    if style.folded() {
        // folded blocks expose ports on both tiers: cross-die chip nets
        // exist even though the arrangement is single-layout
        plan.tsvs = plan_chip_tsvs(design, plan.die, tech);
    }

    // ---- 3. floorplan-driven pin assignment + timing budgets ----------------
    assign_port_positions(design, &plan);
    let budgets = chip_budgets(design, &plan, tech);

    // ---- 4. block flows -------------------------------------------------------
    let mut flow_cfg = cfg.flow.clone();
    flow_cfg.bonding = bonding;
    flow_cfg.dual_vth = cfg.dual_vth;
    let order: Vec<BlockId> = design.block_ids().collect();
    let jobs: Vec<(BlockId, &mut Block)> = design
        .blocks_mut()
        .filter(|(id, _)| !folded_results.contains_key(id))
        .collect();
    let flow_results = foldic_exec::profile::stage("block_flows", || {
        foldic_exec::run_cancellable(cfg.threads, jobs, token.flag(), |_, (id, block)| {
            let key = format!("{scope}/{}", block.name);
            if let Some(store) = &cfg.checkpoint {
                if let Some(value) = store.get(&key) {
                    if let Some((metrics, fault)) = restore_block(block, &value) {
                        if let Some(record) = &fault {
                            log_fault(record.clone());
                        }
                        return (id, metrics, fault);
                    }
                }
            }
            let (metrics, fault) = run_block_isolated(
                &scope,
                block,
                cfg.retry,
                |b, attempt| {
                    Ok(run_block_flow(
                        b,
                        tech,
                        &budgets[&id],
                        &flow_cfg.relaxed_for_retry(attempt),
                    )?
                    .metrics)
                },
                |b| degraded_estimate(b, tech, bonding, &cfg.flow.policy),
            );
            if let Some(store) = &cfg.checkpoint {
                store.put(&key, snapshot_block(block, &metrics, &fault));
            }
            (id, metrics, fault)
        })
    });
    let mut flow_metrics: HashMap<BlockId, DesignMetrics> = HashMap::new();
    for outcome in flow_results {
        let (id, m) = match outcome {
            foldic_exec::JobOutcome::Done((id, m, fault)) => {
                faults.extend(fault);
                (id, m)
            }
            foldic_exec::JobOutcome::Skipped(job) => degrade_skipped(job, &mut faults),
        };
        flow_metrics.insert(id, m);
    }
    let mut per_block = Vec::new();
    for id in order {
        let metrics = folded_results
            .get(&id)
            .copied()
            .unwrap_or_else(|| flow_metrics[&id]);
        let b = design.block(id);
        per_block.push((b.name.clone(), b.kind, metrics));
    }

    // ---- 5. inter-block routing and roll-up -----------------------------------
    let chip_route_timer = foldic_exec::profile::StageTimer::start("chip_route");
    let top = tech.metal.top_layer();
    let tracks_per_um = 2.0 / top.pitch_um * TRACK_UTILIZATION;
    let mut router = GlobalRouter::new(plan.die, plan.die.width().max(64.0) / 32.0, tracks_per_um);
    for (_, b) in design.blocks() {
        let open_fraction: f64 = if b.routing_hungry() {
            if style.is_3d() && !b.folded {
                0.5 // the other die is still open above the SPC
            } else {
                0.0
            }
        } else if b.folded {
            match bonding {
                BondingStyle::FaceToFace => 0.0, // §6.1: blocks both dies
                BondingStyle::FaceToBack => 0.5, // top die of the fold uses M8–M9
            }
        } else {
            1.0
        };
        if open_fraction < 1.0 {
            router.scale_capacity(b.chip_rect(), open_fraction);
        }
    }
    let mut tsv_iter = plan.tsvs.iter();
    let mut chip_net_wire_cap_ghz = 0.0; // Σ cap·f over chip nets
    for net in design.chip_nets() {
        let pts: Vec<(Point, foldic_geom::Tier)> = net
            .endpoints
            .iter()
            .map(|&(bid, pid)| {
                let b = design.block(bid);
                let port = b.netlist.port(pid);
                let tier = if b.folded { port.tier } else { b.tier };
                (b.to_chip(port.pos), tier)
            })
            .collect();
        let cross = pts.windows(2).any(|w| w[0].1 != w[1].1);
        let routed = if cross {
            let via = tsv_iter
                .next()
                .copied()
                .unwrap_or_else(|| pts[0].0.midpoint(pts[pts.len() - 1].0));
            let mut len = 0.0;
            for &(p, _) in &pts {
                len += router.route(p, via, net.bits as f64);
            }
            len
        } else {
            let mut len = 0.0;
            for w in pts.windows(2) {
                len += router.route(w[0].0, w[1].0, net.bits as f64);
            }
            len
        };
        let f = net.domain.frequency_ghz(tech);
        chip_net_wire_cap_ghz += routed * net.bits as f64 * top.c_per_um * f;
    }
    let route_stats = router.stats();
    drop(chip_route_timer);
    let interblock_wl_um = route_stats.routed_um;

    // chip-level repeaters on the inter-block wiring
    let spacing = chip_repeater_spacing_um(tech);
    let chip_buffers = (interblock_wl_um / spacing).round() as usize;
    let buf = tech.cells.get(CellKind::Buf, Drive::X8, VthClass::Rvt);

    let mut chip = DesignMetrics {
        footprint_um2: plan.die.area(),
        ..Default::default()
    };
    for (_, _, m) in &per_block {
        chip.absorb(m);
    }
    chip.wirelength_um += interblock_wl_um;
    chip.num_buffers += chip_buffers;
    chip.num_cells += chip_buffers;
    // chip TSV/F2F capacitance on cross-die nets
    let via_cap = match bonding {
        BondingStyle::FaceToBack => tech.tsv.capacitance_ff(),
        BondingStyle::FaceToFace => tech.f2f_via.capacitance_ff(),
    };
    let cross_nets = plan.tsvs.len();
    let chip_power = PowerReport {
        cell_uw: chip_buffers as f64
            * buf.internal_energy_fj
            * tech.cpu_clock_ghz
            * CHIP_NET_ACTIVITY,
        net_wire_uw: (chip_net_wire_cap_ghz + cross_nets as f64 * via_cap * tech.cpu_clock_ghz)
            * tech.vdd
            * tech.vdd
            * CHIP_NET_ACTIVITY,
        net_pin_uw: 0.0,
        leakage_uw: chip_buffers as f64 * buf.leakage_uw,
    };
    chip.power += chip_power;
    chip.num_3d_connections = cross_nets + intra_block_vias;

    // Per-style chip roll-up gauges. This runs serially once per
    // (style, dual_vth) pair within a run, so last-write-wins is safe,
    // and the values are pure functions of the deterministic flow — they
    // land in manifests and must not vary across thread counts.
    if foldic_obs::metrics::is_enabled() {
        let key = |field: &str| {
            let dvt = if cfg.dual_vth { ".dvt" } else { "" };
            format!("fullchip.{}{dvt}.{field}", style.slug())
        };
        foldic_obs::metrics::set_gauge(&key("power_total_uw"), chip.power.total_uw());
        foldic_obs::metrics::set_gauge(&key("power_cell_uw"), chip.power.cell_uw);
        foldic_obs::metrics::set_gauge(&key("power_net_uw"), chip.power.net_uw());
        foldic_obs::metrics::set_gauge(&key("power_leakage_uw"), chip.power.leakage_uw);
        foldic_obs::metrics::set_gauge(&key("wirelength_um"), chip.wirelength_um);
        foldic_obs::metrics::set_gauge(&key("footprint_um2"), chip.footprint_um2);
        foldic_obs::metrics::set_gauge(&key("connections_3d"), chip.num_3d_connections as f64);
        foldic_obs::metrics::set_gauge(&key("buffers"), chip.num_buffers as f64);
    }

    faults.sort();
    Ok(FullChipResult {
        style,
        die: plan.die,
        chip,
        per_block,
        chip_vias: cross_nets,
        intra_block_vias,
        interblock_wl_um,
        interblock_detour: route_stats.detour(),
        route_overflow: route_stats.overflowed,
        faults,
    })
}

/// Re-assigns every unfolded block's port locations from the floorplan
/// (the pin-assignment step of the paper's flow, re-run per configuration):
///
/// * a port facing a *same-tier* peer moves to the boundary point nearest
///   the straight line toward that peer;
/// * a port whose peer sits on the *other* die moves to the projection of
///   its chip-level TSV / F2F-via onto the block — in a 3D stack the 3D
///   connection lands wherever is best for the internal logic, which is
///   precisely why stacking shortens port-attached wiring.
///
/// Folded blocks keep the port tiers/positions their fold assigned.
pub fn assign_port_positions(design: &mut Design, plan: &ChipPlan) {
    // collect (block, port, target chip position, cross-tier?) first
    let mut moves: Vec<(BlockId, foldic_netlist::PortId, Point, bool)> = Vec::new();
    let mut tsv_iter = plan.tsvs.iter();
    for net in design.chip_nets() {
        let pts: Vec<(BlockId, foldic_netlist::PortId, Point, foldic_geom::Tier)> = net
            .endpoints
            .iter()
            .map(|&(bid, pid)| {
                let b = design.block(bid);
                let port = b.netlist.port(pid);
                let tier = if b.folded { port.tier } else { b.tier };
                (bid, pid, b.to_chip(port.pos), tier)
            })
            .collect();
        let cross = pts.windows(2).any(|w| w[0].3 != w[1].3);
        if cross {
            let via = tsv_iter
                .next()
                .copied()
                .unwrap_or_else(|| pts[0].2.midpoint(pts[pts.len() - 1].2));
            for &(bid, pid, _, _) in &pts {
                moves.push((bid, pid, via, true));
            }
        } else {
            // aim each port at the other endpoint's current location
            for (k, &(bid, pid, _, _)) in pts.iter().enumerate() {
                let other = pts[(k + 1) % pts.len()].2;
                moves.push((bid, pid, other, false));
            }
        }
    }
    for (bid, pid, target, cross) in moves {
        let block = design.block_mut(bid);
        if block.folded {
            continue; // the fold already placed these ports
        }
        let rect = block.outline;
        let local = target - block.pos;
        let new_pos = if cross && rect.contains(local) {
            // the 3D connection is directly over the block: land the pin
            // right there
            local
        } else {
            // clamp to the boundary facing the target
            let c = local.clamped(rect);
            // push onto the nearest edge
            let d_left = (c.x - rect.llx).abs();
            let d_right = (rect.urx - c.x).abs();
            let d_bot = (c.y - rect.lly).abs();
            let d_top = (rect.ury - c.y).abs();
            let min = d_left.min(d_right).min(d_bot).min(d_top);
            if min == d_left {
                Point::new(rect.llx, c.y)
            } else if min == d_right {
                Point::new(rect.urx, c.y)
            } else if min == d_bot {
                Point::new(c.x, rect.lly)
            } else {
                Point::new(c.x, rect.ury)
            }
        };
        block.netlist.port_mut(pid).pos = new_pos;
    }
}

/// Derives per-block port budgets from chip-level net lengths: an input
/// port's data arrives later the longer its chip net; an output port must
/// be ready earlier when it drives a long chip net.
pub fn chip_budgets(
    design: &Design,
    plan: &ChipPlan,
    tech: &Technology,
) -> HashMap<BlockId, TimingBudgets> {
    let mut budgets: HashMap<BlockId, TimingBudgets> = design
        .block_ids()
        .map(|id| (id, TimingBudgets::relaxed(&design.block(id).netlist, tech)))
        .collect();
    let mut tsv_iter = plan.tsvs.iter();
    for net in design.chip_nets() {
        let pts: Vec<(Point, foldic_geom::Tier)> = net
            .endpoints
            .iter()
            .map(|&(bid, pid)| {
                let b = design.block(bid);
                let port = b.netlist.port(pid);
                let tier = if b.folded { port.tier } else { b.tier };
                (b.to_chip(port.pos), tier)
            })
            .collect();
        let cross = pts.windows(2).any(|w| w[0].1 != w[1].1);
        let len = if cross {
            let via = tsv_iter
                .next()
                .copied()
                .unwrap_or_else(|| pts[0].0.midpoint(pts[pts.len() - 1].0));
            pts.iter().map(|&(p, _)| p.manhattan(via)).sum::<f64>()
        } else {
            pts.windows(2)
                .map(|w| w[0].0.manhattan(w[1].0))
                .sum::<f64>()
        };
        let delay = len * CHIP_DELAY_PS_PER_UM;
        let period = match net.domain {
            ClockDomain::Cpu => tech.cpu_period_ps(),
            ClockDomain::Io => tech.io_period_ps(),
        };
        // endpoints[0] drives, endpoints[1..] receive
        if let Some(&(bid, pid)) = net.endpoints.first() {
            if let Some(b) = budgets.get_mut(&bid) {
                let req = &mut b.output_required_ps[pid.index()];
                *req = req.min((0.75 * period - delay).max(0.15 * period));
            }
        }
        for &(bid, pid) in net.endpoints.iter().skip(1) {
            if let Some(b) = budgets.get_mut(&bid) {
                let arr = &mut b.input_arrival_ps[pid.index()];
                *arr = arr.max((0.25 * period + delay).min(0.85 * period));
            }
        }
    }
    budgets
}

#[cfg(test)]
mod tests {
    use super::*;
    use foldic_t2::T2Config;

    /// End-to-end smoke test on the tiny design, 2D style.
    #[test]
    fn flat2d_fullchip_runs() {
        let (mut design, tech) = T2Config::tiny().generate();
        let result = run_fullchip(
            &mut design,
            &tech,
            DesignStyle::Flat2d,
            &FullChipConfig::fast(),
        )
        .unwrap();
        assert_eq!(result.style, DesignStyle::Flat2d);
        assert_eq!(result.per_block.len(), 46);
        assert_eq!(result.chip_vias, 0);
        assert!(result.chip.power.total_uw() > 0.0);
        assert!(result.interblock_wl_um > 0.0);
        assert!(result.chip.footprint_um2 > 0.0);
    }

    #[test]
    fn core_cache_beats_2d_on_interblock_wl() {
        let (design, tech) = T2Config::tiny().generate();
        let cfg = FullChipConfig::fast();
        let mut d2 = design.clone();
        let r2 = run_fullchip(&mut d2, &tech, DesignStyle::Flat2d, &cfg).unwrap();
        let mut d3 = design.clone();
        let r3 = run_fullchip(&mut d3, &tech, DesignStyle::CoreCache, &cfg).unwrap();
        assert!(r3.chip_vias > 0);
        assert!(
            r3.interblock_wl_um < r2.interblock_wl_um,
            "3D {} vs 2D {}",
            r3.interblock_wl_um,
            r2.interblock_wl_um
        );
        assert!(r3.chip.footprint_um2 < r2.chip.footprint_um2);
    }

    #[test]
    fn budgets_tighten_with_distance() {
        let (mut design, tech) = T2Config::tiny().generate();
        let plan = floorplan_t2(&mut design, FloorplanStyle::Flat2d, &tech);
        let budgets = chip_budgets(&design, &plan, &tech);
        // some input port must have a later-than-default arrival
        let mut tightened = 0;
        for (id, b) in &budgets {
            let block = design.block(*id);
            for (pid, port) in block.netlist.ports() {
                let period = port.domain.period_ps(&tech);
                if b.input_arrival_ps[pid.index()] > 0.26 * period {
                    tightened += 1;
                }
            }
        }
        assert!(tightened > 0, "chip distances must tighten some budgets");
    }
}
