//! SVG rendering of chip and block layouts (the GDS-shot figures).
//!
//! Two renderers produce the paper's figure styles:
//!
//! * [`render_chip_svg`] — a full-chip floorplan like Fig. 8: one panel
//!   per die, blocks coloured by kind, folded blocks shown on both panels
//!   with a fold marker, chip-level TSVs as dots.
//! * [`render_block_svg`] — a block layout like Fig. 2/5/6: macros, cell
//!   positions per tier, and the 3D vias (TSV landing pads vs F2F via
//!   dots).
//!
//! Output is plain SVG text; callers write it wherever they like.

use foldic_geom::{Rect, Tier};
use foldic_netlist::{Block, BlockKind, Design};
use foldic_route::ViaPlacement;
use foldic_tech::Technology;
use std::fmt::Write as _;

/// Fill colour per block kind (Fig. 8 palette-ish).
fn kind_color(kind: BlockKind) -> &'static str {
    match kind {
        BlockKind::Spc => "#e4572e",
        BlockKind::L2d => "#17bebb",
        BlockKind::L2t => "#76b041",
        BlockKind::L2b => "#ffc914",
        BlockKind::Ccx => "#a4036f",
        BlockKind::Mcu => "#2e86ab",
        BlockKind::Mac | BlockKind::Rdp | BlockKind::Tds | BlockKind::Rtx => "#6c756b",
        _ => "#c5c3c6",
    }
}

fn svg_header(out: &mut String, w: f64, h: f64) {
    let _ = writeln!(
        out,
        r##"<svg xmlns="http://www.w3.org/2000/svg" viewBox="0 0 {w:.0} {h:.0}" font-family="monospace">"##
    );
    let _ = writeln!(
        out,
        r##"<rect x="0" y="0" width="{w:.0}" height="{h:.0}" fill="#fafafa"/>"##
    );
}

/// Renders the floorplanned `design` as one SVG panel per die.
///
/// `scale` maps µm to SVG units (e.g. `0.05`); the panels sit side by
/// side with a margin.
pub fn render_chip_svg(design: &Design, die: Rect, scale: f64) -> String {
    let pw = die.width() * scale;
    let ph = die.height() * scale;
    let margin = 24.0;
    let total_w = 2.0 * pw + 3.0 * margin;
    let total_h = ph + 2.0 * margin + 16.0;
    let mut out = String::new();
    svg_header(&mut out, total_w, total_h);
    for tier in Tier::ALL {
        let x0 = margin + tier.index() as f64 * (pw + margin);
        let y0 = margin;
        let _ = writeln!(
            out,
            r##"<rect x="{x0:.1}" y="{y0:.1}" width="{pw:.1}" height="{ph:.1}" fill="none" stroke="#333" stroke-width="1"/>"##
        );
        let _ = writeln!(
            out,
            r##"<text x="{x0:.1}" y="{:.1}" font-size="12">{tier}</text>"##,
            y0 + ph + 14.0
        );
        for (_, b) in design.blocks() {
            let on_tier = b.folded || b.tier == tier;
            if !on_tier {
                continue;
            }
            let r = b.chip_rect();
            let x = x0 + (r.llx - die.llx) * scale;
            // SVG y grows downward: flip
            let y = y0 + (die.ury - r.ury) * scale;
            let w = r.width() * scale;
            let h = r.height() * scale;
            let color = kind_color(b.kind);
            let dash = if b.folded {
                r##" stroke-dasharray="3,2""##
            } else {
                ""
            };
            let _ = writeln!(
                out,
                r##"<rect x="{x:.1}" y="{y:.1}" width="{w:.1}" height="{h:.1}" fill="{color}" fill-opacity="0.75" stroke="#222" stroke-width="0.6"{dash}/>"##
            );
            if w > 14.0 && h > 5.0 {
                let _ = writeln!(
                    out,
                    r##"<text x="{:.1}" y="{:.1}" font-size="8" text-anchor="middle">{}</text>"##,
                    x + w / 2.0,
                    y + h / 2.0 + 3.0,
                    b.name
                );
            }
        }
    }
    let _ = writeln!(out, "</svg>");
    out
}

/// Renders one block's layout: macros as outlined rectangles, cells as
/// per-tier dots, vias as markers (squares for TSV landing pads, dots for
/// F2F vias), per die panel.
pub fn render_block_svg(
    block: &Block,
    tech: &Technology,
    vias: Option<&ViaPlacement>,
    scale: f64,
) -> String {
    let o = block.outline;
    let pw = o.width() * scale;
    let ph = o.height() * scale;
    let margin = 20.0;
    let panels = if block.folded { 2 } else { 1 };
    let total_w = panels as f64 * (pw + margin) + margin;
    let total_h = ph + 2.0 * margin + 14.0;
    let mut out = String::new();
    svg_header(&mut out, total_w, total_h);
    let flip_y = |y: f64| margin + (o.ury - y) * scale;
    for panel in 0..panels {
        let tier = Tier::from_index(panel);
        let x0 = margin + panel as f64 * (pw + margin);
        let _ = writeln!(
            out,
            r##"<rect x="{x0:.1}" y="{margin:.1}" width="{pw:.1}" height="{ph:.1}" fill="none" stroke="#333"/>"##
        );
        let _ = writeln!(
            out,
            r##"<text x="{x0:.1}" y="{:.1}" font-size="11">{} {}</text>"##,
            margin + ph + 12.0,
            block.name,
            if block.folded {
                tier.to_string()
            } else {
                String::new()
            }
        );
        for (_, inst) in block.netlist.insts() {
            if block.folded && inst.tier != tier {
                continue;
            }
            let x = x0 + (inst.pos.x - o.llx) * scale;
            let y = flip_y(inst.pos.y);
            if inst.master.is_macro() {
                let r = inst.rect(tech);
                let _ = writeln!(
                    out,
                    r##"<rect x="{:.1}" y="{:.1}" width="{:.1}" height="{:.1}" fill="#d9e2ec" stroke="#486581" stroke-width="0.8"/>"##,
                    x0 + (r.llx - o.llx) * scale,
                    flip_y(r.ury),
                    r.width() * scale,
                    r.height() * scale,
                );
            } else {
                let color = if block.folded && tier == Tier::Top {
                    "#2bb3c0"
                } else {
                    "#f2c14e"
                };
                let _ = writeln!(
                    out,
                    r##"<circle cx="{x:.1}" cy="{y:.1}" r="0.7" fill="{color}"/>"##
                );
            }
        }
        if let Some(vp) = vias {
            for via in vp.iter() {
                let x = x0 + (via.pos.x - o.llx) * scale;
                let y = flip_y(via.pos.y);
                match vp.kind() {
                    foldic_tech::Via3dKind::Tsv => {
                        let s = (tech.tsv.pitch_um * scale).max(1.5);
                        let _ = writeln!(
                            out,
                            r##"<rect x="{:.1}" y="{:.1}" width="{s:.1}" height="{s:.1}" fill="#1b4965" fill-opacity="0.85"/>"##,
                            x - s / 2.0,
                            y - s / 2.0,
                        );
                    }
                    foldic_tech::Via3dKind::F2fVia => {
                        let _ = writeln!(
                            out,
                            r##"<circle cx="{x:.1}" cy="{y:.1}" r="1.1" fill="#ffb400"/>"##
                        );
                    }
                }
            }
        }
    }
    let _ = writeln!(out, "</svg>");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::folding::{fold_block, FoldConfig};
    use foldic_t2::T2Config;
    use foldic_tech::BondingStyle;

    #[test]
    fn chip_svg_contains_all_blocks() {
        let (mut design, tech) = T2Config::tiny().generate();
        let plan = foldic_floorplan::floorplan_t2(
            &mut design,
            foldic_floorplan::FloorplanStyle::Flat2d,
            &tech,
        );
        let svg = render_chip_svg(&design, plan.die, 0.12);
        assert!(svg.starts_with("<svg"));
        assert!(svg.trim_end().ends_with("</svg>"));
        for name in ["spc0", "ccx", "l2d7", "rtx"] {
            assert!(svg.contains(name), "{name} missing");
        }
        // both dies drawn even for 2D (the top panel is empty)
        assert_eq!(svg.matches("die_bot").count(), 1);
    }

    #[test]
    fn folded_block_svg_shows_both_tiers_and_vias() {
        let (mut design, tech) = T2Config::tiny().generate();
        let id = design.find_block("l2t0").unwrap();
        let folded = fold_block(
            design.block_mut(id),
            &tech,
            &FoldConfig {
                bonding: BondingStyle::FaceToFace,
                placer: foldic_place::PlacerConfig::fast(),
                ..FoldConfig::default()
            },
        )
        .unwrap();
        let svg = render_block_svg(design.block(id), &tech, Some(&folded.vias), 0.2);
        assert!(svg.contains("die_bot") && svg.contains("die_top"));
        // F2F vias rendered as dots
        assert!(svg.matches("#ffb400").count() >= folded.vias.len().min(1));
        // macros rendered
        assert!(svg.contains("#d9e2ec"));
    }

    #[test]
    fn svg_is_balanced_markup() {
        let (mut design, tech) = T2Config::tiny().generate();
        let plan = foldic_floorplan::floorplan_t2(
            &mut design,
            foldic_floorplan::FloorplanStyle::CoreCache,
            &tech,
        );
        let svg = render_chip_svg(&design, plan.die, 0.05);
        // every opened tag family is closed or self-closing
        assert_eq!(svg.matches("<svg").count(), svg.matches("</svg>").count());
        let opens = svg.matches("<rect").count()
            + svg.matches("<circle").count()
            + svg.matches("<text").count();
        let closes = svg.matches("/>").count() + svg.matches("</text>").count();
        assert_eq!(opens, closes);
    }
}
