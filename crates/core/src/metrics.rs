//! Design metrics and comparisons — the rows of the paper's tables.

use foldic_obs::json::Json;
use foldic_power::PowerReport;
use std::fmt;

/// Everything the paper's tables report about one design (a block or a
/// full chip).
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct DesignMetrics {
    /// Footprint (die outline area) in µm². For a 3D design this is the
    /// area of *one* die, matching the paper's usage.
    pub footprint_um2: f64,
    /// Total routed wirelength in µm.
    pub wirelength_um: f64,
    /// Standard-cell instance count.
    pub num_cells: usize,
    /// Repeater (BUF/CLKBUF) count.
    pub num_buffers: usize,
    /// Hard-macro count.
    pub num_macros: usize,
    /// HVT cell count (dual-Vth designs).
    pub num_hvt: usize,
    /// TSV or F2F-via count (3D designs).
    pub num_3d_connections: usize,
    /// Wires longer than the 100×-cell-height threshold.
    pub long_wires: usize,
    /// Power breakdown.
    pub power: PowerReport,
    /// Worst negative slack in ps (0 when timing met).
    pub wns_ps: f64,
    /// `true` when the flow failed on this design and the numbers are
    /// analytical estimates instead of sign-off results. A roll-up
    /// absorbing a degraded block is itself marked degraded.
    pub degraded: bool,
}

impl DesignMetrics {
    /// Footprint in mm².
    pub fn footprint_mm2(&self) -> f64 {
        self.footprint_um2 * 1e-6
    }

    /// Wirelength in metres.
    pub fn wirelength_m(&self) -> f64 {
        self.wirelength_um * 1e-6
    }

    /// HVT share of the cell count.
    pub fn hvt_fraction(&self) -> f64 {
        if self.num_cells > 0 {
            self.num_hvt as f64 / self.num_cells as f64
        } else {
            0.0
        }
    }

    /// Accumulates another design's metrics (for chip-level roll-ups;
    /// footprint is *not* summed — set it explicitly).
    pub fn absorb(&mut self, other: &DesignMetrics) {
        self.wirelength_um += other.wirelength_um;
        self.num_cells += other.num_cells;
        self.num_buffers += other.num_buffers;
        self.num_macros += other.num_macros;
        self.num_hvt += other.num_hvt;
        self.num_3d_connections += other.num_3d_connections;
        self.long_wires += other.long_wires;
        self.power += other.power;
        self.wns_ps = self.wns_ps.max(other.wns_ps);
        self.degraded |= other.degraded;
    }

    /// JSON form used by the checkpoint store.
    pub fn to_json(&self) -> Json {
        Json::obj([
            ("footprint_um2".to_owned(), Json::Num(self.footprint_um2)),
            ("wirelength_um".to_owned(), Json::Num(self.wirelength_um)),
            ("num_cells".to_owned(), Json::Num(self.num_cells as f64)),
            ("num_buffers".to_owned(), Json::Num(self.num_buffers as f64)),
            ("num_macros".to_owned(), Json::Num(self.num_macros as f64)),
            ("num_hvt".to_owned(), Json::Num(self.num_hvt as f64)),
            (
                "num_3d_connections".to_owned(),
                Json::Num(self.num_3d_connections as f64),
            ),
            ("long_wires".to_owned(), Json::Num(self.long_wires as f64)),
            ("power_cell_uw".to_owned(), Json::Num(self.power.cell_uw)),
            (
                "power_net_wire_uw".to_owned(),
                Json::Num(self.power.net_wire_uw),
            ),
            (
                "power_net_pin_uw".to_owned(),
                Json::Num(self.power.net_pin_uw),
            ),
            (
                "power_leakage_uw".to_owned(),
                Json::Num(self.power.leakage_uw),
            ),
            ("wns_ps".to_owned(), Json::Num(self.wns_ps)),
            (
                "degraded".to_owned(),
                Json::Num(if self.degraded { 1.0 } else { 0.0 }),
            ),
        ])
    }

    /// Parses the JSON form written by [`Self::to_json`].
    ///
    /// # Errors
    ///
    /// Returns a message when a numeric field is missing or malformed.
    pub fn from_json(json: &Json) -> Result<Self, String> {
        let num = |key: &str| -> Result<f64, String> {
            json.get(key)
                .and_then(Json::as_f64)
                .ok_or_else(|| format!("design metrics missing `{key}`"))
        };
        Ok(Self {
            footprint_um2: num("footprint_um2")?,
            wirelength_um: num("wirelength_um")?,
            num_cells: num("num_cells")? as usize,
            num_buffers: num("num_buffers")? as usize,
            num_macros: num("num_macros")? as usize,
            num_hvt: num("num_hvt")? as usize,
            num_3d_connections: num("num_3d_connections")? as usize,
            long_wires: num("long_wires")? as usize,
            power: PowerReport {
                cell_uw: num("power_cell_uw")?,
                net_wire_uw: num("power_net_wire_uw")?,
                net_pin_uw: num("power_net_pin_uw")?,
                leakage_uw: num("power_leakage_uw")?,
            },
            wns_ps: num("wns_ps")?,
            degraded: num("degraded")? != 0.0,
        })
    }
}

/// Percentage delta of `new` against `base` (negative = reduction), the
/// number every table's parenthesis reports.
pub fn pct(base: f64, new: f64) -> f64 {
    if base == 0.0 {
        0.0
    } else {
        (new - base) / base * 100.0
    }
}

/// A named baseline/candidate pair with formatted percentage deltas.
#[derive(Debug, Clone)]
pub struct Comparison {
    /// Label of the baseline design (e.g. `"2D"`).
    pub base_label: String,
    /// Label of the compared design (e.g. `"3D (core/cache)"`).
    pub new_label: String,
    /// Baseline metrics.
    pub base: DesignMetrics,
    /// Compared metrics.
    pub new: DesignMetrics,
}

impl Comparison {
    /// Builds a comparison.
    pub fn new(
        base_label: impl Into<String>,
        base: DesignMetrics,
        new_label: impl Into<String>,
        new: DesignMetrics,
    ) -> Self {
        Self {
            base_label: base_label.into(),
            new_label: new_label.into(),
            base,
            new,
        }
    }

    /// Footprint delta in percent.
    pub fn footprint_pct(&self) -> f64 {
        pct(self.base.footprint_um2, self.new.footprint_um2)
    }

    /// Wirelength delta in percent.
    pub fn wirelength_pct(&self) -> f64 {
        pct(self.base.wirelength_um, self.new.wirelength_um)
    }

    /// Cell-count delta in percent.
    pub fn cells_pct(&self) -> f64 {
        pct(self.base.num_cells as f64, self.new.num_cells as f64)
    }

    /// Buffer-count delta in percent.
    pub fn buffers_pct(&self) -> f64 {
        pct(self.base.num_buffers as f64, self.new.num_buffers as f64)
    }

    /// Total-power delta in percent.
    pub fn total_power_pct(&self) -> f64 {
        pct(self.base.power.total_uw(), self.new.power.total_uw())
    }

    /// Cell-power delta in percent.
    pub fn cell_power_pct(&self) -> f64 {
        pct(self.base.power.cell_uw, self.new.power.cell_uw)
    }

    /// Net-power delta in percent.
    pub fn net_power_pct(&self) -> f64 {
        pct(self.base.power.net_uw(), self.new.power.net_uw())
    }

    /// Leakage delta in percent.
    pub fn leakage_pct(&self) -> f64 {
        pct(self.base.power.leakage_uw, self.new.power.leakage_uw)
    }
}

impl fmt::Display for Comparison {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "{:<22} {:>14} {:>14} {:>9}",
            "", self.base_label, self.new_label, "diff"
        )?;
        let row = |f: &mut fmt::Formatter<'_>, name: &str, b: f64, n: f64, unit: &str| {
            writeln!(
                f,
                "{name:<22} {b:>14.3} {n:>14.3} {d:>+8.1}%  {unit}",
                d = pct(b, n)
            )
        };
        row(
            f,
            "footprint",
            self.base.footprint_mm2(),
            self.new.footprint_mm2(),
            "mm^2",
        )?;
        row(
            f,
            "wirelength",
            self.base.wirelength_m(),
            self.new.wirelength_m(),
            "m",
        )?;
        row(
            f,
            "# cells",
            self.base.num_cells as f64,
            self.new.num_cells as f64,
            "",
        )?;
        row(
            f,
            "# buffers",
            self.base.num_buffers as f64,
            self.new.num_buffers as f64,
            "",
        )?;
        row(
            f,
            "total power",
            self.base.power.total_w(),
            self.new.power.total_w(),
            "W",
        )?;
        row(
            f,
            "cell power",
            self.base.power.cell_uw * 1e-6,
            self.new.power.cell_uw * 1e-6,
            "W",
        )?;
        row(
            f,
            "net power",
            self.base.power.net_uw() * 1e-6,
            self.new.power.net_uw() * 1e-6,
            "W",
        )?;
        row(
            f,
            "leakage power",
            self.base.power.leakage_uw * 1e-6,
            self.new.power.leakage_uw * 1e-6,
            "W",
        )?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn m(cells: usize, power: f64) -> DesignMetrics {
        DesignMetrics {
            footprint_um2: 100.0,
            wirelength_um: 1000.0,
            num_cells: cells,
            power: PowerReport {
                cell_uw: power,
                net_wire_uw: power / 2.0,
                net_pin_uw: power / 4.0,
                leakage_uw: power / 4.0,
            },
            ..Default::default()
        }
    }

    #[test]
    fn pct_signs() {
        assert_eq!(pct(100.0, 90.0), -10.0);
        assert_eq!(pct(100.0, 110.0), 10.0);
        assert_eq!(pct(0.0, 5.0), 0.0);
    }

    #[test]
    fn comparison_deltas() {
        let c = Comparison::new("2D", m(1000, 100.0), "3D", m(900, 80.0));
        assert_eq!(c.cells_pct(), -10.0);
        assert!((c.total_power_pct() + 20.0).abs() < 1e-9);
        let rendered = c.to_string();
        assert!(rendered.contains("total power"));
        assert!(rendered.contains("-20.0%"));
    }

    #[test]
    fn absorb_accumulates() {
        let mut total = DesignMetrics::default();
        total.absorb(&m(10, 1.0));
        total.absorb(&m(20, 2.0));
        assert_eq!(total.num_cells, 30);
        assert!((total.power.cell_uw - 3.0).abs() < 1e-12);
        assert_eq!(total.footprint_um2, 0.0, "footprint is never summed");
    }

    #[test]
    fn degraded_flag_taints_rollups_and_roundtrips() {
        let mut clean = m(10, 1.0);
        clean.wns_ps = -3.25;
        let mut bad = m(5, 0.5);
        bad.degraded = true;
        let mut total = DesignMetrics::default();
        total.absorb(&clean);
        assert!(!total.degraded);
        total.absorb(&bad);
        assert!(total.degraded, "absorb must propagate degradation");

        let back = DesignMetrics::from_json(&clean.to_json()).unwrap();
        assert_eq!(back, clean, "metrics JSON must round-trip exactly");
        assert!(DesignMetrics::from_json(&bad.to_json()).unwrap().degraded);
    }
}
