//! The block-level physical design flow of §2.2.
//!
//! For each block: mixed-size placement, wiring analysis, STA against the
//! chip-level port budgets, iterative timing optimization (buffer
//! insertion, upsizing), power optimization (downsizing, optional HVT
//! swap), and power sign-off.

use crate::metrics::DesignMetrics;
use foldic_fault::deadline::stage_scope;
use foldic_fault::{fault_point, FlowError, FlowStage};
use foldic_netlist::{Block, InstMaster, Netlist};
use foldic_opt::{optimize_block_with_vias, OptConfig, OptStats};
use foldic_place::{place_block, PlacerConfig};
use foldic_power::{analyze_block, PowerConfig};
use foldic_route::{BlockWiring, ViaPlacement};
use foldic_tech::{BondingStyle, CellKind, RoutingPolicy, Technology, VthClass};
use foldic_timing::{analyze, StaConfig, TimingBudgets};

/// Configuration of the block flow.
#[derive(Debug, Clone)]
pub struct FlowConfig {
    /// Placer settings.
    pub placer: PlacerConfig,
    /// Optimizer settings (layer/via fields are overwritten per block).
    pub opt: OptConfig,
    /// Bonding style of the stack the block lives in.
    pub bonding: BondingStyle,
    /// Enable the dual-Vth pass.
    pub dual_vth: bool,
    /// Routing-layer policy.
    pub policy: RoutingPolicy,
    /// Which retry attempt this configuration belongs to (`0` = the
    /// first run). Addressed by the fault-injection harness and bumped
    /// by [`Self::relaxed_for_retry`].
    pub retry_attempt: u32,
}

impl FlowConfig {
    /// Fast settings for tests.
    pub fn fast() -> Self {
        Self {
            placer: PlacerConfig::fast(),
            ..Self::default()
        }
    }

    /// The configuration a retry runs under: attempt `0` is this config
    /// unchanged; later attempts progressively relax the expensive
    /// knobs (fewer placer iterations, fewer optimization rounds) so a
    /// numerically marginal block gets an easier, different trajectory.
    pub fn relaxed_for_retry(&self, attempt: u32) -> Self {
        let mut cfg = self.clone();
        cfg.retry_attempt = attempt;
        if attempt > 0 {
            let a = attempt as usize;
            cfg.placer.iterations = cfg.placer.iterations.saturating_sub(a).max(2);
            cfg.opt.rounds = cfg.opt.rounds.saturating_sub(a).max(1);
        }
        cfg
    }
}

impl Default for FlowConfig {
    fn default() -> Self {
        Self {
            placer: PlacerConfig::quality(),
            opt: OptConfig::default(),
            bonding: BondingStyle::FaceToBack,
            dual_vth: false,
            policy: RoutingPolicy::dac14(),
            retry_attempt: 0,
        }
    }
}

/// Outcome of running the flow on one block.
#[derive(Debug, Clone)]
pub struct BlockResult {
    /// Sign-off metrics.
    pub metrics: DesignMetrics,
    /// What the optimizer did.
    pub opt: OptStats,
}

/// Effective routing-layer ceiling for STA/power inside a block.
pub fn block_max_layer(block: &Block, bonding: BondingStyle, policy: &RoutingPolicy) -> usize {
    if block.routing_hungry() {
        return policy.hungry_max_layer;
    }
    if block.folded {
        // F2B folded blocks mix an M7 bottom die and an M9 top die; F2F
        // folded blocks route through M9 on both dies
        return match bonding {
            BondingStyle::FaceToBack => policy.block_max_layer + 1,
            BondingStyle::FaceToFace => policy.hungry_max_layer,
        };
    }
    policy.block_max_layer
}

/// Collects [`DesignMetrics`] from a finished (placed + optimized) block.
pub fn collect_metrics(
    netlist: &Netlist,
    block: &Block,
    tech: &Technology,
    wiring: &BlockWiring,
    vias: Option<&ViaPlacement>,
    power: foldic_power::PowerReport,
    wns_ps: f64,
) -> DesignMetrics {
    let mut m = DesignMetrics {
        footprint_um2: block.outline.area(),
        wirelength_um: wiring.total_um,
        long_wires: wiring.long_wires,
        num_3d_connections: vias.map(|v| v.len()).unwrap_or(0),
        power,
        wns_ps,
        ..Default::default()
    };
    for (_, inst) in netlist.insts() {
        match inst.master {
            InstMaster::Cell(id) => {
                let master = tech.cells.master(id);
                m.num_cells += 1;
                if matches!(master.kind, CellKind::Buf | CellKind::ClkBuf) {
                    m.num_buffers += 1;
                }
                if master.vth == VthClass::Hvt {
                    m.num_hvt += 1;
                }
            }
            InstMaster::Macro(_) => m.num_macros += 1,
        }
    }
    m
}

/// Runs the full flow on an *unfolded* block in place: placement,
/// optimization and sign-off. The block's netlist is mutated (placement,
/// buffers, sizing, Vth).
///
/// # Errors
///
/// Returns [`FlowError`] when the block fails validation at entry
/// ([`FaultCause::Invalid`](foldic_fault::FaultCause::Invalid), not
/// retryable) or when a stage fails — organically or through an
/// installed [`foldic_fault::FaultPlan`]. On error the block may be
/// partially mutated; the caller restores it before retrying.
pub fn run_block_flow(
    block: &mut Block,
    tech: &Technology,
    budgets: &TimingBudgets,
    cfg: &FlowConfig,
) -> Result<BlockResult, FlowError> {
    let _span = foldic_obs::span!(
        "block_flow",
        block = block.name.as_str(),
        folded = block.folded,
    );
    let name = block.name.clone();
    let attempt = cfg.retry_attempt;

    // 0. validation: a malformed block fails the same way on every
    //    attempt, so this is the one non-recoverable failure
    {
        let _scope = stage_scope(FlowStage::Validate, &name, attempt)?;
        fault_point(FlowStage::Validate, &name, attempt)?;
        block.validate(tech).map_err(|e| {
            FlowError::invalid(FlowStage::Validate, e.to_string()).with_block(&name)
        })?;
    }

    let outline = block.outline;
    let max_layer = block_max_layer(block, cfg.bonding, &cfg.policy);

    // 1. placement
    {
        let _scope = stage_scope(FlowStage::Place, &name, attempt)?;
        fault_point(FlowStage::Place, &name, attempt)?;
        foldic_exec::profile::stage("place", || {
            place_block(&mut block.netlist, tech, outline, &cfg.placer)
        })
        .map_err(|e| e.with_block(&name))?;
    }

    // 2. timing + power optimization
    let mut opt_cfg = cfg.opt.clone();
    opt_cfg.max_layer = max_layer;
    opt_cfg.via_kind = None;
    opt_cfg.dual_vth = cfg.dual_vth;
    let opt = {
        let _scope = stage_scope(FlowStage::Opt, &name, attempt)?;
        fault_point(FlowStage::Opt, &name, attempt)?;
        foldic_exec::profile::stage("opt", || {
            optimize_block_with_vias(&mut block.netlist, tech, budgets, &opt_cfg, None)
        })
        .map_err(|e| e.with_block(&name))?
    };

    // 3. sign-off
    let wiring = {
        let _scope = stage_scope(FlowStage::Route, &name, attempt)?;
        fault_point(FlowStage::Route, &name, attempt)?;
        foldic_exec::profile::stage("route", || {
            BlockWiring::analyze(&block.netlist, tech, opt_cfg.detour, None)
        })
        .map_err(|e| e.with_block(&name))?
    };
    let sta = {
        let _scope = stage_scope(FlowStage::Sta, &name, attempt)?;
        fault_point(FlowStage::Sta, &name, attempt)?;
        foldic_exec::profile::stage("sta", || {
            analyze(
                &block.netlist,
                tech,
                &wiring,
                budgets,
                &StaConfig {
                    max_layer,
                    via_kind: None,
                },
            )
        })
        .map_err(|e| e.with_block(&name))?
    };
    let mut pw_cfg = PowerConfig::for_block(block);
    pw_cfg.max_layer = max_layer;
    let power = {
        let _scope = stage_scope(FlowStage::Power, &name, attempt)?;
        fault_point(FlowStage::Power, &name, attempt)?;
        foldic_exec::profile::stage("power", || {
            analyze_block(&block.netlist, tech, &wiring, &pw_cfg)
        })
        .map_err(|e| e.with_block(&name))?
    };
    let metrics = collect_metrics(
        &block.netlist,
        block,
        tech,
        &wiring,
        None,
        power,
        sta.wns_ps,
    );
    if foldic_obs::metrics::is_enabled() {
        foldic_obs::metrics::add("flow.blocks", 1);
        foldic_obs::metrics::observe("flow.block_wns_ps", metrics.wns_ps);
        foldic_obs::metrics::observe("flow.block_power_uw", metrics.power.total_uw());
        foldic_obs::metrics::observe("flow.block_wirelength_um", metrics.wirelength_um);
    }
    Ok(BlockResult { metrics, opt })
}

#[cfg(test)]
mod tests {
    use super::*;
    use foldic_t2::T2Config;

    #[test]
    fn flow_produces_consistent_metrics() {
        let (mut design, tech) = T2Config::tiny().generate();
        let id = design.find_block("mcu0").unwrap();
        let block = design.block_mut(id);
        let budgets = TimingBudgets::relaxed(&block.netlist, &tech);
        let before_cells = block
            .netlist
            .insts()
            .filter(|(_, i)| !i.master.is_macro())
            .count();
        let result = run_block_flow(block, &tech, &budgets, &FlowConfig::fast()).unwrap();
        assert!(result.metrics.num_cells >= before_cells, "buffers only add");
        assert!(result.metrics.power.total_uw() > 0.0);
        assert!(result.metrics.wirelength_um > 0.0);
        assert_eq!(result.metrics.num_3d_connections, 0);
        block.netlist.check().expect("flow keeps netlist sound");
    }

    #[test]
    fn dvt_flow_reports_hvt_cells() {
        let (mut design, tech) = T2Config::tiny().generate();
        let id = design.find_block("ccu").unwrap();
        let block = design.block_mut(id);
        let budgets = TimingBudgets::relaxed(&block.netlist, &tech);
        let mut cfg = FlowConfig::fast();
        cfg.dual_vth = true;
        let result = run_block_flow(block, &tech, &budgets, &cfg).unwrap();
        assert!(result.metrics.num_hvt > 0);
        assert!(result.metrics.hvt_fraction() > 0.3);
    }

    #[test]
    fn layer_policy_follows_block_and_bonding() {
        let (mut design, tech) = T2Config::tiny().generate();
        let policy = RoutingPolicy::dac14();
        let _ = tech;
        let spc = design.find_block("spc0").unwrap();
        assert_eq!(
            block_max_layer(design.block(spc), BondingStyle::FaceToBack, &policy),
            9
        );
        let mcu = design.find_block("mcu0").unwrap();
        assert_eq!(
            block_max_layer(design.block(mcu), BondingStyle::FaceToBack, &policy),
            7
        );
        design.block_mut(mcu).folded = true;
        assert_eq!(
            block_max_layer(design.block(mcu), BondingStyle::FaceToBack, &policy),
            8
        );
        assert_eq!(
            block_max_layer(design.block(mcu), BondingStyle::FaceToFace, &policy),
            9
        );
    }
}
