//! Full-chip assembly properties across all five styles.

use foldic::fullchip::chip_budgets;
use foldic::prelude::*;
use foldic_floorplan::{floorplan_t2, FloorplanStyle};

#[test]
fn style_enum_is_coherent() {
    assert_eq!(DesignStyle::ALL.len(), 5);
    assert!(!DesignStyle::Flat2d.is_3d());
    assert!(!DesignStyle::Flat2d.folded());
    assert!(DesignStyle::FoldedF2f.folded());
    assert_eq!(DesignStyle::FoldedF2f.bonding(), BondingStyle::FaceToFace);
    assert_eq!(DesignStyle::FoldedF2b.bonding(), BondingStyle::FaceToBack);
    assert_eq!(DesignStyle::CoreCache.bonding(), BondingStyle::FaceToBack);
    // labels are unique
    let labels: std::collections::HashSet<&str> =
        DesignStyle::ALL.iter().map(|s| s.label()).collect();
    assert_eq!(labels.len(), 5);
}

#[test]
fn budgets_stay_inside_the_clock_period() {
    let (mut design, tech) = T2Config::tiny().generate();
    let plan = floorplan_t2(&mut design, FloorplanStyle::Flat2d, &tech);
    let budgets = chip_budgets(&design, &plan, &tech);
    for (id, b) in &budgets {
        let block = design.block(*id);
        for (pid, port) in block.netlist.ports() {
            let period = port.domain.period_ps(&tech);
            let arr = b.input_arrival_ps[pid.index()];
            let pname = block.netlist.name_of(port.name);
            assert!(arr >= 0.0 && arr <= 0.9 * period, "{pname}: arrival {arr}");
            let req = b.output_required_ps[pid.index()];
            assert!(req > 0.1 * period, "{pname}: required {req}");
            assert!(req <= period, "{pname}: required {req} beyond period");
        }
    }
}

#[test]
fn folded_styles_report_both_via_classes() {
    let (mut design, tech) = T2Config::tiny().generate();
    let r = run_fullchip(
        &mut design,
        &tech,
        DesignStyle::FoldedF2f,
        &FullChipConfig::fast(),
    )
    .unwrap();
    assert!(r.intra_block_vias > 0, "folded blocks must carry vias");
    assert!(
        r.chip_vias > 0,
        "folded ports on both dies need chip-level connections"
    );
    assert_eq!(r.chip.num_3d_connections, r.chip_vias + r.intra_block_vias);
    // the five folded types are folded, everything else is not
    for (_, b) in design.blocks() {
        let should_fold = matches!(
            b.kind,
            BlockKind::Spc | BlockKind::Ccx | BlockKind::L2d | BlockKind::L2t | BlockKind::Rtx
        );
        assert_eq!(b.folded, should_fold, "{}", b.name);
    }
}

#[test]
fn folded_chip_beats_plain_stacking_on_power() {
    let (design, tech) = T2Config::tiny().generate();
    let cfg = FullChipConfig::fast();
    let mut d1 = design.clone();
    let stacked = run_fullchip(&mut d1, &tech, DesignStyle::CoreCache, &cfg).unwrap();
    let mut d2 = design.clone();
    let folded = run_fullchip(&mut d2, &tech, DesignStyle::FoldedF2f, &cfg).unwrap();
    assert!(
        folded.chip.power.total_uw() < stacked.chip.power.total_uw(),
        "folding {} must beat stacking {}",
        folded.chip.power.total_uw(),
        stacked.chip.power.total_uw()
    );
}

#[test]
fn over_the_block_blockage_raises_interblock_detour() {
    // F2F folded blocks block M8/M9 on both dies (§6.1): the folded-F2F
    // chip must show a worse inter-block routing picture than plain
    // stacking (more overflowed routes and/or longer wiring).
    let (design, tech) = T2Config::tiny().generate();
    let cfg = FullChipConfig::fast();
    let mut d1 = design.clone();
    let stacked = run_fullchip(&mut d1, &tech, DesignStyle::CoreCache, &cfg).unwrap();
    let mut d2 = design.clone();
    let folded = run_fullchip(&mut d2, &tech, DesignStyle::FoldedF2f, &cfg).unwrap();
    let worse = folded.route_overflow > stacked.route_overflow
        || folded.interblock_detour > stacked.interblock_detour
        || folded.interblock_wl_um > stacked.interblock_wl_um;
    assert!(worse, "F2F folding must tax the over-the-block routing");
}

#[test]
fn dual_vth_fullchip_tracks_rvt_with_less_power() {
    let (design, tech) = T2Config::tiny().generate();
    let mut d1 = design.clone();
    let rvt = run_fullchip(&mut d1, &tech, DesignStyle::Flat2d, &FullChipConfig::fast()).unwrap();
    let mut d2 = design.clone();
    let mut cfg = FullChipConfig::fast();
    cfg.dual_vth = true;
    let dvt = run_fullchip(&mut d2, &tech, DesignStyle::Flat2d, &cfg).unwrap();
    assert!(dvt.chip.num_hvt > 0);
    assert!(dvt.chip.hvt_fraction() > 0.5);
    assert!(dvt.chip.power.total_uw() < rvt.chip.power.total_uw());
    assert!(dvt.chip.power.leakage_uw < rvt.chip.power.leakage_uw);
}
