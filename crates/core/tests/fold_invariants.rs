//! Invariants of the folding flow across strategies and bonding styles.

use foldic::prelude::*;
use foldic_geom::Tier;
use foldic_netlist::InstMaster;
use foldic_place::PlacerConfig;

fn design() -> (Design, Technology) {
    T2Config::tiny().generate()
}

fn fast_fold(strategy: FoldStrategy, bonding: BondingStyle) -> FoldConfig {
    FoldConfig {
        strategy,
        bonding,
        placer: PlacerConfig::fast(),
        ..FoldConfig::default()
    }
}

#[test]
fn every_strategy_produces_a_sound_two_tier_block() {
    let (design, tech) = design();
    let cases: Vec<(&str, FoldStrategy)> = vec![
        ("l2t0", FoldStrategy::MinCut),
        ("l2t0", FoldStrategy::Quality(0.5)),
        ("l2d0", FoldStrategy::MacroRows),
        ("ccx", FoldStrategy::NaturalGroups(vec!["pcx".into()])),
    ];
    for (name, strategy) in cases {
        for bonding in [BondingStyle::FaceToBack, BondingStyle::FaceToFace] {
            let mut d = design.clone();
            let id = d.find_block(name).unwrap();
            let label = format!("{name}/{strategy:?}/{bonding}");
            let folded = fold_block(
                d.block_mut(id),
                &tech,
                &fast_fold(strategy.clone(), bonding),
            )
            .unwrap();
            let block = d.block(id);
            block
                .netlist
                .check()
                .unwrap_or_else(|e| panic!("{label}: {e}"));
            assert!(block.folded, "{label}");
            // both tiers populated
            let mut tiers = [0usize; 2];
            for (_, i) in block.netlist.insts() {
                tiers[i.tier.index()] += 1;
            }
            assert!(tiers[0] > 0 && tiers[1] > 0, "{label}: {tiers:?}");
            // everything inside the folded outline
            for (_, inst) in block.netlist.insts() {
                assert!(
                    block.outline.inflated(2.0).contains(inst.pos),
                    "{label}: {} escaped",
                    block.netlist.name_of(inst.name)
                );
            }
            // vias match tier-crossing nets
            for via in folded.vias.iter() {
                assert!(block.netlist.net_is_3d(via.net), "{label}: via on a 2D net");
                assert!(block.outline.inflated(1.0).contains(via.pos), "{label}");
            }
            // each tier-crossing *signal* net got a via
            let crossing = block
                .netlist
                .net_ids()
                .filter(|&n| block.netlist.net_is_3d(n))
                .count();
            assert!(
                folded.vias.len() <= crossing,
                "{label}: more vias than 3D nets"
            );
            assert!(
                folded.vias.len() * 10 >= crossing * 9,
                "{label}: vias {} for {crossing} 3D nets",
                folded.vias.len()
            );
        }
    }
}

#[test]
fn folded_footprint_tracks_the_bigger_tier() {
    let (design, tech) = design();
    let mut d = design.clone();
    let id = d.find_block("rtx").unwrap();
    let folded = fold_block(
        d.block_mut(id),
        &tech,
        &fast_fold(FoldStrategy::MinCut, BondingStyle::FaceToFace),
    )
    .unwrap();
    let block = d.block(id);
    // per-tier placed area must fit in the outline at sane utilization
    for tier in Tier::ALL {
        let area: f64 = block
            .netlist
            .insts()
            .filter(|(_, i)| i.tier == tier)
            .map(|(_, i)| i.area_um2(&tech))
            .sum();
        assert!(
            area <= block.outline.area(),
            "tier {tier} area {area} exceeds outline {}",
            block.outline.area()
        );
    }
    let _ = folded;
}

#[test]
fn f2b_outline_grows_with_via_count() {
    let (design, tech) = design();
    let fp_of = |q: f64| {
        let mut d = design.clone();
        let id = d.find_block("l2t0").unwrap();
        let f = fold_block(
            d.block_mut(id),
            &tech,
            &fast_fold(FoldStrategy::Quality(q), BondingStyle::FaceToBack),
        )
        .unwrap();
        (f.metrics.num_3d_connections, d.block(id).outline.area())
    };
    let (v_min, fp_min) = fp_of(1.0);
    let (v_max, fp_max) = fp_of(0.0);
    assert!(v_max > v_min);
    assert!(
        fp_max > fp_min,
        "more TSVs must grow the die: {fp_min} -> {fp_max}"
    );
}

#[test]
fn macro_rows_fold_keeps_macros_legal_and_disjoint() {
    let (design, tech) = design();
    let mut d = design.clone();
    let id = d.find_block("l2d0").unwrap();
    let _ = fold_block(
        d.block_mut(id),
        &tech,
        &FoldConfig {
            strategy: FoldStrategy::MacroRows,
            aspect: FoldAspect::KeepWidth,
            bonding: BondingStyle::FaceToFace,
            placer: PlacerConfig::fast(),
            ..FoldConfig::default()
        },
    )
    .unwrap();
    let block = d.block(id);
    for tier in Tier::ALL {
        let rects: Vec<_> = block
            .netlist
            .insts()
            .filter(|(_, i)| i.master.is_macro() && i.tier == tier)
            .map(|(_, i)| i.rect(&tech))
            .collect();
        assert_eq!(rects.len(), 16);
        for (k, a) in rects.iter().enumerate() {
            assert!(block.outline.inflated(1.0).contains_rect(*a));
            for b in &rects[k + 1..] {
                assert!(!a.inflated(-0.5).overlaps(*b), "macros overlap on {tier}");
            }
        }
    }
}

#[test]
fn second_level_fold_respects_unfolded_fub_assignment() {
    let (design, tech) = design();
    let mut d = design.clone();
    let id = d.find_block("spc0").unwrap();
    let _ = fold_spc_second_level(
        d.block_mut(id),
        &tech,
        &fast_fold(FoldStrategy::MinCut, BondingStyle::FaceToFace),
    )
    .unwrap();
    let nl = &d.block(id).netlist;
    // unfolded FUBs live on exactly one tier
    for name in ["pku", "dec", "mmu", "gkt"] {
        let gid = (0..nl.num_groups())
            .map(|i| foldic_netlist::GroupId(i as u32))
            .find(|&g| nl.group_name(g) == name)
            .unwrap();
        // clock-tree buffers are re-clustered across tiers after the
        // fold (per-tier CTS), so only signal cells are checked
        let tiers: std::collections::HashSet<Tier> = nl
            .insts()
            .filter(|(_, i)| {
                i.group == Some(gid)
                    && match i.master {
                        InstMaster::Cell(m) => {
                            tech.cells.master(m).kind != foldic_tech::CellKind::ClkBuf
                        }
                        InstMaster::Macro(_) => false,
                    }
            })
            .map(|(_, i)| i.tier)
            .collect();
        assert_eq!(tiers.len(), 1, "FUB {name} wrongly split: {tiers:?}");
    }
}

#[test]
fn fold_then_render_produces_consistent_panels() {
    let (design, tech) = design();
    let mut d = design.clone();
    let id = d.find_block("mcu0").unwrap();
    let folded = fold_block(
        d.block_mut(id),
        &tech,
        &fast_fold(FoldStrategy::MinCut, BondingStyle::FaceToBack),
    )
    .unwrap();
    let svg = foldic::render_block_svg(d.block(id), &tech, Some(&folded.vias), 0.3);
    assert!(svg.contains("die_bot") && svg.contains("die_top"));
    // TSVs drawn as dark squares
    assert!(svg.contains("#1b4965"));
}
