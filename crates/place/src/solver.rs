//! Quadratic wirelength system and conjugate-gradient solver.

use foldic_geom::{Point, Rect};
use foldic_netlist::{InstId, Netlist, PinRef};

/// Nets up to this many pins enter the system as cliques; larger nets use
/// centroid (star) springs recomputed every solve.
const CLIQUE_LIMIT: usize = 8;

/// The quadratic placement system: static clique edges plus per-solve
/// centroid springs and spreading anchors.
#[derive(Debug)]
pub struct QuadraticSystem {
    movable: Vec<InstId>,
    var_of: Vec<Option<u32>>,
    /// movable–movable springs `(a, b, w)`
    edges: Vec<(u32, u32, f64)>,
    /// movable–fixed springs `(a, fixed position, w)`
    fixed_springs: Vec<(u32, Point, f64)>,
    /// star nets: pin lists for centroid springs
    star_nets: Vec<(Vec<PinRef>, f64)>,
    /// adjacency (CSR-ish) built from `edges`
    nbr_index: Vec<Vec<(u32, f64)>>,
}

impl QuadraticSystem {
    /// Builds the system from the netlist topology. Clock nets are
    /// excluded (they are routed as balanced trees, not optimized for
    /// wirelength).
    pub fn build(netlist: &Netlist, _outline: Rect) -> Self {
        let n = netlist.num_insts();
        let mut var_of = vec![None; n];
        let mut movable = Vec::new();
        for (id, inst) in netlist.insts() {
            if !inst.fixed {
                var_of[id.index()] = Some(movable.len() as u32);
                movable.push(id);
            }
        }
        let mut edges = Vec::new();
        let mut fixed_springs = Vec::new();
        let mut star_nets = Vec::new();
        for (_, net) in netlist.nets() {
            if net.is_clock {
                continue;
            }
            let pins: Vec<PinRef> = net.pins().collect();
            if pins.len() < 2 {
                continue;
            }
            if pins.len() <= CLIQUE_LIMIT {
                let w = 1.0 / (pins.len() as f64 - 1.0);
                for i in 0..pins.len() {
                    for j in (i + 1)..pins.len() {
                        match (
                            pin_var(netlist, &var_of, pins[i]),
                            pin_var(netlist, &var_of, pins[j]),
                        ) {
                            (Var::Movable(a), Var::Movable(b)) => {
                                if a != b {
                                    edges.push((a, b, w));
                                }
                            }
                            (Var::Movable(a), Var::Fixed(p)) | (Var::Fixed(p), Var::Movable(a)) => {
                                fixed_springs.push((a, p, w));
                            }
                            (Var::Fixed(_), Var::Fixed(_)) => {}
                        }
                    }
                }
            } else {
                star_nets.push((pins.clone(), 2.0 / pins.len() as f64));
            }
        }
        let mut nbr_index = vec![Vec::new(); movable.len()];
        for &(a, b, w) in &edges {
            nbr_index[a as usize].push((b, w));
            nbr_index[b as usize].push((a, w));
        }
        Self {
            movable,
            var_of,
            edges,
            fixed_springs,
            star_nets,
            nbr_index,
        }
    }

    /// Number of movable instances in the system.
    pub fn num_movable(&self) -> usize {
        self.movable.len()
    }

    /// Solves the x and y systems with anchors of weight `anchor_w` at the
    /// instances' current positions, then writes the solution back into
    /// the netlist (clamped to `outline`).
    pub fn solve(&mut self, netlist: &mut Netlist, outline: Rect, cg_iters: usize, anchor_w: f64) {
        let n = self.movable.len();
        if n == 0 {
            return;
        }
        // Base diagonal from clique + fixed springs.
        let mut diag = vec![1e-6; n];
        for &(a, b, w) in &self.edges {
            diag[a as usize] += w;
            diag[b as usize] += w;
        }
        for &(a, _, w) in &self.fixed_springs {
            diag[a as usize] += w;
        }
        let mut bx = vec![0.0; n];
        let mut by = vec![0.0; n];
        for &(a, p, w) in &self.fixed_springs {
            bx[a as usize] += w * p.x;
            by[a as usize] += w * p.y;
        }
        // Star springs at the current net centroids.
        for (pins, w) in &self.star_nets {
            let mut c = Point::ORIGIN;
            for &p in pins {
                c += netlist.pin_pos(p);
            }
            let c = c * (1.0 / pins.len() as f64);
            for &p in pins {
                if let Var::Movable(a) = pin_var(netlist, &self.var_of, p) {
                    diag[a as usize] += w;
                    bx[a as usize] += w * c.x;
                    by[a as usize] += w * c.y;
                }
            }
        }
        // Spreading anchors at the current (post-equalization) positions.
        let anchors: Vec<Point> = self
            .movable
            .iter()
            .map(|&id| netlist.inst(id).pos)
            .collect();
        for (i, p) in anchors.iter().enumerate() {
            diag[i] += anchor_w;
            bx[i] += anchor_w * p.x;
            by[i] += anchor_w * p.y;
        }

        let x0: Vec<f64> = anchors.iter().map(|p| p.x).collect();
        let y0: Vec<f64> = anchors.iter().map(|p| p.y).collect();
        let xs = self.cg(&diag, &bx, x0, cg_iters);
        let ys = self.cg(&diag, &by, y0, cg_iters);
        for (i, &id) in self.movable.iter().enumerate() {
            let p = Point::new(xs[i], ys[i]).clamped(outline);
            netlist.inst_mut(id).pos = if p.is_finite() { p } else { anchors[i] };
        }
    }

    /// Jacobi-preconditioned conjugate gradient for `A v = b` where
    /// `A = diag − offdiag(edges)` (a weighted Laplacian plus anchors).
    fn cg(&self, diag: &[f64], b: &[f64], mut v: Vec<f64>, iters: usize) -> Vec<f64> {
        let n = v.len();
        let mat_vec = |v: &[f64], out: &mut [f64]| {
            for i in 0..n {
                let mut s = diag[i] * v[i];
                for &(j, w) in &self.nbr_index[i] {
                    s -= w * v[j as usize];
                }
                out[i] = s;
            }
        };
        let mut r = vec![0.0; n];
        mat_vec(&v, &mut r);
        for i in 0..n {
            r[i] = b[i] - r[i];
        }
        let mut z: Vec<f64> = r.iter().zip(diag).map(|(ri, di)| ri / di).collect();
        let mut p = z.clone();
        let mut rz: f64 = r.iter().zip(&z).map(|(a, b)| a * b).sum();
        let mut ap = vec![0.0; n];
        for _ in 0..iters {
            if rz.abs() < 1e-12 {
                break;
            }
            mat_vec(&p, &mut ap);
            let pap: f64 = p.iter().zip(&ap).map(|(a, b)| a * b).sum();
            if pap.abs() < 1e-18 {
                break;
            }
            let alpha = rz / pap;
            for i in 0..n {
                v[i] += alpha * p[i];
                r[i] -= alpha * ap[i];
            }
            for i in 0..n {
                z[i] = r[i] / diag[i];
            }
            let rz_new: f64 = r.iter().zip(&z).map(|(a, b)| a * b).sum();
            let beta = rz_new / rz;
            rz = rz_new;
            for i in 0..n {
                p[i] = z[i] + beta * p[i];
            }
        }
        v
    }
}

enum Var {
    Movable(u32),
    Fixed(Point),
}

fn pin_var(netlist: &Netlist, var_of: &[Option<u32>], pin: PinRef) -> Var {
    match pin {
        PinRef::InstOut(i) | PinRef::InstIn(i, _) => match var_of[i.index()] {
            Some(v) => Var::Movable(v),
            None => Var::Fixed(netlist.inst(i).pos),
        },
        PinRef::Port(p) => Var::Fixed(netlist.port(p).pos),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use foldic_netlist::{InstMaster, PortDir};
    use foldic_tech::{CellKind, CellLibrary, Drive, VthClass};

    /// A chain of movable cells between two fixed ports must spread evenly
    /// along the line between the ports (the classic quadratic solution).
    #[test]
    fn chain_solution_is_linear_interpolation() {
        let lib = CellLibrary::cmos28();
        let master = InstMaster::Cell(lib.id_of(CellKind::Buf, Drive::X1, VthClass::Rvt));
        let mut nl = Netlist::new("chain");
        let left = nl.add_port("in", PortDir::Input, foldic_netlist::ClockDomain::Cpu);
        let right = nl.add_port("out", PortDir::Output, foldic_netlist::ClockDomain::Cpu);
        nl.port_mut(left).pos = Point::new(0.0, 50.0);
        nl.port_mut(right).pos = Point::new(100.0, 50.0);
        let k = 4;
        let cells: Vec<InstId> = (0..k)
            .map(|i| nl.add_inst(format!("c{i}"), master))
            .collect();
        let mut prev = PinRef::port(left);
        for (i, &c) in cells.iter().enumerate() {
            let net = nl.add_net(format!("n{i}"));
            nl.connect_driver(net, prev);
            nl.connect_sink(net, PinRef::input(c, 0));
            prev = PinRef::output(c);
        }
        let last = nl.add_net("nlast");
        nl.connect_driver(last, prev);
        nl.connect_sink(last, PinRef::port(right));

        let outline = Rect::new(0.0, 0.0, 100.0, 100.0);
        let mut sys = QuadraticSystem::build(&nl, outline);
        assert_eq!(sys.num_movable(), k);
        // several solves with negligible anchors converge to the line
        for _ in 0..3 {
            sys.solve(&mut nl, outline, 200, 1e-9);
        }
        for (i, &c) in cells.iter().enumerate() {
            let expect = 100.0 * (i + 1) as f64 / (k + 1) as f64;
            let got = nl.inst(c).pos;
            assert!(
                (got.x - expect).abs() < 1.0,
                "cell {i} at {} expected x={expect}",
                got
            );
            assert!((got.y - 50.0).abs() < 1.0);
        }
    }

    #[test]
    fn anchors_hold_disconnected_cells() {
        let lib = CellLibrary::cmos28();
        let master = InstMaster::Cell(lib.id_of(CellKind::Inv, Drive::X1, VthClass::Rvt));
        let mut nl = Netlist::new("loose");
        let a = nl.add_inst("a", master);
        nl.inst_mut(a).pos = Point::new(30.0, 70.0);
        let outline = Rect::new(0.0, 0.0, 100.0, 100.0);
        let mut sys = QuadraticSystem::build(&nl, outline);
        sys.solve(&mut nl, outline, 50, 0.5);
        let p = nl.inst(a).pos;
        assert!((p.x - 30.0).abs() < 1e-3 && (p.y - 70.0).abs() < 1e-3);
    }
}
