//! Quadratic wirelength system and conjugate-gradient solver.
//!
//! The system is built once per placement and solved many times with
//! growing anchor weights, so everything that does not depend on live
//! positions is precomputed at build: the clique adjacency lives in a
//! flat CSR layout, the base diagonal and right-hand sides (clique +
//! fixed springs) are baked into `base_*` vectors, and star-net pins are
//! pre-resolved to variable indices. Each `solve` then only copies the
//! bases, layers the position-dependent star/anchor contributions on top,
//! and runs CG entirely in scratch buffers owned by the system — zero
//! allocations after the first solve.

use foldic_geom::{Point, Rect};
use foldic_netlist::{InstId, Netlist, PinRef};

/// Nets up to this many pins enter the system as cliques; larger nets use
/// centroid (star) springs recomputed every solve.
const CLIQUE_LIMIT: usize = 8;

/// Star-net pin sentinel for "fixed pin" in [`QuadraticSystem::star_var`].
const FIXED_PIN: u32 = u32::MAX;

/// Reusable per-solve buffers. Held by the system so repeated solves (the
/// placer runs `iterations` of them per block) never reallocate.
#[derive(Debug, Default)]
struct SolveScratch {
    diag: Vec<f64>,
    bx: Vec<f64>,
    by: Vec<f64>,
    xs: Vec<f64>,
    ys: Vec<f64>,
    anchors: Vec<Point>,
    // CG work vectors
    r: Vec<f64>,
    z: Vec<f64>,
    dir: Vec<f64>,
    ap: Vec<f64>,
}

/// The quadratic placement system: static clique edges plus per-solve
/// centroid springs and spreading anchors.
#[derive(Debug)]
pub struct QuadraticSystem {
    movable: Vec<InstId>,
    /// CSR offsets into `nbr`: neighbors of variable `i` are
    /// `nbr[nbr_off[i]..nbr_off[i+1]]`, in the exact order the retired
    /// `Vec<Vec<…>>` adjacency pushed them (edge order), so the CG
    /// `mat_vec` accumulates in the same order and stays bit-identical.
    nbr_off: Vec<u32>,
    /// Packed `(neighbor, weight)` pairs.
    nbr: Vec<(u32, f64)>,
    /// Position-independent diagonal: `1e-6` + clique edges + fixed
    /// springs, accumulated at build time in the retired per-solve order.
    base_diag: Vec<f64>,
    /// Position-independent right-hand sides (fixed-spring pulls).
    base_bx: Vec<f64>,
    base_by: Vec<f64>,
    /// Star nets flattened: pins of net `k` are
    /// `star_pins[star_off[k]..star_off[k+1]]`.
    star_off: Vec<u32>,
    star_pins: Vec<PinRef>,
    /// Pre-resolved variable per star pin ([`FIXED_PIN`] when the pin is
    /// on a fixed instance or a port — movability is static, only the
    /// centroid needs live positions).
    star_var: Vec<u32>,
    /// Per-net star weight.
    star_w: Vec<f64>,
    scratch: SolveScratch,
    /// Solves since build — drives the scratch-reuse gauge.
    solves: u64,
}

impl QuadraticSystem {
    /// Builds the system from the netlist topology. Clock nets are
    /// excluded (they are routed as balanced trees, not optimized for
    /// wirelength).
    pub fn build(netlist: &Netlist, _outline: Rect) -> Self {
        let n = netlist.num_insts();
        let mut var_of = vec![None; n];
        let mut movable = Vec::new();
        for (id, inst) in netlist.insts() {
            if !inst.fixed {
                var_of[id.index()] = Some(movable.len() as u32);
                movable.push(id);
            }
        }
        let mut edges = Vec::new();
        let mut fixed_springs = Vec::new();
        let mut star_off = vec![0u32];
        let mut star_pins = Vec::new();
        let mut star_var = Vec::new();
        let mut star_w = Vec::new();
        for (_, net) in netlist.nets() {
            if net.is_clock {
                continue;
            }
            let pins: Vec<PinRef> = net.pins().collect();
            if pins.len() < 2 {
                continue;
            }
            if pins.len() <= CLIQUE_LIMIT {
                let w = 1.0 / (pins.len() as f64 - 1.0);
                for i in 0..pins.len() {
                    for j in (i + 1)..pins.len() {
                        match (
                            pin_var(netlist, &var_of, pins[i]),
                            pin_var(netlist, &var_of, pins[j]),
                        ) {
                            (Var::Movable(a), Var::Movable(b)) => {
                                if a != b {
                                    edges.push((a, b, w));
                                }
                            }
                            (Var::Movable(a), Var::Fixed(p)) | (Var::Fixed(p), Var::Movable(a)) => {
                                fixed_springs.push((a, p, w));
                            }
                            (Var::Fixed(_), Var::Fixed(_)) => {}
                        }
                    }
                }
            } else {
                star_w.push(2.0 / pins.len() as f64);
                for &p in &pins {
                    star_var.push(match pin_var(netlist, &var_of, p) {
                        Var::Movable(a) => a,
                        Var::Fixed(_) => FIXED_PIN,
                    });
                }
                star_pins.extend(pins);
                star_off.push(star_pins.len() as u32);
            }
        }
        let nv = movable.len();
        // CSR adjacency: count degrees, prefix-sum, then fill in edge
        // order — reproducing the per-node neighbor order of the retired
        // Vec-of-Vecs exactly.
        let mut degree = vec![0u32; nv];
        for &(a, b, _) in &edges {
            degree[a as usize] += 1;
            degree[b as usize] += 1;
        }
        let mut nbr_off = vec![0u32; nv + 1];
        for i in 0..nv {
            nbr_off[i + 1] = nbr_off[i] + degree[i];
        }
        let mut cursor: Vec<u32> = nbr_off[..nv].to_vec();
        let mut nbr = vec![(0u32, 0.0f64); nbr_off[nv] as usize];
        for &(a, b, w) in &edges {
            nbr[cursor[a as usize] as usize] = (b, w);
            cursor[a as usize] += 1;
            nbr[cursor[b as usize] as usize] = (a, w);
            cursor[b as usize] += 1;
        }
        // Base diagonal and right-hand sides, accumulated in the order the
        // retired per-solve loops used (init, edges, fixed springs) so a
        // solve that copies these bases is bit-identical to one that
        // rebuilds them.
        let mut base_diag = vec![1e-6; nv];
        for &(a, b, w) in &edges {
            base_diag[a as usize] += w;
            base_diag[b as usize] += w;
        }
        for &(a, _, w) in &fixed_springs {
            base_diag[a as usize] += w;
        }
        let mut base_bx = vec![0.0; nv];
        let mut base_by = vec![0.0; nv];
        for &(a, p, w) in &fixed_springs {
            base_bx[a as usize] += w * p.x;
            base_by[a as usize] += w * p.y;
        }
        Self {
            movable,
            nbr_off,
            nbr,
            base_diag,
            base_bx,
            base_by,
            star_off,
            star_pins,
            star_var,
            star_w,
            scratch: SolveScratch::default(),
            solves: 0,
        }
    }

    /// Number of movable instances in the system.
    pub fn num_movable(&self) -> usize {
        self.movable.len()
    }

    /// Solves the x and y systems with anchors of weight `anchor_w` at the
    /// instances' current positions, then writes the solution back into
    /// the netlist (clamped to `outline`).
    pub fn solve(&mut self, netlist: &mut Netlist, outline: Rect, cg_iters: usize, anchor_w: f64) {
        let n = self.movable.len();
        if n == 0 {
            return;
        }
        // Split borrows: scratch is mutated while the static system parts
        // are read.
        let Self {
            movable,
            nbr_off,
            nbr,
            base_diag,
            base_bx,
            base_by,
            star_off,
            star_pins,
            star_var,
            star_w,
            scratch,
            solves,
        } = self;
        // Copy the precomputed bases (clique + fixed-spring terms).
        scratch.diag.clear();
        scratch.diag.extend_from_slice(base_diag);
        scratch.bx.clear();
        scratch.bx.extend_from_slice(base_bx);
        scratch.by.clear();
        scratch.by.extend_from_slice(base_by);
        let diag = &mut scratch.diag;
        let bx = &mut scratch.bx;
        let by = &mut scratch.by;
        // Star springs at the current net centroids.
        for k in 0..star_w.len() {
            let lo = star_off[k] as usize;
            let hi = star_off[k + 1] as usize;
            let w = star_w[k];
            let mut c = Point::ORIGIN;
            for &p in &star_pins[lo..hi] {
                c += netlist.pin_pos(p);
            }
            let c = c * (1.0 / (hi - lo) as f64);
            for &a in &star_var[lo..hi] {
                if a != FIXED_PIN {
                    diag[a as usize] += w;
                    bx[a as usize] += w * c.x;
                    by[a as usize] += w * c.y;
                }
            }
        }
        // Spreading anchors at the current (post-equalization) positions.
        scratch.anchors.clear();
        scratch
            .anchors
            .extend(movable.iter().map(|&id| netlist.inst(id).pos));
        for (i, p) in scratch.anchors.iter().enumerate() {
            diag[i] += anchor_w;
            bx[i] += anchor_w * p.x;
            by[i] += anchor_w * p.y;
        }

        scratch.xs.clear();
        scratch.xs.extend(scratch.anchors.iter().map(|p| p.x));
        scratch.ys.clear();
        scratch.ys.extend(scratch.anchors.iter().map(|p| p.y));
        cg(
            nbr_off,
            nbr,
            diag,
            bx,
            &mut scratch.xs,
            cg_iters,
            &mut scratch.r,
            &mut scratch.z,
            &mut scratch.dir,
            &mut scratch.ap,
        );
        cg(
            nbr_off,
            nbr,
            diag,
            by,
            &mut scratch.ys,
            cg_iters,
            &mut scratch.r,
            &mut scratch.z,
            &mut scratch.dir,
            &mut scratch.ap,
        );
        for (i, &id) in movable.iter().enumerate() {
            let p = Point::new(scratch.xs[i], scratch.ys[i]).clamped(outline);
            netlist.inst_mut(id).pos = if p.is_finite() { p } else { scratch.anchors[i] };
        }
        *solves += 1;
        if foldic_obs::metrics::is_enabled() {
            // High-water count of solves that reused this system's scratch
            // (max-merge: deterministic across pool threads).
            foldic_obs::metrics::set_gauge_max("place.solve.scratch_reuse", (*solves - 1) as f64);
        }
    }
}

/// Jacobi-preconditioned conjugate gradient for `A v = b` where
/// `A = diag − offdiag(nbr)` (a weighted Laplacian plus anchors). `v`
/// holds the initial guess and receives the solution; `r`/`z`/`dir`/`ap`
/// are caller-owned work vectors resized here.
#[allow(clippy::too_many_arguments)]
fn cg(
    nbr_off: &[u32],
    nbr: &[(u32, f64)],
    diag: &[f64],
    b: &[f64],
    v: &mut [f64],
    iters: usize,
    r: &mut Vec<f64>,
    z: &mut Vec<f64>,
    dir: &mut Vec<f64>,
    ap: &mut Vec<f64>,
) {
    let n = v.len();
    let mat_vec = |v: &[f64], out: &mut [f64]| {
        for i in 0..n {
            let mut s = diag[i] * v[i];
            for &(j, w) in &nbr[nbr_off[i] as usize..nbr_off[i + 1] as usize] {
                s -= w * v[j as usize];
            }
            out[i] = s;
        }
    };
    r.clear();
    r.resize(n, 0.0);
    mat_vec(v, r);
    for i in 0..n {
        r[i] = b[i] - r[i];
    }
    z.clear();
    z.extend(r.iter().zip(diag).map(|(ri, di)| ri / di));
    dir.clear();
    dir.extend_from_slice(z);
    let mut rz: f64 = r.iter().zip(z.iter()).map(|(a, b)| a * b).sum();
    ap.clear();
    ap.resize(n, 0.0);
    for _ in 0..iters {
        if rz.abs() < 1e-12 {
            break;
        }
        mat_vec(dir, ap);
        let pap: f64 = dir.iter().zip(ap.iter()).map(|(a, b)| a * b).sum();
        if pap.abs() < 1e-18 {
            break;
        }
        let alpha = rz / pap;
        for i in 0..n {
            v[i] += alpha * dir[i];
            r[i] -= alpha * ap[i];
        }
        for i in 0..n {
            z[i] = r[i] / diag[i];
        }
        let rz_new: f64 = r.iter().zip(z.iter()).map(|(a, b)| a * b).sum();
        let beta = rz_new / rz;
        rz = rz_new;
        for i in 0..n {
            dir[i] = z[i] + beta * dir[i];
        }
    }
}

enum Var {
    Movable(u32),
    Fixed(Point),
}

fn pin_var(netlist: &Netlist, var_of: &[Option<u32>], pin: PinRef) -> Var {
    match pin {
        PinRef::InstOut(i) | PinRef::InstIn(i, _) => match var_of[i.index()] {
            Some(v) => Var::Movable(v),
            None => Var::Fixed(netlist.inst(i).pos),
        },
        PinRef::Port(p) => Var::Fixed(netlist.port(p).pos),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use foldic_netlist::{InstMaster, PortDir};
    use foldic_tech::{CellKind, CellLibrary, Drive, VthClass};

    /// A chain of movable cells between two fixed ports must spread evenly
    /// along the line between the ports (the classic quadratic solution).
    #[test]
    fn chain_solution_is_linear_interpolation() {
        let lib = CellLibrary::cmos28();
        let master = InstMaster::Cell(lib.id_of(CellKind::Buf, Drive::X1, VthClass::Rvt));
        let mut nl = Netlist::new("chain");
        let left = nl.add_port("in", PortDir::Input, foldic_netlist::ClockDomain::Cpu);
        let right = nl.add_port("out", PortDir::Output, foldic_netlist::ClockDomain::Cpu);
        nl.port_mut(left).pos = Point::new(0.0, 50.0);
        nl.port_mut(right).pos = Point::new(100.0, 50.0);
        let k = 4;
        let cells: Vec<InstId> = (0..k)
            .map(|i| nl.add_inst(format!("c{i}"), master))
            .collect();
        let mut prev = PinRef::port(left);
        for (i, &c) in cells.iter().enumerate() {
            let net = nl.add_net(format!("n{i}"));
            nl.connect_driver(net, prev);
            nl.connect_sink(net, PinRef::input(c, 0));
            prev = PinRef::output(c);
        }
        let last = nl.add_net("nlast");
        nl.connect_driver(last, prev);
        nl.connect_sink(last, PinRef::port(right));

        let outline = Rect::new(0.0, 0.0, 100.0, 100.0);
        let mut sys = QuadraticSystem::build(&nl, outline);
        assert_eq!(sys.num_movable(), k);
        // several solves with negligible anchors converge to the line
        for _ in 0..3 {
            sys.solve(&mut nl, outline, 200, 1e-9);
        }
        for (i, &c) in cells.iter().enumerate() {
            let expect = 100.0 * (i + 1) as f64 / (k + 1) as f64;
            let got = nl.inst(c).pos;
            assert!(
                (got.x - expect).abs() < 1.0,
                "cell {i} at {} expected x={expect}",
                got
            );
            assert!((got.y - 50.0).abs() < 1.0);
        }
    }

    #[test]
    fn anchors_hold_disconnected_cells() {
        let lib = CellLibrary::cmos28();
        let master = InstMaster::Cell(lib.id_of(CellKind::Inv, Drive::X1, VthClass::Rvt));
        let mut nl = Netlist::new("loose");
        let a = nl.add_inst("a", master);
        nl.inst_mut(a).pos = Point::new(30.0, 70.0);
        let outline = Rect::new(0.0, 0.0, 100.0, 100.0);
        let mut sys = QuadraticSystem::build(&nl, outline);
        sys.solve(&mut nl, outline, 50, 0.5);
        let p = nl.inst(a).pos;
        assert!((p.x - 30.0).abs() < 1e-3 && (p.y - 70.0).abs() < 1e-3);
    }

    /// A solve on warm scratch (second and later solves of one system)
    /// must be bitwise identical to the same solve on a freshly built
    /// system — the scratch-reuse path cannot leak state.
    #[test]
    fn scratch_reuse_matches_fresh_build_bitwise() {
        let lib = CellLibrary::cmos28();
        let master = InstMaster::Cell(lib.id_of(CellKind::Buf, Drive::X2, VthClass::Rvt));
        let mut nl = Netlist::new("star");
        let anchor = nl.add_port("in", PortDir::Input, foldic_netlist::ClockDomain::Cpu);
        nl.port_mut(anchor).pos = Point::new(10.0, 10.0);
        // a wide net (star) plus a small clique net
        let cells: Vec<InstId> = (0..12)
            .map(|i| {
                let c = nl.add_inst(format!("s{i}"), master);
                nl.inst_mut(c).pos = Point::new(5.0 * i as f64, 3.0 * (i % 5) as f64);
                c
            })
            .collect();
        let wide = nl.add_net("wide");
        nl.connect_driver(wide, PinRef::port(anchor));
        for &c in &cells {
            nl.connect_sink(wide, PinRef::input(c, 0));
        }
        let pair = nl.add_net("pair");
        nl.connect_driver(pair, PinRef::output(cells[0]));
        nl.connect_sink(pair, PinRef::input(cells[7], 1));

        let outline = Rect::new(0.0, 0.0, 80.0, 80.0);
        // warm path: one system solved three times
        let mut warm_nl = nl.clone();
        let mut warm = QuadraticSystem::build(&warm_nl, outline);
        for i in 0..3 {
            warm.solve(&mut warm_nl, outline, 40, 0.1 * (i + 1) as f64);
        }
        // fresh path: rebuild the system before every solve (scratch is
        // always cold), driving the netlist through the same states
        let mut fresh_nl = nl.clone();
        for i in 0..3 {
            let mut fresh = QuadraticSystem::build(&fresh_nl, outline);
            fresh.solve(&mut fresh_nl, outline, 40, 0.1 * (i + 1) as f64);
        }
        for &c in &cells {
            let w = warm_nl.inst(c).pos;
            let f = fresh_nl.inst(c).pos;
            assert_eq!(
                (w.x.to_bits(), w.y.to_bits()),
                (f.x.to_bits(), f.y.to_bits()),
                "scratch reuse drifted for {}",
                warm_nl.name_of(warm_nl.inst(c).name)
            );
        }
    }
}
