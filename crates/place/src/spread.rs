//! Supply/demand spreading by monotone 1-D equalization.
//!
//! After each quadratic solve the cells cluster in dense knots. This pass
//! remaps cell coordinates so that the cumulative *demand* distribution
//! matches the cumulative *supply* distribution bin-row by bin-row (x
//! pass) and bin-column by bin-column (y pass). Macro holes carry zero
//! supply, so the monotone remap transports cells around them — no halos,
//! regardless of macro size (the §4.2 requirement).

use crate::{MacroMode, Obstacle, PlacerConfig};
use foldic_geom::{BinGrid, DensityMap, Point, Rect, Tier};
use foldic_netlist::{InstId, Netlist};
use foldic_tech::Technology;

/// Damping of the equalization move (1.0 = jump straight to the target).
const DAMP: f64 = 0.65;

/// Runs one x+y equalization pass over the movable cells of `tier`
/// (`None` = all tiers, for unfolded blocks).
pub fn equalize_tier(
    netlist: &mut Netlist,
    tech: &Technology,
    outline: Rect,
    cfg: &PlacerConfig,
    obstacles: &[Obstacle],
    tier: Option<Tier>,
) {
    let min_dim = outline.width().min(outline.height());
    let bin = (cfg.bin_rows * tech.row_height).clamp(min_dim / 32.0, min_dim / 8.0);
    let grid = BinGrid::with_bin_size(outline, bin);
    let mut dm = DensityMap::new(grid.clone(), cfg.target_util);
    // macros: holes (the paper's §4.2 fix) or plain demand inflation
    // (the Kraftwerk2 baseline that leaves halos)
    for (_, inst) in netlist.insts() {
        if inst.fixed && inst.master.is_macro() && tier.is_none_or(|t| inst.tier == t) {
            match cfg.macro_mode {
                MacroMode::Hole => dm.punch_hole(inst.rect(tech)),
                MacroMode::DemandInflation => {
                    // the macro participates in the spreading system as a
                    // huge immovable demand; its pressure pushes cells
                    // beyond the physical outline — the halo whitespace
                    // Kraftwerk2-style handling leaves around big macros
                    let r = inst.rect(tech);
                    let halo = 0.2 * r.width().min(r.height());
                    dm.punch_hole(r.inflated(halo));
                }
            }
        }
    }
    for ob in obstacles {
        if tier.is_none() || ob.tier.is_none() || ob.tier == tier {
            dm.punch_hole(ob.rect);
        }
    }

    let movable: Vec<(InstId, Point, f64)> = netlist
        .insts()
        .filter(|(_, i)| !i.fixed && tier.is_none_or(|t| i.tier == t))
        .map(|(id, i)| (id, i.pos, i.area_um2(tech)))
        .collect();
    if movable.is_empty() {
        return;
    }

    let mut pos: Vec<Point> = movable.iter().map(|m| m.1).collect();

    // --- x pass: equalize within each bin row -------------------------------
    remap_axis(&grid, &dm, &movable, &mut pos, Axis::X);
    // --- y pass: equalize within each bin column ----------------------------
    remap_axis(&grid, &dm, &movable, &mut pos, Axis::Y);

    for ((id, _, _), p) in movable.iter().zip(&pos) {
        netlist.inst_mut(*id).pos = p.clamped(outline);
    }
}

#[derive(Clone, Copy, PartialEq)]
enum Axis {
    X,
    Y,
}

/// Equalizes one axis with **overflow-driven** transport: for every lane
/// of bins perpendicular to `axis`, overflow (demand beyond capacity) is
/// water-filled into the nearest bins with spare capacity, and cells are
/// remapped monotonically from the old cumulative demand profile onto the
/// feasible one. Bins below capacity keep their cells in place — an
/// under-utilized region (e.g. the sparse logic channels of a
/// macro-dominated block) is never stretched to fill its whitespace.
fn remap_axis(
    grid: &BinGrid,
    dm: &DensityMap,
    movable: &[(InstId, Point, f64)],
    pos: &mut [Point],
    axis: Axis,
) {
    let (lanes, bins_per_lane) = match axis {
        Axis::X => (grid.rows(), grid.cols()),
        Axis::Y => (grid.cols(), grid.rows()),
    };
    // demand per (lane, bin) from current positions
    let mut demand = vec![0.0f64; lanes * bins_per_lane];
    let mut members: Vec<Vec<usize>> = vec![Vec::new(); lanes];
    for (k, p) in pos.iter().enumerate() {
        let (c, r) = grid.bin_of(*p);
        let (lane, b) = match axis {
            Axis::X => (r, c),
            Axis::Y => (c, r),
        };
        demand[lane * bins_per_lane + b] += movable[k].2;
        members[lane].push(k);
    }
    let region = grid.region();
    for lane in 0..lanes {
        if members[lane].is_empty() {
            continue;
        }
        let cap: Vec<f64> = (0..bins_per_lane)
            .map(|b| {
                let (c, r) = match axis {
                    Axis::X => (b, lane),
                    Axis::Y => (lane, b),
                };
                dm.supply(c, r)
            })
            .collect();
        let d: Vec<f64> = (0..bins_per_lane)
            .map(|b| demand[lane * bins_per_lane + b])
            .collect();
        if d.iter().zip(&cap).all(|(di, ci)| di <= ci) {
            continue; // lane already feasible: nothing moves
        }
        // water-fill the overflow into neighbouring spare capacity
        let mut dp = d.clone();
        for _ in 0..2 {
            // left -> right
            for b in 0..bins_per_lane - 1 {
                let e = dp[b] - cap[b];
                if e > 0.0 {
                    dp[b] -= e;
                    dp[b + 1] += e;
                }
            }
            // right -> left
            for b in (1..bins_per_lane).rev() {
                let e = dp[b] - cap[b];
                if e > 0.0 {
                    dp[b] -= e;
                    dp[b - 1] += e;
                }
            }
        }
        // monotone remap: old cumulative demand -> new cumulative demand
        let mut d_cum = vec![0.0; bins_per_lane + 1];
        let mut dp_cum = vec![0.0; bins_per_lane + 1];
        for b in 0..bins_per_lane {
            d_cum[b + 1] = d_cum[b] + d[b];
            dp_cum[b + 1] = dp_cum[b] + dp[b];
        }
        let total = d_cum[bins_per_lane];
        if total <= 0.0 {
            continue;
        }
        let (lo, step) = match axis {
            Axis::X => (region.llx, grid.bin_width()),
            Axis::Y => (region.lly, grid.bin_height()),
        };
        for &k in &members[lane] {
            let coord = match axis {
                Axis::X => pos[k].x,
                Axis::Y => pos[k].y,
            };
            let fbin = ((coord - lo) / step).clamp(0.0, bins_per_lane as f64 - 1e-9);
            let b = fbin as usize;
            let frac = fbin - b as f64;
            let here = d_cum[b] + frac * (d_cum[b + 1] - d_cum[b]);
            // invert the new profile at the same cumulative mass
            let mut nb = bins_per_lane - 1;
            for bb in 0..bins_per_lane {
                if dp_cum[bb + 1] >= here - 1e-12 {
                    nb = bb;
                    break;
                }
            }
            let seg = dp_cum[nb + 1] - dp_cum[nb];
            let f = if seg > 0.0 {
                ((here - dp_cum[nb]) / seg).clamp(0.0, 1.0)
            } else {
                0.5
            };
            let new_coord = lo + (nb as f64 + f) * step;
            let c = match axis {
                Axis::X => &mut pos[k].x,
                Axis::Y => &mut pos[k].y,
            };
            *c += DAMP * (new_coord - *c);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use foldic_netlist::InstMaster;
    use foldic_tech::{CellKind, Drive, VthClass};

    /// All cells start stacked in one corner; after a few equalization
    /// passes the bin overflow must drop dramatically.
    #[test]
    fn spreading_reduces_overflow() {
        let tech = Technology::cmos28();
        let master = InstMaster::Cell(tech.cells.id_of(CellKind::Nand2, Drive::X2, VthClass::Rvt));
        let outline = Rect::new(0.0, 0.0, 60.0, 60.0);
        let mut nl = Netlist::new("blob");
        for i in 0..400 {
            let id = nl.add_inst(format!("c{i}"), master);
            nl.inst_mut(id).pos =
                Point::new(5.0 + (i % 7) as f64 * 0.3, 5.0 + (i / 7) as f64 * 0.2);
        }
        let cfg = PlacerConfig::fast();
        let overflow = |nl: &Netlist| {
            let grid = BinGrid::with_bin_size(outline, 6.0);
            let mut dm = DensityMap::new(grid, cfg.target_util);
            for (_, inst) in nl.insts() {
                dm.add_demand(inst.rect(&tech), inst.area_um2(&tech));
            }
            dm.overflow()
        };
        let before = overflow(&nl);
        for _ in 0..6 {
            equalize_tier(&mut nl, &tech, outline, &cfg, &[], None);
        }
        let after = overflow(&nl);
        assert!(after < 0.35 * before, "overflow {before} -> {after}");
    }

    /// Cells must flow around a hole, not into it.
    #[test]
    fn holes_stay_empty() {
        let tech = Technology::cmos28();
        let master = InstMaster::Cell(tech.cells.id_of(CellKind::Inv, Drive::X1, VthClass::Rvt));
        let outline = Rect::new(0.0, 0.0, 60.0, 60.0);
        let hole = Rect::new(20.0, 20.0, 40.0, 40.0);
        let mut nl = Netlist::new("hole");
        for i in 0..300 {
            let id = nl.add_inst(format!("c{i}"), master);
            // start everyone inside the future hole
            nl.inst_mut(id).pos = Point::new(21.0 + (i % 10) as f64, 21.0 + (i / 10) as f64 * 0.5);
        }
        let cfg = PlacerConfig::fast();
        let obstacles = [Obstacle {
            rect: hole,
            tier: None,
        }];
        for _ in 0..8 {
            equalize_tier(&mut nl, &tech, outline, &cfg, &obstacles, None);
        }
        // the density grid punches whole bins only, so measure against the
        // interior that is guaranteed to be holed (bins fully covered)
        let inside = nl
            .insts()
            .filter(|(_, i)| hole.inflated(-4.0).contains(i.pos))
            .count();
        assert!(inside <= 10, "{inside} cells still deep inside the hole");
    }
}
