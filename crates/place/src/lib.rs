#![warn(missing_docs)]
#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]
//! Mixed-size quadratic 3D placer with supply/demand spreading and macro
//! holes.
//!
//! This is the placement engine the paper's block-folding flow needs
//! (§4.2): a force-directed quadratic placer in the Kraftwerk2 family
//! \[7\], extended with
//!
//! * **macro holes** — the paper's fix for extremely large hard macros:
//!   the supply *and* demand of the bins a macro covers are pinned to
//!   zero, so the spreading system routes cells *around* the macro instead
//!   of leaving halo whitespace next to it;
//! * **tier awareness** — for folded blocks, cells on the two dies share
//!   the quadratic wirelength system (3D nets pull across tiers at zero
//!   distance, modelling the ideal 3D interconnect of the §5.1 flow), but
//!   each die spreads against its own density map and macro set;
//! * **obstacles** — TSV keep-out sites can be injected as additional
//!   holes, which is how face-to-back bonding degrades folded placements
//!   (Fig. 6).
//!
//! The algorithm alternates conjugate-gradient solves of the quadratic
//! wirelength system with a monotone 1-D supply/demand equalization in x
//! and y, then legalizes cells into row segments between the macros.
//!
//! # Examples
//!
//! ```
//! use foldic_place::{place_block, PlacerConfig};
//! use foldic_t2::T2Config;
//!
//! let (mut design, tech) = T2Config::tiny().generate();
//! let id = design.find_block("mcu0").unwrap();
//! let outline = design.block(id).outline;
//! let block = design.block_mut(id);
//! place_block(&mut block.netlist, &tech, outline, &PlacerConfig::fast()).unwrap();
//! // every movable cell ends inside the outline
//! for (_, inst) in block.netlist.insts() {
//!     assert!(outline.inflated(1.0).contains(inst.pos));
//! }
//! ```

mod legalize;
mod solver;
mod spread;

pub use legalize::legalize_tier;
pub use solver::QuadraticSystem;
pub use spread::equalize_tier;

use foldic_fault::{FlowError, FlowStage};
use foldic_geom::{Rect, Tier};
use foldic_netlist::Netlist;
use foldic_tech::Technology;

/// A placement blockage (e.g. a TSV keep-out square) on one tier, or on
/// both when `tier` is `None`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Obstacle {
    /// Blocked region in block-local µm.
    pub rect: Rect,
    /// Affected tier; `None` blocks both dies.
    pub tier: Option<Tier>,
}

/// How the spreading system treats hard macros (the §4.2 comparison).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum MacroMode {
    /// The paper's approach: supply *and* demand zeroed under the macro —
    /// a hole the transport routes around.
    #[default]
    Hole,
    /// The Kraftwerk2 baseline the paper found insufficient: the macro
    /// stays in the map as a large demand, which leaves halo whitespace
    /// around big macros.
    DemandInflation,
}

/// Placer parameters.
#[derive(Debug, Clone)]
pub struct PlacerConfig {
    /// Number of solve→spread iterations.
    pub iterations: usize,
    /// Conjugate-gradient iterations per solve.
    pub cg_iterations: usize,
    /// Bin edge as a multiple of the row height.
    pub bin_rows: f64,
    /// Target placement utilization inside each bin.
    pub target_util: f64,
    /// Anchor weight growth per iteration (stabilizes late iterations).
    pub anchor_growth: f64,
    /// Hard-macro handling in the density map.
    pub macro_mode: MacroMode,
}

impl PlacerConfig {
    /// Quality settings used by the experiments.
    pub fn quality() -> Self {
        Self {
            iterations: 10,
            cg_iterations: 120,
            bin_rows: 10.0,
            target_util: 0.85,
            anchor_growth: 0.18,
            macro_mode: MacroMode::default(),
        }
    }

    /// Faster, slightly worse settings for tests.
    pub fn fast() -> Self {
        Self {
            iterations: 5,
            cg_iterations: 60,
            ..Self::quality()
        }
    }
}

impl Default for PlacerConfig {
    fn default() -> Self {
        Self::quality()
    }
}

/// Places all movable instances of a (non-folded) block inside `outline`.
///
/// Fixed instances (pre-placed macros) and ports act as anchors. Instance
/// positions are updated in place.
///
/// # Errors
///
/// Returns a [`FlowError`] at [`FlowStage::Place`] when the quadratic
/// system diverges (non-finite positions) — a retry with perturbed
/// settings may succeed.
pub fn place_block(
    netlist: &mut Netlist,
    tech: &Technology,
    outline: Rect,
    cfg: &PlacerConfig,
) -> Result<(), FlowError> {
    place_with_obstacles(netlist, tech, outline, cfg, &[], false)
}

/// Places a folded block: cells on both tiers share the wirelength system
/// while spreading and legalization run per tier.
///
/// # Errors
///
/// See [`place_block`].
pub fn place_folded(
    netlist: &mut Netlist,
    tech: &Technology,
    outline: Rect,
    cfg: &PlacerConfig,
    obstacles: &[Obstacle],
) -> Result<(), FlowError> {
    place_with_obstacles(netlist, tech, outline, cfg, obstacles, true)
}

/// Full-control entry point: see [`place_block`] / [`place_folded`].
///
/// # Errors
///
/// See [`place_block`].
pub fn place_with_obstacles(
    netlist: &mut Netlist,
    tech: &Technology,
    outline: Rect,
    cfg: &PlacerConfig,
    obstacles: &[Obstacle],
    per_tier: bool,
) -> Result<(), FlowError> {
    let tiers: &[Option<Tier>] = if per_tier {
        &[Some(Tier::Bottom), Some(Tier::Top)]
    } else {
        &[None]
    };

    let mut system = solver::QuadraticSystem::build(netlist, outline);
    if system.num_movable() == 0 {
        return Ok(());
    }

    for iter in 0..cfg.iterations {
        // cooperative deadline checkpoint, once per solver iteration
        foldic_fault::deadline::poll()?;
        let anchor_w = cfg.anchor_growth * (iter as f64 + 0.3);
        system.solve(netlist, outline, cfg.cg_iterations, anchor_w);
        for &tier in tiers {
            spread::equalize_tier(netlist, tech, outline, cfg, obstacles, tier);
        }
    }
    for &tier in tiers {
        legalize::legalize_tier(netlist, tech, outline, obstacles, tier);
    }
    // The CG solve has no step-size guard; a pathological system (e.g.
    // near-singular from a degenerate anchor set) surfaces as NaN/Inf
    // coordinates. Catch it here as a typed, retryable stage error
    // instead of letting downstream geometry panic.
    for (_, inst) in netlist.insts() {
        if !(inst.pos.x.is_finite() && inst.pos.y.is_finite()) {
            return Err(FlowError::stage(
                FlowStage::Place,
                format!(
                    "placement diverged: `{}` at non-finite position",
                    netlist.name_of(inst.name)
                ),
            ));
        }
    }
    foldic_exec::profile::add_iters(cfg.iterations as u64);
    if foldic_obs::metrics::is_enabled() {
        foldic_obs::metrics::add("place.runs", 1);
        foldic_obs::metrics::add("place.iterations", cfg.iterations as u64);
        foldic_obs::metrics::add("place.movable_insts", system.num_movable() as u64);
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use foldic_netlist::InstMaster;
    use foldic_t2::T2Config;

    fn placed_block(name: &str) -> (foldic_netlist::Netlist, Technology, Rect) {
        let (mut design, tech) = T2Config::tiny().generate();
        let id = design.find_block(name).unwrap();
        let outline = design.block(id).outline;
        let nl = &mut design.block_mut(id).netlist;
        place_block(nl, &tech, outline, &PlacerConfig::fast()).unwrap();
        (nl.clone(), tech, outline)
    }

    fn hpwl(nl: &foldic_netlist::Netlist) -> f64 {
        nl.nets()
            .map(|(_, net)| {
                foldic_geom::Rect::bounding(net.pins().map(|p| nl.pin_pos(p))).half_perimeter()
            })
            .sum()
    }

    #[test]
    fn placement_recovers_from_scrambled_start() {
        let (mut design, tech) = T2Config::tiny().generate();
        let id = design.find_block("l2t0").unwrap();
        let outline = design.block(id).outline;
        let nl = &mut design.block_mut(id).netlist;
        let seed_wl = hpwl(nl);
        // scramble all movable cells deterministically
        let ids: Vec<_> = nl
            .insts()
            .filter(|(_, i)| !i.fixed)
            .map(|(id, _)| id)
            .collect();
        let mut state = 0x5EEDu64;
        for id in ids {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
            let fx = ((state >> 16) & 0xFFFF) as f64 / 65536.0;
            let fy = ((state >> 32) & 0xFFFF) as f64 / 65536.0;
            nl.inst_mut(id).pos = foldic_geom::Point::new(
                outline.llx + fx * outline.width(),
                outline.lly + fy * outline.height(),
            );
        }
        let scrambled_wl = hpwl(nl);
        place_block(nl, &tech, outline, &PlacerConfig::quality()).unwrap();
        let after = hpwl(nl);
        // the placer must recover most of the structure the scramble lost
        assert!(
            after < 0.6 * scrambled_wl,
            "placer barely improved: {after} vs scrambled {scrambled_wl}"
        );
        // and land in the same league as the generator's embedding (the
        // seed is a near-oracle lower bound the netlist was sampled from)
        assert!(
            after < 1.75 * seed_wl,
            "placer far off the seed embedding: {after} vs {seed_wl}"
        );
    }

    #[test]
    fn cells_stay_inside_outline() {
        let (nl, tech, outline) = placed_block("mcu0");
        for (_, inst) in nl.insts() {
            if inst.fixed {
                continue;
            }
            let r = inst.rect(&tech);
            assert!(
                outline.inflated(1e-6).contains_rect(r),
                "{} at {} escapes {}",
                nl.name_of(inst.name),
                inst.pos,
                outline
            );
        }
    }

    #[test]
    fn cells_avoid_macro_holes() {
        let (nl, tech, _) = placed_block("l2d0");
        let macros: Vec<foldic_geom::Rect> = nl
            .insts()
            .filter(|(_, i)| i.master.is_macro())
            .map(|(_, i)| i.rect(&tech))
            .collect();
        let mut violations = 0;
        let mut total = 0;
        for (_, inst) in nl.insts() {
            if inst.fixed || inst.master.is_macro() {
                continue;
            }
            total += 1;
            if macros.iter().any(|m| m.contains(inst.pos)) {
                violations += 1;
            }
        }
        assert!(total > 0);
        assert!(
            violations * 50 <= total,
            "{violations}/{total} cells sit on macros"
        );
    }

    #[test]
    fn legalized_cells_do_not_overlap_much() {
        let (nl, tech, _) = placed_block("ccu");
        let cells: Vec<foldic_geom::Rect> = nl
            .insts()
            .filter(|(_, i)| !i.fixed && !i.master.is_macro())
            .map(|(_, i)| i.rect(&tech))
            .collect();
        let mut overlap_area = 0.0;
        let mut total_area = 0.0;
        for (i, a) in cells.iter().enumerate() {
            total_area += a.area();
            for b in &cells[i + 1..] {
                if let Some(x) = a.intersection(*b) {
                    overlap_area += x.area();
                }
            }
        }
        assert!(
            overlap_area <= 0.02 * total_area,
            "overlap {overlap_area} of {total_area}"
        );
    }

    #[test]
    fn folded_placement_keeps_tiers_separate() {
        let (mut design, tech) = T2Config::tiny().generate();
        let id = design.find_block("l2t0").unwrap();
        let outline = design.block(id).outline;
        let nl = &mut design.block_mut(id).netlist;
        let part =
            foldic_partition::bipartition(nl, &tech, &foldic_partition::PartitionConfig::default());
        foldic_partition::apply_partition(nl, &part);
        place_folded(nl, &tech, outline, &PlacerConfig::fast(), &[]).unwrap();
        // both tiers hold cells, and all stay in the outline
        let mut per_tier = [0usize; 2];
        for (_, inst) in nl.insts() {
            if let InstMaster::Cell(_) = inst.master {
                per_tier[inst.tier.index()] += 1;
                assert!(outline.inflated(1e-6).contains(inst.pos));
            }
        }
        assert!(per_tier[0] > 0 && per_tier[1] > 0);
    }
}
