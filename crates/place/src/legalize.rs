//! Abacus-style row legalization around macros and obstacles.
//!
//! Cells of a tier are snapped into standard-cell rows; each row is split
//! into free segments by the macros (and TSV obstacles) on that tier.
//! Within a segment, cells are packed by the Abacus cluster-collapse
//! method: clusters of touching cells share an optimal position (the mean
//! of their desired left edges), so the segment never strands dead space
//! while displacement stays minimal.

use crate::Obstacle;
use foldic_geom::{Point, Rect, Tier};
use foldic_netlist::{InstId, Netlist};
use foldic_tech::Technology;

#[derive(Debug)]
struct Segment {
    x0: f64,
    x1: f64,
    used: f64,
    /// `(inst, desired left edge, width)`
    cells: Vec<(InstId, f64, f64)>,
}

impl Segment {
    fn width(&self) -> f64 {
        self.x1 - self.x0
    }
}

#[derive(Debug, Clone, Copy)]
struct Cluster {
    /// Σ (desired left edge − offset inside cluster)
    q: f64,
    /// total width
    w: f64,
    /// cell count
    n: usize,
    /// first cell index in the segment's sorted order
    first: usize,
}

/// Legalizes the movable cells of `tier` (`None` = all tiers) into rows.
pub fn legalize_tier(
    netlist: &mut Netlist,
    tech: &Technology,
    outline: Rect,
    obstacles: &[Obstacle],
    tier: Option<Tier>,
) {
    let row_h = tech.row_height;
    let num_rows = ((outline.height() / row_h).floor() as usize).max(1);

    // blocked rects on this tier
    let mut blocked: Vec<Rect> = netlist
        .insts()
        .filter(|(_, i)| i.fixed && i.master.is_macro() && tier.is_none_or(|t| i.tier == t))
        .map(|(_, i)| i.rect(tech).inflated(0.2))
        .collect();
    blocked.extend(
        obstacles
            .iter()
            .filter(|o| tier.is_none() || o.tier.is_none() || o.tier == tier)
            .map(|o| o.rect),
    );

    // build row segments
    let mut rows: Vec<Vec<Segment>> = Vec::with_capacity(num_rows);
    for r in 0..num_rows {
        let y0 = outline.lly + r as f64 * row_h;
        let row_rect = Rect::new(outline.llx, y0, outline.urx, y0 + row_h);
        let mut cuts: Vec<(f64, f64)> = blocked
            .iter()
            .filter(|b| b.overlaps(row_rect))
            .map(|b| (b.llx, b.urx))
            .collect();
        cuts.sort_by(|a, b| a.0.total_cmp(&b.0));
        let mut segs = Vec::new();
        let mut x = outline.llx;
        for (c0, c1) in cuts {
            if c0 > x {
                segs.push(Segment {
                    x0: x,
                    x1: c0,
                    used: 0.0,
                    cells: Vec::new(),
                });
            }
            x = x.max(c1);
        }
        if x < outline.urx {
            segs.push(Segment {
                x0: x,
                x1: outline.urx,
                used: 0.0,
                cells: Vec::new(),
            });
        }
        rows.push(segs);
    }

    // assign each cell to a segment (nearest row with room), x order
    let mut cells: Vec<(InstId, Point, f64)> = netlist
        .insts()
        .filter(|(_, i)| !i.fixed && !i.master.is_macro() && tier.is_none_or(|t| i.tier == t))
        .map(|(id, i)| {
            let (w, _) = i.dims_um(tech);
            (id, i.pos, w)
        })
        .collect();
    cells.sort_by(|a, b| a.1.x.total_cmp(&b.1.x).then(a.1.y.total_cmp(&b.1.y)));

    for (id, want, w) in cells {
        let want_row = (((want.y - outline.lly) / row_h).floor() as isize)
            .clamp(0, num_rows as isize - 1) as usize;
        let mut best: Option<(usize, usize, f64)> = None; // (row, seg, cost)
        for radius in 0..num_rows {
            for row in row_candidates(want_row, radius, num_rows) {
                let y = outline.lly + (row as f64 + 0.5) * row_h;
                for (si, seg) in rows[row].iter().enumerate() {
                    if seg.used + w > seg.width() {
                        continue;
                    }
                    // x displacement lower bound: distance from the
                    // desired spot to the segment interval
                    let dx = if want.x < seg.x0 {
                        seg.x0 - want.x
                    } else if want.x > seg.x1 {
                        want.x - seg.x1
                    } else {
                        0.0
                    };
                    let cost = dx + (y - want.y).abs();
                    if best.as_ref().is_none_or(|b| cost < b.2) {
                        best = Some((row, si, cost));
                    }
                }
            }
            if let Some(b) = &best {
                if radius as f64 * row_h > b.2 {
                    break;
                }
            }
        }
        match best {
            Some((row, si, _)) => {
                let seg = &mut rows[row][si];
                seg.used += w;
                seg.cells.push((id, want.x - w / 2.0, w));
            }
            None => {
                // over-full block: clamp the footprint inside the outline
                let half = w / 2.0;
                let x = want.x.clamp(
                    outline.llx + half,
                    (outline.urx - half).max(outline.llx + half),
                );
                let y = outline.lly + (want_row as f64 + 0.5) * row_h;
                netlist.inst_mut(id).pos = Point::new(x, y);
            }
        }
    }

    // Abacus collapse per segment, then write back final positions.
    for (r, segs) in rows.iter_mut().enumerate() {
        let y = outline.lly + (r as f64 + 0.5) * row_h;
        for seg in segs {
            if seg.cells.is_empty() {
                continue;
            }
            seg.cells.sort_by(|a, b| a.1.total_cmp(&b.1));
            let mut clusters: Vec<Cluster> = Vec::new();
            for (i, &(_, e, w)) in seg.cells.iter().enumerate() {
                clusters.push(Cluster {
                    q: e,
                    w,
                    n: 1,
                    first: i,
                });
                // merge while the new cluster overlaps its predecessor
                loop {
                    let len = clusters.len();
                    if len < 2 {
                        break;
                    }
                    let prev = clusters[len - 2];
                    let cur = clusters[len - 1];
                    let prev_x = cluster_pos(&prev, seg);
                    let cur_x = cluster_pos(&cur, seg);
                    if prev_x + prev.w <= cur_x + 1e-9 {
                        break;
                    }
                    // merge cur into prev: cur's offsets shift by prev.w
                    let merged = Cluster {
                        q: prev.q + cur.q - cur.n as f64 * prev.w,
                        w: prev.w + cur.w,
                        n: prev.n + cur.n,
                        first: prev.first,
                    };
                    clusters.truncate(len - 2);
                    clusters.push(merged);
                }
            }
            for c in &clusters {
                let mut x = cluster_pos(c, seg);
                for k in 0..c.n {
                    let (id, _, w) = seg.cells[c.first + k];
                    netlist.inst_mut(id).pos = Point::new(x + w / 2.0, y);
                    x += w;
                }
            }
        }
    }
}

fn cluster_pos(c: &Cluster, seg: &Segment) -> f64 {
    (c.q / c.n as f64).clamp(seg.x0, (seg.x1 - c.w).max(seg.x0))
}

fn row_candidates(center: usize, radius: usize, num_rows: usize) -> Vec<usize> {
    if radius == 0 {
        return vec![center];
    }
    let mut v = Vec::new();
    if center >= radius {
        v.push(center - radius);
    }
    if center + radius < num_rows {
        v.push(center + radius);
    }
    v
}

#[cfg(test)]
mod tests {
    use super::*;
    use foldic_netlist::InstMaster;
    use foldic_tech::{CellKind, Drive, VthClass};

    #[test]
    fn stacked_cells_get_separated() {
        let tech = Technology::cmos28();
        let master = InstMaster::Cell(tech.cells.id_of(CellKind::Nand2, Drive::X2, VthClass::Rvt));
        let outline = Rect::new(0.0, 0.0, 40.0, 24.0);
        let mut nl = Netlist::new("stack");
        for i in 0..60 {
            let id = nl.add_inst(format!("c{i}"), master);
            nl.inst_mut(id).pos = Point::new(20.0, 12.0); // all on one spot
        }
        legalize_tier(&mut nl, &tech, outline, &[], None);
        // pairwise overlaps must be (nearly) zero
        let rects: Vec<Rect> = nl.insts().map(|(_, i)| i.rect(&tech)).collect();
        let mut overlap = 0.0;
        for (i, a) in rects.iter().enumerate() {
            for b in &rects[i + 1..] {
                if let Some(x) = a.intersection(*b) {
                    overlap += x.area();
                }
            }
        }
        assert!(overlap < 1e-6, "residual overlap {overlap}");
        // everyone on a row centre
        for r in &rects {
            let c = r.center();
            let frac = ((c.y / tech.row_height) - 0.5).fract().abs();
            assert!(frac < 1e-6 || (frac - 1.0).abs() < 1e-6);
        }
    }

    #[test]
    fn abacus_preserves_spread_positions() {
        // Cells already legally spaced must barely move.
        let tech = Technology::cmos28();
        let master = InstMaster::Cell(tech.cells.id_of(CellKind::Inv, Drive::X1, VthClass::Rvt));
        let outline = Rect::new(0.0, 0.0, 100.0, 2.4);
        let mut nl = Netlist::new("spread");
        let mut ids = Vec::new();
        for i in 0..10 {
            let id = nl.add_inst(format!("c{i}"), master);
            nl.inst_mut(id).pos = Point::new(5.0 + 10.0 * i as f64, 0.6);
            ids.push(id);
        }
        legalize_tier(&mut nl, &tech, outline, &[], None);
        for (i, &id) in ids.iter().enumerate() {
            let p = nl.inst(id).pos;
            assert!(
                (p.x - (5.0 + 10.0 * i as f64)).abs() < 0.5,
                "cell {i} moved to {p}"
            );
        }
    }

    #[test]
    fn cells_never_land_on_obstacles() {
        let tech = Technology::cmos28();
        let master = InstMaster::Cell(tech.cells.id_of(CellKind::Inv, Drive::X1, VthClass::Rvt));
        let outline = Rect::new(0.0, 0.0, 30.0, 12.0);
        let hole = Rect::new(10.0, 0.0, 20.0, 12.0);
        let mut nl = Netlist::new("obst");
        for i in 0..40 {
            let id = nl.add_inst(format!("c{i}"), master);
            nl.inst_mut(id).pos = Point::new(15.0, 6.0); // in the middle of the hole
        }
        legalize_tier(
            &mut nl,
            &tech,
            outline,
            &[Obstacle {
                rect: hole,
                tier: None,
            }],
            None,
        );
        for (_, inst) in nl.insts() {
            assert!(
                !hole.overlaps(inst.rect(&tech).inflated(-0.01)),
                "{} at {}",
                nl.name_of(inst.name),
                inst.pos
            );
        }
    }

    #[test]
    fn per_tier_legalization_ignores_other_tier() {
        let tech = Technology::cmos28();
        let master = InstMaster::Cell(tech.cells.id_of(CellKind::Inv, Drive::X1, VthClass::Rvt));
        let outline = Rect::new(0.0, 0.0, 20.0, 6.0);
        let mut nl = Netlist::new("tiers");
        let a = nl.add_inst("a", master);
        let b = nl.add_inst("b", master);
        nl.inst_mut(a).pos = Point::new(10.0, 3.0);
        nl.inst_mut(b).pos = Point::new(10.0, 3.0);
        nl.inst_mut(b).tier = Tier::Top;
        legalize_tier(&mut nl, &tech, outline, &[], Some(Tier::Bottom));
        // a is snapped to a row; b untouched
        assert_eq!(nl.inst(b).pos, Point::new(10.0, 3.0));
    }
}
