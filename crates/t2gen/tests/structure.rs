//! Structural invariants of the synthetic T2 across scales.

use foldic_netlist::{BlockKind, InstMaster, NetlistStats, PinRef};
use foldic_t2::{block_specs, T2Config, SPC_FUBS};

#[test]
fn every_block_outline_contains_its_content() {
    let (design, tech) = T2Config::tiny().generate();
    for (_, block) in design.blocks() {
        for (_, inst) in block.netlist.insts() {
            assert!(
                block.outline.inflated(1.0).contains(inst.pos),
                "{}: {} at {} outside {}",
                block.name,
                block.netlist.name_of(inst.name),
                inst.pos,
                block.outline
            );
            if inst.master.is_macro() {
                assert!(
                    block.outline.inflated(1.0).contains_rect(inst.rect(&tech)),
                    "{}: macro {} clipped",
                    block.name,
                    block.netlist.name_of(inst.name)
                );
            }
        }
        for (_, port) in block.netlist.ports() {
            assert!(
                block.outline.inflated(1.0).contains(port.pos),
                "{}: port {} off the boundary box",
                block.name,
                block.netlist.name_of(port.name)
            );
        }
    }
}

#[test]
fn macro_counts_match_the_specs() {
    let (design, _) = T2Config::tiny().generate();
    let specs = block_specs();
    for (_, block) in design.blocks() {
        let spec = specs.iter().find(|s| s.kind == block.kind).unwrap();
        let expected: usize = spec.macros.iter().map(|&(_, n)| n).sum();
        let actual = block
            .netlist
            .insts()
            .filter(|(_, i)| i.master.is_macro())
            .count();
        assert_eq!(actual, expected, "{}", block.name);
    }
}

#[test]
fn fub_weights_cover_the_core() {
    let total: f64 = SPC_FUBS.iter().map(|(_, w, _)| w).sum();
    assert!((total - 1.0).abs() < 1e-9, "FUB weights sum to {total}");
    assert_eq!(SPC_FUBS.iter().filter(|(_, _, folded)| *folded).count(), 6);
    assert_eq!(SPC_FUBS.len(), 14);
}

#[test]
fn size_scales_instance_counts_roughly_linearly() {
    let tiny = T2Config::tiny();
    let (d_tiny, _) = tiny.generate();
    let mut bigger = T2Config::tiny();
    bigger.size *= 2.0;
    let (d_big, _) = bigger.generate();
    let ratio = d_big.total_insts() as f64 / d_tiny.total_insts() as f64;
    assert!(ratio > 1.6 && ratio < 2.4, "ratio {ratio}");
}

#[test]
fn stats_are_self_consistent_per_block() {
    let (design, tech) = T2Config::tiny().generate();
    for (_, block) in design.blocks() {
        let s = NetlistStats::collect(&block.netlist, &tech);
        assert_eq!(s.num_insts, s.num_cells + s.num_macros, "{}", block.name);
        assert!(s.num_buffers <= s.num_cells);
        assert!(s.num_flops <= s.num_cells);
        assert!(
            s.avg_fanout() > 0.5 && s.avg_fanout() < 10.0,
            "{}",
            block.name
        );
    }
}

#[test]
fn flop_clock_pins_never_carry_data() {
    // pin 1 of every DFF must only appear on clock nets
    let (design, tech) = T2Config::tiny().generate();
    for (_, block) in design.blocks() {
        let nl = &block.netlist;
        for (_, net) in nl.nets() {
            for s in net.sinks() {
                if let PinRef::InstIn(i, 1) = s {
                    if let InstMaster::Cell(m) = nl.inst(i).master {
                        if tech.cells.master(m).kind == foldic_tech::CellKind::Dff {
                            assert!(
                                net.is_clock,
                                "{}: data net {} drives a flop clock pin",
                                block.name,
                                nl.name_of(net.name)
                            );
                        }
                    }
                }
            }
        }
    }
}

#[test]
fn chip_connectivity_is_symmetric_across_slices() {
    // every SPC slice must see the same bus structure
    let (design, _) = T2Config::small().generate();
    let port_count = |name: &str| {
        design
            .block(design.find_block(name).unwrap())
            .netlist
            .num_ports()
    };
    let p0 = port_count("spc0");
    for i in 1..8 {
        assert_eq!(port_count(&format!("spc{i}")), p0, "spc{i}");
    }
    let l0 = port_count("l2d0");
    for i in 1..8 {
        assert_eq!(port_count(&format!("l2d{i}")), l0, "l2d{i}");
    }
}

#[test]
fn memory_blocks_are_macro_area_dominated() {
    let (design, tech) = T2Config::tiny().generate();
    let b = design.block(design.find_block("l2d0").unwrap());
    let s = NetlistStats::collect(&b.netlist, &tech);
    assert!(
        s.macro_area_um2 > 3.0 * s.cell_area_um2,
        "scdata must be macro-dominated: {} vs {}",
        s.macro_area_um2,
        s.cell_area_um2
    );
    // and the SPC must not be
    let spc = design.block(design.find_block("spc0").unwrap());
    let s = NetlistStats::collect(&spc.netlist, &tech);
    assert!(s.cell_area_um2 > s.macro_area_um2);
}

#[test]
fn block_kind_inventory_matches_the_paper() {
    let (design, _) = T2Config::tiny().generate();
    let count = |k: BlockKind| design.blocks().filter(|(_, b)| b.kind == k).count();
    assert_eq!(count(BlockKind::Spc), 8);
    assert_eq!(count(BlockKind::L2d), 8);
    assert_eq!(count(BlockKind::L2t), 8);
    assert_eq!(count(BlockKind::L2b), 8);
    assert_eq!(count(BlockKind::Ccx), 1);
    assert_eq!(count(BlockKind::Mcu), 4);
    assert_eq!(design.num_blocks(), 46);
}
