//! Synthetic million-cell scale designs for database benchmarking.
//!
//! The T2 generator reproduces the paper's workload; this module answers a
//! different question — how the design database behaves at 10×–100× that
//! size. A [`ScaleConfig`] describes a chip of `cells` instances split into
//! ≤64 k-cell blocks wired in a ring of 64-bit buses. Blocks are generated
//! **one at a time** (`block(i)`), so a million-cell chip can be streamed
//! straight into a [`DbWriter`] with peak memory proportional to a single
//! block, never the whole design.
//!
//! The topology is deliberately simple but database-representative:
//! hierarchical instance/net names long enough to punish string storage,
//! realistic fanout (1–4 sinks plus a clock tree), boundary ports, and
//! chip-level buses. Generation is deterministic in [`ScaleConfig::seed`];
//! nets are finished before the next one starts, so the CSR pin pool fills
//! sequentially with zero relocation.

use foldic_geom::Rect;
use foldic_netlist::db::{DbError, DbWriter};
use foldic_netlist::{
    Block, BlockId, BlockKind, ChipNet, ClockDomain, Design, InstMaster, Netlist, NetlistBuilder,
    PinRef, PortDir, PortId,
};
use foldic_tech::{CellKind, Drive, Technology, VthClass};
use std::path::Path;

/// Width of each inter-block ring bus, in wires.
pub const BUS_WIRES: usize = 64;

/// Cells per block before the design splits into more blocks.
pub const CELLS_PER_BLOCK: u64 = 65_536;

/// Smallest design the generator will produce.
pub const MIN_CELLS: u64 = 256;

/// A synthetic scale design: `cells` instances in a ring of blocks.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ScaleConfig {
    /// Total instance count across all blocks (clamped to [`MIN_CELLS`]).
    pub cells: u64,
    /// RNG seed; every run with the same config is identical.
    pub seed: u64,
}

/// SplitMix64 finalizer: a cheap stateless hash so both the census
/// pre-pass and the build pass derive identical per-entity randomness.
fn mix(seed: u64, i: u64) -> u64 {
    let mut z = seed ^ i.wrapping_mul(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Fanout of signal net `i`: 1–4 sinks.
fn fanout(salt: u64, i: u64) -> u64 {
    1 + (mix(salt, i) % 4)
}

impl ScaleConfig {
    /// A scale design of (at least [`MIN_CELLS`]) `cells` instances.
    pub fn new(cells: u64, seed: u64) -> Self {
        Self {
            cells: cells.max(MIN_CELLS),
            seed,
        }
    }

    /// Chip-level design name.
    pub fn design_name(&self) -> String {
        format!("scale{}", self.cells)
    }

    /// Number of blocks the cells split into.
    pub fn num_blocks(&self) -> usize {
        self.cells.div_ceil(CELLS_PER_BLOCK) as usize
    }

    /// Instance count of block `b`.
    pub fn block_cells(&self, b: usize) -> u64 {
        let nb = self.num_blocks() as u64;
        let base = self.cells / nb;
        let rem = self.cells % nb;
        base + u64::from((b as u64) < rem)
    }

    /// Per-block seed salt.
    fn salt(&self, b: usize) -> u64 {
        mix(self.seed, 0x5CA1_E000 + b as u64)
    }

    /// Generates block `b` in isolation — the streaming entry point.
    ///
    /// Every net's sinks are appended before the next net starts, so the
    /// netlist's pin pool is filled strictly sequentially and the exact
    /// pin census computed up front is neither exceeded nor relocated.
    pub fn block(&self, b: usize, tech: &Technology) -> Block {
        let n = self.block_cells(b);
        let salt = self.salt(b);
        let bname = format!("scale/blk{b:02}");
        let flops = (n + 4) / 8; // cells with i % 8 == 3
        let bus = BUS_WIRES as u64;

        // Exact sink census: signal fanouts + ring-bus port sinks +
        // input-port net sinks + the clock tree.
        let signal_sinks: u64 = (0..n).map(|i| fanout(salt, i)).sum();
        let pins = signal_sinks + bus + 2 * bus + flops;
        let nets = n + bus + 1;
        let mut nl = NetlistBuilder::new(bname.clone(), n as usize, nets as usize, pins as usize);

        let t_po = nl.name_template(&format!("{bname}_po"), "");
        let t_pi = nl.name_template(&format!("{bname}_pi"), "");
        let t_cell = nl.name_template(&format!("{bname}_u"), "");
        let t_net = nl.name_template(&format!("n_{bname}_"), "");

        // ---- boundary ports: bus out, bus in, clock -------------------
        for k in 0..BUS_WIRES {
            nl.add_port(t_po.at(k), PortDir::Output, ClockDomain::Cpu);
        }
        for k in 0..BUS_WIRES {
            nl.add_port(t_pi.at(k), PortDir::Input, ClockDomain::Cpu);
        }
        let clk_port = nl.add_port("clk", PortDir::Input, ClockDomain::Cpu);

        // ---- cells on a 2 µm-pitch grid -------------------------------
        let masters: [InstMaster; 8] = [
            (CellKind::Nand2, Drive::X1),
            (CellKind::Inv, Drive::X2),
            (CellKind::Nor2, Drive::X1),
            (CellKind::Dff, Drive::X1),
            (CellKind::And2, Drive::X1),
            (CellKind::Buf, Drive::X2),
            (CellKind::Xor2, Drive::X1),
            (CellKind::Mux2, Drive::X1),
        ]
        .map(|(kind, drive)| InstMaster::Cell(tech.cells.id_of(kind, drive, VthClass::Rvt)));
        const PITCH: f64 = 2.0;
        let cols = (n as f64).sqrt().ceil() as u64;
        let rows = n.div_ceil(cols);
        for i in 0..n {
            let id = nl.add_inst(t_cell.at(i as usize), masters[(i % 8) as usize]);
            let mut inst = nl.inst_mut(id);
            inst.pos =
                foldic_geom::Point::new(PITCH * (i % cols) as f64, PITCH * (i / cols) as f64);
        }

        // ---- signal nets: one per cell, window-local sinks ------------
        // Bus-driver cells (every `stride`-th) also feed an output port;
        // the port sink is appended while the net is still the newest, so
        // the pool stays sequential.
        let stride = n / bus; // n >= 256 => stride >= 4, indices distinct
        for i in 0..n {
            let nid = nl.add_net(t_net.at(i as usize));
            nl.connect_driver(nid, PinRef::output((i as usize).into()));
            for j in 0..fanout(salt, i) {
                let t = (i + 1 + j) % n;
                nl.connect_sink(nid, PinRef::input((t as usize).into(), 0));
            }
            if i % stride == 0 && i / stride < bus {
                let k = (i / stride) as usize;
                nl.connect_sink(nid, PinRef::port(PortId::from(k)));
            }
        }

        // ---- input-port nets: each bus wire drives two cells ----------
        for k in 0..bus {
            let nid = nl.add_net(t_net.at((n + k) as usize));
            nl.connect_driver(nid, PinRef::port(PortId::from((bus + k) as usize)));
            let a = (k * 7 + 3) % n;
            let mut c = (k * 13 + 11) % n;
            if c == a {
                c = (c + 1) % n;
            }
            nl.connect_sink(nid, PinRef::input((a as usize).into(), 0));
            nl.connect_sink(nid, PinRef::input((c as usize).into(), 0));
        }

        // ---- clock net last: port-driven, one sink per flop -----------
        let cknet = nl.add_net(format!("n_{bname}_clk"));
        nl.connect_driver(cknet, PinRef::port(clk_port));
        for i in 0..n {
            if i % 8 == 3 {
                nl.connect_sink(cknet, PinRef::input((i as usize).into(), 1));
            }
        }
        {
            let mut ck = nl.net_mut(cknet);
            ck.is_clock = true;
            ck.domain = ClockDomain::Cpu;
        }

        let nl: Netlist = nl.finish();
        let outline = Rect::new(
            0.0,
            0.0,
            PITCH * (cols + 1) as f64,
            PITCH * (rows + 1) as f64,
        );
        Block::new(bname, BlockKind::Misc, nl, outline)
    }

    /// The ring buses between adjacent blocks (empty for a 1-block chip).
    pub fn chip_nets(&self) -> Vec<ChipNet> {
        let nb = self.num_blocks();
        if nb < 2 {
            return Vec::new();
        }
        let mut nets = Vec::with_capacity(nb * BUS_WIRES);
        for b in 0..nb {
            let next = (b + 1) % nb;
            for k in 0..BUS_WIRES {
                nets.push(ChipNet {
                    name: format!("ring_{b:02}_{k:02}"),
                    endpoints: vec![
                        (BlockId::from(b), PortId::from(k)),
                        (BlockId::from(next), PortId::from(BUS_WIRES + k)),
                    ],
                    bits: 1,
                    domain: ClockDomain::Cpu,
                });
            }
        }
        nets
    }

    /// Materializes the whole design in memory.
    ///
    /// Convenient for the smaller sizes; at a million cells prefer
    /// [`ScaleConfig::save`], which never holds more than one block.
    pub fn design(&self, tech: &Technology) -> Design {
        let mut design = Design::new(self.design_name());
        for b in 0..self.num_blocks() {
            design.add_block(self.block(b, tech));
        }
        for net in self.chip_nets() {
            design.add_chip_net(net);
        }
        design
    }

    /// Streams the design into a `foldic-db/1` snapshot block by block:
    /// peak memory is O(largest block), not O(design).
    ///
    /// # Errors
    ///
    /// Returns any [`DbError`] from the underlying writer.
    pub fn save(&self, tech: &Technology, path: &Path) -> Result<(), DbError> {
        let cells = self.cells.to_string();
        let seed = format!("{:#x}", self.seed);
        let meta: [(&str, &str); 3] = [("generator", "scale"), ("cells", &cells), ("seed", &seed)];
        let mut w = DbWriter::create(path, &self.design_name(), &meta)?;
        for b in 0..self.num_blocks() {
            w.add_block(&self.block(b, tech))?;
        }
        w.chip_nets(&self.chip_nets())?;
        w.finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use foldic_netlist::db::{file_digest, load_design};

    #[test]
    fn small_block_is_sound_and_named_right() {
        let cfg = ScaleConfig::new(1000, 7);
        assert_eq!(cfg.num_blocks(), 1);
        let tech = Technology::cmos28();
        let blk = cfg.block(0, &tech);
        assert_eq!(blk.netlist.num_insts(), 1000);
        assert_eq!(blk.netlist.num_nets(), 1000 + BUS_WIRES + 1);
        blk.netlist.check().expect("scale block must be sound");
        let nl = &blk.netlist;
        assert_eq!(
            nl.name_of(nl.inst(5usize.into()).name).to_string(),
            "scale/blk00_u5"
        );
        let (_, net0) = nl.nets().next().unwrap();
        assert_eq!(nl.name_of(net0.name).to_string(), "n_scale/blk00_0");
    }

    #[test]
    fn cells_split_exactly_across_blocks() {
        let cfg = ScaleConfig::new(150_000, 1);
        let total: u64 = (0..cfg.num_blocks()).map(|b| cfg.block_cells(b)).sum();
        assert_eq!(total, 150_000);
        assert_eq!(cfg.num_blocks(), 3);
        assert!((0..3).all(|b| cfg.block_cells(b) >= MIN_CELLS));
    }

    #[test]
    fn tiny_configs_clamp_to_min() {
        assert_eq!(ScaleConfig::new(10, 0).cells, MIN_CELLS);
    }

    #[test]
    fn snapshot_roundtrip_and_determinism() {
        let cfg = ScaleConfig::new(2000, 0xC0FFEE);
        let tech = Technology::cmos28();
        let dir = std::env::temp_dir();
        let p1 = dir.join("foldic_scale_rt_1.fdb");
        let p2 = dir.join("foldic_scale_rt_2.fdb");
        cfg.save(&tech, &p1).unwrap();
        cfg.save(&tech, &p2).unwrap();
        assert_eq!(
            file_digest(&p1).unwrap(),
            file_digest(&p2).unwrap(),
            "scale snapshots must be byte-identical run to run"
        );
        let (design, info) = load_design(&p1).unwrap();
        assert_eq!(design.total_insts() as u64, 2000);
        assert_eq!(design.num_blocks(), 1);
        assert_eq!(
            info.meta.get("generator").map(String::as_str),
            Some("scale")
        );
        assert_eq!(info.meta.get("cells").map(String::as_str), Some("2000"));
        assert_eq!(info.cells, 2000);
        for (_, blk) in design.blocks() {
            blk.netlist.check().expect("loaded block sound");
        }
        let _ = std::fs::remove_file(&p1);
        let _ = std::fs::remove_file(&p2);
    }

    #[test]
    fn multi_block_ring_has_buses() {
        let cfg = ScaleConfig::new(140_000, 3);
        assert_eq!(cfg.num_blocks(), 3);
        let nets = cfg.chip_nets();
        assert_eq!(nets.len(), 3 * BUS_WIRES);
        for net in &nets {
            assert_eq!(net.arity(), 2);
        }
        // streaming build of just one middle block works standalone
        let tech = Technology::cmos28();
        let blk = cfg.block(1, &tech);
        blk.netlist.check().unwrap();
        assert_eq!(blk.name, "scale/blk01");
    }
}
