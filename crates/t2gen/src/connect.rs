//! Inter-block connectivity synthesis.
//!
//! Creates boundary ports on each block, wires them to nearby internal
//! logic, and records chip-level nets. Bus widths follow the published T2
//! connectivity (≈280 wires between the CCX and each SPC / L2-tag, cache
//! buses per bank, NIU-confined wiring). The crossbar's request buses land
//! on PCX cells and its return buses are driven by CPX cells, preserving
//! the structure §4.3 exploits when folding.

use crate::T2Config;
use foldic_geom::Point;
use foldic_netlist::{
    BlockId, ChipNet, ClockDomain, Design, GroupId, InstId, NetId, PinRef, PortDir,
};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::HashMap;

/// One logical bus between two blocks.
struct Bus {
    from: &'static str,
    to: &'static str,
    bits: usize,
    domain: ClockDomain,
}

fn bus_table() -> Vec<Bus> {
    let mut buses = Vec::new();
    let b = |from: &'static str, to: &'static str, bits, domain| Bus {
        from,
        to,
        bits,
        domain,
    };
    // Names for the 8-way blocks are built dynamically below; we lean on
    // leaked strings to keep the Bus struct simple and 'static.
    fn s(x: String) -> &'static str {
        Box::leak(x.into_boxed_str())
    }
    use ClockDomain::{Cpu, Io};
    for i in 0..8 {
        let spc = s(format!("spc{i}"));
        let l2t = s(format!("l2t{i}"));
        let l2d = s(format!("l2d{i}"));
        let l2b = s(format!("l2b{i}"));
        let mcu = s(format!("mcu{}", i / 2));
        buses.push(b(spc, "ccx", 130, Cpu));
        buses.push(b("ccx", spc, 150, Cpu));
        buses.push(b("ccx", l2t, 130, Cpu));
        buses.push(b(l2t, "ccx", 150, Cpu));
        buses.push(b(l2t, l2d, 180, Cpu));
        buses.push(b(l2d, l2t, 160, Cpu));
        buses.push(b(l2t, l2b, 90, Cpu));
        buses.push(b(l2b, l2t, 80, Cpu));
        buses.push(b(l2d, mcu, 160, Cpu));
        buses.push(b(mcu, l2d, 140, Cpu));
        buses.push(b("ncu", spc, 40, Cpu));
        buses.push(b(spc, "ncu", 40, Cpu));
        buses.push(b("siu", l2b, 50, Cpu));
        buses.push(b(l2b, "siu", 60, Cpu));
    }
    // NIU cluster: RTX talks to MAC/RDP/TDS (and SIU); the paper notes
    // "almost all signals to/from [RTX] are connected with MAC, TDS, and
    // RDP that form a network interface unit".
    for (f, t, bits) in [
        ("rtx", "mac", 200),
        ("mac", "rtx", 200),
        ("rtx", "rdp", 150),
        ("rdp", "rtx", 140),
        ("rtx", "tds", 150),
        ("tds", "rtx", 140),
        ("rdp", "mac", 90),
        ("mac", "tds", 90),
        ("rtx", "siu", 100),
        ("siu", "rtx", 90),
    ] {
        buses.push(b(f, t, bits, Io));
    }
    // Control / peripheral fabric.
    for (f, t, bits) in [
        ("dmu", "peu", 150),
        ("peu", "dmu", 150),
        ("dmu", "siu", 90),
        ("siu", "dmu", 90),
        ("ncu", "dmu", 80),
        ("dmu", "ncu", 60),
        ("ccu", "ncu", 16),
    ] {
        buses.push(b(f, t, bits, Cpu));
    }
    buses
}

/// Per-block lookup data built once before mutation starts.
struct BlockIndex {
    /// `(inst, seed position, group)` of every connectable logic cell.
    cells: Vec<(InstId, Point, Option<GroupId>)>,
    /// Net driven by each cell.
    driver_net: HashMap<InstId, NetId>,
    /// Group name → id.
    groups: HashMap<String, GroupId>,
    /// Outline dims.
    w: f64,
    h: f64,
    /// Per-peer running pin offset along the perimeter.
    pin_cursor: HashMap<String, f64>,
}

impl BlockIndex {
    fn build(design: &Design, id: BlockId) -> Self {
        let block = design.block(id);
        let nl = &block.netlist;
        let mut driver_net = HashMap::new();
        for (nid, net) in nl.nets() {
            if net.is_clock {
                continue;
            }
            if let Some(PinRef::InstOut(i)) = net.driver {
                driver_net.entry(i).or_insert(nid);
            }
        }
        let mut cells = Vec::new();
        for (iid, inst) in nl.insts() {
            // only signal-driving logic cells are connectable (clock-tree
            // buffers drive clock nets exclusively and stay internal)
            if !inst.master.is_macro() && !inst.fixed && driver_net.contains_key(&iid) {
                cells.push((iid, inst.pos, inst.group));
            }
        }
        let groups = (0..nl.num_groups())
            .map(|g| {
                (
                    nl.group_name(GroupId(g as u32)).to_owned(),
                    GroupId(g as u32),
                )
            })
            .collect();
        Self {
            cells,
            driver_net,
            groups,
            w: block.outline.width(),
            h: block.outline.height(),
            pin_cursor: HashMap::new(),
        }
    }

    /// Picks a connectable cell near `p`, optionally restricted to `group`,
    /// by sampling candidates and keeping the closest.
    fn pick_near(&self, p: Point, group: Option<GroupId>, rng: &mut StdRng) -> InstId {
        let candidates: Vec<&(InstId, Point, Option<GroupId>)> = match group {
            Some(g) => self
                .cells
                .iter()
                .filter(|(_, _, cg)| *cg == Some(g))
                .collect(),
            None => self.cells.iter().collect(),
        };
        let pool = if candidates.is_empty() {
            self.cells.iter().collect::<Vec<_>>()
        } else {
            candidates
        };
        assert!(!pool.is_empty(), "block has no connectable cells");
        let mut best = pool[rng.gen_range(0..pool.len())];
        let mut best_d = best.1.manhattan(p);
        for _ in 0..48 {
            let c = pool[rng.gen_range(0..pool.len())];
            let d = c.1.manhattan(p);
            if d < best_d {
                best = c;
                best_d = d;
            }
        }
        best.0
    }

    /// Next pin location on the perimeter for a bus to/from `peer`.
    fn next_pin_pos(&mut self, peer: &str) -> Point {
        let perim = 2.0 * (self.w + self.h);
        // base offset from a stable hash of the peer name
        let hash = peer
            .bytes()
            .fold(0u64, |a, b| a.wrapping_mul(131).wrapping_add(b as u64));
        let base = (hash % 1000) as f64 / 1000.0 * perim;
        let cursor = self.pin_cursor.entry(peer.to_owned()).or_insert(0.0);
        let t = (base + *cursor) % perim;
        *cursor += 1.5; // pin pitch along the boundary in µm
                        // walk the perimeter: bottom, right, top, left
        if t < self.w {
            Point::new(t, 0.0)
        } else if t < self.w + self.h {
            Point::new(self.w, t - self.w)
        } else if t < 2.0 * self.w + self.h {
            Point::new(2.0 * self.w + self.h - t, self.h)
        } else {
            Point::new(0.0, perim - t)
        }
    }
}

/// Group a CCX-side endpoint must attach to: requests land on PCX, returns
/// are driven by CPX; L2-side requests are driven by PCX and returns land
/// on CPX.
fn ccx_group(idx: &BlockIndex, peer: &str, incoming: bool) -> Option<GroupId> {
    let name = if peer.starts_with("spc") {
        if incoming {
            "pcx" // request from a core enters the processor-to-cache crossbar
        } else {
            "cpx" // return to a core leaves the cache-to-processor crossbar
        }
    } else if incoming {
        "cpx" // return data arriving from an L2 bank
    } else {
        "pcx" // request leaving toward an L2 bank
    };
    idx.groups.get(name).copied()
}

/// Wires the whole chip: ports, port nets and chip-level nets.
pub fn wire_chip(design: &mut Design, cfg: &T2Config, seed: u64) {
    let mut rng = StdRng::seed_from_u64(seed);
    let bus_scale = cfg.size.powf(0.6);
    // Build indices for every block up front.
    let mut index: HashMap<BlockId, BlockIndex> = design
        .block_ids()
        .map(|id| (id, BlockIndex::build(design, id)))
        .collect();

    for bus in bus_table() {
        let Some(from_id) = design.find_block(bus.from) else {
            continue;
        };
        let Some(to_id) = design.find_block(bus.to) else {
            continue;
        };
        let bits = ((bus.bits as f64 * bus_scale).round() as usize).max(1);
        for bit in 0..bits {
            // --- source side: output port driven by internal logic -------
            let (out_port, out_pos) = {
                let idx = index.get_mut(&from_id).expect("indexed");
                let pos = idx.next_pin_pos(bus.to);
                let group = if bus.from == "ccx" {
                    ccx_group(idx, bus.to, false)
                } else {
                    None
                };
                let driver_cell = idx.pick_near(pos, group, &mut rng);
                let net = idx.driver_net[&driver_cell];
                let block = design.block_mut(from_id);
                let port = block.netlist.add_port(
                    format!("{}_{}_o{bit}", bus.from, bus.to),
                    PortDir::Output,
                    bus.domain,
                );
                block.netlist.port_mut(port).pos = pos;
                block.netlist.connect_sink(net, PinRef::port(port));
                (port, pos)
            };
            let _ = out_pos;
            // --- sink side: input port driving internal sinks -------------
            let in_port = {
                let idx = index.get_mut(&to_id).expect("indexed");
                let pos = idx.next_pin_pos(bus.from);
                let group = if bus.to == "ccx" {
                    ccx_group(idx, bus.from, true)
                } else {
                    None
                };
                let sink_a = idx.pick_near(pos, group, &mut rng);
                let sink_b = if rng.gen::<f64>() < 0.3 {
                    Some(idx.pick_near(pos, group, &mut rng))
                } else {
                    None
                };
                let block = design.block_mut(to_id);
                let port = block.netlist.add_port(
                    format!("{}_{}_i{bit}", bus.to, bus.from),
                    PortDir::Input,
                    bus.domain,
                );
                block.netlist.port_mut(port).pos = pos;
                let net = block
                    .netlist
                    .add_net(format!("n_{}_{}_i{bit}", bus.to, bus.from));
                block.netlist.net_mut(net).domain = bus.domain;
                block.netlist.connect_driver(net, PinRef::port(port));
                block.netlist.connect_sink(net, PinRef::input(sink_a, 0));
                if let Some(b) = sink_b {
                    if b != sink_a {
                        block.netlist.connect_sink(net, PinRef::input(b, 0));
                    }
                }
                port
            };
            design.add_chip_net(ChipNet {
                name: format!("{}__{}_{bit}", bus.from, bus.to),
                endpoints: vec![(from_id, out_port), (to_id, in_port)],
                bits: 1,
                domain: bus.domain,
            });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::T2Config;

    #[test]
    fn chip_nets_connect_existing_ports() {
        let (d, _) = T2Config::tiny().generate();
        assert!(!d.chip_nets().is_empty());
        for net in d.chip_nets() {
            assert_eq!(net.arity(), 2);
            for &(bid, pid) in &net.endpoints {
                let block = d.block(bid);
                assert!(pid.index() < block.netlist.num_ports(), "{}", net.name);
            }
        }
    }

    #[test]
    fn ccx_spc_bus_width_matches_paper_ratio() {
        // At full size each SPC↔CCX direction pair is ≈280 wires; at tiny
        // size it scales by size^0.6 but must stay symmetric across cores.
        let (d, _) = T2Config::tiny().generate();
        let count = |a: &str, b: &str| {
            d.chip_nets()
                .iter()
                .filter(|n| n.name.starts_with(&format!("{a}__{b}_")))
                .count()
        };
        let c0 = count("spc0", "ccx") + count("ccx", "spc0");
        let c7 = count("spc7", "ccx") + count("ccx", "spc7");
        assert_eq!(c0, c7);
        assert!(c0 > 10);
    }

    #[test]
    fn ccx_request_ports_land_on_pcx() {
        let (d, _) = T2Config::tiny().generate();
        let ccx_id = d.find_block("ccx").unwrap();
        let ccx = d.block(ccx_id);
        let pcx = (0..ccx.netlist.num_groups())
            .map(|g| GroupId(g as u32))
            .find(|&g| ccx.netlist.group_name(g) == "pcx")
            .unwrap();
        // find an input port from spc0 and check its net's sinks are PCX cells
        let mut checked = 0;
        for (_, net) in ccx.netlist.nets() {
            if let Some(PinRef::Port(p)) = net.driver {
                let pname = ccx.netlist.name_of(ccx.netlist.port(p).name).to_string();
                if pname.starts_with("ccx_spc") {
                    for s in net.sinks() {
                        let inst = ccx.netlist.inst(s.inst().unwrap());
                        assert_eq!(
                            inst.group,
                            Some(pcx),
                            "sink {}",
                            ccx.netlist.name_of(inst.name)
                        );
                        checked += 1;
                    }
                }
            }
        }
        assert!(checked > 0);
    }

    #[test]
    fn niu_wiring_is_confined() {
        // RTX's chip nets must touch only MAC/RDP/TDS/SIU.
        let (d, _) = T2Config::tiny().generate();
        let allowed = ["mac", "rdp", "tds", "siu", "rtx"];
        for net in d.chip_nets() {
            if net.name.starts_with("rtx__") || net.name.contains("__rtx_") {
                for &(bid, _) in &net.endpoints {
                    assert!(
                        allowed.contains(&d.block(bid).name.as_str()),
                        "{}",
                        net.name
                    );
                }
            }
        }
    }
}
