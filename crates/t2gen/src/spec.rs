//! Per-block generation specifications.
//!
//! Cell counts are in *synthetic* instances at `size = 1.0` (one synthetic
//! cell ≈ `cluster_size` real cells). Macro counts are physical. The
//! numbers are calibrated so the generated 2D design reproduces the
//! paper's Table 3 census: SPC and RTX as the top power/long-wire blocks,
//! CCX as a wiring-dominated block, L2D memory-dominated with ≈29 % net
//! power.

use foldic_netlist::BlockKind;
use foldic_tech::MacroKind;

/// How macros are pre-placed inside a block.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MacroLayout {
    /// Rows of macros along the top and bottom block edges (tag arrays,
    /// register files).
    Ring,
    /// A regular grid filling the block (the L2D data-bank sub-arrays),
    /// with routing channels between columns and rows.
    Grid,
}

/// Internal hierarchy generated for a block.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum GroupPlan {
    /// Flat logic cloud.
    Flat,
    /// The 14 functional unit blocks of a SPARC core (§4.5).
    Fubs,
    /// The PCX / CPX split of the cache crossbar (§4.3).
    CcxSplit,
}

/// Specification of one block type.
#[derive(Debug, Clone)]
pub struct BlockSpec {
    /// Which T2 block this describes.
    pub kind: BlockKind,
    /// Number of copies in the chip.
    pub count: usize,
    /// Synthetic cell count at `size = 1.0`.
    pub cells: usize,
    /// Fraction of cells that are flip-flops.
    pub flop_frac: f64,
    /// Hard macros instantiated in each copy.
    pub macros: Vec<(MacroKind, usize)>,
    /// Macro pre-placement style.
    pub macro_layout: MacroLayout,
    /// Outline aspect ratio (width / height).
    pub aspect: f64,
    /// Placement utilization used to derive the outline.
    pub utilization: f64,
    /// Mean net span as a fraction of the block dimension (Rent-style
    /// locality; smaller = more local wiring).
    pub locality: f64,
    /// Fraction of nets drawn from the long-range tail.
    pub long_frac: f64,
    /// Toggle activity (expected toggles per clock cycle) of the block's
    /// logic.
    pub activity: f64,
    /// Internal hierarchy.
    pub groups: GroupPlan,
}

impl BlockSpec {
    /// Instance name of copy `i` (`"spc3"`, or just `"ccx"` for singletons).
    pub fn instance_name(&self, i: usize) -> String {
        let base = self.kind.label().to_ascii_lowercase();
        if self.count == 1 {
            base
        } else {
            format!("{base}{i}")
        }
    }
}

/// The 46-block OpenSPARC T2 inventory.
pub fn block_specs() -> Vec<BlockSpec> {
    use BlockKind::*;
    use MacroKind::*;
    let spec = |kind,
                count,
                cells,
                flop_frac,
                macros: &[(MacroKind, usize)],
                macro_layout,
                aspect,
                utilization,
                locality,
                long_frac,
                activity,
                groups| BlockSpec {
        kind,
        count,
        cells,
        flop_frac,
        macros: macros.to_vec(),
        macro_layout,
        aspect,
        utilization,
        locality,
        long_frac,
        activity,
        groups,
    };
    vec![
        // The SPARC core: biggest, flop-rich, 14 FUBs, register files and
        // small arrays. Highest single power share (Table 3: 5.8 % each).
        spec(
            Spc,
            8,
            20_000,
            0.25,
            &[(RegFile, 8), (Sram4k, 4), (Cam, 2)],
            MacroLayout::Ring,
            1.0,
            0.62,
            0.050,
            0.045,
            0.036,
            GroupPlan::Fubs,
        ),
        // L2 data bank: 32× 16 KB SRAM grid, thin logic, memory-power
        // dominated (net power ≈ 29 %).
        spec(
            L2d,
            8,
            1_200,
            0.14,
            &[(Sram16k, 32)],
            MacroLayout::Grid,
            0.63,
            0.78,
            0.110,
            0.035,
            0.095,
            GroupPlan::Flat,
        ),
        // L2 tag: tag SRAMs + CAMs, moderate logic.
        spec(
            L2t,
            8,
            2_400,
            0.20,
            &[(Sram8k, 8), (Cam, 2)],
            MacroLayout::Ring,
            0.875,
            0.70,
            0.085,
            0.055,
            0.185,
            GroupPlan::Flat,
        ),
        // L2 miss buffer.
        spec(
            L2b,
            8,
            1_500,
            0.20,
            &[(Sram4k, 4)],
            MacroLayout::Ring,
            1.0,
            0.70,
            0.080,
            0.040,
            0.055,
            GroupPlan::Flat,
        ),
        // Cache crossbar: pure wiring machine, tall-thin outline, PCX/CPX
        // halves, the highest net-power share (57.6 %).
        spec(
            Ccx,
            1,
            4_500,
            0.10,
            &[],
            MacroLayout::Ring,
            4.2,
            0.55,
            0.200,
            0.120,
            0.053,
            GroupPlan::CcxSplit,
        ),
        // Memory controllers.
        spec(
            Mcu,
            4,
            2_000,
            0.20,
            &[(Sram4k, 2)],
            MacroLayout::Ring,
            1.0,
            0.70,
            0.075,
            0.030,
            0.060,
            GroupPlan::Flat,
        ),
        // NIU receive traffic engine: big I/O-clock block with very long
        // internal wiring (Table 3: 27.5 K long wires, 3.6 % power).
        spec(
            Rtx,
            1,
            5_200,
            0.20,
            &[(Sram8k, 4)],
            MacroLayout::Ring,
            1.0,
            0.65,
            0.140,
            0.160,
            0.400,
            GroupPlan::Flat,
        ),
        // NIU Ethernet MAC.
        spec(
            Mac,
            1,
            2_900,
            0.22,
            &[(Sram4k, 2)],
            MacroLayout::Ring,
            1.0,
            0.70,
            0.090,
            0.070,
            0.380,
            GroupPlan::Flat,
        ),
        // NIU receive datapath.
        spec(
            Rdp,
            1,
            3_400,
            0.20,
            &[(Sram8k, 2)],
            MacroLayout::Ring,
            1.0,
            0.70,
            0.095,
            0.080,
            0.440,
            GroupPlan::Flat,
        ),
        // NIU transmit data store.
        spec(
            Tds,
            1,
            2_900,
            0.20,
            &[(Sram8k, 3)],
            MacroLayout::Ring,
            1.0,
            0.70,
            0.095,
            0.075,
            0.400,
            GroupPlan::Flat,
        ),
        // Control units.
        spec(
            Ncu,
            1,
            1_900,
            0.20,
            &[],
            MacroLayout::Ring,
            1.0,
            0.70,
            0.080,
            0.030,
            0.070,
            GroupPlan::Flat,
        ),
        spec(
            Ccu,
            1,
            700,
            0.25,
            &[],
            MacroLayout::Ring,
            1.0,
            0.70,
            0.070,
            0.020,
            0.060,
            GroupPlan::Flat,
        ),
        spec(
            Dmu,
            1,
            1_600,
            0.20,
            &[(Sram4k, 1)],
            MacroLayout::Ring,
            1.0,
            0.70,
            0.080,
            0.030,
            0.065,
            GroupPlan::Flat,
        ),
        spec(
            Peu,
            1,
            1_900,
            0.20,
            &[(Sram4k, 2)],
            MacroLayout::Ring,
            1.0,
            0.70,
            0.080,
            0.030,
            0.065,
            GroupPlan::Flat,
        ),
        // TCU is one of the seven dropped blocks in the paper's
        // implementation (test logic does not affect CPU performance), so
        // the inventory ends at 46 with SIU.
        spec(
            Siu,
            1,
            1_500,
            0.20,
            &[],
            MacroLayout::Ring,
            1.0,
            0.70,
            0.080,
            0.030,
            0.065,
            GroupPlan::Flat,
        ),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn inventory_is_46_blocks() {
        let total: usize = block_specs().iter().map(|s| s.count).sum();
        assert_eq!(total, 46);
    }

    #[test]
    fn instance_names() {
        let specs = block_specs();
        let spc = specs.iter().find(|s| s.kind == BlockKind::Spc).unwrap();
        assert_eq!(spc.instance_name(3), "spc3");
        let ccx = specs.iter().find(|s| s.kind == BlockKind::Ccx).unwrap();
        assert_eq!(ccx.instance_name(0), "ccx");
    }

    #[test]
    fn folding_candidates_have_distinct_profiles() {
        let specs = block_specs();
        let get = |k| specs.iter().find(|s| s.kind == k).unwrap();
        // CCX is the most wiring-dominated block.
        assert!(get(BlockKind::Ccx).locality > get(BlockKind::Spc).locality);
        // RTX has the fattest long-wire tail.
        let rtx = get(BlockKind::Rtx);
        assert!(specs.iter().all(|s| s.long_frac <= rtx.long_frac));
        // L2D is macro-dominated: its macro area dwarfs typical logic area.
        let l2d = get(BlockKind::L2d);
        assert_eq!(l2d.macros[0], (MacroKind::Sram16k, 32));
    }
}
