//! Spatial netlist synthesis for one block.
//!
//! Every cell receives a physical seed location inside the block outline;
//! nets are drawn with a distance-biased sink selection so that placement
//! recovers a realistic wirelength distribution. Group structure (FUBs,
//! PCX/CPX) constrains where cells live and how nets cross groups.

use crate::spec::{BlockSpec, GroupPlan, MacroLayout};
use crate::T2Config;
use foldic_geom::{Point, Rect};
use foldic_netlist::{Block, GroupId, InstId, InstMaster, Netlist, PinRef, PortDir};
use foldic_tech::{CellKind, Drive, Technology, VthClass};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// The 14 functional unit blocks of a SPARC core with their share of the
/// core's logic. The six marked `true` are the ones §4.5 folds.
pub const SPC_FUBS: [(&str, f64, bool); 14] = [
    ("exu0", 0.08, true),
    ("exu1", 0.08, true),
    ("fgu", 0.14, true),
    ("lsu", 0.14, true),
    ("tlu", 0.10, true),
    ("ifu_ftu", 0.10, true),
    ("ifu_cmu", 0.05, false),
    ("ifu_ibu", 0.05, false),
    ("mmu", 0.06, false),
    ("gkt", 0.04, false),
    ("pku", 0.05, false),
    ("pmu", 0.03, false),
    ("dec", 0.04, false),
    ("spu", 0.04, false),
];

/// Number of interleaved PCX/CPX stripes the 2D crossbar layout splits
/// into (the port-driven fragmentation of Fig. 2(a)).
const CCX_SEGMENTS: usize = 16;

struct CellPlan {
    kind: CellKind,
    drive: Drive,
}

/// Samples a combinational/sequential cell mix.
fn sample_cell(rng: &mut StdRng, flop_frac: f64) -> CellPlan {
    if rng.gen::<f64>() < flop_frac {
        return CellPlan {
            kind: CellKind::Dff,
            drive: Drive::X1,
        };
    }
    let kinds = [
        (CellKind::Nand2, 0.20),
        (CellKind::Inv, 0.15),
        (CellKind::Mux2, 0.12),
        (CellKind::Nor2, 0.10),
        (CellKind::Aoi21, 0.08),
        (CellKind::Oai21, 0.08),
        (CellKind::And2, 0.08),
        (CellKind::Xor2, 0.08),
        (CellKind::Or2, 0.06),
        (CellKind::Buf, 0.05),
    ];
    let kind = weighted(rng, &kinds);
    let drives = [
        (Drive::X1, 0.40),
        (Drive::X2, 0.35),
        (Drive::X4, 0.20),
        (Drive::X8, 0.05),
    ];
    let drive = weighted(rng, &drives);
    CellPlan { kind, drive }
}

fn weighted<T: Copy>(rng: &mut StdRng, table: &[(T, f64)]) -> T {
    let total: f64 = table.iter().map(|(_, w)| w).sum();
    let mut r = rng.gen::<f64>() * total;
    for &(v, w) in table {
        if r < w {
            return v;
        }
        r -= w;
    }
    table.last().expect("non-empty table").0
}

/// Fan-out distribution: mostly small, occasional control fan-outs.
fn sample_fanout(rng: &mut StdRng) -> usize {
    weighted(
        rng,
        &[
            (1usize, 0.45),
            (2, 0.22),
            (3, 0.12),
            (4, 0.08),
            (6, 0.05),
            (8, 0.04),
            (12, 0.02),
            (24, 0.015),
            (48, 0.005),
        ],
    )
}

/// Simple spatial bucket index over instance seed positions.
struct Buckets {
    grid_w: usize,
    grid_h: usize,
    w: f64,
    h: f64,
    cells: Vec<Vec<usize>>,
}

impl Buckets {
    fn new(w: f64, h: f64, positions: &[Point]) -> Self {
        let n = positions.len().max(1);
        let per_bucket = 12.0;
        let buckets = ((n as f64 / per_bucket).sqrt().ceil() as usize).max(1);
        let grid_w = buckets;
        let grid_h = buckets;
        let mut cells = vec![Vec::new(); grid_w * grid_h];
        for (i, p) in positions.iter().enumerate() {
            let (bx, by) = Self::bin(w, h, grid_w, grid_h, *p);
            cells[by * grid_w + bx].push(i);
        }
        Self {
            grid_w,
            grid_h,
            w,
            h,
            cells,
        }
    }

    fn bin(w: f64, h: f64, gw: usize, gh: usize, p: Point) -> (usize, usize) {
        let bx = ((p.x / w) * gw as f64).floor() as isize;
        let by = ((p.y / h) * gh as f64).floor() as isize;
        (
            bx.clamp(0, gw as isize - 1) as usize,
            by.clamp(0, gh as isize - 1) as usize,
        )
    }

    /// Picks a random instance whose seed position is near `p`, widening
    /// the search ring until something is found.
    fn pick_near(&self, p: Point, rng: &mut StdRng) -> Option<usize> {
        let (bx, by) = Self::bin(self.w, self.h, self.grid_w, self.grid_h, p);
        for ring in 0..self.grid_w.max(self.grid_h) {
            let mut candidates: Vec<usize> = Vec::new();
            let x0 = bx.saturating_sub(ring);
            let x1 = (bx + ring).min(self.grid_w - 1);
            let y0 = by.saturating_sub(ring);
            let y1 = (by + ring).min(self.grid_h - 1);
            for y in y0..=y1 {
                for x in x0..=x1 {
                    // only the ring boundary (interior was covered before)
                    if ring > 0 && x != x0 && x != x1 && y != y0 && y != y1 {
                        continue;
                    }
                    candidates.extend(&self.cells[y * self.grid_w + x]);
                }
            }
            if !candidates.is_empty() {
                return Some(candidates[rng.gen_range(0..candidates.len())]);
            }
        }
        None
    }
}

/// Packs macros into legal fixed positions inside `outline`, returning
/// their centre positions. Grid layout fills the block interior (L2D
/// sub-arrays); ring layout lines the top and bottom edges.
fn pack_macros(layout: MacroLayout, dims: &[(f64, f64)], outline: Rect) -> Vec<Point> {
    if dims.is_empty() {
        return Vec::new();
    }
    let (bw, bh) = (outline.width(), outline.height());
    match layout {
        MacroLayout::Grid => {
            let (mw, mh) = dims[0];
            let n = dims.len();
            // choose a column count that fits the outline aspect
            let mut cols = ((bw / (mw * 1.15)).floor() as usize).clamp(1, n);
            let mut rows = n.div_ceil(cols);
            while rows as f64 * mh * 1.1 > bh && cols < n {
                cols += 1;
                rows = n.div_ceil(cols);
            }
            let gap_x = (bw - cols as f64 * mw) / (cols + 1) as f64;
            let gap_y = (bh - rows as f64 * mh) / (rows + 1) as f64;
            (0..n)
                .map(|i| {
                    let c = i % cols;
                    let r = i / cols;
                    Point::new(
                        gap_x + c as f64 * (mw + gap_x) + mw / 2.0,
                        gap_y + r as f64 * (mh + gap_y) + mh / 2.0,
                    )
                })
                .collect()
        }
        MacroLayout::Ring => {
            // alternate bottom edge, top edge; wrap into a second band
            // when an edge fills up (narrow blocks)
            let mut positions = Vec::with_capacity(dims.len());
            let mut x_bot = 4.0;
            let mut x_top = 4.0;
            let mut band_bot = 0.0;
            let mut band_top = 0.0;
            for (i, &(mw, mh)) in dims.iter().enumerate() {
                if i % 2 == 0 {
                    if x_bot + mw + 4.0 > bw {
                        x_bot = 4.0;
                        band_bot += mh + 4.0;
                    }
                    positions.push(Point::new(x_bot + mw / 2.0, band_bot + mh / 2.0 + 2.0));
                    x_bot += mw + 4.0;
                } else {
                    if x_top + mw + 4.0 > bw {
                        x_top = 4.0;
                        band_top += mh + 4.0;
                    }
                    positions.push(Point::new(x_top + mw / 2.0, bh - band_top - mh / 2.0 - 2.0));
                    x_top += mw + 4.0;
                }
            }
            positions
        }
    }
}

/// Group region plan: each group owns a sub-rectangle of the unit square.
fn group_regions(plan: GroupPlan) -> Vec<(String, f64, Rect)> {
    match plan {
        GroupPlan::Flat => vec![("all".to_owned(), 1.0, Rect::new(0.0, 0.0, 1.0, 1.0))],
        GroupPlan::Fubs => {
            // Tile the unit square with 14 regions: rows of 4,4,3,3.
            let rows = [4usize, 4, 3, 3];
            let mut regions = Vec::new();
            let mut fub = 0;
            for (r, &cols) in rows.iter().enumerate() {
                let y0 = r as f64 / rows.len() as f64;
                let y1 = (r + 1) as f64 / rows.len() as f64;
                for c in 0..cols {
                    let x0 = c as f64 / cols as f64;
                    let x1 = (c + 1) as f64 / cols as f64;
                    let (name, weight, _) = SPC_FUBS[fub];
                    regions.push((name.to_owned(), weight, Rect::new(x0, y0, x1, y1)));
                    fub += 1;
                }
            }
            regions
        }
        GroupPlan::CcxSplit => {
            // 16 interleaved horizontal stripes: even = pcx, odd = cpx.
            // Both groups span the whole block but live in alternating
            // stripes — the port-driven fragmentation of the 2D layout.
            // Regions are per-stripe; group identity is by parity.
            (0..CCX_SEGMENTS)
                .map(|s| {
                    let y0 = s as f64 / CCX_SEGMENTS as f64;
                    let y1 = (s + 1) as f64 / CCX_SEGMENTS as f64;
                    let name = if s % 2 == 0 { "pcx" } else { "cpx" };
                    (
                        name.to_owned(),
                        1.0 / CCX_SEGMENTS as f64,
                        Rect::new(0.0, y0, 1.0, y1),
                    )
                })
                .collect()
        }
    }
}

/// Synthesizes one block.
pub fn synthesize_block(
    spec: &BlockSpec,
    copy: usize,
    cfg: &T2Config,
    tech: &Technology,
    seed: u64,
) -> Block {
    let mut rng = StdRng::seed_from_u64(seed);
    let name = spec.instance_name(copy);
    let mut nl = Netlist::new(name.clone());
    // derived-name templates: one u32 per entity instead of a String each,
    // resolving to the exact text the old format! calls produced
    let t_mem = nl.name_template(&format!("{name}_mem"), "");
    let t_cell = nl.name_template(&format!("{name}_u"), "");
    let t_net = nl.name_template(&format!("n_{name}_"), "");
    let t_cklf = nl.name_template(&format!("{name}_cklf"), "");
    let t_ncklf = nl.name_template(&format!("n_{name}_cklf"), "");

    // ---- plan cells --------------------------------------------------------
    let n_cells = ((spec.cells as f64 * cfg.size).round() as usize).max(40);
    let plans: Vec<CellPlan> = (0..n_cells)
        .map(|_| sample_cell(&mut rng, spec.flop_frac))
        .collect();
    let cell_area: f64 = plans
        .iter()
        .map(|p| tech.cells.get(p.kind, p.drive, VthClass::Rvt).area_um2)
        .sum();

    // ---- macros ------------------------------------------------------------
    let macro_dims: Vec<(foldic_tech::MacroKind, f64, f64)> = spec
        .macros
        .iter()
        .flat_map(|&(kind, n)| {
            let m = tech.macros.get(kind);
            std::iter::repeat_n((kind, m.width_um, m.height_um), n)
        })
        .collect();
    let macro_area: f64 = macro_dims.iter().map(|&(_, w, h)| w * h).sum();

    // ---- outline -----------------------------------------------------------
    let total = (cell_area + macro_area) / spec.utilization;
    let mut bw = (total * spec.aspect).sqrt();
    let mut bh = total / bw;
    if let Some(&(_, mw, mh)) = macro_dims.first() {
        // make sure the outline can hold the macros with margin
        bw = bw.max(mw * 1.3);
        bh = bh.max(mh * 1.3);
        if spec.macro_layout == MacroLayout::Grid {
            // grid must fit: inflate until pack succeeds trivially
            let n = macro_dims.len() as f64;
            while (bw / (mw * 1.15)).floor() * (bh / (mh * 1.1)).floor() < n {
                bw *= 1.05;
                bh *= 1.05;
            }
        }
    }
    let outline = Rect::new(0.0, 0.0, bw, bh);

    // ---- groups ------------------------------------------------------------
    let regions = group_regions(spec.groups);
    let mut group_ids: std::collections::HashMap<String, GroupId> = Default::default();
    for (gname, _, _) in &regions {
        if !group_ids.contains_key(gname) {
            let id = nl.add_group(gname);
            group_ids.insert(gname.clone(), id);
        }
    }

    // ---- instantiate macros (fixed) -----------------------------------------
    let macro_centers = pack_macros(
        spec.macro_layout,
        &macro_dims
            .iter()
            .map(|&(_, w, h)| (w, h))
            .collect::<Vec<_>>(),
        outline,
    );
    let mut macro_insts: Vec<InstId> = Vec::new();
    for (i, (&(kind, _, _), &pos)) in macro_dims.iter().zip(&macro_centers).enumerate() {
        let id = nl.add_inst(t_mem.at(i), InstMaster::Macro(kind));
        let mut inst = nl.inst_mut(id);
        inst.pos = pos;
        inst.fixed = true;
        // macros join the region (group) containing their centre
        let v = Point::new(pos.x / bw, pos.y / bh);
        inst.group = regions
            .iter()
            .find(|(_, _, r)| r.contains(v))
            .and_then(|(g, _, _)| group_ids.get(g).copied());
        macro_insts.push(id);
    }

    // ---- instantiate cells ---------------------------------------------------
    // Assign each cell to a region by weight, seed-position uniform in region.
    let region_weights: Vec<f64> = regions.iter().map(|(_, w, _)| *w).collect();
    let total_w: f64 = region_weights.iter().sum();
    let mut cell_ids: Vec<InstId> = Vec::with_capacity(n_cells);
    let mut positions: Vec<Point> = Vec::with_capacity(n_cells);
    let mut cell_groups: Vec<GroupId> = Vec::with_capacity(n_cells);
    for (i, plan) in plans.iter().enumerate() {
        let mut r = rng.gen::<f64>() * total_w;
        let mut region = &regions[0];
        for reg in &regions {
            if r < reg.1 {
                region = reg;
                break;
            }
            r -= reg.1;
        }
        let (gname, _, rect) = region;
        let p = Point::new(
            (rect.llx + rng.gen::<f64>() * rect.width()) * bw,
            (rect.lly + rng.gen::<f64>() * rect.height()) * bh,
        );
        let master = tech.cells.id_of(plan.kind, plan.drive, VthClass::Rvt);
        let id = nl.add_inst(t_cell.at(i), InstMaster::Cell(master));
        let gid = group_ids[gname];
        let mut inst = nl.inst_mut(id);
        inst.pos = p;
        inst.group = Some(gid);
        cell_ids.push(id);
        positions.push(p);
        cell_groups.push(gid);
    }

    let buckets = Buckets::new(bw, bh, &positions);
    // per-group member lists for cross-group / crossbar sink sampling
    let mut by_group: std::collections::HashMap<GroupId, Vec<usize>> = Default::default();
    for (i, g) in cell_groups.iter().enumerate() {
        by_group.entry(*g).or_default().push(i);
    }

    let domain = spec.kind.clock();
    let span_scale = spec.locality * bw.max(bh);
    let is_ccx = spec.groups == GroupPlan::CcxSplit;
    let cross_frac = match spec.groups {
        GroupPlan::Fubs => 0.12,
        GroupPlan::CcxSplit => 0.001, // only test signals cross PCX/CPX
        GroupPlan::Flat => 0.0,
    };

    // ---- signal nets ---------------------------------------------------------
    let group_list: Vec<GroupId> = {
        let mut g: Vec<_> = by_group.keys().copied().collect();
        g.sort();
        g
    };
    for (i, &driver) in cell_ids.iter().enumerate() {
        let fanout = sample_fanout(&mut rng);
        let net = nl.add_net(t_net.at(i));
        nl.net_mut(net).domain = domain;
        nl.connect_driver(net, PinRef::output(driver));
        let dpos = positions[i];
        let dgroup = cell_groups[i];
        let mut connected = std::collections::HashSet::new();
        connected.insert(i);
        for _ in 0..fanout {
            let sink_idx = if cross_frac > 0.0 && rng.gen::<f64>() < cross_frac {
                // inter-group net: sink uniform in another group
                let og = group_list[rng.gen_range(0..group_list.len())];
                let members = &by_group[&og];
                members[rng.gen_range(0..members.len())]
            } else if is_ccx && rng.gen::<f64>() < 0.5 {
                // crossbar all-to-all: uniform within the same group
                let members = &by_group[&dgroup];
                members[rng.gen_range(0..members.len())]
            } else {
                // distance-biased local sink
                let span = if rng.gen::<f64>() < spec.long_frac {
                    (0.25 + 0.70 * rng.gen::<f64>()) * bw.max(bh)
                } else {
                    let u: f64 = rng.gen::<f64>().max(1e-9);
                    (span_scale * -u.ln()).min(1.2 * bw.max(bh))
                };
                let ang = rng.gen::<f64>() * std::f64::consts::TAU;
                let target = Point::new(dpos.x + span * ang.cos(), dpos.y + span * ang.sin())
                    .clamped(outline);
                if is_ccx {
                    // PCX and CPX share no signal wiring: keep even local
                    // sinks strictly inside the driver's group by sampling
                    // group members and keeping the closest to the target.
                    let members = &by_group[&dgroup];
                    let mut best = members[rng.gen_range(0..members.len())];
                    let mut best_d = positions[best].manhattan(target);
                    for _ in 0..40 {
                        let c = members[rng.gen_range(0..members.len())];
                        let d = positions[c].manhattan(target);
                        if d < best_d {
                            best = c;
                            best_d = d;
                        }
                    }
                    best
                } else {
                    match buckets.pick_near(target, &mut rng) {
                        Some(s) => s,
                        None => continue,
                    }
                }
            };
            if !connected.insert(sink_idx) {
                continue;
            }
            let sink = cell_ids[sink_idx];
            let kind = match nl.inst(sink).master {
                InstMaster::Cell(mid) => tech.cells.master(mid).kind,
                InstMaster::Macro(_) => unreachable!("cell list holds cells only"),
            };
            // flop data pin is 0 (pin 1 is the clock)
            let pin = if kind == CellKind::Dff {
                0
            } else {
                rng.gen_range(0..kind.input_count()) as u16
            };
            nl.connect_sink(net, PinRef::input(sink, pin));
        }
    }

    // ---- macro pin nets --------------------------------------------------------
    for (mi, &mid) in macro_insts.iter().enumerate() {
        let kind = match nl.inst(mid).master {
            InstMaster::Macro(k) => k,
            InstMaster::Cell(_) => unreachable!(),
        };
        let master = tech.macros.get(kind);
        let pins_used =
            ((master.pin_count as f64 * cfg.size).round() as usize).clamp(4, master.pin_count);
        let mpos = nl.inst(mid).pos;
        let t_mpin = nl.name_template(&format!("n_{name}_m{mi}_"), "");
        for p in 0..pins_used {
            let net = nl.add_net(t_mpin.at(p));
            nl.net_mut(net).domain = domain;
            // nearby logic partner
            let target = Point::new(
                mpos.x + rng.gen_range(-0.1..0.1) * bw,
                mpos.y + rng.gen_range(-0.1..0.1) * bh,
            )
            .clamped(outline);
            let Some(partner_idx) = buckets.pick_near(target, &mut rng) else {
                // no logic cells at all (cannot happen: n_cells >= 40)
                continue;
            };
            let partner = cell_ids[partner_idx];
            if p % 2 == 0 {
                // macro read port drives logic
                nl.connect_driver(net, PinRef::output(mid));
                let kind = match nl.inst(partner).master {
                    InstMaster::Cell(c) => tech.cells.master(c).kind,
                    InstMaster::Macro(_) => unreachable!(),
                };
                nl.connect_sink(net, PinRef::input(partner, 0));
                let _ = kind;
            } else {
                // logic drives macro address/data input; reuse the
                // partner's output net by adding the macro as a sink
                nl.connect_driver(net, PinRef::output(partner));
                nl.connect_sink(net, PinRef::input(mid, p as u16));
            }
        }
    }

    // ---- clock tree --------------------------------------------------------------
    let flops: Vec<usize> = plans
        .iter()
        .enumerate()
        .filter(|(_, p)| p.kind == CellKind::Dff)
        .map(|(i, _)| i)
        .collect();
    if !flops.is_empty() {
        let clk_port = nl.add_port("clk", PortDir::Input, domain);
        nl.port_mut(clk_port).pos = Point::new(0.0, bh / 2.0);
        let root_master = tech
            .cells
            .id_of(CellKind::ClkBuf, Drive::X16, VthClass::Rvt);
        let root = nl.add_inst(format!("{name}_ckroot"), InstMaster::Cell(root_master));
        let root_group = cell_groups.first().copied();
        {
            let mut inst = nl.inst_mut(root);
            inst.pos = Point::new(bw / 2.0, bh / 2.0);
            inst.group = root_group;
        }
        let root_in = nl.add_net("clk");
        nl.net_mut(root_in).domain = domain;
        nl.net_mut(root_in).is_clock = true;
        nl.connect_driver(root_in, PinRef::port(clk_port));
        nl.connect_sink(root_in, PinRef::input(root, 0));

        let trunk = nl.add_net(format!("n_{name}_cktrunk"));
        nl.net_mut(trunk).domain = domain;
        nl.net_mut(trunk).is_clock = true;
        nl.connect_driver(trunk, PinRef::output(root));

        // sort flops spatially and chunk into leaf groups of ≤ 32
        let mut sorted = flops.clone();
        sorted.sort_by(|&a, &b| {
            let (pa, pb) = (positions[a], positions[b]);
            (pa.y, pa.x)
                .partial_cmp(&(pb.y, pb.x))
                .expect("finite coords")
        });
        let leaf_master = tech.cells.id_of(CellKind::ClkBuf, Drive::X8, VthClass::Rvt);
        for (li, chunk) in sorted.chunks(32).enumerate() {
            let centroid = chunk
                .iter()
                .fold(Point::ORIGIN, |acc, &i| acc + positions[i])
                * (1.0 / chunk.len() as f64);
            let leaf = nl.add_inst(t_cklf.at(li), InstMaster::Cell(leaf_master));
            let leaf_group = cell_groups[chunk[0]];
            {
                let mut inst = nl.inst_mut(leaf);
                inst.pos = centroid;
                inst.group = Some(leaf_group);
            }
            nl.connect_sink(trunk, PinRef::input(leaf, 0));
            let leaf_net = nl.add_net(t_ncklf.at(li));
            nl.net_mut(leaf_net).domain = domain;
            nl.net_mut(leaf_net).is_clock = true;
            nl.connect_driver(leaf_net, PinRef::output(leaf));
            for &fi in chunk {
                nl.connect_sink(leaf_net, PinRef::input(cell_ids[fi], 1));
            }
        }
    }

    let mut block = Block::new(name, spec.kind, nl, outline);
    block.activity = spec.activity;
    block
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::block_specs;
    use foldic_netlist::BlockKind;

    fn tech() -> Technology {
        T2Config::tiny().scaled_technology()
    }

    fn synth(kind: BlockKind) -> Block {
        let cfg = T2Config::tiny();
        let spec = block_specs().into_iter().find(|s| s.kind == kind).unwrap();
        synthesize_block(&spec, 0, &cfg, &tech(), 7)
    }

    #[test]
    fn spc_has_14_fubs() {
        let b = synth(BlockKind::Spc);
        assert_eq!(b.netlist.num_groups(), 14);
        assert!(b.netlist.check().is_ok());
        // every cell belongs to a FUB
        assert!(b.netlist.insts().all(|(_, i)| i.group.is_some()));
    }

    #[test]
    fn ccx_has_pcx_and_cpx_only() {
        let b = synth(BlockKind::Ccx);
        assert_eq!(b.netlist.num_groups(), 2);
        let names: Vec<_> = (0..2)
            .map(|i| b.netlist.group_name(foldic_netlist::GroupId(i)).to_owned())
            .collect();
        assert!(names.contains(&"pcx".to_owned()));
        assert!(names.contains(&"cpx".to_owned()));
    }

    #[test]
    fn l2d_macros_fit_inside_outline() {
        let t = tech();
        let b = synth(BlockKind::L2d);
        let macros: Vec<_> = b
            .netlist
            .insts()
            .filter(|(_, i)| i.master.is_macro())
            .collect();
        assert_eq!(macros.len(), 32);
        for (_, m) in &macros {
            assert!(
                b.outline.contains_rect(m.rect(&t)),
                "macro at {} escapes outline {}",
                m.pos,
                b.outline
            );
            assert!(m.fixed);
        }
        // macros must not overlap each other
        for (i, (_, a)) in macros.iter().enumerate() {
            for (_, c) in &macros[i + 1..] {
                assert!(!a.rect(&t).overlaps(c.rect(&t)));
            }
        }
    }

    #[test]
    fn cells_seeded_inside_outline() {
        let b = synth(BlockKind::L2t);
        for (_, i) in b.netlist.insts() {
            assert!(
                b.outline.contains(i.pos),
                "{} at {}",
                b.netlist.name_of(i.name),
                i.pos
            );
        }
    }

    #[test]
    fn clock_tree_reaches_all_flops() {
        let t = tech();
        let b = synth(BlockKind::Mcu);
        let mut clocked = std::collections::HashSet::new();
        for (_, net) in b.netlist.nets() {
            if net.is_clock {
                for s in net.sinks() {
                    if let Some(i) = s.inst() {
                        clocked.insert(i);
                    }
                }
            }
        }
        for (id, inst) in b.netlist.insts() {
            if let InstMaster::Cell(m) = inst.master {
                if t.cells.master(m).kind == CellKind::Dff {
                    assert!(
                        clocked.contains(&id),
                        "flop {} unclocked",
                        b.netlist.name_of(inst.name)
                    );
                }
            }
        }
    }

    #[test]
    fn rtx_has_longer_nets_than_mcu() {
        // RTX's fat long-net tail must show up in seed-position net spans.
        let rtx = synth(BlockKind::Rtx);
        let mcu = synth(BlockKind::Mcu);
        let avg_span = |b: &Block| {
            let nl = &b.netlist;
            let (mut sum, mut n) = (0.0, 0usize);
            for (_, net) in nl.nets() {
                if net.is_clock {
                    continue;
                }
                let bb = foldic_geom::Rect::bounding(net.pins().map(|p| nl.pin_pos(p)));
                sum += bb.half_perimeter() / b.outline.half_perimeter();
                n += 1;
            }
            sum / n as f64
        };
        assert!(avg_span(&rtx) > avg_span(&mcu));
    }
}
