#![warn(missing_docs)]
#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]
//! Power analysis: cell, net (wire + pin) and leakage power.
//!
//! Reproduces the decomposition the paper reports in every table:
//!
//! * **cell power** — internal energy of cells (and access energy of
//!   memory macros) times clock frequency and toggle activity;
//! * **net power** — `(C_wire + C_pin) · V² · f · α` per net, split into
//!   the wire and pin contributions ("the net power is defined as the sum
//!   of wire and pin power", §3.2). Tier-crossing nets add their TSV /
//!   F2F-via capacitance;
//! * **leakage power** — per-cell/macro leakage tables (halved for HVT
//!   cells, which is the dual-Vth lever of §6.2).
//!
//! Clock nets toggle every cycle (α = 1); signal nets toggle with the
//! block's activity.
//!
//! # Examples
//!
//! ```
//! use foldic_t2::T2Config;
//! use foldic_route::BlockWiring;
//! use foldic_power::{analyze_block, PowerConfig};
//!
//! let (design, tech) = T2Config::tiny().generate();
//! let block = design.block(design.find_block("ccu").unwrap());
//! let wiring = BlockWiring::analyze(&block.netlist, &tech, 1.1, None).unwrap();
//! let p = analyze_block(&block.netlist, &tech, &wiring, &PowerConfig::for_block(block)).unwrap();
//! assert!(p.total_uw() > 0.0);
//! assert!(p.leakage_uw > 0.0);
//! ```

pub mod census;

pub use census::{power_census, CategoryPower, PowerCensus};

use foldic_fault::{FlowError, FlowStage};
use foldic_netlist::{Block, InstMaster, Netlist, PinRef};
use foldic_tech::{Technology, Via3dKind};
use std::ops::{Add, AddAssign};

/// Per-analysis knobs.
#[derive(Debug, Clone)]
pub struct PowerConfig {
    /// Toggle activity of signal nets/cells (expected toggles per cycle).
    pub activity: f64,
    /// Macro access activity (reads/writes per cycle).
    pub macro_activity: f64,
    /// Highest metal layer for wire-capacitance estimation.
    pub max_layer: usize,
    /// 3D-via kind on tier-crossing nets, if the block is folded.
    pub via_kind: Option<Via3dKind>,
    /// Include the TSV-to-wire coupling capacitance on tier-crossing nets
    /// (the paper's §7 future-work parasitic; off by default to match the
    /// main study's model).
    pub tsv_coupling: bool,
    /// Fraction of a cell's internal energy attributed to the *hidden*
    /// nets inside it. When one synthetic cell stands for a cluster of
    /// real cells, the short real nets between them are physically wire +
    /// pin switching and must be reported as net power (the paper's
    /// decomposition), even though they are bookkept inside the cluster's
    /// internal energy.
    pub hidden_net_fraction: f64,
}

impl PowerConfig {
    /// Builds the configuration for an (unfolded) block using its
    /// generator-assigned activity.
    pub fn for_block(block: &Block) -> Self {
        Self {
            activity: block.activity,
            macro_activity: 0.5 * block.activity,
            max_layer: 7,
            via_kind: None,
            tsv_coupling: false,
            hidden_net_fraction: 0.55,
        }
    }
}

impl Default for PowerConfig {
    fn default() -> Self {
        Self {
            activity: 0.10,
            macro_activity: 0.05,
            max_layer: 7,
            via_kind: None,
            tsv_coupling: false,
            hidden_net_fraction: 0.55,
        }
    }
}

/// A power breakdown in µW.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct PowerReport {
    /// Internal (cell + macro) switching power.
    pub cell_uw: f64,
    /// Wire part of the net power.
    pub net_wire_uw: f64,
    /// Pin part of the net power.
    pub net_pin_uw: f64,
    /// Leakage power.
    pub leakage_uw: f64,
}

impl PowerReport {
    /// Net power (wire + pin) in µW.
    pub fn net_uw(&self) -> f64 {
        self.net_wire_uw + self.net_pin_uw
    }

    /// Total power in µW.
    pub fn total_uw(&self) -> f64 {
        self.cell_uw + self.net_uw() + self.leakage_uw
    }

    /// Total power in watts.
    pub fn total_w(&self) -> f64 {
        self.total_uw() * 1e-6
    }

    /// Net power share of the total (Table 3's "net power portion").
    pub fn net_fraction(&self) -> f64 {
        if self.total_uw() > 0.0 {
            self.net_uw() / self.total_uw()
        } else {
            0.0
        }
    }
}

impl Add for PowerReport {
    type Output = PowerReport;
    fn add(self, rhs: PowerReport) -> PowerReport {
        PowerReport {
            cell_uw: self.cell_uw + rhs.cell_uw,
            net_wire_uw: self.net_wire_uw + rhs.net_wire_uw,
            net_pin_uw: self.net_pin_uw + rhs.net_pin_uw,
            leakage_uw: self.leakage_uw + rhs.leakage_uw,
        }
    }
}

impl AddAssign for PowerReport {
    fn add_assign(&mut self, rhs: PowerReport) {
        *self = *self + rhs;
    }
}

/// Analyzes one placed block.
///
/// # Errors
///
/// Returns a [`FlowError`] at [`FlowStage::Power`] when the report sums
/// to a non-finite total (corrupt activity or wiring inputs).
pub fn analyze_block(
    netlist: &Netlist,
    tech: &Technology,
    wiring: &foldic_route::BlockWiring,
    cfg: &PowerConfig,
) -> Result<PowerReport, FlowError> {
    foldic_exec::profile::add_iters(netlist.num_nets() as u64);
    let mut report = PowerReport::default();
    let v2 = tech.vdd * tech.vdd;
    let c_um = tech.metal.effective_c_per_um(cfg.max_layer);

    // ---- leakage + internal power -------------------------------------------
    // Toggle rate per instance: the frequency of the net it drives (or the
    // block default); activity α for signal cells, 1.0 for clock cells.
    let mut drives_clock = vec![false; netlist.num_insts()];
    let mut domain_ghz = vec![tech.cpu_clock_ghz; netlist.num_insts()];
    for (_, net) in netlist.nets() {
        if let Some(PinRef::InstOut(i)) = net.driver {
            domain_ghz[i.index()] = net.domain.frequency_ghz(tech);
            if net.is_clock {
                drives_clock[i.index()] = true;
            }
        }
    }
    for (id, inst) in netlist.insts() {
        match inst.master {
            InstMaster::Cell(m) => {
                let master = tech.cells.master(m);
                report.leakage_uw += master.leakage_uw;
                let alpha = if drives_clock[id.index()] {
                    1.0
                } else {
                    cfg.activity
                };
                let e = master.internal_energy_fj * domain_ghz[id.index()] * alpha;
                // split off the hidden intra-cluster net switching
                let hidden = e * cfg.hidden_net_fraction;
                report.cell_uw += e - hidden;
                report.net_wire_uw += 0.5 * hidden;
                report.net_pin_uw += 0.5 * hidden;
            }
            InstMaster::Macro(k) => {
                let m = tech.macros.get(k);
                report.leakage_uw += m.leakage_uw;
                report.cell_uw += m.access_energy_fj * domain_ghz[id.index()] * cfg.macro_activity;
            }
        }
    }

    // ---- net power ------------------------------------------------------------
    for (nid, net) in netlist.nets() {
        let rec = wiring.net(nid);
        let f = net.domain.frequency_ghz(tech);
        let alpha = if net.is_clock { 1.0 } else { cfg.activity };
        let mut wire_cap = rec.length_um * c_um;
        if rec.is_3d {
            if let Some(kind) = cfg.via_kind {
                wire_cap += match kind {
                    Via3dKind::Tsv => {
                        tech.tsv.capacitance_ff()
                            + if cfg.tsv_coupling {
                                tech.tsv.coupling_cap_ff()
                            } else {
                                0.0
                            }
                    }
                    Via3dKind::F2fVia => tech.f2f_via.capacitance_ff(),
                };
            }
        }
        let pin_cap: f64 = net
            .sinks()
            .map(|s| match s {
                PinRef::InstIn(i, _) => match netlist.inst(i).master {
                    InstMaster::Cell(m) => tech.cells.master(m).input_cap_ff,
                    InstMaster::Macro(k) => tech.macros.get(k).pin_cap_ff,
                },
                _ => 0.0,
            })
            .sum();
        report.net_wire_uw += wire_cap * v2 * f * alpha;
        report.net_pin_uw += pin_cap * v2 * f * alpha;
    }
    if !report.total_uw().is_finite() {
        return Err(FlowError::stage(
            FlowStage::Power,
            "power analysis produced a non-finite total",
        ));
    }
    if foldic_obs::metrics::is_enabled() {
        foldic_obs::metrics::add("power.analyses", 1);
        foldic_obs::metrics::observe("power.net_fraction", report.net_fraction());
        foldic_obs::metrics::observe("power.total_uw", report.total_uw());
    }
    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;
    use foldic_route::BlockWiring;
    use foldic_t2::T2Config;

    fn block_power(name: &str) -> (PowerReport, foldic_netlist::Design, Technology) {
        let (design, tech) = T2Config::tiny().generate();
        let id = design.find_block(name).unwrap();
        let block = design.block(id);
        let wiring = BlockWiring::analyze(&block.netlist, &tech, 1.1, None).unwrap();
        let p = analyze_block(
            &block.netlist,
            &tech,
            &wiring,
            &PowerConfig::for_block(block),
        )
        .unwrap();
        (p, design, tech)
    }

    #[test]
    fn breakdown_is_positive_and_consistent() {
        let (p, _, _) = block_power("mcu0");
        assert!(p.cell_uw > 0.0 && p.net_wire_uw > 0.0 && p.net_pin_uw > 0.0 && p.leakage_uw > 0.0);
        assert!((p.total_uw() - (p.cell_uw + p.net_uw() + p.leakage_uw)).abs() < 1e-9);
        assert!(p.net_fraction() > 0.0 && p.net_fraction() < 1.0);
    }

    #[test]
    fn l2d_is_memory_power_dominated() {
        // §4.4: scdata's cell+leakage power is dominated by macros and its
        // net power portion is low (~29 % in the paper).
        let (l2d, _, _) = block_power("l2d0");
        let (ccx, _, _) = block_power("ccx");
        assert!(l2d.net_fraction() < 0.45, "{}", l2d.net_fraction());
        assert!(
            ccx.net_fraction() > l2d.net_fraction(),
            "ccx {} vs l2d {}",
            ccx.net_fraction(),
            l2d.net_fraction()
        );
    }

    #[test]
    fn shorter_wires_mean_less_net_power() {
        let (design, tech) = T2Config::tiny().generate();
        let id = design.find_block("l2t0").unwrap();
        let block = design.block(id);
        let cfg = PowerConfig::for_block(block);
        let w1 = BlockWiring::analyze(&block.netlist, &tech, 1.0, None).unwrap();
        let w2 = BlockWiring::analyze(&block.netlist, &tech, 1.3, None).unwrap();
        let p1 = analyze_block(&block.netlist, &tech, &w1, &cfg).unwrap();
        let p2 = analyze_block(&block.netlist, &tech, &w2, &cfg).unwrap();
        assert!(p2.net_wire_uw > p1.net_wire_uw);
        // pin and cell power don't depend on the detour
        assert!((p2.net_pin_uw - p1.net_pin_uw).abs() < 1e-9);
        assert!((p2.cell_uw - p1.cell_uw).abs() < 1e-9);
    }

    #[test]
    fn tsv_nets_burn_more_than_f2f_nets() {
        let (design, tech) = T2Config::tiny().generate();
        let id = design.find_block("l2t0").unwrap();
        let mut block = design.block(id).clone();
        // fold crudely: alternate tiers
        let ids: Vec<_> = block.netlist.inst_ids().collect();
        for (k, iid) in ids.into_iter().enumerate() {
            if k % 2 == 0 {
                block.netlist.inst_mut(iid).tier = foldic_geom::Tier::Top;
            }
        }
        let wiring = BlockWiring::analyze(&block.netlist, &tech, 1.1, None).unwrap();
        let mut cfg = PowerConfig::for_block(&block);
        cfg.via_kind = Some(Via3dKind::Tsv);
        let tsv = analyze_block(&block.netlist, &tech, &wiring, &cfg).unwrap();
        cfg.via_kind = Some(Via3dKind::F2fVia);
        let f2f = analyze_block(&block.netlist, &tech, &wiring, &cfg).unwrap();
        assert!(tsv.net_wire_uw > f2f.net_wire_uw);
    }

    #[test]
    fn reports_accumulate() {
        let (a, _, _) = block_power("ccu");
        let mut sum = a;
        sum += a;
        assert!((sum.total_uw() - 2.0 * a.total_uw()).abs() < 1e-9);
    }
}
