//! Fine-grained power census: who burns the power inside a block.
//!
//! The headline analysis ([`crate::analyze_block`]) reports the paper's
//! three-way split (cell / net / leakage). Debugging a power regression
//! needs more: this census attributes power to functional categories —
//! combinational logic, flip-flops, repeaters, the clock tree, memory
//! macros — and splits net power into clock and signal wiring.

use crate::PowerConfig;
use foldic_netlist::{InstMaster, Netlist, PinRef};
use foldic_tech::{CellClass, Technology};
use std::fmt;

/// Power attributed to one category, in µW.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct CategoryPower {
    /// Switching (internal) power.
    pub dynamic_uw: f64,
    /// Leakage power.
    pub leakage_uw: f64,
}

impl CategoryPower {
    /// Total of the category in µW.
    pub fn total_uw(&self) -> f64 {
        self.dynamic_uw + self.leakage_uw
    }
}

/// A per-category power breakdown of one block.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct PowerCensus {
    /// Plain combinational cells.
    pub combinational: CategoryPower,
    /// Flip-flops.
    pub sequential: CategoryPower,
    /// Repeaters (BUF/INV counted as buffers by the library).
    pub buffers: CategoryPower,
    /// Clock-tree buffers.
    pub clock_tree: CategoryPower,
    /// Memory macros.
    pub macros: CategoryPower,
    /// Clock-net wiring power (α = 1 nets).
    pub clock_net_uw: f64,
    /// Signal-net wiring power.
    pub signal_net_uw: f64,
}

impl PowerCensus {
    /// Total power in µW.
    pub fn total_uw(&self) -> f64 {
        self.combinational.total_uw()
            + self.sequential.total_uw()
            + self.buffers.total_uw()
            + self.clock_tree.total_uw()
            + self.macros.total_uw()
            + self.clock_net_uw
            + self.signal_net_uw
    }

    /// Clock power share (tree cells + clock nets) of the total.
    pub fn clock_fraction(&self) -> f64 {
        if self.total_uw() > 0.0 {
            (self.clock_tree.total_uw() + self.clock_net_uw) / self.total_uw()
        } else {
            0.0
        }
    }
}

impl fmt::Display for PowerCensus {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let row = |f: &mut fmt::Formatter<'_>, name: &str, c: CategoryPower| {
            writeln!(
                f,
                "{name:<16} {:>10.1} µW dynamic {:>10.1} µW leakage",
                c.dynamic_uw, c.leakage_uw
            )
        };
        row(f, "combinational", self.combinational)?;
        row(f, "sequential", self.sequential)?;
        row(f, "buffers", self.buffers)?;
        row(f, "clock tree", self.clock_tree)?;
        row(f, "macros", self.macros)?;
        writeln!(f, "{:<16} {:>10.1} µW", "clock nets", self.clock_net_uw)?;
        writeln!(f, "{:<16} {:>10.1} µW", "signal nets", self.signal_net_uw)?;
        writeln!(f, "{:<16} {:>10.1} µW total", "", self.total_uw())
    }
}

/// Builds the census for a placed block.
pub fn power_census(
    netlist: &Netlist,
    tech: &Technology,
    wiring: &foldic_route::BlockWiring,
    cfg: &PowerConfig,
) -> PowerCensus {
    let mut census = PowerCensus::default();
    let v2 = tech.vdd * tech.vdd;
    let c_um = tech.metal.effective_c_per_um(cfg.max_layer);

    // instance categories (clock-driving cells detected from the nets)
    let mut drives_clock = vec![false; netlist.num_insts()];
    let mut domain_ghz = vec![tech.cpu_clock_ghz; netlist.num_insts()];
    for (_, net) in netlist.nets() {
        if let Some(PinRef::InstOut(i)) = net.driver {
            domain_ghz[i.index()] = net.domain.frequency_ghz(tech);
            if net.is_clock {
                drives_clock[i.index()] = true;
            }
        }
    }
    for (id, inst) in netlist.insts() {
        match inst.master {
            InstMaster::Cell(m) => {
                let master = tech.cells.master(m);
                let alpha = if drives_clock[id.index()] {
                    1.0
                } else {
                    cfg.activity
                };
                let dynamic = master.internal_energy_fj * domain_ghz[id.index()] * alpha;
                let cat = if drives_clock[id.index()] || master.kind.class() == CellClass::ClockTree
                {
                    &mut census.clock_tree
                } else {
                    match master.kind.class() {
                        CellClass::Buffer => &mut census.buffers,
                        CellClass::Sequential => &mut census.sequential,
                        _ => &mut census.combinational,
                    }
                };
                cat.dynamic_uw += dynamic;
                cat.leakage_uw += master.leakage_uw;
            }
            InstMaster::Macro(k) => {
                let m = tech.macros.get(k);
                census.macros.dynamic_uw +=
                    m.access_energy_fj * domain_ghz[id.index()] * cfg.macro_activity;
                census.macros.leakage_uw += m.leakage_uw;
            }
        }
    }
    // nets
    for (nid, net) in netlist.nets() {
        let rec = wiring.net(nid);
        let f = net.domain.frequency_ghz(tech);
        let alpha = if net.is_clock { 1.0 } else { cfg.activity };
        let pin_cap: f64 = net
            .sinks()
            .map(|s| match s {
                PinRef::InstIn(i, _) => match netlist.inst(i).master {
                    InstMaster::Cell(m) => tech.cells.master(m).input_cap_ff,
                    InstMaster::Macro(k) => tech.macros.get(k).pin_cap_ff,
                },
                _ => 0.0,
            })
            .sum();
        let p = (rec.length_um * c_um + pin_cap) * v2 * f * alpha;
        if net.is_clock {
            census.clock_net_uw += p;
        } else {
            census.signal_net_uw += p;
        }
    }
    census
}

#[cfg(test)]
mod tests {
    use super::*;
    use foldic_route::BlockWiring;
    use foldic_t2::T2Config;

    fn census_of(name: &str) -> PowerCensus {
        let (design, tech) = T2Config::tiny().generate();
        let block = design.block(design.find_block(name).unwrap());
        let wiring = BlockWiring::analyze(&block.netlist, &tech, 1.1, None).unwrap();
        power_census(
            &block.netlist,
            &tech,
            &wiring,
            &PowerConfig::for_block(block),
        )
    }

    #[test]
    fn census_covers_every_category() {
        let c = census_of("spc0");
        assert!(c.combinational.total_uw() > 0.0);
        assert!(c.sequential.total_uw() > 0.0);
        assert!(c.clock_tree.total_uw() > 0.0);
        assert!(c.macros.total_uw() > 0.0);
        assert!(c.signal_net_uw > 0.0);
        assert!(c.clock_net_uw > 0.0);
        assert!(c.clock_fraction() > 0.0 && c.clock_fraction() < 0.6);
    }

    #[test]
    fn memory_block_is_macro_led() {
        let c = census_of("l2d0");
        // macros dominate every logic category in scdata
        assert!(c.macros.total_uw() > c.combinational.total_uw());
        assert!(c.macros.total_uw() > c.sequential.total_uw());
    }

    #[test]
    fn display_lists_all_rows() {
        let c = census_of("ccu");
        let s = c.to_string();
        for key in [
            "combinational",
            "sequential",
            "clock tree",
            "macros",
            "total",
        ] {
            assert!(s.contains(key), "{key} missing");
        }
    }

    #[test]
    fn census_total_is_close_to_analyze_block() {
        // The census reclassifies, it must not invent power. (The main
        // analysis also splits hidden intra-cluster energy into net power,
        // so totals match exactly only when that split is off.)
        let (design, tech) = T2Config::tiny().generate();
        let block = design.block(design.find_block("mcu0").unwrap());
        let wiring = BlockWiring::analyze(&block.netlist, &tech, 1.1, None).unwrap();
        let mut cfg = PowerConfig::for_block(block);
        cfg.hidden_net_fraction = 0.0;
        let census = power_census(&block.netlist, &tech, &wiring, &cfg);
        let report = crate::analyze_block(&block.netlist, &tech, &wiring, &cfg).unwrap();
        let diff = (census.total_uw() - report.total_uw()).abs();
        assert!(
            diff < 1e-6 * report.total_uw().max(1.0),
            "census {} vs report {}",
            census.total_uw(),
            report.total_uw()
        );
    }
}
