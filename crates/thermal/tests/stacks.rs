//! Thermal-solver behaviour on structured stacks.

use foldic_thermal::{solve_stack, PowerMap, StackConfig};

#[test]
fn superposition_holds_approximately() {
    // the grid is linear: doubling the power doubles the rise
    let map1 = PowerMap::uniform(12, 12, 1.0, 4.0e6);
    let map2 = PowerMap::uniform(12, 12, 1.0, 8.0e6);
    let cfg = StackConfig::single_die();
    let r1 = solve_stack(&[map1], &cfg);
    let r2 = solve_stack(&[map2], &cfg);
    let ratio = r2.max_rise_k() / r1.max_rise_k();
    assert!((ratio - 2.0).abs() < 0.05, "ratio {ratio}");
}

#[test]
fn top_die_power_runs_cooler_than_bottom_die_power() {
    // the same heat on the die next to the sink must produce a smaller
    // rise than on the die next to the board
    let hot = PowerMap::uniform(10, 10, 1.0, 6.0e6);
    let cold = PowerMap::zero(10, 10, 1.0);
    let cfg = StackConfig::f2b();
    let top_hot = solve_stack(&[cold.clone(), hot.clone()], &cfg);
    let bottom_hot = solve_stack(&[hot, cold], &cfg);
    assert!(
        bottom_hot.max_c > top_hot.max_c,
        "bottom-heated {} vs top-heated {}",
        bottom_hot.max_c,
        top_hot.max_c
    );
}

#[test]
fn lateral_conduction_spreads_hotspots() {
    let mut concentrated = PowerMap::zero(16, 16, 1.0);
    concentrated.deposit(8.0, 8.0, 5.0e6);
    let spread = PowerMap::uniform(16, 16, 1.0, 5.0e6);
    let cfg = StackConfig::single_die();
    let hot = solve_stack(&[concentrated], &cfg);
    let even = solve_stack(&[spread], &cfg);
    // same energy: the concentrated map peaks higher
    assert!(hot.max_c > even.max_c + 1.0);
    // but lateral conduction keeps the peak bounded well below the
    // no-spreading analytic value P·R/area_of_one_bin
    let no_spread = 5.0 / (1.0 / cfg.r_sink + 1.0 / cfg.r_board);
    assert!(
        hot.max_rise_k() < 0.8 * no_spread,
        "{} vs {no_spread}",
        hot.max_rise_k()
    );
}

#[test]
fn a_better_bond_cools_the_bottom_die() {
    let per_die = PowerMap::uniform(10, 10, 1.0, 5.0e6);
    let mut good = StackConfig::f2b();
    good.r_bond = 10.0;
    let mut bad = StackConfig::f2b();
    bad.r_bond = 300.0;
    let rg = solve_stack(&[per_die.clone(), per_die.clone()], &good);
    let rb = solve_stack(&[per_die.clone(), per_die], &bad);
    assert!(rg.max_c < rb.max_c);
}

#[test]
fn zero_power_sits_at_ambient() {
    let map = PowerMap::zero(8, 8, 1.0);
    let r = solve_stack(&[map], &StackConfig::single_die());
    assert!(r.max_rise_k().abs() < 1e-9);
    assert_eq!(r.avg_c, r.ambient_c);
}

#[test]
#[should_panic(expected = "grids must match")]
fn mismatched_grids_panic() {
    let a = PowerMap::zero(8, 8, 1.0);
    let b = PowerMap::zero(9, 8, 1.0);
    let _ = solve_stack(&[a, b], &StackConfig::f2b());
}
