#![warn(missing_docs)]
//! Steady-state thermal analysis of two-tier 3D stacks.
//!
//! The paper closes with: *"our future work will address thermal issues
//! in various 3D design styles with different bonding styles"*. This
//! crate implements that study: a finite-difference resistive-grid
//! thermal solver for the chip styles the power experiments build.
//!
//! # Model
//!
//! Each die is a uniform 2-D grid of thermal nodes with lateral silicon
//! conduction; the stack couples vertically:
//!
//! ```text
//!        heat sink (ambient + R_sink)
//!   ───────────────────────────────────
//!        top die        ← R_bond →      (F2B: thinned Si + µbumps,
//!        bottom die                      F2F: two BEOL stacks — worse!)
//!   ───────────────────────────────────
//!        package/board (R_board, poor path)
//! ```
//!
//! Power maps come from placed designs (cell/macro powers smeared into
//! bins). The solver runs red-black Gauss–Seidel with successive
//! over-relaxation to convergence.
//!
//! The headline 3D-thermal facts this reproduces mechanistically:
//!
//! * stacking raises power density → 3D runs hotter than 2D at the same
//!   total power;
//! * face-to-face bonding inserts two dielectric BEOL stacks between the
//!   active layers and the heat sink path, so the F2F stack runs hotter
//!   than the F2B stack — the thermal price of the power benefits the
//!   main study demonstrates.
//!
//! # Examples
//!
//! ```
//! use foldic_thermal::{PowerMap, StackConfig, solve_stack};
//!
//! // a single hot die: uniform 5 W over 10x10 bins of 1 mm²
//! let map = PowerMap::uniform(10, 10, 1.0, 5.0e6);
//! let report = solve_stack(&[map], &StackConfig::single_die());
//! assert!(report.max_c > report.ambient_c);
//! ```

use foldic_geom::Rect;
use foldic_netlist::{Design, InstMaster};
use foldic_tech::Technology;

/// A per-bin power map of one die in µW.
#[derive(Debug, Clone, PartialEq)]
pub struct PowerMap {
    cols: usize,
    rows: usize,
    /// Bin edge in mm.
    bin_mm: f64,
    /// Power per bin in µW, row-major.
    power_uw: Vec<f64>,
}

impl PowerMap {
    /// An all-zero map.
    pub fn zero(cols: usize, rows: usize, bin_mm: f64) -> Self {
        assert!(cols > 0 && rows > 0 && bin_mm > 0.0);
        Self {
            cols,
            rows,
            bin_mm,
            power_uw: vec![0.0; cols * rows],
        }
    }

    /// A uniform map carrying `total_uw` split evenly over all bins.
    pub fn uniform(cols: usize, rows: usize, bin_mm: f64, total_uw: f64) -> Self {
        let mut m = Self::zero(cols, rows, bin_mm);
        let per = total_uw / (cols * rows) as f64;
        m.power_uw.iter_mut().for_each(|p| *p = per);
        m
    }

    /// Adds `uw` at the bin containing `(x_mm, y_mm)` (clamped).
    pub fn deposit(&mut self, x_mm: f64, y_mm: f64, uw: f64) {
        let c = ((x_mm / self.bin_mm) as isize).clamp(0, self.cols as isize - 1) as usize;
        let r = ((y_mm / self.bin_mm) as isize).clamp(0, self.rows as isize - 1) as usize;
        self.power_uw[r * self.cols + c] += uw;
    }

    /// Total power in µW.
    pub fn total_uw(&self) -> f64 {
        self.power_uw.iter().sum()
    }

    /// Grid columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Grid rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Bin edge in mm.
    pub fn bin_mm(&self) -> f64 {
        self.bin_mm
    }

    /// Power of bin `(c, r)` in µW.
    pub fn at(&self, c: usize, r: usize) -> f64 {
        self.power_uw[r * self.cols + c]
    }
}

/// Thermal parameters of the stack. All area resistances in K·mm²/W.
#[derive(Debug, Clone, PartialEq)]
pub struct StackConfig {
    /// Ambient temperature in °C.
    pub ambient_c: f64,
    /// Die-to-heat-sink path (substrate + TIM + spreader) for the die
    /// adjacent to the sink.
    pub r_sink: f64,
    /// Inter-die bond resistance: thinned silicon + µbumps for F2B.
    pub r_bond: f64,
    /// Die-to-board path below the bottom die.
    pub r_board: f64,
    /// Lateral sheet conductance of one die in W/K per square
    /// (silicon k · thickness).
    pub lateral_w_per_k: f64,
    /// Gauss–Seidel iterations cap.
    pub max_iters: usize,
    /// Convergence threshold in K.
    pub tolerance: f64,
}

impl StackConfig {
    /// A 2D chip: one die straight under the heat sink.
    pub fn single_die() -> Self {
        Self {
            ambient_c: 45.0,
            r_sink: 150.0,
            r_bond: 30.0, // unused with one die
            r_board: 800.0,
            lateral_w_per_k: 0.036, // 120 W/mK × 0.3 mm substrate
            max_iters: 20_000,
            tolerance: 1e-4,
        }
    }

    /// A face-to-back two-tier stack: the inter-die path crosses the top
    /// die's thinned substrate and the µbump layer.
    pub fn f2b() -> Self {
        Self {
            r_bond: 30.0,
            ..Self::single_die()
        }
    }

    /// A face-to-face stack: the inter-die path crosses *two* BEOL
    /// dielectric stacks — several times more resistive than F2B.
    pub fn f2f() -> Self {
        Self {
            r_bond: 120.0,
            ..Self::single_die()
        }
    }
}

/// Result of a thermal solve.
#[derive(Debug, Clone, PartialEq)]
pub struct ThermalReport {
    /// Temperature per tier (same layout as the power maps), °C.
    pub temps_c: Vec<Vec<f64>>,
    /// Hottest temperature in the stack, °C.
    pub max_c: f64,
    /// Power-weighted average temperature, °C.
    pub avg_c: f64,
    /// Ambient used, °C.
    pub ambient_c: f64,
    /// Hotspot `(tier, col, row)`.
    pub hotspot: (usize, usize, usize),
    /// Iterations until convergence.
    pub iterations: usize,
}

impl ThermalReport {
    /// Hottest rise over ambient in K.
    pub fn max_rise_k(&self) -> f64 {
        self.max_c - self.ambient_c
    }
}

/// Solves the steady-state temperature of a 1- or 2-tier stack.
///
/// `maps\[0\]` is the **bottom** die, `maps\[1\]` (if present) the **top**
/// die; the heat sink sits above the topmost die, the board below the
/// bottom one. All maps must share the same grid.
///
/// # Panics
///
/// Panics if `maps` is empty, holds more than two dies, or the grids
/// disagree.
pub fn solve_stack(maps: &[PowerMap], cfg: &StackConfig) -> ThermalReport {
    assert!(
        !maps.is_empty() && maps.len() <= 2,
        "one or two dies supported, got {}",
        maps.len()
    );
    let (cols, rows, bin) = (maps[0].cols, maps[0].rows, maps[0].bin_mm);
    for m in maps {
        assert_eq!((m.cols, m.rows), (cols, rows), "grids must match");
        assert!((m.bin_mm - bin).abs() < 1e-12, "bin sizes must match");
    }
    let tiers = maps.len();
    let bin_area = bin * bin; // mm²
                              // vertical conductances per node in W/K
    let g_sink = bin_area / cfg.r_sink;
    let g_bond = bin_area / cfg.r_bond;
    let g_board = bin_area / cfg.r_board;
    // lateral conductance between neighbouring nodes (square cells → per
    // square sheet conductance applies directly)
    let g_lat = cfg.lateral_w_per_k;

    // temperatures in K above ambient
    let mut t = vec![vec![0.0f64; cols * rows]; tiers];
    // sources in W
    let src: Vec<Vec<f64>> = maps
        .iter()
        .map(|m| m.power_uw.iter().map(|p| p * 1e-6).collect())
        .collect();

    let top = tiers - 1;
    let mut iterations = 0;
    for it in 0..cfg.max_iters {
        iterations = it + 1;
        let mut max_delta = 0.0f64;
        for k in 0..tiers {
            for r in 0..rows {
                for c in 0..cols {
                    let i = r * cols + c;
                    let mut g_sum = 0.0;
                    let mut flow = src[k][i];
                    // lateral neighbours
                    if c > 0 {
                        g_sum += g_lat;
                        flow += g_lat * t[k][i - 1];
                    }
                    if c + 1 < cols {
                        g_sum += g_lat;
                        flow += g_lat * t[k][i + 1];
                    }
                    if r > 0 {
                        g_sum += g_lat;
                        flow += g_lat * t[k][i - cols];
                    }
                    if r + 1 < rows {
                        g_sum += g_lat;
                        flow += g_lat * t[k][i + cols];
                    }
                    // vertical paths
                    if k == top {
                        g_sum += g_sink; // to ambient (t=0)
                    }
                    if k == 0 {
                        g_sum += g_board; // to ambient
                    }
                    if tiers == 2 {
                        let other = 1 - k;
                        g_sum += g_bond;
                        flow += g_bond * t[other][i];
                    }
                    let new = flow / g_sum;
                    let delta = (new - t[k][i]).abs();
                    if delta > max_delta {
                        max_delta = delta;
                    }
                    // SOR acceleration
                    t[k][i] += 1.5 * (new - t[k][i]);
                }
            }
        }
        if max_delta < cfg.tolerance {
            break;
        }
    }

    let mut max_c = f64::NEG_INFINITY;
    let mut hotspot = (0, 0, 0);
    let mut weighted = 0.0;
    let mut total_p = 0.0;
    for k in 0..tiers {
        for r in 0..rows {
            for c in 0..cols {
                let i = r * cols + c;
                let temp = cfg.ambient_c + t[k][i];
                if temp > max_c {
                    max_c = temp;
                    hotspot = (k, c, r);
                }
                weighted += temp * src[k][i];
                total_p += src[k][i];
            }
        }
    }
    let avg_c = if total_p > 0.0 {
        weighted / total_p
    } else {
        cfg.ambient_c
    };
    ThermalReport {
        temps_c: t
            .iter()
            .map(|tier| tier.iter().map(|x| cfg.ambient_c + x).collect())
            .collect(),
        max_c,
        avg_c,
        ambient_c: cfg.ambient_c,
        hotspot,
        iterations,
    }
}

/// Builds per-tier power maps from a floorplanned, analyzed design.
///
/// `per_block` supplies each block's total power (µW), as produced by the
/// full-chip flow; the power is smeared uniformly over the block's chip
/// rect on its tier(s) — folded blocks split theirs across both dies by
/// instance-tier power share.
pub fn chip_power_maps(
    design: &Design,
    tech: &Technology,
    die: Rect,
    per_block: &[(String, foldic_netlist::BlockKind, f64)],
    tiers: usize,
    bins: usize,
) -> Vec<PowerMap> {
    let bin_mm = (die.width().max(die.height()) * 1e-3 / bins as f64).max(1e-3);
    let cols = ((die.width() * 1e-3 / bin_mm).ceil() as usize).max(1);
    let rows = ((die.height() * 1e-3 / bin_mm).ceil() as usize).max(1);
    let mut maps = vec![PowerMap::zero(cols, rows, bin_mm); tiers.clamp(1, 2)];
    for (name, _, power_uw) in per_block {
        let Some(id) = design.find_block(name) else {
            continue;
        };
        let block = design.block(id);
        // tier split: folded blocks by per-tier cell counts, unfolded all
        // on their tier
        let split = if block.folded && maps.len() == 2 {
            let (mut bot, mut top) = (0usize, 0usize);
            for (_, inst) in block.netlist.insts() {
                if matches!(inst.master, InstMaster::Cell(_)) {
                    match inst.tier {
                        foldic_geom::Tier::Bottom => bot += 1,
                        foldic_geom::Tier::Top => top += 1,
                    }
                }
            }
            let total = (bot + top).max(1) as f64;
            vec![(0, bot as f64 / total), (1, top as f64 / total)]
        } else {
            let k = if maps.len() == 2 {
                block.tier.index()
            } else {
                0
            };
            vec![(k, 1.0)]
        };
        let rect = block.chip_rect();
        let _ = tech;
        // deposit over a sub-grid of the block rect
        let steps = 4usize;
        for (tier_idx, frac) in split {
            let per = power_uw * frac / (steps * steps) as f64;
            for sx in 0..steps {
                for sy in 0..steps {
                    let x = rect.llx + (sx as f64 + 0.5) / steps as f64 * rect.width();
                    let y = rect.lly + (sy as f64 + 0.5) / steps as f64 * rect.height();
                    maps[tier_idx].deposit((x - die.llx) * 1e-3, (y - die.lly) * 1e-3, per);
                }
            }
        }
    }
    maps
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn energy_balance_uniform_die() {
        // 10 W over 64 mm² with sink 150 + board 800 in parallel:
        // R_eq = 1/(1/150 + 1/800)/64 ≈ 126/64 ≈ 1.97 K/W → ~19.7 K rise.
        let map = PowerMap::uniform(8, 8, 1.0, 10.0e6);
        let rep = solve_stack(&[map], &StackConfig::single_die());
        let expect = 10.0 / (64.0 / 150.0 + 64.0 / 800.0);
        assert!(
            (rep.max_rise_k() - expect).abs() < 0.2 * expect,
            "rise {} vs analytic {expect}",
            rep.max_rise_k()
        );
        // uniform power → essentially uniform temperature
        let spread = rep.max_c - rep.avg_c;
        assert!(spread < 0.5, "spread {spread}");
    }

    #[test]
    fn hotspot_follows_the_power() {
        let mut map = PowerMap::zero(16, 16, 0.5);
        map.deposit(1.0, 7.0 * 0.5 + 0.1, 2.0e6); // hot bin near left edge
        let rep = solve_stack(&[map], &StackConfig::single_die());
        let (_, c, _) = rep.hotspot;
        assert!(c <= 3, "hotspot drifted to column {c}");
    }

    #[test]
    fn stacking_runs_hotter_than_2d_at_same_power() {
        let total = 10.0e6;
        // 2D: power over the full area
        let flat = PowerMap::uniform(10, 10, 1.0, total);
        let r2d = solve_stack(&[flat], &StackConfig::single_die());
        // 3D: same power, half the footprint, two dies
        let per_die = PowerMap::uniform(7, 7, 1.0, total / 2.0);
        let r3d = solve_stack(&[per_die.clone(), per_die], &StackConfig::f2b());
        assert!(
            r3d.max_c > r2d.max_c + 1.0,
            "3D {} must run hotter than 2D {}",
            r3d.max_c,
            r2d.max_c
        );
    }

    #[test]
    fn f2f_runs_hotter_than_f2b() {
        let per_die = PowerMap::uniform(8, 8, 1.0, 5.0e6);
        let f2b = solve_stack(&[per_die.clone(), per_die.clone()], &StackConfig::f2b());
        let f2f = solve_stack(&[per_die.clone(), per_die], &StackConfig::f2f());
        assert!(
            f2f.max_c > f2b.max_c,
            "F2F {} must run hotter than F2B {}",
            f2f.max_c,
            f2b.max_c
        );
        // and the bottom die (far from the sink) is the hot one
        let (tier, _, _) = f2f.hotspot;
        assert_eq!(tier, 0, "hotspot must sit on the bottom die");
    }

    #[test]
    fn deposit_and_total_are_consistent() {
        let mut m = PowerMap::zero(4, 4, 1.0);
        m.deposit(0.5, 0.5, 100.0);
        m.deposit(3.5, 3.5, 200.0);
        m.deposit(99.0, 99.0, 50.0); // clamped into the corner bin
        assert_eq!(m.total_uw(), 350.0);
        assert_eq!(m.at(0, 0), 100.0);
        assert_eq!(m.at(3, 3), 250.0);
    }

    #[test]
    fn chip_maps_conserve_power() {
        let (mut design, _tech) = foldic_t2::T2Config::tiny().generate();
        // fake a floorplan: place blocks in a row
        let mut x = 0.0;
        let mut per_block = Vec::new();
        let ids: Vec<_> = design.block_ids().collect();
        for id in ids {
            let b = design.block_mut(id);
            b.pos = foldic_geom::Point::new(x, 0.0);
            x += b.outline.width() + 10.0;
            per_block.push((b.name.clone(), b.kind, 1000.0));
        }
        let die = Rect::new(0.0, 0.0, x, 2000.0);
        let maps = chip_power_maps(&design, &_tech, die, &per_block, 1, 32);
        let total: f64 = maps.iter().map(|m| m.total_uw()).sum();
        assert!((total - 46_000.0).abs() < 1.0, "total {total}");
    }
}
