//! Clock-tree synthesis by recursive geometric bisection.
//!
//! The paper's flow runs pre-CTS, post-CTS and post-route optimization
//! (§2.2); this module supplies the CTS step: given the flops of a block
//! (optionally folded across two tiers), it rebuilds the clock
//! distribution as a balanced tree — means-split recursive bisection down
//! to leaf clusters, one clock buffer per internal node, with flops of
//! each die clustered per tier so a fold never leaves a leaf straddling
//! the stack.

use foldic_geom::{Point, Tier};
use foldic_netlist::{ClockDomain, InstMaster, Netlist, PinRef};
use foldic_tech::{CellKind, Drive, Technology, VthClass};

/// Maximum flops per leaf cluster.
pub const LEAF_CAPACITY: usize = 24;

/// Result of a CTS run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CtsStats {
    /// Clock buffers created.
    pub buffers: usize,
    /// Leaf clusters driven.
    pub leaves: usize,
    /// Tree depth (root = 0).
    pub depth: usize,
    /// Clocked sinks (flop clock pins) connected.
    pub sinks: usize,
}

/// Re-synthesizes the block's clock tree from scratch.
///
/// Existing clock nets are emptied and re-used where possible; existing
/// clock buffers are abandoned in place (they become unloaded and cost
/// only leakage — mirroring ECO-style CTS rebuilds) and fresh buffers are
/// inserted. Flop clock pins are rediscovered from the library masters,
/// so the routine works on any netlist state (fresh, optimized, folded).
pub fn synthesize_clock_tree(netlist: &mut Netlist, tech: &Technology) -> CtsStats {
    // 1. collect flop clock pins per tier
    let mut sinks: Vec<(PinRef, Point, Tier)> = Vec::new();
    for (id, inst) in netlist.insts() {
        if let InstMaster::Cell(m) = inst.master {
            if tech.cells.master(m).kind == CellKind::Dff {
                sinks.push((PinRef::input(id, 1), inst.pos, inst.tier));
            }
        }
    }
    if sinks.is_empty() {
        return CtsStats {
            buffers: 0,
            leaves: 0,
            depth: 0,
            sinks: 0,
        };
    }
    let domain = netlist
        .nets()
        .find(|(_, n)| n.is_clock)
        .map(|(_, n)| n.domain)
        .unwrap_or(ClockDomain::Cpu);

    // 2. strip the old tree: clock nets lose their sinks (the old buffers
    //    stay placed but unloaded)
    let old_clock_nets: Vec<foldic_netlist::NetId> = netlist
        .nets()
        .filter(|(_, n)| n.is_clock)
        .map(|(id, _)| id)
        .collect();
    for nid in &old_clock_nets {
        netlist.clear_sinks(*nid);
    }
    // keep the root input (clk port) net if one exists
    let root_in = old_clock_nets
        .iter()
        .copied()
        .find(|&nid| matches!(netlist.net(nid).driver, Some(PinRef::Port(_))));

    // 3. per tier, recursively bisect the sink set
    let mut stats = CtsStats {
        buffers: 0,
        leaves: 0,
        depth: 0,
        sinks: sinks.len(),
    };
    let buf_leaf = tech.cells.id_of(CellKind::ClkBuf, Drive::X8, VthClass::Rvt);
    let buf_mid = tech
        .cells
        .id_of(CellKind::ClkBuf, Drive::X16, VthClass::Rvt);

    // root buffer at the sink centroid of everything
    let centroid_all =
        sinks.iter().fold(Point::ORIGIN, |a, &(_, p, _)| a + p) * (1.0 / sinks.len() as f64);
    let root = netlist.add_inst("cts_root", InstMaster::Cell(buf_mid));
    netlist.inst_mut(root).pos = centroid_all;
    stats.buffers += 1;
    if let Some(nid) = root_in {
        netlist.connect_sink(nid, PinRef::input(root, 0));
    }
    let trunk = netlist.add_net("cts_trunk");
    {
        let mut n = netlist.net_mut(trunk);
        n.domain = domain;
        n.is_clock = true;
    }
    netlist.connect_driver(trunk, PinRef::output(root));

    for tier in Tier::ALL {
        // cooperative deadline checkpoint, once per tier; CTS is
        // infallible, so a trip unwinds to the caller's isolate boundary
        foldic_fault::deadline::poll_unwind();
        let mut tier_sinks: Vec<(PinRef, Point)> = sinks
            .iter()
            .filter(|&&(_, _, t)| t == tier)
            .map(|&(p, pos, _)| (p, pos))
            .collect();
        if tier_sinks.is_empty() {
            continue;
        }
        let depth = bisect(
            netlist,
            &mut tier_sinks,
            tier,
            trunk,
            domain,
            buf_leaf,
            buf_mid,
            &mut stats,
            1,
        );
        stats.depth = stats.depth.max(depth);
    }
    stats
}

/// Recursively splits `sinks` at the median of the wider axis; creates a
/// buffer per node. Returns the subtree depth.
#[allow(clippy::too_many_arguments)]
fn bisect(
    netlist: &mut Netlist,
    sinks: &mut [(PinRef, Point)],
    tier: Tier,
    parent_net: foldic_netlist::NetId,
    domain: ClockDomain,
    buf_leaf: foldic_tech::cells::MasterId,
    buf_mid: foldic_tech::cells::MasterId,
    stats: &mut CtsStats,
    level: usize,
) -> usize {
    let centroid =
        sinks.iter().fold(Point::ORIGIN, |a, &(_, p)| a + p) * (1.0 / sinks.len() as f64);
    let leaf = sinks.len() <= LEAF_CAPACITY;
    let master = if leaf { buf_leaf } else { buf_mid };
    let name = format!("cts_{}_{}_{}", tier, level, stats.buffers);
    let buf = netlist.add_inst(name, InstMaster::Cell(master));
    {
        let mut inst = netlist.inst_mut(buf);
        inst.pos = centroid;
        inst.tier = tier;
    }
    stats.buffers += 1;
    netlist.connect_sink(parent_net, PinRef::input(buf, 0));
    let net = netlist.add_net(format!("cts_n_{}_{}_{}", tier, level, stats.buffers));
    {
        let mut n = netlist.net_mut(net);
        n.domain = domain;
        n.is_clock = true;
    }
    netlist.connect_driver(net, PinRef::output(buf));

    if leaf {
        stats.leaves += 1;
        for &(pin, _) in sinks.iter() {
            netlist.connect_sink(net, pin);
        }
        return level;
    }
    // split along the wider axis at the median
    let bb = foldic_geom::Rect::bounding(sinks.iter().map(|&(_, p)| p));
    if bb.width() >= bb.height() {
        sinks.sort_by(|a, b| a.1.x.total_cmp(&b.1.x));
    } else {
        sinks.sort_by(|a, b| a.1.y.total_cmp(&b.1.y));
    }
    let mid = sinks.len() / 2;
    let (lo, hi) = sinks.split_at_mut(mid);
    let d1 = bisect(
        netlist,
        lo,
        tier,
        net,
        domain,
        buf_leaf,
        buf_mid,
        stats,
        level + 1,
    );
    let d2 = bisect(
        netlist,
        hi,
        tier,
        net,
        domain,
        buf_leaf,
        buf_mid,
        stats,
        level + 1,
    );
    d1.max(d2)
}

/// Estimated worst skew of the synthesized tree in ps: the spread of
/// driver-to-sink Elmore delays over the leaf nets.
///
/// # Errors
///
/// Propagates wiring-analysis failures.
pub fn estimate_skew_ps(
    netlist: &Netlist,
    tech: &Technology,
    max_layer: usize,
) -> Result<f64, foldic_fault::FlowError> {
    let wiring = foldic_route::BlockWiring::analyze(netlist, tech, 1.1, None)?;
    let r = tech.metal.effective_r_per_um(max_layer);
    let c = tech.metal.effective_c_per_um(max_layer);
    let mut min_d = f64::INFINITY;
    let mut max_d = f64::NEG_INFINITY;
    for (nid, net) in netlist.nets() {
        if !net.is_clock || net.fanout() == 0 {
            continue;
        }
        let rec = wiring.net(nid);
        for k in 0..net.fanout() {
            let len = rec.sink_paths.get(k).copied().unwrap_or(0.0);
            let d = 0.5 * r * len * c * len * foldic_tech::units::RC_TO_PS;
            min_d = min_d.min(d);
            max_d = max_d.max(d);
        }
    }
    Ok(if max_d.is_finite() {
        max_d - min_d
    } else {
        0.0
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use foldic_t2::T2Config;

    fn flop_clock_sinks(nl: &Netlist, tech: &Technology) -> Vec<PinRef> {
        nl.insts()
            .filter_map(|(id, i)| match i.master {
                InstMaster::Cell(m) if tech.cells.master(m).kind == CellKind::Dff => {
                    Some(PinRef::input(id, 1))
                }
                _ => None,
            })
            .collect()
    }

    #[test]
    fn cts_reaches_every_flop_exactly_once() {
        let (design, tech) = T2Config::tiny().generate();
        let mut nl = design
            .block(design.find_block("mcu0").unwrap())
            .netlist
            .clone();
        let stats = synthesize_clock_tree(&mut nl, &tech);
        nl.check().expect("sound after CTS");
        let expect = flop_clock_sinks(&nl, &tech);
        assert_eq!(stats.sinks, expect.len());
        let mut seen = std::collections::HashMap::new();
        for (_, net) in nl.nets() {
            if net.is_clock {
                for s in net.sinks() {
                    if expect.contains(&s) {
                        *seen.entry(s).or_insert(0usize) += 1;
                    }
                }
            }
        }
        for pin in expect {
            assert_eq!(seen.get(&pin), Some(&1), "{pin:?}");
        }
    }

    #[test]
    fn leaf_capacity_is_respected() {
        let (design, tech) = T2Config::tiny().generate();
        let mut nl = design
            .block(design.find_block("l2t0").unwrap())
            .netlist
            .clone();
        let stats = synthesize_clock_tree(&mut nl, &tech);
        assert!(stats.leaves >= 1);
        for (_, net) in nl.nets() {
            if net.is_clock && nl.name_of(net.name).to_string().starts_with("cts_n") {
                // leaf nets drive flops only up to capacity; internal nets
                // drive buffers (small fanout by construction)
                assert!(
                    net.fanout() <= LEAF_CAPACITY.max(2),
                    "{}",
                    nl.name_of(net.name)
                );
            }
        }
    }

    #[test]
    fn folded_blocks_get_per_tier_leaves() {
        let (design, tech) = T2Config::tiny().generate();
        let mut nl = design
            .block(design.find_block("l2t0").unwrap())
            .netlist
            .clone();
        // fold crudely
        let ids: Vec<foldic_netlist::InstId> = nl.inst_ids().collect();
        for (k, id) in ids.into_iter().enumerate() {
            if k % 2 == 0 {
                nl.inst_mut(id).tier = Tier::Top;
            }
        }
        synthesize_clock_tree(&mut nl, &tech);
        // no cts leaf net may span tiers
        for (nid, net) in nl.nets() {
            if net.is_clock && nl.name_of(net.name).to_string().starts_with("cts_n") {
                let drives_flops = net.sinks().any(|s| match s {
                    PinRef::InstIn(i, 1) => matches!(nl.inst(i).master, InstMaster::Cell(m)
                        if tech.cells.master(m).kind == CellKind::Dff),
                    _ => false,
                });
                if drives_flops {
                    assert!(
                        !nl.net_is_3d(nid),
                        "leaf {} spans tiers",
                        nl.name_of(net.name)
                    );
                }
            }
        }
    }

    #[test]
    fn skew_estimate_is_bounded() {
        let (design, tech) = T2Config::tiny().generate();
        let mut nl = design
            .block(design.find_block("rtx").unwrap())
            .netlist
            .clone();
        synthesize_clock_tree(&mut nl, &tech);
        let skew = estimate_skew_ps(&nl, &tech, 7).unwrap();
        assert!(skew >= 0.0);
        assert!(skew < 500.0, "skew {skew} ps is implausible");
    }
}
