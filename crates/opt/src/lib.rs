#![warn(missing_docs)]
#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]
//! Timing and power optimization: buffer insertion, gate sizing, dual-Vth.
//!
//! Mirrors the paper's iterative optimization steps (§2.2: "block-level
//! and chip-level timing optimizations (buffer insertion and gate sizing)
//! as well as power optimizations (gate sizing)", and §6.2's dual-Vth
//! swap). The passes run in the classic order:
//!
//! 1. **Repeater insertion** ([`insert_buffers`]) — nets longer than the
//!    optimal repeater distance get evenly spaced BUF chains; multi-fanout
//!    nets get a buffer in front of their far sink cluster. This is where
//!    shorter 3D wirelength directly converts into a smaller buffer count
//!    (Table 2's −16 %).
//! 2. **Upsizing** ([`upsize_critical`]) — drivers of violated paths step
//!    up one drive until timing is met or X16 is reached.
//! 3. **Downsizing** ([`downsize_with_slack`]) — drivers with comfortable
//!    positive slack step down, trading the slack 3D layouts create for
//!    cell power ("cells can be downsized in the 3D design if this change
//!    still meets the timing constraint", §3.2).
//! 4. **HVT swap** ([`swap_to_hvt`]) — positive-slack cells move to the
//!    high-Vth library flavour (−50 % leakage, −5 % cell power, +30 %
//!    delay).
//!
//! [`optimize_block`] chains the passes with STA between them and returns
//! an [`OptStats`] audit.
//!
//! # Examples
//!
//! ```
//! use foldic_t2::T2Config;
//! use foldic_opt::{optimize_block, OptConfig};
//! use foldic_timing::TimingBudgets;
//!
//! let (mut design, tech) = T2Config::tiny().generate();
//! let id = design.find_block("ccu").unwrap();
//! let block = design.block_mut(id);
//! let budgets = TimingBudgets::relaxed(&block.netlist, &tech);
//! let stats = optimize_block(&mut block.netlist, &tech, &budgets, &OptConfig::default()).unwrap();
//! assert!(stats.rounds > 0);
//! ```

pub mod cts;

use foldic_fault::FlowError;
use foldic_geom::Point;
use foldic_netlist::{InstId, InstMaster, NetId, Netlist, PinRef};
use foldic_route::{BlockWiring, ViaPlacement};
use foldic_tech::units::RC_TO_PS;
use foldic_tech::{CellKind, Drive, Technology, Via3dKind, VthClass};
use foldic_timing::{analyze, StaConfig, TimingBudgets, TimingReport};

/// Optimizer knobs.
#[derive(Debug, Clone)]
pub struct OptConfig {
    /// Routed detour factor used for wiring analysis between passes.
    pub detour: f64,
    /// Highest metal layer inside the block.
    pub max_layer: usize,
    /// 3D-via kind for folded blocks.
    pub via_kind: Option<Via3dKind>,
    /// Slack a cell must keep after a power move, in ps.
    pub slack_margin_ps: f64,
    /// Number of STA→fix rounds for each timing pass.
    pub rounds: usize,
    /// Enable the dual-Vth (HVT swap) pass.
    pub dual_vth: bool,
}

impl Default for OptConfig {
    fn default() -> Self {
        Self {
            detour: foldic_route::wiring::DEFAULT_DETOUR,
            max_layer: 7,
            via_kind: None,
            slack_margin_ps: 60.0,
            rounds: 3,
            dual_vth: false,
        }
    }
}

/// What the optimizer did.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct OptStats {
    /// Buffers inserted.
    pub buffers_added: usize,
    /// Upsize moves applied.
    pub upsized: usize,
    /// Downsize moves applied.
    pub downsized: usize,
    /// Cells swapped to HVT.
    pub hvt_swapped: usize,
    /// STA rounds executed.
    pub rounds: usize,
    /// Final timing report's worst negative slack in ps.
    pub final_wns_ps: f64,
    /// Final violation count.
    pub final_violations: usize,
}

/// Power-optimal repeater spacing in µm.
///
/// Delay-optimal spacing is `√(2·R_buf·C_buf / (r·c))`; production flows
/// insert repeaters ~1.8× sparser, trading a few percent of delay for a
/// large repeater-power saving — the spacing the paper's power-optimized
/// designs reflect.
pub fn repeater_spacing_um(tech: &Technology, max_layer: usize) -> f64 {
    let buf = tech.cells.get(CellKind::Buf, Drive::X8, VthClass::Rvt);
    let r = tech.metal.effective_r_per_um(max_layer);
    let c = tech.metal.effective_c_per_um(max_layer);
    1.8 * (2.0 * buf.output_res_ohm * buf.input_cap_ff / (r * c)).sqrt()
}

/// Repeater spacing for chip-level wiring in µm: inter-block buses ride
/// the thick M8/M9 global layers, so their repeaters sit much further
/// apart than block-internal ones.
pub fn chip_repeater_spacing_um(tech: &Technology) -> f64 {
    let buf = tech.cells.get(CellKind::Buf, Drive::X8, VthClass::Rvt);
    let n = tech.metal.num_layers();
    let r = (tech.metal.layer(n).r_per_um + tech.metal.layer(n - 1).r_per_um) / 2.0;
    let c = tech.metal.top_layer().c_per_um;
    1.8 * (2.0 * buf.output_res_ohm * buf.input_cap_ff / (r * c)).sqrt()
}

/// Inserts repeaters on long nets; returns the number added.
///
/// Two-terminal segments longer than the repeater spacing get an evenly
/// spaced BUF X8 chain; nets with a far-away sink cluster get one buffer
/// at the cluster's centroid driving the moved sinks.
///
/// # Errors
///
/// Propagates wiring-analysis failures.
pub fn insert_buffers(
    netlist: &mut Netlist,
    tech: &Technology,
    cfg: &OptConfig,
    vias: Option<&ViaPlacement>,
) -> Result<usize, FlowError> {
    let spacing = repeater_spacing_um(tech, cfg.max_layer);
    let wiring = BlockWiring::analyze(netlist, tech, cfg.detour, vias)?;
    let buf_master = tech.cells.id_of(CellKind::Buf, Drive::X8, VthClass::Rvt);
    let mut added = 0;

    let net_ids: Vec<NetId> = netlist.net_ids().collect();
    for (k, nid) in net_ids.into_iter().enumerate() {
        // cooperative deadline checkpoint, every 256 nets
        if k % 256 == 0 {
            foldic_fault::deadline::poll()?;
        }
        let net = netlist.net(nid);
        if net.is_clock || net.fanout() == 0 {
            continue;
        }
        let Some(driver) = net.driver else { continue };
        let rec = wiring.net(nid);
        if rec.length_um <= spacing {
            continue;
        }
        let domain = net.domain;
        let dpos = netlist.pin_pos(driver);
        let dtier = netlist.pin_tier(driver);

        if net.fanout() == 1 {
            // chain along the straight line to the sink
            let sink = net.sink(0);
            let spos = netlist.pin_pos(sink);
            let stier = netlist.pin_tier(sink);
            let len = rec.length_um;
            let k = ((len / spacing).floor() as usize).min(8);
            if k == 0 {
                continue;
            }
            let mut prev = driver;
            let mut prev_net = nid;
            for step in 1..=k {
                let t = step as f64 / (k + 1) as f64;
                let pos = Point::new(
                    dpos.x + (spos.x - dpos.x) * t,
                    dpos.y + (spos.y - dpos.y) * t,
                );
                let b = netlist.add_inst(
                    format!("optbuf_{}_{}", nid.0, step),
                    InstMaster::Cell(buf_master),
                );
                {
                    let mut inst = netlist.inst_mut(b);
                    inst.pos = pos;
                    inst.tier = if t < 0.5 { dtier } else { stier };
                }
                let new_net = netlist.add_net(format!("optnet_{}_{}", nid.0, step));
                netlist.net_mut(new_net).domain = domain;
                // move the sink from prev_net to new_net, buffer bridges
                netlist.move_sinks(prev_net, new_net, |p| p == sink);
                netlist.connect_sink(prev_net, PinRef::input(b, 0));
                netlist.connect_driver(new_net, PinRef::output(b));
                prev = PinRef::output(b);
                prev_net = new_net;
                added += 1;
            }
            let _ = prev;
        } else {
            // multi-fanout: buffer the far cluster once
            let far: Vec<PinRef> = net
                .sinks()
                .zip(rec.sink_paths.iter())
                .filter(|&(_, &d)| d > spacing)
                .map(|(s, _)| s)
                .collect();
            if far.is_empty() {
                continue;
            }
            let centroid = far
                .iter()
                .fold(Point::ORIGIN, |acc, &s| acc + netlist.pin_pos(s))
                * (1.0 / far.len() as f64);
            // buffer placed toward the cluster, one spacing from driver
            let d = dpos.manhattan(centroid).max(1.0);
            let t = (spacing / d).min(0.5);
            let pos = Point::new(
                dpos.x + (centroid.x - dpos.x) * t,
                dpos.y + (centroid.y - dpos.y) * t,
            );
            let b = netlist.add_inst(format!("optbuf_{}_c", nid.0), InstMaster::Cell(buf_master));
            {
                let mut inst = netlist.inst_mut(b);
                inst.pos = pos;
                inst.tier = dtier;
            }
            let new_net = netlist.add_net(format!("optnet_{}_c", nid.0));
            netlist.net_mut(new_net).domain = domain;
            let far_set: std::collections::HashSet<PinRef> = far.into_iter().collect();
            netlist.move_sinks(nid, new_net, |p| far_set.contains(&p));
            netlist.connect_sink(nid, PinRef::input(b, 0));
            netlist.connect_driver(new_net, PinRef::output(b));
            added += 1;
        }
    }
    Ok(added)
}

fn sta(
    netlist: &Netlist,
    tech: &Technology,
    budgets: &TimingBudgets,
    cfg: &OptConfig,
    vias: Option<&ViaPlacement>,
) -> Result<TimingReport, FlowError> {
    let wiring = BlockWiring::analyze(netlist, tech, cfg.detour, vias)?;
    analyze(
        netlist,
        tech,
        &wiring,
        budgets,
        &StaConfig {
            max_layer: cfg.max_layer,
            via_kind: cfg.via_kind,
        },
    )
}

/// Upsizes drivers on violated paths; returns moves applied.
pub fn upsize_critical(netlist: &mut Netlist, tech: &Technology, report: &TimingReport) -> usize {
    let mut moves = 0;
    let ids: Vec<InstId> = netlist.inst_ids().collect();
    for id in ids {
        if report.slack_ps[id.index()] >= 0.0 {
            continue;
        }
        let InstMaster::Cell(m) = netlist.inst(id).master else {
            continue;
        };
        if let Some(up) = tech.cells.upsize(m) {
            netlist.inst_mut(id).master = InstMaster::Cell(up);
            moves += 1;
        }
    }
    moves
}

/// Downsizes drivers with comfortable slack; returns moves applied.
///
/// A move is taken only when the locally estimated delay increase fits
/// inside half the available slack (the paper's power optimization by
/// gate sizing, §2.2/§3.2).
pub fn downsize_with_slack(
    netlist: &mut Netlist,
    tech: &Technology,
    report: &TimingReport,
    cfg: &OptConfig,
    loads: &BlockWiring,
) -> usize {
    let c_um = tech.metal.effective_c_per_um(cfg.max_layer);
    // net driven by each inst
    let mut driven: Vec<Option<NetId>> = vec![None; netlist.num_insts()];
    for (nid, net) in netlist.nets() {
        if let Some(PinRef::InstOut(i)) = net.driver {
            driven[i.index()] = Some(nid);
        }
    }
    let mut moves = 0;
    let ids: Vec<InstId> = netlist.inst_ids().collect();
    for id in ids {
        let slack = report.slack_ps[id.index()];
        if !slack.is_finite() || slack < cfg.slack_margin_ps {
            continue;
        }
        let InstMaster::Cell(m) = netlist.inst(id).master else {
            continue;
        };
        let master = tech.cells.master(m);
        if master.kind == CellKind::ClkBuf {
            continue; // clock tree stays balanced
        }
        let Some(down) = tech.cells.downsize(m) else {
            continue;
        };
        // local delay penalty estimate
        let load = match driven[id.index()] {
            Some(nid) => {
                let net = netlist.net(nid);
                let wire = loads.net(nid).length_um * c_um;
                let pins: f64 = net
                    .sinks()
                    .map(|s| match s {
                        PinRef::InstIn(i, _) => match netlist.inst(i).master {
                            InstMaster::Cell(mm) => tech.cells.master(mm).input_cap_ff,
                            InstMaster::Macro(k) => tech.macros.get(k).pin_cap_ff,
                        },
                        _ => 0.0,
                    })
                    .sum();
                wire + pins
            }
            None => 0.0,
        };
        let new_master = tech.cells.master(down);
        let delta = (new_master.output_res_ohm - master.output_res_ohm) * load * RC_TO_PS
            + (new_master.intrinsic_delay_ps - master.intrinsic_delay_ps);
        if delta < slack * 0.5 {
            netlist.inst_mut(id).master = InstMaster::Cell(down);
            moves += 1;
        }
    }
    moves
}

/// Swaps positive-slack cells to the HVT flavour; returns moves applied.
///
/// Generous by design: production dual-Vth flows end up with ~90 % HVT
/// usage (the paper reports 87.8–94.0 %), keeping RVT only on critical
/// paths. Cells with unknown (unconstrained) or comfortably positive
/// slack swap; [`revert_hvt_on_violations`] pulls back the ones the
/// follow-up STA proves wrong.
pub fn swap_to_hvt(
    netlist: &mut Netlist,
    tech: &Technology,
    report: &TimingReport,
    cfg: &OptConfig,
) -> usize {
    let mut moves = 0;
    let ids: Vec<InstId> = netlist.inst_ids().collect();
    for id in ids {
        let slack = report.slack_ps[id.index()];
        // NaN/negative slack: skip; +inf (unconstrained) swaps freely
        if slack.is_nan() || slack < cfg.slack_margin_ps * 0.5 {
            continue;
        }
        let InstMaster::Cell(m) = netlist.inst(id).master else {
            continue;
        };
        let master = tech.cells.master(m);
        if master.vth == VthClass::Hvt {
            continue;
        }
        // the local +30% stage-delay penalty must fit into the slack
        let delay_penalty = 0.3 * master.intrinsic_delay_ps;
        if 2.0 * delay_penalty < slack {
            netlist.inst_mut(id).master = InstMaster::Cell(tech.cells.with_vth(m, VthClass::Hvt));
            moves += 1;
        }
    }
    moves
}

/// Reverts HVT cells on violated paths back to RVT; returns moves.
pub fn revert_hvt_on_violations(
    netlist: &mut Netlist,
    tech: &Technology,
    report: &TimingReport,
) -> usize {
    let mut moves = 0;
    let ids: Vec<InstId> = netlist.inst_ids().collect();
    for id in ids {
        if report.slack_ps[id.index()] >= 0.0 {
            continue;
        }
        let InstMaster::Cell(m) = netlist.inst(id).master else {
            continue;
        };
        if tech.cells.master(m).vth == VthClass::Hvt {
            netlist.inst_mut(id).master = InstMaster::Cell(tech.cells.with_vth(m, VthClass::Rvt));
            moves += 1;
        }
    }
    moves
}

/// Runs the full optimization recipe on one block.
///
/// # Errors
///
/// Propagates wiring-analysis and STA failures from the inner rounds.
pub fn optimize_block(
    netlist: &mut Netlist,
    tech: &Technology,
    budgets: &TimingBudgets,
    cfg: &OptConfig,
) -> Result<OptStats, FlowError> {
    optimize_block_with_vias(netlist, tech, budgets, cfg, None)
}

/// [`optimize_block`] for folded blocks with a via placement.
///
/// # Errors
///
/// See [`optimize_block`].
pub fn optimize_block_with_vias(
    netlist: &mut Netlist,
    tech: &Technology,
    budgets: &TimingBudgets,
    cfg: &OptConfig,
    vias: Option<&ViaPlacement>,
) -> Result<OptStats, FlowError> {
    // 1. repeaters on long wires
    let mut stats = OptStats {
        buffers_added: insert_buffers(netlist, tech, cfg, vias)?,
        ..Default::default()
    };

    // Per-round WNS trajectory, accumulated locally and flushed once at
    // the end (sampled observability — no hook inside the fix loops).
    let mut wns_traj: Vec<f64> = Vec::new();
    let mut note = |round: usize, wns_ps: f64| {
        if foldic_obs::metrics::is_enabled() {
            wns_traj.push(wns_ps);
        }
        if foldic_obs::trace::is_enabled() {
            foldic_obs::trace::instant(
                "opt_round",
                vec![("round", round.into()), ("wns_ps", wns_ps.into())],
            );
        }
    };

    // 2. timing recovery rounds
    let mut report = sta(netlist, tech, budgets, cfg, vias)?;
    stats.rounds += 1;
    note(stats.rounds, report.wns_ps);
    for _ in 0..cfg.rounds {
        // cooperative deadline checkpoint, once per recovery round
        foldic_fault::deadline::poll()?;
        if report.met() {
            break;
        }
        let up = upsize_critical(netlist, tech, &report);
        stats.upsized += up;
        report = sta(netlist, tech, budgets, cfg, vias)?;
        stats.rounds += 1;
        note(stats.rounds, report.wns_ps);
        if up == 0 {
            break;
        }
    }

    // 3. power recovery: downsizing
    for _ in 0..cfg.rounds.min(2) {
        foldic_fault::deadline::poll()?;
        let wiring = BlockWiring::analyze(netlist, tech, cfg.detour, vias)?;
        let down = downsize_with_slack(netlist, tech, &report, cfg, &wiring);
        stats.downsized += down;
        report = sta(netlist, tech, budgets, cfg, vias)?;
        stats.rounds += 1;
        note(stats.rounds, report.wns_ps);
        if down == 0 {
            break;
        }
    }

    // 4. dual-Vth: swap generously, then revert the cells the follow-up
    //    STA proves critical (two refinement rounds)
    if cfg.dual_vth {
        stats.hvt_swapped = swap_to_hvt(netlist, tech, &report, cfg);
        report = sta(netlist, tech, budgets, cfg, vias)?;
        stats.rounds += 1;
        note(stats.rounds, report.wns_ps);
        for _ in 0..2 {
            if report.met() {
                break;
            }
            let reverted = revert_hvt_on_violations(netlist, tech, &report);
            stats.hvt_swapped = stats.hvt_swapped.saturating_sub(reverted);
            report = sta(netlist, tech, budgets, cfg, vias)?;
            stats.rounds += 1;
            note(stats.rounds, report.wns_ps);
            if reverted == 0 {
                break;
            }
        }
    }

    stats.final_wns_ps = report.wns_ps;
    stats.final_violations = report.violations;
    foldic_exec::profile::add_iters(stats.rounds as u64);
    if foldic_obs::metrics::is_enabled() {
        foldic_obs::metrics::add("opt.buffers_added", stats.buffers_added as u64);
        foldic_obs::metrics::add("opt.upsized", stats.upsized as u64);
        foldic_obs::metrics::add("opt.downsized", stats.downsized as u64);
        foldic_obs::metrics::add("opt.hvt_swapped", stats.hvt_swapped as u64);
        foldic_obs::metrics::add("opt.rounds", stats.rounds as u64);
        foldic_obs::metrics::observe_all("opt.round_wns_ps", &wns_traj);
    }
    Ok(stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use foldic_t2::T2Config;

    fn block(name: &str) -> (Netlist, Technology) {
        let (design, tech) = T2Config::tiny().generate();
        let b = design.block(design.find_block(name).unwrap());
        (b.netlist.clone(), tech)
    }

    #[test]
    fn repeater_spacing_is_physical() {
        let tech = Technology::cmos28();
        let s = repeater_spacing_um(&tech, 7);
        assert!(s > 50.0 && s < 1000.0, "spacing {s}");
        // opening the fat top layers lengthens the optimal segment
        assert!(repeater_spacing_um(&tech, 9) > s);
    }

    #[test]
    fn buffers_reduce_arrival_on_long_nets() {
        let (mut nl, tech) = block("rtx");
        let budgets = TimingBudgets::relaxed(&nl, &tech);
        let cfg = OptConfig::default();
        let before = sta(&nl, &tech, &budgets, &cfg, None).unwrap();
        let added = insert_buffers(&mut nl, &tech, &cfg, None).unwrap();
        assert!(added > 0, "RTX has long nets to buffer");
        nl.check().expect("buffering must keep the netlist sound");
        let after = sta(&nl, &tech, &budgets, &cfg, None).unwrap();
        assert!(
            after.max_arrival_ps < before.max_arrival_ps,
            "{} -> {}",
            before.max_arrival_ps,
            after.max_arrival_ps
        );
    }

    #[test]
    fn full_recipe_improves_timing_and_reports() {
        let (mut nl, tech) = block("l2t0");
        let budgets = TimingBudgets::relaxed(&nl, &tech);
        let cfg = OptConfig::default();
        let before = sta(&nl, &tech, &budgets, &cfg, None).unwrap();
        let stats = optimize_block(&mut nl, &tech, &budgets, &cfg).unwrap();
        assert!(stats.rounds >= 1);
        let after = sta(&nl, &tech, &budgets, &cfg, None).unwrap();
        assert!(after.tns_ps <= before.tns_ps);
        nl.check().expect("netlist stays sound");
    }

    #[test]
    fn dvt_swap_cuts_leakage_without_breaking_timing() {
        let (mut nl, tech) = block("mcu0");
        let budgets = TimingBudgets::relaxed(&nl, &tech);
        let mut cfg = OptConfig {
            dual_vth: true,
            ..Default::default()
        };
        let leak = |nl: &Netlist| -> f64 {
            nl.insts()
                .filter_map(|(_, i)| match i.master {
                    InstMaster::Cell(m) => Some(tech.cells.master(m).leakage_uw),
                    InstMaster::Macro(_) => None,
                })
                .sum()
        };
        // settle timing first so the swap is measured in isolation
        cfg.dual_vth = false;
        optimize_block(&mut nl, &tech, &budgets, &cfg).unwrap();
        let leak_before = leak(&nl);
        let report = sta(&nl, &tech, &budgets, &cfg, None).unwrap();
        let swapped = swap_to_hvt(&mut nl, &tech, &report, &cfg);
        assert!(swapped > 0);
        assert!(leak(&nl) < leak_before);
        let after = sta(&nl, &tech, &budgets, &cfg, None).unwrap();
        assert!(
            after.violations <= report.violations,
            "wns {}",
            after.wns_ps
        );
    }

    #[test]
    fn downsizing_respects_slack_margin() {
        let (mut nl, tech) = block("ccu");
        let budgets = TimingBudgets::relaxed(&nl, &tech);
        let cfg = OptConfig::default();
        let report = sta(&nl, &tech, &budgets, &cfg, None).unwrap();
        let wiring = BlockWiring::analyze(&nl, &tech, cfg.detour, None).unwrap();
        let down = downsize_with_slack(&mut nl, &tech, &report, &cfg, &wiring);
        // after downsizing the block must still meet timing
        let after = sta(&nl, &tech, &budgets, &cfg, None).unwrap();
        assert!(
            after.violations <= report.violations,
            "downsize moves {down}"
        );
    }
}
