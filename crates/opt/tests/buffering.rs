//! Buffer-insertion topology and sizing-pass invariants.

use foldic_geom::Point;
use foldic_netlist::{InstMaster, Netlist, PinRef};
use foldic_opt::{insert_buffers, optimize_block, repeater_spacing_um, upsize_critical, OptConfig};
use foldic_route::BlockWiring;
use foldic_tech::{CellKind, Drive, Technology, VthClass};
use foldic_timing::{analyze, StaConfig, TimingBudgets};

fn two_point_net(len: f64) -> (Netlist, Technology) {
    let tech = Technology::cmos28();
    let m = InstMaster::Cell(tech.cells.id_of(CellKind::Inv, Drive::X2, VthClass::Rvt));
    let mut nl = Netlist::new("t");
    let a = nl.add_inst("a", m);
    let b = nl.add_inst("b", m);
    nl.inst_mut(b).pos = Point::new(len, 0.0);
    let n = nl.add_net("w");
    nl.connect_driver(n, PinRef::output(a));
    nl.connect_sink(n, PinRef::input(b, 0));
    (nl, tech)
}

#[test]
fn chain_splits_into_even_segments() {
    let tech = Technology::cmos28();
    let spacing = repeater_spacing_um(&tech, 7);
    let len = spacing * 3.5;
    let (mut nl, tech) = two_point_net(len);
    let cfg = OptConfig::default();
    let added = insert_buffers(&mut nl, &tech, &cfg, None).unwrap();
    assert!(
        added >= 2,
        "expected a chain on a {len:.0} µm net, got {added}"
    );
    nl.check().expect("sound after chaining");
    // total wirelength must stay ~the same (detour-free straight line)
    let wiring = BlockWiring::analyze(&nl, &tech, 1.0, None).unwrap();
    assert!(
        (wiring.total_um - len).abs() < 0.05 * len,
        "chain stretched the route: {} vs {len}",
        wiring.total_um
    );
    // every inserted buffer lies on the segment between the endpoints
    for (_, inst) in nl.insts() {
        assert!(inst.pos.x >= -1.0 && inst.pos.x <= len + 1.0);
        assert!(inst.pos.y.abs() < 1.0);
    }
    // and no segment exceeds the spacing by much
    for (_, net) in nl.nets() {
        let d = net.pins().map(|p| nl.pin_pos(p)).collect::<Vec<_>>();
        if d.len() == 2 {
            assert!(d[0].manhattan(d[1]) < spacing * 1.6);
        }
    }
}

#[test]
fn short_nets_are_left_alone() {
    let (mut nl, tech) = two_point_net(20.0);
    let cfg = OptConfig::default();
    let added = insert_buffers(&mut nl, &tech, &cfg, None).unwrap();
    assert_eq!(added, 0);
    assert_eq!(nl.num_insts(), 2);
}

#[test]
fn fanout_buffer_takes_only_far_sinks() {
    let tech = Technology::cmos28();
    let spacing = repeater_spacing_um(&tech, 7);
    let m = InstMaster::Cell(tech.cells.id_of(CellKind::Inv, Drive::X2, VthClass::Rvt));
    let mut nl = Netlist::new("fan");
    let d = nl.add_inst("d", m);
    let near = nl.add_inst("near", m);
    let far1 = nl.add_inst("far1", m);
    let far2 = nl.add_inst("far2", m);
    nl.inst_mut(near).pos = Point::new(10.0, 0.0);
    nl.inst_mut(far1).pos = Point::new(2.2 * spacing, 10.0);
    nl.inst_mut(far2).pos = Point::new(2.2 * spacing, -10.0);
    let n = nl.add_net("w");
    nl.connect_driver(n, PinRef::output(d));
    for s in [near, far1, far2] {
        nl.connect_sink(n, PinRef::input(s, 0));
    }
    let cfg = OptConfig::default();
    let added = insert_buffers(&mut nl, &tech, &cfg, None).unwrap();
    assert!(added >= 1);
    nl.check().expect("sound");
    // the near sink must still hang on the original net
    let orig = nl.net(foldic_netlist::NetId(0));
    assert!(orig.sinks().any(|s| s == PinRef::input(near, 0)));
    assert!(!orig.sinks().any(|s| s == PinRef::input(far1, 0)));
}

#[test]
fn upsizing_saturates_at_x16() {
    let tech = Technology::cmos28();
    let (mut nl, _) = two_point_net(9000.0);
    let budgets = TimingBudgets::relaxed(&nl, &tech);
    // hammer the upsizer many rounds; drives must cap at X16
    for _ in 0..10 {
        let wiring = BlockWiring::analyze(&nl, &tech, 1.1, None).unwrap();
        let rep = analyze(&nl, &tech, &wiring, &budgets, &StaConfig::default()).unwrap();
        upsize_critical(&mut nl, &tech, &rep);
    }
    for (_, inst) in nl.insts() {
        if let InstMaster::Cell(m) = inst.master {
            assert!(tech.cells.master(m).drive.factor() <= 16.0);
        }
    }
}

#[test]
fn optimize_block_never_leaves_dangling_nets() {
    let (design, tech) = foldic_t2::T2Config::tiny().generate();
    for name in ["ccu", "ncu", "rtx"] {
        let mut nl = design
            .block(design.find_block(name).unwrap())
            .netlist
            .clone();
        let budgets = TimingBudgets::relaxed(&nl, &tech);
        optimize_block(&mut nl, &tech, &budgets, &OptConfig::default()).unwrap();
        nl.check().unwrap_or_else(|e| panic!("{name}: {e}"));
    }
}

#[test]
fn second_optimization_pass_is_nearly_idempotent() {
    let (design, tech) = foldic_t2::T2Config::tiny().generate();
    let mut nl = design
        .block(design.find_block("mcu0").unwrap())
        .netlist
        .clone();
    let budgets = TimingBudgets::relaxed(&nl, &tech);
    let cfg = OptConfig::default();
    optimize_block(&mut nl, &tech, &budgets, &cfg).unwrap();
    let cells_after_first = nl.num_insts();
    let stats = optimize_block(&mut nl, &tech, &budgets, &cfg).unwrap();
    // a settled design re-optimized must barely change
    assert!(
        stats.buffers_added * 20 <= cells_after_first,
        "second pass added {} buffers on {cells_after_first} cells",
        stats.buffers_added
    );
}
