//! The TCP daemon: accept loop, routing, graceful shutdown.
//!
//! One thread accepts connections; each connection is handled on its own
//! thread, one request per connection (`Connection: close` — clients of a
//! batch service submit a handful of jobs, not thousands of pipelined
//! requests, and closed connections make the torn-write story simple).
//! Shutdown is graceful on both layers: the accept loop stops, in-flight
//! connections finish their single request, and the scheduler drains its
//! running jobs before workers are joined.
//!
//! Routes:
//!
//! | Method + path            | Purpose                                   |
//! |--------------------------|-------------------------------------------|
//! | `GET /healthz`           | liveness: version, uptime, build profile  |
//! | `GET /stats`             | scheduler + cache counters                |
//! | `GET /metrics`           | `foldic-serve-metrics/1` text exposition  |
//! | `POST /jobs`             | submit a job (`foldic-serve-job/1` body)  |
//! | `GET /jobs/<id>`         | job status                                |
//! | `GET /jobs/<id>/result`  | manifest body of a finished job           |
//! | `GET /jobs/<id>/trace`   | the job's span tree as Chrome-trace JSON  |
//! | `POST /jobs/<id>/cancel` | cancel a queued job                       |
//! | `GET /cache/<key>`       | provenance of a cached study              |
//! | `POST /shutdown`         | ask the daemon to drain and exit          |
//!
//! Every request is assigned a **request id** — taken from a
//! well-formed `X-Request-Id` header, freshly allocated otherwise —
//! echoed back in the `X-Request-Id` response header, stamped into every
//! 4xx/5xx JSON body as `request_id`, written on the access-log line,
//! and (for submissions) threaded into the scheduler so the job's span
//! tree roots under this request's `http.request` span.

use crate::cache::ResultCache;
use crate::http::{read_request, HttpError, Request, Response};
use crate::job::JobSpec;
use crate::journal::Journal;
use crate::queue::{
    Durability, JobState, Scheduler, SchedulerConfig, StudyRunner, Submission, SubmitCtx,
};
use crate::telemetry::{endpoint_class, Telemetry, TelemetryConfig};
use foldic_fault::supervise::BreakerConfig;
use foldic_obs::json::Json;
use foldic_obs::trace::{AttrValue, SpanGuard, SpanId};
use std::io::BufReader;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

/// Daemon tuning.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Most jobs that may wait in the queue at once.
    pub queue_capacity: usize,
    /// Worker threads executing jobs.
    pub workers: usize,
    /// Socket read timeout — bounds how long a torn write can hold a
    /// connection thread (the request then fails with 408).
    pub read_timeout: Duration,
    /// `Retry-After` hint handed out with 429 responses.
    pub retry_after_secs: u32,
    /// Write-ahead job journal path (`--journal`): acknowledged jobs
    /// survive a crash and are replayed at the next boot. `None` (the
    /// default) keeps the daemon byte-identical to its pre-durability
    /// behavior.
    pub journal: Option<PathBuf>,
    /// Result-cache spill directory (`--cache-dir`): cached bodies
    /// persist across restarts, verified on load.
    pub cache_dir: Option<PathBuf>,
    /// Circuit-breaker tuning; `None` (the default) disables shedding.
    pub breaker: Option<BreakerConfig>,
    /// Cost-aware admission memory limit (`--mem-limit`): submissions
    /// are priced and admitted only while their estimates fit under the
    /// limit alongside in-flight reservations. `None` (the default)
    /// disables the ledger entirely.
    pub mem_limit: Option<u64>,
}

impl Default for ServerConfig {
    fn default() -> Self {
        Self {
            queue_capacity: 64,
            workers: 2,
            read_timeout: Duration::from_secs(5),
            retry_after_secs: 1,
            journal: None,
            cache_dir: None,
            breaker: None,
            mem_limit: None,
        }
    }
}

struct Inner {
    scheduler: Scheduler,
    telemetry: Arc<Telemetry>,
    cfg: ServerConfig,
    addr: SocketAddr,
    stop: AtomicBool,
    /// Set once a shutdown has been requested (endpoint or programmatic).
    signal: Mutex<bool>,
    signal_cv: Condvar,
    /// Open connection threads, drained before the scheduler stops.
    active: Mutex<usize>,
    active_cv: Condvar,
}

/// The running daemon.
pub struct Server {
    inner: Arc<Inner>,
    accept: Mutex<Option<std::thread::JoinHandle<()>>>,
    done: Mutex<bool>,
}

impl Server {
    /// Binds `addr` (use port 0 for an ephemeral port), spawns the
    /// scheduler workers and the accept loop, and returns the handle.
    /// Tracing is on (so `/jobs/<id>/trace` serves span trees); no log
    /// sink is attached. Use [`Server::bind_with_telemetry`] to choose.
    ///
    /// # Errors
    ///
    /// Propagates socket bind failures.
    pub fn bind(
        addr: &str,
        runner: Arc<dyn StudyRunner>,
        cfg: ServerConfig,
    ) -> std::io::Result<Self> {
        Self::bind_with_telemetry(
            addr,
            runner,
            cfg,
            Telemetry::new(TelemetryConfig {
                trace: true,
                log: None,
            }),
        )
    }

    /// [`Server::bind`] with an explicit telemetry hub (tracing choice,
    /// structured-log sink).
    ///
    /// # Errors
    ///
    /// Propagates socket bind failures, an unopenable/corrupt-header
    /// journal and an uncreatable cache directory — a daemon that cannot
    /// honor its durability configuration must not boot.
    pub fn bind_with_telemetry(
        addr: &str,
        runner: Arc<dyn StudyRunner>,
        cfg: ServerConfig,
        telemetry: Arc<Telemetry>,
    ) -> std::io::Result<Self> {
        let listener = TcpListener::bind(addr)?;
        let local = listener.local_addr()?;
        let cache = match &cfg.cache_dir {
            Some(dir) => ResultCache::with_dir(dir)?,
            None => ResultCache::new(),
        };
        let journal = match &cfg.journal {
            Some(path) => Some(Journal::open(path).map_err(std::io::Error::other)?),
            None => None,
        };
        let durability = Durability {
            journal,
            cache,
            breaker: cfg.breaker,
        };
        let inner = Arc::new(Inner {
            scheduler: Scheduler::with_durability(
                runner,
                SchedulerConfig {
                    queue_capacity: cfg.queue_capacity,
                    workers: cfg.workers,
                    retry_after_secs: cfg.retry_after_secs,
                    mem_limit: cfg.mem_limit,
                },
                Arc::clone(&telemetry),
                durability,
            ),
            telemetry,
            cfg,
            addr: local,
            stop: AtomicBool::new(false),
            signal: Mutex::new(false),
            signal_cv: Condvar::new(),
            active: Mutex::new(0),
            active_cv: Condvar::new(),
        });
        let accept_inner = Arc::clone(&inner);
        let accept = std::thread::Builder::new()
            .name("foldic-serve-accept".to_owned())
            .spawn(move || accept_loop(&listener, &accept_inner))?;
        Ok(Self {
            inner,
            accept: Mutex::new(Some(accept)),
            done: Mutex::new(false),
        })
    }

    /// The address the daemon actually bound (resolves port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.inner.addr
    }

    /// The scheduler (direct submissions in tests, stats probes).
    pub fn scheduler(&self) -> &Scheduler {
        &self.inner.scheduler
    }

    /// Blocks until a shutdown is requested (`POST /shutdown` or a
    /// concurrent [`Server::shutdown`] call), then drains and stops.
    pub fn wait_shutdown(&self) {
        let mut signalled = self.inner.signal.lock().unwrap_or_else(|e| e.into_inner());
        while !*signalled {
            signalled = self
                .inner
                .signal_cv
                .wait(signalled)
                .unwrap_or_else(|e| e.into_inner());
        }
        drop(signalled);
        self.shutdown();
    }

    /// Drains and stops: accept loop closed, open connections finished,
    /// scheduler drained, workers joined. Idempotent.
    pub fn shutdown(&self) {
        {
            let mut done = self.done.lock().unwrap_or_else(|e| e.into_inner());
            if *done {
                return;
            }
            *done = true;
        }
        self.inner.stop.store(true, Ordering::SeqCst);
        self.inner.signal_shutdown();
        // Wake the blocking accept() with a throwaway connection.
        let _ = TcpStream::connect(self.inner.addr);
        let handle = {
            let mut guard = self.accept.lock().unwrap_or_else(|e| e.into_inner());
            guard.take()
        };
        if let Some(handle) = handle {
            let _ = handle.join();
        }
        // Let in-flight connections write their responses.
        let mut active = self.inner.active.lock().unwrap_or_else(|e| e.into_inner());
        while *active > 0 {
            active = self
                .inner
                .active_cv
                .wait(active)
                .unwrap_or_else(|e| e.into_inner());
        }
        drop(active);
        self.inner.scheduler.shutdown();
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        self.shutdown();
    }
}

impl Inner {
    fn signal_shutdown(&self) {
        let mut signalled = self.signal.lock().unwrap_or_else(|e| e.into_inner());
        *signalled = true;
        self.signal_cv.notify_all();
    }
}

fn accept_loop(listener: &TcpListener, inner: &Arc<Inner>) {
    loop {
        let stream = match listener.accept() {
            Ok((stream, _)) => stream,
            Err(_) => {
                if inner.stop.load(Ordering::SeqCst) {
                    return;
                }
                continue;
            }
        };
        if inner.stop.load(Ordering::SeqCst) {
            return;
        }
        {
            let mut active = inner.active.lock().unwrap_or_else(|e| e.into_inner());
            *active += 1;
        }
        let conn_inner = Arc::clone(inner);
        let spawned = std::thread::Builder::new()
            .name("foldic-serve-conn".to_owned())
            .spawn(move || {
                handle_connection(stream, &conn_inner);
                let mut active = conn_inner.active.lock().unwrap_or_else(|e| e.into_inner());
                *active -= 1;
                conn_inner.active_cv.notify_all();
            });
        if spawned.is_err() {
            let mut active = inner.active.lock().unwrap_or_else(|e| e.into_inner());
            *active -= 1;
            inner.active_cv.notify_all();
        }
    }
}

/// Per-request context handed down the routing tree.
struct RequestCtx {
    /// The request id (client-supplied or allocated).
    request_id: String,
    /// The `http.request` span, when tracing is on.
    span: Option<SpanId>,
}

/// A well-formed client token: 1–64 chars of `[A-Za-z0-9._-]`. Shared
/// by `X-Request-Id` and `X-Idempotency-Key` validation.
fn well_formed_token(value: &str) -> bool {
    !value.is_empty()
        && value.len() <= 64
        && value
            .bytes()
            .all(|b| b.is_ascii_alphanumeric() || matches!(b, b'.' | b'_' | b'-'))
}

/// The request id for `request`: a well-formed `X-Request-Id` header is
/// honored, anything else replaced with a freshly allocated id.
fn request_id_for(request: &Request, telemetry: &Telemetry) -> String {
    if let Some(supplied) = request.header("x-request-id") {
        if well_formed_token(supplied) {
            return supplied.to_owned();
        }
    }
    telemetry.next_request_id()
}

fn handle_connection(stream: TcpStream, inner: &Arc<Inner>) {
    let _ = stream.set_read_timeout(Some(inner.cfg.read_timeout));
    let mut reader = BufReader::new(match stream.try_clone() {
        Ok(clone) => clone,
        Err(_) => return,
    });
    let mut stream = stream;
    let started = Instant::now();
    let telemetry = &inner.telemetry;
    let (mut response, endpoint, method, request_id) = match read_request(&mut reader) {
        Ok(request) => {
            let request_id = request_id_for(&request, telemetry);
            let endpoint = endpoint_class(&request.method, &request.path);
            // The request span roots the whole tree: queue wait, run and
            // flow/stage spans of a submitted job all nest beneath it.
            let span = if telemetry.trace_enabled() {
                SpanGuard::begin(
                    "http.request",
                    vec![
                        ("method", AttrValue::from(request.method.clone())),
                        ("path", AttrValue::from(request.path.clone())),
                        ("request_id", AttrValue::from(request_id.clone())),
                    ],
                )
            } else {
                SpanGuard::disabled()
            };
            let ctx = RequestCtx {
                request_id: request_id.clone(),
                span: span.id(),
            };
            let response = route(&request, inner, &ctx);
            drop(span);
            (response, endpoint, request.method.clone(), request_id)
        }
        Err(HttpError::Closed) => return,
        Err(e) => (
            Response::error(e.status(), e.message()),
            "invalid",
            "-".to_owned(),
            telemetry.next_request_id(),
        ),
    };
    if response.status >= 400 {
        response = response.with_request_id(&request_id);
    }
    let response = response.with_header("X-Request-Id", request_id.clone());
    let latency_ms = started.elapsed().as_secs_f64() * 1e3;
    telemetry.record_request(endpoint, &method, response.status, latency_ms, &request_id);
    let _ = response.write_to(&mut stream);
}

/// Dispatches one parsed request to its handler.
fn route(request: &Request, inner: &Arc<Inner>, ctx: &RequestCtx) -> Response {
    let path = request.path.as_str();
    let method = request.method.as_str();
    match (method, path) {
        ("GET", "/healthz") => Response::json(
            200,
            &Json::obj([
                ("ok".to_owned(), Json::Bool(true)),
                (
                    "profile".to_owned(),
                    Json::Str(
                        if cfg!(debug_assertions) {
                            "debug"
                        } else {
                            "release"
                        }
                        .to_owned(),
                    ),
                ),
                (
                    "schema".to_owned(),
                    Json::Str("foldic-serve-health/1".to_owned()),
                ),
                (
                    "uptime_seconds".to_owned(),
                    Json::Num(inner.telemetry.uptime_secs() as f64),
                ),
                (
                    "version".to_owned(),
                    Json::Str(env!("CARGO_PKG_VERSION").to_owned()),
                ),
            ]),
        ),
        ("GET", "/stats") => Response::json(200, &inner.scheduler.stats_json()),
        ("GET", "/metrics") => Response {
            status: 200,
            headers: Vec::new(),
            body: inner.scheduler.metrics_text().into_bytes(),
            content_type: "text/plain; version=0.0.4",
        },
        ("POST", "/jobs") => submit(request, inner, ctx),
        ("POST", "/shutdown") => {
            inner.signal_shutdown();
            Response::json(
                200,
                &Json::obj([
                    ("ok".to_owned(), Json::Bool(true)),
                    ("draining".to_owned(), Json::Bool(true)),
                ]),
            )
        }
        (_, "/healthz" | "/stats" | "/metrics" | "/jobs" | "/shutdown") => {
            Response::error(405, &format!("method {method} not allowed on {path}"))
        }
        _ => {
            if let Some(rest) = path.strip_prefix("/jobs/") {
                return job_route(method, rest, inner);
            }
            if let Some(key) = path.strip_prefix("/cache/") {
                if method != "GET" {
                    return Response::error(405, "cache entries are read-only");
                }
                return match inner.scheduler.cache().provenance_json(key) {
                    Some(doc) => Response::json(200, &doc),
                    None => Response::error(404, &format!("no cache entry `{key}`")),
                };
            }
            Response::error(404, &format!("no route for {path}"))
        }
    }
}

/// `POST /jobs`: parse, validate, submit, map the outcome to a response.
fn submit(request: &Request, inner: &Arc<Inner>, ctx: &RequestCtx) -> Response {
    let text = match std::str::from_utf8(&request.body) {
        Ok(text) => text,
        Err(_) => return Response::error(400, "body is not UTF-8"),
    };
    let json = match Json::parse(text) {
        Ok(json) => json,
        Err(e) => return Response::error(400, &format!("body is not valid JSON: {e}")),
    };
    let spec = match JobSpec::from_json(&json) {
        Ok(spec) => spec,
        Err(msg) => return Response::error(400, &msg),
    };
    // A malformed idempotency key is a client bug worth surfacing — a
    // silently dropped key would quietly re-enable double enqueues.
    let idempotency_key = match request.header("x-idempotency-key") {
        Some(supplied) if well_formed_token(supplied) => Some(supplied.to_owned()),
        Some(_) => {
            return Response::error(
                400,
                "x-idempotency-key must be 1-64 chars of [A-Za-z0-9._-]",
            )
        }
        None => None,
    };
    let submit_ctx = SubmitCtx {
        request_id: ctx.request_id.clone(),
        parent_span: ctx.span,
        idempotency_key,
    };
    match inner.scheduler.submit_traced(spec, Some(submit_ctx)) {
        Submission::Hit { id } => Response::json(
            200,
            &Json::obj([
                ("job".to_owned(), Json::Num(id as f64)),
                ("state".to_owned(), Json::Str("done".to_owned())),
                ("cache".to_owned(), Json::Str("hit".to_owned())),
            ]),
        ),
        Submission::Queued { id } => Response::json(
            202,
            &Json::obj([
                ("job".to_owned(), Json::Num(id as f64)),
                ("state".to_owned(), Json::Str("queued".to_owned())),
                ("cache".to_owned(), Json::Str("miss".to_owned())),
            ]),
        ),
        Submission::Duplicate { id } => {
            // The earlier acceptance already answered this logical
            // request: point the client at that job.
            let state = inner
                .scheduler
                .status(id)
                .map_or(JobState::Queued, |s| s.state);
            Response::json(
                200,
                &Json::obj([
                    ("idempotent_replay".to_owned(), Json::Bool(true)),
                    ("job".to_owned(), Json::Num(id as f64)),
                    ("state".to_owned(), Json::Str(state.as_str().to_owned())),
                ]),
            )
        }
        Submission::Rejected { retry_after_secs } => {
            Response::error(429, "queue full; retry later")
                .with_header("Retry-After", retry_after_secs.to_string())
        }
        Submission::Shed { retry_after_secs } => {
            Response::error(503, "service unhealthy; retry later")
                .with_header("Retry-After", retry_after_secs.to_string())
        }
        Submission::Draining => Response::error(503, "daemon is draining"),
        Submission::Invalid(msg) => Response::error(400, &msg),
    }
}

/// `/jobs/<id>`, `/jobs/<id>/result`, `/jobs/<id>/trace`,
/// `/jobs/<id>/cancel`.
fn job_route(method: &str, rest: &str, inner: &Arc<Inner>) -> Response {
    let (id_text, tail) = match rest.split_once('/') {
        Some((id, tail)) => (id, Some(tail)),
        None => (rest, None),
    };
    let Ok(id) = id_text.parse::<u64>() else {
        return Response::error(400, &format!("bad job id `{id_text}`"));
    };
    match (method, tail) {
        ("GET", None) => match inner.scheduler.status(id) {
            Some(status) => Response::json(200, &status.to_json()),
            None => Response::error(404, &format!("no job {id}")),
        },
        ("GET", Some("result")) => match inner.scheduler.status(id) {
            None => Response::error(404, &format!("no job {id}")),
            Some(status) => match status.state {
                JobState::Done => match status.body {
                    Some(body) => Response::json_text(200, &body),
                    None => Response::error(500, "done job has no body"),
                },
                JobState::Failed => {
                    Response::error(500, status.error.as_deref().unwrap_or("job failed"))
                }
                state => Response::error(409, &format!("job {id} is {}, not done", state.as_str())),
            },
        },
        ("GET", Some("trace")) => {
            if inner.scheduler.status(id).is_none() {
                return Response::error(404, &format!("no job {id}"));
            }
            match inner.telemetry.job_trace_json(id) {
                Some(doc) => Response::json_text(200, &doc),
                None => Response::error(404, &format!("no trace recorded for job {id}")),
            }
        }
        ("POST", Some("cancel")) => match inner.scheduler.cancel(id) {
            Some(state) => Response::json(
                200,
                &Json::obj([
                    ("job".to_owned(), Json::Num(id as f64)),
                    ("state".to_owned(), Json::Str(state.as_str().to_owned())),
                ]),
            ),
            None => Response::error(404, &format!("no job {id}")),
        },
        _ => Response::error(405, &format!("no {method} on /jobs/{rest}")),
    }
}
