//! Admission-time memory cost model: `estimate_cost(spec) → bytes`.
//!
//! The scheduler's reservation ledger admits a job only when this
//! estimate fits under `--mem-limit` alongside the reservations of every
//! in-flight job, so the model is deliberately **conservative**: it
//! charges a fixed harness base, a per-size design-generation term, and
//! a per-experiment working-set term, each calibrated against the peak
//! net-allocation figures the `foldic-fault` resource layer reports for
//! real runs (`repro … --mem-budget … --manifest` → `resources` section)
//! with roughly 2× headroom. Over-estimation costs a little admission
//! throughput; under-estimation would let the ledger over-commit the
//! limit, which is the one thing it exists to prevent.
//!
//! The estimate is a pure, deterministic function of the spec's `size`,
//! its (deduplicated) experiment list and, when advertised, its
//! `design_cells` — snapshot-backed designs can be far larger than the
//! size label suggests, so the cell count raises (never lowers) both
//! design and per-experiment terms. `seed`, `threads` and
//! `deadline_secs` deliberately do not participate: the seed does not
//! change working-set shape, intra-job threads share the same arenas,
//! and deadlines bound time, not space.

use crate::job::JobSpec;

/// Fixed per-job harness overhead (manifest assembly, job bookkeeping).
const BASE_BYTES: u64 = 1 << 20;

/// Per-size cost terms: (design generation, per-experiment working set).
/// Calibrated from measured peak **net** allocations (the same quantity
/// the resource layer budgets — blocks free as they finish, so net peaks
/// sit far below RSS): a `tiny` `table2` job peaks around 0.8 MiB net
/// and a `small` one around 2.3 MiB; `full` extrapolates the
/// cluster-size scaling with extra margin.
fn size_terms(size: &str) -> Result<(u64, u64), String> {
    match size {
        "tiny" => Ok((1 << 20, 2 << 20)),
        "small" => Ok((2 << 20, 4 << 20)),
        "full" => Ok((8 << 20, 32 << 20)),
        other => Err(format!("unknown size `{other}` (full|small|tiny)")),
    }
}

/// Estimated peak memory, in bytes, a job for `spec` needs. See the
/// module docs for the model and its calibration.
///
/// # Errors
///
/// A message naming the first unpriceable field (unknown size, empty or
/// oversized experiment list). Specs that passed [`JobSpec::from_json`]
/// and the runner's `resolve` never hit the list errors; they exist so
/// arbitrary specs get a typed rejection instead of a panic.
pub fn estimate_cost(spec: &JobSpec) -> Result<u64, String> {
    let (mut design, mut per_experiment) = size_terms(&spec.size)?;
    if let Some(cells) = spec.design_cells {
        // Snapshot-backed or otherwise non-standard designs advertise
        // their cell count; the terms scale linearly with it (≈60 B/cell
        // in the interned database, priced at 256/64 B for the usual 2×+
        // conservatism) and never price *below* the size label. Beyond
        // 2^32 cells no machine this daemon runs on could hold the job:
        // reject it typed instead of quoting a number that would wedge
        // the ledger at u64::MAX.
        if cells > 1 << 32 {
            return Err(format!("cannot price {cells} cells (max 2^32)"));
        }
        design = design.max(cells.saturating_mul(256));
        per_experiment = per_experiment.max(cells.saturating_mul(64));
    }
    if spec.experiments.is_empty() {
        return Err("cannot price an empty experiment list".to_owned());
    }
    if spec.experiments.len() > 1024 {
        return Err(format!(
            "cannot price {} experiments (max 1024)",
            spec.experiments.len()
        ));
    }
    // Experiments run sequentially on one design, so the dominant term
    // is the widest single working set, not the sum — but each extra
    // experiment retains its report and metrics, so distinct names are
    // charged a small multiple of the per-experiment term anyway (the
    // conservative direction).
    let mut distinct: Vec<&str> = spec.experiments.iter().map(String::as_str).collect();
    distinct.sort_unstable();
    distinct.dedup();
    let n = distinct.len() as u64;
    Ok(BASE_BYTES
        .saturating_add(design)
        .saturating_add(per_experiment.saturating_mul(1 + n / 2)))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec(names: &[&str], size: &str) -> JobSpec {
        JobSpec {
            experiments: names.iter().map(|s| (*s).to_owned()).collect(),
            size: size.to_owned(),
            ..JobSpec::default()
        }
    }

    #[test]
    fn estimates_are_deterministic_and_order_insensitive() {
        let a = estimate_cost(&spec(&["table2", "fig2"], "tiny")).unwrap();
        let b = estimate_cost(&spec(&["fig2", "table2", "fig2"], "tiny")).unwrap();
        assert_eq!(a, b, "dedup + sort make the estimate order-insensitive");
    }

    #[test]
    fn estimates_grow_with_size_and_experiment_count() {
        let tiny = estimate_cost(&spec(&["table2"], "tiny")).unwrap();
        let small = estimate_cost(&spec(&["table2"], "small")).unwrap();
        let full = estimate_cost(&spec(&["table2"], "full")).unwrap();
        assert!(tiny < small && small < full);
        let many = estimate_cost(&spec(&["table2", "fig2", "fig3", "fig5"], "tiny")).unwrap();
        assert!(many > tiny);
    }

    #[test]
    fn tiny_estimate_covers_measured_peak_with_headroom() {
        // Measured: a tiny table2 job peaks around 0.8 MiB net. The
        // estimate must stay comfortably above it (the ledger must never
        // over-commit) but within one order of magnitude (or admission
        // throughput suffers for nothing).
        let est = estimate_cost(&spec(&["table2"], "tiny")).unwrap();
        let measured = 800 << 10;
        assert!(est >= 2 * measured, "estimate {est} lacks headroom");
        assert!(est <= 32 * measured, "estimate {est} is absurdly padded");
    }

    #[test]
    fn junk_specs_get_typed_errors_not_panics() {
        assert!(estimate_cost(&spec(&["table2"], "huge"))
            .unwrap_err()
            .contains("unknown size"));
        assert!(estimate_cost(&spec(&[], "tiny"))
            .unwrap_err()
            .contains("empty"));
        let many: Vec<String> = (0..2000).map(|i| format!("e{i}")).collect();
        let s = JobSpec {
            experiments: many,
            size: "tiny".to_owned(),
            ..JobSpec::default()
        };
        assert!(estimate_cost(&s).unwrap_err().contains("max 1024"));
    }

    #[test]
    fn design_cells_raises_terms_but_never_lowers_them() {
        let base = estimate_cost(&spec(&["table2"], "tiny")).unwrap();
        // Tiny advertised designs fall below the size-label floor and
        // change nothing.
        let mut small_cells = spec(&["table2"], "tiny");
        small_cells.design_cells = Some(100);
        assert_eq!(estimate_cost(&small_cells).unwrap(), base);
        // A million-cell snapshot must be priced off its cell count, not
        // the label: at least the 256 B/cell design term.
        let mut big = spec(&["table2"], "tiny");
        big.design_cells = Some(1_000_000);
        let est = estimate_cost(&big).unwrap();
        assert!(est > base, "cells must raise the estimate");
        assert!(est >= 1_000_000 * 256, "design term under-priced: {est}");
        // Beyond 2^32 cells the spec is unpriceable, not astronomically
        // priced.
        let mut absurd = spec(&["table2"], "tiny");
        absurd.design_cells = Some((1 << 32) + 1);
        assert!(estimate_cost(&absurd).unwrap_err().contains("max 2^32"));
        let mut boundary = spec(&["table2"], "tiny");
        boundary.design_cells = Some(1 << 32);
        assert!(estimate_cost(&boundary).is_ok());
    }
}
