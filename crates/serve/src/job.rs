//! The job-submission JSON schema and the content-address of a study.
//!
//! A submitted job names *what* to compute (experiments, design size, an
//! optional seed override) and *how* (worker threads inside the job, an
//! optional wall-clock deadline). The **identity** of a study for caching
//! purposes is its canonical manifest config — the same
//! `BTreeMap<String, String>` that lands in the `config` section of a
//! `foldic-run-manifest/1` and that `repro compare` gates on — digested
//! with the same FNV-1a the manifests use for result digests. `threads`
//! deliberately does not participate: the workspace determinism contract
//! makes output byte-identical across thread counts, so the thread count
//! is an execution detail, not an identity. `deadline_secs` *does*
//! participate in the config (like `repro --deadline` records it), but
//! deadline-bounded jobs are never cached at all — their results depend
//! on wall-clock behavior, not only on the config (see `DESIGN.md` §10).

use foldic_obs::json::Json;
use std::collections::BTreeMap;

/// Schema identifier accepted in submissions (optional `schema` field).
pub const SUBMIT_SCHEMA: &str = "foldic-serve-job/1";

/// A validated job submission.
#[derive(Debug, Clone, PartialEq)]
pub struct JobSpec {
    /// Experiment names to run (validated by the runner; e.g. `table1`).
    pub experiments: Vec<String>,
    /// Design size: `full`, `small` or `tiny` (validated by the runner).
    pub size: String,
    /// Generation-seed override; `None` keeps the study default.
    pub seed: Option<u64>,
    /// Worker threads used *inside* the job (output-invariant).
    pub threads: usize,
    /// Optional wall-clock budget for the job; such jobs ride the
    /// process-global deadline layer and are scheduled exclusively.
    pub deadline_secs: Option<f64>,
    /// Advertised design size in cells, for snapshot-backed or otherwise
    /// non-standard designs whose footprint the `size` label alone
    /// cannot price. Only the admission cost model reads it — it does
    /// not participate in the cache identity, because the design content
    /// is already pinned by the config the runner builds.
    pub design_cells: Option<u64>,
}

impl Default for JobSpec {
    fn default() -> Self {
        Self {
            experiments: Vec::new(),
            size: String::new(),
            seed: None,
            threads: 1,
            deadline_secs: None,
            design_cells: None,
        }
    }
}

impl JobSpec {
    /// Parses and strictly validates a submission document. Unknown
    /// fields are rejected so client typos surface as 400s instead of
    /// silently running the wrong study.
    ///
    /// # Errors
    ///
    /// A human-readable message describing the first schema violation;
    /// the server maps it to a 400 response.
    pub fn from_json(json: &Json) -> Result<Self, String> {
        let obj = json.as_obj().ok_or("submission must be a JSON object")?;
        const KNOWN: [&str; 7] = [
            "schema",
            "experiments",
            "size",
            "seed",
            "threads",
            "deadline_secs",
            "design_cells",
        ];
        for key in obj.keys() {
            if !KNOWN.contains(&key.as_str()) {
                return Err(format!("unknown field `{key}`"));
            }
        }
        if let Some(schema) = obj.get("schema") {
            match schema.as_str() {
                Some(SUBMIT_SCHEMA) => {}
                Some(other) => return Err(format!("unsupported schema `{other}`")),
                None => return Err("`schema` must be a string".to_owned()),
            }
        }

        let mut spec = JobSpec::default();
        let experiments = obj
            .get("experiments")
            .ok_or("missing `experiments`")?
            .as_arr()
            .ok_or("`experiments` must be an array of strings")?;
        if experiments.is_empty() {
            return Err("`experiments` must not be empty".to_owned());
        }
        for e in experiments {
            let name = e.as_str().ok_or("`experiments` must contain strings")?;
            if name.is_empty() || name.len() > 64 {
                return Err(format!("bad experiment name `{name}`"));
            }
            spec.experiments.push(name.to_owned());
        }

        let size = obj
            .get("size")
            .ok_or("missing `size`")?
            .as_str()
            .ok_or("`size` must be a string")?;
        if size.is_empty() || size.len() > 16 {
            return Err(format!("bad size `{size}`"));
        }
        spec.size = size.to_owned();

        if let Some(seed) = obj.get("seed") {
            let v = seed.as_f64().ok_or("`seed` must be a number")?;
            // Json stores numbers as f64; only integers that survive the
            // round trip exactly are acceptable seeds.
            if !(v.is_finite() && v >= 0.0 && v.fract() == 0.0 && v <= 2f64.powi(53)) {
                return Err(format!("`seed` must be an integer in [0, 2^53], got {v}"));
            }
            spec.seed = Some(v as u64);
        }

        if let Some(threads) = obj.get("threads") {
            let v = threads.as_f64().ok_or("`threads` must be a number")?;
            if !(v.is_finite() && v.fract() == 0.0 && (1.0..=64.0).contains(&v)) {
                return Err(format!("`threads` must be an integer in [1, 64], got {v}"));
            }
            spec.threads = v as usize;
        }

        if let Some(deadline) = obj.get("deadline_secs") {
            let v = deadline
                .as_f64()
                .ok_or("`deadline_secs` must be a number")?;
            if !(v.is_finite() && v > 0.0) {
                return Err(format!("`deadline_secs` must be positive, got {v}"));
            }
            spec.deadline_secs = Some(v);
        }

        if let Some(cells) = obj.get("design_cells") {
            let v = cells.as_f64().ok_or("`design_cells` must be a number")?;
            if !(v.is_finite() && v >= 1.0 && v.fract() == 0.0 && v <= 2f64.powi(53)) {
                return Err(format!(
                    "`design_cells` must be an integer in [1, 2^53], got {v}"
                ));
            }
            spec.design_cells = Some(v as u64);
        }
        Ok(spec)
    }

    /// Serializes the spec back to the submission schema (used by the
    /// load generator and tests).
    pub fn to_json(&self) -> Json {
        let mut fields = vec![
            ("schema".to_owned(), Json::Str(SUBMIT_SCHEMA.to_owned())),
            (
                "experiments".to_owned(),
                Json::Arr(
                    self.experiments
                        .iter()
                        .map(|e| Json::Str(e.clone()))
                        .collect(),
                ),
            ),
            ("size".to_owned(), Json::Str(self.size.clone())),
            ("threads".to_owned(), Json::Num(self.threads as f64)),
        ];
        if let Some(seed) = self.seed {
            fields.push(("seed".to_owned(), Json::Num(seed as f64)));
        }
        if let Some(deadline) = self.deadline_secs {
            fields.push(("deadline_secs".to_owned(), Json::Num(deadline)));
        }
        if let Some(cells) = self.design_cells {
            fields.push(("design_cells".to_owned(), Json::Num(cells as f64)));
        }
        Json::obj(fields)
    }

    /// `true` when the job's result is a pure function of its canonical
    /// config and may live in the content-addressed cache. Deadline-
    /// bounded jobs are excluded: what they manage to finish depends on
    /// wall-clock scheduling, not only on the config.
    pub fn cacheable(&self) -> bool {
        self.deadline_secs.is_none()
    }
}

/// Content-address of a study: the FNV-1a 64 digest (same function and
/// `fnv64:<16 hex>` format as manifest result digests) of the canonical
/// config map serialized as compact JSON. The map is a `BTreeMap`, so
/// serialization — and therefore the key — is deterministic.
pub fn cache_key(config: &BTreeMap<String, String>) -> String {
    let doc = Json::Obj(
        config
            .iter()
            .map(|(k, v)| (k.clone(), Json::Str(v.clone())))
            .collect(),
    );
    foldic_obs::manifest::digest_report(&doc.to_compact())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(text: &str) -> Result<JobSpec, String> {
        JobSpec::from_json(&Json::parse(text).map_err(|e| e.to_string())?)
    }

    #[test]
    fn minimal_submission_parses_with_defaults() {
        let spec = parse(r#"{"experiments": ["table1"], "size": "tiny"}"#).unwrap();
        assert_eq!(spec.experiments, ["table1"]);
        assert_eq!(spec.size, "tiny");
        assert_eq!(spec.threads, 1);
        assert_eq!(spec.seed, None);
        assert!(spec.cacheable());
    }

    #[test]
    fn full_submission_round_trips() {
        let spec = JobSpec {
            experiments: vec!["table1".into(), "fig2".into()],
            size: "small".into(),
            seed: Some(12345),
            threads: 4,
            deadline_secs: Some(2.5),
            design_cells: Some(1_000_000),
        };
        let back = JobSpec::from_json(&spec.to_json()).unwrap();
        assert_eq!(back, spec);
        assert!(!back.cacheable(), "deadline jobs are not cacheable");
    }

    #[test]
    fn schema_violations_are_typed_errors() {
        for (text, needle) in [
            (r#"[1,2]"#, "object"),
            (r#"{"size": "tiny"}"#, "experiments"),
            (r#"{"experiments": [], "size": "tiny"}"#, "empty"),
            (
                r#"{"experiments": ["t"], "size": "tiny", "bogus": 1}"#,
                "unknown field",
            ),
            (r#"{"experiments": [1], "size": "tiny"}"#, "strings"),
            (r#"{"experiments": ["t"]}"#, "size"),
            (
                r#"{"experiments": ["t"], "size": "tiny", "seed": -1}"#,
                "seed",
            ),
            (
                r#"{"experiments": ["t"], "size": "tiny", "seed": 1.5}"#,
                "seed",
            ),
            (
                r#"{"experiments": ["t"], "size": "tiny", "threads": 0}"#,
                "threads",
            ),
            (
                r#"{"experiments": ["t"], "size": "tiny", "deadline_secs": 0}"#,
                "deadline",
            ),
            (
                r#"{"experiments": ["t"], "size": "tiny", "schema": "bogus/9"}"#,
                "schema",
            ),
            (
                r#"{"experiments": ["t"], "size": "tiny", "design_cells": 0}"#,
                "design_cells",
            ),
            (
                r#"{"experiments": ["t"], "size": "tiny", "design_cells": 2.5}"#,
                "design_cells",
            ),
        ] {
            let err = parse(text).unwrap_err();
            assert!(
                err.to_lowercase().contains(needle),
                "{text}: {err} (wanted `{needle}`)"
            );
        }
    }

    #[test]
    fn cache_key_is_deterministic_and_config_sensitive() {
        let mut config = BTreeMap::new();
        config.insert("experiments".to_owned(), "table1".to_owned());
        config.insert("size".to_owned(), "tiny".to_owned());
        config.insert("seed".to_owned(), "0xdac2014".to_owned());
        let k1 = cache_key(&config);
        assert!(k1.starts_with("fnv64:") && k1.len() == 6 + 16, "{k1}");
        assert_eq!(k1, cache_key(&config.clone()));
        // any one-field delta moves the key
        let mut delta = config.clone();
        delta.insert("size".to_owned(), "small".to_owned());
        assert_ne!(k1, cache_key(&delta));
        let mut delta = config;
        delta.insert("seed".to_owned(), "0xdac2015".to_owned());
        assert_ne!(k1, cache_key(&delta));
    }
}
