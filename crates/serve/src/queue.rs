//! Bounded FIFO job queue, admission control and the worker pool.
//!
//! The scheduler is deliberately boring: strict FIFO dispatch from a
//! bounded queue, a fixed worker pool, and four hard rules.
//!
//! 1. **Admission**: a submission that finds the queue full is rejected
//!    immediately with a `Retry-After` hint (the server turns it into a
//!    429). Nothing ever blocks a client on a full queue.
//! 2. **Cache first**: a cacheable submission whose content address is
//!    already stored completes instantly — the job record is born `done`
//!    with the cached, byte-identical body, and no worker is involved.
//! 3. **Cancel-before-start is absolute**: a queued job that is
//!    cancelled never reaches a worker; the runner never sees its spec.
//!    Cancelling a running job does not interrupt it (runs are the
//!    expensive thing being served; interruption is the deadline layer's
//!    job) — the cancel call just reports the current state.
//! 4. **Deadline jobs run exclusively**: the `foldic-fault` deadline
//!    layer is process-global, so a deadline-bounded job must not share
//!    the process with other running jobs (they would observe its stage
//!    budgets). FIFO order is kept: when a deadline job reaches the head
//!    of the queue, dispatch waits for running jobs to drain, runs it
//!    alone, then resumes normal concurrency. No starvation in either
//!    direction, because the head of the queue always dispatches next.
//!
//! Shutdown drains: in-flight jobs run to completion, still-queued jobs
//! are cancelled, workers are joined. The property tests in
//! `tests/queue_props.rs` pin all four rules plus drain-without-deadlock.
//!
//! The scheduler is telemetry-aware ([`Scheduler::with_telemetry`]): a
//! traced submission carries its request's `http.request` span, dispatch
//! synthesizes a `queue.wait` span covering the time in queue, the run
//! executes under a `job.run` span (so the flow/stage spans the study
//! runner opens nest beneath it), workers drain the per-thread flight
//! recorder into degraded jobs' status payloads, and every transition
//! writes a structured log line.
//!
//! # Durability & supervision
//!
//! [`Scheduler::with_durability`] layers crash safety on top
//! (`DESIGN.md` §12), all strictly pay-for-use — a scheduler built
//! without it behaves byte-identically to one from before the layer
//! existed:
//!
//! * **Write-ahead journal** — every admission appends an fsync'd
//!   `accepted` record *before* the submission call returns, so an
//!   acknowledged job survives SIGKILL; terminal transitions are
//!   journaled too, and on construction the journal's [`Replay`] seeds
//!   the job table: terminal jobs are restored (with bodies from the
//!   journal or the persistent cache) and non-terminal jobs are
//!   re-enqueued with `attempt+1`. Lifetime counters (`submitted`,
//!   `completed`, `failed`, `cancelled`, cache insertions) are restored
//!   so `/stats` and `/metrics` report true totals after a restart;
//!   `rejected`, `shed` and cache hit/miss counters remain
//!   process-local by design. A failed journal write sheds the
//!   submission (503) — the daemon never acknowledges what it cannot
//!   re-prove.
//! * **Poison ledger** — a spec digest whose runs panic twice is
//!   quarantined: its queued jobs fail at dispatch with a `poisoned:`
//!   error instead of crash-looping the pool. Always on (it only
//!   engages after a panic, which the pre-durability scheduler already
//!   surfaced as a failed job).
//! * **Circuit breaker** — optional: consecutive worker panics trip it,
//!   admissions are shed (503 + `Retry-After`) while open, and a single
//!   half-open probe decides recovery.
//! * **Worker supervision** — each worker thread runs under a
//!   supervisor that catches a panic of the *loop itself* (runner panics
//!   are caught per-job inside), repairs the scheduler state (the
//!   orphaned job fails, counters rebalance) and restarts the worker.
//! * **Idempotency keys** — a submission carrying an idempotency key
//!   that matches an accepted job returns that job instead of
//!   double-enqueuing; the key→job map is journaled and survives
//!   restart, so a client retry after a lost ack is safe.

use crate::cache::ResultCache;
use crate::job::{cache_key, JobSpec};
use crate::journal::{Journal, Record as JournalRecord, Replay};
use crate::telemetry::{self, field_num, field_str, Telemetry};
use foldic_fault::supervise::{Admission, BreakerConfig, CircuitBreaker, PoisonLedger};
use foldic_obs::json::Json;
use foldic_obs::log::Level;
use foldic_obs::metrics::Metric;
use foldic_obs::trace::{self, AttrValue, EventKind, SpanId};
use foldic_obs::{flight, span};
use std::collections::{BTreeMap, HashMap, VecDeque};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::{Arc, Condvar, Mutex, MutexGuard};
use std::time::{Duration, Instant};

/// Executes studies for the scheduler. Implementations live outside this
/// crate (the real one, in `foldic-bench`, runs paper experiments and
/// returns manifest text) so the serving layer stays flow-free.
pub trait StudyRunner: Send + Sync {
    /// Validates a spec and returns its canonical manifest config — the
    /// cache identity. Must be cheap and side-effect free; called at
    /// submission time.
    ///
    /// # Errors
    ///
    /// A message describing why the spec is not servable (mapped to 400).
    fn resolve(&self, spec: &JobSpec) -> Result<BTreeMap<String, String>, String>;

    /// Runs the study to completion and returns the serialized manifest
    /// body. Deterministic for cacheable specs: the same spec must
    /// produce byte-identical output on every call.
    ///
    /// # Errors
    ///
    /// A message describing the failure (the job lands in `failed`).
    fn run(&self, spec: &JobSpec) -> Result<String, String>;

    /// [`StudyRunner::run`] under a per-job memory budget, for jobs the
    /// cost-aware admission layer classified oversized. Implementations
    /// that honor the budget install a `foldic-fault` resource policy
    /// around the run so breaches degrade gracefully instead of taking
    /// the worker's address space; the default ignores the budget, which
    /// keeps budget-less runners byte-identical to their old behavior.
    ///
    /// # Errors
    ///
    /// Same contract as [`StudyRunner::run`].
    fn run_budgeted(&self, spec: &JobSpec, mem_budget: Option<u64>) -> Result<String, String> {
        let _ = mem_budget;
        self.run(spec)
    }
}

/// Lifecycle of one job.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum JobState {
    /// Waiting in the FIFO queue.
    Queued,
    /// Executing on a worker.
    Running,
    /// Finished with a result body.
    Done,
    /// Finished with an error.
    Failed,
    /// Cancelled before a worker picked it up.
    Cancelled,
}

impl JobState {
    /// Stable lower-case name used in the HTTP API.
    pub fn as_str(self) -> &'static str {
        match self {
            JobState::Queued => "queued",
            JobState::Running => "running",
            JobState::Done => "done",
            JobState::Failed => "failed",
            JobState::Cancelled => "cancelled",
        }
    }

    /// `true` once the job can no longer change state.
    pub fn is_terminal(self) -> bool {
        matches!(
            self,
            JobState::Done | JobState::Failed | JobState::Cancelled
        )
    }
}

/// Outcome of a submission attempt.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Submission {
    /// Served from the content-addressed cache; the job is already done.
    Hit {
        /// Id of the (already terminal) job record.
        id: u64,
    },
    /// Admitted to the queue.
    Queued {
        /// Id of the queued job.
        id: u64,
    },
    /// Queue full — retry after the hinted number of seconds (429).
    Rejected {
        /// `Retry-After` hint in seconds.
        retry_after_secs: u32,
    },
    /// Load shed — the circuit breaker is open or the journal refused
    /// the acceptance record (503 + `Retry-After`).
    Shed {
        /// `Retry-After` hint in seconds.
        retry_after_secs: u32,
    },
    /// The submission's idempotency key matches an already-accepted job:
    /// that job is returned instead of enqueuing a duplicate (200).
    Duplicate {
        /// Id of the previously accepted job.
        id: u64,
    },
    /// The scheduler is shutting down (503).
    Draining,
    /// The spec failed validation (400).
    Invalid(String),
}

/// Snapshot of one job for the status endpoint.
#[derive(Debug, Clone, PartialEq)]
pub struct JobStatus {
    /// Job id.
    pub id: u64,
    /// Current state.
    pub state: JobState,
    /// Attempt count: 1 on first acceptance, bumped by journal-replay
    /// re-enqueues after a crash.
    pub attempt: u32,
    /// Whether the result came from the cache.
    pub cache_hit: bool,
    /// Content address of the study (cacheable jobs only).
    pub cache_key: Option<String>,
    /// Canonical config the job resolved to.
    pub config: BTreeMap<String, String>,
    /// Failure message, for `failed` jobs.
    pub error: Option<String>,
    /// Result body, for `done` jobs.
    pub body: Option<Arc<str>>,
    /// Flight-recorder dump (array of record objects, possibly ending in
    /// a truncation marker) — attached when the worker's ring was
    /// non-empty after the run, i.e. the job degraded, faulted or timed
    /// out.
    pub flight: Option<Json>,
}

impl JobStatus {
    /// The status document returned by `GET /jobs/<id>`. `attempt`
    /// appears only past 1 (i.e. only for crash-recovered jobs), keeping
    /// the durability-free document byte-identical to earlier versions.
    pub fn to_json(&self) -> Json {
        let mut fields = vec![
            ("job".to_owned(), Json::Num(self.id as f64)),
            (
                "state".to_owned(),
                Json::Str(self.state.as_str().to_owned()),
            ),
            (
                "cache".to_owned(),
                Json::Str(if self.cache_hit { "hit" } else { "miss" }.to_owned()),
            ),
            (
                "config".to_owned(),
                Json::Obj(
                    self.config
                        .iter()
                        .map(|(k, v)| (k.clone(), Json::Str(v.clone())))
                        .collect(),
                ),
            ),
        ];
        if self.attempt > 1 {
            fields.push(("attempt".to_owned(), Json::Num(f64::from(self.attempt))));
        }
        if let Some(key) = &self.cache_key {
            fields.push(("cache_key".to_owned(), Json::Str(key.clone())));
        }
        if let Some(error) = &self.error {
            fields.push(("error".to_owned(), Json::Str(error.clone())));
        }
        if let Some(flight) = &self.flight {
            fields.push(("flight_recorder".to_owned(), flight.clone()));
        }
        Json::obj(fields)
    }
}

/// Tracing/logging context a traced submission hands to the scheduler.
#[derive(Debug, Clone)]
pub struct SubmitCtx {
    /// The originating request's id (echoed into job log lines).
    pub request_id: String,
    /// The request's `http.request` span — the root the job's
    /// `queue.wait`/`job.run` spans nest under.
    pub parent_span: Option<SpanId>,
    /// Client idempotency key (`X-Idempotency-Key`): a submission whose
    /// key matches an accepted job returns [`Submission::Duplicate`].
    pub idempotency_key: Option<String>,
}

struct Job {
    spec: JobSpec,
    status: JobStatus,
    exclusive: bool,
    /// Bytes this job holds in the reservation ledger; zero once
    /// released (release is idempotent via `State::release_reservation`).
    reservation: u64,
    /// Per-job memory budget for oversized admissions, handed to
    /// [`StudyRunner::run_budgeted`].
    mem_budget: Option<u64>,
    /// Spec digest ([`cache_key`] of the canonical config) — computed
    /// for every job, cacheable or not; addresses the poison ledger and
    /// the journal.
    digest: String,
    /// Originating request id, for log lines.
    request_id: Option<String>,
    /// The request span the job's trace nests under.
    parent_span: Option<SpanId>,
    /// [`trace::now_ns`] at admission — start of the queue wait.
    submit_ns: u64,
}

#[derive(Default)]
struct Counters {
    submitted: u64,
    completed: u64,
    failed: u64,
    cancelled: u64,
    rejected: u64,
    /// Submissions shed by the breaker or a failed journal write.
    shed: u64,
    /// Jobs failed at dispatch because their digest was poisoned.
    poisoned: u64,
    /// Submissions shed because the reservation ledger was full.
    mem_shed: u64,
    /// Admissions whose estimate exceeded the memory limit outright
    /// (run alone under a derived budget).
    oversized: u64,
}

struct State {
    jobs: HashMap<u64, Job>,
    queue: VecDeque<u64>,
    /// Jobs currently in [`JobState::Queued`] (admission bound; `queue`
    /// may also hold ids of already-cancelled jobs, skipped at dispatch).
    queued: usize,
    /// Deepest the queue has ever been (gauge on `/metrics`, `/stats`).
    queue_high_water: usize,
    running: usize,
    exclusive_active: bool,
    next_id: u64,
    draining: bool,
    counters: Counters,
    /// Panic strikes per spec digest; poisoned digests fail at dispatch.
    ledger: PoisonLedger,
    /// Optional circuit breaker over consecutive worker panics.
    breaker: Option<CircuitBreaker>,
    /// The job admitted as the breaker's half-open probe, when one is in
    /// flight (so a cancelled probe can abort instead of wedging).
    probe_job: Option<u64>,
    /// Idempotency key → job id for every accepted keyed submission.
    idempotency: HashMap<String, u64>,
    /// Worker threads restarted by the supervisor after a loop panic.
    worker_restarts: u64,
    /// Jobs restored from the journal at construction.
    replayed_jobs: u64,
    /// Journaled non-terminal jobs re-enqueued at construction.
    reenqueued: u64,
    /// Bytes currently committed in the reservation ledger.
    reserved: u64,
    /// Highest the ledger has ever been (gauge on `/stats`, `/metrics`).
    reserved_peak: u64,
}

impl State {
    /// Returns a job's ledger reservation to the pool. Idempotent: the
    /// reservation is taken out of the job, so every terminal path may
    /// call this without double-counting.
    fn release_reservation(&mut self, id: u64) {
        if let Some(job) = self.jobs.get_mut(&id) {
            let held = std::mem::take(&mut job.reservation);
            self.reserved = self.reserved.saturating_sub(held);
        }
    }

    /// Commits `bytes` against the ledger for job bookkeeping.
    fn reserve(&mut self, bytes: u64) {
        self.reserved = self.reserved.saturating_add(bytes);
        self.reserved_peak = self.reserved_peak.max(self.reserved);
    }
}

struct Shared {
    state: Mutex<State>,
    /// Workers wait here for dispatchable work.
    work: Condvar,
    /// Status watchers wait here for state changes.
    changed: Condvar,
    cache: ResultCache,
    /// Write-ahead journal, when durability is configured.
    journal: Option<Journal>,
    /// `true` when a breaker was configured (for stats/metrics gating).
    breaker_configured: bool,
    runner: Arc<dyn StudyRunner>,
    cfg: SchedulerConfig,
    telemetry: Arc<Telemetry>,
}

/// Scheduler tuning.
#[derive(Debug, Clone, Copy)]
pub struct SchedulerConfig {
    /// Most jobs that may wait in the queue at once.
    pub queue_capacity: usize,
    /// Worker threads executing jobs.
    pub workers: usize,
    /// Base `Retry-After` hint handed out on admission rejection; the
    /// actual hint scales with load (see [`retry_after_hint`]).
    pub retry_after_secs: u32,
    /// Memory the scheduler may commit to admitted jobs at once, in
    /// bytes. When set, every submission is priced by
    /// [`crate::cost::estimate_cost`] and admitted only while the sum of
    /// in-flight reservations stays under the limit; estimates above the
    /// limit run alone under a derived per-job budget instead of being
    /// refused outright. `None` (the default) disables the ledger and
    /// keeps admission byte-identical to the pre-resource scheduler.
    pub mem_limit: Option<u64>,
}

impl Default for SchedulerConfig {
    fn default() -> Self {
        Self {
            queue_capacity: 64,
            workers: 2,
            retry_after_secs: 1,
            mem_limit: None,
        }
    }
}

/// Load-derived `Retry-After` hint: the configured base, plus one second
/// per worker-pool's worth of queued jobs, plus one second per quarter
/// of the reservation ledger already committed. Deterministic in the
/// scheduler state and bounded — a hammered daemon asks clients to back
/// off harder, but never for more than a minute.
fn retry_after_hint(cfg: &SchedulerConfig, state: &State) -> u32 {
    let base = u64::from(cfg.retry_after_secs.max(1));
    let queue_pressure = state.queued as u64 / cfg.workers.max(1) as u64;
    let mem_pressure = match cfg.mem_limit {
        Some(limit) if limit > 0 => 4 * state.reserved / limit,
        _ => 0,
    };
    base.saturating_add(queue_pressure)
        .saturating_add(mem_pressure)
        .min(60) as u32
}

/// Durability wiring for [`Scheduler::with_durability`]: an opened
/// journal with its replayed state, a (possibly disk-backed) result
/// cache, and an optional circuit breaker. [`Durability::default`] is
/// the no-durability configuration the plain constructors use.
pub struct Durability {
    /// Opened write-ahead journal plus the replay loaded from it.
    pub journal: Option<(Journal, Replay)>,
    /// The result cache — [`ResultCache::with_dir`] for persistence.
    pub cache: ResultCache,
    /// Circuit-breaker tuning; `None` disables the breaker entirely.
    pub breaker: Option<BreakerConfig>,
}

impl Default for Durability {
    fn default() -> Self {
        Self {
            journal: None,
            cache: ResultCache::new(),
            breaker: None,
        }
    }
}

/// The bounded FIFO scheduler plus its worker pool.
pub struct Scheduler {
    shared: Arc<Shared>,
    workers: Mutex<Vec<std::thread::JoinHandle<()>>>,
}

impl Scheduler {
    /// Creates the scheduler and spawns its workers, with tracing and
    /// logging off (metrics still record into a private registry).
    pub fn new(runner: Arc<dyn StudyRunner>, cfg: SchedulerConfig) -> Self {
        Self::with_telemetry(runner, cfg, Telemetry::disabled())
    }

    /// Creates the scheduler wired to a telemetry hub (shared with the
    /// server that fronts it).
    pub fn with_telemetry(
        runner: Arc<dyn StudyRunner>,
        cfg: SchedulerConfig,
        telemetry: Arc<Telemetry>,
    ) -> Self {
        Self::with_durability(runner, cfg, telemetry, Durability::default())
    }

    /// Creates the scheduler with the durability layer: replays the
    /// journal into the job table (re-enqueuing non-terminal jobs with
    /// `attempt+1` and fsyncing their re-acceptance records), restores
    /// lifetime counters, and arms the breaker when configured.
    pub fn with_durability(
        runner: Arc<dyn StudyRunner>,
        cfg: SchedulerConfig,
        telemetry: Arc<Telemetry>,
        durability: Durability,
    ) -> Self {
        let Durability {
            journal,
            cache,
            breaker,
        } = durability;
        let breaker_configured = breaker.is_some();
        let mut state = State {
            jobs: HashMap::new(),
            queue: VecDeque::new(),
            queued: 0,
            queue_high_water: 0,
            running: 0,
            exclusive_active: false,
            next_id: 1,
            draining: false,
            counters: Counters::default(),
            ledger: PoisonLedger::default(),
            breaker: breaker.map(CircuitBreaker::new),
            probe_job: None,
            idempotency: HashMap::new(),
            worker_restarts: 0,
            replayed_jobs: 0,
            reenqueued: 0,
            reserved: 0,
            reserved_peak: 0,
        };
        let (journal, replay_summary) = match journal {
            Some((journal, replay)) => {
                let summary = seed_from_replay(&mut state, &cache, &replay);
                if let Some(limit) = cfg.mem_limit {
                    reprice_replayed(&mut state, limit);
                }
                if !summary.reaccepts.is_empty() {
                    // Re-acceptance records make the bumped attempt
                    // counts durable; failure degrades only that (the
                    // jobs are re-enqueued in memory regardless).
                    if let Err(e) = journal.append_sync(&summary.reaccepts) {
                        telemetry.log(
                            Level::Warn,
                            "journal.error",
                            vec![field_str("error", &e.to_string())],
                        );
                    }
                }
                (Some(journal), Some(summary))
            }
            None => (None, None),
        };
        let shared = Arc::new(Shared {
            state: Mutex::new(state),
            work: Condvar::new(),
            changed: Condvar::new(),
            cache,
            journal,
            breaker_configured,
            runner,
            cfg,
            telemetry,
        });
        if let Some(summary) = replay_summary {
            shared.telemetry.log(
                Level::Info,
                "journal.replayed",
                vec![
                    field_num("jobs", summary.jobs as f64),
                    field_num("reenqueued", summary.reaccepts.len() as f64),
                    field_num("trimmed_bytes", summary.trimmed_bytes as f64),
                ],
            );
        }
        let workers = (0..cfg.workers.max(1))
            .map(|i| {
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("foldic-serve-worker-{i}"))
                    .spawn(move || supervise_worker(&shared))
            })
            .filter_map(Result::ok)
            .collect();
        Self {
            shared,
            workers: Mutex::new(workers),
        }
    }

    fn lock(&self) -> MutexGuard<'_, State> {
        self.shared.state.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// The result cache (stats and introspection endpoints).
    pub fn cache(&self) -> &ResultCache {
        &self.shared.cache
    }

    /// The telemetry hub this scheduler reports into.
    pub fn telemetry(&self) -> &Arc<Telemetry> {
        &self.shared.telemetry
    }

    /// Submits a job: validates, consults the cache, then queues.
    pub fn submit(&self, spec: JobSpec) -> Submission {
        self.submit_traced(spec, None)
    }

    /// [`Scheduler::submit`] carrying the originating request's tracing
    /// context: the job's span tree is rooted under the request span and
    /// its log lines carry the request id.
    pub fn submit_traced(&self, spec: JobSpec, ctx: Option<SubmitCtx>) -> Submission {
        let tele = &self.shared.telemetry;
        let config = match self.shared.runner.resolve(&spec) {
            Ok(config) => config,
            Err(msg) => return Submission::Invalid(msg),
        };
        let key = cache_key(&config);
        let cacheable = spec.cacheable();
        let experiments = config.get("experiments").cloned().unwrap_or_default();
        let request_id = ctx.as_ref().map(|c| c.request_id.clone());
        let idempotency_key = ctx.as_ref().and_then(|c| c.idempotency_key.clone());
        let rid = request_id.as_deref().unwrap_or("-");

        let mut state = self.lock();
        if state.draining {
            return Submission::Draining;
        }
        if let Some(idem) = &idempotency_key {
            if let Some(&id) = state.idempotency.get(idem) {
                drop(state);
                tele.log(
                    Level::Info,
                    "job.duplicate",
                    vec![
                        field_str("idempotency_key", idem),
                        field_num("job", id as f64),
                        field_str("request_id", rid),
                    ],
                );
                return Submission::Duplicate { id };
            }
        }
        state.counters.submitted += 1;
        if cacheable {
            // Cache consultation happens under the state lock so the
            // hit/miss counters observed by a status probe are always
            // consistent with the job table.
            if let Some(body) = self.shared.cache.lookup(&key) {
                let id = state.next_id;
                if let Some(journal) = &self.shared.journal {
                    // A hit is an acknowledged job too: journal its
                    // acceptance and completion in one fsync'd batch.
                    // The body rides inline only when no cache directory
                    // can re-supply it after a restart.
                    let inline = self.shared.cache.dir().is_none();
                    let records = [
                        accepted_record(id, 1, &key, &spec, &config, &request_id, &idempotency_key),
                        JournalRecord::Terminal {
                            job: id,
                            attempt: 1,
                            state: "done".to_owned(),
                            error: None,
                            body: inline.then(|| body.to_string()),
                        },
                    ];
                    if let Err(e) = journal.append_sync(&records) {
                        return self.shed_submission(state, &e.to_string(), rid);
                    }
                }
                state.next_id += 1;
                state.counters.completed += 1;
                if let Some(idem) = &idempotency_key {
                    state.idempotency.insert(idem.clone(), id);
                }
                state.jobs.insert(
                    id,
                    Job {
                        spec,
                        status: JobStatus {
                            id,
                            state: JobState::Done,
                            attempt: 1,
                            cache_hit: true,
                            cache_key: Some(key.clone()),
                            config,
                            error: None,
                            body: Some(body),
                            flight: None,
                        },
                        exclusive: false,
                        reservation: 0,
                        mem_budget: None,
                        digest: key.clone(),
                        request_id: request_id.clone(),
                        parent_span: None,
                        submit_ns: trace::now_ns(),
                    },
                );
                drop(state);
                // A hit job's trace is just the request span: seed it so
                // `/jobs/<id>/trace` still resolves.
                if let Some(span) = ctx.as_ref().and_then(|c| c.parent_span) {
                    tele.seed_job_span(id, span);
                }
                tele.log(
                    Level::Info,
                    "job.hit",
                    vec![
                        field_str("cache", "hit"),
                        field_str("cache_key", &key),
                        field_str("experiments", &experiments),
                        field_num("job", id as f64),
                        field_str("request_id", rid),
                    ],
                );
                self.shared.changed.notify_all();
                return Submission::Hit { id };
            }
        }
        if state.queued >= self.shared.cfg.queue_capacity {
            state.counters.submitted -= 1;
            state.counters.rejected += 1;
            let retry_after_secs = retry_after_hint(&self.shared.cfg, &state);
            drop(state);
            tele.log(
                Level::Warn,
                "job.rejected",
                vec![
                    field_num("retry_after_secs", f64::from(retry_after_secs)),
                    field_str("request_id", rid),
                ],
            );
            return Submission::Rejected { retry_after_secs };
        }
        // Cost-aware admission: price the job and fit it into the
        // reservation ledger. An estimate that fits alongside in-flight
        // reservations commits; a fitting estimate that finds the ledger
        // full is shed; an estimate above the limit outright is admitted
        // anyway — alone, under a budget derived from the limit — so big
        // studies degrade deterministically instead of starving.
        let mut reservation = 0u64;
        let mut mem_budget = None;
        let mut oversized = false;
        if let Some(limit) = self.shared.cfg.mem_limit {
            let estimate = match crate::cost::estimate_cost(&spec) {
                Ok(estimate) => estimate,
                Err(msg) => {
                    state.counters.submitted -= 1;
                    return Submission::Invalid(msg);
                }
            };
            if estimate > limit {
                oversized = true;
                reservation = limit;
                mem_budget = Some(limit);
            } else if state.reserved.saturating_add(estimate) > limit {
                state.counters.submitted -= 1;
                state.counters.mem_shed += 1;
                let retry_after_secs = retry_after_hint(&self.shared.cfg, &state);
                drop(state);
                tele.log(
                    Level::Warn,
                    "job.shed",
                    vec![
                        field_num("estimate_bytes", estimate as f64),
                        field_str("reason", "mem_backlog"),
                        field_num("retry_after_secs", f64::from(retry_after_secs)),
                        field_str("request_id", rid),
                    ],
                );
                return Submission::Shed { retry_after_secs };
            } else {
                reservation = estimate;
            }
        }
        // A budget-degraded body is not the spec's canonical result, so
        // oversized jobs stay out of the content-addressed cache.
        let cacheable = cacheable && !oversized;
        // The breaker gates computed work only — cache hits (above) are
        // served even while open, and it is the last gate so a half-open
        // probe admission always corresponds to an actually-queued job.
        let mut probe = false;
        if let Some(breaker) = &mut state.breaker {
            match breaker.try_admit(Instant::now()) {
                Admission::Allowed => {}
                Admission::Probe => probe = true,
                Admission::Shed { retry_after_secs } => {
                    state.counters.submitted -= 1;
                    state.counters.shed += 1;
                    drop(state);
                    tele.log(
                        Level::Warn,
                        "job.shed",
                        vec![
                            field_str("reason", "breaker_open"),
                            field_num("retry_after_secs", f64::from(retry_after_secs)),
                            field_str("request_id", rid),
                        ],
                    );
                    return Submission::Shed { retry_after_secs };
                }
            }
        }
        let id = state.next_id;
        if let Some(journal) = &self.shared.journal {
            let record =
                accepted_record(id, 1, &key, &spec, &config, &request_id, &idempotency_key);
            if let Err(e) = journal.append_sync(std::slice::from_ref(&record)) {
                if probe {
                    if let Some(breaker) = &mut state.breaker {
                        breaker.abort_probe();
                    }
                }
                return self.shed_submission(state, &e.to_string(), rid);
            }
        }
        state.next_id += 1;
        if probe {
            state.probe_job = Some(id);
        }
        if oversized {
            state.counters.oversized += 1;
        }
        state.reserve(reservation);
        if let Some(idem) = &idempotency_key {
            state.idempotency.insert(idem.clone(), id);
        }
        // Budgeted jobs ride the process-global resource layer, so —
        // exactly like deadline jobs on the deadline layer — they must
        // not share the process with other running jobs.
        let exclusive = spec.deadline_secs.is_some() || oversized;
        let parent_span = ctx.as_ref().and_then(|c| c.parent_span);
        state.jobs.insert(
            id,
            Job {
                spec,
                status: JobStatus {
                    id,
                    state: JobState::Queued,
                    attempt: 1,
                    cache_hit: false,
                    cache_key: cacheable.then(|| key.clone()),
                    config,
                    error: None,
                    body: None,
                    flight: None,
                },
                exclusive,
                reservation,
                mem_budget,
                digest: key,
                request_id: request_id.clone(),
                parent_span,
                submit_ns: trace::now_ns(),
            },
        );
        state.queue.push_back(id);
        state.queued += 1;
        state.queue_high_water = state.queue_high_water.max(state.queued);
        drop(state);
        if let Some(span) = parent_span {
            tele.seed_job_span(id, span);
        }
        if let Some(budget) = mem_budget {
            tele.log(
                Level::Warn,
                "job.oversized",
                vec![
                    field_num("job", id as f64),
                    field_num("mem_budget_bytes", budget as f64),
                    field_str("request_id", rid),
                ],
            );
        }
        tele.log(
            Level::Info,
            "job.queued",
            vec![
                field_str("cache", "miss"),
                field_str("experiments", &experiments),
                field_num("job", id as f64),
                field_str("request_id", rid),
            ],
        );
        self.shared.work.notify_all();
        Submission::Queued { id }
    }

    /// Rolls a submission back after a failed journal write and sheds it:
    /// the daemon must never acknowledge a job it cannot re-prove.
    fn shed_submission(
        &self,
        mut state: MutexGuard<'_, State>,
        error: &str,
        rid: &str,
    ) -> Submission {
        state.counters.submitted -= 1;
        state.counters.shed += 1;
        let retry_after_secs = retry_after_hint(&self.shared.cfg, &state);
        drop(state);
        self.shared.telemetry.log(
            Level::Error,
            "job.shed",
            vec![
                field_str("error", error),
                field_str("reason", "journal_write_failed"),
                field_num("retry_after_secs", f64::from(retry_after_secs)),
                field_str("request_id", rid),
            ],
        );
        Submission::Shed { retry_after_secs }
    }

    /// Snapshot of one job.
    pub fn status(&self, id: u64) -> Option<JobStatus> {
        self.lock().jobs.get(&id).map(|j| j.status.clone())
    }

    /// Cancels a job. Queued jobs become [`JobState::Cancelled`] and
    /// will never execute; jobs in any other state are left untouched.
    /// Returns the state after the call (`None`: unknown id).
    pub fn cancel(&self, id: u64) -> Option<JobState> {
        let mut state = self.lock();
        let job = state.jobs.get_mut(&id)?;
        if job.status.state == JobState::Queued {
            job.status.state = JobState::Cancelled;
            let request_id = job.request_id.clone().unwrap_or_else(|| "-".to_owned());
            let attempt = job.status.attempt;
            state.release_reservation(id);
            state.queued -= 1;
            state.counters.cancelled += 1;
            if state.probe_job == Some(id) {
                state.probe_job = None;
                if let Some(breaker) = &mut state.breaker {
                    breaker.abort_probe();
                }
            }
            drop(state);
            self.journal_terminal(JournalRecord::Terminal {
                job: id,
                attempt,
                state: "cancelled".to_owned(),
                error: None,
                body: None,
            });
            self.shared.telemetry.log(
                Level::Info,
                "job.cancelled",
                vec![
                    field_num("job", id as f64),
                    field_str("request_id", &request_id),
                ],
            );
            self.shared.work.notify_all();
            self.shared.changed.notify_all();
            return Some(JobState::Cancelled);
        }
        Some(job.status.state)
    }

    /// Appends one terminal record (fsync'd, best-effort with a logged
    /// error — the in-memory transition already happened).
    fn journal_terminal(&self, record: JournalRecord) {
        if let Some(journal) = &self.shared.journal {
            if let Err(e) = journal.append_sync(std::slice::from_ref(&record)) {
                self.shared.telemetry.log(
                    Level::Warn,
                    "journal.error",
                    vec![field_str("error", &e.to_string())],
                );
            }
        }
    }

    /// Blocks until job `id` reaches a terminal state, with a timeout.
    /// Returns the terminal state, or the current state on timeout
    /// (`None`: unknown id).
    pub fn wait_terminal(&self, id: u64, timeout: Duration) -> Option<JobState> {
        let deadline = Instant::now() + timeout;
        let mut state = self.lock();
        loop {
            let current = state.jobs.get(&id)?.status.state;
            if current.is_terminal() {
                return Some(current);
            }
            let left = deadline.saturating_duration_since(Instant::now());
            if left.is_zero() {
                return Some(current);
            }
            state = self
                .shared
                .changed
                .wait_timeout(state, left)
                .unwrap_or_else(|e| e.into_inner())
                .0;
        }
    }

    /// The `/stats` document: job counts by state, queue occupancy,
    /// cache counters, plus uptime. Everything except `uptime_seconds`
    /// is a counter, not a wall-clock reading, so two probes of an idle
    /// daemon agree on every other field. With durability configured a
    /// `durability` section is appended (and only then — a plain daemon
    /// emits the document byte-identically to earlier versions).
    pub fn stats_json(&self) -> Json {
        let state = self.lock();
        let mut by_state: BTreeMap<&'static str, u64> = BTreeMap::new();
        for s in [
            JobState::Queued,
            JobState::Running,
            JobState::Done,
            JobState::Failed,
            JobState::Cancelled,
        ] {
            by_state.insert(s.as_str(), 0);
        }
        for job in state.jobs.values() {
            *by_state.entry(job.status.state.as_str()).or_default() += 1;
        }
        let durability = self.durability_json(&state);
        let cache = self.shared.cache.stats();
        let mut fields = vec![
            (
                "schema".to_owned(),
                Json::Str("foldic-serve-stats/1".to_owned()),
            ),
            (
                "jobs".to_owned(),
                Json::Obj(
                    by_state
                        .into_iter()
                        .map(|(k, v)| (k.to_owned(), Json::Num(v as f64)))
                        .collect(),
                ),
            ),
            (
                "queue".to_owned(),
                Json::obj([
                    ("depth".to_owned(), Json::Num(state.queued as f64)),
                    (
                        "capacity".to_owned(),
                        Json::Num(self.shared.cfg.queue_capacity as f64),
                    ),
                    (
                        "high_water".to_owned(),
                        Json::Num(state.queue_high_water as f64),
                    ),
                    (
                        "rejected".to_owned(),
                        Json::Num(state.counters.rejected as f64),
                    ),
                ]),
            ),
            (
                "counters".to_owned(),
                Json::obj([
                    (
                        "submitted".to_owned(),
                        Json::Num(state.counters.submitted as f64),
                    ),
                    (
                        "completed".to_owned(),
                        Json::Num(state.counters.completed as f64),
                    ),
                    ("failed".to_owned(), Json::Num(state.counters.failed as f64)),
                    (
                        "cancelled".to_owned(),
                        Json::Num(state.counters.cancelled as f64),
                    ),
                ]),
            ),
            (
                "cache".to_owned(),
                Json::obj([
                    ("entries".to_owned(), Json::Num(cache.entries as f64)),
                    ("hits".to_owned(), Json::Num(cache.hits as f64)),
                    ("misses".to_owned(), Json::Num(cache.misses as f64)),
                    ("insertions".to_owned(), Json::Num(cache.insertions as f64)),
                ]),
            ),
            (
                "uptime_seconds".to_owned(),
                Json::Num(self.shared.telemetry.uptime_secs() as f64),
            ),
            (
                "workers".to_owned(),
                Json::Num(self.shared.cfg.workers as f64),
            ),
        ];
        if let Some(durability) = durability {
            fields.push(("durability".to_owned(), durability));
        }
        // Pay-for-use like `durability`: only a memory-limited daemon
        // grows the `resources` section.
        if let Some(limit) = self.shared.cfg.mem_limit {
            fields.push((
                "resources".to_owned(),
                Json::obj([
                    ("limit_bytes".to_owned(), Json::Num(limit as f64)),
                    (
                        "mem_shed".to_owned(),
                        Json::Num(state.counters.mem_shed as f64),
                    ),
                    (
                        "oversized".to_owned(),
                        Json::Num(state.counters.oversized as f64),
                    ),
                    (
                        "reserved_bytes".to_owned(),
                        Json::Num(state.reserved as f64),
                    ),
                    (
                        "reserved_peak_bytes".to_owned(),
                        Json::Num(state.reserved_peak as f64),
                    ),
                ]),
            ));
        }
        drop(state);
        Json::obj(fields)
    }

    /// The `durability` section of `/stats` — present only when the
    /// journal, cache directory or breaker is configured (pay-for-use).
    fn durability_json(&self, state: &State) -> Option<Json> {
        let cache = self.shared.cache.stats();
        let journal_on = self.shared.journal.is_some();
        let dir_on = self.shared.cache.dir().is_some();
        if !journal_on && !dir_on && !self.shared.breaker_configured {
            return None;
        }
        let mut fields = vec![
            (
                "poisoned_jobs".to_owned(),
                Json::Num(state.counters.poisoned as f64),
            ),
            ("shed".to_owned(), Json::Num(state.counters.shed as f64)),
            (
                "worker_restarts".to_owned(),
                Json::Num(state.worker_restarts as f64),
            ),
        ];
        if journal_on {
            fields.push((
                "journal".to_owned(),
                Json::obj([
                    ("reenqueued".to_owned(), Json::Num(state.reenqueued as f64)),
                    (
                        "replayed_jobs".to_owned(),
                        Json::Num(state.replayed_jobs as f64),
                    ),
                ]),
            ));
        }
        if dir_on {
            fields.push((
                "cache_dir".to_owned(),
                Json::obj([
                    ("corrupt".to_owned(), Json::Num(cache.corrupt as f64)),
                    ("loaded".to_owned(), Json::Num(cache.loaded as f64)),
                ]),
            ));
        }
        if let Some(breaker) = &state.breaker {
            fields.push((
                "breaker".to_owned(),
                Json::obj([
                    (
                        "state".to_owned(),
                        Json::Str(breaker.state().as_str().to_owned()),
                    ),
                    (
                        "transitions".to_owned(),
                        Json::Num(breaker.transitions() as f64),
                    ),
                ]),
            ));
        }
        Some(Json::obj(fields))
    }

    /// The `/metrics` exposition body: the live request/latency registry
    /// plus series synthesized from the scheduler's own counters and
    /// gauges, rendered per the `foldic-serve-metrics/1` contract
    /// documented in [`crate::telemetry`]. Durability families appear
    /// only when the corresponding feature is configured.
    pub fn metrics_text(&self) -> String {
        self.shared.telemetry.ingest();
        let mut snap = self.shared.telemetry.registry().snapshot();
        let cache = self.shared.cache.stats();
        let (counters, queued, high_water, running, supervision, reserved, reserved_peak) = {
            let state = self.lock();
            (
                Counters {
                    submitted: state.counters.submitted,
                    completed: state.counters.completed,
                    failed: state.counters.failed,
                    cancelled: state.counters.cancelled,
                    rejected: state.counters.rejected,
                    shed: state.counters.shed,
                    poisoned: state.counters.poisoned,
                    mem_shed: state.counters.mem_shed,
                    oversized: state.counters.oversized,
                },
                state.queued,
                state.queue_high_water,
                state.running,
                (
                    state.worker_restarts,
                    state.replayed_jobs,
                    state.reenqueued,
                    state.breaker.as_ref().map(|b| (b.state(), b.transitions())),
                ),
                state.reserved,
                state.reserved_peak,
            )
        };
        let m = &mut snap.metrics;
        let counter = |v: u64| Metric::Counter(v);
        let gauge = |v: f64| Metric::Gauge(v);
        m.insert(
            telemetry::jobs_state_series("done"),
            counter(counters.completed),
        );
        m.insert(
            telemetry::jobs_state_series("failed"),
            counter(counters.failed),
        );
        m.insert(
            telemetry::jobs_state_series("cancelled"),
            counter(counters.cancelled),
        );
        m.insert(
            telemetry::SERIES_JOBS_SUBMITTED.to_owned(),
            counter(counters.submitted),
        );
        m.insert(
            telemetry::SERIES_JOBS_REJECTED.to_owned(),
            counter(counters.rejected),
        );
        m.insert(telemetry::SERIES_CACHE_HITS.to_owned(), counter(cache.hits));
        m.insert(
            telemetry::SERIES_CACHE_MISSES.to_owned(),
            counter(cache.misses),
        );
        m.insert(
            telemetry::SERIES_CACHE_INSERTIONS.to_owned(),
            counter(cache.insertions),
        );
        m.insert(telemetry::SERIES_CACHE_EVICTIONS.to_owned(), counter(0));
        m.insert(
            "foldic_serve_cache_entries".to_owned(),
            gauge(cache.entries as f64),
        );
        m.insert("foldic_serve_queue_depth".to_owned(), gauge(queued as f64));
        m.insert(
            "foldic_serve_queue_high_water".to_owned(),
            gauge(high_water as f64),
        );
        m.insert(
            "foldic_serve_queue_capacity".to_owned(),
            gauge(self.shared.cfg.queue_capacity as f64),
        );
        m.insert(
            "foldic_serve_workers".to_owned(),
            gauge(self.shared.cfg.workers as f64),
        );
        m.insert(
            "foldic_serve_workers_busy".to_owned(),
            gauge(running as f64),
        );
        m.insert(
            "foldic_serve_uptime_seconds".to_owned(),
            gauge(self.shared.telemetry.uptime_secs() as f64),
        );
        let (worker_restarts, replayed_jobs, reenqueued, breaker) = supervision;
        let durable = self.shared.journal.is_some()
            || self.shared.cache.dir().is_some()
            || self.shared.breaker_configured;
        if durable {
            m.insert(
                telemetry::SERIES_JOBS_SHED.to_owned(),
                counter(counters.shed),
            );
            m.insert(
                telemetry::SERIES_JOBS_POISONED.to_owned(),
                counter(counters.poisoned),
            );
            m.insert(
                telemetry::SERIES_WORKER_RESTARTS.to_owned(),
                counter(worker_restarts),
            );
        }
        if self.shared.journal.is_some() {
            m.insert(
                telemetry::SERIES_JOURNAL_REPLAYED.to_owned(),
                counter(replayed_jobs),
            );
            m.insert(
                telemetry::SERIES_JOURNAL_REENQUEUED.to_owned(),
                counter(reenqueued),
            );
        }
        if self.shared.cache.dir().is_some() {
            m.insert(
                telemetry::SERIES_CACHE_LOADED.to_owned(),
                counter(cache.loaded),
            );
            m.insert(
                telemetry::SERIES_CACHE_CORRUPT.to_owned(),
                counter(cache.corrupt),
            );
        }
        if let Some((breaker_state, transitions)) = breaker {
            m.insert(
                telemetry::SERIES_BREAKER_STATE.to_owned(),
                gauge(match breaker_state {
                    foldic_fault::supervise::BreakerState::Closed => 0.0,
                    foldic_fault::supervise::BreakerState::HalfOpen => 1.0,
                    foldic_fault::supervise::BreakerState::Open => 2.0,
                }),
            );
            m.insert(
                telemetry::SERIES_BREAKER_TRANSITIONS.to_owned(),
                counter(transitions),
            );
        }
        if let Some(limit) = self.shared.cfg.mem_limit {
            m.insert(telemetry::SERIES_MEM_LIMIT.to_owned(), gauge(limit as f64));
            m.insert(
                telemetry::SERIES_MEM_RESERVED.to_owned(),
                gauge(reserved as f64),
            );
            m.insert(
                telemetry::SERIES_MEM_RESERVED_PEAK.to_owned(),
                gauge(reserved_peak as f64),
            );
            m.insert(
                telemetry::SERIES_JOBS_OVERSIZED.to_owned(),
                counter(counters.oversized),
            );
            m.insert(
                telemetry::SERIES_JOBS_MEM_SHED.to_owned(),
                counter(counters.mem_shed),
            );
        }
        foldic_obs::expo::to_prometheus(&snap)
    }

    /// Drains and stops: no new submissions, queued jobs cancelled (and
    /// journaled as such), in-flight jobs run to completion, workers
    /// joined, and the trace buffer flushed into the per-job mux — spans
    /// recorded between the last export and the shutdown request are
    /// preserved, not dropped. Idempotent.
    pub fn shutdown(&self) {
        let (drained, terminal_records) = {
            let mut state = self.lock();
            state.draining = true;
            let ids: Vec<u64> = state.queue.iter().copied().collect();
            let mut drained = 0u64;
            let mut records = Vec::new();
            for id in ids {
                if state.probe_job == Some(id) {
                    state.probe_job = None;
                    if let Some(breaker) = &mut state.breaker {
                        breaker.abort_probe();
                    }
                }
                if let Some(job) = state.jobs.get_mut(&id) {
                    if job.status.state == JobState::Queued {
                        job.status.state = JobState::Cancelled;
                        let attempt = job.status.attempt;
                        state.release_reservation(id);
                        state.queued -= 1;
                        state.counters.cancelled += 1;
                        drained += 1;
                        records.push(JournalRecord::Terminal {
                            job: id,
                            attempt,
                            state: "cancelled".to_owned(),
                            error: None,
                            body: None,
                        });
                    }
                }
            }
            state.queue.clear();
            (drained, records)
        };
        if !terminal_records.is_empty() {
            if let Some(journal) = &self.shared.journal {
                if let Err(e) = journal.append_sync(&terminal_records) {
                    self.shared.telemetry.log(
                        Level::Warn,
                        "journal.error",
                        vec![field_str("error", &e.to_string())],
                    );
                }
            }
        }
        self.shared.work.notify_all();
        self.shared.changed.notify_all();
        let workers: Vec<_> = {
            let mut guard = self.workers.lock().unwrap_or_else(|e| e.into_inner());
            guard.drain(..).collect()
        };
        for handle in workers {
            let _ = handle.join();
        }
        // Final trace flush: everything workers recorded up to their
        // exit is now assigned to its job, so traces survive shutdown.
        self.shared.telemetry.ingest();
        self.shared.telemetry.log(
            Level::Info,
            "scheduler.drained",
            vec![field_num("cancelled_queued", drained as f64)],
        );
    }
}

/// Renders a drained flight ring as the status-payload dump: `None` when
/// the ring was empty, else the record array with a truncation marker
/// when the ring overflowed.
fn flight_json(records: &[flight::FlightRecord], dropped: u64) -> Option<Json> {
    if records.is_empty() && dropped == 0 {
        return None;
    }
    let mut items: Vec<Json> = records.iter().map(flight::FlightRecord::to_json).collect();
    if dropped > 0 {
        items.push(Json::obj([
            ("dropped".to_owned(), Json::Num(dropped as f64)),
            ("name".to_owned(), Json::Str("flight.truncated".to_owned())),
        ]));
    }
    Some(Json::Arr(items))
}

/// Builds an `accepted` journal record for one admission.
fn accepted_record(
    id: u64,
    attempt: u32,
    digest: &str,
    spec: &JobSpec,
    config: &BTreeMap<String, String>,
    request_id: &Option<String>,
    idempotency_key: &Option<String>,
) -> JournalRecord {
    JournalRecord::Accepted {
        job: id,
        attempt,
        digest: digest.to_owned(),
        spec: spec.clone(),
        config: config.clone(),
        request_id: request_id.clone(),
        idempotency_key: idempotency_key.clone(),
    }
}

/// What [`seed_from_replay`] did, for the boot log line and the
/// re-acceptance batch.
struct ReplaySummary {
    jobs: u64,
    trimmed_bytes: u64,
    reaccepts: Vec<JournalRecord>,
}

/// Seeds a fresh scheduler [`State`] from a journal [`Replay`]: terminal
/// jobs are restored (bodies from the journal or the persistent cache —
/// a `done` job whose body is unrecoverable is re-enqueued instead, and
/// recomputes byte-identically), non-terminal jobs are re-enqueued with
/// `attempt+1`, and lifetime counters come back.
fn seed_from_replay(state: &mut State, cache: &ResultCache, replay: &Replay) -> ReplaySummary {
    state.next_id = replay.next_id();
    state.counters.submitted = replay.jobs.len() as u64;
    state.replayed_jobs = replay.jobs.len() as u64;
    let mut reaccepts = Vec::new();
    for (&id, rjob) in &replay.jobs {
        if let Some(key) = &rjob.idempotency_key {
            state.idempotency.insert(key.clone(), id);
        }
        let cacheable = rjob.spec.cacheable();
        // (terminal state, error, body, body came from the cache)
        let restored = rjob.terminal.as_ref().and_then(|t| match t.state.as_str() {
            "failed" => Some((JobState::Failed, t.error.clone(), None, false)),
            "cancelled" => Some((JobState::Cancelled, None, None, false)),
            "done" => {
                if let Some(body) = &t.body {
                    let body: Arc<str> = Arc::from(body.as_str());
                    if cacheable {
                        // re-warm the in-memory cache from the journal
                        cache.insert(&rjob.digest, rjob.config.clone(), Arc::clone(&body));
                    }
                    Some((JobState::Done, None, Some(body), false))
                } else {
                    // body lives in the persistent cache — or is gone
                    // (quarantined/missing) and the job recomputes
                    cache
                        .peek(&rjob.digest)
                        .map(|entry| (JobState::Done, None, Some(entry.body), true))
                }
            }
            _ => None,
        });
        let reenqueue = restored.is_none();
        let attempt = if reenqueue {
            rjob.attempt + 1
        } else {
            rjob.attempt
        };
        let (job_state, error, body, from_cache) =
            restored.unwrap_or((JobState::Queued, None, None, false));
        match job_state {
            JobState::Done => state.counters.completed += 1,
            JobState::Failed => state.counters.failed += 1,
            JobState::Cancelled => state.counters.cancelled += 1,
            _ => {}
        }
        state.jobs.insert(
            id,
            Job {
                spec: rjob.spec.clone(),
                status: JobStatus {
                    id,
                    state: job_state,
                    attempt,
                    cache_hit: from_cache,
                    cache_key: cacheable.then(|| rjob.digest.clone()),
                    config: rjob.config.clone(),
                    error,
                    body,
                    flight: None,
                },
                exclusive: rjob.spec.deadline_secs.is_some(),
                reservation: 0,
                mem_budget: None,
                digest: rjob.digest.clone(),
                request_id: rjob.request_id.clone(),
                parent_span: None,
                submit_ns: trace::now_ns(),
            },
        );
        if reenqueue {
            state.queue.push_back(id);
            state.queued += 1;
            state.reenqueued += 1;
            reaccepts.push(accepted_record(
                id,
                attempt,
                &rjob.digest,
                &rjob.spec,
                &rjob.config,
                &rjob.request_id,
                &rjob.idempotency_key,
            ));
        }
    }
    state.queue_high_water = state.queued;
    ReplaySummary {
        jobs: replay.jobs.len() as u64,
        trimmed_bytes: replay.trimmed_bytes,
        reaccepts,
    }
}

/// Re-runs the cost-admission classification for journal-replayed queued
/// jobs: they bypassed `submit_traced`, but they will occupy workers all
/// the same, so they must hold ledger reservations — and an oversized
/// replay must come back exclusive and budgeted, or a crash would strip
/// the very protection that let it in. An unpriceable spec (the journal
/// outlived a size rename, say) is charged the whole limit: maximally
/// conservative, never admitted alongside anything.
fn reprice_replayed(state: &mut State, limit: u64) {
    let queued: Vec<u64> = state.queue.iter().copied().collect();
    for id in queued {
        let Some(job) = state.jobs.get_mut(&id) else {
            continue;
        };
        if job.status.state != JobState::Queued {
            continue;
        }
        let estimate = crate::cost::estimate_cost(&job.spec).unwrap_or(limit);
        let reservation = if estimate > limit {
            job.exclusive = true;
            job.mem_budget = Some(limit);
            limit
        } else {
            estimate
        };
        job.reservation = reservation;
        state.reserve(reservation);
    }
}

/// Everything a worker needs to run one dispatched job.
struct Picked {
    id: u64,
    spec: JobSpec,
    cacheable_key: Option<String>,
    config: BTreeMap<String, String>,
    exclusive: bool,
    mem_budget: Option<u64>,
    digest: String,
    attempt: u32,
    request_id: Option<String>,
    parent_span: Option<SpanId>,
    submit_ns: u64,
}

/// Supervises one worker thread: [`worker_loop`] panics (which can only
/// come from harness code — runner panics are caught per-job inside) are
/// caught, the scheduler state is repaired (the orphaned job fails, the
/// running count rebalances) and the loop restarts. A clean return means
/// drain-on-shutdown finished.
fn supervise_worker(shared: &Arc<Shared>) {
    // The job this worker currently holds, maintained under the state
    // lock at dispatch/completion. Only this thread touches it.
    let current: Mutex<Option<(u64, bool, u32)>> = Mutex::new(None);
    loop {
        if catch_unwind(AssertUnwindSafe(|| worker_loop(shared, &current))).is_ok() {
            return;
        }
        let orphan = current.lock().unwrap_or_else(|e| e.into_inner()).take();
        let terminal = {
            let mut state = shared.state.lock().unwrap_or_else(|e| e.into_inner());
            state.worker_restarts += 1;
            let mut terminal = None;
            if let Some((id, exclusive, attempt)) = orphan {
                state.running = state.running.saturating_sub(1);
                if exclusive {
                    state.exclusive_active = false;
                }
                if state.probe_job == Some(id) {
                    state.probe_job = None;
                }
                if let Some(breaker) = &mut state.breaker {
                    breaker.record_failure(Instant::now());
                }
                let mut crashed = false;
                if let Some(job) = state.jobs.get_mut(&id) {
                    if job.status.state == JobState::Running {
                        job.status.state = JobState::Failed;
                        job.status.error = Some("worker crashed while running this job".to_owned());
                        crashed = true;
                        terminal = Some(JournalRecord::Terminal {
                            job: id,
                            attempt,
                            state: "failed".to_owned(),
                            error: job.status.error.clone(),
                            body: None,
                        });
                    }
                }
                if crashed {
                    state.counters.failed += 1;
                }
                state.release_reservation(id);
            }
            terminal
        };
        if let Some(record) = terminal {
            if let Some(journal) = &shared.journal {
                let _ = journal.append_sync(std::slice::from_ref(&record));
            }
        }
        shared.telemetry.log(
            Level::Warn,
            "worker.restarted",
            vec![field_num(
                "job",
                orphan.map_or(-1.0, |(id, _, _)| id as f64),
            )],
        );
        shared.changed.notify_all();
        shared.work.notify_all();
    }
}

/// One worker: strict-FIFO dispatch honoring the exclusivity and poison
/// rules, then execution outside the lock, then completion bookkeeping.
fn worker_loop(shared: &Shared, current: &Mutex<Option<(u64, bool, u32)>>) {
    let tele = &shared.telemetry;
    loop {
        let picked = {
            let mut state = shared.state.lock().unwrap_or_else(|e| e.into_inner());
            loop {
                // Drop already-cancelled heads so they never block FIFO,
                // and fail poisoned heads at dispatch — their digest has
                // struck out and must never reach a worker again.
                while let Some(&head) = state.queue.front() {
                    enum Head {
                        Keep,
                        Gone,
                        Poisoned(u32),
                    }
                    let disposition = match state.jobs.get(&head) {
                        None => Head::Gone,
                        Some(job) if job.status.state != JobState::Queued => Head::Gone,
                        Some(job) if state.ledger.is_poisoned(&job.digest) => {
                            Head::Poisoned(state.ledger.strikes(&job.digest))
                        }
                        Some(_) => Head::Keep,
                    };
                    match disposition {
                        Head::Keep => break,
                        Head::Gone => {
                            state.queue.pop_front();
                        }
                        Head::Poisoned(strikes) => {
                            state.queue.pop_front();
                            state.queued -= 1;
                            state.counters.failed += 1;
                            state.counters.poisoned += 1;
                            if state.probe_job == Some(head) {
                                state.probe_job = None;
                                if let Some(breaker) = &mut state.breaker {
                                    breaker.abort_probe();
                                }
                            }
                            let mut terminal = None;
                            if let Some(job) = state.jobs.get_mut(&head) {
                                job.status.state = JobState::Failed;
                                job.status.error = Some(format!(
                                    "poisoned: workers panicked {strikes} times on this spec; \
                                     quarantined"
                                ));
                                // No worker ran, so synthesize the
                                // provenance dump a run would have left:
                                // record the quarantine into this
                                // thread's ring and drain it.
                                flight::record(
                                    "job.poisoned",
                                    [
                                        ("digest".to_owned(), Json::Str(job.digest.clone())),
                                        ("job".to_owned(), Json::Num(head as f64)),
                                        ("strikes".to_owned(), Json::Num(f64::from(strikes))),
                                    ],
                                );
                                let (records, dropped) = flight::take();
                                job.status.flight = flight_json(&records, dropped);
                                terminal = Some(JournalRecord::Terminal {
                                    job: head,
                                    attempt: job.status.attempt,
                                    state: "failed".to_owned(),
                                    error: job.status.error.clone(),
                                    body: None,
                                });
                            }
                            state.release_reservation(head);
                            if let (Some(journal), Some(record)) = (&shared.journal, &terminal) {
                                let _ = journal.append_sync(std::slice::from_ref(record));
                            }
                            tele.log(
                                Level::Warn,
                                "job.poisoned",
                                vec![
                                    field_num("job", head as f64),
                                    field_num("strikes", f64::from(strikes)),
                                ],
                            );
                            shared.changed.notify_all();
                        }
                    }
                }
                let dispatchable = state.queue.front().and_then(|&head| {
                    let job = state.jobs.get(&head)?;
                    let ok = if job.exclusive {
                        state.running == 0
                    } else {
                        !state.exclusive_active
                    };
                    ok.then_some(head)
                });
                if let Some(id) = dispatchable {
                    state.queue.pop_front();
                    state.queued -= 1;
                    state.running += 1;
                    let job = match state.jobs.get_mut(&id) {
                        Some(job) => job,
                        None => {
                            state.running -= 1;
                            continue;
                        }
                    };
                    job.status.state = JobState::Running;
                    let picked = Picked {
                        id,
                        spec: job.spec.clone(),
                        cacheable_key: job.status.cache_key.clone(),
                        config: job.status.config.clone(),
                        exclusive: job.exclusive,
                        mem_budget: job.mem_budget,
                        digest: job.digest.clone(),
                        attempt: job.status.attempt,
                        request_id: job.request_id.clone(),
                        parent_span: job.parent_span,
                        submit_ns: job.submit_ns,
                    };
                    if picked.exclusive {
                        state.exclusive_active = true;
                    }
                    // Under the state lock: the supervisor's crash
                    // repair sees either no job or a fully-dispatched
                    // one, never a half-transition.
                    *current.lock().unwrap_or_else(|e| e.into_inner()) =
                        Some((id, picked.exclusive, picked.attempt));
                    shared.changed.notify_all();
                    break picked;
                }
                if state.draining && state.queue.is_empty() {
                    return;
                }
                state = shared.work.wait(state).unwrap_or_else(|e| e.into_inner());
            }
        };
        let Picked {
            id,
            spec,
            cacheable_key,
            config,
            exclusive,
            mem_budget,
            digest,
            attempt,
            request_id,
            parent_span,
            submit_ns,
        } = picked;

        // The started record is flushed, not fsync'd: losing it across a
        // crash only means replay re-runs a job that had already begun.
        if let Some(journal) = &shared.journal {
            journal.append(&JournalRecord::Started { job: id, attempt });
        }

        // Synthesize the queue-wait span: it covers admission → dispatch
        // and sits between the request span and the job.run span, so the
        // rendered trace shows where the time went before execution.
        let dispatch_ns = trace::now_ns();
        let wait_ms = (dispatch_ns.saturating_sub(submit_ns)) as f64 / 1e6;
        let qwait_span = if trace::is_enabled() && parent_span.is_some() {
            let span = trace::alloc_span_id();
            tele.push_job_event(
                id,
                trace::synthetic_event(
                    EventKind::Begin,
                    "queue.wait",
                    span,
                    parent_span,
                    submit_ns,
                    vec![("job", AttrValue::from(id))],
                ),
            );
            tele.push_job_event(
                id,
                trace::synthetic_event(
                    EventKind::End,
                    "queue.wait",
                    span,
                    None,
                    dispatch_ns,
                    vec![],
                ),
            );
            Some(span)
        } else {
            None
        };

        // Execute outside the lock, under a job.run span parented to the
        // queue-wait span (the runner's flow/stage spans nest beneath it
        // via the thread-local stack and pool inheritance). A panicking
        // runner must not take the worker down — it becomes a failed
        // job, same as a runner error (and a poison-ledger strike).
        let panicked = std::cell::Cell::new(false);
        let run = || {
            catch_unwind(AssertUnwindSafe(|| {
                shared.runner.run_budgeted(&spec, mem_budget)
            }))
            .unwrap_or_else(|payload| {
                let msg = payload
                    .downcast_ref::<&str>()
                    .map(|s| (*s).to_owned())
                    .or_else(|| payload.downcast_ref::<String>().cloned())
                    .unwrap_or_else(|| "runner panicked".to_owned());
                panicked.set(true);
                // A panicking run may never have reached its own flight
                // bookkeeping — record the unwind itself, so panicked
                // jobs carry a dump like degraded ones do.
                flight::record(
                    "job.panic",
                    [("message".to_owned(), Json::Str(msg.clone()))],
                );
                Err(format!("runner panicked: {msg}"))
            })
        };
        let outcome = if qwait_span.is_some() {
            trace::run_with_parent(qwait_span, || {
                let _span = span!("job.run", job = id);
                run()
            })
        } else {
            run()
        };
        let panicked = panicked.get();
        let run_ms = (trace::now_ns().saturating_sub(dispatch_ns)) as f64 / 1e6;
        tele.registry().observe("foldic_serve_job_wait_ms", wait_ms);
        tele.registry().observe("foldic_serve_job_run_ms", run_ms);

        // Anything the runner put in this worker's flight recorder
        // becomes provenance on the job's status payload.
        let flight_dump = {
            let (records, dropped) = flight::take();
            flight_json(&records, dropped)
        };

        let mut state = shared.state.lock().unwrap_or_else(|e| e.into_inner());
        *current.lock().unwrap_or_else(|e| e.into_inner()) = None;
        state.running -= 1;
        if exclusive {
            state.exclusive_active = false;
        }
        state.release_reservation(id);
        // Supervision bookkeeping: only a *panic* counts against the
        // spec's poison ledger and the breaker's failure streak — an
        // ordinary `Err` is the job's problem, not the pool's.
        let mut newly_poisoned = false;
        if panicked {
            newly_poisoned = state.ledger.strike(&digest);
            if let Some(breaker) = &mut state.breaker {
                breaker.record_failure(Instant::now());
            }
        } else if let Some(breaker) = &mut state.breaker {
            breaker.record_success();
        }
        if state.probe_job == Some(id) {
            state.probe_job = None;
        }
        let mut log_line: Option<(Level, &'static str, Option<String>)> = None;
        let mut terminal = None;
        if let Some(job) = state.jobs.get_mut(&id) {
            job.status.flight = flight_dump;
            match outcome {
                Ok(body) => {
                    let body: Arc<str> = Arc::from(body);
                    if let Some(key) = &cacheable_key {
                        shared.cache.insert(key, config, Arc::clone(&body));
                    }
                    job.status.state = JobState::Done;
                    job.status.body = Some(Arc::clone(&body));
                    state.counters.completed += 1;
                    log_line = Some((Level::Info, "job.done", None));
                    // Inline the body only when the persistent cache
                    // cannot re-supply it after a restart.
                    let inline = cacheable_key.is_none() || shared.cache.dir().is_none();
                    terminal = Some(JournalRecord::Terminal {
                        job: id,
                        attempt,
                        state: "done".to_owned(),
                        error: None,
                        body: inline.then(|| body.to_string()),
                    });
                }
                Err(msg) => {
                    job.status.state = JobState::Failed;
                    job.status.error = Some(msg.clone());
                    state.counters.failed += 1;
                    log_line = Some((Level::Error, "job.failed", Some(msg.clone())));
                    terminal = Some(JournalRecord::Terminal {
                        job: id,
                        attempt,
                        state: "failed".to_owned(),
                        error: Some(msg),
                        body: None,
                    });
                }
            }
        }
        drop(state);
        // Terminal durability is eventual, not ack-gated: a crash before
        // this fsync merely re-runs the job on restart, byte-identically.
        if let (Some(journal), Some(record)) = (&shared.journal, &terminal) {
            if let Err(e) = journal.append_sync(std::slice::from_ref(record)) {
                tele.log(
                    Level::Warn,
                    "journal.error",
                    vec![field_str("error", &e.to_string())],
                );
            }
        }
        if newly_poisoned {
            tele.log(
                Level::Warn,
                "spec.poisoned",
                vec![field_str("digest", &digest), field_num("job", id as f64)],
            );
        }
        if let Some((level, event, error)) = log_line {
            let mut fields = vec![
                field_str("cache", "miss"),
                field_num("job", id as f64),
                field_str("request_id", request_id.as_deref().unwrap_or("-")),
                field_num("run_ms", run_ms),
                field_num("wait_ms", wait_ms),
            ];
            if let Some(error) = error {
                fields.push(field_str("error", &error));
            }
            tele.log(level, event, fields);
        }
        // Move this job's freshly recorded spans into the mux promptly,
        // keeping the global buffer small between scrapes.
        tele.ingest();
        shared.work.notify_all();
        shared.changed.notify_all();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::path::PathBuf;
    use std::sync::atomic::{AtomicU64, Ordering};

    /// A runner that echoes its config as the body.
    struct EchoRunner;
    impl StudyRunner for EchoRunner {
        fn resolve(&self, spec: &JobSpec) -> Result<BTreeMap<String, String>, String> {
            if spec.size == "bogus" {
                return Err("unknown size `bogus`".to_owned());
            }
            let mut config = BTreeMap::new();
            config.insert("experiments".to_owned(), spec.experiments.join("+"));
            config.insert("size".to_owned(), spec.size.clone());
            if let Some(seed) = spec.seed {
                config.insert("seed".to_owned(), format!("{seed:#x}"));
            }
            Ok(config)
        }
        fn run(&self, spec: &JobSpec) -> Result<String, String> {
            if spec.experiments.iter().any(|e| e == "explode") {
                panic!("kaboom");
            }
            if spec.experiments.iter().any(|e| e == "fail") {
                return Err("synthetic failure".to_owned());
            }
            Ok(format!("result for {}", spec.experiments.join("+")))
        }
    }

    /// [`EchoRunner`] that also counts `run` invocations per experiment
    /// set, for poison-quarantine assertions.
    struct CountingRunner {
        runs: AtomicU64,
    }
    impl StudyRunner for CountingRunner {
        fn resolve(&self, spec: &JobSpec) -> Result<BTreeMap<String, String>, String> {
            EchoRunner.resolve(spec)
        }
        fn run(&self, spec: &JobSpec) -> Result<String, String> {
            self.runs.fetch_add(1, Ordering::SeqCst);
            EchoRunner.run(spec)
        }
    }

    fn spec(names: &[&str]) -> JobSpec {
        JobSpec {
            experiments: names.iter().map(|s| (*s).to_owned()).collect(),
            size: "tiny".to_owned(),
            ..JobSpec::default()
        }
    }

    fn tmp(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join("foldic-serve-tests");
        std::fs::create_dir_all(&dir).unwrap();
        dir.join(format!("{name}-{}.jsonl", std::process::id()))
    }

    fn durability_with_journal(path: &std::path::Path) -> Durability {
        let (journal, replay) = Journal::open(path).unwrap();
        Durability {
            journal: Some((journal, replay)),
            ..Durability::default()
        }
    }

    #[test]
    fn submit_run_and_cache_hit_round_trip() {
        let sched = Scheduler::new(Arc::new(EchoRunner), SchedulerConfig::default());
        let Submission::Queued { id } = sched.submit(spec(&["table1"])) else {
            panic!("first submission must queue");
        };
        assert_eq!(
            sched.wait_terminal(id, Duration::from_secs(10)),
            Some(JobState::Done)
        );
        let first = sched.status(id).unwrap();
        assert!(!first.cache_hit);
        let body1 = first.body.unwrap();

        let Submission::Hit { id: id2 } = sched.submit(spec(&["table1"])) else {
            panic!("identical resubmission must hit the cache");
        };
        let second = sched.status(id2).unwrap();
        assert!(second.cache_hit);
        assert_eq!(second.state, JobState::Done);
        assert_eq!(second.body.unwrap(), body1, "hit body is byte-identical");

        // a one-field delta misses
        let mut delta = spec(&["table1"]);
        delta.seed = Some(7);
        assert!(matches!(sched.submit(delta), Submission::Queued { .. }));
        sched.shutdown();
    }

    #[test]
    fn invalid_specs_and_failures_are_typed() {
        let sched = Scheduler::new(Arc::new(EchoRunner), SchedulerConfig::default());
        let mut bad = spec(&["table1"]);
        bad.size = "bogus".to_owned();
        assert!(matches!(sched.submit(bad), Submission::Invalid(_)));

        let Submission::Queued { id } = sched.submit(spec(&["fail"])) else {
            panic!("queued");
        };
        assert_eq!(
            sched.wait_terminal(id, Duration::from_secs(10)),
            Some(JobState::Failed)
        );
        let status = sched.status(id).unwrap();
        assert!(status.error.unwrap().contains("synthetic failure"));

        // a panicking runner becomes a failed job, not a dead worker
        let Submission::Queued { id } = sched.submit(spec(&["explode"])) else {
            panic!("queued");
        };
        assert_eq!(
            sched.wait_terminal(id, Duration::from_secs(10)),
            Some(JobState::Failed)
        );
        assert!(sched.status(id).unwrap().error.unwrap().contains("kaboom"));
        // pool still works
        let Submission::Queued { id } = sched.submit(spec(&["table2"])) else {
            panic!("queued");
        };
        assert_eq!(
            sched.wait_terminal(id, Duration::from_secs(10)),
            Some(JobState::Done)
        );
        sched.shutdown();
    }

    #[test]
    fn stats_document_has_the_expected_shape() {
        let sched = Scheduler::new(Arc::new(EchoRunner), SchedulerConfig::default());
        let Submission::Queued { id } = sched.submit(spec(&["table1"])) else {
            panic!("queued");
        };
        sched.wait_terminal(id, Duration::from_secs(10));
        let stats = sched.stats_json();
        assert_eq!(
            stats.get("schema").unwrap().as_str(),
            Some("foldic-serve-stats/1")
        );
        assert_eq!(
            stats.get("jobs").unwrap().get("done").unwrap().as_f64(),
            Some(1.0)
        );
        assert_eq!(
            stats
                .get("counters")
                .unwrap()
                .get("submitted")
                .unwrap()
                .as_f64(),
            Some(1.0)
        );
        // pay-for-use: without durability there is no durability section
        assert!(stats.get("durability").is_none());
        sched.shutdown();
    }

    #[test]
    fn journal_restores_terminal_jobs_and_counters_across_restart() {
        let path = tmp("queue-restart");
        let _ = std::fs::remove_file(&path);
        let (id, body) = {
            let sched = Scheduler::with_durability(
                Arc::new(EchoRunner),
                SchedulerConfig::default(),
                Telemetry::disabled(),
                durability_with_journal(&path),
            );
            let Submission::Queued { id } = sched.submit(spec(&["table1"])) else {
                panic!("queued");
            };
            assert_eq!(
                sched.wait_terminal(id, Duration::from_secs(10)),
                Some(JobState::Done)
            );
            let body = sched.status(id).unwrap().body.unwrap();
            sched.shutdown();
            (id, body)
        };
        // "restart": a fresh scheduler over the same journal
        let sched = Scheduler::with_durability(
            Arc::new(EchoRunner),
            SchedulerConfig::default(),
            Telemetry::disabled(),
            durability_with_journal(&path),
        );
        let restored = sched.status(id).unwrap();
        assert_eq!(restored.state, JobState::Done);
        assert_eq!(
            restored.body.unwrap(),
            body,
            "recovered body is byte-identical"
        );
        // lifetime counters survived, and the cache re-warmed: the same
        // spec now hits without recomputing
        let stats = sched.stats_json();
        assert_eq!(
            stats
                .get("counters")
                .unwrap()
                .get("completed")
                .unwrap()
                .as_f64(),
            Some(1.0)
        );
        assert_eq!(
            stats
                .get("durability")
                .unwrap()
                .get("journal")
                .unwrap()
                .get("reenqueued")
                .unwrap()
                .as_f64(),
            Some(0.0),
            "clean restart re-enqueues nothing"
        );
        let Submission::Hit { .. } = sched.submit(spec(&["table1"])) else {
            panic!("restored body must serve cache hits");
        };
        sched.shutdown();
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn journal_reenqueues_non_terminal_jobs_with_bumped_attempt() {
        let path = tmp("queue-reenqueue");
        let _ = std::fs::remove_file(&path);
        // Simulate a crash: an accepted (never finished) job on disk.
        {
            let (journal, _) = Journal::open(&path).unwrap();
            let config = EchoRunner.resolve(&spec(&["table1"])).unwrap();
            journal
                .append_sync(&[accepted_record(
                    7,
                    1,
                    &cache_key(&config),
                    &spec(&["table1"]),
                    &config,
                    &Some("req-0000ff".to_owned()),
                    &None,
                )])
                .unwrap();
        }
        let sched = Scheduler::with_durability(
            Arc::new(EchoRunner),
            SchedulerConfig::default(),
            Telemetry::disabled(),
            durability_with_journal(&path),
        );
        assert_eq!(
            sched.wait_terminal(7, Duration::from_secs(10)),
            Some(JobState::Done),
            "re-enqueued job runs to completion"
        );
        let status = sched.status(7).unwrap();
        assert_eq!(status.attempt, 2, "replay bumps the attempt");
        assert_eq!(status.to_json().get("attempt").unwrap().as_f64(), Some(2.0));
        sched.shutdown();
        // after the clean shutdown the journal holds its terminal record:
        // a second restart re-enqueues nothing (idempotent replay)
        let sched = Scheduler::with_durability(
            Arc::new(EchoRunner),
            SchedulerConfig::default(),
            Telemetry::disabled(),
            durability_with_journal(&path),
        );
        assert_eq!(sched.status(7).unwrap().state, JobState::Done);
        let stats = sched.stats_json();
        assert_eq!(
            stats
                .get("durability")
                .unwrap()
                .get("journal")
                .unwrap()
                .get("reenqueued")
                .unwrap()
                .as_f64(),
            Some(0.0)
        );
        sched.shutdown();
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn idempotency_key_replays_instead_of_double_enqueuing() {
        let sched = Scheduler::new(Arc::new(EchoRunner), SchedulerConfig::default());
        let ctx = |rid: &str| {
            Some(SubmitCtx {
                request_id: rid.to_owned(),
                parent_span: None,
                idempotency_key: Some("idem-abc".to_owned()),
            })
        };
        let Submission::Queued { id } = sched.submit_traced(spec(&["table1"]), ctx("req-1")) else {
            panic!("queued");
        };
        // retried POST (same key) returns the same job, no new enqueue
        let Submission::Duplicate { id: dup } =
            sched.submit_traced(spec(&["table1"]), ctx("req-2"))
        else {
            panic!("expected Duplicate");
        };
        assert_eq!(dup, id);
        sched.wait_terminal(id, Duration::from_secs(10));
        // …even after the job finished
        let Submission::Duplicate { id: dup } =
            sched.submit_traced(spec(&["table1"]), ctx("req-3"))
        else {
            panic!("expected Duplicate after completion");
        };
        assert_eq!(dup, id);
        let stats = sched.stats_json();
        assert_eq!(
            stats
                .get("counters")
                .unwrap()
                .get("submitted")
                .unwrap()
                .as_f64(),
            Some(1.0),
            "duplicates are not submissions"
        );
        sched.shutdown();
    }

    #[test]
    fn poisoned_spec_is_quarantined_and_never_redispatched() {
        let runner = Arc::new(CountingRunner {
            runs: AtomicU64::new(0),
        });
        let sched = Scheduler::new(runner.clone(), SchedulerConfig::default());
        // two panics strike the digest out
        for _ in 0..2 {
            let Submission::Queued { id } = sched.submit(spec(&["explode"])) else {
                panic!("queued");
            };
            assert_eq!(
                sched.wait_terminal(id, Duration::from_secs(10)),
                Some(JobState::Failed)
            );
        }
        assert_eq!(runner.runs.load(Ordering::SeqCst), 2);
        // the third submission fails at dispatch without running
        let Submission::Queued { id } = sched.submit(spec(&["explode"])) else {
            panic!("queued");
        };
        assert_eq!(
            sched.wait_terminal(id, Duration::from_secs(10)),
            Some(JobState::Failed)
        );
        let error = sched.status(id).unwrap().error.unwrap();
        assert!(error.contains("poisoned"), "{error}");
        assert_eq!(
            runner.runs.load(Ordering::SeqCst),
            2,
            "poisoned spec never reaches the runner again"
        );
        // other specs are unaffected
        let Submission::Queued { id } = sched.submit(spec(&["table1"])) else {
            panic!("queued");
        };
        assert_eq!(
            sched.wait_terminal(id, Duration::from_secs(10)),
            Some(JobState::Done)
        );
        sched.shutdown();
    }
}
