//! Bounded FIFO job queue, admission control and the worker pool.
//!
//! The scheduler is deliberately boring: strict FIFO dispatch from a
//! bounded queue, a fixed worker pool, and four hard rules.
//!
//! 1. **Admission**: a submission that finds the queue full is rejected
//!    immediately with a `Retry-After` hint (the server turns it into a
//!    429). Nothing ever blocks a client on a full queue.
//! 2. **Cache first**: a cacheable submission whose content address is
//!    already stored completes instantly — the job record is born `done`
//!    with the cached, byte-identical body, and no worker is involved.
//! 3. **Cancel-before-start is absolute**: a queued job that is
//!    cancelled never reaches a worker; the runner never sees its spec.
//!    Cancelling a running job does not interrupt it (runs are the
//!    expensive thing being served; interruption is the deadline layer's
//!    job) — the cancel call just reports the current state.
//! 4. **Deadline jobs run exclusively**: the `foldic-fault` deadline
//!    layer is process-global, so a deadline-bounded job must not share
//!    the process with other running jobs (they would observe its stage
//!    budgets). FIFO order is kept: when a deadline job reaches the head
//!    of the queue, dispatch waits for running jobs to drain, runs it
//!    alone, then resumes normal concurrency. No starvation in either
//!    direction, because the head of the queue always dispatches next.
//!
//! Shutdown drains: in-flight jobs run to completion, still-queued jobs
//! are cancelled, workers are joined. The property tests in
//! `tests/queue_props.rs` pin all four rules plus drain-without-deadlock.
//!
//! The scheduler is telemetry-aware ([`Scheduler::with_telemetry`]): a
//! traced submission carries its request's `http.request` span, dispatch
//! synthesizes a `queue.wait` span covering the time in queue, the run
//! executes under a `job.run` span (so the flow/stage spans the study
//! runner opens nest beneath it), workers drain the per-thread flight
//! recorder into degraded jobs' status payloads, and every transition
//! writes a structured log line.

use crate::cache::ResultCache;
use crate::job::{cache_key, JobSpec};
use crate::telemetry::{self, field_num, field_str, Telemetry};
use foldic_obs::json::Json;
use foldic_obs::log::Level;
use foldic_obs::metrics::Metric;
use foldic_obs::trace::{self, AttrValue, EventKind, SpanId};
use foldic_obs::{flight, span};
use std::collections::{BTreeMap, HashMap, VecDeque};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::{Arc, Condvar, Mutex, MutexGuard};
use std::time::{Duration, Instant};

/// Executes studies for the scheduler. Implementations live outside this
/// crate (the real one, in `foldic-bench`, runs paper experiments and
/// returns manifest text) so the serving layer stays flow-free.
pub trait StudyRunner: Send + Sync {
    /// Validates a spec and returns its canonical manifest config — the
    /// cache identity. Must be cheap and side-effect free; called at
    /// submission time.
    ///
    /// # Errors
    ///
    /// A message describing why the spec is not servable (mapped to 400).
    fn resolve(&self, spec: &JobSpec) -> Result<BTreeMap<String, String>, String>;

    /// Runs the study to completion and returns the serialized manifest
    /// body. Deterministic for cacheable specs: the same spec must
    /// produce byte-identical output on every call.
    ///
    /// # Errors
    ///
    /// A message describing the failure (the job lands in `failed`).
    fn run(&self, spec: &JobSpec) -> Result<String, String>;
}

/// Lifecycle of one job.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum JobState {
    /// Waiting in the FIFO queue.
    Queued,
    /// Executing on a worker.
    Running,
    /// Finished with a result body.
    Done,
    /// Finished with an error.
    Failed,
    /// Cancelled before a worker picked it up.
    Cancelled,
}

impl JobState {
    /// Stable lower-case name used in the HTTP API.
    pub fn as_str(self) -> &'static str {
        match self {
            JobState::Queued => "queued",
            JobState::Running => "running",
            JobState::Done => "done",
            JobState::Failed => "failed",
            JobState::Cancelled => "cancelled",
        }
    }

    /// `true` once the job can no longer change state.
    pub fn is_terminal(self) -> bool {
        matches!(
            self,
            JobState::Done | JobState::Failed | JobState::Cancelled
        )
    }
}

/// Outcome of a submission attempt.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Submission {
    /// Served from the content-addressed cache; the job is already done.
    Hit {
        /// Id of the (already terminal) job record.
        id: u64,
    },
    /// Admitted to the queue.
    Queued {
        /// Id of the queued job.
        id: u64,
    },
    /// Queue full — retry after the hinted number of seconds (429).
    Rejected {
        /// `Retry-After` hint in seconds.
        retry_after_secs: u32,
    },
    /// The scheduler is shutting down (503).
    Draining,
    /// The spec failed validation (400).
    Invalid(String),
}

/// Snapshot of one job for the status endpoint.
#[derive(Debug, Clone, PartialEq)]
pub struct JobStatus {
    /// Job id.
    pub id: u64,
    /// Current state.
    pub state: JobState,
    /// Whether the result came from the cache.
    pub cache_hit: bool,
    /// Content address of the study (cacheable jobs only).
    pub cache_key: Option<String>,
    /// Canonical config the job resolved to.
    pub config: BTreeMap<String, String>,
    /// Failure message, for `failed` jobs.
    pub error: Option<String>,
    /// Result body, for `done` jobs.
    pub body: Option<Arc<str>>,
    /// Flight-recorder dump (array of record objects, possibly ending in
    /// a truncation marker) — attached when the worker's ring was
    /// non-empty after the run, i.e. the job degraded, faulted or timed
    /// out.
    pub flight: Option<Json>,
}

impl JobStatus {
    /// The status document returned by `GET /jobs/<id>`.
    pub fn to_json(&self) -> Json {
        let mut fields = vec![
            ("job".to_owned(), Json::Num(self.id as f64)),
            (
                "state".to_owned(),
                Json::Str(self.state.as_str().to_owned()),
            ),
            (
                "cache".to_owned(),
                Json::Str(if self.cache_hit { "hit" } else { "miss" }.to_owned()),
            ),
            (
                "config".to_owned(),
                Json::Obj(
                    self.config
                        .iter()
                        .map(|(k, v)| (k.clone(), Json::Str(v.clone())))
                        .collect(),
                ),
            ),
        ];
        if let Some(key) = &self.cache_key {
            fields.push(("cache_key".to_owned(), Json::Str(key.clone())));
        }
        if let Some(error) = &self.error {
            fields.push(("error".to_owned(), Json::Str(error.clone())));
        }
        if let Some(flight) = &self.flight {
            fields.push(("flight_recorder".to_owned(), flight.clone()));
        }
        Json::obj(fields)
    }
}

/// Tracing/logging context a traced submission hands to the scheduler.
#[derive(Debug, Clone)]
pub struct SubmitCtx {
    /// The originating request's id (echoed into job log lines).
    pub request_id: String,
    /// The request's `http.request` span — the root the job's
    /// `queue.wait`/`job.run` spans nest under.
    pub parent_span: Option<SpanId>,
}

struct Job {
    spec: JobSpec,
    status: JobStatus,
    exclusive: bool,
    /// Originating request id, for log lines.
    request_id: Option<String>,
    /// The request span the job's trace nests under.
    parent_span: Option<SpanId>,
    /// [`trace::now_ns`] at admission — start of the queue wait.
    submit_ns: u64,
}

#[derive(Default)]
struct Counters {
    submitted: u64,
    completed: u64,
    failed: u64,
    cancelled: u64,
    rejected: u64,
}

struct State {
    jobs: HashMap<u64, Job>,
    queue: VecDeque<u64>,
    /// Jobs currently in [`JobState::Queued`] (admission bound; `queue`
    /// may also hold ids of already-cancelled jobs, skipped at dispatch).
    queued: usize,
    /// Deepest the queue has ever been (gauge on `/metrics`, `/stats`).
    queue_high_water: usize,
    running: usize,
    exclusive_active: bool,
    next_id: u64,
    draining: bool,
    counters: Counters,
}

struct Shared {
    state: Mutex<State>,
    /// Workers wait here for dispatchable work.
    work: Condvar,
    /// Status watchers wait here for state changes.
    changed: Condvar,
    cache: ResultCache,
    runner: Arc<dyn StudyRunner>,
    cfg: SchedulerConfig,
    telemetry: Arc<Telemetry>,
}

/// Scheduler tuning.
#[derive(Debug, Clone, Copy)]
pub struct SchedulerConfig {
    /// Most jobs that may wait in the queue at once.
    pub queue_capacity: usize,
    /// Worker threads executing jobs.
    pub workers: usize,
    /// `Retry-After` hint handed out on admission rejection.
    pub retry_after_secs: u32,
}

impl Default for SchedulerConfig {
    fn default() -> Self {
        Self {
            queue_capacity: 64,
            workers: 2,
            retry_after_secs: 1,
        }
    }
}

/// The bounded FIFO scheduler plus its worker pool.
pub struct Scheduler {
    shared: Arc<Shared>,
    workers: Mutex<Vec<std::thread::JoinHandle<()>>>,
}

impl Scheduler {
    /// Creates the scheduler and spawns its workers, with tracing and
    /// logging off (metrics still record into a private registry).
    pub fn new(runner: Arc<dyn StudyRunner>, cfg: SchedulerConfig) -> Self {
        Self::with_telemetry(runner, cfg, Telemetry::disabled())
    }

    /// Creates the scheduler wired to a telemetry hub (shared with the
    /// server that fronts it).
    pub fn with_telemetry(
        runner: Arc<dyn StudyRunner>,
        cfg: SchedulerConfig,
        telemetry: Arc<Telemetry>,
    ) -> Self {
        let shared = Arc::new(Shared {
            state: Mutex::new(State {
                jobs: HashMap::new(),
                queue: VecDeque::new(),
                queued: 0,
                queue_high_water: 0,
                running: 0,
                exclusive_active: false,
                next_id: 1,
                draining: false,
                counters: Counters::default(),
            }),
            work: Condvar::new(),
            changed: Condvar::new(),
            cache: ResultCache::new(),
            runner,
            cfg,
            telemetry,
        });
        let workers = (0..cfg.workers.max(1))
            .map(|i| {
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("foldic-serve-worker-{i}"))
                    .spawn(move || worker_loop(&shared))
            })
            .filter_map(Result::ok)
            .collect();
        Self {
            shared,
            workers: Mutex::new(workers),
        }
    }

    fn lock(&self) -> MutexGuard<'_, State> {
        self.shared.state.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// The result cache (stats and introspection endpoints).
    pub fn cache(&self) -> &ResultCache {
        &self.shared.cache
    }

    /// The telemetry hub this scheduler reports into.
    pub fn telemetry(&self) -> &Arc<Telemetry> {
        &self.shared.telemetry
    }

    /// Submits a job: validates, consults the cache, then queues.
    pub fn submit(&self, spec: JobSpec) -> Submission {
        self.submit_traced(spec, None)
    }

    /// [`Scheduler::submit`] carrying the originating request's tracing
    /// context: the job's span tree is rooted under the request span and
    /// its log lines carry the request id.
    pub fn submit_traced(&self, spec: JobSpec, ctx: Option<SubmitCtx>) -> Submission {
        let tele = &self.shared.telemetry;
        let config = match self.shared.runner.resolve(&spec) {
            Ok(config) => config,
            Err(msg) => return Submission::Invalid(msg),
        };
        let key = cache_key(&config);
        let cacheable = spec.cacheable();
        let experiments = config.get("experiments").cloned().unwrap_or_default();
        let request_id = ctx.as_ref().map(|c| c.request_id.clone());
        let rid = request_id.as_deref().unwrap_or("-");

        let mut state = self.lock();
        if state.draining {
            return Submission::Draining;
        }
        state.counters.submitted += 1;
        if cacheable {
            // Cache consultation happens under the state lock so the
            // hit/miss counters observed by a status probe are always
            // consistent with the job table.
            if let Some(body) = self.shared.cache.lookup(&key) {
                let id = state.next_id;
                state.next_id += 1;
                state.counters.completed += 1;
                state.jobs.insert(
                    id,
                    Job {
                        spec,
                        status: JobStatus {
                            id,
                            state: JobState::Done,
                            cache_hit: true,
                            cache_key: Some(key.clone()),
                            config,
                            error: None,
                            body: Some(body),
                            flight: None,
                        },
                        exclusive: false,
                        request_id: request_id.clone(),
                        parent_span: None,
                        submit_ns: trace::now_ns(),
                    },
                );
                drop(state);
                // A hit job's trace is just the request span: seed it so
                // `/jobs/<id>/trace` still resolves.
                if let Some(span) = ctx.as_ref().and_then(|c| c.parent_span) {
                    tele.seed_job_span(id, span);
                }
                tele.log(
                    Level::Info,
                    "job.hit",
                    vec![
                        field_str("cache", "hit"),
                        field_str("cache_key", &key),
                        field_str("experiments", &experiments),
                        field_num("job", id as f64),
                        field_str("request_id", rid),
                    ],
                );
                self.shared.changed.notify_all();
                return Submission::Hit { id };
            }
        }
        if state.queued >= self.shared.cfg.queue_capacity {
            state.counters.submitted -= 1;
            state.counters.rejected += 1;
            drop(state);
            tele.log(
                Level::Warn,
                "job.rejected",
                vec![
                    field_num(
                        "retry_after_secs",
                        f64::from(self.shared.cfg.retry_after_secs),
                    ),
                    field_str("request_id", rid),
                ],
            );
            return Submission::Rejected {
                retry_after_secs: self.shared.cfg.retry_after_secs,
            };
        }
        let id = state.next_id;
        state.next_id += 1;
        let exclusive = spec.deadline_secs.is_some();
        let parent_span = ctx.as_ref().and_then(|c| c.parent_span);
        state.jobs.insert(
            id,
            Job {
                spec,
                status: JobStatus {
                    id,
                    state: JobState::Queued,
                    cache_hit: false,
                    cache_key: cacheable.then(|| key.clone()),
                    config,
                    error: None,
                    body: None,
                    flight: None,
                },
                exclusive,
                request_id: request_id.clone(),
                parent_span,
                submit_ns: trace::now_ns(),
            },
        );
        state.queue.push_back(id);
        state.queued += 1;
        state.queue_high_water = state.queue_high_water.max(state.queued);
        drop(state);
        if let Some(span) = parent_span {
            tele.seed_job_span(id, span);
        }
        tele.log(
            Level::Info,
            "job.queued",
            vec![
                field_str("cache", "miss"),
                field_str("experiments", &experiments),
                field_num("job", id as f64),
                field_str("request_id", rid),
            ],
        );
        self.shared.work.notify_all();
        Submission::Queued { id }
    }

    /// Snapshot of one job.
    pub fn status(&self, id: u64) -> Option<JobStatus> {
        self.lock().jobs.get(&id).map(|j| j.status.clone())
    }

    /// Cancels a job. Queued jobs become [`JobState::Cancelled`] and
    /// will never execute; jobs in any other state are left untouched.
    /// Returns the state after the call (`None`: unknown id).
    pub fn cancel(&self, id: u64) -> Option<JobState> {
        let mut state = self.lock();
        let job = state.jobs.get_mut(&id)?;
        if job.status.state == JobState::Queued {
            job.status.state = JobState::Cancelled;
            let request_id = job.request_id.clone().unwrap_or_else(|| "-".to_owned());
            state.queued -= 1;
            state.counters.cancelled += 1;
            drop(state);
            self.shared.telemetry.log(
                Level::Info,
                "job.cancelled",
                vec![
                    field_num("job", id as f64),
                    field_str("request_id", &request_id),
                ],
            );
            self.shared.work.notify_all();
            self.shared.changed.notify_all();
            return Some(JobState::Cancelled);
        }
        Some(job.status.state)
    }

    /// Blocks until job `id` reaches a terminal state, with a timeout.
    /// Returns the terminal state, or the current state on timeout
    /// (`None`: unknown id).
    pub fn wait_terminal(&self, id: u64, timeout: Duration) -> Option<JobState> {
        let deadline = Instant::now() + timeout;
        let mut state = self.lock();
        loop {
            let current = state.jobs.get(&id)?.status.state;
            if current.is_terminal() {
                return Some(current);
            }
            let left = deadline.saturating_duration_since(Instant::now());
            if left.is_zero() {
                return Some(current);
            }
            state = self
                .shared
                .changed
                .wait_timeout(state, left)
                .unwrap_or_else(|e| e.into_inner())
                .0;
        }
    }

    /// The `/stats` document: job counts by state, queue occupancy,
    /// cache counters, plus uptime. Everything except `uptime_seconds`
    /// is a counter, not a wall-clock reading, so two probes of an idle
    /// daemon agree on every other field.
    pub fn stats_json(&self) -> Json {
        let state = self.lock();
        let mut by_state: BTreeMap<&'static str, u64> = BTreeMap::new();
        for s in [
            JobState::Queued,
            JobState::Running,
            JobState::Done,
            JobState::Failed,
            JobState::Cancelled,
        ] {
            by_state.insert(s.as_str(), 0);
        }
        for job in state.jobs.values() {
            *by_state.entry(job.status.state.as_str()).or_default() += 1;
        }
        let cache = self.shared.cache.stats();
        Json::obj([
            (
                "schema".to_owned(),
                Json::Str("foldic-serve-stats/1".to_owned()),
            ),
            (
                "jobs".to_owned(),
                Json::Obj(
                    by_state
                        .into_iter()
                        .map(|(k, v)| (k.to_owned(), Json::Num(v as f64)))
                        .collect(),
                ),
            ),
            (
                "queue".to_owned(),
                Json::obj([
                    ("depth".to_owned(), Json::Num(state.queued as f64)),
                    (
                        "capacity".to_owned(),
                        Json::Num(self.shared.cfg.queue_capacity as f64),
                    ),
                    (
                        "high_water".to_owned(),
                        Json::Num(state.queue_high_water as f64),
                    ),
                    (
                        "rejected".to_owned(),
                        Json::Num(state.counters.rejected as f64),
                    ),
                ]),
            ),
            (
                "counters".to_owned(),
                Json::obj([
                    (
                        "submitted".to_owned(),
                        Json::Num(state.counters.submitted as f64),
                    ),
                    (
                        "completed".to_owned(),
                        Json::Num(state.counters.completed as f64),
                    ),
                    ("failed".to_owned(), Json::Num(state.counters.failed as f64)),
                    (
                        "cancelled".to_owned(),
                        Json::Num(state.counters.cancelled as f64),
                    ),
                ]),
            ),
            (
                "cache".to_owned(),
                Json::obj([
                    ("entries".to_owned(), Json::Num(cache.entries as f64)),
                    ("hits".to_owned(), Json::Num(cache.hits as f64)),
                    ("misses".to_owned(), Json::Num(cache.misses as f64)),
                    ("insertions".to_owned(), Json::Num(cache.insertions as f64)),
                ]),
            ),
            (
                "uptime_seconds".to_owned(),
                Json::Num(self.shared.telemetry.uptime_secs() as f64),
            ),
            (
                "workers".to_owned(),
                Json::Num(self.shared.cfg.workers as f64),
            ),
        ])
    }

    /// The `/metrics` exposition body: the live request/latency registry
    /// plus series synthesized from the scheduler's own counters and
    /// gauges, rendered per the `foldic-serve-metrics/1` contract
    /// documented in [`crate::telemetry`].
    pub fn metrics_text(&self) -> String {
        self.shared.telemetry.ingest();
        let mut snap = self.shared.telemetry.registry().snapshot();
        let cache = self.shared.cache.stats();
        let (counters, queued, high_water, running) = {
            let state = self.lock();
            (
                Counters {
                    submitted: state.counters.submitted,
                    completed: state.counters.completed,
                    failed: state.counters.failed,
                    cancelled: state.counters.cancelled,
                    rejected: state.counters.rejected,
                },
                state.queued,
                state.queue_high_water,
                state.running,
            )
        };
        let m = &mut snap.metrics;
        let counter = |v: u64| Metric::Counter(v);
        let gauge = |v: f64| Metric::Gauge(v);
        m.insert(
            telemetry::jobs_state_series("done"),
            counter(counters.completed),
        );
        m.insert(
            telemetry::jobs_state_series("failed"),
            counter(counters.failed),
        );
        m.insert(
            telemetry::jobs_state_series("cancelled"),
            counter(counters.cancelled),
        );
        m.insert(
            telemetry::SERIES_JOBS_SUBMITTED.to_owned(),
            counter(counters.submitted),
        );
        m.insert(
            telemetry::SERIES_JOBS_REJECTED.to_owned(),
            counter(counters.rejected),
        );
        m.insert(telemetry::SERIES_CACHE_HITS.to_owned(), counter(cache.hits));
        m.insert(
            telemetry::SERIES_CACHE_MISSES.to_owned(),
            counter(cache.misses),
        );
        m.insert(
            telemetry::SERIES_CACHE_INSERTIONS.to_owned(),
            counter(cache.insertions),
        );
        m.insert(telemetry::SERIES_CACHE_EVICTIONS.to_owned(), counter(0));
        m.insert(
            "foldic_serve_cache_entries".to_owned(),
            gauge(cache.entries as f64),
        );
        m.insert("foldic_serve_queue_depth".to_owned(), gauge(queued as f64));
        m.insert(
            "foldic_serve_queue_high_water".to_owned(),
            gauge(high_water as f64),
        );
        m.insert(
            "foldic_serve_queue_capacity".to_owned(),
            gauge(self.shared.cfg.queue_capacity as f64),
        );
        m.insert(
            "foldic_serve_workers".to_owned(),
            gauge(self.shared.cfg.workers as f64),
        );
        m.insert(
            "foldic_serve_workers_busy".to_owned(),
            gauge(running as f64),
        );
        m.insert(
            "foldic_serve_uptime_seconds".to_owned(),
            gauge(self.shared.telemetry.uptime_secs() as f64),
        );
        foldic_obs::expo::to_prometheus(&snap)
    }

    /// Drains and stops: no new submissions, queued jobs cancelled,
    /// in-flight jobs run to completion, workers joined, and the trace
    /// buffer flushed into the per-job mux — spans recorded between the
    /// last export and the shutdown request are preserved, not dropped.
    /// Idempotent.
    pub fn shutdown(&self) {
        let drained = {
            let mut state = self.lock();
            state.draining = true;
            let ids: Vec<u64> = state.queue.iter().copied().collect();
            let mut drained = 0u64;
            for id in ids {
                if let Some(job) = state.jobs.get_mut(&id) {
                    if job.status.state == JobState::Queued {
                        job.status.state = JobState::Cancelled;
                        state.queued -= 1;
                        state.counters.cancelled += 1;
                        drained += 1;
                    }
                }
            }
            state.queue.clear();
            drained
        };
        self.shared.work.notify_all();
        self.shared.changed.notify_all();
        let workers: Vec<_> = {
            let mut guard = self.workers.lock().unwrap_or_else(|e| e.into_inner());
            guard.drain(..).collect()
        };
        for handle in workers {
            let _ = handle.join();
        }
        // Final trace flush: everything workers recorded up to their
        // exit is now assigned to its job, so traces survive shutdown.
        self.shared.telemetry.ingest();
        self.shared.telemetry.log(
            Level::Info,
            "scheduler.drained",
            vec![field_num("cancelled_queued", drained as f64)],
        );
    }
}

/// One worker: strict-FIFO dispatch honoring the exclusivity rule, then
/// execution outside the lock, then completion bookkeeping.
fn worker_loop(shared: &Shared) {
    let tele = &shared.telemetry;
    loop {
        let (id, spec, cacheable_key, config, exclusive, request_id, parent_span, submit_ns) = {
            let mut state = shared.state.lock().unwrap_or_else(|e| e.into_inner());
            loop {
                // Drop already-cancelled heads so they never block FIFO.
                while let Some(&head) = state.queue.front() {
                    let gone = state
                        .jobs
                        .get(&head)
                        .is_none_or(|j| j.status.state != JobState::Queued);
                    if gone {
                        state.queue.pop_front();
                    } else {
                        break;
                    }
                }
                let dispatchable = state.queue.front().and_then(|&head| {
                    let job = state.jobs.get(&head)?;
                    let ok = if job.exclusive {
                        state.running == 0
                    } else {
                        !state.exclusive_active
                    };
                    ok.then_some(head)
                });
                if let Some(id) = dispatchable {
                    state.queue.pop_front();
                    state.queued -= 1;
                    state.running += 1;
                    let job = match state.jobs.get_mut(&id) {
                        Some(job) => job,
                        None => {
                            state.running -= 1;
                            continue;
                        }
                    };
                    job.status.state = JobState::Running;
                    let picked = (
                        id,
                        job.spec.clone(),
                        job.status.cache_key.clone(),
                        job.status.config.clone(),
                        job.exclusive,
                        job.request_id.clone(),
                        job.parent_span,
                        job.submit_ns,
                    );
                    if picked.4 {
                        state.exclusive_active = true;
                    }
                    shared.changed.notify_all();
                    break picked;
                }
                if state.draining && state.queue.is_empty() {
                    return;
                }
                state = shared.work.wait(state).unwrap_or_else(|e| e.into_inner());
            }
        };

        // Synthesize the queue-wait span: it covers admission → dispatch
        // and sits between the request span and the job.run span, so the
        // rendered trace shows where the time went before execution.
        let dispatch_ns = trace::now_ns();
        let wait_ms = (dispatch_ns.saturating_sub(submit_ns)) as f64 / 1e6;
        let qwait_span = if trace::is_enabled() && parent_span.is_some() {
            let span = trace::alloc_span_id();
            tele.push_job_event(
                id,
                trace::synthetic_event(
                    EventKind::Begin,
                    "queue.wait",
                    span,
                    parent_span,
                    submit_ns,
                    vec![("job", AttrValue::from(id))],
                ),
            );
            tele.push_job_event(
                id,
                trace::synthetic_event(
                    EventKind::End,
                    "queue.wait",
                    span,
                    None,
                    dispatch_ns,
                    vec![],
                ),
            );
            Some(span)
        } else {
            None
        };

        // Execute outside the lock, under a job.run span parented to the
        // queue-wait span (the runner's flow/stage spans nest beneath it
        // via the thread-local stack and pool inheritance). A panicking
        // runner must not take the worker down — it becomes a failed
        // job, same as a runner error.
        let run = || {
            catch_unwind(AssertUnwindSafe(|| shared.runner.run(&spec))).unwrap_or_else(|payload| {
                let msg = payload
                    .downcast_ref::<&str>()
                    .map(|s| (*s).to_owned())
                    .or_else(|| payload.downcast_ref::<String>().cloned())
                    .unwrap_or_else(|| "runner panicked".to_owned());
                Err(format!("runner panicked: {msg}"))
            })
        };
        let outcome = if qwait_span.is_some() {
            trace::run_with_parent(qwait_span, || {
                let _span = span!("job.run", job = id);
                run()
            })
        } else {
            run()
        };
        let run_ms = (trace::now_ns().saturating_sub(dispatch_ns)) as f64 / 1e6;
        tele.registry().observe("foldic_serve_job_wait_ms", wait_ms);
        tele.registry().observe("foldic_serve_job_run_ms", run_ms);

        // Anything the runner put in this worker's flight recorder
        // becomes provenance on the job's status payload.
        let flight_dump = {
            let (records, dropped) = flight::take();
            if records.is_empty() && dropped == 0 {
                None
            } else {
                let mut items: Vec<Json> =
                    records.iter().map(flight::FlightRecord::to_json).collect();
                if dropped > 0 {
                    items.push(Json::obj([
                        ("dropped".to_owned(), Json::Num(dropped as f64)),
                        ("name".to_owned(), Json::Str("flight.truncated".to_owned())),
                    ]));
                }
                Some(Json::Arr(items))
            }
        };

        let mut state = shared.state.lock().unwrap_or_else(|e| e.into_inner());
        state.running -= 1;
        if exclusive {
            state.exclusive_active = false;
        }
        let mut log_line: Option<(Level, &'static str, Option<String>)> = None;
        if let Some(job) = state.jobs.get_mut(&id) {
            job.status.flight = flight_dump;
            match outcome {
                Ok(body) => {
                    let body: Arc<str> = Arc::from(body);
                    if let Some(key) = &cacheable_key {
                        shared.cache.insert(key, config, Arc::clone(&body));
                    }
                    job.status.state = JobState::Done;
                    job.status.body = Some(body);
                    state.counters.completed += 1;
                    log_line = Some((Level::Info, "job.done", None));
                }
                Err(msg) => {
                    job.status.state = JobState::Failed;
                    job.status.error = Some(msg.clone());
                    state.counters.failed += 1;
                    log_line = Some((Level::Error, "job.failed", Some(msg)));
                }
            }
        }
        drop(state);
        if let Some((level, event, error)) = log_line {
            let mut fields = vec![
                field_str("cache", "miss"),
                field_num("job", id as f64),
                field_str("request_id", request_id.as_deref().unwrap_or("-")),
                field_num("run_ms", run_ms),
                field_num("wait_ms", wait_ms),
            ];
            if let Some(error) = error {
                fields.push(field_str("error", &error));
            }
            tele.log(level, event, fields);
        }
        // Move this job's freshly recorded spans into the mux promptly,
        // keeping the global buffer small between scrapes.
        tele.ingest();
        shared.work.notify_all();
        shared.changed.notify_all();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A runner that echoes its config as the body.
    struct EchoRunner;
    impl StudyRunner for EchoRunner {
        fn resolve(&self, spec: &JobSpec) -> Result<BTreeMap<String, String>, String> {
            if spec.size == "bogus" {
                return Err("unknown size `bogus`".to_owned());
            }
            let mut config = BTreeMap::new();
            config.insert("experiments".to_owned(), spec.experiments.join("+"));
            config.insert("size".to_owned(), spec.size.clone());
            if let Some(seed) = spec.seed {
                config.insert("seed".to_owned(), format!("{seed:#x}"));
            }
            Ok(config)
        }
        fn run(&self, spec: &JobSpec) -> Result<String, String> {
            if spec.experiments.iter().any(|e| e == "explode") {
                panic!("kaboom");
            }
            if spec.experiments.iter().any(|e| e == "fail") {
                return Err("synthetic failure".to_owned());
            }
            Ok(format!("result for {}", spec.experiments.join("+")))
        }
    }

    fn spec(names: &[&str]) -> JobSpec {
        JobSpec {
            experiments: names.iter().map(|s| (*s).to_owned()).collect(),
            size: "tiny".to_owned(),
            ..JobSpec::default()
        }
    }

    #[test]
    fn submit_run_and_cache_hit_round_trip() {
        let sched = Scheduler::new(Arc::new(EchoRunner), SchedulerConfig::default());
        let Submission::Queued { id } = sched.submit(spec(&["table1"])) else {
            panic!("first submission must queue");
        };
        assert_eq!(
            sched.wait_terminal(id, Duration::from_secs(10)),
            Some(JobState::Done)
        );
        let first = sched.status(id).unwrap();
        assert!(!first.cache_hit);
        let body1 = first.body.unwrap();

        let Submission::Hit { id: id2 } = sched.submit(spec(&["table1"])) else {
            panic!("identical resubmission must hit the cache");
        };
        let second = sched.status(id2).unwrap();
        assert!(second.cache_hit);
        assert_eq!(second.state, JobState::Done);
        assert_eq!(second.body.unwrap(), body1, "hit body is byte-identical");

        // a one-field delta misses
        let mut delta = spec(&["table1"]);
        delta.seed = Some(7);
        assert!(matches!(
            delta_submit(&sched, delta),
            Submission::Queued { .. }
        ));
        sched.shutdown();
    }

    fn delta_submit(sched: &Scheduler, spec: JobSpec) -> Submission {
        sched.submit(spec)
    }

    #[test]
    fn invalid_specs_and_failures_are_typed() {
        let sched = Scheduler::new(Arc::new(EchoRunner), SchedulerConfig::default());
        let mut bad = spec(&["table1"]);
        bad.size = "bogus".to_owned();
        assert!(matches!(sched.submit(bad), Submission::Invalid(_)));

        let Submission::Queued { id } = sched.submit(spec(&["fail"])) else {
            panic!("queued");
        };
        assert_eq!(
            sched.wait_terminal(id, Duration::from_secs(10)),
            Some(JobState::Failed)
        );
        let status = sched.status(id).unwrap();
        assert!(status.error.unwrap().contains("synthetic failure"));

        // a panicking runner becomes a failed job, not a dead worker
        let Submission::Queued { id } = sched.submit(spec(&["explode"])) else {
            panic!("queued");
        };
        assert_eq!(
            sched.wait_terminal(id, Duration::from_secs(10)),
            Some(JobState::Failed)
        );
        assert!(sched.status(id).unwrap().error.unwrap().contains("kaboom"));
        // pool still works
        let Submission::Queued { id } = sched.submit(spec(&["table2"])) else {
            panic!("queued");
        };
        assert_eq!(
            sched.wait_terminal(id, Duration::from_secs(10)),
            Some(JobState::Done)
        );
        sched.shutdown();
    }

    #[test]
    fn stats_document_has_the_expected_shape() {
        let sched = Scheduler::new(Arc::new(EchoRunner), SchedulerConfig::default());
        let Submission::Queued { id } = sched.submit(spec(&["table1"])) else {
            panic!("queued");
        };
        sched.wait_terminal(id, Duration::from_secs(10));
        let stats = sched.stats_json();
        assert_eq!(
            stats.get("schema").unwrap().as_str(),
            Some("foldic-serve-stats/1")
        );
        assert_eq!(
            stats.get("jobs").unwrap().get("done").unwrap().as_f64(),
            Some(1.0)
        );
        assert_eq!(
            stats
                .get("counters")
                .unwrap()
                .get("submitted")
                .unwrap()
                .as_f64(),
            Some(1.0)
        );
        sched.shutdown();
    }
}
