//! A minimal blocking HTTP/1.1 client for the load generator and tests.
//!
//! One request per connection, matching the server's `Connection: close`
//! model. The response parser is as bounded as the server's request
//! parser: capped status/header lines, and a body read that trusts
//! `Content-Length` when present but falls back to read-to-EOF (the
//! server always closes after one response).

use foldic_obs::json::Json;
use std::io::{BufRead, BufReader, Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::time::Duration;

/// Longest accepted response status or header line.
const MAX_LINE: usize = 8192;
/// Largest accepted response body (manifests are tens of KiB).
const MAX_BODY: usize = 64 << 20;

/// A parsed HTTP response.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HttpResponse {
    /// Status code.
    pub status: u16,
    /// Headers in arrival order, names lower-cased.
    pub headers: Vec<(String, String)>,
    /// Response body bytes.
    pub body: Vec<u8>,
}

impl HttpResponse {
    /// First value of a header, by lower-case name.
    pub fn header(&self, name: &str) -> Option<&str> {
        self.headers
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, v)| v.as_str())
    }

    /// The body as UTF-8 text.
    ///
    /// # Errors
    ///
    /// A message when the body is not UTF-8.
    pub fn body_text(&self) -> Result<&str, String> {
        std::str::from_utf8(&self.body).map_err(|e| format!("body is not UTF-8: {e}"))
    }

    /// The body parsed as JSON.
    ///
    /// # Errors
    ///
    /// A message when the body is not UTF-8 or not valid JSON.
    pub fn body_json(&self) -> Result<Json, String> {
        Json::parse(self.body_text()?).map_err(|e| format!("body is not JSON: {e}"))
    }
}

fn read_line(reader: &mut dyn BufRead, what: &str) -> std::io::Result<String> {
    let mut buf = Vec::new();
    loop {
        let mut byte = [0u8; 1];
        match reader.read(&mut byte)? {
            0 => {
                return Err(std::io::Error::new(
                    std::io::ErrorKind::UnexpectedEof,
                    format!("truncated {what}"),
                ))
            }
            _ => {
                if byte[0] == b'\n' {
                    if buf.last() == Some(&b'\r') {
                        buf.pop();
                    }
                    return String::from_utf8(buf).map_err(|e| {
                        std::io::Error::new(
                            std::io::ErrorKind::InvalidData,
                            format!("{what} is not UTF-8: {e}"),
                        )
                    });
                }
                buf.push(byte[0]);
                if buf.len() > MAX_LINE {
                    return Err(std::io::Error::new(
                        std::io::ErrorKind::InvalidData,
                        format!("{what} exceeds {MAX_LINE} bytes"),
                    ));
                }
            }
        }
    }
}

/// Sends one request and reads the one response.
///
/// # Errors
///
/// Propagates connect/read/write failures and malformed responses as
/// `std::io::Error`.
pub fn request(
    addr: SocketAddr,
    method: &str,
    path: &str,
    body: Option<&str>,
    timeout: Duration,
) -> std::io::Result<HttpResponse> {
    request_with_headers(addr, method, path, &[], body, timeout)
}

/// Like [`request`], with extra request headers — e.g. an
/// `x-request-id` the daemon echoes through its telemetry.
///
/// # Errors
///
/// See [`request`].
pub fn request_with_headers(
    addr: SocketAddr,
    method: &str,
    path: &str,
    headers: &[(&str, &str)],
    body: Option<&str>,
    timeout: Duration,
) -> std::io::Result<HttpResponse> {
    let stream = TcpStream::connect_timeout(&addr, timeout)?;
    stream.set_read_timeout(Some(timeout))?;
    stream.set_write_timeout(Some(timeout))?;
    let mut writer = stream.try_clone()?;
    let body_bytes = body.map(str::as_bytes).unwrap_or_default();
    write!(writer, "{method} {path} HTTP/1.1\r\nHost: {addr}\r\n")?;
    for (name, value) in headers {
        write!(writer, "{name}: {value}\r\n")?;
    }
    write!(writer, "Content-Length: {}\r\n\r\n", body_bytes.len())?;
    writer.write_all(body_bytes)?;
    writer.flush()?;

    let mut reader = BufReader::new(stream);
    let status_line = read_line(&mut reader, "status line")?;
    let status = status_line
        .split(' ')
        .nth(1)
        .and_then(|s| s.parse::<u16>().ok())
        .ok_or_else(|| {
            std::io::Error::new(
                std::io::ErrorKind::InvalidData,
                format!("malformed status line `{status_line}`"),
            )
        })?;
    let mut headers = Vec::new();
    loop {
        let line = read_line(&mut reader, "header")?;
        if line.is_empty() {
            break;
        }
        if let Some((name, value)) = line.split_once(':') {
            headers.push((name.to_ascii_lowercase(), value.trim().to_owned()));
        }
    }
    let length = headers
        .iter()
        .find(|(n, _)| n == "content-length")
        .and_then(|(_, v)| v.parse::<usize>().ok());
    let body = match length {
        Some(len) if len > MAX_BODY => {
            return Err(std::io::Error::new(
                std::io::ErrorKind::InvalidData,
                format!("body of {len} bytes exceeds the {MAX_BODY}-byte limit"),
            ))
        }
        Some(len) => {
            let mut body = vec![0u8; len];
            reader.read_exact(&mut body)?;
            body
        }
        None => {
            let mut body = Vec::new();
            reader.take(MAX_BODY as u64).read_to_end(&mut body)?;
            body
        }
    };
    Ok(HttpResponse {
        status,
        headers,
        body,
    })
}

/// `GET path`.
///
/// # Errors
///
/// See [`request`].
pub fn get(addr: SocketAddr, path: &str, timeout: Duration) -> std::io::Result<HttpResponse> {
    request(addr, "GET", path, None, timeout)
}

/// `POST path` with a JSON document body.
///
/// # Errors
///
/// See [`request`].
pub fn post_json(
    addr: SocketAddr,
    path: &str,
    doc: &Json,
    timeout: Duration,
) -> std::io::Result<HttpResponse> {
    request(addr, "POST", path, Some(&doc.to_compact()), timeout)
}

/// `POST path` with an empty body (cancel, shutdown).
///
/// # Errors
///
/// See [`request`].
pub fn post(addr: SocketAddr, path: &str, timeout: Duration) -> std::io::Result<HttpResponse> {
    request(addr, "POST", path, None, timeout)
}
