//! A minimal blocking HTTP/1.1 client for the load generator and tests.
//!
//! One request per connection, matching the server's `Connection: close`
//! model. The response parser is as bounded as the server's request
//! parser: capped status/header lines, and a body read that trusts
//! `Content-Length` when present but falls back to read-to-EOF (the
//! server always closes after one response).
//!
//! For submissions that must survive flaky transport there is
//! [`post_json_idempotent`]: bounded retry with deterministic seeded
//! jittered exponential backoff, honoring the daemon's `Retry-After` on
//! 429/503, and carrying the **spec digest as an idempotency key**
//! ([`idempotency_key_for`]) so a retried POST whose first ack was lost
//! on the wire resolves to the already-accepted job instead of
//! double-enqueuing the study.

use crate::job::JobSpec;
use foldic_obs::json::Json;
use foldic_obs::manifest::digest_report;
use rand::{rngs::StdRng, Rng, SeedableRng};
use std::io::{BufRead, BufReader, Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::time::Duration;

/// Longest accepted response status or header line.
const MAX_LINE: usize = 8192;
/// Largest accepted response body (manifests are tens of KiB).
const MAX_BODY: usize = 64 << 20;

/// A parsed HTTP response.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HttpResponse {
    /// Status code.
    pub status: u16,
    /// Headers in arrival order, names lower-cased.
    pub headers: Vec<(String, String)>,
    /// Response body bytes.
    pub body: Vec<u8>,
}

impl HttpResponse {
    /// First value of a header, by lower-case name.
    pub fn header(&self, name: &str) -> Option<&str> {
        self.headers
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, v)| v.as_str())
    }

    /// The body as UTF-8 text.
    ///
    /// # Errors
    ///
    /// A message when the body is not UTF-8.
    pub fn body_text(&self) -> Result<&str, String> {
        std::str::from_utf8(&self.body).map_err(|e| format!("body is not UTF-8: {e}"))
    }

    /// The body parsed as JSON.
    ///
    /// # Errors
    ///
    /// A message when the body is not UTF-8 or not valid JSON.
    pub fn body_json(&self) -> Result<Json, String> {
        Json::parse(self.body_text()?).map_err(|e| format!("body is not JSON: {e}"))
    }
}

fn read_line(reader: &mut dyn BufRead, what: &str) -> std::io::Result<String> {
    let mut buf = Vec::new();
    loop {
        let mut byte = [0u8; 1];
        match reader.read(&mut byte)? {
            0 => {
                return Err(std::io::Error::new(
                    std::io::ErrorKind::UnexpectedEof,
                    format!("truncated {what}"),
                ))
            }
            _ => {
                if byte[0] == b'\n' {
                    if buf.last() == Some(&b'\r') {
                        buf.pop();
                    }
                    return String::from_utf8(buf).map_err(|e| {
                        std::io::Error::new(
                            std::io::ErrorKind::InvalidData,
                            format!("{what} is not UTF-8: {e}"),
                        )
                    });
                }
                buf.push(byte[0]);
                if buf.len() > MAX_LINE {
                    return Err(std::io::Error::new(
                        std::io::ErrorKind::InvalidData,
                        format!("{what} exceeds {MAX_LINE} bytes"),
                    ));
                }
            }
        }
    }
}

/// Sends one request and reads the one response.
///
/// # Errors
///
/// Propagates connect/read/write failures and malformed responses as
/// `std::io::Error`.
pub fn request(
    addr: SocketAddr,
    method: &str,
    path: &str,
    body: Option<&str>,
    timeout: Duration,
) -> std::io::Result<HttpResponse> {
    request_with_headers(addr, method, path, &[], body, timeout)
}

/// Like [`request`], with extra request headers — e.g. an
/// `x-request-id` the daemon echoes through its telemetry.
///
/// # Errors
///
/// See [`request`].
pub fn request_with_headers(
    addr: SocketAddr,
    method: &str,
    path: &str,
    headers: &[(&str, &str)],
    body: Option<&str>,
    timeout: Duration,
) -> std::io::Result<HttpResponse> {
    let stream = TcpStream::connect_timeout(&addr, timeout)?;
    stream.set_read_timeout(Some(timeout))?;
    stream.set_write_timeout(Some(timeout))?;
    let mut writer = stream.try_clone()?;
    let body_bytes = body.map(str::as_bytes).unwrap_or_default();
    write!(writer, "{method} {path} HTTP/1.1\r\nHost: {addr}\r\n")?;
    for (name, value) in headers {
        write!(writer, "{name}: {value}\r\n")?;
    }
    write!(writer, "Content-Length: {}\r\n\r\n", body_bytes.len())?;
    writer.write_all(body_bytes)?;
    writer.flush()?;

    let mut reader = BufReader::new(stream);
    let status_line = read_line(&mut reader, "status line")?;
    let status = status_line
        .split(' ')
        .nth(1)
        .and_then(|s| s.parse::<u16>().ok())
        .ok_or_else(|| {
            std::io::Error::new(
                std::io::ErrorKind::InvalidData,
                format!("malformed status line `{status_line}`"),
            )
        })?;
    let mut headers = Vec::new();
    loop {
        let line = read_line(&mut reader, "header")?;
        if line.is_empty() {
            break;
        }
        if let Some((name, value)) = line.split_once(':') {
            headers.push((name.to_ascii_lowercase(), value.trim().to_owned()));
        }
    }
    let length = headers
        .iter()
        .find(|(n, _)| n == "content-length")
        .and_then(|(_, v)| v.parse::<usize>().ok());
    let body = match length {
        Some(len) if len > MAX_BODY => {
            return Err(std::io::Error::new(
                std::io::ErrorKind::InvalidData,
                format!("body of {len} bytes exceeds the {MAX_BODY}-byte limit"),
            ))
        }
        Some(len) => {
            let mut body = vec![0u8; len];
            reader.read_exact(&mut body)?;
            body
        }
        None => {
            let mut body = Vec::new();
            reader.take(MAX_BODY as u64).read_to_end(&mut body)?;
            body
        }
    };
    Ok(HttpResponse {
        status,
        headers,
        body,
    })
}

/// `GET path`.
///
/// # Errors
///
/// See [`request`].
pub fn get(addr: SocketAddr, path: &str, timeout: Duration) -> std::io::Result<HttpResponse> {
    request(addr, "GET", path, None, timeout)
}

/// `POST path` with a JSON document body.
///
/// # Errors
///
/// See [`request`].
pub fn post_json(
    addr: SocketAddr,
    path: &str,
    doc: &Json,
    timeout: Duration,
) -> std::io::Result<HttpResponse> {
    request(addr, "POST", path, Some(&doc.to_compact()), timeout)
}

/// `POST path` with an empty body (cancel, shutdown).
///
/// # Errors
///
/// See [`request`].
pub fn post(addr: SocketAddr, path: &str, timeout: Duration) -> std::io::Result<HttpResponse> {
    request(addr, "POST", path, None, timeout)
}

/// Retry tuning for [`post_json_idempotent`]. (Named `RetryConfig`, not
/// `RetryPolicy` — the latter is `foldic_fault`'s resume-layer type.)
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RetryConfig {
    /// Total attempts, including the first (clamped to at least 1).
    pub attempts: u32,
    /// Backoff base: attempt `n` waits about `base · 2ⁿ`, jittered.
    pub base: Duration,
    /// Ceiling on any single wait (also caps an honored `Retry-After`).
    pub cap: Duration,
    /// Seed for the jitter stream — same seed, same waits.
    pub seed: u64,
}

impl Default for RetryConfig {
    fn default() -> Self {
        Self {
            attempts: 4,
            base: Duration::from_millis(50),
            cap: Duration::from_secs(5),
            seed: 0,
        }
    }
}

/// The wait before retry number `attempt` (0-based): seeded equal-jitter
/// exponential backoff — half the exponential step is guaranteed, the
/// other half is drawn from `rng` — capped at `cfg.cap` and floored by
/// the server's `Retry-After` hint when one was given (the server knows
/// better than the client when capacity returns). Pure function of
/// `(cfg, attempt, rng state, retry_after)`, so retry schedules are
/// reproducible in tests and load reports.
fn backoff_delay(
    cfg: &RetryConfig,
    attempt: u32,
    rng: &mut StdRng,
    retry_after: Option<Duration>,
) -> Duration {
    let step = cfg
        .base
        .saturating_mul(1u32 << attempt.min(16))
        .min(cfg.cap);
    let half = step / 2;
    let jitter_ns = if half.as_nanos() == 0 {
        0
    } else {
        rng.gen_range(0..half.as_nanos() as u64)
    };
    let jittered = half + Duration::from_nanos(jitter_ns);
    jittered
        .max(retry_after.unwrap_or(Duration::ZERO))
        .min(cfg.cap)
}

/// The idempotency key for a spec: its digest, reformatted to the
/// daemon's token charset (`spec-<16 hex>`). Identical specs — identical
/// studies — always carry the identical key, which is exactly the
/// dedupe granularity a lost-ack retry needs.
pub fn idempotency_key_for(spec: &JobSpec) -> String {
    let digest = digest_report(&spec.to_json().to_compact());
    format!("spec-{}", digest.strip_prefix("fnv64:").unwrap_or(&digest))
}

/// Submits `spec` with bounded retry. Transport errors and 429/503
/// responses are retried (waiting per [`backoff_delay`], honoring
/// `Retry-After`); any other response returns immediately. Every attempt
/// carries the spec's idempotency key, so an attempt that was actually
/// accepted — but whose ack was lost — is answered on retry with the
/// original job (`idempotent_replay`) instead of a duplicate.
///
/// # Errors
///
/// The last attempt's transport error, when all attempts failed to get
/// an HTTP response at all.
pub fn post_json_idempotent(
    addr: SocketAddr,
    spec: &JobSpec,
    cfg: &RetryConfig,
    timeout: Duration,
) -> std::io::Result<HttpResponse> {
    let key = idempotency_key_for(spec);
    let body = spec.to_json().to_compact();
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let attempts = cfg.attempts.max(1);
    let mut last_err = None;
    for attempt in 0..attempts {
        match request_with_headers(
            addr,
            "POST",
            "/jobs",
            &[("x-idempotency-key", &key)],
            Some(&body),
            timeout,
        ) {
            Ok(response) if matches!(response.status, 429 | 503) => {
                if attempt + 1 == attempts {
                    return Ok(response);
                }
                let retry_after = response
                    .header("retry-after")
                    .and_then(|v| v.parse::<u64>().ok())
                    .map(Duration::from_secs);
                std::thread::sleep(backoff_delay(cfg, attempt, &mut rng, retry_after));
            }
            Ok(response) => return Ok(response),
            Err(e) => {
                if attempt + 1 == attempts {
                    return Err(e);
                }
                last_err = Some(e);
                std::thread::sleep(backoff_delay(cfg, attempt, &mut rng, None));
            }
        }
    }
    // Unreachable: the loop always returns on its last attempt.
    Err(last_err.unwrap_or_else(|| std::io::Error::other("no attempts made")))
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::net::TcpListener;

    #[test]
    fn idempotency_keys_are_stable_and_token_safe() {
        let spec = JobSpec {
            experiments: vec!["table1".to_owned()],
            size: "tiny".to_owned(),
            ..JobSpec::default()
        };
        let a = idempotency_key_for(&spec);
        let b = idempotency_key_for(&spec);
        assert_eq!(a, b, "same spec, same key");
        assert!(a.starts_with("spec-"), "{a}");
        assert!(
            a.bytes()
                .all(|c| c.is_ascii_alphanumeric() || matches!(c, b'.' | b'_' | b'-')),
            "key must pass the daemon's token validation: {a}"
        );
        let mut other = spec.clone();
        other.seed = Some(9);
        assert_ne!(
            a,
            idempotency_key_for(&other),
            "different study, different key"
        );
    }

    #[test]
    fn backoff_is_deterministic_bounded_and_honors_retry_after() {
        let cfg = RetryConfig {
            attempts: 5,
            base: Duration::from_millis(8),
            cap: Duration::from_millis(100),
            seed: 42,
        };
        let delays: Vec<Duration> = {
            let mut rng = StdRng::seed_from_u64(cfg.seed);
            (0..4)
                .map(|a| backoff_delay(&cfg, a, &mut rng, None))
                .collect()
        };
        let replay: Vec<Duration> = {
            let mut rng = StdRng::seed_from_u64(cfg.seed);
            (0..4)
                .map(|a| backoff_delay(&cfg, a, &mut rng, None))
                .collect()
        };
        assert_eq!(delays, replay, "same seed, same schedule");
        for (attempt, d) in delays.iter().enumerate() {
            let step = cfg.base * (1 << attempt as u32);
            assert!(*d >= step.min(cfg.cap) / 2, "at least half the step");
            assert!(*d <= cfg.cap, "never beyond the cap");
        }
        // Retry-After floors the wait (still capped)
        let mut rng = StdRng::seed_from_u64(1);
        let floored = backoff_delay(&cfg, 0, &mut rng, Some(Duration::from_secs(3)));
        assert_eq!(floored, cfg.cap, "3s hint capped at 100ms");
    }

    #[test]
    fn retried_post_recovers_from_shed_responses() {
        // A stub daemon: sheds the first submission with 503 + Retry-After,
        // accepts the second. The retrying client must land on 202 and
        // send its idempotency key both times.
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let server = std::thread::spawn(move || {
            let mut keys = Vec::new();
            for (i, stream) in listener.incoming().take(2).enumerate() {
                let mut stream = stream.unwrap();
                let mut reader = BufReader::new(stream.try_clone().unwrap());
                let mut line = String::new();
                loop {
                    line.clear();
                    reader.read_line(&mut line).unwrap();
                    let trimmed = line.trim_end();
                    if let Some(v) = trimmed
                        .to_ascii_lowercase()
                        .strip_prefix("x-idempotency-key:")
                    {
                        keys.push(v.trim().to_owned());
                    }
                    if trimmed.is_empty() {
                        break;
                    }
                }
                let body = if i == 0 {
                    "{\"error\":\"shed\"}"
                } else {
                    "{\"job\":1}"
                };
                let status = if i == 0 {
                    "503 Service Unavailable\r\nRetry-After: 0"
                } else {
                    "202 Accepted"
                };
                write!(
                    stream,
                    "HTTP/1.1 {status}\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{body}",
                    body.len()
                )
                .unwrap();
            }
            keys
        });
        let spec = JobSpec {
            experiments: vec!["table1".to_owned()],
            size: "tiny".to_owned(),
            ..JobSpec::default()
        };
        let cfg = RetryConfig {
            attempts: 3,
            base: Duration::from_millis(1),
            cap: Duration::from_millis(5),
            seed: 7,
        };
        let response = post_json_idempotent(addr, &spec, &cfg, Duration::from_secs(5)).unwrap();
        assert_eq!(response.status, 202);
        let keys = server.join().unwrap();
        assert_eq!(keys.len(), 2, "both attempts carried the key");
        assert_eq!(keys[0], keys[1]);
        assert_eq!(keys[0], idempotency_key_for(&spec));
    }
}
