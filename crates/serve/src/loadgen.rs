//! Seeded multi-client load generator and its `foldic-serve-bench/1`
//! report.
//!
//! The generator replays a deterministic mix of job kinds against a
//! running daemon:
//!
//! * **hit** — resubmission of a config warmed into the cache before
//!   measurement starts; must be answered from the cache;
//! * **miss** — a config with a fresh seed override, never seen before;
//!   must compute;
//! * **cancel** — a fresh config submitted and cancelled immediately;
//!   whether the cancel lands before a worker picks the job up is a race
//!   the report records rather than asserts;
//! * **deadline** — a fresh config with a generous wall-clock budget,
//!   exercising the exclusive-dispatch path end to end.
//!
//! The *plan* (which job index is which kind, which seed it carries) is a
//! pure function of the generator seed, so two runs against equivalent
//! daemons replay byte-identical traffic. Latencies and throughput are of
//! course wall-clock observations; the report separates the planned mix
//! from the observed outcome so gates can check invariants (no errors, no
//! failed jobs, every planned hit actually hit) without asserting on
//! timing.
//!
//! Since `foldic-serve-bench/2` the report also embeds the **server
//! side**: `/metrics` is scraped right after warmup and again after
//! measurement, the final exposition text is stored verbatim, and the
//! counter deltas between the two scrapes ride along — so the gate can
//! check that the daemon's own accounting (terminal-state counts, cache
//! hits/misses, submit statuses) agrees *exactly* with what the clients
//! observed.

use crate::client;
use crate::job::JobSpec;
use crate::telemetry;
use foldic_obs::json::Json;
use rand::{rngs::StdRng, Rng, SeedableRng};
use std::collections::BTreeMap;
use std::net::SocketAddr;
use std::sync::Mutex;
use std::time::{Duration, Instant};

/// Schema identifier of the load report.
pub const REPORT_SCHEMA: &str = "foldic-serve-bench/2";

/// Relative weights of the four job kinds.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MixWeights {
    /// Cache-hit resubmissions.
    pub hit: f64,
    /// Fresh-config computations.
    pub miss: f64,
    /// Submit-then-cancel jobs.
    pub cancel: f64,
    /// Deadline-bounded jobs.
    pub deadline: f64,
}

impl Default for MixWeights {
    fn default() -> Self {
        Self {
            hit: 60.0,
            miss: 20.0,
            cancel: 10.0,
            deadline: 10.0,
        }
    }
}

impl MixWeights {
    /// Parses `hit=60,miss=20,cancel=10,deadline=10` (unlisted kinds
    /// default to weight 0; at least one weight must be positive).
    ///
    /// # Errors
    ///
    /// A message for malformed entries, unknown kinds or an all-zero mix.
    pub fn parse(text: &str) -> Result<Self, String> {
        let mut mix = Self {
            hit: 0.0,
            miss: 0.0,
            cancel: 0.0,
            deadline: 0.0,
        };
        for part in text.split(',') {
            let (kind, weight) = part
                .split_once('=')
                .ok_or_else(|| format!("bad mix entry `{part}` (want kind=weight)"))?;
            let weight: f64 = weight
                .parse()
                .map_err(|_| format!("bad mix weight `{weight}`"))?;
            if !(weight.is_finite() && weight >= 0.0) {
                return Err(format!("mix weight must be >= 0, got {weight}"));
            }
            match kind.trim() {
                "hit" => mix.hit = weight,
                "miss" => mix.miss = weight,
                "cancel" => mix.cancel = weight,
                "deadline" => mix.deadline = weight,
                other => return Err(format!("unknown mix kind `{other}`")),
            }
        }
        if mix.hit + mix.miss + mix.cancel + mix.deadline <= 0.0 {
            return Err("mix weights sum to zero".to_owned());
        }
        Ok(mix)
    }
}

/// Load-generator configuration.
#[derive(Debug, Clone)]
pub struct LoadConfig {
    /// Daemon address.
    pub addr: SocketAddr,
    /// Measured jobs to submit (warmup submissions are extra).
    pub jobs: usize,
    /// Concurrent client threads.
    pub clients: usize,
    /// Generator seed; the whole traffic plan derives from it.
    pub seed: u64,
    /// Job-kind mix.
    pub mix: MixWeights,
    /// Experiments every job runs.
    pub experiments: Vec<String>,
    /// Design size every job uses.
    pub size: String,
    /// Wall-clock budget given to deadline-kind jobs.
    pub deadline_secs: f64,
    /// Per-request socket timeout.
    pub timeout: Duration,
    /// How long to poll one job for a terminal state before counting it
    /// as an error.
    pub poll_timeout: Duration,
}

impl LoadConfig {
    /// Defaults tuned for the tiny-design `table1` study.
    pub fn new(addr: SocketAddr) -> Self {
        Self {
            addr,
            jobs: 24,
            clients: 4,
            seed: 0xF01D_1C5E,
            mix: MixWeights::default(),
            experiments: vec!["table1".to_owned()],
            size: "tiny".to_owned(),
            deadline_secs: 30.0,
            timeout: Duration::from_secs(10),
            poll_timeout: Duration::from_secs(120),
        }
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Kind {
    Hit,
    Miss,
    Cancel,
    Deadline,
}

impl Kind {
    fn as_str(self) -> &'static str {
        match self {
            Kind::Hit => "hit",
            Kind::Miss => "miss",
            Kind::Cancel => "cancel",
            Kind::Deadline => "deadline",
        }
    }
}

/// One planned submission.
#[derive(Debug, Clone)]
struct Planned {
    kind: Kind,
    spec: JobSpec,
}

/// Distinct warm configs hit-kind jobs rotate through.
const WARM_POOL: usize = 4;

/// Builds the deterministic traffic plan: the warm pool plus one planned
/// submission per measured job.
fn plan(cfg: &LoadConfig) -> (Vec<JobSpec>, Vec<Planned>) {
    let base = JobSpec {
        experiments: cfg.experiments.clone(),
        size: cfg.size.clone(),
        seed: None,
        threads: 1,
        deadline_secs: None,
        design_cells: None,
    };
    // Seeds travel as JSON numbers (f64), so derived seeds are masked to
    // the 53-bit exactly-representable range the job schema accepts.
    let json_safe = |seed: u64| seed & ((1u64 << 53) - 1);
    let pool: Vec<JobSpec> = (0..WARM_POOL)
        .map(|i| {
            let mut spec = base.clone();
            spec.seed = Some(json_safe(rand::derive_seed(&[
                "loadgen-pool",
                &format!("{:#x}", cfg.seed),
                &i.to_string(),
            ])));
            spec
        })
        .collect();

    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let total = cfg.mix.hit + cfg.mix.miss + cfg.mix.cancel + cfg.mix.deadline;
    let planned = (0..cfg.jobs)
        .map(|i| {
            let roll = rng.gen_range(0.0..total);
            let kind = if roll < cfg.mix.hit {
                Kind::Hit
            } else if roll < cfg.mix.hit + cfg.mix.miss {
                Kind::Miss
            } else if roll < cfg.mix.hit + cfg.mix.miss + cfg.mix.cancel {
                Kind::Cancel
            } else {
                Kind::Deadline
            };
            let mut spec = base.clone();
            match kind {
                Kind::Hit => {
                    spec.seed = pool[rng.gen_range(0..pool.len())].seed;
                }
                Kind::Miss | Kind::Cancel | Kind::Deadline => {
                    // A seed no warm config and no other job carries, so
                    // the first submission is always a genuine miss.
                    spec.seed = Some(json_safe(rand::derive_seed(&[
                        "loadgen-fresh",
                        &format!("{:#x}", cfg.seed),
                        &i.to_string(),
                    ])));
                    if kind == Kind::Deadline {
                        spec.deadline_secs = Some(cfg.deadline_secs);
                    }
                }
            }
            Planned { kind, spec }
        })
        .collect();
    (pool, planned)
}

#[derive(Debug, Default)]
struct Outcome {
    latencies_ms: Vec<f64>,
    hits: u64,
    done: u64,
    cancelled: u64,
    failed: u64,
    rejected: u64,
    errors: Vec<String>,
    bytes: u64,
}

/// Drives one planned job to a terminal state, recording the outcome.
fn drive(cfg: &LoadConfig, job: &Planned, out: &Mutex<Outcome>) {
    let record_error = |msg: String| {
        let mut out = out.lock().unwrap_or_else(|e| e.into_inner());
        out.errors.push(format!("{}: {msg}", job.kind.as_str()));
    };
    let started = Instant::now();
    let submit = match client::post_json(cfg.addr, "/jobs", &job.spec.to_json(), cfg.timeout) {
        Ok(response) => response,
        Err(e) => return record_error(format!("submit failed: {e}")),
    };
    match submit.status {
        200 => {
            // answered from the cache
            let latency = started.elapsed().as_secs_f64() * 1e3;
            let mut out = out.lock().unwrap_or_else(|e| e.into_inner());
            out.hits += 1;
            out.done += 1;
            out.latencies_ms.push(latency);
            return;
        }
        202 => {}
        429 => {
            let mut out = out.lock().unwrap_or_else(|e| e.into_inner());
            out.rejected += 1;
            return;
        }
        status => {
            let body = submit.body_text().unwrap_or("<binary>").to_owned();
            return record_error(format!("submit returned {status}: {body}"));
        }
    }
    let id = match submit
        .body_json()
        .ok()
        .and_then(|doc| doc.get("job").and_then(Json::as_f64))
    {
        Some(id) => id as u64,
        None => return record_error("202 without a job id".to_owned()),
    };

    if job.kind == Kind::Cancel {
        let path = format!("/jobs/{id}/cancel");
        if let Err(e) = client::post(cfg.addr, &path, cfg.timeout) {
            return record_error(format!("cancel failed: {e}"));
        }
    }

    // Poll to a terminal state.
    let path = format!("/jobs/{id}");
    let deadline = started + cfg.poll_timeout;
    loop {
        let status = match client::get(cfg.addr, &path, cfg.timeout) {
            Ok(response) => response,
            Err(e) => return record_error(format!("status poll failed: {e}")),
        };
        let doc = match status.body_json() {
            Ok(doc) => doc,
            Err(e) => return record_error(e),
        };
        let state = doc
            .get("state")
            .and_then(Json::as_str)
            .unwrap_or("?")
            .to_owned();
        match state.as_str() {
            "done" => {
                let latency = started.elapsed().as_secs_f64() * 1e3;
                let result_path = format!("/jobs/{id}/result");
                let body_len = match client::get(cfg.addr, &result_path, cfg.timeout) {
                    Ok(r) if r.status == 200 => r.body.len() as u64,
                    Ok(r) => return record_error(format!("result returned {}", r.status)),
                    Err(e) => return record_error(format!("result fetch failed: {e}")),
                };
                let hit = doc.get("cache").and_then(Json::as_str) == Some("hit");
                let mut out = out.lock().unwrap_or_else(|e| e.into_inner());
                out.done += 1;
                if hit {
                    out.hits += 1;
                }
                out.bytes += body_len;
                out.latencies_ms.push(latency);
                return;
            }
            "cancelled" => {
                let latency = started.elapsed().as_secs_f64() * 1e3;
                let mut out = out.lock().unwrap_or_else(|e| e.into_inner());
                out.cancelled += 1;
                out.latencies_ms.push(latency);
                return;
            }
            "failed" => {
                let mut out = out.lock().unwrap_or_else(|e| e.into_inner());
                out.failed += 1;
                return;
            }
            _ => {}
        }
        if Instant::now() >= deadline {
            return record_error(format!("job {id} still `{state}` after poll timeout"));
        }
        std::thread::sleep(Duration::from_millis(10));
    }
}

/// The daemon's own accounting of the measured window, from `/metrics`.
#[derive(Debug, Clone, PartialEq)]
pub struct ServerSide {
    /// Counter-series deltas (final minus post-warmup baseline) for
    /// every `*_total` series present in the final scrape.
    pub deltas: BTreeMap<String, u64>,
    /// The final `/metrics` exposition body, verbatim.
    pub scrape: String,
}

/// The measured result of one load run.
#[derive(Debug, Clone, PartialEq)]
pub struct LoadReport {
    /// Measured jobs submitted.
    pub jobs: usize,
    /// Client threads used.
    pub clients: usize,
    /// Generator seed, hex.
    pub seed: String,
    /// Planned jobs per kind.
    pub planned: BTreeMap<String, u64>,
    /// Cache hits observed.
    pub hits: u64,
    /// Jobs that finished `done`.
    pub done: u64,
    /// Jobs that finished `cancelled`.
    pub cancelled: u64,
    /// Jobs that finished `failed`.
    pub failed: u64,
    /// Submissions rejected with 429.
    pub rejected: u64,
    /// Client-side errors (transport failures, unexpected statuses).
    pub errors: Vec<String>,
    /// Result bytes fetched.
    pub bytes: u64,
    /// Hit ratio over terminal jobs.
    pub hit_ratio: f64,
    /// Latency percentiles over terminal jobs, milliseconds.
    pub latency_ms: BTreeMap<String, f64>,
    /// Terminal jobs per wall-clock second.
    pub throughput_jps: f64,
    /// Measurement wall time, seconds.
    pub wall_s: f64,
    /// Server-side counter deltas and final exposition (absent in
    /// reports from tooling that never scraped `/metrics`).
    pub server: Option<ServerSide>,
}

fn percentile(sorted: &[f64], p: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let rank = ((p / 100.0) * (sorted.len() as f64 - 1.0)).round() as usize;
    sorted[rank.min(sorted.len() - 1)]
}

impl LoadReport {
    /// Serializes the report to its schema.
    pub fn to_json(&self) -> Json {
        let counts = |m: &BTreeMap<String, u64>| {
            Json::Obj(
                m.iter()
                    .map(|(k, v)| (k.clone(), Json::Num(*v as f64)))
                    .collect(),
            )
        };
        let mut doc = Json::obj([
            ("schema".to_owned(), Json::Str(REPORT_SCHEMA.to_owned())),
            ("jobs".to_owned(), Json::Num(self.jobs as f64)),
            ("clients".to_owned(), Json::Num(self.clients as f64)),
            ("seed".to_owned(), Json::Str(self.seed.clone())),
            ("planned".to_owned(), counts(&self.planned)),
            (
                "observed".to_owned(),
                Json::obj([
                    ("hits".to_owned(), Json::Num(self.hits as f64)),
                    ("done".to_owned(), Json::Num(self.done as f64)),
                    ("cancelled".to_owned(), Json::Num(self.cancelled as f64)),
                    ("failed".to_owned(), Json::Num(self.failed as f64)),
                    ("rejected".to_owned(), Json::Num(self.rejected as f64)),
                    ("errors".to_owned(), Json::Num(self.errors.len() as f64)),
                ]),
            ),
            (
                "error_samples".to_owned(),
                Json::Arr(
                    self.errors
                        .iter()
                        .take(8)
                        .map(|e| Json::Str(e.clone()))
                        .collect(),
                ),
            ),
            ("bytes".to_owned(), Json::Num(self.bytes as f64)),
            ("hit_ratio".to_owned(), Json::Num(self.hit_ratio)),
            (
                "latency_ms".to_owned(),
                Json::Obj(
                    self.latency_ms
                        .iter()
                        .map(|(k, v)| (k.clone(), Json::Num(*v)))
                        .collect(),
                ),
            ),
            ("throughput_jps".to_owned(), Json::Num(self.throughput_jps)),
            ("wall_s".to_owned(), Json::Num(self.wall_s)),
        ]);
        if let Some(server) = &self.server {
            if let Some(obj) = doc.as_obj_mut() {
                obj.insert(
                    "server".to_owned(),
                    Json::obj([
                        (
                            "deltas".to_owned(),
                            Json::Obj(
                                server
                                    .deltas
                                    .iter()
                                    .map(|(k, v)| (k.clone(), Json::Num(*v as f64)))
                                    .collect(),
                            ),
                        ),
                        ("scrape".to_owned(), Json::Str(server.scrape.clone())),
                    ]),
                );
            }
        }
        doc
    }

    /// Parses and schema-checks a serialized report.
    ///
    /// # Errors
    ///
    /// A message when the text is not JSON, carries the wrong schema, or
    /// is missing required fields.
    pub fn parse(text: &str) -> Result<Self, String> {
        let doc = Json::parse(text).map_err(|e| format!("report is not JSON: {e}"))?;
        match doc.get("schema").and_then(Json::as_str) {
            Some(REPORT_SCHEMA) => {}
            Some(other) => return Err(format!("unexpected schema `{other}`")),
            None => return Err("report has no schema".to_owned()),
        }
        let num = |name: &str| -> Result<f64, String> {
            doc.get(name)
                .and_then(Json::as_f64)
                .ok_or_else(|| format!("report missing `{name}`"))
        };
        let count_map = |name: &str| -> Result<BTreeMap<String, u64>, String> {
            let obj = doc
                .get(name)
                .and_then(Json::as_obj)
                .ok_or_else(|| format!("report missing `{name}`"))?;
            Ok(obj
                .iter()
                .filter_map(|(k, v)| v.as_f64().map(|v| (k.clone(), v as u64)))
                .collect())
        };
        let observed = count_map("observed")?;
        let field = |name: &str| -> u64 { observed.get(name).copied().unwrap_or(0) };
        Ok(Self {
            jobs: num("jobs")? as usize,
            clients: num("clients")? as usize,
            seed: doc
                .get("seed")
                .and_then(Json::as_str)
                .unwrap_or_default()
                .to_owned(),
            planned: count_map("planned")?,
            hits: field("hits"),
            done: field("done"),
            cancelled: field("cancelled"),
            failed: field("failed"),
            rejected: field("rejected"),
            errors: doc
                .get("error_samples")
                .and_then(Json::as_arr)
                .map(|a| {
                    a.iter()
                        .filter_map(|e| e.as_str().map(str::to_owned))
                        .collect()
                })
                .unwrap_or_default(),
            bytes: num("bytes")? as u64,
            hit_ratio: num("hit_ratio")?,
            latency_ms: doc
                .get("latency_ms")
                .and_then(Json::as_obj)
                .map(|m| {
                    m.iter()
                        .filter_map(|(k, v)| v.as_f64().map(|v| (k.clone(), v)))
                        .collect()
                })
                .unwrap_or_default(),
            throughput_jps: num("throughput_jps")?,
            wall_s: num("wall_s")?,
            server: doc.get("server").and_then(|server| {
                let deltas = server
                    .get("deltas")
                    .and_then(Json::as_obj)?
                    .iter()
                    .filter_map(|(k, v)| v.as_f64().map(|v| (k.clone(), v as u64)))
                    .collect();
                let scrape = server.get("scrape").and_then(Json::as_str)?.to_owned();
                Some(ServerSide { deltas, scrape })
            }),
        })
    }

    /// The offline CI gate: every job reached a terminal state without
    /// client errors or failures, no submission was rejected (the gate
    /// run sizes its queue to fit), and every planned hit actually hit.
    /// Deliberately no wall-time thresholds — CI runs on whatever core
    /// count it gets.
    ///
    /// # Errors
    ///
    /// One message per violated invariant, joined with `; `.
    pub fn gate(&self) -> Result<(), String> {
        let mut problems = Vec::new();
        if !self.errors.is_empty() {
            problems.push(format!(
                "{} client error(s), first: {}",
                self.errors.len(),
                self.errors[0]
            ));
        }
        if self.failed > 0 {
            problems.push(format!("{} job(s) failed", self.failed));
        }
        if self.rejected > 0 {
            problems.push(format!("{} submission(s) rejected", self.rejected));
        }
        let planned_hits = self.planned.get("hit").copied().unwrap_or(0);
        if self.hits < planned_hits {
            problems.push(format!(
                "only {} cache hit(s), planned {planned_hits}",
                self.hits
            ));
        }
        let terminal = self.done + self.cancelled + self.failed;
        if terminal + self.rejected != self.jobs as u64 {
            problems.push(format!(
                "{terminal} terminal + {} rejected != {} submitted",
                self.rejected, self.jobs
            ));
        }
        // Server-side cross-check: the daemon's own counters over the
        // measured window must agree exactly with the client view.
        if let Some(server) = &self.server {
            let delta = |series: &str| server.deltas.get(series).copied().unwrap_or(0);
            let checks: [(&str, String, u64); 5] = [
                ("done jobs", telemetry::jobs_state_series("done"), self.done),
                (
                    "cancelled jobs",
                    telemetry::jobs_state_series("cancelled"),
                    self.cancelled,
                ),
                (
                    "failed jobs",
                    telemetry::jobs_state_series("failed"),
                    self.failed,
                ),
                (
                    "rejections",
                    telemetry::SERIES_JOBS_REJECTED.to_owned(),
                    self.rejected,
                ),
                (
                    "cache hits",
                    telemetry::SERIES_CACHE_HITS.to_owned(),
                    self.hits,
                ),
            ];
            for (what, series, client_count) in checks {
                let server_count = delta(&series);
                if server_count != client_count {
                    problems.push(format!(
                        "server counted {server_count} {what}, clients saw {client_count}"
                    ));
                }
            }
            if self.rejected == 0 {
                // With no rejections the submit-status split and the
                // cache-miss count are exact functions of the plan.
                let planned_deadline = self.planned.get("deadline").copied().unwrap_or(0);
                let expected_misses = (self.jobs as u64) - self.hits - planned_deadline;
                let misses = delta(telemetry::SERIES_CACHE_MISSES);
                if misses != expected_misses {
                    problems.push(format!(
                        "server counted {misses} cache misses, expected {expected_misses}"
                    ));
                }
                let submits_200 = delta(&telemetry::requests_series("submit", "POST", 200));
                if submits_200 != self.hits {
                    problems.push(format!(
                        "server counted {submits_200} hit submits, clients saw {}",
                        self.hits
                    ));
                }
                let submits_202 = delta(&telemetry::requests_series("submit", "POST", 202));
                let expected_202 = (self.jobs as u64) - self.hits;
                if submits_202 != expected_202 {
                    problems.push(format!(
                        "server counted {submits_202} queued submits, expected {expected_202}"
                    ));
                }
            }
        }
        if problems.is_empty() {
            Ok(())
        } else {
            Err(problems.join("; "))
        }
    }
}

/// Scrapes `/metrics`, returning the raw exposition text and its parsed
/// series map.
fn scrape_metrics(cfg: &LoadConfig) -> Result<(String, BTreeMap<String, f64>), String> {
    let response = client::get(cfg.addr, "/metrics", cfg.timeout)
        .map_err(|e| format!("metrics scrape failed: {e}"))?;
    if response.status != 200 {
        return Err(format!("metrics scrape returned {}", response.status));
    }
    let text = response
        .body_text()
        .map_err(|e| format!("metrics body is not text: {e}"))?
        .to_owned();
    let series = foldic_obs::expo::parse_exposition(&text)
        .map_err(|e| format!("metrics scrape does not parse: {e}"))?;
    Ok((text, series))
}

/// Counter deltas between two scrapes: every `*_total` series present in
/// `after`, minus its `before` value (0 when newly appeared).
fn counter_deltas(
    before: &BTreeMap<String, f64>,
    after: &BTreeMap<String, f64>,
) -> BTreeMap<String, u64> {
    after
        .iter()
        .filter(|(series, _)| foldic_obs::expo::family_of(series).ends_with("_total"))
        .map(|(series, &value)| {
            let base = before.get(series).copied().unwrap_or(0.0);
            (series.clone(), (value - base).max(0.0) as u64)
        })
        .collect()
}

/// Runs the load: warms the pool, replays the plan from `clients`
/// threads, aggregates the report.
///
/// # Errors
///
/// A message when warmup cannot complete (daemon unreachable, warm jobs
/// not finishing) or `/metrics` cannot be scraped. Measurement-phase
/// problems are *recorded* in the report instead, so the gate can see
/// them.
pub fn run(cfg: &LoadConfig) -> Result<LoadReport, String> {
    let (pool, planned) = plan(cfg);

    // Warmup: compute each pool config once so every planned hit is a
    // guaranteed hit. Submissions go through the public API like any
    // other job.
    for spec in &pool {
        let response = client::post_json(cfg.addr, "/jobs", &spec.to_json(), cfg.timeout)
            .map_err(|e| format!("warmup submit failed: {e}"))?;
        let id = response
            .body_json()
            .ok()
            .and_then(|doc| doc.get("job").and_then(Json::as_f64))
            .ok_or_else(|| {
                format!(
                    "warmup submit returned {}: {}",
                    response.status,
                    response.body_text().unwrap_or("<binary>")
                )
            })? as u64;
        let path = format!("/jobs/{id}");
        let deadline = Instant::now() + cfg.poll_timeout;
        loop {
            let doc = client::get(cfg.addr, &path, cfg.timeout)
                .map_err(|e| format!("warmup poll failed: {e}"))?
                .body_json()?;
            match doc.get("state").and_then(Json::as_str) {
                Some("done") => break,
                Some("failed") | Some("cancelled") => {
                    return Err(format!(
                        "warmup job {id} ended {:?}",
                        doc.get("state").and_then(Json::as_str)
                    ))
                }
                _ => {}
            }
            if Instant::now() >= deadline {
                return Err(format!("warmup job {id} did not finish in time"));
            }
            std::thread::sleep(Duration::from_millis(10));
        }
    }

    // Post-warmup baseline: deltas from here cover exactly the
    // measurement window.
    let (_, baseline) = scrape_metrics(cfg)?;

    // Measurement: split the plan round-robin across client threads.
    let out = Mutex::new(Outcome::default());
    let started = Instant::now();
    std::thread::scope(|scope| {
        let clients = cfg.clients.max(1);
        for c in 0..clients {
            let planned = &planned;
            let out = &out;
            let _ = std::thread::Builder::new()
                .name(format!("foldic-loadgen-{c}"))
                .spawn_scoped(scope, move || {
                    for job in planned.iter().skip(c).step_by(clients) {
                        drive(cfg, job, out);
                    }
                });
        }
    });
    let wall_s = started.elapsed().as_secs_f64();

    // Final scrape: every driven job is terminal by now (drive() polls
    // to a terminal state), so the deltas are settled.
    let (scrape, final_series) = scrape_metrics(cfg)?;
    let server = Some(ServerSide {
        deltas: counter_deltas(&baseline, &final_series),
        scrape,
    });

    let mut outcome = out.into_inner().unwrap_or_else(|e| e.into_inner());
    outcome.latencies_ms.sort_by(|a, b| a.total_cmp(b));
    let mut planned_counts: BTreeMap<String, u64> = BTreeMap::new();
    for kind in ["hit", "miss", "cancel", "deadline"] {
        planned_counts.insert(kind.to_owned(), 0);
    }
    for job in &planned {
        *planned_counts
            .entry(job.kind.as_str().to_owned())
            .or_default() += 1;
    }
    let terminal = outcome.done + outcome.cancelled + outcome.failed;
    let latency_ms: BTreeMap<String, f64> = [
        ("p50", percentile(&outcome.latencies_ms, 50.0)),
        ("p90", percentile(&outcome.latencies_ms, 90.0)),
        ("p99", percentile(&outcome.latencies_ms, 99.0)),
        ("max", outcome.latencies_ms.last().copied().unwrap_or(0.0)),
    ]
    .into_iter()
    .map(|(k, v)| (k.to_owned(), v))
    .collect();
    Ok(LoadReport {
        jobs: cfg.jobs,
        clients: cfg.clients,
        seed: format!("{:#x}", cfg.seed),
        planned: planned_counts,
        hits: outcome.hits,
        done: outcome.done,
        cancelled: outcome.cancelled,
        failed: outcome.failed,
        rejected: outcome.rejected,
        errors: outcome.errors,
        bytes: outcome.bytes,
        hit_ratio: if terminal == 0 {
            0.0
        } else {
            outcome.hits as f64 / terminal as f64
        },
        latency_ms,
        throughput_jps: if wall_s > 0.0 {
            terminal as f64 / wall_s
        } else {
            0.0
        },
        wall_s,
        server,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mix_parses_and_rejects() {
        let mix = MixWeights::parse("hit=50,miss=30,cancel=10,deadline=10").unwrap();
        assert_eq!(mix.hit, 50.0);
        assert_eq!(mix.deadline, 10.0);
        assert!(MixWeights::parse("hit=0,miss=0").is_err());
        assert!(MixWeights::parse("bogus=1").is_err());
        assert!(MixWeights::parse("hit").is_err());
        assert!(MixWeights::parse("hit=-1").is_err());
    }

    #[test]
    fn plan_is_deterministic_and_misses_are_unique() {
        let cfg = LoadConfig::new("127.0.0.1:1".parse().unwrap());
        let (pool_a, plan_a) = plan(&cfg);
        let (pool_b, plan_b) = plan(&cfg);
        assert_eq!(pool_a.len(), WARM_POOL);
        assert_eq!(
            pool_a.iter().map(|s| s.seed).collect::<Vec<_>>(),
            pool_b.iter().map(|s| s.seed).collect::<Vec<_>>()
        );
        assert_eq!(plan_a.len(), cfg.jobs);
        for (a, b) in plan_a.iter().zip(&plan_b) {
            assert_eq!(a.kind, b.kind);
            assert_eq!(a.spec, b.spec);
        }
        // hit jobs draw from the pool; everything else is unique
        let pool_seeds: Vec<Option<u64>> = pool_a.iter().map(|s| s.seed).collect();
        let mut fresh = std::collections::HashSet::new();
        for job in &plan_a {
            match job.kind {
                Kind::Hit => assert!(pool_seeds.contains(&job.spec.seed)),
                _ => assert!(fresh.insert(job.spec.seed), "duplicate fresh seed"),
            }
        }
        // deadline jobs carry the budget, others do not
        for job in &plan_a {
            assert_eq!(job.spec.deadline_secs.is_some(), job.kind == Kind::Deadline);
        }
    }

    #[test]
    fn report_round_trips_and_gates() {
        let report = LoadReport {
            jobs: 10,
            clients: 2,
            seed: "0xf01d1c5e".to_owned(),
            planned: [("hit", 6u64), ("miss", 2), ("cancel", 1), ("deadline", 1)]
                .into_iter()
                .map(|(k, v)| (k.to_owned(), v))
                .collect(),
            hits: 6,
            done: 9,
            cancelled: 1,
            failed: 0,
            rejected: 0,
            errors: Vec::new(),
            bytes: 12345,
            hit_ratio: 0.6,
            latency_ms: [("p50", 1.0), ("p90", 2.0), ("p99", 3.0), ("max", 3.5)]
                .into_iter()
                .map(|(k, v)| (k.to_owned(), v))
                .collect(),
            throughput_jps: 100.0,
            wall_s: 0.1,
            server: None,
        };
        let text = report.to_json().to_pretty();
        let back = LoadReport::parse(&text).unwrap();
        assert_eq!(back, report);
        assert!(back.gate().is_ok());

        let mut bad = report.clone();
        bad.hits = 3;
        assert!(bad.gate().unwrap_err().contains("cache hit"));
        let mut bad = report.clone();
        bad.failed = 1;
        assert!(bad.gate().unwrap_err().contains("failed"));
        let mut bad = report;
        bad.errors.push("boom".to_owned());
        assert!(bad.gate().unwrap_err().contains("error"));

        assert!(LoadReport::parse("{}").is_err());
        assert!(LoadReport::parse("not json").is_err());
    }

    #[test]
    fn server_side_deltas_round_trip_and_cross_check() {
        let mut report = LoadReport {
            jobs: 10,
            clients: 2,
            seed: "0xf01d1c5e".to_owned(),
            planned: [("hit", 6u64), ("miss", 2), ("cancel", 1), ("deadline", 1)]
                .into_iter()
                .map(|(k, v)| (k.to_owned(), v))
                .collect(),
            hits: 6,
            done: 9,
            cancelled: 1,
            failed: 0,
            rejected: 0,
            errors: Vec::new(),
            bytes: 12345,
            hit_ratio: 0.6,
            latency_ms: BTreeMap::new(),
            throughput_jps: 100.0,
            wall_s: 0.1,
            server: None,
        };
        // A server view that agrees exactly with the client view.
        let deltas: BTreeMap<String, u64> = [
            (telemetry::jobs_state_series("done"), 9),
            (telemetry::jobs_state_series("cancelled"), 1),
            (telemetry::jobs_state_series("failed"), 0),
            (telemetry::SERIES_JOBS_REJECTED.to_owned(), 0),
            (telemetry::SERIES_CACHE_HITS.to_owned(), 6),
            (telemetry::SERIES_CACHE_MISSES.to_owned(), 3),
            (telemetry::requests_series("submit", "POST", 200), 6),
            (telemetry::requests_series("submit", "POST", 202), 4),
        ]
        .into_iter()
        .collect();
        report.server = Some(ServerSide {
            deltas,
            scrape: "# TYPE foldic_serve_jobs_total counter\n".to_owned(),
        });
        let text = report.to_json().to_pretty();
        let back = LoadReport::parse(&text).unwrap();
        assert_eq!(back, report);
        assert!(back.gate().is_ok(), "{:?}", back.gate());

        // A drifted server counter must fail the gate.
        let mut drifted = report.clone();
        if let Some(server) = &mut drifted.server {
            server
                .deltas
                .insert(telemetry::SERIES_CACHE_HITS.to_owned(), 5);
        }
        assert!(drifted.gate().unwrap_err().contains("cache hits"));
        let mut drifted = report;
        if let Some(server) = &mut drifted.server {
            server
                .deltas
                .insert(telemetry::SERIES_CACHE_MISSES.to_owned(), 7);
        }
        assert!(drifted.gate().unwrap_err().contains("cache misses"));
    }

    #[test]
    fn counter_deltas_keep_total_series_only() {
        let before: BTreeMap<String, f64> = [
            ("foldic_serve_cache_hits_total".to_owned(), 4.0),
            ("foldic_serve_queue_depth".to_owned(), 2.0),
        ]
        .into_iter()
        .collect();
        let after: BTreeMap<String, f64> = [
            ("foldic_serve_cache_hits_total".to_owned(), 10.0),
            ("foldic_serve_cache_misses_total".to_owned(), 3.0),
            ("foldic_serve_queue_depth".to_owned(), 0.0),
            (
                "foldic_serve_requests_total{endpoint=\"submit\",method=\"POST\",status=\"202\"}"
                    .to_owned(),
                3.0,
            ),
            (
                "foldic_serve_request_latency_ms_sum{endpoint=\"submit\"}".to_owned(),
                9.0,
            ),
        ]
        .into_iter()
        .collect();
        let deltas = counter_deltas(&before, &after);
        assert_eq!(deltas.get("foldic_serve_cache_hits_total"), Some(&6));
        assert_eq!(deltas.get("foldic_serve_cache_misses_total"), Some(&3));
        assert_eq!(
            deltas.get(
                "foldic_serve_requests_total{endpoint=\"submit\",method=\"POST\",status=\"202\"}"
            ),
            Some(&3)
        );
        assert!(
            !deltas.contains_key("foldic_serve_queue_depth"),
            "gauges excluded"
        );
        assert!(
            !deltas.keys().any(|k| k.contains("latency")),
            "histogram series excluded"
        );
    }
}
