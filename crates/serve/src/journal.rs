//! The write-ahead job journal (`foldic-serve-journal/1`).
//!
//! An append-only JSONL file in the `CheckpointStore` discipline: one
//! header line naming the schema, then one compact-JSON line per job
//! transition. Three record kinds cover a job's lifetime:
//!
//! * `accepted` — written (and fsync'd) **before** `POST /jobs` returns,
//!   carrying the full spec, its canonical config, the spec digest, the
//!   request id and attempt count. The ack is the durability promise: a
//!   daemon killed any time after responding can prove on restart that
//!   the job existed and re-run it.
//! * `started` — a worker picked the job up. Flushed but *not* fsync'd:
//!   losing it merely means replay re-enqueues a job that had already
//!   started, and the determinism contract makes the re-run
//!   byte-identical.
//! * `terminal` — the job reached `done`/`failed`/`cancelled`, fsync'd.
//!   `done` records carry the result body inline only when the
//!   persistent cache cannot (non-cacheable jobs or no `--cache-dir`);
//!   otherwise the body lives in the cache under the recorded digest.
//!
//! Loading is torn-tail tolerant exactly like checkpoints: a process
//! SIGKILLed mid-append leaves a truncated (or corrupt) final line, and
//! the loader keeps the intact prefix, trims the file back to it, and
//! drops the rest. Replaying the same file twice therefore yields the
//! same [`Replay`] — the idempotence the chaos gate asserts. Records
//! that reference a job id no accepted record introduced are skipped
//! (not errors): they can only arise from a trimmed prefix of a foreign
//! file, and skipping keeps the loader total.

use crate::job::JobSpec;
use foldic_obs::json::Json;
use std::collections::BTreeMap;
use std::fs::{File, OpenOptions};
use std::io::{Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};
use std::sync::Mutex;

/// Schema tag written as the first line of every journal file.
pub const JOURNAL_SCHEMA: &str = "foldic-serve-journal/1";

/// Why a journal file was rejected at load time. Torn tails and mid-file
/// corruption are *not* errors (the intact prefix replays and the file is
/// trimmed); these are the cases where proceeding would corrupt recovery.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum JournalError {
    /// The file could not be read, created, trimmed, or appended to.
    Io {
        /// The journal path.
        path: PathBuf,
        /// The underlying I/O error, stringified.
        message: String,
    },
    /// The first line is not parseable JSON.
    BadHeader(String),
    /// The header names a different schema (a journal written by an
    /// incompatible version must not be replayed).
    SchemaMismatch {
        /// The schema this build writes and accepts.
        want: &'static str,
        /// The schema found in the file, when any.
        got: Option<String>,
    },
    /// The same job id was accepted twice with a *different* spec digest
    /// — two daemons shared the file; replaying either silently would
    /// hand a client the wrong study. (Identical re-accepts are fine:
    /// restart re-enqueues legitimately re-append with `attempt+1`.)
    ConflictingAccept(u64),
}

impl std::fmt::Display for JournalError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            JournalError::Io { path, message } => {
                write!(f, "journal {}: {message}", path.display())
            }
            JournalError::BadHeader(msg) => write!(f, "bad journal header: {msg}"),
            JournalError::SchemaMismatch { want, got } => {
                write!(f, "journal schema mismatch: want {want}, got {got:?}")
            }
            JournalError::ConflictingAccept(id) => write!(
                f,
                "journal job {id} accepted twice with different spec digests; \
                 refusing to replay an ambiguous journal"
            ),
        }
    }
}

impl std::error::Error for JournalError {}

/// One journal transition, ready to serialize or just deserialized.
#[derive(Debug, Clone, PartialEq)]
pub enum Record {
    /// The scheduler admitted a job; fsync'd before the client's ack.
    Accepted {
        /// Scheduler job id.
        job: u64,
        /// 1 on first submission; replay re-enqueues bump it.
        attempt: u32,
        /// [`crate::job::cache_key`] digest of the canonical config.
        digest: String,
        /// The validated submission.
        spec: JobSpec,
        /// Canonical config the runner resolved the spec to.
        config: BTreeMap<String, String>,
        /// Request id of the submitting HTTP request, when any.
        request_id: Option<String>,
        /// Client idempotency key, when supplied.
        idempotency_key: Option<String>,
    },
    /// A worker picked the job up (flushed, not fsync'd).
    Started {
        /// Scheduler job id.
        job: u64,
        /// Attempt this start belongs to.
        attempt: u32,
    },
    /// The job reached a terminal state; fsync'd.
    Terminal {
        /// Scheduler job id.
        job: u64,
        /// Attempt that terminated.
        attempt: u32,
        /// `done`, `failed` or `cancelled`.
        state: String,
        /// Failure message for `failed`.
        error: Option<String>,
        /// Result body for `done`, when the persistent cache does not
        /// hold it (non-cacheable job or no cache directory).
        body: Option<String>,
    },
}

impl Record {
    /// Serializes to the compact single-line JSON form.
    pub fn to_json(&self) -> Json {
        match self {
            Record::Accepted {
                job,
                attempt,
                digest,
                spec,
                config,
                request_id,
                idempotency_key,
            } => {
                let mut fields = vec![
                    ("record".to_owned(), Json::Str("accepted".to_owned())),
                    ("job".to_owned(), Json::Num(*job as f64)),
                    ("attempt".to_owned(), Json::Num(f64::from(*attempt))),
                    ("digest".to_owned(), Json::Str(digest.clone())),
                    ("spec".to_owned(), spec.to_json()),
                    (
                        "config".to_owned(),
                        Json::Obj(
                            config
                                .iter()
                                .map(|(k, v)| (k.clone(), Json::Str(v.clone())))
                                .collect(),
                        ),
                    ),
                ];
                if let Some(rid) = request_id {
                    fields.push(("request_id".to_owned(), Json::Str(rid.clone())));
                }
                if let Some(key) = idempotency_key {
                    fields.push(("idempotency_key".to_owned(), Json::Str(key.clone())));
                }
                Json::obj(fields)
            }
            Record::Started { job, attempt } => Json::obj([
                ("record".to_owned(), Json::Str("started".to_owned())),
                ("job".to_owned(), Json::Num(*job as f64)),
                ("attempt".to_owned(), Json::Num(f64::from(*attempt))),
            ]),
            Record::Terminal {
                job,
                attempt,
                state,
                error,
                body,
            } => {
                let mut fields = vec![
                    ("record".to_owned(), Json::Str("terminal".to_owned())),
                    ("job".to_owned(), Json::Num(*job as f64)),
                    ("attempt".to_owned(), Json::Num(f64::from(*attempt))),
                    ("state".to_owned(), Json::Str(state.clone())),
                ];
                if let Some(err) = error {
                    fields.push(("error".to_owned(), Json::Str(err.clone())));
                }
                if let Some(body) = body {
                    fields.push(("body".to_owned(), Json::Str(body.clone())));
                }
                Json::obj(fields)
            }
        }
    }

    /// Parses one journal line. `None` means the line is not a
    /// well-formed record of a known kind — the loader treats that as
    /// the start of a torn/corrupt tail.
    pub fn parse(json: &Json) -> Option<Record> {
        let id = |field: &str| -> Option<u64> {
            let v = json.get(field)?.as_f64()?;
            (v.is_finite() && v >= 0.0 && v.fract() == 0.0 && v <= 2f64.powi(53))
                .then_some(v as u64)
        };
        let job = id("job")?;
        let attempt = u32::try_from(id("attempt")?).ok()?;
        // absent field → None; present non-string → malformed line
        let optional_str = |field: &str| -> Result<Option<String>, ()> {
            match json.get(field) {
                None => Ok(None),
                Some(Json::Str(s)) => Ok(Some(s.clone())),
                Some(_) => Err(()),
            }
        };
        match json.get("record")?.as_str()? {
            "accepted" => {
                let digest = json.get("digest")?.as_str()?.to_owned();
                let spec = JobSpec::from_json(json.get("spec")?).ok()?;
                let config_obj = json.get("config")?.as_obj()?;
                let mut config = BTreeMap::new();
                for (k, v) in config_obj {
                    config.insert(k.clone(), v.as_str()?.to_owned());
                }
                Some(Record::Accepted {
                    job,
                    attempt,
                    digest,
                    spec,
                    config,
                    request_id: optional_str("request_id").ok()?,
                    idempotency_key: optional_str("idempotency_key").ok()?,
                })
            }
            "started" => Some(Record::Started { job, attempt }),
            "terminal" => {
                let state = json.get("state")?.as_str()?.to_owned();
                if !matches!(state.as_str(), "done" | "failed" | "cancelled") {
                    return None;
                }
                Some(Record::Terminal {
                    job,
                    attempt,
                    state,
                    error: optional_str("error").ok()?,
                    body: optional_str("body").ok()?,
                })
            }
            _ => None,
        }
    }
}

/// Terminal outcome of a replayed job.
#[derive(Debug, Clone, PartialEq)]
pub struct TerminalRecord {
    /// `done`, `failed` or `cancelled`.
    pub state: String,
    /// Failure message for `failed`.
    pub error: Option<String>,
    /// Inline result body, when the journal carries it.
    pub body: Option<String>,
}

/// Everything the loader learned about one job id.
#[derive(Debug, Clone, PartialEq)]
pub struct ReplayJob {
    /// Scheduler job id.
    pub id: u64,
    /// Highest attempt seen across the job's records.
    pub attempt: u32,
    /// The validated submission.
    pub spec: JobSpec,
    /// Spec digest from the accepted record.
    pub digest: String,
    /// Canonical config from the accepted record.
    pub config: BTreeMap<String, String>,
    /// Request id of the original submission, when recorded.
    pub request_id: Option<String>,
    /// Client idempotency key, when recorded.
    pub idempotency_key: Option<String>,
    /// `true` when a `started` record was seen for the job.
    pub started: bool,
    /// Terminal outcome, when the job finished before the journal ended.
    pub terminal: Option<TerminalRecord>,
}

/// The replayable state of a journal file: one entry per accepted job,
/// in id order.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Replay {
    /// Accepted jobs by id.
    pub jobs: BTreeMap<u64, ReplayJob>,
    /// Well-formed records loaded (including duplicates and skips).
    pub records: u64,
    /// Bytes trimmed off the tail (torn/corrupt suffix).
    pub trimmed_bytes: u64,
}

impl Replay {
    /// First job id a restarted scheduler may allocate without colliding
    /// with a journaled one.
    pub fn next_id(&self) -> u64 {
        self.jobs.keys().next_back().map_or(1, |max| max + 1)
    }

    /// Jobs that never reached a terminal state, in id (= FIFO) order.
    pub fn non_terminal(&self) -> impl Iterator<Item = &ReplayJob> {
        self.jobs.values().filter(|job| job.terminal.is_none())
    }
}

/// An open write-ahead journal.
pub struct Journal {
    file: Mutex<File>,
    path: PathBuf,
}

impl std::fmt::Debug for Journal {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Journal").field("path", &self.path).finish()
    }
}

impl Journal {
    /// Opens (or creates) a journal, replaying any records already in
    /// it. A truncated or corrupt tail — the signature of a SIGKILLed
    /// daemon — is tolerated: reading stops there and the file is
    /// trimmed back to its last intact line so later appends start on a
    /// clean boundary. The header (when newly written) is fsync'd, so an
    /// empty-but-created journal survives a crash too.
    ///
    /// # Errors
    ///
    /// Returns a typed [`JournalError`] when the file cannot be
    /// created/read, carries a different schema tag, or accepted the
    /// same job id under two different spec digests.
    pub fn open(path: &Path) -> Result<(Self, Replay), JournalError> {
        let io = |message: String| JournalError::Io {
            path: path.to_owned(),
            message,
        };
        let mut replay = Replay::default();
        let mut valid_end = 0u64;
        let mut total_len = 0u64;
        if path.exists() {
            let text =
                std::fs::read_to_string(path).map_err(|e| io(format!("cannot read: {e}")))?;
            total_len = text.len() as u64;
            let mut header_seen = false;
            for line in text.split_inclusive('\n') {
                if !line.ends_with('\n') {
                    break; // torn tail from a killed append
                }
                let trimmed = line.trim();
                if !header_seen && !trimmed.is_empty() {
                    let header =
                        Json::parse(trimmed).map_err(|e| JournalError::BadHeader(e.to_string()))?;
                    match header.get("schema").and_then(Json::as_str) {
                        Some(JOURNAL_SCHEMA) => {}
                        other => {
                            return Err(JournalError::SchemaMismatch {
                                want: JOURNAL_SCHEMA,
                                got: other.map(str::to_owned),
                            })
                        }
                    }
                    header_seen = true;
                } else if !trimmed.is_empty() {
                    // An unparseable or malformed line means corruption;
                    // keep the intact prefix and drop the rest.
                    let Ok(doc) = Json::parse(trimmed) else {
                        break;
                    };
                    let Some(record) = Record::parse(&doc) else {
                        break;
                    };
                    replay.records += 1;
                    apply(&mut replay, record)?;
                }
                valid_end += line.len() as u64;
            }
        }
        replay.trimmed_bytes = total_len.saturating_sub(valid_end);
        let mut file = OpenOptions::new()
            .create(true)
            .truncate(false)
            .write(true)
            .open(path)
            .map_err(|e| io(format!("cannot open: {e}")))?;
        file.set_len(valid_end)
            .map_err(|e| io(format!("cannot trim: {e}")))?;
        file.seek(SeekFrom::End(0))
            .map_err(|e| io(format!("cannot seek: {e}")))?;
        if valid_end == 0 {
            let header = Json::obj([("schema".to_owned(), Json::Str(JOURNAL_SCHEMA.to_owned()))]);
            writeln!(file, "{}", header.to_compact())
                .map_err(|e| io(format!("cannot write header: {e}")))?;
            file.sync_data()
                .map_err(|e| io(format!("cannot sync header: {e}")))?;
        }
        Ok((
            Self {
                file: Mutex::new(file),
                path: path.to_owned(),
            },
            replay,
        ))
    }

    /// The backing file.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Appends `records` as one batch and fsyncs once. This is the ack
    /// gate: callers must not acknowledge the corresponding transition
    /// until it returns `Ok`.
    ///
    /// # Errors
    ///
    /// [`JournalError::Io`] when writing or syncing fails; the caller
    /// rolls the transition back (e.g. sheds the submission).
    pub fn append_sync(&self, records: &[Record]) -> Result<(), JournalError> {
        let io = |message: String| JournalError::Io {
            path: self.path.clone(),
            message,
        };
        let mut file = self.file.lock().unwrap_or_else(|e| e.into_inner());
        for record in records {
            writeln!(file, "{}", record.to_json().to_compact())
                .map_err(|e| io(format!("cannot append: {e}")))?;
        }
        file.sync_data()
            .map_err(|e| io(format!("cannot sync: {e}")))
    }

    /// Appends one record best-effort (flushed, not fsync'd). Used for
    /// `started`: losing it across a crash only costs a re-run.
    pub fn append(&self, record: &Record) {
        let mut file = self.file.lock().unwrap_or_else(|e| e.into_inner());
        let _ = writeln!(file, "{}", record.to_json().to_compact());
        let _ = file.flush();
    }
}

/// Folds one record into the replay state (see module docs for the
/// tolerance rules).
fn apply(replay: &mut Replay, record: Record) -> Result<(), JournalError> {
    match record {
        Record::Accepted {
            job,
            attempt,
            digest,
            spec,
            config,
            request_id,
            idempotency_key,
        } => {
            if let Some(existing) = replay.jobs.get_mut(&job) {
                if existing.digest != digest {
                    return Err(JournalError::ConflictingAccept(job));
                }
                // a restart's re-enqueue: keep the job, bump the attempt
                existing.attempt = existing.attempt.max(attempt);
                // re-acceptance reopens the job for its next terminal
                existing.terminal = None;
                existing.started = false;
            } else {
                replay.jobs.insert(
                    job,
                    ReplayJob {
                        id: job,
                        attempt,
                        spec,
                        digest,
                        config,
                        request_id,
                        idempotency_key,
                        started: false,
                        terminal: None,
                    },
                );
            }
        }
        Record::Started { job, attempt } => {
            if let Some(existing) = replay.jobs.get_mut(&job) {
                existing.attempt = existing.attempt.max(attempt);
                existing.started = true;
            }
        }
        Record::Terminal {
            job,
            attempt,
            state,
            error,
            body,
        } => {
            if let Some(existing) = replay.jobs.get_mut(&job) {
                existing.attempt = existing.attempt.max(attempt);
                existing.terminal = Some(TerminalRecord { state, error, body });
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join("foldic-serve-tests");
        std::fs::create_dir_all(&dir).unwrap();
        dir.join(format!("{name}-{}.jsonl", std::process::id()))
    }

    fn spec(name: &str) -> JobSpec {
        JobSpec {
            experiments: vec![name.to_owned()],
            size: "tiny".to_owned(),
            ..JobSpec::default()
        }
    }

    fn accepted(job: u64, attempt: u32, name: &str) -> Record {
        let mut config = BTreeMap::new();
        config.insert("experiments".to_owned(), name.to_owned());
        config.insert("size".to_owned(), "tiny".to_owned());
        Record::Accepted {
            job,
            attempt,
            digest: crate::job::cache_key(&config),
            spec: spec(name),
            config,
            request_id: Some(format!("req-{job:06x}")),
            idempotency_key: None,
        }
    }

    #[test]
    fn lifecycle_round_trips_and_replays() {
        let path = tmp("lifecycle");
        let _ = std::fs::remove_file(&path);
        {
            let (journal, replay) = Journal::open(&path).unwrap();
            assert!(replay.jobs.is_empty());
            assert_eq!(replay.next_id(), 1);
            journal.append_sync(&[accepted(1, 1, "table1")]).unwrap();
            journal.append(&Record::Started { job: 1, attempt: 1 });
            journal
                .append_sync(&[Record::Terminal {
                    job: 1,
                    attempt: 1,
                    state: "done".to_owned(),
                    error: None,
                    body: Some("result body\nwith newline".to_owned()),
                }])
                .unwrap();
            journal.append_sync(&[accepted(2, 1, "fig2")]).unwrap();
        }
        let (_, replay) = Journal::open(&path).unwrap();
        assert_eq!(replay.jobs.len(), 2);
        assert_eq!(replay.records, 4);
        assert_eq!(replay.next_id(), 3);
        let done = &replay.jobs[&1];
        assert!(done.started);
        let terminal = done.terminal.as_ref().unwrap();
        assert_eq!(terminal.state, "done");
        assert_eq!(terminal.body.as_deref(), Some("result body\nwith newline"));
        // job 2 never started or finished → it is the one to re-enqueue
        let pending: Vec<u64> = replay.non_terminal().map(|j| j.id).collect();
        assert_eq!(pending, [2]);
        assert_eq!(replay.jobs[&2].request_id.as_deref(), Some("req-000002"));
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn torn_tail_is_trimmed_and_replay_is_idempotent() {
        let path = tmp("torn");
        let _ = std::fs::remove_file(&path);
        {
            let (journal, _) = Journal::open(&path).unwrap();
            journal.append_sync(&[accepted(1, 1, "table1")]).unwrap();
            journal.append_sync(&[accepted(2, 1, "fig2")]).unwrap();
        }
        // simulate SIGKILL mid-append: chop the last 9 bytes
        let text = std::fs::read_to_string(&path).unwrap();
        std::fs::write(&path, &text[..text.len() - 9]).unwrap();
        let (journal, first) = Journal::open(&path).unwrap();
        assert_eq!(first.jobs.len(), 1, "torn record dropped");
        assert!(first.trimmed_bytes > 0);
        // the journal stays appendable after a torn load
        journal.append_sync(&[accepted(5, 2, "fig3")]).unwrap();
        drop(journal);
        let (_, second) = Journal::open(&path).unwrap();
        assert_eq!(second.jobs.len(), 2);
        assert_eq!(second.jobs[&5].attempt, 2);
        assert_eq!(second.next_id(), 6);
        // idempotence: a third open sees exactly the same state
        let (_, third) = Journal::open(&path).unwrap();
        assert_eq!(second, third);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn reaccept_bumps_attempt_and_reopens_terminal() {
        let path = tmp("reaccept");
        let _ = std::fs::remove_file(&path);
        {
            let (journal, _) = Journal::open(&path).unwrap();
            journal.append_sync(&[accepted(1, 1, "table1")]).unwrap();
            journal
                .append_sync(&[Record::Terminal {
                    job: 1,
                    attempt: 1,
                    state: "failed".to_owned(),
                    error: Some("worker died".to_owned()),
                    body: None,
                }])
                .unwrap();
            // restart re-enqueues the job as attempt 2…
            journal.append_sync(&[accepted(1, 2, "table1")]).unwrap();
        }
        let (_, replay) = Journal::open(&path).unwrap();
        let job = &replay.jobs[&1];
        assert_eq!(job.attempt, 2);
        assert!(job.terminal.is_none(), "re-accept reopens the job");
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn conflicting_accept_is_rejected() {
        let path = tmp("conflict");
        let _ = std::fs::remove_file(&path);
        {
            let (journal, _) = Journal::open(&path).unwrap();
            journal.append_sync(&[accepted(1, 1, "table1")]).unwrap();
            journal.append_sync(&[accepted(1, 1, "fig2")]).unwrap();
        }
        assert_eq!(
            Journal::open(&path).unwrap_err(),
            JournalError::ConflictingAccept(1)
        );
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn orphan_records_are_skipped_not_fatal() {
        let path = tmp("orphan");
        let header = format!("{{\"schema\":\"{JOURNAL_SCHEMA}\"}}\n");
        std::fs::write(
            &path,
            format!(
                "{header}{}\n{}\n",
                Record::Started { job: 9, attempt: 1 }
                    .to_json()
                    .to_compact(),
                Record::Terminal {
                    job: 9,
                    attempt: 1,
                    state: "done".to_owned(),
                    error: None,
                    body: None,
                }
                .to_json()
                .to_compact()
            ),
        )
        .unwrap();
        let (_, replay) = Journal::open(&path).unwrap();
        assert!(replay.jobs.is_empty());
        assert_eq!(replay.records, 2);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn rejects_wrong_schema_and_bad_header() {
        let path = tmp("schema");
        std::fs::write(&path, "{\"schema\":\"other/9\"}\n").unwrap();
        assert_eq!(
            Journal::open(&path).unwrap_err(),
            JournalError::SchemaMismatch {
                want: JOURNAL_SCHEMA,
                got: Some("other/9".to_owned())
            }
        );
        std::fs::write(&path, "not json\n").unwrap();
        assert!(matches!(
            Journal::open(&path).unwrap_err(),
            JournalError::BadHeader(_)
        ));
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn io_errors_are_typed() {
        let dir = std::env::temp_dir().join("foldic-serve-tests");
        std::fs::create_dir_all(&dir).unwrap();
        assert!(matches!(
            Journal::open(&dir).unwrap_err(),
            JournalError::Io { .. }
        ));
    }
}
